// The hostile-grid property suite: hundreds of seeded random scenario
// scripts — correlated rack outages, flapping sniffers, clock skew,
// backlog storms, log truncation, grids up to a thousand sources — each
// replayed deterministically with every soundness oracle checked at
// every report checkpoint. A failing script is shrunk (drop faults,
// halve the grid, halve the duration) to a minimal reproducer and
// dumped as a replayable .scenario file whose path appears in the
// failure message; `trac_scenario --replay <file>` then reproduces the
// run byte-for-byte.
//
// Runtime knobs (all optional):
//   TRAC_SCENARIO_SCRIPTS    number of generated scripts (default 200)
//   TRAC_SCENARIO_SOURCES    grid-size ceiling (default 1000)
//   TRAC_SCENARIO_MIN_SOURCES grid-size floor (default 12)
//   TRAC_SCENARIO_SEED       base seed (default 20060315)
//   TRAC_SCENARIO_REPRO_DIR  where shrunken repros land
//                            (default "scenario-repro")

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../monitor/oracles.h"
#include "../test_util.h"
#include "common/clock.h"
#include "core/recency_reporter.h"
#include "core/session.h"
#include "monitor/scenario.h"
#include "telemetry/telemetry.h"

namespace trac {
namespace {

using oracle::OracleOutcome;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoll(value);
}

std::string EnvStr(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? fallback : value;
}

struct RunResult {
  bool setup_ok = true;
  std::string setup_error;
  OracleOutcome outcome;

  bool clean() const { return setup_ok && outcome.ok(); }
  std::string Describe() const {
    if (!setup_ok) return "setup/step error: " + setup_error;
    return outcome.Summary();
  }
};

/// Replays one script to completion, running reports at periodic
/// checkpoints and checking every oracle. Deterministic per script.
RunResult RunScenario(const ScenarioScript& script) {
  RunResult result;
  Database db;
  MetricRegistry metrics;
  Tracer tracer;
  ScenarioRunnerOptions options;
  options.metrics = &metrics;
  auto created = ScenarioRunner::Create(&db, script, options);
  if (!created.ok()) {
    result.setup_ok = false;
    result.setup_error = created.status().ToString();
    return result;
  }
  std::unique_ptr<ScenarioRunner> runner = std::move(*created);

  // One relevance cache shared by every checkpoint report: heartbeat
  // traffic between checkpoints invalidates entries, idle stretches
  // produce genuine hits, and every cache-served report is re-proven
  // byte-identical to a cold recomputation by the coherence oracle.
  RelevanceCache cache;

  // Checkpoint cadence: every ~5 steps plus the final step, alternating
  // the focused and naive methods, with parallelism toggling so the TSan
  // run exercises the pool path. The clock for spans is the sim clock.
  const size_t total_steps = script.steps();
  size_t checkpoint = 0;
  while (!runner->done()) {
    const Status step = runner->Step();
    if (!step.ok()) {
      result.setup_ok = false;
      result.setup_error = step.ToString();
      return result;
    }
    const bool last = runner->steps_done() == total_steps;
    if (runner->steps_done() % 5 != 0 && !last) continue;
    ++checkpoint;

    result.outcome.Merge(oracle::CheckTelemetry(*runner, metrics));

    Telemetry telemetry{&metrics, &tracer, &MonotonicMicros};
    RecencyReportOptions report_options;
    report_options.method = (checkpoint % 2 == 0) ? RecencyMethod::kNaive
                                                  : RecencyMethod::kFocused;
    report_options.create_temp_tables = false;
    report_options.telemetry = &telemetry;
    report_options.relevance.parallelism = (checkpoint % 2) + 1;
    report_options.cache = &cache;
    RecencyReporter reporter(runner->db(), nullptr);
    auto report = reporter.Run(runner->FocusedSql(), report_options);
    if (!report.ok()) {
      result.setup_ok = false;
      result.setup_error = "report failed: " + report.status().ToString();
      return result;
    }
    result.outcome.Merge(
        oracle::CheckReport(*runner, *report, runner->focused_ids()));
    result.outcome.Merge(oracle::CheckTrace(tracer, *report));
    result.outcome.Merge(oracle::CheckCacheCoherence(
        *runner->db(), runner->FocusedSql(), *report, report_options));
    if (!result.outcome.ok()) return result;  // Shrinker takes over.

    // Every third checkpoint also proves the EMPTY_SET path.
    if (checkpoint % 3 == 0) {
      auto empty = reporter.Run(runner->EmptySql(), report_options);
      if (!empty.ok()) {
        result.setup_ok = false;
        result.setup_error = "empty-set report failed: " +
                             empty.status().ToString();
        return result;
      }
      result.outcome.Merge(oracle::CheckReport(*runner, *empty, {}));
      result.outcome.Merge(oracle::CheckCacheCoherence(
          *runner->db(), runner->EmptySql(), *empty, report_options));
    }
  }

  // One session-backed report at the end covers the temp-table path the
  // checkpoints skip.
  Session session(&db);
  RecencyReportOptions final_options;
  final_options.create_temp_tables = true;
  final_options.cache = &cache;  // Grid is quiescent: a genuine hit path.
  RecencyReporter final_reporter(&db, &session);
  auto final_report = final_reporter.Run(runner->FocusedSql(), final_options);
  if (!final_report.ok()) {
    result.setup_ok = false;
    result.setup_error =
        "temp-table report failed: " + final_report.status().ToString();
    return result;
  }
  result.outcome.Merge(
      oracle::CheckReport(*runner, *final_report, runner->focused_ids()));
  result.outcome.Merge(oracle::CheckCacheCoherence(
      db, runner->FocusedSql(), *final_report, final_options));
  return result;
}

/// Greedy shrink: repeatedly try dropping one fault, then halving the
/// grid and the duration, keeping every mutation that still fails.
/// Bounded, deterministic, and each candidate is a full re-run.
ScenarioScript Shrink(ScenarioScript script) {
  bool changed = true;
  int budget = 60;  // Re-runs, not scripts: shrinking stays bounded.
  while (changed && budget > 0) {
    changed = false;
    for (size_t f = 0; f < script.faults.size() && budget > 0; ++f) {
      ScenarioScript candidate = script;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<ptrdiff_t>(f));
      --budget;
      if (!RunScenario(candidate).clean()) {
        script = std::move(candidate);
        changed = true;
        break;
      }
    }
    if (!changed && script.num_sources > 8 && budget > 0) {
      ScenarioScript candidate = script;
      candidate.num_sources /= 2;
      if (candidate.num_racks > candidate.num_sources) {
        candidate.num_racks = candidate.num_sources;
      }
      if (candidate.focus > candidate.num_sources) {
        candidate.focus = candidate.num_sources;
      }
      // Re-clamp fault targets into the smaller grid.
      for (FaultSpec& fault : candidate.faults) {
        for (size_t& s : fault.sources) s %= candidate.num_sources;
        for (size_t& r : fault.racks) r %= candidate.num_racks;
      }
      --budget;
      if (candidate.Validate().ok() && !RunScenario(candidate).clean()) {
        script = std::move(candidate);
        changed = true;
      }
    }
    if (!changed && script.steps() > 6 && budget > 0) {
      ScenarioScript candidate = script;
      candidate.duration_micros /= 2;
      --budget;
      if (candidate.Validate().ok() && !RunScenario(candidate).clean()) {
        script = std::move(candidate);
        changed = true;
      }
    }
  }
  return script;
}

std::string DumpRepro(const ScenarioScript& script, uint64_t seed) {
  const std::string dir = EnvStr("TRAC_SCENARIO_REPRO_DIR", "scenario-repro");
  ::mkdir(dir.c_str(), 0777);  // Best effort; write failure is reported.
  const std::string path =
      dir + "/failure-seed-" + std::to_string(seed) + ".scenario";
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return "(could not write " + path + ")";
  const std::string text = script.ToText();
  fwrite(text.data(), 1, text.size(), f);
  fclose(f);
  return path;
}

TEST(ScenarioPropertyTest, RandomHostileGridsHoldEveryOracle) {
  const int64_t scripts = EnvInt("TRAC_SCENARIO_SCRIPTS", 200);
  ScenarioGenOptions gen;
  gen.min_sources =
      static_cast<size_t>(EnvInt("TRAC_SCENARIO_MIN_SOURCES", 12));
  gen.max_sources = static_cast<size_t>(EnvInt("TRAC_SCENARIO_SOURCES", 1000));
  const uint64_t base_seed =
      static_cast<uint64_t>(EnvInt("TRAC_SCENARIO_SEED", 20060315));

  size_t total_checks = 0;
  size_t total_exempt = 0;
  size_t max_sources_seen = 0;
  for (int64_t k = 0; k < scripts; ++k) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(k);
    const ScenarioScript script = ScenarioScript::Generate(seed, gen);
    ASSERT_TRUE(script.Validate().ok()) << "generator produced junk";
    max_sources_seen =
        std::max(max_sources_seen, static_cast<size_t>(script.num_sources));

    RunResult result = RunScenario(script);
    if (!result.clean()) {
      const ScenarioScript minimal = Shrink(script);
      const RunResult replay = RunScenario(minimal);
      const std::string repro = DumpRepro(minimal, seed);
      FAIL() << "scenario seed " << seed << " (" << script.num_sources
             << " sources, " << script.faults.size() << " faults) violated "
             << "the oracles.\nOriginal: " << result.Describe()
             << "\nShrunken to " << minimal.num_sources << " sources / "
             << minimal.faults.size() << " faults: " << replay.Describe()
             << "\nReplayable repro written to: " << repro
             << "\n  (replay with: trac_scenario --replay " << repro << ")";
    }
    total_checks += result.outcome.checks;
    total_exempt += result.outcome.exemptions;
  }
  // The suite must actually have exercised the hostile regime it
  // advertises; a silent scale-down would pass vacuously.
  EXPECT_GT(total_checks, static_cast<size_t>(scripts) * 20)
      << "oracles barely ran";
  if (gen.max_sources >= 500 && scripts >= 50) {
    EXPECT_GE(max_sources_seen, gen.max_sources / 2)
        << "generator never produced a large grid";
  }
  RecordProperty("oracle_checks", std::to_string(total_checks));
  RecordProperty("oracle_exemptions", std::to_string(total_exempt));
}

// The oracles must be *able* to fail: seed a scenario, then break the
// report in the three characteristic ways and require a violation each
// time. Guards against an oracle regression that silently checks
// nothing (the property above would keep passing forever).
TEST(ScenarioPropertyTest, OraclesCatchSeededMutations) {
  ScenarioGenOptions gen;
  gen.min_sources = 16;
  gen.max_sources = 64;
  const ScenarioScript script = ScenarioScript::Generate(7, gen);

  Database db;
  MetricRegistry metrics;
  ScenarioRunnerOptions options;
  options.metrics = &metrics;
  TRAC_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ScenarioRunner> runner,
                            ScenarioRunner::Create(&db, script, options));
  while (!runner->done()) TRAC_ASSERT_OK(runner->Step());

  RecencyReportOptions report_options;
  report_options.create_temp_tables = false;
  RecencyReporter reporter(&db, nullptr);
  auto report = reporter.Run(runner->FocusedSql(), report_options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(
      oracle::CheckReport(*runner, *report, runner->focused_ids()).ok());
  ASSERT_FALSE(report->stats.normal.empty());

  {
    RecencyReport broken = *report;
    broken.stats.inconsistency_bound_micros -= 1;
    EXPECT_FALSE(oracle::CheckBoundDominance(*runner, broken).ok())
        << "off-by-one bound shrink not caught";
  }
  {
    RecencyReport broken = *report;
    broken.relevance.sources[0].recency =
        broken.relevance.sources[0].recency + Timestamp::kMicrosPerHour;
    EXPECT_FALSE(oracle::CheckBoundDominance(*runner, broken).ok())
        << "forged recency not caught";
  }
  {
    RecencyReport broken = *report;
    broken.stats.exceptional.push_back(broken.stats.normal.back());
    broken.stats.normal.pop_back();
    EXPECT_FALSE(oracle::CheckZscoreAgreement(broken.stats).ok())
        << "membership swap not caught";
  }
  {
    RecencyReport broken = *report;
    broken.relevance.sources.pop_back();
    EXPECT_FALSE(
        oracle::CheckGuarantee(broken, runner->focused_ids()).ok())
        << "EXACT_MINIMUM overclaim not caught";
  }
  {
    // Cache coherence: run the same report twice through a cache so the
    // second is genuinely served, then forge the served vector.
    RelevanceCache cache;
    RecencyReportOptions cached_options = report_options;
    cached_options.cache = &cache;
    auto cold = reporter.Run(runner->FocusedSql(), cached_options);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto served = reporter.Run(runner->FocusedSql(), cached_options);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ASSERT_TRUE(served->relevance_from_cache)
        << "static grid + repeat query must be a cache hit";
    EXPECT_TRUE(oracle::CheckCacheCoherence(db, runner->FocusedSql(),
                                            *served, cached_options)
                    .ok());
    RecencyReport broken = *served;
    broken.relevance.sources[0].recency =
        broken.relevance.sources[0].recency + Timestamp::kMicrosPerHour;
    EXPECT_FALSE(oracle::CheckCacheCoherence(db, runner->FocusedSql(),
                                             broken, cached_options)
                     .ok())
        << "forged cache-served recency not caught";
  }
}

}  // namespace
}  // namespace trac
