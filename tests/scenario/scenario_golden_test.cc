// Replays the scenario scripts committed under examples/scenarios/:
// each file must parse, be in canonical form already (byte-for-byte
// fixpoint — a hand-edit that denormalizes the file fails here, not in
// some downstream tool), run to completion, and hold every soundness
// oracle at every step. The byte-exact NOTICE/report output of these
// same scripts is pinned separately by the trac_scenario --golden CTest
// cases.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../monitor/oracles.h"
#include "../test_util.h"
#include "core/recency_reporter.h"
#include "monitor/scenario.h"

#ifndef TRAC_EXAMPLES_DIR
#define TRAC_EXAMPLES_DIR "examples"
#endif

namespace trac {
namespace {

using oracle::OracleOutcome;

std::string ReadFileOrDie(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ADD_FAILURE() << "cannot open " << path;
    return "";
  }
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  fclose(f);
  return out;
}

class ScenarioGoldenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioGoldenTest, CommittedScriptReplaysCleanly) {
  const std::string path =
      std::string(TRAC_EXAMPLES_DIR) + "/scenarios/" + GetParam();
  const std::string text = ReadFileOrDie(path);
  ASSERT_FALSE(text.empty());

  auto script = ScenarioScript::Parse(text);
  ASSERT_TRUE(script.ok()) << path << ": " << script.status().ToString();
  // Committed scripts are canonical: replay artifacts diff cleanly.
  EXPECT_EQ(script->ToText(), text)
      << path << " is not in canonical form (regenerate with "
      << "trac_scenario --replay " << path << " --dump)";

  Database db;
  MetricRegistry metrics;
  ScenarioRunnerOptions options;
  options.metrics = &metrics;
  TRAC_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ScenarioRunner> runner,
                            ScenarioRunner::Create(&db, *script, options));

  OracleOutcome total;
  while (!runner->done()) {
    TRAC_ASSERT_OK(runner->Step());
    // Check each step: the telemetry oracle keys on fresh poll state.
    total.Merge(oracle::CheckTelemetry(*runner, metrics));
    ASSERT_TRUE(total.ok()) << "at " << runner->now().ToString() << ": "
                            << total.Summary();
  }

  RecencyReportOptions report_options;
  report_options.create_temp_tables = false;
  RecencyReporter reporter(&db, nullptr);
  for (RecencyMethod method :
       {RecencyMethod::kFocused, RecencyMethod::kNaive}) {
    report_options.method = method;
    auto report = reporter.Run(runner->FocusedSql(), report_options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    total.Merge(oracle::CheckReport(*runner, *report, runner->focused_ids()));
  }
  EXPECT_TRUE(total.ok()) << total.Summary();
  EXPECT_GT(total.checks, 100u) << "golden replay barely checked anything";
}

INSTANTIATE_TEST_SUITE_P(CommittedScenarios, ScenarioGoldenTest,
                         ::testing::Values("correlated-rack-failure.scenario",
                                           "backlog-storm.scenario"));

}  // namespace
}  // namespace trac
