// Unit coverage of the hostile-grid scenario layer: script round-trip
// and validation, the fault-injector primitives, small-grid runs
// cross-checked against brute-force ground truth, and — crucially — the
// mutation tests proving the soundness oracles actually detect broken
// reports (an oracle that never fires is indistinguishable from no
// oracle).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../monitor/oracles.h"
#include "../test_util.h"
#include "core/brute_force.h"
#include "core/recency_reporter.h"
#include "expr/binder.h"
#include "monitor/fault_injector.h"
#include "monitor/scenario.h"

namespace trac {
namespace {

using oracle::OracleOutcome;

RecencyReport MustReport(ScenarioRunner* runner, const std::string& sql,
                         RecencyMethod method = RecencyMethod::kFocused) {
  RecencyReportOptions options;
  options.method = method;
  options.create_temp_tables = false;
  RecencyReporter reporter(runner->db(), nullptr);
  auto report = reporter.Run(sql, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(*report);
}

TEST(ScenarioScriptTest, GeneratedScriptsValidateAndRoundTrip) {
  ScenarioGenOptions gen;
  gen.min_sources = 4;
  gen.max_sources = 600;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    ScenarioScript script = ScenarioScript::Generate(seed, gen);
    TRAC_ASSERT_OK(script.Validate());
    EXPECT_GE(script.num_sources, 4u);
    EXPECT_LE(script.num_sources, 600u);
    EXPECT_GE(script.steps(), 12u);
    const std::string text = script.ToText();
    auto parsed = ScenarioScript::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    // Canonical form is a fixpoint: replay files are byte-stable.
    EXPECT_EQ(parsed->ToText(), text) << "seed " << seed;
  }
}

TEST(ScenarioScriptTest, GenerationIsDeterministic) {
  ScenarioGenOptions gen;
  const ScenarioScript a = ScenarioScript::Generate(77, gen);
  const ScenarioScript b = ScenarioScript::Generate(77, gen);
  EXPECT_EQ(a.ToText(), b.ToText());
  const ScenarioScript c = ScenarioScript::Generate(78, gen);
  EXPECT_NE(a.ToText(), c.ToText());
}

TEST(ScenarioScriptTest, ParseAcceptsCommentsAndUnits) {
  const char* text =
      "# hostile-grid scenario\n"
      "scenario v1\n"
      "seed 9\n"
      "sources 20\n"
      "racks 4   # striped\n"
      "duration 2m\n"
      "step 5s\n"
      "poll 2500ms\n"
      "ship-delay 250us\n"
      "heartbeat 30s\n"
      "event-rate 0.500000\n"
      "focus 3\n"
      "fault skew offset=-30s drift-ppm=20000 sources=1,5\n"
      "end\n";
  auto script = ScenarioScript::Parse(text);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->duration_micros, 2 * Timestamp::kMicrosPerMinute);
  EXPECT_EQ(script->poll_micros, 2500 * 1000);
  EXPECT_EQ(script->ship_delay_micros, 250);
  ASSERT_EQ(script->faults.size(), 1u);
  EXPECT_EQ(script->faults[0].kind, FaultSpec::Kind::kClockSkew);
  EXPECT_EQ(script->faults[0].offset_micros,
            -30 * Timestamp::kMicrosPerSecond);
  EXPECT_EQ(script->faults[0].drift_ppm, 20000);
  EXPECT_EQ(script->faults[0].sources, (std::vector<size_t>{1, 5}));
  // Round-trip normalizes the units (2500ms stays ms; 2m becomes 120s).
  auto reparsed = ScenarioScript::Parse(script->ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToText(), script->ToText());
}

TEST(ScenarioScriptTest, ParseRejectsMalformedScripts) {
  EXPECT_FALSE(ScenarioScript::Parse("sources 5\nend\n").ok());  // no header
  EXPECT_FALSE(ScenarioScript::Parse("scenario v1\nsources 5\n").ok());
  EXPECT_FALSE(
      ScenarioScript::Parse("scenario v1\nbogus 1\nend\n").ok());
  EXPECT_FALSE(
      ScenarioScript::Parse("scenario v1\nsources 0\nend\n").ok());
  // Structural validation: rack index out of range.
  EXPECT_FALSE(ScenarioScript::Parse(
                   "scenario v1\nsources 10\nracks 2\n"
                   "fault rack-outage start=0s duration=10s racks=7\nend\n")
                   .ok());
  // Flap duty outside (0, 1).
  EXPECT_FALSE(ScenarioScript::Parse(
                   "scenario v1\nsources 10\n"
                   "fault flap start=0s duration=10s period=4s "
                   "duty=1.500000 sources=1\nend\n")
                   .ok());
  // Drift that would run a source clock backwards.
  EXPECT_FALSE(ScenarioScript::Parse(
                   "scenario v1\nsources 10\n"
                   "fault skew offset=0s drift-ppm=-1000000 sources=1\nend\n")
                   .ok());
}

TEST(ScenarioScriptTest, SourceIdsAreFixedWidthAndRacksStripe) {
  ScenarioScript script;
  script.num_sources = 20;
  script.num_racks = 4;
  EXPECT_EQ(script.SourceId(0), "src0000");
  EXPECT_EQ(script.SourceId(19), "src0019");
  EXPECT_EQ(script.RackOf(0), 0u);
  EXPECT_EQ(script.RackOf(5), 1u);
  EXPECT_EQ(script.RackOf(7), 3u);
}

TEST(FaultInjectorTest, SkewMathAndDriftBound) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(GridSimulator grid, GridSimulator::Create(&db));
  grid.clock().AdvanceTo(Timestamp::FromSeconds(1000));
  TRAC_ASSERT_OK(grid.AddSource("s1").status());
  FaultInjector injector(&grid);

  const Timestamp anchor = Timestamp::FromSeconds(1000);
  TRAC_ASSERT_OK(injector.SetClockSkew("s1", -5 * Timestamp::kMicrosPerSecond,
                                       100000, anchor));
  // At anchor: only the offset. 10s later: offset + 10s * 10% drift.
  EXPECT_EQ(injector.SourceTime("s1", anchor),
            anchor - 5 * Timestamp::kMicrosPerSecond);
  EXPECT_EQ(injector.SourceTime("s1", anchor + 10 * Timestamp::kMicrosPerSecond),
            anchor + 6 * Timestamp::kMicrosPerSecond);
  // Unknown sources are identity / NotFound.
  EXPECT_EQ(injector.SourceTime("nope", anchor), anchor);
  EXPECT_FALSE(injector.SetClockSkew("nope", 0, 0, anchor).ok());
  // A drift at or below -100% would run time backwards.
  EXPECT_FALSE(injector.SetClockSkew("s1", 0, -1000000, anchor).ok());
  TRAC_ASSERT_OK(injector.SetClockSkew("s1", 0, -999999, anchor));
}

TEST(FaultInjectorTest, TruncateClampsToUnshippedAndMarksLossy) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(GridSimulator grid, GridSimulator::Create(&db));
  grid.clock().AdvanceTo(Timestamp::FromSeconds(1000));
  SnifferOptions options;
  options.poll_interval_micros = Timestamp::kMicrosPerSecond;
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * source,
                            grid.AddSource("s1", options));
  FaultInjector injector(&grid);

  for (int i = 0; i < 5; ++i) {
    source->EmitHeartbeat(Timestamp::FromSeconds(1001 + i));
  }
  // Ship the first three (poll at t=1003 with no ship delay ships
  // everything stamped <= 1003).
  TRAC_ASSERT_OK(grid.RunUntil(Timestamp::FromSeconds(1003)));
  ASSERT_EQ(grid.sniffer("s1")->records_shipped(), 3u);

  // Asking to drop 10 can only lose the 2 unshipped records.
  TRAC_ASSERT_OK_AND_ASSIGN(size_t lost, injector.TruncateLog("s1", 10));
  EXPECT_EQ(lost, 2u);
  EXPECT_TRUE(injector.IsLossy("s1"));
  EXPECT_EQ(source->log().size(), 3u);

  // Nothing left to lose: not counted, lossy stays.
  TRAC_ASSERT_OK_AND_ASSIGN(lost, injector.TruncateLog("s1", 1));
  EXPECT_EQ(lost, 0u);
  EXPECT_TRUE(injector.IsLossy("s1"));
  EXPECT_FALSE(injector.IsLossy("other"));
}

TEST(FaultInjectorTest, FrontierTracksEarliestUnshippedRecord) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(GridSimulator grid, GridSimulator::Create(&db));
  grid.clock().AdvanceTo(Timestamp::FromSeconds(1000));
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * source, grid.AddSource("s1"));
  FaultInjector injector(&grid);

  const Timestamp now = Timestamp::FromSeconds(1050);
  // Empty backlog: the frontier is the source-clock now.
  TRAC_ASSERT_OK_AND_ASSIGN(Timestamp frontier,
                            injector.TrueFrontier("s1", now));
  EXPECT_EQ(frontier, now);

  source->EmitHeartbeat(Timestamp::FromSeconds(1010));
  source->EmitHeartbeat(Timestamp::FromSeconds(1020));
  TRAC_ASSERT_OK_AND_ASSIGN(frontier, injector.TrueFrontier("s1", now));
  EXPECT_EQ(frontier, Timestamp::FromSeconds(1010));

  // With skew, the empty-backlog frontier moves to the skewed clock.
  // Ship the backlog first: records stamped 1010/1020 are only
  // ship-eligible once the simulated clock passes them.
  TRAC_ASSERT_OK(injector.SetClockSkew(
      "s1", -7 * Timestamp::kMicrosPerSecond, 0, Timestamp::FromSeconds(1000)));
  grid.clock().AdvanceTo(Timestamp::FromSeconds(1030));
  TRAC_ASSERT_OK(grid.PollAll());
  TRAC_ASSERT_OK_AND_ASSIGN(frontier, injector.TrueFrontier("s1", now));
  EXPECT_EQ(frontier, now - 7 * Timestamp::kMicrosPerSecond);
}

TEST(FaultInjectorTest, ShipDelayComposesAndClamps) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(GridSimulator grid, GridSimulator::Create(&db));
  TRAC_ASSERT_OK(grid.AddSource("s1").status());
  FaultInjector injector(&grid);

  TRAC_ASSERT_OK(injector.AddShipDelay("s1", 5000));
  TRAC_ASSERT_OK(injector.AddShipDelay("s1", 2000));
  EXPECT_EQ(grid.sniffer("s1")->options().ship_delay_micros, 7000);
  TRAC_ASSERT_OK(injector.AddShipDelay("s1", -100000));
  EXPECT_EQ(grid.sniffer("s1")->options().ship_delay_micros, 0);
  EXPECT_FALSE(injector.AddShipDelay("missing", 1).ok());
}

ScenarioScript SmallScript() {
  ScenarioScript script;
  script.seed = 1234;
  script.num_sources = 24;
  script.num_racks = 4;
  script.step_micros = 5 * Timestamp::kMicrosPerSecond;
  script.duration_micros = 20 * script.step_micros;
  script.poll_micros = 5 * Timestamp::kMicrosPerSecond;
  script.ship_delay_micros = 0;
  script.heartbeat_micros = 10 * Timestamp::kMicrosPerSecond;
  script.event_rate = 0.5;
  script.focus = 5;
  return script;
}

TEST(ScenarioRunnerTest, RunsToCompletionAndOraclesHold) {
  ScenarioScript script = SmallScript();
  FaultSpec outage;
  outage.kind = FaultSpec::Kind::kRackOutage;
  outage.start_micros = 20 * Timestamp::kMicrosPerSecond;
  outage.duration_micros = 30 * Timestamp::kMicrosPerSecond;
  outage.racks = {1, 2};
  script.faults.push_back(outage);

  Database db;
  MetricRegistry metrics;
  ScenarioRunnerOptions options;
  options.metrics = &metrics;
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ScenarioRunner> runner,
      ScenarioRunner::Create(&db, script, options));
  ASSERT_EQ(runner->source_ids().size(), 24u);
  ASSERT_EQ(runner->focused_ids().size(), 5u);

  while (!runner->done()) {
    TRAC_ASSERT_OK(runner->Step());
    RecencyReport report = MustReport(runner.get(), runner->FocusedSql());
    const OracleOutcome outcome =
        oracle::CheckReport(*runner, report, runner->focused_ids());
    ASSERT_TRUE(outcome.ok()) << outcome.Summary();
  }
  EXPECT_EQ(runner->steps_done(), script.steps());
  EXPECT_GT(runner->events_emitted(), 0);
  EXPECT_FALSE(runner->Step().ok()) << "stepping past the end must fail";
}

TEST(ScenarioRunnerTest, FocusedQueryMatchesBruteForceGroundTruth) {
  ScenarioScript script = SmallScript();
  Database db;
  MetricRegistry metrics;
  ScenarioRunnerOptions options;
  options.metrics = &metrics;
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ScenarioRunner> runner,
      ScenarioRunner::Create(&db, script, options));
  for (int i = 0; i < 6; ++i) TRAC_ASSERT_OK(runner->Step());

  RecencyReport report = MustReport(runner.get(), runner->FocusedSql());
  EXPECT_EQ(report.relevance.analysis.verdict,
            RecencyGuarantee::kExactMinimum);

  // The paper's evaluation methodology: the exact S(Q) via enumeration
  // over the finite domains (possible because the scenario schema
  // declares them on every column).
  TRAC_ASSERT_OK_AND_ASSIGN(BoundQuery query,
                            BindSql(db, runner->FocusedSql()));
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::vector<std::string> brute,
      BruteForceRelevantSources(db, query, db.LatestSnapshot()));
  EXPECT_EQ(brute, runner->focused_ids());

  std::vector<std::string> reported;
  for (const SourceRecency& sr : report.relevance.sources) {
    reported.push_back(sr.source);
  }
  EXPECT_EQ(reported, brute);
}

TEST(ScenarioRunnerTest, NaiveMethodReportsAllSourcesAsUpperBound) {
  ScenarioScript script = SmallScript();
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ScenarioRunner> runner,
                            ScenarioRunner::Create(&db, script));
  for (int i = 0; i < 3; ++i) TRAC_ASSERT_OK(runner->Step());

  RecencyReport report =
      MustReport(runner.get(), runner->FocusedSql(), RecencyMethod::kNaive);
  EXPECT_EQ(report.relevance.analysis.verdict, RecencyGuarantee::kUpperBound);
  EXPECT_EQ(report.relevance.sources.size(), script.num_sources);
  const OracleOutcome outcome =
      oracle::CheckReport(*runner, report, runner->focused_ids());
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
}

TEST(ScenarioRunnerTest, UnsatisfiablePredicateGetsEmptySetVerdict) {
  ScenarioScript script = SmallScript();
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ScenarioRunner> runner,
                            ScenarioRunner::Create(&db, script));
  TRAC_ASSERT_OK(runner->Step());

  RecencyReport report = MustReport(runner.get(), runner->EmptySql());
  EXPECT_EQ(report.relevance.analysis.verdict, RecencyGuarantee::kEmptySet);
  EXPECT_TRUE(report.relevance.sources.empty());
  const OracleOutcome outcome = oracle::CheckReport(*runner, report, {});
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
}

TEST(ScenarioRunnerTest, ReplayIsByteIdentical) {
  ScenarioGenOptions gen;
  gen.min_sources = 8;
  gen.max_sources = 64;
  const ScenarioScript script = ScenarioScript::Generate(4242, gen);

  auto run_once = [&](std::string* notices, int64_t* events) {
    Database db;
    MetricRegistry metrics;
    ScenarioRunnerOptions options;
    options.metrics = &metrics;
    TRAC_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ScenarioRunner> runner,
                              ScenarioRunner::Create(&db, script, options));
    while (!runner->done()) TRAC_ASSERT_OK(runner->Step());
    RecencyReport report = MustReport(runner.get(), runner->FocusedSql());
    *notices = report.FormatNotices();
    *events = runner->events_emitted();
  };
  std::string notices_a, notices_b;
  int64_t events_a = 0, events_b = 0;
  run_once(&notices_a, &events_a);
  run_once(&notices_b, &events_b);
  EXPECT_EQ(notices_a, notices_b);
  EXPECT_EQ(events_a, events_b);
  EXPECT_GT(events_a, 0);
}

// --- Mutation tests: the oracles must catch deliberately broken data. ---

class OracleMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    script_ = SmallScript();
    // An outage makes the paused rack's recencies drift apart, giving
    // the bound and z-score checks real spread to work with.
    FaultSpec outage;
    outage.kind = FaultSpec::Kind::kRackOutage;
    outage.start_micros = 10 * Timestamp::kMicrosPerSecond;
    outage.duration_micros = 60 * Timestamp::kMicrosPerSecond;
    outage.racks = {0};
    script_.faults.push_back(outage);
    auto runner = ScenarioRunner::Create(&db_, script_);
    ASSERT_TRUE(runner.ok()) << runner.status().ToString();
    runner_ = std::move(*runner);
    for (int i = 0; i < 10; ++i) TRAC_ASSERT_OK(runner_->Step());
    report_ = MustReport(runner_.get(), runner_->FocusedSql());
    const OracleOutcome clean =
        oracle::CheckReport(*runner_, report_, runner_->focused_ids());
    ASSERT_TRUE(clean.ok()) << "baseline must be clean: " << clean.Summary();
    ASSERT_FALSE(report_.stats.normal.empty());
  }

  ScenarioScript script_;
  Database db_;
  std::unique_ptr<ScenarioRunner> runner_;
  RecencyReport report_;
};

TEST_F(OracleMutationTest, CatchesUnderclaimedBound) {
  RecencyReport broken = report_;
  broken.stats.inconsistency_bound_micros = 0;
  if (report_.stats.inconsistency_bound_micros == 0) {
    broken.stats.inconsistency_bound_micros = -1;
  }
  const OracleOutcome outcome = oracle::CheckBoundDominance(*runner_, broken);
  EXPECT_FALSE(outcome.ok())
      << "a zeroed bound of inconsistency must be flagged";
}

TEST_F(OracleMutationTest, CatchesFabricatedRecency) {
  RecencyReport broken = report_;
  ASSERT_FALSE(broken.relevance.sources.empty());
  // Claim one source is far fresher than the Heartbeat table says (and
  // than its frontier allows).
  broken.relevance.sources[0].recency =
      broken.relevance.sources[0].recency + Timestamp::kMicrosPerDay;
  const OracleOutcome outcome = oracle::CheckBoundDominance(*runner_, broken);
  EXPECT_FALSE(outcome.ok()) << "a forged recency must be flagged";
}

TEST_F(OracleMutationTest, CatchesMisclassifiedSource) {
  RecencyReport broken = report_;
  // Move one normal source into the exceptional bucket without any
  // z-score justification.
  broken.stats.exceptional.push_back(broken.stats.normal.back());
  broken.stats.normal.pop_back();
  const OracleOutcome outcome = oracle::CheckZscoreAgreement(broken.stats);
  EXPECT_FALSE(outcome.ok())
      << "an unjustified normal->exceptional move must be flagged";
}

TEST_F(OracleMutationTest, CatchesOverclaimedGuarantee) {
  RecencyReport broken = report_;
  ASSERT_EQ(broken.relevance.analysis.verdict,
            RecencyGuarantee::kExactMinimum);
  // Drop a truly relevant source from A(Q): EXACT_MINIMUM now lies.
  ASSERT_FALSE(broken.relevance.sources.empty());
  broken.relevance.sources.pop_back();
  const OracleOutcome outcome =
      oracle::CheckGuarantee(broken, runner_->focused_ids());
  EXPECT_FALSE(outcome.ok())
      << "EXACT_MINIMUM with a missing relevant source must be flagged";
}

}  // namespace
}  // namespace trac
