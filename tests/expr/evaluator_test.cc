#include "expr/evaluator.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sql/parser.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

TEST(TriBoolTest, TruthTables) {
  using enum TriBool;
  // NOT.
  EXPECT_EQ(TriNot(kTrue), kFalse);
  EXPECT_EQ(TriNot(kFalse), kTrue);
  EXPECT_EQ(TriNot(kUnknown), kUnknown);
  // AND.
  EXPECT_EQ(TriAnd(kTrue, kTrue), kTrue);
  EXPECT_EQ(TriAnd(kTrue, kFalse), kFalse);
  EXPECT_EQ(TriAnd(kFalse, kUnknown), kFalse);
  EXPECT_EQ(TriAnd(kTrue, kUnknown), kUnknown);
  EXPECT_EQ(TriAnd(kUnknown, kUnknown), kUnknown);
  // OR.
  EXPECT_EQ(TriOr(kFalse, kFalse), kFalse);
  EXPECT_EQ(TriOr(kTrue, kUnknown), kTrue);
  EXPECT_EQ(TriOr(kFalse, kUnknown), kUnknown);
  EXPECT_EQ(TriOr(kUnknown, kUnknown), kUnknown);
  EXPECT_TRUE(IsTrue(kTrue));
  EXPECT_FALSE(IsTrue(kUnknown));
  EXPECT_FALSE(IsTrue(kFalse));
}

class EvaluatorTest : public ::testing::Test {
 protected:
  /// Evaluates `predicate` against a routing row (mach_id, neighbor,
  /// event_time).
  TriBool Eval(const std::string& predicate, Row row) {
    auto scope = BindSql(fixture_.db, "SELECT mach_id FROM routing");
    EXPECT_TRUE(scope.ok());
    auto parsed = ParsePredicate(predicate);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto bound = BindPredicateInScope(fixture_.db, *scope, **parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    TupleView tuple = {&row};
    auto v = EvalPredicate(**bound, tuple);
    EXPECT_TRUE(v.ok()) << v.status();
    return v.ok() ? *v : TriBool::kUnknown;
  }

  Row R(const char* a, const char* b) {
    return {a ? Value::Str(a) : Value::Null(),
            b ? Value::Str(b) : Value::Null(), Value::Null()};
  }

  PaperExampleDb fixture_{/*finite_domains=*/false};
};

TEST_F(EvaluatorTest, Comparisons) {
  EXPECT_EQ(Eval("mach_id = 'm1'", R("m1", "m3")), TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id = 'm2'", R("m1", "m3")), TriBool::kFalse);
  EXPECT_EQ(Eval("mach_id < neighbor", R("m1", "m3")), TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id >= neighbor", R("m1", "m3")), TriBool::kFalse);
  EXPECT_EQ(Eval("mach_id <> 'm9'", R("m1", "m3")), TriBool::kTrue);
}

TEST_F(EvaluatorTest, NullPropagatesToUnknown) {
  EXPECT_EQ(Eval("mach_id = 'm1'", R(nullptr, "m3")), TriBool::kUnknown);
  EXPECT_EQ(Eval("mach_id <> 'm1'", R(nullptr, "m3")), TriBool::kUnknown);
  EXPECT_EQ(Eval("mach_id = neighbor", R("m1", nullptr)), TriBool::kUnknown);
}

TEST_F(EvaluatorTest, InListSemantics) {
  EXPECT_EQ(Eval("mach_id IN ('m1','m2')", R("m1", "m3")), TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id IN ('m2','m3')", R("m1", "m3")), TriBool::kFalse);
  EXPECT_EQ(Eval("mach_id IN ('m2')", R(nullptr, "m3")), TriBool::kUnknown);
  // x IN (a, NULL): TRUE if x = a, else Unknown (never FALSE).
  EXPECT_EQ(Eval("mach_id IN ('m1', NULL)", R("m1", "m3")), TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id IN ('m2', NULL)", R("m1", "m3")),
            TriBool::kUnknown);
  // NOT IN flips: x NOT IN (a, NULL) is FALSE if x = a, else Unknown.
  EXPECT_EQ(Eval("mach_id NOT IN ('m1', NULL)", R("m1", "m3")),
            TriBool::kFalse);
  EXPECT_EQ(Eval("mach_id NOT IN ('m2', NULL)", R("m1", "m3")),
            TriBool::kUnknown);
  EXPECT_EQ(Eval("mach_id NOT IN ('m2','m3')", R("m1", "m3")),
            TriBool::kTrue);
}

TEST_F(EvaluatorTest, BetweenSemantics) {
  EXPECT_EQ(Eval("mach_id BETWEEN 'm1' AND 'm3'", R("m2", "x")),
            TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id BETWEEN 'm3' AND 'm9'", R("m2", "x")),
            TriBool::kFalse);
  EXPECT_EQ(Eval("mach_id NOT BETWEEN 'm3' AND 'm9'", R("m2", "x")),
            TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id BETWEEN 'm1' AND 'm3'", R(nullptr, "x")),
            TriBool::kUnknown);
  // v >= NULL is Unknown; Unknown AND TRUE = Unknown.
  EXPECT_EQ(Eval("mach_id BETWEEN NULL AND 'm3'", R("m2", "x")),
            TriBool::kUnknown);
  // But v > hi already FALSE makes the AND FALSE regardless of NULL.
  EXPECT_EQ(Eval("mach_id BETWEEN NULL AND 'm1'", R("m2", "x")),
            TriBool::kFalse);
}

TEST_F(EvaluatorTest, IsNullSemantics) {
  EXPECT_EQ(Eval("mach_id IS NULL", R(nullptr, "x")), TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id IS NULL", R("m1", "x")), TriBool::kFalse);
  EXPECT_EQ(Eval("mach_id IS NOT NULL", R("m1", "x")), TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id IS NOT NULL", R(nullptr, "x")), TriBool::kFalse);
}

TEST_F(EvaluatorTest, LogicalConnectives) {
  EXPECT_EQ(Eval("mach_id = 'm1' AND neighbor = 'm3'", R("m1", "m3")),
            TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id = 'm1' AND neighbor = 'm9'", R("m1", "m3")),
            TriBool::kFalse);
  EXPECT_EQ(Eval("mach_id = 'm9' OR neighbor = 'm3'", R("m1", "m3")),
            TriBool::kTrue);
  EXPECT_EQ(Eval("NOT mach_id = 'm1'", R("m1", "m3")), TriBool::kFalse);
  // Unknown interplay: FALSE AND Unknown = FALSE; TRUE OR Unknown = TRUE.
  EXPECT_EQ(Eval("mach_id = 'm9' AND neighbor = 'm3'", R("m9", nullptr)),
            TriBool::kUnknown);
  EXPECT_EQ(Eval("mach_id = 'm1' AND neighbor = 'm3'", R("m9", nullptr)),
            TriBool::kFalse);
  EXPECT_EQ(Eval("mach_id = 'm9' OR neighbor = 'm3'", R("m9", nullptr)),
            TriBool::kTrue);
  EXPECT_EQ(Eval("mach_id = 'm1' OR neighbor = 'm3'", R("m9", nullptr)),
            TriBool::kUnknown);
  EXPECT_EQ(Eval("NOT neighbor = 'm3'", R("m9", nullptr)),
            TriBool::kUnknown);
}

TEST_F(EvaluatorTest, ConstantPredicates) {
  EXPECT_EQ(Eval("TRUE", R("m1", "m3")), TriBool::kTrue);
  EXPECT_EQ(Eval("FALSE", R("m1", "m3")), TriBool::kFalse);
  EXPECT_EQ(Eval("NULL", R("m1", "m3")), TriBool::kUnknown);
  EXPECT_EQ(Eval("1 = 1", R("m1", "m3")), TriBool::kTrue);
  EXPECT_EQ(Eval("1 = 2", R("m1", "m3")), TriBool::kFalse);
}

TEST_F(EvaluatorTest, ScalarEvaluation) {
  auto scope = BindSql(fixture_.db, "SELECT mach_id FROM routing");
  ASSERT_TRUE(scope.ok());
  Row row = R("m1", "m3");
  TupleView tuple = {&row};
  BoundExprPtr col = MakeBoundColumn(BoundColumnRef{0, 1, TypeId::kString});
  TRAC_ASSERT_OK_AND_ASSIGN(Value v, EvalScalar(*col, tuple));
  EXPECT_EQ(v, Value::Str("m3"));
  BoundExprPtr lit = MakeBoundLiteral(Value::Int(42));
  TRAC_ASSERT_OK_AND_ASSIGN(Value l, EvalScalar(*lit, tuple));
  EXPECT_EQ(l, Value::Int(42));
}

TEST(BinderTest, ResolvesQualifiedAndUnqualified) {
  PaperExampleDb fixture;
  // Unqualified unique column.
  EXPECT_TRUE(BindSql(fixture.db, "SELECT value FROM activity").ok());
  // Qualified with alias.
  EXPECT_TRUE(
      BindSql(fixture.db, "SELECT a.value FROM activity a").ok());
  // Qualifier mismatch.
  EXPECT_FALSE(
      BindSql(fixture.db, "SELECT b.value FROM activity a").ok());
  // Ambiguous across relations.
  EXPECT_FALSE(
      BindSql(fixture.db,
              "SELECT mach_id FROM activity, routing").ok());
  // Disambiguated by qualifier.
  EXPECT_TRUE(
      BindSql(fixture.db,
              "SELECT a.mach_id FROM activity a, routing r").ok());
}

TEST(BinderTest, DuplicateAliasRejected) {
  PaperExampleDb fixture;
  EXPECT_FALSE(
      BindSql(fixture.db, "SELECT t.value FROM activity t, routing t").ok());
  // Same table twice needs distinct aliases (self join allowed).
  EXPECT_TRUE(
      BindSql(fixture.db,
              "SELECT r1.mach_id FROM routing r1, routing r2 "
              "WHERE r1.neighbor = r2.mach_id")
          .ok());
}

TEST(BinderTest, LiteralCoercions) {
  PaperExampleDb fixture;
  // String literal against a timestamp column parses as a timestamp.
  auto q = BindSql(fixture.db,
                   "SELECT mach_id FROM activity WHERE event_time > "
                   "'2006-01-01 00:00:00'");
  ASSERT_TRUE(q.ok()) << q.status();
  const BoundExpr& rhs = *q->where->children[1];
  EXPECT_EQ(rhs.literal.type(), TypeId::kTimestamp);
  // Unparsable string against a timestamp column is a bind error.
  EXPECT_FALSE(BindSql(fixture.db,
                       "SELECT mach_id FROM activity WHERE event_time > "
                       "'not a time'")
                   .ok());
  // Int literal against a string column is a type error.
  EXPECT_FALSE(
      BindSql(fixture.db, "SELECT mach_id FROM activity WHERE value = 7")
          .ok());
}

TEST(BinderTest, CountStarAndStar) {
  PaperExampleDb fixture;
  auto count = BindSql(fixture.db, "SELECT COUNT(*) FROM activity");
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(count->count_star);
  EXPECT_TRUE(count->outputs.empty());

  auto star = BindSql(fixture.db, "SELECT * FROM routing r, activity a");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->outputs.size(), 6u);
}

TEST(BinderTest, BoundQueryToSqlRoundTrips) {
  PaperExampleDb fixture;
  const std::string sql =
      "SELECT a.mach_id FROM routing r, activity a WHERE r.mach_id = 'm1' "
      "AND a.value = 'idle' AND r.neighbor = a.mach_id";
  TRAC_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindSql(fixture.db, sql));
  std::string rendered = q.ToSql(fixture.db);
  TRAC_ASSERT_OK_AND_ASSIGN(BoundQuery q2, BindSql(fixture.db, rendered));
  EXPECT_EQ(rendered, q2.ToSql(fixture.db));
}

TEST(BoundExprTest, CloneAndRewrite) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT r.mach_id FROM routing r, activity a "
              "WHERE r.neighbor = a.mach_id AND a.value = 'idle'"));
  BoundExprPtr clone = q.where->Clone();
  EXPECT_EQ(clone->ReferencedRelations(), q.where->ReferencedRelations());
  // Rewriting the clone leaves the original untouched.
  clone->RewriteColumnRefs([](BoundColumnRef* ref) { ref->rel += 10; });
  EXPECT_EQ(q.where->ReferencedRelations(), 0b11u);
  EXPECT_EQ(clone->ReferencedRelations(),
            (uint64_t{1} << 10) | (uint64_t{1} << 11));
}

}  // namespace
}  // namespace trac
