#include "types/value.h"

#include <gtest/gtest.h>

namespace trac {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), TypeId::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), TypeId::kBool);
  EXPECT_EQ(Value::Int(3).type(), TypeId::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), TypeId::kDouble);
  EXPECT_EQ(Value::Str("x").type(), TypeId::kString);
  EXPECT_EQ(Value::Ts(Timestamp(7)).type(), TypeId::kTimestamp);
}

TEST(ValueTest, Accessors) {
  EXPECT_TRUE(Value::Bool(true).bool_val());
  EXPECT_EQ(Value::Int(42).int_val(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_val(), 2.5);
  EXPECT_EQ(Value::Str("idle").str_val(), "idle");
  EXPECT_EQ(Value::Ts(Timestamp(99)).ts_val().micros(), 99);
}

TEST(ValueTest, CompareSameTypes) {
  auto cmp = [](const Value& a, const Value& b) {
    auto r = Value::Compare(a, b);
    EXPECT_TRUE(r.ok());
    return r.value_or(0);
  };
  EXPECT_LT(cmp(Value::Int(1), Value::Int(2)), 0);
  EXPECT_EQ(cmp(Value::Int(5), Value::Int(5)), 0);
  EXPECT_GT(cmp(Value::Str("b"), Value::Str("a")), 0);
  EXPECT_LT(cmp(Value::Ts(Timestamp(1)), Value::Ts(Timestamp(2))), 0);
  EXPECT_LT(cmp(Value::Bool(false), Value::Bool(true)), 0);
}

TEST(ValueTest, CompareNumericCoercion) {
  auto r = Value::Compare(Value::Int(2), Value::Double(2.0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0);
  r = Value::Compare(Value::Double(1.5), Value::Int(2));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(*r, 0);
}

TEST(ValueTest, CompareNullFails) {
  EXPECT_FALSE(Value::Compare(Value::Null(), Value::Int(1)).ok());
  EXPECT_FALSE(Value::Compare(Value::Int(1), Value::Null()).ok());
}

TEST(ValueTest, CompareIncompatibleTypesFails) {
  EXPECT_FALSE(Value::Compare(Value::Int(1), Value::Str("1")).ok());
  EXPECT_FALSE(
      Value::Compare(Value::Ts(Timestamp(0)), Value::Int(0)).ok());
  EXPECT_FALSE(Value::Compare(Value::Bool(true), Value::Int(1)).ok());
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_FALSE(Value::Int(3) == Value::Double(3.0));  // Structural, not SQL.
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
}

TEST(ValueTest, StructuralOrderIsTotalAcrossTypes) {
  std::vector<Value> values = {Value::Null(),     Value::Bool(false),
                               Value::Int(1),     Value::Double(0.5),
                               Value::Str("a"),   Value::Ts(Timestamp(0))};
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      EXPECT_TRUE(values[i] < values[j]) << i << " " << j;
      EXPECT_FALSE(values[j] < values[i]);
    }
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  // Different types hash differently even with similar payloads (not a
  // strict requirement, but we rely on the type tag feeding the hash).
  EXPECT_NE(Value::Int(0).Hash(), Value::Bool(false).Hash());
}

TEST(ValueTest, ToSqlLiteralQuotesStrings) {
  EXPECT_EQ(Value::Str("idle").ToSqlLiteral(), "'idle'");
  EXPECT_EQ(Value::Str("o'brien").ToSqlLiteral(), "'o''brien'");
  EXPECT_EQ(Value::Int(12).ToSqlLiteral(), "12");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToSqlLiteral(), "TRUE");
  auto ts = Timestamp::Parse("2006-03-15 14:20:05");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(Value::Ts(*ts).ToSqlLiteral(), "TIMESTAMP '2006-03-15 14:20:05'");
}

TEST(RowTest, HashAndEquality) {
  Row a = {Value::Str("m1"), Value::Int(3)};
  Row b = {Value::Str("m1"), Value::Int(3)};
  Row c = {Value::Str("m1"), Value::Int(4)};
  EXPECT_EQ(a, b);
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace trac
