#include "types/domain.h"

#include <gtest/gtest.h>

namespace trac {
namespace {

TEST(DomainTest, InfiniteContainsEverythingOfItsType) {
  Domain d = Domain::Infinite(TypeId::kString);
  EXPECT_FALSE(d.is_finite());
  EXPECT_TRUE(d.Contains(Value::Str("anything")));
  EXPECT_FALSE(d.Contains(Value::Int(3)));
  EXPECT_FALSE(d.Contains(Value::Null()));
}

TEST(DomainTest, InfiniteDoubleAcceptsIntValues) {
  Domain d = Domain::Infinite(TypeId::kDouble);
  EXPECT_TRUE(d.Contains(Value::Double(1.5)));
  EXPECT_TRUE(d.Contains(Value::Int(2)));  // Coercible.
}

TEST(DomainTest, FiniteSortsAndDeduplicates) {
  Domain d = Domain::Finite(
      TypeId::kString,
      {Value::Str("b"), Value::Str("a"), Value::Str("b"), Value::Str("c")});
  EXPECT_TRUE(d.is_finite());
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.values()[0], Value::Str("a"));
  EXPECT_EQ(d.values()[2], Value::Str("c"));
  EXPECT_TRUE(d.Contains(Value::Str("b")));
  EXPECT_FALSE(d.Contains(Value::Str("z")));
  EXPECT_FALSE(d.Contains(Value::Null()));
}

TEST(DomainTest, EmptyFiniteDomainContainsNothing) {
  Domain d = Domain::Finite(TypeId::kInt64, {});
  EXPECT_TRUE(d.is_finite());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_FALSE(d.Contains(Value::Int(0)));
}

TEST(DomainTest, ProvablyDisjointFiniteFinite) {
  Domain a = Domain::Finite(TypeId::kString,
                            {Value::Str("x"), Value::Str("y")});
  Domain b = Domain::Finite(TypeId::kString,
                            {Value::Str("p"), Value::Str("q")});
  Domain c = Domain::Finite(TypeId::kString,
                            {Value::Str("y"), Value::Str("z")});
  EXPECT_TRUE(Domain::ProvablyDisjoint(a, b));
  EXPECT_FALSE(Domain::ProvablyDisjoint(a, c));  // Shared 'y'.
}

TEST(DomainTest, InfiniteNeverProvablyDisjointFromSameType) {
  Domain inf = Domain::Infinite(TypeId::kString);
  Domain fin = Domain::Finite(TypeId::kString, {Value::Str("x")});
  EXPECT_FALSE(Domain::ProvablyDisjoint(inf, fin));
  EXPECT_FALSE(Domain::ProvablyDisjoint(inf, inf));
}

TEST(DomainTest, IncomparableTypesAreDisjoint) {
  Domain s = Domain::Infinite(TypeId::kString);
  Domain i = Domain::Infinite(TypeId::kInt64);
  EXPECT_TRUE(Domain::ProvablyDisjoint(s, i));
}

TEST(DomainTest, MixedNumericDomainsCompareByValue) {
  // Int and double domains share the numeric value 2 even though the
  // structural representations differ.
  Domain ints = Domain::Finite(TypeId::kInt64, {Value::Int(1), Value::Int(2)});
  Domain doubles =
      Domain::Finite(TypeId::kDouble, {Value::Double(2.0), Value::Double(3.5)});
  EXPECT_FALSE(Domain::ProvablyDisjoint(ints, doubles));
  Domain other =
      Domain::Finite(TypeId::kDouble, {Value::Double(0.5), Value::Double(9.0)});
  EXPECT_TRUE(Domain::ProvablyDisjoint(ints, other));
}

}  // namespace
}  // namespace trac
