#include "predicate/basic_term.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "predicate/normalize.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

/// Binds the paper's two-relation query shape and classifies every
/// basic term against each relation.
class ClassifyTest : public ::testing::Test {
 protected:
  /// Returns the classification of each top-level AND term of `sql`'s
  /// WHERE clause, relative to relation slot `target`.
  std::vector<TermClass> Classify(const std::string& sql, size_t target) {
    auto bound = BindSql(fixture_.db, sql);
    EXPECT_TRUE(bound.ok()) << bound.status();
    query_ = std::move(*bound);
    auto dnf = ToDnf(*query_.where);
    EXPECT_TRUE(dnf.ok()) << dnf.status();
    EXPECT_EQ(dnf->conjuncts.size(), 1u);
    std::vector<TermClass> out;
    for (const BasicTerm& term : dnf->conjuncts[0]) {
      out.push_back(ClassifyTerm(fixture_.db, query_, term, target));
    }
    return out;
  }

  PaperExampleDb fixture_;
  BoundQuery query_;
};

// The paper's Q2: R.mach_id='m1' AND A.value='idle' AND
// R.neighbor=A.mach_id, classified per Section 4.1.2's walkthrough.
TEST_F(ClassifyTest, PaperQ2ViaRouting) {
  auto classes = Classify(
      "SELECT A.mach_id FROM Routing R, Activity A "
      "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
      "AND R.neighbor = A.mach_id",
      /*target=*/0);  // R.
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0], TermClass::kPs);   // R.mach_id = 'm1'.
  EXPECT_EQ(classes[1], TermClass::kPo);   // A.value = 'idle'.
  EXPECT_EQ(classes[2], TermClass::kJrm);  // R.neighbor = A.mach_id.
}

TEST_F(ClassifyTest, PaperQ2ViaActivity) {
  auto classes = Classify(
      "SELECT A.mach_id FROM Routing R, Activity A "
      "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
      "AND R.neighbor = A.mach_id",
      /*target=*/1);  // A.
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0], TermClass::kPo);  // R.mach_id = 'm1'.
  EXPECT_EQ(classes[1], TermClass::kPr);  // A.value = 'idle'.
  // R.neighbor = A.mach_id references only c_s among A's columns -> Js.
  EXPECT_EQ(classes[2], TermClass::kJs);
}

TEST_F(ClassifyTest, MixedSelectionPredicate) {
  auto classes =
      Classify("SELECT mach_id FROM Routing WHERE mach_id = neighbor", 0);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], TermClass::kPm);
}

TEST_F(ClassifyTest, DataSourceOnlySelection) {
  auto classes =
      Classify("SELECT mach_id FROM Routing WHERE mach_id IN ('m1','m2')", 0);
  EXPECT_EQ(classes[0], TermClass::kPs);
}

TEST_F(ClassifyTest, RegularOnlySelection) {
  auto classes =
      Classify("SELECT mach_id FROM Routing WHERE neighbor = 'm3'", 0);
  EXPECT_EQ(classes[0], TermClass::kPr);
}

TEST_F(ClassifyTest, ConstantTermIsPo) {
  auto classes = Classify("SELECT mach_id FROM Routing WHERE TRUE", 0);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], TermClass::kPo);
}

TEST_F(ClassifyTest, DataSourceToDataSourceJoinIsJs) {
  auto classes = Classify(
      "SELECT R.mach_id FROM Routing R, Activity A "
      "WHERE R.mach_id = A.mach_id",
      0);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], TermClass::kJs);
  // Symmetric for the other side.
  auto classes_a = Classify(
      "SELECT R.mach_id FROM Routing R, Activity A "
      "WHERE R.mach_id = A.mach_id",
      1);
  EXPECT_EQ(classes_a[0], TermClass::kJs);
}

TEST_F(ClassifyTest, JoinTouchingBothRegularAndSourceIsJrm) {
  // Term referencing R's c_s AND R's regular column AND another table.
  auto classes = Classify(
      "SELECT R.mach_id FROM Routing R, Activity A "
      "WHERE R.mach_id = 'm1' AND R.neighbor = A.mach_id "
      "AND R.mach_id = A.mach_id",
      0);
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[1], TermClass::kJrm);
  EXPECT_EQ(classes[2], TermClass::kJs);
}

TEST(BasicTermTest, TracksColumnsAndRelations) {
  PaperExampleDb fixture;
  auto bound = BindSql(fixture.db,
                       "SELECT R.mach_id FROM Routing R, Activity A "
                       "WHERE R.neighbor = A.mach_id");
  ASSERT_TRUE(bound.ok());
  BasicTerm term = BasicTerm::Make(bound->where->Clone());
  EXPECT_EQ(term.columns.size(), 2u);
  EXPECT_EQ(term.rel_mask, 0b11u);
  EXPECT_FALSE(term.IsSelection());
  EXPECT_TRUE(term.ReferencesRelation(0));
  EXPECT_TRUE(term.ReferencesRelation(1));
  EXPECT_FALSE(term.ReferencesRelation(2));

  BasicTerm copy = term.Clone();
  EXPECT_EQ(copy.rel_mask, term.rel_mask);
  EXPECT_EQ(copy.columns.size(), term.columns.size());
}

TEST(BasicTermTest, SelectionWithinOneRelation) {
  PaperExampleDb fixture;
  auto bound = BindSql(fixture.db,
                       "SELECT mach_id FROM Routing WHERE mach_id = "
                       "neighbor");
  ASSERT_TRUE(bound.ok());
  BasicTerm term = BasicTerm::Make(bound->where->Clone());
  EXPECT_TRUE(term.IsSelection());
  EXPECT_EQ(term.columns.size(), 2u);
}

TEST(BasicTermTest, ConstantTermHasNoRelations) {
  PaperExampleDb fixture;
  auto bound =
      BindSql(fixture.db, "SELECT mach_id FROM Routing WHERE TRUE");
  ASSERT_TRUE(bound.ok());
  BasicTerm term = BasicTerm::Make(bound->where->Clone());
  EXPECT_TRUE(term.columns.empty());
  EXPECT_EQ(term.rel_mask, 0u);
  EXPECT_TRUE(term.IsSelection());
}

}  // namespace
}  // namespace trac
