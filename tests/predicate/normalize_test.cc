#include "predicate/normalize.h"

#include <functional>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"
#include "expr/evaluator.h"
#include "sql/parser.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

class NormalizeTest : public ::testing::Test {
 protected:
  BoundExprPtr Bind(const std::string& predicate) {
    auto parsed = ParsePredicate(predicate);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto scope = BindSql(fixture_.db,
                         "SELECT mach_id FROM routing");  // mach_id/neighbor.
    EXPECT_TRUE(scope.ok()) << scope.status();
    scope_ = std::move(*scope);
    auto bound = BindPredicateInScope(fixture_.db, scope_, **parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return std::move(*bound);
  }

  PaperExampleDb fixture_{/*finite_domains=*/false};
  BoundQuery scope_;
};

TEST_F(NormalizeTest, AtomPassesThrough) {
  BoundExprPtr e = Bind("mach_id = 'm1'");
  auto dnf = ToDnf(*e);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->conjuncts.size(), 1u);
  EXPECT_EQ(dnf->conjuncts[0].size(), 1u);
}

TEST_F(NormalizeTest, ConjunctionStaysOneConjunct) {
  BoundExprPtr e = Bind("mach_id = 'm1' AND neighbor = 'm3'");
  auto dnf = ToDnf(*e);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->conjuncts.size(), 1u);
  EXPECT_EQ(dnf->conjuncts[0].size(), 2u);
}

TEST_F(NormalizeTest, DisjunctionSplits) {
  BoundExprPtr e = Bind("mach_id = 'm1' OR neighbor = 'm3'");
  auto dnf = ToDnf(*e);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->conjuncts.size(), 2u);
}

TEST_F(NormalizeTest, DistributesAndOverOr) {
  // (a OR b) AND (c OR d) -> 4 conjuncts of 2 terms.
  BoundExprPtr e = Bind(
      "(mach_id = 'm1' OR mach_id = 'm2') AND "
      "(neighbor = 'm3' OR neighbor = 'm4')");
  auto dnf = ToDnf(*e);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->conjuncts.size(), 4u);
  for (const Conjunct& c : dnf->conjuncts) EXPECT_EQ(c.size(), 2u);
}

TEST_F(NormalizeTest, NotPushedIntoComparison) {
  BoundExprPtr e = Bind("NOT mach_id = 'm1'");
  BoundExprPtr nnf = ToNnf(*e, false);
  EXPECT_EQ(nnf->kind, ExprKind::kCompare);
  EXPECT_EQ(nnf->op, CompareOp::kNe);
}

TEST_F(NormalizeTest, DoubleNegationCancels) {
  BoundExprPtr e = Bind("NOT (NOT mach_id = 'm1')");
  BoundExprPtr nnf = ToNnf(*e, false);
  EXPECT_EQ(nnf->kind, ExprKind::kCompare);
  EXPECT_EQ(nnf->op, CompareOp::kEq);
}

TEST_F(NormalizeTest, DeMorganOverAnd) {
  BoundExprPtr e = Bind("NOT (mach_id = 'm1' AND neighbor = 'm3')");
  auto dnf = ToDnf(*e);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->conjuncts.size(), 2u);  // <> m1 OR <> m3.
}

TEST_F(NormalizeTest, NotInFlipsFlag) {
  BoundExprPtr e = Bind("NOT mach_id IN ('m1', 'm2')");
  BoundExprPtr nnf = ToNnf(*e, false);
  EXPECT_EQ(nnf->kind, ExprKind::kInList);
  EXPECT_TRUE(nnf->negated);
}

TEST_F(NormalizeTest, NotBetweenExpandsToOr) {
  BoundExprPtr e = Bind("NOT event_time BETWEEN '2006-01-01 00:00:00' AND "
                        "'2006-12-31 00:00:00'");
  auto dnf = ToDnf(*e);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->conjuncts.size(), 2u);
  EXPECT_EQ(dnf->conjuncts[0][0].expr->kind, ExprKind::kCompare);
  EXPECT_EQ(dnf->conjuncts[0][0].expr->op, CompareOp::kLt);
  EXPECT_EQ(dnf->conjuncts[1][0].expr->op, CompareOp::kGt);
}

TEST_F(NormalizeTest, NotIsNullFlips) {
  BoundExprPtr e = Bind("NOT mach_id IS NULL");
  BoundExprPtr nnf = ToNnf(*e, false);
  EXPECT_EQ(nnf->kind, ExprKind::kIsNull);
  EXPECT_TRUE(nnf->negated);
}

TEST_F(NormalizeTest, BlowUpGuardTrips) {
  // 13 two-way disjunctions conjoined: 8192 conjuncts > 4096 default.
  std::string pred;
  for (int i = 0; i < 13; ++i) {
    if (i) pred += " AND ";
    pred += "(mach_id = 'a" + std::to_string(i) + "' OR neighbor = 'b" +
            std::to_string(i) + "')";
  }
  BoundExprPtr e = Bind(pred);
  auto dnf = ToDnf(*e);
  ASSERT_FALSE(dnf.ok());
  EXPECT_EQ(dnf.status().code(), StatusCode::kResourceExhausted);

  NormalizeOptions loose;
  loose.max_conjuncts = 10000;
  auto big = ToDnf(*e, loose);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->conjuncts.size(), 8192u);
}

// Property: the DNF is logically equivalent to the original predicate
// (same TRUE set) on random rows, including NULLs.
class DnfEquivalenceTest : public NormalizeTest,
                           public ::testing::WithParamInterface<uint64_t> {};

TEST_P(DnfEquivalenceTest, RandomPredicatesPreserveTruth) {
  Random rng(GetParam());
  const std::vector<std::string> columns = {"mach_id", "neighbor"};
  const std::vector<std::string> values = {"m1", "m2", "m3", "m4"};
  const std::vector<std::string> ops = {"=", "<>", "<", "<=", ">", ">="};

  // Random predicate tree as SQL text.
  std::function<std::string(int)> gen = [&](int depth) -> std::string {
    int pick = depth >= 3 ? 0 : static_cast<int>(rng.Uniform(5));
    switch (pick) {
      case 1:
        return "(" + gen(depth + 1) + " AND " + gen(depth + 1) + ")";
      case 2:
        return "(" + gen(depth + 1) + " OR " + gen(depth + 1) + ")";
      case 3:
        return "NOT (" + gen(depth + 1) + ")";
      case 4: {
        std::string col = columns[rng.Uniform(columns.size())];
        if (rng.Bernoulli(0.5)) {
          return col + (rng.Bernoulli(0.5) ? " IN ('m1','m3')"
                                           : " NOT IN ('m2')");
        }
        return col + (rng.Bernoulli(0.5) ? " IS NULL" : " IS NOT NULL");
      }
      default: {
        std::string col = columns[rng.Uniform(columns.size())];
        std::string op = ops[rng.Uniform(ops.size())];
        return col + " " + op + " '" + values[rng.Uniform(values.size())] +
               "'";
      }
    }
  };

  for (int round = 0; round < 20; ++round) {
    BoundExprPtr original = Bind(gen(0));
    NormalizeOptions loose;
    loose.max_conjuncts = 100000;
    auto dnf = ToDnf(*original, loose);
    ASSERT_TRUE(dnf.ok());

    // Evaluate both on random rows (columns may be NULL).
    for (int trial = 0; trial < 30; ++trial) {
      Row row(3);
      for (size_t c = 0; c < 2; ++c) {
        row[c] = rng.Bernoulli(0.15)
                     ? Value::Null()
                     : Value::Str(values[rng.Uniform(values.size())]);
      }
      TupleView tuple = {&row};
      auto expect = EvalPredicate(*original, tuple);
      ASSERT_TRUE(expect.ok());
      bool original_true = IsTrue(*expect);

      bool dnf_true = false;
      for (const Conjunct& conjunct : dnf->conjuncts) {
        bool all = true;
        for (const BasicTerm& term : conjunct) {
          auto v = EvalPredicate(*term.expr, tuple);
          ASSERT_TRUE(v.ok());
          all &= IsTrue(*v);
        }
        dnf_true |= all;
      }
      EXPECT_EQ(original_true, dnf_true)
          << "seed=" << GetParam() << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace trac
