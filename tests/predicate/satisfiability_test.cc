#include "predicate/satisfiability.h"

#include <functional>
#include <limits>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"
#include "expr/evaluator.h"
#include "predicate/normalize.h"
#include "sql/parser.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

/// Binds a predicate over routing (mach_id, neighbor: finite m1..m11;
/// event_time finite) or over an infinite-domain copy, converts to DNF
/// and checks the first conjunct.
class SatTest : public ::testing::Test {
 protected:
  explicit SatTest() : finite_(true), infinite_(false) {}

  Sat Check(const std::string& predicate, bool finite_domains = true,
            const std::string& from = "routing") {
    PaperExampleDb& fx = finite_domains ? finite_ : infinite_;
    auto scope = BindSql(fx.db, "SELECT mach_id FROM " + from);
    EXPECT_TRUE(scope.ok()) << scope.status();
    auto parsed = ParsePredicate(predicate);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto bound = BindPredicateInScope(fx.db, *scope, **parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto dnf = ToDnf(**bound);
    EXPECT_TRUE(dnf.ok()) << dnf.status();
    EXPECT_EQ(dnf->conjuncts.size(), 1u) << predicate;
    return CheckConjunctionSat(fx.db, *scope, dnf->conjuncts[0]);
  }

  PaperExampleDb finite_;
  PaperExampleDb infinite_;
};

TEST_F(SatTest, SimpleEqualitySat) {
  EXPECT_EQ(Check("mach_id = 'm1'"), Sat::kSat);
  EXPECT_EQ(Check("mach_id = 'm1'", false), Sat::kSat);
}

TEST_F(SatTest, ContradictoryEqualitiesUnsat) {
  EXPECT_EQ(Check("mach_id = 'm1' AND mach_id = 'm2'"), Sat::kUnsat);
  EXPECT_EQ(Check("mach_id = 'm1' AND mach_id = 'm2'", false), Sat::kUnsat);
}

TEST_F(SatTest, OutOfFiniteDomainUnsat) {
  EXPECT_EQ(Check("mach_id = 'zz'"), Sat::kUnsat);
  // Same value is fine over an infinite domain.
  EXPECT_EQ(Check("mach_id = 'zz'", false), Sat::kSat);
}

TEST_F(SatTest, RangeContradictionUnsat) {
  EXPECT_EQ(Check("mach_id > 'm5' AND mach_id < 'm2'", false), Sat::kUnsat);
  EXPECT_EQ(Check("mach_id >= 'm3' AND mach_id <= 'm3'", false), Sat::kSat);
  EXPECT_EQ(Check("mach_id > 'm3' AND mach_id <= 'm3'", false), Sat::kUnsat);
}

TEST_F(SatTest, NotEqualCarvesOutSinglePoint) {
  EXPECT_EQ(Check("mach_id >= 'm3' AND mach_id <= 'm3' AND mach_id <> 'm3'",
                  false),
            Sat::kUnsat);
}

TEST_F(SatTest, InListIntersection) {
  EXPECT_EQ(Check("mach_id IN ('m1', 'm2') AND mach_id IN ('m2', 'm3')"),
            Sat::kSat);
  EXPECT_EQ(Check("mach_id IN ('m1', 'm2') AND mach_id IN ('m3', 'm4')"),
            Sat::kUnsat);
  EXPECT_EQ(Check("mach_id IN ('m1') AND mach_id NOT IN ('m1')", false),
            Sat::kUnsat);
}

TEST_F(SatTest, NotInExhaustsFiniteDomain) {
  // NOT IN all eleven machines over the finite domain: empty.
  EXPECT_EQ(Check("mach_id NOT IN "
                  "('m1','m2','m3','m4','m5','m6','m7','m8','m9','m10',"
                  "'m11')"),
            Sat::kUnsat);
  // Over an infinite domain there is always another string.
  EXPECT_EQ(Check("mach_id NOT IN "
                  "('m1','m2','m3','m4','m5','m6','m7','m8','m9','m10',"
                  "'m11')",
                  false),
            Sat::kSat);
}

TEST_F(SatTest, BetweenBounds) {
  EXPECT_EQ(Check("mach_id BETWEEN 'm1' AND 'm3'", false), Sat::kSat);
  EXPECT_EQ(Check("mach_id BETWEEN 'm3' AND 'm1'", false), Sat::kUnsat);
}

TEST_F(SatTest, EqualityChainMergesConstraints) {
  // mach_id = neighbor pulls both columns into one group.
  EXPECT_EQ(Check("mach_id = neighbor AND mach_id = 'm1' AND "
                  "neighbor = 'm2'",
                  false),
            Sat::kUnsat);
  EXPECT_EQ(Check("mach_id = neighbor AND mach_id = 'm1' AND "
                  "neighbor = 'm1'",
                  false),
            Sat::kSat);
}

TEST_F(SatTest, IsNullInteractions) {
  EXPECT_EQ(Check("mach_id IS NULL", false), Sat::kSat);
  EXPECT_EQ(Check("mach_id IS NULL AND mach_id = 'm1'", false), Sat::kUnsat);
  EXPECT_EQ(Check("mach_id IS NOT NULL AND mach_id = 'm1'", false),
            Sat::kSat);
  // col = col requires a non-null shared value; IS NULL kills it.
  EXPECT_EQ(Check("mach_id = neighbor AND mach_id IS NULL", false),
            Sat::kUnsat);
}

TEST_F(SatTest, ConstantPredicates) {
  EXPECT_EQ(Check("FALSE", false), Sat::kUnsat);
  EXPECT_EQ(Check("TRUE AND mach_id = 'm1'", false), Sat::kSat);
  EXPECT_EQ(Check("NULL", false), Sat::kUnsat);  // Never TRUE.
}

TEST_F(SatTest, ComparisonWithNullLiteralUnsat) {
  EXPECT_EQ(Check("mach_id = NULL", false), Sat::kUnsat);
}

TEST_F(SatTest, SelfComparisons) {
  EXPECT_EQ(Check("mach_id = mach_id", false), Sat::kSat);
  EXPECT_EQ(Check("mach_id <> mach_id", false), Sat::kUnsat);
  EXPECT_EQ(Check("mach_id < mach_id", false), Sat::kUnsat);
}

TEST_F(SatTest, NonEquiColumnComparisonIsUnknownButSound) {
  // mach_id < neighbor over infinite domains: cannot prove either way.
  EXPECT_EQ(Check("mach_id < neighbor", false), Sat::kUnknown);
  // ... but finite domains are decided exactly by enumeration.
  EXPECT_EQ(Check("mach_id < neighbor"), Sat::kSat);
  EXPECT_EQ(Check("mach_id < neighbor AND neighbor < mach_id"), Sat::kUnsat);
}

TEST_F(SatTest, TimestampIntervalsAreDiscrete) {
  EXPECT_EQ(Check("event_time > TIMESTAMP '2006-01-01 00:00:00' AND "
                  "event_time < TIMESTAMP '2006-01-01 00:00:00.000002'",
                  false),
            Sat::kSat);  // Exactly one microsecond fits.
  EXPECT_EQ(Check("event_time > TIMESTAMP '2006-01-01 00:00:00' AND "
                  "event_time < TIMESTAMP '2006-01-01 00:00:00.000001'",
                  false),
            Sat::kUnsat);  // Open interval of width one microsecond.
}

/// Disjoint finite domains make an equality join unsatisfiable (the
/// paper's Routing.neighbor vs Activity.mach_id extreme example).
TEST(SatDomainsTest, DisjointFiniteDomainsKillEquality) {
  Database db;
  TableSchema schema(
      "t", {ColumnDef("a", TypeId::kString,
                      Domain::Finite(TypeId::kString,
                                     {Value::Str("x"), Value::Str("y")})),
            ColumnDef("b", TypeId::kString,
                      Domain::Finite(TypeId::kString,
                                     {Value::Str("p"), Value::Str("q")}))});
  ASSERT_TRUE(db.CreateTable(std::move(schema)).ok());
  auto scope = BindSql(db, "SELECT a FROM t");
  ASSERT_TRUE(scope.ok());
  auto parsed = ParsePredicate("a = b");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindPredicateInScope(db, *scope, **parsed);
  ASSERT_TRUE(bound.ok());
  auto dnf = ToDnf(**bound);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(CheckConjunctionSat(db, *scope, dnf->conjuncts[0]), Sat::kUnsat);
}

/// Property: over finite domains, CheckConjunctionSat agrees with plain
/// enumeration; over infinite domains it never reports kSat for an
/// unsatisfiable conjunct nor kUnsat for a satisfiable one (verified on
/// witnesses drawn from a sample grid).
class SatPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatPropertyTest, SoundOnRandomConjunctions) {
  PaperExampleDb fixture(/*finite_domains=*/true);
  Random rng(GetParam());
  auto scope = BindSql(fixture.db, "SELECT mach_id FROM routing");
  ASSERT_TRUE(scope.ok());

  const std::vector<std::string> columns = {"mach_id", "neighbor"};
  const std::vector<std::string> values = {"m1", "m2", "m3", "m9"};
  const std::vector<std::string> ops = {"=", "<>", "<", "<=", ">", ">="};

  for (int round = 0; round < 60; ++round) {
    // 1-4 random terms.
    size_t terms = 1 + rng.Uniform(4);
    std::string pred;
    for (size_t i = 0; i < terms; ++i) {
      if (i) pred += " AND ";
      std::string col = columns[rng.Uniform(columns.size())];
      switch (rng.Uniform(4)) {
        case 0:
          pred += col + " " + ops[rng.Uniform(ops.size())] + " '" +
                  values[rng.Uniform(values.size())] + "'";
          break;
        case 1:
          pred += col + " IN ('" + values[rng.Uniform(values.size())] +
                  "', '" + values[rng.Uniform(values.size())] + "')";
          break;
        case 2:
          pred += col + " NOT IN ('" + values[rng.Uniform(values.size())] +
                  "')";
          break;
        default:
          pred += col + " " + ops[rng.Uniform(ops.size())] + " " +
                  columns[rng.Uniform(columns.size())];
          break;
      }
    }
    auto parsed = ParsePredicate(pred);
    ASSERT_TRUE(parsed.ok()) << pred;
    auto bound = BindPredicateInScope(fixture.db, *scope, **parsed);
    ASSERT_TRUE(bound.ok()) << pred;
    auto dnf = ToDnf(**bound);
    ASSERT_TRUE(dnf.ok()) << pred;
    ASSERT_EQ(dnf->conjuncts.size(), 1u) << pred;

    Sat verdict = CheckConjunctionSat(fixture.db, *scope, dnf->conjuncts[0]);

    // Ground truth by enumeration over the finite domains (11 x 11).
    bool truly_sat = false;
    for (int a = 1; a <= 11 && !truly_sat; ++a) {
      for (int b = 1; b <= 11 && !truly_sat; ++b) {
        Row row = {Value::Str("m" + std::to_string(a)),
                   Value::Str("m" + std::to_string(b)), Value::Null()};
        TupleView tuple = {&row};
        auto v = EvalPredicate(**bound, tuple);
        ASSERT_TRUE(v.ok()) << pred;
        truly_sat |= IsTrue(*v);
      }
    }
    if (truly_sat) {
      EXPECT_NE(verdict, Sat::kUnsat) << pred;
    } else {
      EXPECT_NE(verdict, Sat::kSat) << pred;
    }
    // Over these finite domains the checker enumerates exactly.
    EXPECT_EQ(verdict, truly_sat ? Sat::kSat : Sat::kUnsat) << pred;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Regression: the enumeration sizing must not wrap size_t. Sixteen
// columns with 16-value domains have a cardinality product of exactly
// 2^64; a naive running product wraps to 0, slips under any budget
// (including max_enumeration = SIZE_MAX), and the enumeration loop
// then never terminates. The checker must detect the overflow and fall
// back to propagation instead.
TEST(SatOverflowTest, DomainProductOverflowFallsBack) {
  Database db;
  std::vector<Value> dom_values;
  for (int v = 0; v < 16; ++v) {
    dom_values.push_back(Value::Str("x" + std::to_string(v)));
  }
  std::vector<ColumnDef> cols;
  for (int c = 0; c < 16; ++c) {
    cols.push_back(ColumnDef("c" + std::to_string(c), TypeId::kString,
                             Domain::Finite(TypeId::kString, dom_values)));
  }
  ASSERT_TRUE(db.CreateTable(TableSchema("wide", std::move(cols))).ok());

  auto scope = BindSql(db, "SELECT c0 FROM wide");
  ASSERT_TRUE(scope.ok()) << scope.status();

  auto check = [&](const std::string& pred, size_t budget) {
    auto parsed = ParsePredicate(pred);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto bound = BindPredicateInScope(db, *scope, **parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto dnf = ToDnf(**bound);
    EXPECT_TRUE(dnf.ok()) << dnf.status();
    EXPECT_EQ(dnf->conjuncts.size(), 1u) << pred;
    SatOptions options;
    options.max_enumeration = budget;
    return CheckConjunctionSat(db, *scope, dnf->conjuncts[0], options);
  };

  // Pairwise disequalities over all 16 columns: the exact product is
  // 2^64, which the overflow-checked sizing rejects; the propagation
  // fallback cannot decide cross-column disequalities, so the verdict
  // degrades to kUnknown — in bounded time.
  std::string wide_pred;
  for (int c = 0; c < 16; c += 2) {
    if (!wide_pred.empty()) wide_pred += " AND ";
    wide_pred += "c" + std::to_string(c) + " <> c" + std::to_string(c + 1);
  }
  EXPECT_EQ(check(wide_pred, std::numeric_limits<size_t>::max()),
            Sat::kUnknown);

  // The same shape over two columns (product 256) still enumerates
  // exactly: 16 > 1 distinct values, so a witness exists.
  EXPECT_EQ(check("c0 <> c1", 100000), Sat::kSat);
  // And a finite budget below the two-column product falls back too.
  EXPECT_EQ(check("c0 <> c1", 255), Sat::kUnknown);
}

}  // namespace
}  // namespace trac
