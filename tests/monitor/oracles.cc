#include "oracles.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "expr/binder.h"
#include "ir/plan_ir.h"
#include "telemetry/profile.h"

namespace trac {
namespace oracle {
namespace {

std::string FmtTs(Timestamp t) { return t.ToString(); }

std::string FmtMicros(int64_t v) { return std::to_string(v) + "us"; }

void Violation(OracleOutcome* out, std::string msg) {
  out->violations.push_back(std::move(msg));
}

}  // namespace

void OracleOutcome::Merge(const OracleOutcome& other) {
  checks += other.checks;
  exemptions += other.exemptions;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

std::string OracleOutcome::Summary() const {
  if (ok()) {
    std::string s = "PASS (" + std::to_string(checks) + " checks";
    if (exemptions > 0) s += ", " + std::to_string(exemptions) + " exempt";
    return s + ")";
  }
  std::string s = "FAIL (" + std::to_string(violations.size()) +
                  " violations / " + std::to_string(checks) + " checks)";
  const size_t show = violations.size() < 3 ? violations.size() : 3;
  for (size_t i = 0; i < show; ++i) s += "\n  - " + violations[i];
  if (violations.size() > show) {
    s += "\n  - ... " + std::to_string(violations.size() - show) + " more";
  }
  return s;
}

OracleOutcome CheckBoundDominance(const ScenarioRunner& runner,
                                  const RecencyReport& report) {
  OracleOutcome out;
  const std::vector<std::pair<std::string, Timestamp>> truth_rows =
      runner.grid().heartbeat().GetAll(runner.db()->LatestSnapshot());
  std::map<std::string, Timestamp> truth(truth_rows.begin(), truth_rows.end());

  // (a) Reported recencies are the Heartbeat table's values, verbatim.
  for (const SourceRecency& sr : report.relevance.sources) {
    ++out.checks;
    auto it = truth.find(sr.source);
    if (it == truth.end()) {
      Violation(&out, "reported source '" + sr.source +
                          "' does not exist in the Heartbeat table");
      continue;
    }
    if (it->second != sr.recency) {
      Violation(&out, "recency of '" + sr.source + "': reported " +
                          FmtTs(sr.recency) + ", Heartbeat says " +
                          FmtTs(it->second));
    }
  }

  // (b) + (c) The bound and the extremes over the normal sources.
  const RecencyStats& stats = report.stats;
  if (!stats.normal.empty()) {
    Timestamp min_r = stats.normal.front().recency;
    Timestamp max_r = stats.normal.front().recency;
    std::string min_id = stats.normal.front().source;
    std::string max_id = stats.normal.front().source;
    for (const SourceRecency& sr : stats.normal) {
      if (sr.recency < min_r) {
        min_r = sr.recency;
        min_id = sr.source;
      }
      if (sr.recency > max_r) {
        max_r = sr.recency;
        max_id = sr.source;
      }
    }
    const int64_t true_bound = max_r - min_r;
    ++out.checks;
    if (stats.inconsistency_bound_micros < true_bound) {
      Violation(&out,
                "bound of inconsistency UNDERCLAIMS: reported " +
                    FmtMicros(stats.inconsistency_bound_micros) +
                    " < true spread " + FmtMicros(true_bound));
    } else if (stats.inconsistency_bound_micros > true_bound) {
      Violation(&out, "bound of inconsistency mismatch: reported " +
                          FmtMicros(stats.inconsistency_bound_micros) +
                          " != recomputed " + FmtMicros(true_bound));
    }
    ++out.checks;
    if (!stats.least_recent.has_value() ||
        stats.least_recent->recency != min_r) {
      Violation(&out, "least-recent mismatch: true minimum is '" + min_id +
                          "' at " + FmtTs(min_r));
    }
    ++out.checks;
    if (!stats.most_recent.has_value() ||
        stats.most_recent->recency != max_r) {
      Violation(&out, "most-recent mismatch: true maximum is '" + max_id +
                          "' at " + FmtTs(max_r));
    }
  } else {
    ++out.checks;
    if (stats.least_recent.has_value() || stats.most_recent.has_value() ||
        stats.inconsistency_bound_micros != 0) {
      Violation(&out,
                "no normal sources but extremes/bound are still reported");
    }
  }

  // (d) Recency claims never overtake the true shipping frontier. The
  // recency timestamp r promises "every event of this source before r
  // has reported in" (Section 3.1); the frontier is the earliest event
  // that has NOT. Truncation-lossy sources are exactly the case where
  // the protocol's promise is physically broken, so they are exempt.
  for (const SourceRecency& sr : report.relevance.sources) {
    if (runner.injector().IsLossy(sr.source)) {
      ++out.exemptions;
      continue;
    }
    ++out.checks;
    Result<Timestamp> frontier =
        runner.injector().TrueFrontier(sr.source, runner.now());
    if (!frontier.ok()) {
      Violation(&out, "no frontier for '" + sr.source +
                          "': " + frontier.status().ToString());
      continue;
    }
    if (sr.recency > *frontier) {
      Violation(&out, "recency of '" + sr.source + "' OVERCLAIMS: claims " +
                          FmtTs(sr.recency) + " but true frontier is " +
                          FmtTs(*frontier));
    }
  }
  return out;
}

OracleOutcome CheckZscoreAgreement(const RecencyStats& stats,
                                   double threshold) {
  OracleOutcome out;
  struct Entry {
    const SourceRecency* sr;
    bool reported_exceptional;
  };
  std::vector<Entry> all;
  for (const SourceRecency& sr : stats.normal) all.push_back({&sr, false});
  for (const SourceRecency& sr : stats.exceptional) all.push_back({&sr, true});
  if (all.empty()) {
    ++out.checks;
    if (stats.mean_micros != 0 || stats.stddev_micros != 0) {
      Violation(&out, "no relevant sources but nonzero moments reported");
    }
    return out;
  }

  // Independent recomputation: long-double accumulators, population
  // variance — deliberately not the production algorithm.
  const long double n = static_cast<long double>(all.size());
  long double sum = 0;
  for (const Entry& e : all) {
    sum += static_cast<long double>(e.sr->recency.micros());
  }
  const long double mean = sum / n;
  long double var = 0;
  for (const Entry& e : all) {
    const long double d = static_cast<long double>(e.sr->recency.micros()) - mean;
    var += d * d;
  }
  var /= n;
  const long double stddev = sqrtl(var);

  auto close = [](long double a, long double b) {
    const long double scale =
        std::max<long double>({1.0L, fabsl(a), fabsl(b)});
    return fabsl(a - b) <= 1e-9L * scale;
  };
  ++out.checks;
  if (!close(mean, static_cast<long double>(stats.mean_micros))) {
    Violation(&out, "mean mismatch: reported " +
                        std::to_string(stats.mean_micros) + ", recomputed " +
                        std::to_string(static_cast<double>(mean)));
  }
  ++out.checks;
  if (!close(stddev, static_cast<long double>(stats.stddev_micros))) {
    Violation(&out, "stddev mismatch: reported " +
                        std::to_string(stats.stddev_micros) +
                        ", recomputed " +
                        std::to_string(static_cast<double>(stddev)));
  }

  for (const Entry& e : all) {
    ++out.checks;
    bool expect_exceptional;
    if (stddev == 0) {
      // Degenerate spread: no source can be exceptional (Section 4.3's
      // z-score is undefined; the paper's split keeps everything normal).
      expect_exceptional = false;
    } else {
      const long double z =
          fabsl(static_cast<long double>(e.sr->recency.micros()) - mean) /
          stddev;
      const long double t = static_cast<long double>(threshold);
      if (fabsl(z - t) <= 1e-9L * std::max<long double>(1.0L, fabsl(z))) {
        // Boundary ulp zone: either classification is defensible.
        ++out.exemptions;
        continue;
      }
      expect_exceptional = z > t;
    }
    if (expect_exceptional != e.reported_exceptional) {
      Violation(&out,
                "z-score split disagrees for '" + e.sr->source + "' at " +
                    FmtTs(e.sr->recency) + ": report says " +
                    (e.reported_exceptional ? "exceptional" : "normal") +
                    ", brute-force recomputation says " +
                    (expect_exceptional ? "exceptional" : "normal"));
    }
  }
  return out;
}

OracleOutcome CheckGuarantee(const RecencyReport& report,
                             const std::vector<std::string>& true_sources) {
  OracleOutcome out;
  std::set<std::string> reported;
  for (const SourceRecency& sr : report.relevance.sources) {
    reported.insert(sr.source);
  }
  const std::set<std::string> expected(true_sources.begin(),
                                       true_sources.end());
  const RecencyGuarantee verdict = report.relevance.analysis.verdict;
  ++out.checks;
  switch (verdict) {
    case RecencyGuarantee::kExactMinimum:
      if (reported != expected) {
        Violation(&out, "EXACT_MINIMUM verdict but A(Q) (" +
                            std::to_string(reported.size()) +
                            " sources) != analytic S(Q) (" +
                            std::to_string(expected.size()) + " sources)");
      }
      break;
    case RecencyGuarantee::kUpperBound:
      if (!std::includes(reported.begin(), reported.end(), expected.begin(),
                         expected.end())) {
        Violation(&out,
                  "UPPER_BOUND verdict OVERCLAIMS: A(Q) misses a truly "
                  "relevant source (A must be a superset of S)");
      }
      break;
    case RecencyGuarantee::kEmptySet:
      if (!reported.empty() || !expected.empty()) {
        Violation(&out, "EMPTY_SET verdict but A(Q) has " +
                            std::to_string(reported.size()) +
                            " sources and S(Q) has " +
                            std::to_string(expected.size()));
      }
      break;
  }
  // Internal coherence: minimal flag must match the verdict.
  ++out.checks;
  const bool says_minimal = report.relevance.minimal;
  if (says_minimal != (verdict != RecencyGuarantee::kUpperBound)) {
    Violation(&out, "minimal flag disagrees with the verdict");
  }
  return out;
}

OracleOutcome CheckTelemetry(const ScenarioRunner& runner,
                             MetricRegistry& registry) {
  OracleOutcome out;
  const Timestamp now = runner.now();
  const std::vector<std::pair<std::string, Timestamp>> truth =
      runner.grid().heartbeat().GetAll(runner.db()->LatestSnapshot());

  std::map<std::pair<std::string, std::string>, int64_t> gauges;
  for (const GaugeSample& sample : registry.GaugeSamples()) {
    std::string source;
    for (const auto& [k, v] : sample.labels) {
      if (k == "source") source = v;
    }
    gauges[{sample.name, source}] = sample.value;
  }

  for (const auto& [source, recency] : truth) {
    ++out.checks;
    auto it = gauges.find({"trac_source_staleness_micros", source});
    if (it == gauges.end()) {
      Violation(&out, "no staleness gauge for '" + source + "'");
      continue;
    }
    const int64_t expect = now - recency;
    if (it->second != expect) {
      Violation(&out, "staleness gauge of '" + source + "' is " +
                          FmtMicros(it->second) + ", truth is " +
                          FmtMicros(expect));
    }
  }
  ++out.checks;
  auto total = gauges.find({"trac_monitor_sources", ""});
  if (total == gauges.end() ||
      total->second != static_cast<int64_t>(truth.size())) {
    Violation(&out,
              "trac_monitor_sources != Heartbeat count " +
                  std::to_string(truth.size()));
  }

  const int64_t step = runner.script().step_micros;
  for (const std::string& id : runner.source_ids()) {
    const Sniffer* sniffer = runner.grid().sniffer(id);
    if (sniffer == nullptr || sniffer->polls() == 0) continue;
    const LabelSet labels = {{"source", id}};
    ++out.checks;
    const int64_t polls =
        registry.GetCounter("trac_sniffer_polls_total", "", labels)->Value();
    if (polls != static_cast<int64_t>(sniffer->polls())) {
      Violation(&out, "poll counter of '" + id + "' is " +
                          std::to_string(polls) + ", sniffer polled " +
                          std::to_string(sniffer->polls()) + " times");
    }
    ++out.checks;
    const int64_t shipped =
        registry.GetCounter("trac_sniffer_records_shipped_total", "", labels)
            ->Value();
    if (shipped != static_cast<int64_t>(sniffer->records_shipped())) {
      Violation(&out, "shipped counter of '" + id + "' is " +
                          std::to_string(shipped) + ", sniffer shipped " +
                          std::to_string(sniffer->records_shipped()));
    }
    if (sniffer->has_shipped()) {
      ++out.checks;
      auto lag = gauges.find({"trac_sniffer_lag_micros", id});
      const int64_t expect =
          sniffer->last_poll() - sniffer->last_shipped_event();
      if (lag == gauges.end() || lag->second != expect) {
        Violation(&out, "lag gauge of '" + id + "' should be " +
                            FmtMicros(expect));
      }
    }
    // The backlog gauge snapshot is only recomputable when the last poll
    // happened after the most recent workload emission (otherwise it
    // reflects an older, smaller log — correct then, stale now).
    if (sniffer->last_poll() > now - step) {
      ++out.checks;
      auto backlog = gauges.find({"trac_sniffer_backlog_records", id});
      const int64_t expect = static_cast<int64_t>(
          runner.grid().source(id) == nullptr
              ? 0
              : runner.grid().source(id)->log().size() -
                    sniffer->records_shipped());
      if (backlog == gauges.end() || backlog->second != expect) {
        Violation(&out, "backlog gauge of '" + id + "' should be " +
                            std::to_string(expect) + " records");
      }
    } else {
      ++out.exemptions;
    }
  }
  return out;
}

OracleOutcome CheckTrace(const Tracer& tracer, const RecencyReport& report) {
  OracleOutcome out;
  const std::vector<SpanRecord> spans = tracer.CollectTrace(report.trace_id);
  ++out.checks;
  if (spans.empty()) {
    Violation(&out, "no spans recorded for the report's trace id");
    return out;
  }
  uint64_t root_id = 0;
  size_t roots = 0;
  for (const SpanRecord& span : spans) {
    if (span.parent_id == 0) {
      ++roots;
      root_id = span.span_id;
      if (span.name != "report") {
        Violation(&out, "root span is '" + span.name + "', not 'report'");
      }
    }
  }
  if (roots != 1) {
    Violation(&out, "expected exactly one root span, found " +
                        std::to_string(roots));
    return out;
  }
  uint64_t relevance_id = 0;
  std::set<std::string> child_names;
  for (const SpanRecord& span : spans) {
    if (span.parent_id != root_id) continue;
    child_names.insert(span.name);
    if (span.name == "relevance") relevance_id = span.span_id;
  }
  for (const char* want :
       {"parse", "plan", "verify", "user-query", "relevance", "stats"}) {
    ++out.checks;
    if (child_names.count(want) == 0) {
      Violation(&out, std::string("missing '") + want +
                          "' child span under the report root");
    }
  }
  for (const SpanRecord& span : spans) {
    if (span.name != "relevance-task") continue;
    ++out.checks;
    if (span.parent_id != relevance_id) {
      Violation(&out, "a relevance-task span is not parented under the "
                      "relevance span");
    }
  }
  return out;
}

OracleOutcome CheckStaticBounds(const RecencyReport& report) {
  OracleOutcome out;
  if (!report.static_bounds_computed) {
    // No age facts reached the fixpoint (e.g. empty registry): there is
    // nothing sound to compare against, which is itself legitimate.
    ++out.exemptions;
    return out;
  }
  ++out.checks;
  if (report.stats.inconsistency_bound_micros >
      report.static_staleness_width_micros) {
    Violation(&out,
              "observed bound of inconsistency " +
                  std::to_string(report.stats.inconsistency_bound_micros) +
                  "us exceeds the static staleness width " +
                  std::to_string(report.static_staleness_width_micros) +
                  "us; the fixpoint under-approximated");
  }
  const uint64_t observed = report.relevance.sources.size();
  ++out.checks;
  if (observed < report.static_sources_lo) {
    Violation(&out, "observed " + std::to_string(observed) +
                        " relevant sources, below the static minimum " +
                        std::to_string(report.static_sources_lo));
  }
  if (report.static_sources_unbounded) {
    ++out.exemptions;  // No upper bound to check against.
  } else {
    ++out.checks;
    if (observed > report.static_sources_hi) {
      Violation(&out, "observed " + std::to_string(observed) +
                          " relevant sources, above the static maximum " +
                          std::to_string(report.static_sources_hi));
    }
  }
  return out;
}

OracleOutcome CheckProfileSoundness(const RecencyReport& report) {
  OracleOutcome out;
  if (report.profiled_ir.empty()) {
    ++out.exemptions;  // Profiling disabled for this report.
    return out;
  }
  Result<PlanIr> parsed = ParsePlanIr(report.profiled_ir);
  ++out.checks;
  if (!parsed.ok()) {
    Violation(&out, "profiled session IR does not re-parse: " +
                        parsed.status().ToString());
    return out;
  }
  ++out.checks;
  if (parsed->Dump() != report.profiled_ir) {
    Violation(&out,
              "profiled session IR does not round-trip byte-exactly "
              "through Dump/ParsePlanIr");
  }
  size_t annotated = 0;
  for (const IrNode& node : parsed->nodes) {
    if (node.has_actual_rows || node.has_actual_ns) ++annotated;
  }
  ++out.checks;
  if (annotated == 0) {
    Violation(&out, "profiled session IR carries no runtime annotations");
  }
  // Re-run the drift pass on the *parsed* IR: this exercises the whole
  // artifact path, not just the in-memory annotations.
  for (const ProfileDiagnostic& d : AnalyzeProfileDrift(*parsed)) {
    if (d.code != ProfileCode::kActualOutsideStaticBounds) continue;
    ++out.checks;
    Violation(&out, "profile soundness: " + d.Format());
  }
  ++out.checks;
  for (const ProfileDiagnostic& d : report.profile_drift) {
    if (d.code == ProfileCode::kActualOutsideStaticBounds) {
      Violation(&out, "report carries a TRAC-P001 finding: " + d.Format());
    }
  }
  return out;
}

OracleOutcome CheckCacheCoherence(const Database& db,
                                  const std::string& user_sql,
                                  const RecencyReport& report,
                                  const RecencyReportOptions& options) {
  OracleOutcome out;
  if (!report.relevance_from_cache) {
    ++out.exemptions;  // Nothing was served; the executed path is truth.
    return out;
  }
  if (options.method == RecencyMethod::kFocusedHardcoded) {
    ++out.exemptions;  // The hardcoded plan is not reconstructible here.
    return out;
  }
  Result<BoundQuery> bound = BindSql(db, user_sql);
  if (!bound.ok()) {
    Violation(&out, "cache coherence: rebinding the user SQL failed: " +
                        bound.status().ToString());
    return out;
  }
  // Cold reference: regenerate and execute serially at the report's own
  // snapshot, with no telemetry and no cache in the loop.
  RelevanceOptions cold = options.relevance;
  cold.telemetry = nullptr;
  cold.trace_id = 0;
  cold.parent_span_id = 0;
  cold.parallelism = 1;
  cold.pool = nullptr;
  Result<RecencyQueryPlan> plan = options.method == RecencyMethod::kNaive
                                      ? GenerateNaivePlan(db, cold)
                                      : GenerateRecencyQueries(db, *bound,
                                                               cold);
  if (!plan.ok()) {
    Violation(&out, "cache coherence: regenerating the recency plan "
                    "failed: " + plan.status().ToString());
    return out;
  }
  Result<std::vector<SourceRecency>> cold_sources =
      ExecuteRecencyQueries(db, *plan, report.snapshot, cold);
  if (!cold_sources.ok()) {
    Violation(&out, "cache coherence: cold recomputation failed: " +
                        cold_sources.status().ToString());
    return out;
  }
  const std::vector<SourceRecency>& served = report.relevance.sources;
  ++out.checks;
  if (served.size() != cold_sources->size()) {
    Violation(&out, "cache coherence: served " +
                        std::to_string(served.size()) +
                        " sources but cold recomputation at the same "
                        "snapshot yields " +
                        std::to_string(cold_sources->size()));
    return out;
  }
  for (size_t i = 0; i < served.size(); ++i) {
    ++out.checks;
    if (!(served[i] == (*cold_sources)[i])) {
      Violation(&out, "cache coherence: source " + std::to_string(i) +
                          " diverges: served " + served[i].source + "@" +
                          FmtTs(served[i].recency) + " vs recomputed " +
                          (*cold_sources)[i].source + "@" +
                          FmtTs((*cold_sources)[i].recency));
    }
  }
  return out;
}

OracleOutcome CheckReport(const ScenarioRunner& runner,
                          const RecencyReport& report,
                          const std::vector<std::string>& true_sources) {
  OracleOutcome out;
  out.Merge(CheckBoundDominance(runner, report));
  out.Merge(CheckZscoreAgreement(report.stats));
  out.Merge(CheckGuarantee(report, true_sources));
  out.Merge(CheckStaticBounds(report));
  out.Merge(CheckProfileSoundness(report));
  return out;
}

}  // namespace oracle
}  // namespace trac
