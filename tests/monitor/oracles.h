#ifndef TRAC_TESTS_MONITOR_ORACLES_H_
#define TRAC_TESTS_MONITOR_ORACLES_H_

#include <string>
#include <vector>

#include "core/recency_reporter.h"
#include "monitor/scenario.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace trac {
namespace oracle {

/// Result of one oracle pass: how much was checked, how much was
/// legitimately exempt (lossy sources, stale gauges), and every
/// violation found. Oracles never assert — callers decide how to fail,
/// and the scenario shrinker needs the outcome as data.
struct OracleOutcome {
  size_t checks = 0;
  size_t exemptions = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  void Merge(const OracleOutcome& other);
  /// "PASS (42 checks, 1 exempt)" or "FAIL: <first violations...>".
  std::string Summary() const;
};

/// Oracle 1 — bound-of-inconsistency soundness. Against the simulator's
/// ground truth this checks that (a) every reported recency equals the
/// Heartbeat table's value, (b) the reported bound equals the recomputed
/// max - min over the normal sources (and in particular never
/// *underclaims* the true spread), (c) the least/most-recent extremes
/// are the true extremes, and (d) no non-lossy source's recency claim
/// overtakes its true shipping frontier — the DB never believes a
/// source has reported more than it actually delivered. Lossy sources
/// (log truncation genuinely breaks the heartbeat protocol's promise)
/// are exempted and counted.
OracleOutcome CheckBoundDominance(const ScenarioRunner& runner,
                                  const RecencyReport& report);

/// Oracle 2 — z-score classification agreement. Recomputes the
/// normal/exceptional partition from scratch (long-double accumulation,
/// population variance, strict |z| > threshold) and compares it to the
/// report's split. Sources whose |z| sits within 1e-9 relative of the
/// threshold are accepted either way (the recomputation is deliberately
/// *not* the production code path, so last-ulp disagreement at the
/// boundary is not a soundness bug) and counted as exemptions.
OracleOutcome CheckZscoreAgreement(const RecencyStats& stats,
                                   double threshold = 3.0);

/// Oracle 3 — recency guarantees never overclaim. `true_sources` is the
/// analytically known S(Q) of the query the report ran (sorted).
///   EXACT_MINIMUM -> reported set == S(Q);
///   UPPER_BOUND   -> reported set ⊇ S(Q);
///   EMPTY_SET     -> reported set empty and S(Q) empty.
OracleOutcome CheckGuarantee(const RecencyReport& report,
                             const std::vector<std::string>& true_sources);

/// Telemetry truth: every published gauge/counter the monitor layer
/// owns matches the simulator state. Staleness gauges are now - recency
/// for every source, `trac_monitor_sources` is the Heartbeat count, and
/// per polled sniffer the poll/shipped counters and the lag gauge are
/// recomputed exactly. The backlog gauge is only recomputable for
/// sniffers that polled during the most recent step (older publications
/// reflect a log size the simulator has since grown past); others are
/// counted exempt.
OracleOutcome CheckTelemetry(const ScenarioRunner& runner,
                             MetricRegistry& registry);

/// The report's span tree is complete: a single root "report" span with
/// parse/plan/verify/user-query/relevance/stats children, and every
/// "relevance-task" span parented under the relevance span.
OracleOutcome CheckTrace(const Tracer& tracer, const RecencyReport& report);

/// Oracle — static bounds dominate the runtime report. The abstract
/// interpreter's facts (computed by the verify gate before anything
/// ran) must over-approximate what execution then observed: the static
/// staleness width dominates the reported bound of inconsistency, and
/// the static source-cardinality interval contains the relevant-source
/// count. Reports without computed bounds (no age facts reached the
/// fixpoint, e.g. an empty registry) are counted exempt.
OracleOutcome CheckStaticBounds(const RecencyReport& report);

/// Oracle — profile soundness. A profiled report (options.profile, the
/// default) must yield a profiled session IR that (a) re-parses and
/// round-trips byte-exactly through Dump/ParsePlanIr, (b) carries at
/// least one runtime annotation, and (c) produces no TRAC-P001 drift
/// finding — an actual_rows outside the abstract interpreter's proven
/// cardinality interval would mean the static analysis (or the profiler
/// attribution) is unsound. TRAC-P002 misestimate advisories are
/// allowed. Unprofiled reports are counted exempt.
OracleOutcome CheckProfileSoundness(const RecencyReport& report);

/// Oracle — cache coherence. A report whose relevance result was served
/// from the RelevanceCache (report.relevance_from_cache) must be
/// byte-identical to a cold recomputation of the same user SQL at the
/// same snapshot: the cache's admission/keying/invalidation proofs
/// guarantee a served vector is exactly what execution would have
/// produced. The oracle regenerates the plan per `options.method`
/// (kFocusedHardcoded is exempt — the hardcoded plan is not
/// reconstructible from the SQL), executes it serially at
/// report.snapshot, and compares element-wise. Reports that executed
/// their recency queries (miss, or no cache wired) are counted exempt —
/// the executed path *is* the truth there.
OracleOutcome CheckCacheCoherence(const Database& db,
                                  const std::string& user_sql,
                                  const RecencyReport& report,
                                  const RecencyReportOptions& options);

/// Composite: oracles 1-3 plus the static-bounds and profile-soundness
/// oracles for one report (`true_sources` as in CheckGuarantee).
OracleOutcome CheckReport(const ScenarioRunner& runner,
                          const RecencyReport& report,
                          const std::vector<std::string>& true_sources);

}  // namespace oracle
}  // namespace trac

#endif  // TRAC_TESTS_MONITOR_ORACLES_H_
