#include <gtest/gtest.h>

#include "../test_util.h"
#include "monitor/grid.h"
#include "monitor/job_scheduler.h"

namespace trac {
namespace {

using testing_util::Ts;

TEST(SimClockTest, MonotonicAdvance) {
  SimClock clock(Ts("2006-03-15 09:00:00"));
  EXPECT_EQ(clock.now(), Ts("2006-03-15 09:00:00"));
  clock.AdvanceBy(30 * Timestamp::kMicrosPerSecond);
  EXPECT_EQ(clock.now(), Ts("2006-03-15 09:00:30"));
  clock.AdvanceTo(Ts("2006-03-15 08:00:00"));  // Backwards: no-op.
  EXPECT_EQ(clock.now(), Ts("2006-03-15 09:00:30"));
  clock.AdvanceTo(Ts("2006-03-15 10:00:00"));
  EXPECT_EQ(clock.now(), Ts("2006-03-15 10:00:00"));
}

TEST(LogFileTest, AppendAndRead) {
  LogFile log;
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.last_event_time(), Timestamp());
  LogRecord rec;
  rec.event_time = Ts("2006-03-15 09:00:00");
  rec.op = LogRecord::Op::kHeartbeat;
  log.Append(rec);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.last_event_time(), Ts("2006-03-15 09:00:00"));
}

class GridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto grid = GridSimulator::Create(&db_);
    ASSERT_TRUE(grid.ok()) << grid.status();
    grid_ = std::make_unique<GridSimulator>(std::move(*grid));
    grid_->clock().AdvanceTo(Ts("2006-03-15 09:00:00"));

    TableSchema schema("events", {ColumnDef("src", TypeId::kString),
                                  ColumnDef("n", TypeId::kInt64)});
    ASSERT_TRUE(schema.SetDataSourceColumn("src").ok());
    ASSERT_TRUE(db_.CreateTable(std::move(schema)).ok());
  }

  size_t CountEvents() {
    auto rs = ExecuteSql(db_, "SELECT COUNT(*) FROM events");
    EXPECT_TRUE(rs.ok());
    return rs.ok() ? static_cast<size_t>(rs->count()) : 0;
  }

  Database db_;
  std::unique_ptr<GridSimulator> grid_;
};

TEST_F(GridTest, AddSourceRegistersHeartbeatImmediately) {
  TRAC_ASSERT_OK(grid_->AddSource("s1").status());
  TRAC_ASSERT_OK_AND_ASSIGN(
      Timestamp ts, grid_->heartbeat().Get("s1", db_.LatestSnapshot()));
  EXPECT_EQ(ts, Ts("2006-03-15 09:00:00"));
  EXPECT_EQ(grid_->AddSource("s1").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_NE(grid_->source("s1"), nullptr);
  EXPECT_NE(grid_->sniffer("s1"), nullptr);
  EXPECT_EQ(grid_->source("zz"), nullptr);
}

TEST_F(GridTest, SnifferShipsRecordsOnPoll) {
  SnifferOptions options;
  options.poll_interval_micros = 10 * Timestamp::kMicrosPerSecond;
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * src, grid_->AddSource("s1", options));
  src->EmitInsert(Ts("2006-03-15 09:00:01"), "events",
                  {Value::Str("s1"), Value::Int(1)});
  src->EmitInsert(Ts("2006-03-15 09:00:02"), "events",
                  {Value::Str("s1"), Value::Int(2)});
  EXPECT_EQ(CountEvents(), 0u);  // Nothing shipped yet.
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:00:30")));
  EXPECT_EQ(CountEvents(), 2u);
  // Heartbeat advanced to the last shipped event.
  TRAC_ASSERT_OK_AND_ASSIGN(
      Timestamp ts, grid_->heartbeat().Get("s1", db_.LatestSnapshot()));
  EXPECT_EQ(ts, Ts("2006-03-15 09:00:02"));
  EXPECT_EQ(grid_->sniffer("s1")->records_shipped(), 2u);
}

TEST_F(GridTest, PausedSnifferShipsNothing) {
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * src, grid_->AddSource("s1"));
  TRAC_ASSERT_OK(grid_->SetPaused("s1", true));
  src->EmitInsert(Ts("2006-03-15 09:00:01"), "events",
                  {Value::Str("s1"), Value::Int(1)});
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:05:00")));
  EXPECT_EQ(CountEvents(), 0u);
  // Resume: the backlog ships.
  TRAC_ASSERT_OK(grid_->SetPaused("s1", false));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:10:00")));
  EXPECT_EQ(CountEvents(), 1u);
  EXPECT_EQ(grid_->SetPaused("zz", true).code(), StatusCode::kNotFound);
}

TEST_F(GridTest, ShipDelayHoldsRecentRecords) {
  SnifferOptions options;
  options.poll_interval_micros = 10 * Timestamp::kMicrosPerSecond;
  options.ship_delay_micros = 5 * Timestamp::kMicrosPerMinute;
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * src, grid_->AddSource("s1", options));
  src->EmitInsert(Ts("2006-03-15 09:00:01"), "events",
                  {Value::Str("s1"), Value::Int(1)});
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:03:00")));
  EXPECT_EQ(CountEvents(), 0u);  // Still within the transport delay.
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:06:00")));
  EXPECT_EQ(CountEvents(), 1u);
}

TEST_F(GridTest, HeartbeatRecordAdvancesRecencyWithoutData) {
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * src, grid_->AddSource("s1"));
  src->EmitHeartbeat(Ts("2006-03-15 09:02:00"));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:03:00")));
  EXPECT_EQ(CountEvents(), 0u);
  TRAC_ASSERT_OK_AND_ASSIGN(
      Timestamp ts, grid_->heartbeat().Get("s1", db_.LatestSnapshot()));
  EXPECT_EQ(ts, Ts("2006-03-15 09:02:00"));
}

TEST_F(GridTest, UpsertAndDeleteThroughLog) {
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * src, grid_->AddSource("s1"));
  src->EmitUpsert(Ts("2006-03-15 09:00:01"), "events",
                  {Value::Str("s1"), Value::Int(1)}, {0});
  src->EmitUpsert(Ts("2006-03-15 09:00:02"), "events",
                  {Value::Str("s1"), Value::Int(2)}, {0});
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:01:00")));
  EXPECT_EQ(CountEvents(), 1u);  // Second upsert replaced the first.
  auto rs = ExecuteSql(db_, "SELECT n FROM events");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->Contains({Value::Int(2)}));

  src->EmitDelete(Ts("2006-03-15 09:02:00"), "events",
                  {Value::Str("s1"), Value::Int(2)}, {0});
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:03:00")));
  EXPECT_EQ(CountEvents(), 0u);
}

TEST_F(GridTest, SourceCannotWriteAnotherSourcesTuples) {
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * s1, grid_->AddSource("s1"));
  TRAC_ASSERT_OK(grid_->AddSource("s2").status());
  // s1 emits a row tagged s2: the sniffer refuses it (Section 3.3's
  // "only updates from s can insert or change tuples with s").
  s1->EmitInsert(Ts("2006-03-15 09:00:01"), "events",
                 {Value::Str("s2"), Value::Int(1)});
  EXPECT_FALSE(grid_->RunUntil(Ts("2006-03-15 09:01:00")).ok());
}

TEST_F(GridTest, UpsertNeverTouchesOtherSourcesRows) {
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * s1, grid_->AddSource("s1"));
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * s2, grid_->AddSource("s2"));
  // Both sources upsert with the same key column value n=7; each keeps
  // its own row.
  s1->EmitUpsert(Ts("2006-03-15 09:00:01"), "events",
                 {Value::Str("s1"), Value::Int(7)}, {1});
  s2->EmitUpsert(Ts("2006-03-15 09:00:02"), "events",
                 {Value::Str("s2"), Value::Int(7)}, {1});
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:01:00")));
  EXPECT_EQ(CountEvents(), 2u);
}

TEST_F(GridTest, PollsFireInTimestampOrder) {
  SnifferOptions fast;
  fast.poll_interval_micros = 10 * Timestamp::kMicrosPerSecond;
  SnifferOptions slow;
  slow.poll_interval_micros = 45 * Timestamp::kMicrosPerSecond;
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * f, grid_->AddSource("fast", fast));
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * s, grid_->AddSource("slow", slow));
  f->EmitInsert(Ts("2006-03-15 09:00:01"), "events",
                {Value::Str("fast"), Value::Int(1)});
  s->EmitInsert(Ts("2006-03-15 09:00:01"), "events",
                {Value::Str("slow"), Value::Int(1)});
  // At 09:00:20 only the fast source has polled.
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:00:20")));
  EXPECT_EQ(CountEvents(), 1u);
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:01:00")));
  EXPECT_EQ(CountEvents(), 2u);
}

TEST_F(GridTest, PollAllFlushesEverything) {
  SnifferOptions slow;
  slow.poll_interval_micros = Timestamp::kMicrosPerHour;
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * src, grid_->AddSource("s1", slow));
  src->EmitInsert(Ts("2006-03-15 09:00:01"), "events",
                  {Value::Str("s1"), Value::Int(1)});
  grid_->clock().AdvanceTo(Ts("2006-03-15 09:00:05"));
  TRAC_ASSERT_OK(grid_->PollAll());
  EXPECT_EQ(CountEvents(), 1u);
}

TEST(JobSchedulerTest, FourVisibilityStates) {
  // The introduction's scenario, asserted end to end.
  Database db;
  auto grid = GridSimulator::Create(&db);
  ASSERT_TRUE(grid.ok());
  grid->clock().AdvanceTo(Ts("2006-03-15 09:00:00"));
  SnifferOptions fast;
  fast.poll_interval_micros = 30 * Timestamp::kMicrosPerSecond;
  SnifferOptions slow;
  slow.poll_interval_micros = 5 * Timestamp::kMicrosPerMinute;
  auto workload = JobSchedulerWorkload::Setup(&*grid, {"m1", "m2"});
  ASSERT_TRUE(workload.ok()) << workload.status();
  TRAC_ASSERT_OK(grid->SetSnifferOptions("m1", fast));
  TRAC_ASSERT_OK(grid->SetSnifferOptions("m2", slow));

  TRAC_ASSERT_OK(workload->SubmitJob("m1", "j", "m2",
                                     Ts("2006-03-15 09:00:05")));
  TRAC_ASSERT_OK(workload->StartJob("m2", "j", Ts("2006-03-15 09:00:20")));

  auto count = [&](const char* sql) {
    auto rs = ExecuteSql(db, sql);
    EXPECT_TRUE(rs.ok());
    return rs.ok() ? rs->count() : -1;
  };

  // State 1: nothing shipped.
  EXPECT_EQ(count("SELECT COUNT(*) FROM s"), 0);
  EXPECT_EQ(count("SELECT COUNT(*) FROM r"), 0);

  // State 2: m1 shipped (fast), m2 not yet (slow).
  TRAC_ASSERT_OK(grid->RunUntil(Ts("2006-03-15 09:01:00")));
  EXPECT_EQ(count("SELECT COUNT(*) FROM s"), 1);
  EXPECT_EQ(count("SELECT COUNT(*) FROM r"), 0);

  // State 4: everything converged.
  TRAC_ASSERT_OK(grid->RunUntil(Ts("2006-03-15 09:10:00")));
  EXPECT_EQ(count("SELECT COUNT(*) FROM s"), 1);
  EXPECT_EQ(count("SELECT COUNT(*) FROM r"), 1);

  // State 3 (other order): pause m1, run a second job.
  TRAC_ASSERT_OK(grid->SetPaused("m1", true));
  TRAC_ASSERT_OK(workload->SubmitJob("m1", "j2", "m2",
                                     Ts("2006-03-15 09:11:00")));
  TRAC_ASSERT_OK(workload->StartJob("m2", "j2", Ts("2006-03-15 09:11:30")));
  TRAC_ASSERT_OK(grid->RunUntil(Ts("2006-03-15 09:20:00")));
  auto rs = ExecuteSql(
      db, "SELECT COUNT(*) FROM r WHERE job_id = 'j2'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->count(), 1);  // Running...
  auto s_rs = ExecuteSql(
      db, "SELECT COUNT(*) FROM s WHERE job_id = 'j2'");
  ASSERT_TRUE(s_rs.ok());
  EXPECT_EQ(s_rs->count(), 0);  // ...but apparently never submitted.
}

TEST(JobSchedulerTest, ReassignmentUpsertsSchedulerTuple) {
  Database db;
  auto grid = GridSimulator::Create(&db);
  ASSERT_TRUE(grid.ok());
  grid->clock().AdvanceTo(Ts("2006-03-15 09:00:00"));
  auto workload = JobSchedulerWorkload::Setup(&*grid, {"m1", "m2", "m3"});
  ASSERT_TRUE(workload.ok());
  TRAC_ASSERT_OK(workload->SubmitJob("m1", "j", "m2",
                                     Ts("2006-03-15 09:00:05")));
  TRAC_ASSERT_OK(workload->SubmitJob("m1", "j", "m3",
                                     Ts("2006-03-15 09:00:10")));
  TRAC_ASSERT_OK(grid->RunUntil(Ts("2006-03-15 09:01:00")));
  auto rs = ExecuteSql(db, "SELECT remote_machine_id FROM s WHERE "
                           "job_id = 'j'");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_TRUE(rs->Contains({Value::Str("m3")}));
  TRAC_ASSERT_OK(workload->FinishJob("m3", "j", Ts("2006-03-15 09:02:00")));
  EXPECT_FALSE(workload->SubmitJob("zz", "j", "m2", Timestamp()).ok());
  EXPECT_FALSE(workload->StartJob("zz", "j", Timestamp()).ok());
  EXPECT_FALSE(workload->FinishJob("zz", "j", Timestamp()).ok());
}

}  // namespace
}  // namespace trac
