// Failure injection across the monitor layer and concurrency around the
// reporter: what happens when a log carries a bad record, when sources
// go silent for a long time, and when the database is written while a
// report runs.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "monitor/grid.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;
using testing_util::Ts;

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto grid = GridSimulator::Create(&db_);
    ASSERT_TRUE(grid.ok());
    grid_ = std::make_unique<GridSimulator>(std::move(*grid));
    grid_->clock().AdvanceTo(Ts("2006-03-15 09:00:00"));
    TableSchema schema("events", {ColumnDef("src", TypeId::kString),
                                  ColumnDef("n", TypeId::kInt64)});
    ASSERT_TRUE(schema.SetDataSourceColumn("src").ok());
    ASSERT_TRUE(db_.CreateTable(std::move(schema)).ok());
  }

  Database db_;
  std::unique_ptr<GridSimulator> grid_;
};

TEST_F(FailureTest, BadRecordBlocksTheSourceNotTheGrid) {
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * bad, grid_->AddSource("bad"));
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * good, grid_->AddSource("good"));
  // `bad` logs a record for a table that does not exist; `good` is fine.
  bad->EmitInsert(Ts("2006-03-15 09:00:01"), "no_such_table",
                  {Value::Str("bad"), Value::Int(1)});
  good->EmitInsert(Ts("2006-03-15 09:00:01"), "events",
                   {Value::Str("good"), Value::Int(1)});

  // The grid surfaces the error...
  EXPECT_FALSE(grid_->RunUntil(Ts("2006-03-15 09:01:00")).ok());
  // ...but the failing record was not skipped (at-least-once shipping:
  // the cursor stays put so a repaired table would pick it up).
  EXPECT_EQ(grid_->sniffer("bad")->records_shipped(), 0u);
  // The good source can still make progress by polling directly.
  TRAC_ASSERT_OK(grid_->sniffer("good")->Poll(grid_->clock().now()));
  EXPECT_EQ(grid_->sniffer("good")->records_shipped(), 1u);

  // Repair: create the missing table; the stuck record ships.
  TableSchema repair("no_such_table", {ColumnDef("src", TypeId::kString),
                                       ColumnDef("n", TypeId::kInt64)});
  TRAC_ASSERT_OK(repair.SetDataSourceColumn("src"));
  TRAC_ASSERT_OK(db_.CreateTable(std::move(repair)).status());
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:05:00")));
  EXPECT_EQ(grid_->sniffer("bad")->records_shipped(), 1u);
}

TEST_F(FailureTest, LongOutageThenRecoveryShowsInTheReport) {
  // A baker's dozen of sources: with only a handful, no z-score can
  // reach 3 (max |z| is (n-1)/sqrt(n)), so outlier detection needs a
  // population — the same effect the reporter tests document.
  SnifferOptions fast;
  fast.poll_interval_micros = 30 * Timestamp::kMicrosPerSecond;
  std::vector<std::string> ids = {"s1"};
  for (int i = 2; i <= 13; ++i) ids.push_back("s" + std::to_string(i));
  for (const std::string& id : ids) {
    TRAC_ASSERT_OK(grid_->AddSource(id, fast).status());
    TRAC_ASSERT_OK(grid_->EnableAutoHeartbeat(
        id, 2 * Timestamp::kMicrosPerMinute));
  }
  // s1 goes dark after 10 minutes; the others stay healthy for two more
  // hours. Entirely simulated time: the outage length only needs to
  // dwarf the 2-minute heartbeat cadence (with 12-at-fresh + 1-stale the
  // outlier's |z| converges to sqrt(12) ~ 3.46 once the outage dominates
  // the healthy jitter), so the test is identical under TSan or load.
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 09:10:00")));
  TRAC_ASSERT_OK(grid_->SetPaused("s1", true));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 11:00:00")));

  Session session(&db_);
  RecencyReporter reporter(&db_, &session);
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport report,
                            reporter.Run("SELECT COUNT(*) FROM events"));
  ASSERT_EQ(report.stats.exceptional.size(), 1u);
  EXPECT_EQ(report.stats.exceptional[0].source, "s1");
  EXPECT_EQ(report.stats.normal.size(), 12u);
  // The healthy pair's inconsistency bound is tiny (heartbeat cadence).
  EXPECT_LE(report.stats.inconsistency_bound_micros,
            3 * Timestamp::kMicrosPerMinute);

  // Recovery: the backlogged heartbeats ship and s1 rejoins the normal
  // set.
  TRAC_ASSERT_OK(grid_->SetPaused("s1", false));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 11:10:00")));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport after,
                            reporter.Run("SELECT COUNT(*) FROM events"));
  EXPECT_TRUE(after.stats.exceptional.empty());
}

TEST(ConcurrencyTest, ReportsStayConsistentUnderConcurrentWrites) {
  PaperExampleDb fixture;
  RecencyReporter reporter(&fixture.db, nullptr);
  RecencyReportOptions options;
  options.create_temp_tables = false;

  // Bounded writer: a fixed number of committed inserts, so the test's
  // length is set by work done, not by wall-clock time — TSan can slow
  // both threads arbitrarily and the interleaving stays interesting
  // while termination stays deterministic.
  constexpr int kWrites = 1500;
  // event_time carries a finite domain in the fixture, so the writer
  // must stay inside it or every insert is silently rejected (which
  // would turn this test into a no-op — it happened once).
  const Timestamp domain_times[] = {
      Ts("2006-03-11 20:37:46"), Ts("2006-02-10 18:22:01"),
      Ts("2006-03-12 10:23:05"), Ts("2006-03-12 23:20:06"),
      Ts("2006-02-10 03:34:21")};
  std::atomic<int> written{0};
  std::atomic<int> insert_failures{0};
  std::thread writer([&]() {
    for (int i = 0; i < kWrites; ++i) {
      // Each idle row for m1 is a separate commit.
      if (!fixture.db
               .Insert("activity", {Value::Str("m1"), Value::Str("idle"),
                                    Value::Ts(domain_times[i % 5])})
               .ok()) {
        insert_failures.fetch_add(1, std::memory_order_relaxed);
      }
      written.fetch_add(1, std::memory_order_release);
    }
  });

  const char* kSql =
      "SELECT COUNT(*) FROM activity WHERE mach_id IN ('m1','m2') AND "
      "value = 'idle'";
  int64_t last = 0;
  // Race reports against the writer until it finishes (at least once).
  do {
    auto report = reporter.Run(kSql, options);
    ASSERT_TRUE(report.ok()) << report.status();
    // The relevant set is predicate-determined, immune to the writes.
    ASSERT_EQ(report->relevance.sources.size(), 2u);
    // The count only ever grows between reports (snapshots are
    // monotone), and both report pieces came from one snapshot.
    EXPECT_GE(report->result.count(), last);
    last = report->result.count();
  } while (written.load(std::memory_order_acquire) < kWrites);
  writer.join();
  EXPECT_EQ(insert_failures.load(std::memory_order_relaxed), 0);

  // With the writer joined, one more report must see every commit.
  auto final_report = reporter.Run(kSql, options);
  ASSERT_TRUE(final_report.ok()) << final_report.status();
  EXPECT_GE(final_report->result.count(), last);
  EXPECT_GE(final_report->result.count(), kWrites);
}

}  // namespace
}  // namespace trac
