// Hammers the sharded metric cells from many threads at once and
// asserts the aggregated values are EXACT after the writers join: the
// relaxed per-cell fetch_adds lose nothing, they only defer visibility
// until the reader synchronizes with the writers (thread join here).
// Run under the tsan preset this also proves the fast paths are free of
// data races.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace trac {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 50000;

TEST(MetricsStressTest, CounterExactAfterJoin) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kOpsPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
}

TEST(MetricsStressTest, HistogramExactAfterJoin) {
  Histogram histogram;
  // Every thread observes the same value sequence, so the expected sum
  // and per-bucket counts are closed-form.
  int64_t per_thread_sum = 0;
  for (int i = 0; i < kOpsPerThread; ++i) per_thread_sum += i % 1024;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kOpsPerThread; ++i) histogram.Observe(i % 1024);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(histogram.Count(),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(histogram.Sum(), kThreads * per_thread_sum);
  int64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i)
    bucket_total += histogram.BucketCount(i);
  EXPECT_EQ(bucket_total, histogram.Count());
}

TEST(MetricsStressTest, RegistryLookupAndUpdateConcurrently) {
  // Threads race series creation (first GetCounter wins the insert) and
  // then hammer the shared series; scrapes run concurrently with the
  // writers to exercise the read side under contention.
  MetricRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter* counter = registry.GetCounter(
          "stress_total", "shared series", {{"kind", "race"}});
      Gauge* gauge = registry.GetGauge("stress_last", "per-thread gauge",
                                       {{"thread", std::to_string(t)}});
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Increment();
        if (i % 1024 == 0) gauge->Set(i);
      }
    });
  }
  std::thread scraper([&registry] {
    for (int i = 0; i < 50; ++i) {
      std::string text = registry.ScrapeText();
      EXPECT_FALSE(text.empty());
    }
  });
  for (auto& t : threads) t.join();
  scraper.join();
  Counter* counter = registry.GetCounter("stress_total", "shared series",
                                         {{"kind", "race"}});
  EXPECT_EQ(counter->Value(),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(registry.GaugeSamples().size(), static_cast<size_t>(kThreads));
}

TEST(MetricsStressTest, TracerRecordsConcurrently) {
  // N threads record spans into one ring while another thread dumps the
  // trace; the ring never exceeds capacity and never tears a record.
  Tracer tracer(/*capacity=*/256);
  const uint64_t trace_id = tracer.NextTraceId();
  constexpr int kSpansPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, trace_id] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanRecord span;
        span.trace_id = trace_id;
        span.span_id = tracer.NextSpanId();
        span.name = "stress";
        span.start_micros = i;
        span.end_micros = i + 1;
        tracer.Record(std::move(span));
      }
    });
  }
  std::thread dumper([&tracer, trace_id] {
    for (int i = 0; i < 20; ++i) {
      std::string json = tracer.DumpTraceJson(trace_id);
      EXPECT_FALSE(json.empty());
    }
  });
  for (auto& t : threads) t.join();
  dumper.join();
  EXPECT_EQ(tracer.size(), tracer.capacity());
}

}  // namespace
}  // namespace trac
