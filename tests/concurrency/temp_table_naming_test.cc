// Regression test for the temp-table naming contract (core/session.h):
// the sys_temp_a* / sys_temp_e* suffix is allocated from the owning
// Database's atomic counter, so sessions on different threads reporting
// concurrently never collide. The original implementation used a
// process-wide counter — unique too, but shared across unrelated
// Databases and never reset; the per-Database allocator keeps names
// unique where it matters and makes the contract testable.

#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "core/session.h"

namespace trac {
namespace {

TEST(TempTableNamingTest, ConcurrentSessionsNeverCollide) {
  Database db;
  TableSchema schema("d", {ColumnDef("x", TypeId::kInt64)});
  TRAC_ASSERT_OK(db.CreateTable(std::move(schema)).status());

  constexpr int kThreads = 8;
  constexpr int kTablesPerThread = 50;

  std::mutex mu;
  std::vector<std::string> all_names;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Session session(&db);
      std::vector<std::string> names;
      for (int i = 0; i < kTablesPerThread; ++i) {
        auto name = session.CreateTempTable(
            i % 2 == 0 ? "sys_temp_a" : "sys_temp_e",
            {ColumnDef("source_id", TypeId::kString)},
            {{Value::Str("m1")}});
        if (!name.ok()) {
          ADD_FAILURE() << name.status().ToString();
          return;
        }
        names.push_back(*name);
        // The created table must be immediately resolvable and readable
        // from this thread.
        auto id = db.FindTable(*name);
        if (!id.ok()) {
          ADD_FAILURE() << "created table not resolvable: " << *name;
          return;
        }
        EXPECT_EQ(db.GetTable(*id)->CountVisible(db.LatestSnapshot()), 1u);
      }
      std::lock_guard<std::mutex> lock(mu);
      all_names.insert(all_names.end(), names.begin(), names.end());
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(all_names.size(),
            static_cast<size_t>(kThreads) * kTablesPerThread);
  std::set<std::string> unique(all_names.begin(), all_names.end());
  EXPECT_EQ(unique.size(), all_names.size())
      << "temp-table name collision across concurrent sessions";
}

TEST(TempTableNamingTest, ConcurrentReportersGetDistinctTempTables) {
  // The user-facing version of the same property: full recency reports
  // with create_temp_tables on, one session per thread, sharing one
  // PaperExampleDb. Every report's pair of temp tables is distinct from
  // every other report's.
  testing_util::PaperExampleDb env;

  constexpr int kThreads = 4;
  constexpr int kReportsPerThread = 5;

  std::mutex mu;
  std::vector<std::string> all_names;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Session session(&env.db);
      RecencyReporter reporter(&env.db, &session);
      for (int i = 0; i < kReportsPerThread; ++i) {
        auto report = reporter.Run(
            "SELECT a.mach_id FROM activity a WHERE a.value = 'idle'");
        if (!report.ok()) {
          ADD_FAILURE() << report.status().ToString();
          return;
        }
        EXPECT_FALSE(report->normal_temp_table.empty());
        EXPECT_FALSE(report->exceptional_temp_table.empty());
        std::lock_guard<std::mutex> lock(mu);
        all_names.push_back(report->normal_temp_table);
        all_names.push_back(report->exceptional_temp_table);
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(all_names.size(),
            static_cast<size_t>(kThreads) * kReportsPerThread * 2);
  std::set<std::string> unique(all_names.begin(), all_names.end());
  EXPECT_EQ(unique.size(), all_names.size());
}

TEST(TempTableNamingTest, SeparateDatabasesAllocateIndependently) {
  // With the per-Database allocator, a fresh Database always starts its
  // suffixes at the same point — names are deterministic per Database,
  // not dependent on how many temp tables other Databases in the process
  // made (the failure mode of the old process-global counter).
  Database db1, db2;
  Session s1(&db1), s2(&db2);
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::string n1,
      s1.CreateTempTable("sys_temp_a",
                         {ColumnDef("source_id", TypeId::kString)}, {}));
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::string n2,
      s2.CreateTempTable("sys_temp_a",
                         {ColumnDef("source_id", TypeId::kString)}, {}));
  EXPECT_EQ(n1, n2) << "fresh Databases must allocate identically";
}

}  // namespace
}  // namespace trac
