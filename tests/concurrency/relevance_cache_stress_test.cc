// Concurrency stress for the relevance-result cache: 8 threads hammer
// one shared RelevanceCache over one Database — most run repeat reports
// (mixed cache hits), one keeps landing heartbeat arrivals (forced
// invalidations and insert races). TSan-clean by construction (leaf
// mutex, copy-out under lock, validation outside), and the accounting
// invariant must hold *exactly* despite every interleaving:
//
//   hits + misses + inadmissible == lookups == total reports,
//
// plus every served report must carry a sorted source vector coherent
// with some committed heartbeat state (spot-checked per hit).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "core/relevance.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;
using testing_util::Ts;

TEST(RelevanceCacheStressTest, EightThreadsExactAccounting) {
  PaperExampleDb fixture;
  RelevanceCache cache;

  constexpr size_t kReaders = 7;
  constexpr size_t kReportsPerReader = 40;
  constexpr size_t kWriterBeats = 60;

  // Two queries cycling per reader: distinct relevance plans, so the
  // cache holds multiple entries under contention.
  const std::string sqls[2] = {
      "SELECT * FROM activity WHERE value = 'idle'",
      "SELECT * FROM activity WHERE mach_id = 'm1'",
  };

  std::atomic<size_t> failures{0};
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (size_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      RecencyReporter reporter(&fixture.db, nullptr);
      RecencyReportOptions options;
      options.create_temp_tables = false;
      options.cache = &cache;
      for (size_t i = 0; i < kReportsPerReader; ++i) {
        auto report = reporter.Run(sqls[(t + i) % 2], options);
        if (!report.ok()) {
          ++failures;
          continue;
        }
        // Served or computed, the vector is sorted by source id — the
        // cache must never hand back a torn or unsorted payload.
        const auto& sources = report->relevance.sources;
        for (size_t k = 1; k < sources.size(); ++k) {
          if (!(sources[k - 1].source < sources[k].source)) ++failures;
        }
      }
    });
  }
  threads.emplace_back([&] {
    // The writer: heartbeat arrivals move the registry's data epoch,
    // forcing invalidations and insert-race discards in the readers.
    for (size_t b = 0; b < kWriterBeats; ++b) {
      const Status beat = fixture.heartbeat->SetRecency(
          "m" + std::to_string(1 + (b % 11)),
          Ts("2006-03-15 15:00:00") +
              static_cast<int64_t>(b) * Timestamp::kMicrosPerMinute);
      if (!beat.ok()) ++failures;
      std::this_thread::yield();
    }
    writer_done = true;
  });
  for (std::thread& th : threads) th.join();
  ASSERT_TRUE(writer_done.load());
  EXPECT_EQ(failures.load(), 0u);

  const RelevanceCache::Stats stats = cache.stats();
  // Exact totals: each report with a cache wired does exactly one
  // lookup, and each lookup resolves to exactly one outcome.
  EXPECT_EQ(stats.lookups, kReaders * kReportsPerReader);
  EXPECT_EQ(stats.hits + stats.misses + stats.inadmissible, stats.lookups);
  // Every miss either inserted or was discarded by the race guard;
  // hits and invalidations never insert.
  EXPECT_EQ(stats.inserts + stats.insert_discards, stats.misses);
  // An invalidation is always attached to a miss.
  EXPECT_LE(stats.invalidations, stats.misses);
  // The two plans are admissible: nothing may count inadmissible.
  EXPECT_EQ(stats.inadmissible, 0u);
  // At most one live entry per distinct plan.
  EXPECT_LE(stats.entries, 2u);

  // Quiescent epilogue: with the writer stopped, a repeat report must
  // hit, and its payload must equal a cache-free recomputation.
  RecencyReporter reporter(&fixture.db, nullptr);
  RecencyReportOptions options;
  options.create_temp_tables = false;
  options.cache = &cache;
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport prime,
                            reporter.Run(sqls[0], options));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport warm,
                            reporter.Run(sqls[0], options));
  EXPECT_TRUE(warm.relevance_from_cache);
  RecencyReportOptions cold_options = options;
  cold_options.cache = nullptr;
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport cold,
                            reporter.Run(sqls[0], cold_options));
  EXPECT_EQ(warm.relevance.sources, cold.relevance.sources);
  EXPECT_EQ(prime.relevance.sources, cold.relevance.sources);
}

TEST(RelevanceCacheStressTest, ConcurrentInsertsKeepOneCoherentEntry) {
  // All threads race to insert the same probe computed at their own
  // snapshot; the slot must end up holding a single coherent entry
  // (newest snapshot wins, older offers discarded), never a blend.
  PaperExampleDb fixture;
  RelevanceCache cache;
  RelevanceCache::Probe probe;
  probe.admissible = true;
  probe.fingerprint = 7;
  probe.cache_key = "shared-plan";
  probe.tables = {"heartbeat"};
  probe.catalog_epoch = fixture.db.catalog().epoch();

  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Snapshot snapshot = fixture.db.LatestSnapshot();
      std::vector<SourceRecency> payload = {
          {"m" + std::to_string(t + 1), Ts("2006-03-15 14:20:05")}};
      for (int i = 0; i < 50; ++i) {
        cache.Insert(fixture.db, probe, snapshot, payload);
        cache.Lookup(fixture.db, probe, snapshot);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const RelevanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits + stats.misses + stats.inadmissible, stats.lookups);
  auto served = cache.Lookup(fixture.db, probe, fixture.db.LatestSnapshot());
  ASSERT_TRUE(served.has_value());
  // The payload is exactly one thread's offer — single-element, intact.
  ASSERT_EQ(served->size(), 1u);
  EXPECT_EQ((*served)[0].recency, Ts("2006-03-15 14:20:05"));
}

}  // namespace
}  // namespace trac
