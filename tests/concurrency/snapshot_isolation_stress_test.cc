// Snapshot-isolation stress: writer threads append through the Database
// while reader threads take snapshots and scan / run recency reports.
// The invariants checked are exactly the consequences the Database
// concurrency contract promises (storage/database.h):
//
//  - no torn reads: every observed row satisfies its integrity column
//    (check == seq * 31 + writer), so a reader can never see a
//    half-constructed Row;
//  - per-writer prefix: the seqs a snapshot shows for one writer are
//    dense 0..n-1 — commit order is counter order, so a writer's k-th
//    insert is visible only together with its first k-1;
//  - frozen snapshots: re-scanning a snapshot after more history has
//    accumulated yields the identical fingerprint.
//
// Run this under -fsanitize=thread (cmake --preset tsan) to turn the
// memory-ordering argument into a checked property.

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "core/session.h"

namespace trac {
namespace {

using testing_util::Ts;

constexpr int kWriters = 4;
constexpr int kRowsPerWriter = 120;
constexpr int kReaders = 3;

std::multiset<std::string> ScanFingerprint(const Database& db, TableId id,
                                           Snapshot snap) {
  std::multiset<std::string> out;
  db.GetTable(id)->Scan(snap, [&](size_t, const Row& row) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  });
  return out;
}

TEST(SnapshotIsolationStressTest, PrefixVisibilityAndNoTornReads) {
  Database db;
  TableSchema schema("t", {ColumnDef("writer", TypeId::kInt64),
                           ColumnDef("seq", TypeId::kInt64),
                           ColumnDef("check_sum", TypeId::kInt64)});
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));

  std::atomic<int> writers_done{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int seq = 0; seq < kRowsPerWriter; ++seq) {
        Row row = {Value::Int(w), Value::Int(seq),
                   Value::Int(seq * 31 + w)};
        Status s = db.Insert("t", std::move(row));
        if (!s.ok()) {
          failed.store(true);
          ADD_FAILURE() << "insert failed: " << s.ToString();
          return;
        }
      }
      writers_done.fetch_add(1);
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      // Keep validating snapshots until every writer finished, then do
      // one final pass over the complete state.
      bool final_pass_done = false;
      while (!final_pass_done && !failed.load()) {
        final_pass_done = writers_done.load() == kWriters;
        Snapshot snap = db.LatestSnapshot();

        // One scan collects everything; validate afterwards so the scan
        // callback stays trivial.
        std::vector<std::vector<int64_t>> seqs(kWriters);
        bool torn = false;
        db.GetTable(id)->Scan(snap, [&](size_t, const Row& row) {
          const int64_t w = row[0].int_val();
          const int64_t seq = row[1].int_val();
          const int64_t check = row[2].int_val();
          if (w < 0 || w >= kWriters || check != seq * 31 + w) {
            torn = true;
            return;
          }
          seqs[static_cast<size_t>(w)].push_back(seq);
        });
        EXPECT_FALSE(torn) << "torn or corrupt row observed";

        for (int w = 0; w < kWriters; ++w) {
          // Version order within one table is append order, and one
          // writer's appends are monotone, so its seqs arrive sorted and
          // must form the dense prefix 0..n-1.
          const auto& s = seqs[w];
          for (size_t i = 0; i < s.size(); ++i) {
            if (s[i] != static_cast<int64_t>(i)) {
              ADD_FAILURE() << "writer " << w << " gap: position " << i
                            << " holds seq " << s[i];
              failed.store(true);
              return;
            }
          }
        }

        // Frozen snapshot: an immediate re-scan (arbitrarily later in
        // commit history) sees the identical multiset.
        EXPECT_EQ(ScanFingerprint(db, id, snap),
                  ScanFingerprint(db, id, snap));
      }
    });
  }

  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();

  // Complete final state.
  Snapshot snap = db.LatestSnapshot();
  size_t total = 0;
  db.GetTable(id)->Scan(snap, [&](size_t, const Row&) { ++total; });
  EXPECT_EQ(total, static_cast<size_t>(kWriters) * kRowsPerWriter);
}

TEST(SnapshotIsolationStressTest, RecencyReportsUnderHeartbeatChurn) {
  // Writers keep advancing heartbeats and appending activity rows while
  // readers run full recency reports (each from its own Session, with
  // temp-table materialization on). Every report must be internally
  // consistent: it reflects ONE snapshot, so its source lists are sorted,
  // disjoint and complete, and the inconsistency bound matches its own
  // extremes.
  Database db;
  TableSchema schema("activity",
                     {ColumnDef("mach_id", TypeId::kString),
                      ColumnDef("value", TypeId::kString),
                      ColumnDef("event_time", TypeId::kTimestamp)});
  TRAC_ASSERT_OK(schema.SetDataSourceColumn("mach_id"));
  TRAC_ASSERT_OK(db.CreateTable(std::move(schema)).status());
  TRAC_ASSERT_OK(db.CreateIndex("activity", "mach_id"));
  TRAC_ASSERT_OK_AND_ASSIGN(HeartbeatTable heartbeat,
                            HeartbeatTable::Create(&db));

  const Timestamp base = Ts("2006-03-15 14:20:05");
  constexpr int kSources = 16;
  for (int i = 0; i < kSources; ++i) {
    const std::string m = "m" + std::to_string(i);
    TRAC_ASSERT_OK(heartbeat.ReportHeartbeat(m, base));
    TRAC_ASSERT_OK(db.Insert(
        "activity",
        {Value::Str(m), Value::Str(i % 2 == 0 ? "idle" : "busy"),
         Value::Ts(base)}));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      // Bounded so the table cannot grow without limit on a slow
      // machine; readers finishing first also stops the churn.
      for (int round = 1; round <= 60 && !stop.load(); ++round) {
        for (int i = w; i < kSources; i += 2) {
          const std::string m = "m" + std::to_string(i);
          Status s = heartbeat.ReportHeartbeat(
              m, base + round * Timestamp::kMicrosPerMinute);
          if (!s.ok()) {
            ADD_FAILURE() << s.ToString();
            return;
          }
          s = db.Insert("activity",
                        {Value::Str(m), Value::Str("idle"),
                         Value::Ts(base + round * Timestamp::kMicrosPerMinute)});
          if (!s.ok()) {
            ADD_FAILURE() << s.ToString();
            return;
          }
        }
      }
    });
  }

  std::vector<std::thread> readers;
  std::atomic<int> reports_done{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Session session(&db);
      RecencyReporter reporter(&db, &session);
      RecencyReportOptions options;
      options.relevance.parallelism = 2;
      for (int i = 0; i < 8; ++i) {
        auto report = reporter.Run(
            "SELECT a.mach_id FROM activity a WHERE a.value = 'idle'",
            options);
        if (!report.ok()) {
          ADD_FAILURE() << report.status().ToString();
          return;
        }
        // Internal consistency of a single-snapshot report.
        EXPECT_FALSE(report->relevance.sources.empty());
        EXPECT_EQ(report->stats.normal.size() +
                      report->stats.exceptional.size(),
                  report->relevance.sources.size());
        for (size_t k = 1; k < report->relevance.sources.size(); ++k) {
          EXPECT_LT(report->relevance.sources[k - 1].source,
                    report->relevance.sources[k].source);
        }
        if (report->stats.least_recent.has_value()) {
          EXPECT_EQ(report->stats.inconsistency_bound_micros,
                    report->stats.most_recent->recency -
                        report->stats.least_recent->recency);
        }
        EXPECT_FALSE(report->normal_temp_table.empty());
        EXPECT_FALSE(report->exceptional_temp_table.empty());
        reports_done.fetch_add(1);
      }
    });
  }

  for (auto& t : readers) t.join();
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_EQ(reports_done.load(), kReaders * 8);
}

}  // namespace
}  // namespace trac
