// Parallel recency-query execution must be observationally identical to
// serial execution: same relevant sets, same recency timestamps, same
// stats and bound of inconsistency — for every workload query, every
// method, and every parallelism level. The fan-out only changes wall
// time, never results (the tasks read one shared MVCC snapshot).

#include <memory>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/thread_pool.h"
#include "core/recency_reporter.h"
#include "workload/eval_workload.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

RecencyReportOptions OptionsWith(RecencyMethod method, size_t parallelism) {
  RecencyReportOptions options;
  options.method = method;
  options.create_temp_tables = false;
  options.relevance.parallelism = parallelism;
  return options;
}

void ExpectSameReport(const RecencyReport& serial,
                      const RecencyReport& parallel, size_t parallelism) {
  SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
  // The user query result.
  EXPECT_EQ(serial.result.rows, parallel.result.rows);
  // A(Q) with recency timestamps, already sorted by source.
  EXPECT_EQ(serial.relevance.sources, parallel.relevance.sources);
  EXPECT_EQ(serial.relevance.minimal, parallel.relevance.minimal);
  EXPECT_EQ(serial.relevance.fallback_all, parallel.relevance.fallback_all);
  // Normal/exceptional split and the extremes.
  EXPECT_EQ(serial.stats.normal, parallel.stats.normal);
  EXPECT_EQ(serial.stats.exceptional, parallel.stats.exceptional);
  EXPECT_EQ(serial.stats.least_recent.has_value(),
            parallel.stats.least_recent.has_value());
  if (serial.stats.least_recent.has_value() &&
      parallel.stats.least_recent.has_value()) {
    EXPECT_EQ(*serial.stats.least_recent, *parallel.stats.least_recent);
    EXPECT_EQ(*serial.stats.most_recent, *parallel.stats.most_recent);
  }
  EXPECT_EQ(serial.stats.inconsistency_bound_micros,
            parallel.stats.inconsistency_bound_micros);
  // Bookkeeping: the parallel run exposes its fan-out.
  EXPECT_EQ(parallel.relevance_parallelism, parallelism);
  EXPECT_GE(parallel.relevance_task_micros.size(),
            serial.relevance_task_micros.size());
}

class ParallelRelevanceWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 256 sources: enough Heartbeat rows that the pure-scan sharding
    // (floor: 64 rows per shard) actually fans out the Naive plan.
    EvalWorkloadOptions options;
    options.total_activity_rows = 6400;
    options.num_sources = 256;
    options.num_exceptional_sources = 3;
    TRAC_ASSERT_OK_AND_ASSIGN(workload_,
                              BuildEvalWorkload(&db_, options));
    reporter_ = std::make_unique<RecencyReporter>(&db_, nullptr);
  }

  Database db_;
  EvalWorkload workload_;
  std::unique_ptr<RecencyReporter> reporter_;
};

TEST_F(ParallelRelevanceWorkloadTest, FocusedMatchesSerialOnAllQueries) {
  for (const auto& [name, sql] : workload_.AllQueries()) {
    SCOPED_TRACE(name);
    TRAC_ASSERT_OK_AND_ASSIGN(
        RecencyReport serial,
        reporter_->Run(sql, OptionsWith(RecencyMethod::kFocused, 1)));
    EXPECT_FALSE(serial.relevance.sources.empty()) << name;
    for (size_t parallelism : {2, 4, 8}) {
      TRAC_ASSERT_OK_AND_ASSIGN(
          RecencyReport parallel,
          reporter_->Run(sql,
                         OptionsWith(RecencyMethod::kFocused, parallelism)));
      ExpectSameReport(serial, parallel, parallelism);
    }
  }
}

TEST_F(ParallelRelevanceWorkloadTest, NaiveMatchesSerialOnAllQueries) {
  for (const auto& [name, sql] : workload_.AllQueries()) {
    SCOPED_TRACE(name);
    TRAC_ASSERT_OK_AND_ASSIGN(
        RecencyReport serial,
        reporter_->Run(sql, OptionsWith(RecencyMethod::kNaive, 1)));
    // Naive reports every source.
    EXPECT_EQ(serial.relevance.sources.size(), workload_.sources.size());
    for (size_t parallelism : {2, 4, 8}) {
      TRAC_ASSERT_OK_AND_ASSIGN(
          RecencyReport parallel,
          reporter_->Run(sql,
                         OptionsWith(RecencyMethod::kNaive, parallelism)));
      ExpectSameReport(serial, parallel, parallelism);
      // The pure Heartbeat scan is sharded: with 256 sources there is
      // real fan-out, not a single task.
      EXPECT_GT(parallel.relevance_task_micros.size(), 1u);
    }
  }
}

TEST_F(ParallelRelevanceWorkloadTest, CallerSuppliedPoolIsUsed) {
  ThreadPool pool(3);
  RecencyReportOptions options = OptionsWith(RecencyMethod::kFocused, 3);
  options.relevance.pool = &pool;
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport serial,
                            reporter_->Run(workload_.Q3(),
                                           OptionsWith(RecencyMethod::kFocused, 1)));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport parallel,
                            reporter_->Run(workload_.Q3(), options));
  ExpectSameReport(serial, parallel, 3);
}

TEST(ParallelRelevanceTest, PaperExampleIdenticalAtEveryParallelism) {
  PaperExampleDb env;
  RecencyReporter reporter(&env.db, nullptr);
  const std::string sql =
      "SELECT a.mach_id FROM activity a WHERE a.value = 'idle' OR "
      "a.mach_id = 'm2'";
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport serial,
      reporter.Run(sql, OptionsWith(RecencyMethod::kFocused, 1)));
  for (size_t parallelism : {2, 3, 4, 16}) {
    TRAC_ASSERT_OK_AND_ASSIGN(
        RecencyReport parallel,
        reporter.Run(sql, OptionsWith(RecencyMethod::kFocused, parallelism)));
    ExpectSameReport(serial, parallel, parallelism);
  }
}

TEST(ParallelRelevanceTest, ExecuteRecencyQueriesDirectEquivalence) {
  PaperExampleDb env;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery user,
      BindSql(env.db,
              "SELECT r.neighbor FROM routing r, activity a WHERE "
              "r.neighbor = a.mach_id AND a.value = 'idle'"));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyQueryPlan plan,
                            GenerateRecencyQueries(env.db, user));
  Snapshot snap = env.db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(std::vector<SourceRecency> serial,
                            ExecuteRecencyQueries(env.db, plan, snap));
  for (size_t parallelism : {2, 4}) {
    RelevanceOptions options;
    options.parallelism = parallelism;
    TRAC_ASSERT_OK_AND_ASSIGN(
        std::vector<SourceRecency> parallel,
        ExecuteRecencyQueries(env.db, plan, snap, options));
    EXPECT_EQ(serial, parallel) << "parallelism " << parallelism;
  }
}

}  // namespace
}  // namespace trac
