// Unit tests for the query-lifecycle tracer: ring-buffer eviction, span
// collection order, RAII/move semantics of TraceSpan, and the nested
// JSON rendering (including orphaned spans after partial eviction).

#include "telemetry/trace.h"

#include <atomic>
#include <string>

#include <gtest/gtest.h>

namespace trac {
namespace {

// Deterministic step clock: each call is 1000µs after the previous one.
std::atomic<int64_t> g_ticks{0};
int64_t StepClock() {
  return 1000 * (1 + g_ticks.fetch_add(1, std::memory_order_relaxed));
}

SpanRecord MakeSpan(uint64_t trace_id, uint64_t span_id, uint64_t parent_id,
                    std::string name, int64_t start, int64_t end) {
  SpanRecord s;
  s.trace_id = trace_id;
  s.span_id = span_id;
  s.parent_id = parent_id;
  s.name = std::move(name);
  s.start_micros = start;
  s.end_micros = end;
  return s;
}

TEST(TracerTest, RingEvictsOldest) {
  Tracer tracer(/*capacity=*/3);
  EXPECT_EQ(tracer.capacity(), 3u);
  for (uint64_t i = 1; i <= 5; ++i) {
    tracer.Record(MakeSpan(7, i, 0, "s" + std::to_string(i),
                           static_cast<int64_t>(i) * 10,
                           static_cast<int64_t>(i) * 10 + 1));
  }
  EXPECT_EQ(tracer.size(), 3u);
  auto spans = tracer.CollectTrace(7);
  ASSERT_EQ(spans.size(), 3u);
  // The two oldest spans were evicted.
  EXPECT_EQ(spans[0].name, "s3");
  EXPECT_EQ(spans[2].name, "s5");
}

TEST(TracerTest, CollectSortsByStartThenId) {
  Tracer tracer;
  tracer.Record(MakeSpan(1, 5, 0, "later", 200, 300));
  tracer.Record(MakeSpan(1, 9, 0, "tie_hi", 100, 150));
  tracer.Record(MakeSpan(1, 2, 0, "tie_lo", 100, 140));
  tracer.Record(MakeSpan(2, 3, 0, "other_trace", 50, 60));
  auto spans = tracer.CollectTrace(1);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "tie_lo");
  EXPECT_EQ(spans[1].name, "tie_hi");
  EXPECT_EQ(spans[2].name, "later");
}

TEST(TraceSpanTest, RaiiRecordsOnDestruction) {
  Tracer tracer;
  const uint64_t trace_id = tracer.NextTraceId();
  {
    TraceSpan span(&tracer, &StepClock, "work", trace_id);
    span.set_session_id(4);
    span.set_snapshot_epoch(9);
    span.set_relevant_sources(11);
  }
  auto spans = tracer.CollectTrace(trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_GT(spans[0].end_micros, spans[0].start_micros);
  EXPECT_EQ(spans[0].session_id, 4u);
  EXPECT_EQ(spans[0].snapshot_epoch, 9u);
  EXPECT_EQ(spans[0].relevant_sources, 11);
}

TEST(TraceSpanTest, EndIsIdempotentAndMoveTransfersOwnership) {
  Tracer tracer;
  const uint64_t trace_id = tracer.NextTraceId();
  TraceSpan a(&tracer, &StepClock, "moved", trace_id);
  TraceSpan b = std::move(a);
  a.End();  // Moved-from span is inert: no double record.
  b.End();
  b.End();  // Idempotent.
  EXPECT_EQ(tracer.CollectTrace(trace_id).size(), 1u);

  TraceSpan inert;  // Default-constructed: records nothing.
  inert.End();
  EXPECT_EQ(tracer.CollectTrace(trace_id).size(), 1u);
}

TEST(TracerTest, DumpTraceJsonNestsChildren) {
  Tracer tracer;
  tracer.Record(MakeSpan(3, 1, 0, "report", 100, 900));
  tracer.Record(MakeSpan(3, 2, 1, "parse", 110, 200));
  tracer.Record(MakeSpan(3, 3, 1, "relevance", 210, 800));
  tracer.Record(MakeSpan(3, 4, 3, "relevance-task", 220, 500));
  const std::string json = tracer.DumpTraceJson(3);
  EXPECT_NE(json.find("\"trace_id\": 3"), std::string::npos);
  // Nesting: the task appears after (inside) relevance's children array.
  const size_t relevance = json.find("\"relevance\"");
  const size_t task = json.find("\"relevance-task\"");
  ASSERT_NE(relevance, std::string::npos);
  ASSERT_NE(task, std::string::npos);
  EXPECT_LT(relevance, task);
  EXPECT_NE(json.find("\"duration_micros\": 800"), std::string::npos);
}

TEST(TracerTest, OrphanedSpanRendersAsRoot) {
  // Capacity 1: recording the child evicts the parent; the dump must
  // still render the child instead of dropping the whole trace.
  Tracer tracer(/*capacity=*/1);
  tracer.Record(MakeSpan(4, 1, 0, "parent", 10, 100));
  tracer.Record(MakeSpan(4, 2, 1, "child", 20, 30));
  const std::string json = tracer.DumpTraceJson(4);
  EXPECT_EQ(json.find("\"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"child\""), std::string::npos);
}

}  // namespace
}  // namespace trac
