// Telemetry-under-fault-injection: drives a flap-and-recover plus
// backlog-storm scenario and checks that every published gauge and
// counter — per-source staleness, sniffer backlog/lag, poll and shipped
// totals — matches the simulator's ground truth at every step, via the
// same oracle the property suite uses. Also pins the concrete dashboard
// story: staleness stretches while a source flaps down, the storm
// source's backlog piles up, and both recover.

#include <atomic>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "../monitor/oracles.h"
#include "../test_util.h"
#include "core/recency_reporter.h"
#include "monitor/scenario.h"
#include "telemetry/telemetry.h"

namespace trac {
namespace {

using oracle::OracleOutcome;

std::atomic<int64_t> g_ticks{0};
int64_t StepClock() {
  return 1000 * (1 + g_ticks.fetch_add(1, std::memory_order_relaxed));
}

int64_t GaugeValue(MetricRegistry& registry, const std::string& name,
                   const std::string& source) {
  for (const GaugeSample& sample : registry.GaugeSamples()) {
    if (sample.name != name) continue;
    for (const auto& [k, v] : sample.labels) {
      if (k == "source" && v == source) return sample.value;
    }
    if (source.empty() && sample.labels.empty()) return sample.value;
  }
  ADD_FAILURE() << "no gauge " << name << "{source=" << source << "}";
  return -1;
}

class FaultTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    script_.seed = 31337;
    script_.num_sources = 6;
    script_.num_racks = 2;
    script_.step_micros = 5 * Timestamp::kMicrosPerSecond;
    script_.duration_micros = 20 * script_.step_micros;  // 100s
    script_.poll_micros = 5 * Timestamp::kMicrosPerSecond;
    script_.ship_delay_micros = 0;
    script_.heartbeat_micros = 10 * Timestamp::kMicrosPerSecond;
    script_.event_rate = 1.0;
    script_.focus = 3;

    FaultSpec flap;
    flap.kind = FaultSpec::Kind::kFlap;
    flap.start_micros = 10 * Timestamp::kMicrosPerSecond;
    flap.duration_micros = 50 * Timestamp::kMicrosPerSecond;
    flap.period_micros = 20 * Timestamp::kMicrosPerSecond;
    flap.duty = 0.5;
    flap.sources = {0, 1};
    script_.faults.push_back(flap);

    FaultSpec storm;
    storm.kind = FaultSpec::Kind::kStorm;
    storm.start_micros = 20 * Timestamp::kMicrosPerSecond;
    storm.duration_micros = 40 * Timestamp::kMicrosPerSecond;
    storm.delay_micros = 30 * Timestamp::kMicrosPerSecond;
    storm.sources = {2};
    script_.faults.push_back(storm);

    ScenarioRunnerOptions options;
    options.metrics = &metrics_;
    auto runner = ScenarioRunner::Create(&db_, script_, options);
    ASSERT_TRUE(runner.ok()) << runner.status().ToString();
    runner_ = std::move(*runner);
  }

  /// Steps to simulated second `target` (absolute, relative to start).
  void StepTo(int64_t target_seconds) {
    const Timestamp target =
        runner_->start() + target_seconds * Timestamp::kMicrosPerSecond;
    while (!runner_->done() && runner_->now() < target) {
      TRAC_ASSERT_OK(runner_->Step());
      const OracleOutcome telemetry =
          oracle::CheckTelemetry(*runner_, metrics_);
      ASSERT_TRUE(telemetry.ok())
          << "at " << runner_->now().ToString() << ": "
          << telemetry.Summary();
    }
  }

  ScenarioScript script_;
  Database db_;
  MetricRegistry metrics_;
  std::unique_ptr<ScenarioRunner> runner_;
};

TEST_F(FaultTelemetryTest, GaugesMatchOracleTruthThroughFlapAndRecover) {
  // Down phases of the flap (relative seconds): [20,30) and [40,50).
  StepTo(25);
  EXPECT_TRUE(runner_->grid().sniffer("src0000")->paused());
  EXPECT_TRUE(runner_->grid().sniffer("src0001")->paused());
  EXPECT_FALSE(runner_->grid().sniffer("src0003")->paused());

  StepTo(30);
  // 10s into the down phase the DB's view of the flapped source has
  // gone stale by at least the phase length.
  EXPECT_GE(GaugeValue(metrics_, "trac_source_staleness_micros", "src0000"),
            5 * Timestamp::kMicrosPerSecond);

  StepTo(45);
  // The storm source keeps polling but nothing is ship-eligible under a
  // 30s transport delay, so its backlog piles up...
  EXPECT_GE(GaugeValue(metrics_, "trac_sniffer_backlog_records", "src0002"),
            2);

  StepTo(55);
  // ...and once polls inside the storm window start shipping under the
  // 30s delay (t >= 50s: events stamped t-30 become eligible), the lag
  // gauge stretches past the added delay — nothing newer than
  // last_poll - 30s can have shipped.
  EXPECT_GE(GaugeValue(metrics_, "trac_sniffer_lag_micros", "src0002"),
            30 * Timestamp::kMicrosPerSecond);

  StepTo(100);
  ASSERT_TRUE(runner_->done());
  // Everyone recovered: the flap window closed at 60s, the storm at
  // 60s. After 40s of clean polling no source's staleness exceeds a
  // few cadences (heartbeat 10s + poll 5s + emission jitter).
  for (const std::string& id : runner_->source_ids()) {
    EXPECT_LE(GaugeValue(metrics_, "trac_source_staleness_micros", id),
              20 * Timestamp::kMicrosPerSecond)
        << id << " never caught back up";
  }
  EXPECT_LE(GaugeValue(metrics_, "trac_sniffer_backlog_records", "src0002"),
            2);
  EXPECT_EQ(GaugeValue(metrics_, "trac_monitor_sources", ""), 6);
}

TEST_F(FaultTelemetryTest, ReportTelemetryStaysSoundUnderFaults) {
  StepTo(45);  // Mid-flap, mid-storm: the hostile case.

  Tracer tracer;
  Telemetry telemetry{&metrics_, &tracer, &StepClock};
  RecencyReportOptions options;
  options.create_temp_tables = false;
  options.telemetry = &telemetry;
  options.relevance.parallelism = 2;
  RecencyReporter reporter(runner_->db(), nullptr);
  auto report = reporter.Run(runner_->FocusedSql(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  OracleOutcome outcome =
      oracle::CheckReport(*runner_, *report, runner_->focused_ids());
  outcome.Merge(oracle::CheckTrace(tracer, *report));
  outcome.Merge(oracle::CheckTelemetry(*runner_, metrics_));
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
  EXPECT_GT(outcome.checks, 20u);
}

}  // namespace
}  // namespace trac
