#include "telemetry/profile.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "exec/executor.h"
#include "expr/binder.h"
#include "ir/plan_ir.h"
#include "telemetry/telemetry.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

std::atomic<int64_t> g_ticks{0};
int64_t FakeNowMicros() { return g_ticks.fetch_add(1000) + 1000; }

PlanIr MustParse(std::string_view text) {
  auto ir = ParsePlanIr(text);
  EXPECT_TRUE(ir.ok()) << ir.status().ToString();
  return ir.ok() ? std::move(*ir) : PlanIr{};
}

// ---------------------------------------------------------------------------
// The executor-side collector.

TEST(ExecProfileTest, CollectsRowsAndStageStructure) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery query,
      BindSql(fixture.db,
              "SELECT mach_id FROM Activity WHERE value = 'idle'"));
  ExecProfile profile;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteQuery(fixture.db, query, fixture.db.LatestSnapshot(),
                   PlanningHints(), &profile, &FakeNowMicros));
  EXPECT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(profile.invocations, 1u);
  EXPECT_EQ(profile.output_rows, 2u);
  EXPECT_EQ(profile.emitted_rows, 2u);
  ASSERT_EQ(profile.levels.size(), 1u);
  EXPECT_EQ(profile.levels[0].scan_rows, 3u);  // All three activity rows.
  ASSERT_TRUE(profile.levels[0].has_filter);
  EXPECT_EQ(profile.levels[0].filter_rows, 2u);  // m1/m3 idle survive.
  EXPECT_GT(profile.total_ns, 0);
}

TEST(ExecProfileTest, NoClockMeansNoTimings) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery query, BindSql(fixture.db, "SELECT mach_id FROM Activity"));
  ExecProfile profile;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs, ExecuteQuery(fixture.db, query, fixture.db.LatestSnapshot(),
                                 PlanningHints(), &profile, nullptr));
  EXPECT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(profile.output_rows, 3u);
  EXPECT_EQ(profile.total_ns, 0);
}

// ---------------------------------------------------------------------------
// The drift pass over hand-written profiled IRs.

TEST(ProfileDriftTest, UnannotatedIrYieldsNoFindings) {
  const PlanIr ir = MustParse(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=100 cols=a.mach_id:d\n"
      "node 1 report in=0 cols=a.mach_id:d\n");
  EXPECT_TRUE(AnalyzeProfileDrift(ir).empty());
}

TEST(ProfileDriftTest, ActualAboveScanUpperBoundIsP001) {
  // rows= on a scan is the published-version count, a sound upper bound;
  // observing more rows than exist is a profiler/analysis bug.
  const PlanIr ir = MustParse(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=100 actual_rows=250 "
      "cols=a.mach_id:d\n"
      "node 1 report in=0 actual_rows=250 cols=a.mach_id:d\n");
  const std::vector<ProfileDiagnostic> drift = AnalyzeProfileDrift(ir);
  ASSERT_FALSE(drift.empty());
  EXPECT_EQ(drift[0].code, ProfileCode::kActualOutsideStaticBounds);
  EXPECT_EQ(drift[0].node, 0u);
  EXPECT_EQ(drift[0].Format().substr(0, 11), "[TRAC-P001]");
}

TEST(ProfileDriftTest, MisestimateIsAdvisoryP002Only) {
  // 4096 estimated vs 16 observed = 256x overshoot: P002 fires, but the
  // actual sits inside the sound interval [0, 4096] so no P001.
  const PlanIr ir = MustParse(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=4096 actual_rows=16 "
      "cols=a.mach_id:d\n"
      "node 1 report in=0 actual_rows=16 cols=a.mach_id:d\n");
  const std::vector<ProfileDiagnostic> drift = AnalyzeProfileDrift(ir);
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_EQ(drift[0].code, ProfileCode::kMisestimate);
  EXPECT_EQ(drift[0].node, 0u);
  EXPECT_EQ(drift[0].Format().substr(0, 11), "[TRAC-P002]");
}

TEST(ProfileDriftTest, MisestimateFactorIsConfigurable) {
  const PlanIr ir = MustParse(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=64 actual_rows=16 "
      "cols=a.mach_id:d\n"
      "node 1 report in=0 actual_rows=16 cols=a.mach_id:d\n");
  // 4x overshoot: silent at the default factor 16, flagged at 4.
  EXPECT_TRUE(AnalyzeProfileDrift(ir).empty());
  ProfileDriftOptions strict;
  strict.misestimate_factor = 4;
  const std::vector<ProfileDiagnostic> drift = AnalyzeProfileDrift(ir, strict);
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_EQ(drift[0].code, ProfileCode::kMisestimate);
}

TEST(ProfileDriftTest, FindingsAreCanonicallyOrdered) {
  // Two scans, each both out of bounds (P001) and trivially consistent
  // with no estimate elsewhere; ordering must be (node, code).
  const PlanIr ir = MustParse(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=10 actual_rows=50 "
      "cols=a.mach_id:d\n"
      "node 1 scan table=routing snap=5 rows=10 actual_rows=90 "
      "cols=r.mach_id:d\n"
      "node 2 join in=0,1 actual_rows=1 cols=a.mach_id:d\n"
      "node 3 report in=2 actual_rows=1 cols=a.mach_id:d\n");
  const std::vector<ProfileDiagnostic> drift = AnalyzeProfileDrift(ir);
  ASSERT_GE(drift.size(), 2u);
  for (size_t i = 1; i < drift.size(); ++i) {
    const bool ordered =
        drift[i - 1].node < drift[i].node ||
        (drift[i - 1].node == drift[i].node &&
         static_cast<int>(drift[i - 1].code) < static_cast<int>(drift[i].code));
    EXPECT_TRUE(ordered) << i;
  }
}

TEST(ProfileCodeTest, IdsMatchTheDesignDocNamespace) {
  EXPECT_EQ(ProfileCodeId(ProfileCode::kActualOutsideStaticBounds),
            "TRAC-P001");
  EXPECT_EQ(ProfileCodeId(ProfileCode::kMisestimate), "TRAC-P002");
}

// ---------------------------------------------------------------------------
// The flight recorder ring.

SessionProfileRecord Rec(uint64_t trace_id) {
  SessionProfileRecord rec;
  rec.trace_id = trace_id;
  rec.profiled_ir = "ir t\n";
  rec.annotated_nodes = 1;
  return rec;
}

TEST(FlightRecorderTest, RetainsNewestKOldestFirst) {
  FlightRecorder recorder(3);
  for (uint64_t i = 1; i <= 5; ++i) recorder.Record(Rec(i));
  EXPECT_EQ(recorder.total_recorded(), 5u);
  const std::vector<SessionProfileRecord> entries = recorder.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].trace_id, 3u);
  EXPECT_EQ(entries[1].trace_id, 4u);
  EXPECT_EQ(entries[2].trace_id, 5u);
}

TEST(FlightRecorderTest, ZeroCapacityClampsToOne) {
  FlightRecorder recorder(0);
  EXPECT_EQ(recorder.capacity(), 1u);
  recorder.Record(Rec(1));
  recorder.Record(Rec(2));
  ASSERT_EQ(recorder.Entries().size(), 1u);
  EXPECT_EQ(recorder.Entries()[0].trace_id, 2u);
  EXPECT_EQ(recorder.total_recorded(), 2u);
}

TEST(FlightRecorderTest, ResolvePrefersTheInjectedRecorder) {
  FlightRecorder mine(2);
  Telemetry telemetry;
  EXPECT_EQ(&ResolveFlightRecorder(telemetry), &FlightRecorder::Default());
  telemetry.recorder = &mine;
  EXPECT_EQ(&ResolveFlightRecorder(telemetry), &mine);
}

// ---------------------------------------------------------------------------
// Attach through the real lowering: a full report session on the paper
// fixture ends up annotated, drift-checked, and recorded.

TEST(SessionProfileTest, ReportSessionAttachesAndRecords) {
  PaperExampleDb fixture;
  RecencyReporter reporter(&fixture.db, nullptr);
  MetricRegistry metrics;
  Tracer tracer;
  FlightRecorder recorder(2);
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  telemetry.tracer = &tracer;
  telemetry.clock = &FakeNowMicros;
  telemetry.recorder = &recorder;
  RecencyReportOptions options;
  options.create_temp_tables = false;
  options.telemetry = &telemetry;
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id FROM Activity WHERE value = 'idle'",
                   options));
  EXPECT_GE(report.profiled_nodes, 3u);  // At least user scan, merge, report.
  auto parsed = ParsePlanIr(report.profiled_ir);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), report.profiled_ir);
  for (const ProfileDiagnostic& d : report.profile_drift) {
    EXPECT_NE(d.code, ProfileCode::kActualOutsideStaticBounds) << d.Format();
  }

  ASSERT_EQ(recorder.total_recorded(), 1u);
  const std::vector<SessionProfileRecord> entries = recorder.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].profiled_ir, report.profiled_ir);
  EXPECT_EQ(entries[0].annotated_nodes, report.profiled_nodes);
  EXPECT_EQ(entries[0].trace_id, report.trace_id);
  EXPECT_EQ(entries[0].p001_count, 0u);

  // Profiling off: nothing attaches, nothing records.
  options.profile = false;
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport bare,
      reporter.Run("SELECT mach_id FROM Activity WHERE value = 'idle'",
                   options));
  EXPECT_TRUE(bare.profiled_ir.empty());
  EXPECT_EQ(bare.profiled_nodes, 0u);
  EXPECT_EQ(recorder.total_recorded(), 1u);
}

}  // namespace
}  // namespace trac
