// Unit tests for the metrics registry: counter/gauge/histogram
// semantics, label normalization, the type-mismatch sink, and the two
// scrape formats (Prometheus text exposition and JSON).

#include "telemetry/metrics.h"

#include <string>

#include <gtest/gtest.h>

namespace trac {
namespace {

TEST(CounterTest, IncrementAndAdd) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Increment();
  c.Add(40);
  EXPECT_EQ(c.Value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 4);
  g.Set(100);  // Last write wins over accumulated adds.
  EXPECT_EQ(g.Value(), 100);
}

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket i holds values in (2^(i-1), 2^i]; non-positive values land
  // in bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(-5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  const int64_t last = Histogram::BucketUpperBound(
      Histogram::kNumFiniteBuckets - 1);  // 2^26.
  EXPECT_EQ(Histogram::BucketIndex(last), Histogram::kNumFiniteBuckets - 1);
  // One past the largest finite bound overflows into +Inf.
  EXPECT_EQ(Histogram::BucketIndex(last + 1), Histogram::kNumFiniteBuckets);
}

TEST(HistogramTest, ObserveAggregates) {
  Histogram h;
  h.Observe(1);
  h.Observe(2);
  h.Observe(1000);
  EXPECT_EQ(h.Count(), 3);
  EXPECT_EQ(h.Sum(), 1003);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(1000)), 1);
  int64_t total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i)
    total += h.BucketCount(i);
  EXPECT_EQ(total, h.Count());
}

TEST(MetricRegistryTest, SameSeriesSamePointer) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("requests_total", "help");
  Counter* b = reg.GetCounter("requests_total", "help");
  EXPECT_EQ(a, b);
  // Label order is normalized: {a,b} and {b,a} name the same series.
  Counter* l1 = reg.GetCounter("labeled_total", "help",
                               {{"a", "1"}, {"b", "2"}});
  Counter* l2 = reg.GetCounter("labeled_total", "help",
                               {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(l1, l2);
  // Different label values are different series.
  Counter* l3 = reg.GetCounter("labeled_total", "help",
                               {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(l1, l3);
}

TEST(MetricRegistryTest, TypeMismatchReturnsSink) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("mixed", "help");
  c->Increment();
  // The name is already a counter family; asking for a gauge must not
  // abort, must not alias the counter, and must not pollute the scrape.
  Gauge* sink = reg.GetGauge("mixed", "help");
  ASSERT_NE(sink, nullptr);
  sink->Set(999);
  EXPECT_EQ(c->Value(), 1);
  const std::string text = reg.ScrapeText();
  EXPECT_NE(text.find("mixed 1\n"), std::string::npos);
  EXPECT_EQ(text.find("999"), std::string::npos);
}

TEST(MetricRegistryTest, ScrapeTextExposition) {
  MetricRegistry reg;
  reg.GetCounter("trac_reports_total", "Reports produced")->Add(3);
  reg.GetGauge("trac_tables", "Live tables")->Set(5);
  Histogram* h = reg.GetHistogram("trac_latency_micros", "Latency",
                                  {{"phase", "stats"}});
  h->Observe(1);
  h->Observe(3);

  const std::string text = reg.ScrapeText();
  EXPECT_NE(text.find("# HELP trac_reports_total Reports produced"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE trac_reports_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("trac_reports_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE trac_tables gauge"), std::string::npos);
  EXPECT_NE(text.find("trac_tables 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE trac_latency_micros histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" sees one observation, le="4" both, and
  // +Inf equals _count.
  EXPECT_NE(text.find("trac_latency_micros_bucket{phase=\"stats\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("trac_latency_micros_bucket{phase=\"stats\",le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("trac_latency_micros_bucket{phase=\"stats\",le=\"+Inf\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("trac_latency_micros_sum{phase=\"stats\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("trac_latency_micros_count{phase=\"stats\"} 2"),
            std::string::npos);
}

TEST(MetricRegistryTest, ScrapeJsonShape) {
  MetricRegistry reg;
  reg.GetCounter("hits_total", "Hits", {{"kind", "a\"b"}})->Increment();
  const std::string json = reg.ScrapeJson();
  EXPECT_NE(json.find("\"hits_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  // The label value's quote is escaped.
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
}

TEST(MetricRegistryTest, GaugeSamplesListsOnlyGauges) {
  MetricRegistry reg;
  reg.GetCounter("not_a_gauge_total", "c")->Increment();
  reg.GetGauge("staleness", "g", {{"source", "m1"}})->Set(10);
  reg.GetGauge("staleness", "g", {{"source", "m2"}})->Set(20);
  auto samples = reg.GaugeSamples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "staleness");
  ASSERT_EQ(samples[0].labels.size(), 1u);
  EXPECT_EQ(samples[0].labels[0].second, "m1");
  EXPECT_EQ(samples[0].value, 10);
  EXPECT_EQ(samples[1].value, 20);
}

}  // namespace
}  // namespace trac
