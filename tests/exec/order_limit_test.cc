#include <gtest/gtest.h>

#include "../test_util.h"
#include "exec/statement.h"
#include "sql/parser.h"

namespace trac {
namespace {

class OrderLimitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = ExecuteStatement(&db_, "CREATE TABLE t (k TEXT, v INT)");
    ASSERT_TRUE(s.ok()) << s.status();
    s = ExecuteStatement(&db_,
                         "INSERT INTO t VALUES ('c', 3), ('a', 1), "
                         "('b', 2), ('a', 4), ('d', NULL)");
    ASSERT_TRUE(s.ok()) << s.status();
  }

  ResultSet Select(const std::string& sql) {
    auto rs = ExecuteSql(db_, sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    return rs.ok() ? std::move(*rs) : ResultSet{};
  }

  Database db_;
};

TEST_F(OrderLimitTest, OrderByAscending) {
  ResultSet rs = Select("SELECT k FROM t WHERE v IS NOT NULL ORDER BY v");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("a"));  // v=1.
  EXPECT_EQ(rs.rows[1][0], Value::Str("b"));  // v=2.
  EXPECT_EQ(rs.rows[2][0], Value::Str("c"));  // v=3.
  EXPECT_EQ(rs.rows[3][0], Value::Str("a"));  // v=4.
}

TEST_F(OrderLimitTest, OrderByDescending) {
  ResultSet rs = Select("SELECT v FROM t WHERE v IS NOT NULL ORDER BY v DESC");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(4));
  EXPECT_EQ(rs.rows[3][0], Value::Int(1));
}

TEST_F(OrderLimitTest, OrderByMultipleKeys) {
  ResultSet rs = Select("SELECT k, v FROM t WHERE v IS NOT NULL "
                        "ORDER BY k ASC, v DESC");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.rows[0], (Row{Value::Str("a"), Value::Int(4)}));
  EXPECT_EQ(rs.rows[1], (Row{Value::Str("a"), Value::Int(1)}));
  EXPECT_EQ(rs.rows[2], (Row{Value::Str("b"), Value::Int(2)}));
  EXPECT_EQ(rs.rows[3], (Row{Value::Str("c"), Value::Int(3)}));
}

TEST_F(OrderLimitTest, NullsSortFirst) {
  ResultSet rs = Select("SELECT k FROM t ORDER BY v");
  ASSERT_EQ(rs.num_rows(), 5u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("d"));  // NULL first.
}

TEST_F(OrderLimitTest, OrderByNonProjectedColumn) {
  // The sort key need not appear in the select list.
  ResultSet rs = Select("SELECT k FROM t WHERE v IS NOT NULL ORDER BY v DESC");
  EXPECT_EQ(rs.rows[0][0], Value::Str("a"));  // v=4 row.
}

TEST_F(OrderLimitTest, LimitWithoutOrder) {
  ResultSet rs = Select("SELECT k FROM t LIMIT 2");
  EXPECT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(Select("SELECT k FROM t LIMIT 100").num_rows(), 5u);
}

TEST_F(OrderLimitTest, LimitAfterOrder) {
  ResultSet rs = Select("SELECT v FROM t WHERE v IS NOT NULL "
                        "ORDER BY v DESC LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(4));
  EXPECT_EQ(rs.rows[1][0], Value::Int(3));
}

TEST_F(OrderLimitTest, LimitDoesNotTruncateCountStar) {
  ResultSet rs = Select("SELECT COUNT(*) FROM t LIMIT 1");
  EXPECT_EQ(rs.count(), 5);
}

TEST_F(OrderLimitTest, OrderWithDistinct) {
  ResultSet rs = Select("SELECT DISTINCT k FROM t ORDER BY k DESC");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("d"));
  EXPECT_EQ(rs.rows[3][0], Value::Str("a"));
}

TEST_F(OrderLimitTest, OrderByOverJoin) {
  auto s = ExecuteStatement(&db_, "CREATE TABLE u (k TEXT, w INT)");
  ASSERT_TRUE(s.ok());
  s = ExecuteStatement(&db_, "INSERT INTO u VALUES ('a', 10), ('b', 20)");
  ASSERT_TRUE(s.ok());
  ResultSet rs = Select(
      "SELECT t.v, u.w FROM t, u WHERE t.k = u.k AND t.v IS NOT NULL "
      "ORDER BY u.w DESC, t.v ASC");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0], (Row{Value::Int(2), Value::Int(20)}));
  EXPECT_EQ(rs.rows[1], (Row{Value::Int(1), Value::Int(10)}));
  EXPECT_EQ(rs.rows[2], (Row{Value::Int(4), Value::Int(10)}));
}

TEST_F(OrderLimitTest, GrammarRejections) {
  EXPECT_FALSE(ExecuteSql(db_, "SELECT k FROM t ORDER BY").ok());
  EXPECT_FALSE(ExecuteSql(db_, "SELECT k FROM t ORDER v").ok());
  EXPECT_FALSE(ExecuteSql(db_, "SELECT k FROM t LIMIT").ok());
  EXPECT_FALSE(ExecuteSql(db_, "SELECT k FROM t LIMIT 'x'").ok());
  EXPECT_FALSE(ExecuteSql(db_, "SELECT k FROM t ORDER BY zz").ok());
  EXPECT_FALSE(ExecuteSql(db_, "SELECT COUNT(*) FROM t ORDER BY k").ok());
}

TEST_F(OrderLimitTest, ToSqlRoundTripsOrderAndLimit) {
  auto stmt = ParseSelect("SELECT k FROM t ORDER BY v DESC, k LIMIT 3");
  ASSERT_TRUE(stmt.ok());
  auto reparsed = ParseSelect(stmt->ToSql());
  ASSERT_TRUE(reparsed.ok()) << stmt->ToSql();
  EXPECT_EQ(stmt->ToSql(), reparsed->ToSql());
}

}  // namespace
}  // namespace trac
