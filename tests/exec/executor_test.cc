#include "exec/executor.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;
using testing_util::Ts;

TEST(ExecutorTest, SingleTableFilter) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db,
                 "SELECT mach_id FROM Activity WHERE value = 'idle'"));
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_TRUE(rs.Contains({Value::Str("m1")}));
  EXPECT_TRUE(rs.Contains({Value::Str("m3")}));
}

TEST(ExecutorTest, PaperQ1InList) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db,
                 "SELECT mach_id FROM Activity "
                 "WHERE mach_id IN ('m1', 'm2') AND value = 'idle'"));
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_TRUE(rs.Contains({Value::Str("m1")}));
}

TEST(ExecutorTest, PaperQ2Join) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db,
                 "SELECT A.mach_id FROM Routing R, Activity A "
                 "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
                 "AND R.neighbor = A.mach_id"));
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_TRUE(rs.Contains({Value::Str("m3")}));
}

TEST(ExecutorTest, CountStar) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet rs,
                            ExecuteSql(fixture.db,
                                       "SELECT COUNT(*) FROM activity"));
  EXPECT_EQ(rs.count(), 3);
}

TEST(ExecutorTest, CountWithPredicate) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs, ExecuteSql(fixture.db,
                               "SELECT COUNT(*) FROM activity WHERE value = "
                               "'busy'"));
  EXPECT_EQ(rs.count(), 1);
}

TEST(ExecutorTest, CrossProductWithoutJoinPredicate) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db, "SELECT COUNT(*) FROM routing, activity"));
  EXPECT_EQ(rs.count(), 6);  // 2 x 3.
}

TEST(ExecutorTest, SelectStarExpandsAllColumns) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet rs,
                            ExecuteSql(fixture.db, "SELECT * FROM routing"));
  EXPECT_EQ(rs.column_names.size(), 3u);
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST(ExecutorTest, DistinctDeduplicates) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db, "SELECT DISTINCT neighbor FROM routing"));
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_TRUE(rs.Contains({Value::Str("m3")}));
}

TEST(ExecutorTest, OrPredicates) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db,
                 "SELECT mach_id FROM activity WHERE mach_id = 'm1' OR "
                 "value = 'busy'"));
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST(ExecutorTest, TimestampComparison) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db,
                 "SELECT mach_id FROM activity WHERE event_time > "
                 "TIMESTAMP '2006-03-01 00:00:00'"));
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST(ExecutorTest, StringLiteralCoercesToTimestamp) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db,
                 "SELECT mach_id FROM activity WHERE event_time > "
                 "'2006-03-01 00:00:00'"));
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST(ExecutorTest, WhereFalseConstant) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(fixture.db, "SELECT COUNT(*) FROM activity WHERE FALSE"));
  EXPECT_EQ(rs.count(), 0);
}

TEST(ExecutorTest, NullComparisonsNeverMatch) {
  Database db;
  TableSchema schema("t", {ColumnDef("a", TypeId::kInt64),
                           ColumnDef("b", TypeId::kString)});
  TRAC_ASSERT_OK(db.CreateTable(std::move(schema)).status());
  TRAC_ASSERT_OK(db.Insert("t", {Value::Int(1), Value::Null()}));
  TRAC_ASSERT_OK(db.Insert("t", {Value::Null(), Value::Str("x")}));

  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet eq, ExecuteSql(db, "SELECT COUNT(*) FROM t WHERE b = 'x'"));
  EXPECT_EQ(eq.count(), 1);
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet ne, ExecuteSql(db, "SELECT COUNT(*) FROM t WHERE b <> 'x'"));
  EXPECT_EQ(ne.count(), 0);  // NULL <> 'x' is Unknown, not TRUE.
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet isnull,
      ExecuteSql(db, "SELECT COUNT(*) FROM t WHERE b IS NULL"));
  EXPECT_EQ(isnull.count(), 1);
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet notin,
      ExecuteSql(db, "SELECT COUNT(*) FROM t WHERE a NOT IN (2, 3)"));
  EXPECT_EQ(notin.count(), 1);  // The NULL row drops out.
}

TEST(ExecutorTest, SnapshotIsolation) {
  PaperExampleDb fixture;
  Snapshot before = fixture.db.LatestSnapshot();
  TRAC_ASSERT_OK(fixture.db.Insert(
      "activity", {Value::Str("m4"), Value::Str("idle"),
                   Value::Ts(Ts("2006-03-12 10:23:05"))}));
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q, BindSql(fixture.db, "SELECT COUNT(*) FROM activity"));
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet old_rs,
                            ExecuteQuery(fixture.db, q, before));
  EXPECT_EQ(old_rs.count(), 3);
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet new_rs,
      ExecuteQuery(fixture.db, q, fixture.db.LatestSnapshot()));
  EXPECT_EQ(new_rs.count(), 4);
}

TEST(ExecutorTest, UnknownTableFails) {
  PaperExampleDb fixture;
  EXPECT_FALSE(ExecuteSql(fixture.db, "SELECT x FROM nope").ok());
}

TEST(ExecutorTest, UnknownColumnFails) {
  PaperExampleDb fixture;
  EXPECT_FALSE(ExecuteSql(fixture.db, "SELECT zzz FROM activity").ok());
}

TEST(ExecutorTest, AmbiguousColumnFails) {
  PaperExampleDb fixture;
  EXPECT_FALSE(
      ExecuteSql(fixture.db,
                 "SELECT mach_id FROM activity, routing").ok());
}

TEST(ExecutorTest, TypeMismatchFailsAtBind) {
  PaperExampleDb fixture;
  EXPECT_FALSE(
      ExecuteSql(fixture.db,
                 "SELECT mach_id FROM activity WHERE mach_id = 3").ok());
}

TEST(PlannerTest, UsesIndexForInListOnIndexedColumn) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT mach_id FROM activity WHERE mach_id IN ('m1','m2')"));
  TRAC_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, PlanQuery(fixture.db, q, fixture.db.LatestSnapshot()));
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_TRUE(plan.levels[0].use_local_index);
  EXPECT_EQ(plan.levels[0].index_keys.size(), 2u);
}

TEST(PlannerTest, SeqScanWithoutUsableIndex) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT mach_id FROM activity WHERE value = 'idle'"));
  TRAC_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, PlanQuery(fixture.db, q, fixture.db.LatestSnapshot()));
  EXPECT_FALSE(plan.levels[0].use_local_index);
}

TEST(PlannerTest, JoinOrderStartsWithSelectiveRelation) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q, BindSql(fixture.db,
                            "SELECT COUNT(*) FROM routing r, activity a "
                            "WHERE r.mach_id = 'm1' AND r.neighbor = "
                            "a.mach_id"));
  TRAC_ASSERT_OK_AND_ASSIGN(
      QueryPlan plan, PlanQuery(fixture.db, q, fixture.db.LatestSnapshot()));
  ASSERT_EQ(plan.levels.size(), 2u);
  EXPECT_EQ(plan.levels[0].relation, 0u);  // routing (selective, indexed)
  EXPECT_EQ(plan.levels[1].relation, 1u);  // activity joined second
  EXPECT_EQ(plan.levels[1].equi_keys.size(), 1u);
  EXPECT_TRUE(plan.levels[1].index_nested_loop);  // tiny prefix + index
  EXPECT_FALSE(plan.Explain(fixture.db, q).empty());
}

}  // namespace
}  // namespace trac
