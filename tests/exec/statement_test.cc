#include "exec/statement.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"

namespace trac {
namespace {

/// Convenience: execute and assert OK.
StatementResult Exec(Database* db, const std::string& sql) {
  auto r = ExecuteStatement(db, sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
  return r.ok() ? std::move(*r) : StatementResult{};
}

TEST(StatementTest, CreateInsertSelectRoundTrip) {
  Database db;
  StatementResult create = Exec(
      &db,
      "CREATE TABLE activity (mach_id TEXT DATA SOURCE, value TEXT, "
      "event_time TIMESTAMP)");
  EXPECT_EQ(create.kind, StatementResult::Kind::kDdl);
  EXPECT_EQ(create.message, "CREATE TABLE");

  // The DATA SOURCE marker designated the column.
  const TableSchema& schema = db.catalog().schema(*db.FindTable("activity"));
  EXPECT_EQ(schema.data_source_column(), 0u);
  EXPECT_EQ(schema.column(2).type, TypeId::kTimestamp);

  StatementResult insert = Exec(
      &db,
      "INSERT INTO activity VALUES "
      "('m1', 'idle', '2006-03-11 20:37:46'), "
      "('m2', 'busy', '2006-02-10 18:22:01')");
  EXPECT_EQ(insert.kind, StatementResult::Kind::kDml);
  EXPECT_EQ(insert.rows_affected, 2);

  StatementResult select =
      Exec(&db, "SELECT mach_id FROM activity WHERE value = 'idle'");
  EXPECT_EQ(select.kind, StatementResult::Kind::kSelect);
  ASSERT_EQ(select.result.num_rows(), 1u);
  EXPECT_TRUE(select.result.Contains({Value::Str("m1")}));
}

TEST(StatementTest, InsertWithColumnListAndNullDefaults) {
  Database db;
  Exec(&db, "CREATE TABLE t (a TEXT, b INT, c DOUBLE)");
  Exec(&db, "INSERT INTO t (b, a) VALUES (7, 'x')");
  StatementResult select = Exec(&db, "SELECT * FROM t");
  ASSERT_EQ(select.result.num_rows(), 1u);
  EXPECT_EQ(select.result.rows[0][0], Value::Str("x"));
  EXPECT_EQ(select.result.rows[0][1], Value::Int(7));
  EXPECT_TRUE(select.result.rows[0][2].is_null());
}

TEST(StatementTest, UpdateWithWhere) {
  Database db;
  Exec(&db, "CREATE TABLE t (k TEXT, v INT)");
  Exec(&db, "INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)");
  StatementResult update =
      Exec(&db, "UPDATE t SET v = 10 WHERE k <> 'b'");
  EXPECT_EQ(update.rows_affected, 2);
  StatementResult check = Exec(&db, "SELECT COUNT(*) FROM t WHERE v = 10");
  EXPECT_EQ(check.result.count(), 2);
  // Unconditional update touches everything.
  EXPECT_EQ(Exec(&db, "UPDATE t SET v = 0").rows_affected, 3);
}

TEST(StatementTest, DeleteWithAndWithoutWhere) {
  Database db;
  Exec(&db, "CREATE TABLE t (k TEXT, v INT)");
  Exec(&db, "INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)");
  EXPECT_EQ(Exec(&db, "DELETE FROM t WHERE v >= 2").rows_affected, 2);
  EXPECT_EQ(Exec(&db, "SELECT COUNT(*) FROM t").result.count(), 1);
  EXPECT_EQ(Exec(&db, "DELETE FROM t").rows_affected, 1);
  EXPECT_EQ(Exec(&db, "SELECT COUNT(*) FROM t").result.count(), 0);
}

TEST(StatementTest, CreateIndexAndDropTable) {
  Database db;
  Exec(&db, "CREATE TABLE t (k TEXT, v INT)");
  Exec(&db, "CREATE INDEX ON t (k)");
  EXPECT_NE(db.GetTable(*db.FindTable("t"))->GetIndex(0), nullptr);
  Exec(&db, "DROP TABLE t");
  EXPECT_FALSE(db.FindTable("t").ok());
}

TEST(StatementTest, CheckConstraintsEnforcedOnDml) {
  Database db;
  Exec(&db,
       "CREATE TABLE routing (mach_id TEXT DATA SOURCE, neighbor TEXT, "
       "CHECK (mach_id <> neighbor))");
  Exec(&db, "INSERT INTO routing VALUES ('m1', 'm2')");
  // Violating insert fails.
  auto bad = ExecuteStatement(&db, "INSERT INTO routing VALUES ('m3','m3')");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // Violating update fails and leaves the row unchanged.
  auto bad_update =
      ExecuteStatement(&db, "UPDATE routing SET neighbor = 'm1'");
  ASSERT_FALSE(bad_update.ok());
  EXPECT_EQ(Exec(&db, "SELECT COUNT(*) FROM routing WHERE neighbor = 'm2'")
                .result.count(),
            1);
}

TEST(StatementTest, CreateTableWithBadCheckFailsCleanly) {
  Database db;
  auto r = ExecuteStatement(
      &db, "CREATE TABLE t (a INT, CHECK (nosuchcol = 1))");
  ASSERT_FALSE(r.ok());
  // The half-created table was rolled back.
  EXPECT_FALSE(db.FindTable("t").ok());
}

TEST(StatementTest, TypeNamesAndCoercions) {
  Database db;
  Exec(&db,
       "CREATE TABLE t (a VARCHAR, b BIGINT, c REAL, d BOOLEAN, "
       "e TIMESTAMP)");
  Exec(&db,
       "INSERT INTO t VALUES ('x', 9, 1.5, TRUE, '2006-03-15 14:20:05')");
  // Int literal coerced into the double column.
  Exec(&db, "INSERT INTO t (c) VALUES (2)");
  StatementResult select = Exec(&db, "SELECT c FROM t WHERE c = 2.0");
  EXPECT_EQ(select.result.num_rows(), 1u);
}

TEST(StatementTest, ErrorsSurfaceCleanly) {
  Database db;
  Exec(&db, "CREATE TABLE t (a INT)");
  for (const char* bad : {
           "INSERT INTO nope VALUES (1)",
           "INSERT INTO t (zz) VALUES (1)",
           "INSERT INTO t VALUES (1, 2)",
           "UPDATE t SET zz = 1",
           "UPDATE nope SET a = 1",
           "DELETE FROM nope",
           "CREATE TABLE t (a INT)",  // Already exists.
           "CREATE TABLE t2 (a INT DATA SOURCE, b TEXT DATA SOURCE)",
           "CREATE INDEX ON t (zz)",
           "DROP TABLE nope",
           "UPDATE t SET a = 1 WHERE b = 2",  // No column b.
           "not sql at all",
       }) {
    EXPECT_FALSE(ExecuteStatement(&db, bad).ok()) << bad;
  }
}

TEST(StatementTest, FullTracWorkflowThroughSql) {
  // The complete user-facing loop, SQL only: DDL, heartbeat rows via
  // DML, then a recency report on a query.
  Database db;
  Exec(&db,
       "CREATE TABLE heartbeat (source_id TEXT, recency_timestamp "
       "TIMESTAMP)");
  Exec(&db, "CREATE INDEX ON heartbeat (source_id)");
  Exec(&db,
       "CREATE TABLE activity (mach_id TEXT DATA SOURCE, value TEXT)");
  Exec(&db, "CREATE INDEX ON activity (mach_id)");
  Exec(&db,
       "INSERT INTO heartbeat VALUES "
       "('m1', '2006-03-15 14:20:05'), ('m2', '2006-02-12 17:23:00'), "
       "('m3', '2006-03-15 14:40:05')");
  Exec(&db, "INSERT INTO activity VALUES ('m1', 'idle'), ('m3', 'idle')");

  Session session(&db);
  RecencyReporter reporter(&db, &session);
  auto report = reporter.Run(
      "SELECT mach_id FROM activity WHERE mach_id IN ('m1', 'm2') AND "
      "value = 'idle'");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->relevance.sources.size(), 2u);
  EXPECT_TRUE(report->relevance.minimal);
  // And the temp tables are reachable through the statement API too.
  StatementResult temp =
      Exec(&db, "SELECT * FROM " + report->normal_temp_table);
  EXPECT_EQ(temp.result.num_rows(), 2u);
}

}  // namespace
}  // namespace trac
