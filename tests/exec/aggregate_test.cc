#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "exec/statement.h"

namespace trac {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = ExecuteStatement(&db_, "CREATE TABLE t (k TEXT, v INT, d DOUBLE)");
    ASSERT_TRUE(s.ok()) << s.status();
    s = ExecuteStatement(&db_,
                         "INSERT INTO t VALUES "
                         "('a', 1, 0.5), ('b', 2, 1.5), ('c', 3, NULL), "
                         "('d', NULL, 2.0)");
    ASSERT_TRUE(s.ok()) << s.status();
  }

  Row One(const std::string& sql) {
    auto rs = ExecuteSql(db_, sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    EXPECT_EQ(rs->num_rows(), 1u) << sql;
    return rs.ok() && rs->num_rows() == 1 ? rs->rows[0] : Row{};
  }

  Database db_;
};

TEST_F(AggregateTest, CountVariants) {
  EXPECT_EQ(One("SELECT COUNT(*) FROM t")[0], Value::Int(4));
  EXPECT_EQ(One("SELECT COUNT(v) FROM t")[0], Value::Int(3));  // Skips NULL.
  EXPECT_EQ(One("SELECT COUNT(d) FROM t")[0], Value::Int(3));
}

TEST_F(AggregateTest, SumMinMaxAvg) {
  EXPECT_EQ(One("SELECT SUM(v) FROM t")[0], Value::Int(6));
  EXPECT_EQ(One("SELECT MIN(v) FROM t")[0], Value::Int(1));
  EXPECT_EQ(One("SELECT MAX(v) FROM t")[0], Value::Int(3));
  Row avg = One("SELECT AVG(v) FROM t");
  ASSERT_EQ(avg[0].type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(avg[0].double_val(), 2.0);
  Row dsum = One("SELECT SUM(d) FROM t");
  ASSERT_EQ(dsum[0].type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(dsum[0].double_val(), 4.0);
}

TEST_F(AggregateTest, MinMaxOnStringsAndTimestamps) {
  EXPECT_EQ(One("SELECT MIN(k) FROM t")[0], Value::Str("a"));
  EXPECT_EQ(One("SELECT MAX(k) FROM t")[0], Value::Str("d"));
  auto s = ExecuteStatement(&db_, "CREATE TABLE ts (e TIMESTAMP)");
  ASSERT_TRUE(s.ok());
  s = ExecuteStatement(&db_,
                       "INSERT INTO ts VALUES ('2006-03-15 14:20:05'), "
                       "('2006-03-15 14:40:05')");
  ASSERT_TRUE(s.ok());
  Row max = One("SELECT MAX(e) FROM ts");
  EXPECT_EQ(max[0].ts_val().ToString(), "2006-03-15 14:40:05");
}

TEST_F(AggregateTest, MultipleAggregatesInOneQuery) {
  Row row = One("SELECT COUNT(*), SUM(v), MIN(k), MAX(d), AVG(v) FROM t");
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[0], Value::Int(4));
  EXPECT_EQ(row[1], Value::Int(6));
  EXPECT_EQ(row[2], Value::Str("a"));
  EXPECT_EQ(row[3], Value::Double(2.0));
  EXPECT_DOUBLE_EQ(row[4].double_val(), 2.0);
}

TEST_F(AggregateTest, EmptyInputSemantics) {
  Row row = One(
      "SELECT COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v) FROM t "
      "WHERE k = 'zzz'");
  EXPECT_EQ(row[0], Value::Int(0));
  EXPECT_EQ(row[1], Value::Int(0));
  EXPECT_TRUE(row[2].is_null());
  EXPECT_TRUE(row[3].is_null());
  EXPECT_TRUE(row[4].is_null());
  EXPECT_TRUE(row[5].is_null());
}

TEST_F(AggregateTest, AggregatesWithPredicateAndJoin) {
  auto s = ExecuteStatement(&db_, "CREATE TABLE u (k TEXT, w INT)");
  ASSERT_TRUE(s.ok());
  s = ExecuteStatement(&db_, "INSERT INTO u VALUES ('a', 10), ('b', 20)");
  ASSERT_TRUE(s.ok());
  Row row = One(
      "SELECT SUM(u.w), COUNT(*) FROM t, u WHERE t.k = u.k AND t.v >= 1");
  EXPECT_EQ(row[0], Value::Int(30));
  EXPECT_EQ(row[1], Value::Int(2));
}

TEST_F(AggregateTest, ColumnNamesAndAliases) {
  auto rs = ExecuteSql(db_, "SELECT SUM(v) AS total, COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->column_names[0], "total");
  EXPECT_EQ(rs->column_names[1], "count");
  auto unaliased = ExecuteSql(db_, "SELECT SUM(v) FROM t");
  ASSERT_TRUE(unaliased.ok());
  EXPECT_EQ(unaliased->column_names[0], "sum_v");
}

TEST_F(AggregateTest, Rejections) {
  // Mixing plain columns and aggregates (no GROUP BY support).
  EXPECT_FALSE(ExecuteSql(db_, "SELECT k, SUM(v) FROM t").ok());
  // SUM/AVG over non-numeric columns.
  EXPECT_FALSE(ExecuteSql(db_, "SELECT SUM(k) FROM t").ok());
  EXPECT_FALSE(ExecuteSql(db_, "SELECT AVG(k) FROM t").ok());
  // DISTINCT / ORDER BY with aggregates.
  EXPECT_FALSE(ExecuteSql(db_, "SELECT DISTINCT SUM(v) FROM t").ok());
  EXPECT_FALSE(ExecuteSql(db_, "SELECT SUM(v) FROM t ORDER BY k").ok());
  // Unknown argument column.
  EXPECT_FALSE(ExecuteSql(db_, "SELECT SUM(zz) FROM t").ok());
}

TEST_F(AggregateTest, ConstantFalseShortCircuit) {
  Row row = One("SELECT COUNT(*), SUM(v) FROM t WHERE FALSE");
  EXPECT_EQ(row[0], Value::Int(0));
  EXPECT_TRUE(row[1].is_null());
}

// The introduction's motivating question — "how many CPU seconds have
// my jobs used?" — answered with a recency report: the total only
// covers machines that have reported in, and the report says which
// ones those are.
TEST(AggregateReportTest, CpuSecondsWithRecencyReport) {
  Database db;
  auto hb = HeartbeatTable::Create(&db);
  ASSERT_TRUE(hb.ok());
  auto s = ExecuteStatement(
      &db,
      "CREATE TABLE job_stats (exec_machine TEXT DATA SOURCE, "
      "job_id TEXT, cpu_seconds INT)");
  ASSERT_TRUE(s.ok()) << s.status();
  s = ExecuteStatement(&db,
                       "INSERT INTO job_stats VALUES "
                       "('m1', 'j1', 120), ('m1', 'j2', 30), "
                       "('m2', 'j3', 600)");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(hb->SetRecency("m1", Timestamp::FromSeconds(1000)).ok());
  ASSERT_TRUE(hb->SetRecency("m2", Timestamp::FromSeconds(2000)).ok());
  ASSERT_TRUE(hb->SetRecency("m3", Timestamp::FromSeconds(500)).ok());

  Session session(&db);
  RecencyReporter reporter(&db, &session);
  auto report =
      reporter.Run("SELECT SUM(cpu_seconds) FROM job_stats");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->result.rows[0][0], Value::Int(750));
  // Any machine could still contribute jobs: all three are relevant,
  // and m3 (silent since t=500) is the one to worry about.
  EXPECT_EQ(report->relevance.sources.size(), 3u);
  ASSERT_TRUE(report->stats.least_recent.has_value());
  EXPECT_EQ(report->stats.least_recent->source, "m3");
}

}  // namespace
}  // namespace trac
