#include "ir/plan_ir.h"

#include <string>

#include <gtest/gtest.h>

namespace trac {
namespace {

/// The canonical Dump() text of a small but fully featured plan: every
/// node kind, shard fan-out, a relevance-marked join key, aggregate
/// functions, session ownership, and the generated flag.
const char kFullDump[] =
    "ir full_example\n"
    "node 0 scan table=activity snap=12 cols=a.mach_id:d,a.value:r\n"
    "node 1 filter in=0 cols=a.mach_id:d,a.value:r\n"
    "node 2 scan table=heartbeat snap=12 shard=0/2 gen "
    "cols=h.source_id:d,h.recency_timestamp:r\n"
    "node 3 scan table=heartbeat snap=12 shard=1/2 gen "
    "cols=h.source_id:d,h.recency_timestamp:r\n"
    "node 4 merge in=2,3 set sorted gen "
    "cols=source_id:d,recency_timestamp:r\n"
    "node 5 join in=1,4 key=d-d*,r-r cols=a.mach_id:d,source_id:d\n"
    "node 6 agg in=5 fns=count:r,max:r cols=n:r\n"
    "node 7 tempwrite in=4 table=sys_temp_a1 session=3 gen "
    "cols=source_id:d\n"
    "node 8 scan table=sys_temp_a1 snap=12 cols=source_id:d\n"
    "node 9 report in=6,7,8 gen\n";

TEST(PlanIrTest, DumpParseRoundTripIsByteExact) {
  auto parsed = ParsePlanIr(kFullDump);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->label, "full_example");
  ASSERT_EQ(parsed->nodes.size(), 10u);
  // Byte-exact round trip: Dump(Parse(text)) == text.
  EXPECT_EQ(parsed->Dump(), kFullDump);
  // And a second round trip is a fixed point.
  auto again = ParsePlanIr(parsed->Dump());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->Dump(), kFullDump);
}

TEST(PlanIrTest, ParsedFieldsMatch) {
  auto parsed = ParsePlanIr(kFullDump);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const PlanIr& ir = *parsed;

  EXPECT_EQ(ir.nodes[0].kind, IrNodeKind::kScan);
  EXPECT_EQ(ir.nodes[0].table, "activity");
  EXPECT_EQ(ir.nodes[0].snapshot, 12u);
  ASSERT_EQ(ir.nodes[0].columns.size(), 2u);
  EXPECT_EQ(ir.nodes[0].columns[0].name, "a.mach_id");
  EXPECT_EQ(ir.nodes[0].columns[0].provenance, ColumnProvenance::kDataSource);
  EXPECT_EQ(ir.nodes[0].columns[1].provenance, ColumnProvenance::kRegular);

  EXPECT_EQ(ir.nodes[2].shard, 0u);
  EXPECT_EQ(ir.nodes[2].num_shards, 2u);
  EXPECT_TRUE(ir.nodes[2].generated);

  EXPECT_EQ(ir.nodes[4].kind, IrNodeKind::kMerge);
  EXPECT_TRUE(ir.nodes[4].set_merge);
  EXPECT_TRUE(ir.nodes[4].sorted);
  EXPECT_EQ(ir.nodes[4].inputs, (std::vector<size_t>{2, 3}));

  ASSERT_EQ(ir.nodes[5].keys.size(), 2u);
  EXPECT_TRUE(ir.nodes[5].keys[0].relevance);
  EXPECT_EQ(ir.nodes[5].keys[0].probe, ColumnProvenance::kDataSource);
  EXPECT_FALSE(ir.nodes[5].keys[1].relevance);
  EXPECT_EQ(ir.nodes[5].keys[1].build, ColumnProvenance::kRegular);

  ASSERT_EQ(ir.nodes[6].aggs.size(), 2u);
  EXPECT_EQ(ir.nodes[6].aggs[0].fn, "count");

  EXPECT_EQ(ir.nodes[7].session, 3u);
  EXPECT_EQ(ir.nodes[7].table, "sys_temp_a1");
}

TEST(PlanIrTest, CommentsAndBlankLinesAreSkipped) {
  auto parsed = ParsePlanIr(
      "# a seeded-bad corpus file may carry commentary\n"
      "\n"
      "ir commented\n"
      "  # indented comment\n"
      "node 0 scan table=t snap=1 cols=x:r\n"
      "\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->nodes.size(), 1u);
}

TEST(PlanIrTest, ParseErrors) {
  // Missing header.
  EXPECT_FALSE(ParsePlanIr("node 0 scan snap=1\n").ok());
  // Non-dense node ids.
  EXPECT_FALSE(ParsePlanIr("ir x\nnode 1 scan snap=1\n").ok());
  // Unknown node kind.
  EXPECT_FALSE(ParsePlanIr("ir x\nnode 0 shuffle\n").ok());
  // Unknown attribute.
  EXPECT_FALSE(ParsePlanIr("ir x\nnode 0 scan wat=1\n").ok());
  // Bad provenance class.
  EXPECT_FALSE(ParsePlanIr("ir x\nnode 0 scan cols=a:z\n").ok());
  // Malformed join key.
  EXPECT_FALSE(ParsePlanIr("ir x\nnode 0 join key=d\n").ok());
  // Malformed shard spec.
  EXPECT_FALSE(ParsePlanIr("ir x\nnode 0 scan shard=3\n").ok());
}

// Every malformed attribute value reports uniformly as
// "plan IR line N: <attr>: <what>" — the line anchor is what lets a
// user fix a hand-edited witness file without bisecting it.
TEST(PlanIrTest, ParseErrorsAreLineAnchored) {
  struct Case {
    const char* name;
    const char* text;
    const char* want;  ///< Substring of the error message.
  };
  const Case kCases[] = {
      {"rows not a number", "ir x\nnode 0 scan rows=abc\n",
       "line 2: rows: bad number 'abc'"},
      {"rows empty", "ir x\nnode 0 scan rows=\n",
       "line 2: rows: empty number"},
      {"pred not hex", "ir x\nnode 0 filter in=0 pred=xyz\n",
       "line 2: pred: bad hex number 'xyz'"},
      {"pred too wide", "ir x\nnode 0 filter pred=00000000000000000\n",
       "line 2: pred: bad hex number"},
      {"src empty element", "ir x\nnode 0 merge src=\n",
       "line 2: want src=<table>,..."},
      {"src trailing comma", "ir x\nnode 0 merge src=a,\n",
       "line 2: want src=<table>,..."},
      {"snap not a number", "ir x\nnode 0 scan snap=5x\n",
       "line 2: snap: bad number '5x'"},
      {"bound not a number", "ir x\nnode 0 report in=0 bound=1s\n",
       "line 2: bound: bad number '1s'"},
      {"shard not a number", "ir x\nnode 0 scan shard=a/2\n",
       "line 2: shard: bad number 'a'"},
      {"session not a number", "ir x\nnode 0 tempwrite session=one\n",
       "line 2: session: bad number 'one'"},
      {"age bad piece", "ir x\nnode 0 scan age=1..b\n",
       "line 2: age: bad number 'b'"},
      {"in bad piece", "ir x\nnode 0 join in=0,x\n",
       "line 2: in: bad number 'x'"},
      {"cols bad class", "ir x\nnode 0 scan cols=a:z\n",
       "line 2: cols: bad provenance class 'z'"},
      {"key bad class", "ir x\nnode 0 join key=d-q\n",
       "line 2: key: bad provenance class 'q'"},
      {"fns bad class", "ir x\nnode 0 agg fns=count:x\n",
       "line 2: fns: bad provenance class 'x'"},
      {"node id not a number", "ir x\nnode zero scan\n",
       "line 2: node id: bad number 'zero'"},
      {"anchor survives comments",
       "# leading commentary\n\nir x\n# more\nnode 0 scan rows=?\n",
       "line 5: rows: bad number '?'"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    auto parsed = ParsePlanIr(c.text);
    ASSERT_FALSE(parsed.ok());
    const std::string msg(parsed.status().message());
    EXPECT_NE(msg.find(c.want), std::string::npos)
        << "got: " << msg << "\nwant substring: " << c.want;
    EXPECT_NE(msg.find("plan IR line "), std::string::npos) << msg;
  }
}

TEST(PlanIrTest, TempTableNameClassifier) {
  EXPECT_TRUE(IsTempTableName("sys_temp_a1"));
  EXPECT_TRUE(IsTempTableName("sys_temp_e42"));
  EXPECT_FALSE(IsTempTableName("sys_temp_"));  // Prefix alone: no id.
  EXPECT_FALSE(IsTempTableName("activity"));
  EXPECT_FALSE(IsTempTableName("heartbeat"));
}

TEST(PlanIrTest, ActualAnnotationsRoundTrip) {
  // A profiled session IR: runtime actuals ride after the static
  // attributes and before cols=, and survive Dump/Parse byte-exactly.
  const char kProfiled[] =
      "ir profiled\n"
      "node 0 scan table=activity snap=7 rows=131 actual_rows=3 "
      "actual_ns=2000000 cols=a.mach_id:d\n"
      "node 1 filter in=0 actual_rows=2 cols=a.mach_id:d\n"
      "node 2 report in=1 actual_rows=2 actual_ns=1000000 cols=a.mach_id:d\n";
  auto parsed = ParsePlanIr(kProfiled);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), kProfiled);

  ASSERT_TRUE(parsed->nodes[0].has_actual_rows);
  EXPECT_EQ(parsed->nodes[0].actual_rows, 3u);
  ASSERT_TRUE(parsed->nodes[0].has_actual_ns);
  EXPECT_EQ(parsed->nodes[0].actual_ns, 2000000);
  // actual_rows without actual_ns is legal (row-only annotations).
  ASSERT_TRUE(parsed->nodes[1].has_actual_rows);
  EXPECT_FALSE(parsed->nodes[1].has_actual_ns);
  // Unannotated estimate state is untouched by the runtime fields.
  EXPECT_TRUE(parsed->nodes[0].has_rows);
  EXPECT_EQ(parsed->nodes[0].rows, 131u);
  EXPECT_FALSE(parsed->nodes[1].has_rows);
}

TEST(PlanIrTest, ActualAnnotationParseErrors) {
  EXPECT_FALSE(
      ParsePlanIr("ir x\nnode 0 scan snap=1 actual_rows=abc\n").ok());
  EXPECT_FALSE(ParsePlanIr("ir x\nnode 0 scan snap=1 actual_ns=\n").ok());
}

TEST(PlanIrTest, AddAssignsDenseIds) {
  PlanIr ir;
  ir.label = "built";
  ir.Add(IrNodeKind::kScan);
  ir.Add(IrNodeKind::kFilter);
  ir.Add(IrNodeKind::kReport);
  ASSERT_EQ(ir.nodes.size(), 3u);
  EXPECT_EQ(ir.nodes[0].id, 0u);
  EXPECT_EQ(ir.nodes[1].id, 1u);
  EXPECT_EQ(ir.nodes[2].id, 2u);
}

}  // namespace
}  // namespace trac
