// Tests for the centralized fingerprint primitive (ir/fingerprint.h):
// the 64-bit FNV-1a hash, the cache-canonical IR quotient, and the
// stability properties the relevance cache stakes correctness on —
// idempotence, Dump/Parse invariance, and shard-decomposition collapse
// (the parallelism-1 and parallelism-N lowerings of one plan must key
// the same cache entry).

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "ir/fingerprint.h"
#include "ir/plan_ir.h"

namespace trac {
namespace {

TEST(Fnv1a64Test, MatchesPublishedVectors) {
  // The canonical FNV-1a 64-bit test vectors (offset basis, then the
  // values tabulated in the FNV reference material).
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64Test, ClassicThirtyTwoBitCollisionsSeparate) {
  // "costarring"/"liquid" and "declinate"/"macallums" are the classic
  // 32-bit FNV-1a collision pairs. The cache buckets by the 64-bit
  // variant precisely so that these separate; this is the regression
  // test pinning that width.
  EXPECT_NE(Fnv1a64("costarring"), Fnv1a64("liquid"));
  EXPECT_NE(Fnv1a64("declinate"), Fnv1a64("macallums"));
  EXPECT_NE(Fnv1a64("altarage"), Fnv1a64("zinke"));
}

PlanIr MustParse(const std::string& text) {
  auto ir = ParsePlanIr(text);
  EXPECT_TRUE(ir.ok()) << ir.status().ToString();
  return ir.ok() ? *ir : PlanIr{};
}

// The serial lowering of a heartbeat relevance scan...
constexpr char kSerialPlan[] =
    "ir relevance\n"
    "node 0 scan table=heartbeat snap=7 rows=128 "
    "cols=h.source_id:d,h.recency_timestamp:r\n"
    "node 1 merge in=0 set sorted gen cols=source_id:d\n";

// ...and the same plan at parallelism 2: the scan decomposed into two
// version-range shards rejoined by the deduplicating set merge.
constexpr char kShardedPlan[] =
    "ir relevance\n"
    "node 0 scan table=heartbeat snap=7 rows=64 shard=0/2 "
    "cols=h.source_id:d,h.recency_timestamp:r\n"
    "node 1 scan table=heartbeat snap=7 rows=64 shard=1/2 "
    "cols=h.source_id:d,h.recency_timestamp:r\n"
    "node 2 merge in=0,1 set sorted gen cols=source_id:d\n";

TEST(CacheCanonicalIrTest, Idempotent) {
  const PlanIr ir = MustParse(kShardedPlan);
  const PlanIr once = CacheCanonicalIr(ir);
  EXPECT_EQ(CacheCanonicalIr(once).Dump(), once.Dump());
}

TEST(CacheCanonicalIrTest, CollapsesShardDecomposition) {
  const PlanIr serial = MustParse(kSerialPlan);
  const PlanIr sharded = MustParse(kShardedPlan);
  EXPECT_EQ(IrCacheKey(serial), IrCacheKey(sharded));
  EXPECT_EQ(IrCacheFingerprint(serial), IrCacheFingerprint(sharded));
}

TEST(CacheCanonicalIrTest, StripsVolatileAnnotations) {
  // Different snapshot epoch and row-count hints: the cached *result*
  // does not depend on either (the footprint re-validates recency), so
  // the key must not change.
  PlanIr a = MustParse(kSerialPlan);
  PlanIr b = MustParse(kSerialPlan);
  b.nodes[0].snapshot = 99;
  b.nodes[0].rows = 5;
  EXPECT_EQ(IrCacheKey(a), IrCacheKey(b));
}

TEST(CacheCanonicalIrTest, DistinctPlansKeyDistinctEntries) {
  const PlanIr heartbeat = MustParse(kSerialPlan);
  const PlanIr other = MustParse(
      "ir relevance\n"
      "node 0 scan table=activity snap=7 cols=a.mach_id:d\n"
      "node 1 merge in=0 set sorted gen cols=mach_id:d\n");
  EXPECT_NE(IrCacheKey(heartbeat), IrCacheKey(other));
  EXPECT_NE(IrCacheFingerprint(heartbeat), IrCacheFingerprint(other));
}

TEST(IrCacheFingerprintTest, StableAcrossDumpParse) {
  for (const char* text : {kSerialPlan, kShardedPlan}) {
    const PlanIr ir = MustParse(text);
    const PlanIr reparsed = MustParse(ir.Dump());
    EXPECT_EQ(IrCacheFingerprint(ir), IrCacheFingerprint(reparsed)) << text;
  }
}

TEST(IrCacheFingerprintTest, IsFnvOfCacheKey) {
  const PlanIr ir = MustParse(kSerialPlan);
  EXPECT_EQ(IrCacheFingerprint(ir), Fnv1a64(IrCacheKey(ir)));
}

}  // namespace
}  // namespace trac
