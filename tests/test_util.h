#ifndef TRAC_TESTS_TEST_UTIL_H_
#define TRAC_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/heartbeat.h"
#include "core/relevance.h"
#include "exec/executor.h"
#include "expr/binder.h"
#include "storage/database.h"

namespace trac {
namespace testing_util {

/// gtest glue: ASSERT that a Status/Result is OK, printing the message.
#define TRAC_ASSERT_OK(expr)                                       \
  do {                                                             \
    const ::trac::Status _s = (expr);                              \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                         \
  } while (false)

#define TRAC_EXPECT_OK(expr)                                       \
  do {                                                             \
    const ::trac::Status _s = (expr);                              \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                         \
  } while (false)

/// Unwraps a Result<T>, failing the test on error.
#define TRAC_ASSERT_OK_AND_ASSIGN(lhs, expr)             \
  TRAC_ASSERT_OK_AND_ASSIGN_IMPL_(                       \
      TRAC_TEST_CONCAT_(_result_, __LINE__), lhs, expr)
#define TRAC_ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                     \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();      \
  lhs = std::move(tmp).value()
#define TRAC_TEST_CONCAT_(a, b) TRAC_TEST_CONCAT_IMPL_(a, b)
#define TRAC_TEST_CONCAT_IMPL_(a, b) a##b

inline Timestamp Ts(const std::string& text) {
  auto r = Timestamp::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Timestamp();
}

/// Builds the paper's running example database (Tables 1 and 2 plus the
/// Heartbeat of the Section 5.1 transcript):
///
///   activity(mach_id, value, event_time)   ds column: mach_id
///       m1 idle  2006-03-11 20:37:46
///       m2 busy  2006-02-10 18:22:01
///       m3 idle  2006-03-12 10:23:05
///   routing(mach_id, neighbor, event_time) ds column: mach_id
///       m1 m3    2006-03-12 23:20:06
///       m2 m3    2006-02-10 03:34:21
///   heartbeat: m1..m11; m2 is ~1 month stale (the transcript's
///       exceptional source), the rest spread over 20 minutes.
///
/// When `finite_domains` is set, mach_id/neighbor range over m1..m11,
/// value over {idle, busy}, and event_time over the five timestamps
/// above — small enough for exact brute-force ground truth.
class PaperExampleDb {
 public:
  explicit PaperExampleDb(bool finite_domains = true) {
    std::vector<Value> machines;
    for (int i = 1; i <= 11; ++i) {
      sources_.push_back("m" + std::to_string(i));
      machines.push_back(Value::Str(sources_.back()));
    }
    std::vector<Value> values = {Value::Str("idle"), Value::Str("busy")};
    std::vector<Value> times = {
        Value::Ts(Ts("2006-03-11 20:37:46")),
        Value::Ts(Ts("2006-02-10 18:22:01")),
        Value::Ts(Ts("2006-03-12 10:23:05")),
        Value::Ts(Ts("2006-03-12 23:20:06")),
        Value::Ts(Ts("2006-02-10 03:34:21")),
    };
    auto dom = [&](std::vector<Value> v, TypeId t) {
      return finite_domains ? Domain::Finite(t, std::move(v))
                            : Domain::Infinite(t);
    };

    {
      TableSchema schema(
          "activity",
          {ColumnDef("mach_id", TypeId::kString,
                     dom(machines, TypeId::kString)),
           ColumnDef("value", TypeId::kString, dom(values, TypeId::kString)),
           ColumnDef("event_time", TypeId::kTimestamp,
                     dom(times, TypeId::kTimestamp))});
      EXPECT_TRUE(schema.SetDataSourceColumn("mach_id").ok());
      EXPECT_TRUE(db.CreateTable(std::move(schema)).ok());
      EXPECT_TRUE(db.Insert("activity", {Value::Str("m1"), Value::Str("idle"),
                                         Value::Ts(Ts("2006-03-11 20:37:46"))})
                      .ok());
      EXPECT_TRUE(db.Insert("activity", {Value::Str("m2"), Value::Str("busy"),
                                         Value::Ts(Ts("2006-02-10 18:22:01"))})
                      .ok());
      EXPECT_TRUE(db.Insert("activity", {Value::Str("m3"), Value::Str("idle"),
                                         Value::Ts(Ts("2006-03-12 10:23:05"))})
                      .ok());
      EXPECT_TRUE(db.CreateIndex("activity", "mach_id").ok());
    }
    {
      TableSchema schema(
          "routing",
          {ColumnDef("mach_id", TypeId::kString,
                     dom(machines, TypeId::kString)),
           ColumnDef("neighbor", TypeId::kString,
                     dom(machines, TypeId::kString)),
           ColumnDef("event_time", TypeId::kTimestamp,
                     dom(times, TypeId::kTimestamp))});
      EXPECT_TRUE(schema.SetDataSourceColumn("mach_id").ok());
      EXPECT_TRUE(db.CreateTable(std::move(schema)).ok());
      EXPECT_TRUE(db.Insert("routing", {Value::Str("m1"), Value::Str("m3"),
                                        Value::Ts(Ts("2006-03-12 23:20:06"))})
                      .ok());
      EXPECT_TRUE(db.Insert("routing", {Value::Str("m2"), Value::Str("m3"),
                                        Value::Ts(Ts("2006-02-10 03:34:21"))})
                      .ok());
      EXPECT_TRUE(db.CreateIndex("routing", "mach_id").ok());
    }
    {
      auto hb = HeartbeatTable::Create(&db);
      EXPECT_TRUE(hb.ok());
      heartbeat = std::make_unique<HeartbeatTable>(*hb);
      // The Section 5.1 transcript: m2 a month stale, others spread over
      // 20 minutes starting at 14:20:05.
      EXPECT_TRUE(
          heartbeat->SetRecency("m1", Ts("2006-03-15 14:20:05")).ok());
      EXPECT_TRUE(
          heartbeat->SetRecency("m2", Ts("2006-02-12 17:23:00")).ok());
      EXPECT_TRUE(
          heartbeat->SetRecency("m3", Ts("2006-03-15 14:40:05")).ok());
      for (int i = 4; i <= 11; ++i) {
        EXPECT_TRUE(heartbeat
                        ->SetRecency("m" + std::to_string(i),
                                     Ts("2006-03-15 14:20:05") +
                                         (i - 3) *
                                             Timestamp::kMicrosPerMinute)
                        .ok());
      }
    }
  }

  /// Sorted relevant-source ids from a RelevanceResult-like list.
  static std::vector<std::string> Ids(
      const std::vector<SourceRecency>& sources) {
    std::vector<std::string> ids;
    for (const auto& s : sources) ids.push_back(s.source);
    return ids;
  }

  Database db;
  std::unique_ptr<HeartbeatTable> heartbeat;
  std::vector<std::string> sources_;
};

}  // namespace testing_util
}  // namespace trac

#endif  // TRAC_TESTS_TEST_UTIL_H_
