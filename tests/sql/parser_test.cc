#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace trac {
namespace {

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = Tokenize("SELECT a.b FROM t WHERE x = 'y'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[9].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[9].text, "y");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, EscapedQuote) {
  auto tokens = Tokenize("'o''brien'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "o'brien");
}

TEST(LexerTest, NumbersIntAndDouble) {
  auto tokens = Tokenize("12 3.5 1e3 7.25e-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDouble);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDouble);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kDouble);
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = Tokenize("<= >= <> != < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "!=");
  EXPECT_EQ((*tokens)[4].text, "<");
  EXPECT_EQ((*tokens)[5].text, ">");
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("SELECT -- comment\n x");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].text, "x");
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT mach_id FROM Activity WHERE value = 'idle'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table, "Activity");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kCompare);
}

TEST(ParserTest, PaperQ1) {
  auto stmt = ParseSelect(
      "SELECT mach_id FROM Activity "
      "WHERE mach_id IN ('m1', 'm2') AND value = 'idle';");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kAnd);
  ASSERT_EQ(stmt->where->children.size(), 2u);
  EXPECT_EQ(stmt->where->children[0]->kind, ExprKind::kInList);
  EXPECT_EQ(stmt->where->children[0]->list.size(), 2u);
}

TEST(ParserTest, PaperQ2Join) {
  auto stmt = ParseSelect(
      "SELECT A.mach_id FROM Routing R, Activity A "
      "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
      "AND R.neighbor = A.mach_id");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0].alias, "R");
  EXPECT_EQ(stmt->from[1].alias, "A");
  EXPECT_EQ(stmt->where->children.size(), 3u);
}

TEST(ParserTest, CountStar) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM activity");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_TRUE(stmt->items[0].count_star);
}

TEST(ParserTest, StarAndDistinct) {
  auto stmt = ParseSelect("SELECT DISTINCT * FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->distinct);
  EXPECT_TRUE(stmt->items[0].star);
}

TEST(ParserTest, OperatorsAndPrecedence) {
  auto stmt = ParseSelect(
      "SELECT x FROM t WHERE a = 1 OR b < 2 AND NOT c >= 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  // OR binds loosest: (a=1) OR ((b<2) AND (NOT c>=3)).
  EXPECT_EQ(stmt->where->kind, ExprKind::kOr);
  ASSERT_EQ(stmt->where->children.size(), 2u);
  EXPECT_EQ(stmt->where->children[1]->kind, ExprKind::kAnd);
  EXPECT_EQ(stmt->where->children[1]->children[1]->kind, ExprKind::kNot);
}

TEST(ParserTest, Parentheses) {
  auto stmt = ParseSelect("SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where->kind, ExprKind::kAnd);
  EXPECT_EQ(stmt->where->children[0]->kind, ExprKind::kOr);
}

TEST(ParserTest, BetweenAndNotBetween) {
  auto stmt = ParseSelect(
      "SELECT x FROM t WHERE a BETWEEN 1 AND 5 AND b NOT BETWEEN 2 AND 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where->children[0]->kind, ExprKind::kBetween);
  EXPECT_FALSE(stmt->where->children[0]->negated);
  EXPECT_TRUE(stmt->where->children[1]->negated);
}

TEST(ParserTest, NotIn) {
  auto stmt = ParseSelect("SELECT x FROM t WHERE a NOT IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where->kind, ExprKind::kInList);
  EXPECT_TRUE(stmt->where->negated);
  EXPECT_EQ(stmt->where->list.size(), 3u);
}

TEST(ParserTest, IsNullForms) {
  auto stmt =
      ParseSelect("SELECT x FROM t WHERE a IS NULL AND b IS NOT NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where->children[0]->kind, ExprKind::kIsNull);
  EXPECT_FALSE(stmt->where->children[0]->negated);
  EXPECT_TRUE(stmt->where->children[1]->negated);
}

TEST(ParserTest, TimestampLiteral) {
  auto stmt = ParseSelect(
      "SELECT x FROM t WHERE e > TIMESTAMP '2006-03-15 14:20:05'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const Expr& rhs = *stmt->where->children[1];
  EXPECT_EQ(rhs.kind, ExprKind::kLiteral);
  EXPECT_EQ(rhs.literal.type(), TypeId::kTimestamp);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto stmt =
      ParseSelect("SELECT a.x AS y FROM table1 AS a, table2 b WHERE a.x = b.x");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->items[0].alias, "y");
  EXPECT_EQ(stmt->from[0].alias, "a");
  EXPECT_EQ(stmt->from[1].alias, "b");
}

TEST(ParserTest, ToSqlRoundTrips) {
  const char* queries[] = {
      "SELECT mach_id FROM activity WHERE mach_id IN ('m1', 'm2') AND value "
      "= 'idle'",
      "SELECT COUNT(*) FROM routing r, activity a WHERE r.neighbor = "
      "a.mach_id",
      "SELECT x FROM t WHERE NOT (a = 1 OR b BETWEEN 2 AND 3)",
  };
  for (const char* q : queries) {
    auto stmt = ParseSelect(q);
    ASSERT_TRUE(stmt.ok()) << q;
    auto reparsed = ParseSelect(stmt->ToSql());
    ASSERT_TRUE(reparsed.ok()) << stmt->ToSql();
    EXPECT_EQ(stmt->ToSql(), reparsed->ToSql());
  }
}

TEST(ParserTest, RejectsMalformedQueries) {
  for (const char* bad : {
           "",
           "SELECT",
           "SELECT FROM t",
           "SELECT x",
           "SELECT x FROM",
           "SELECT x FROM t WHERE",
           "SELECT x FROM t WHERE a =",
           "SELECT x FROM t WHERE a IN ()",
           "SELECT x FROM t WHERE a BETWEEN 1",
           "SELECT x FROM t trailing garbage here",
           "SELECT x FROM t WHERE a NOT = 3",
           "INSERT INTO t VALUES (1)",
           "SELECT COUNT() FROM t",
       }) {
    EXPECT_FALSE(ParseSelect(bad).ok()) << bad;
  }
}

TEST(ParsePredicateTest, StandalonePredicate) {
  auto pred = ParsePredicate("a = 1 AND b <> 'x'");
  ASSERT_TRUE(pred.ok()) << pred.status();
  EXPECT_EQ((*pred)->kind, ExprKind::kAnd);
}

}  // namespace
}  // namespace trac
