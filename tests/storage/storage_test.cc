#include "storage/database.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace trac {
namespace {

TableSchema KvSchema(const std::string& name) {
  return TableSchema(name, {ColumnDef("k", TypeId::kString),
                            ColumnDef("v", TypeId::kInt64)});
}

TEST(CatalogTest, CreateLookupDrop) {
  Catalog catalog;
  auto id = catalog.CreateTable(KvSchema("t1"));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(catalog.HasTable("t1"));
  EXPECT_TRUE(catalog.HasTable("T1"));  // Case-insensitive.
  EXPECT_FALSE(catalog.HasTable("t2"));
  EXPECT_EQ(catalog.schema(*id).name(), "t1");

  EXPECT_EQ(catalog.CreateTable(KvSchema("t1")).status().code(),
            StatusCode::kAlreadyExists);
  TRAC_ASSERT_OK(catalog.DropTable("t1"));
  EXPECT_FALSE(catalog.HasTable("t1"));
  EXPECT_FALSE(catalog.IsLive(*id));
  // Name can be reused; the id is fresh.
  auto id2 = catalog.CreateTable(KvSchema("t1"));
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id2, *id);
}

TEST(CatalogTest, TableNamesInCreationOrder) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(KvSchema("a")).ok());
  ASSERT_TRUE(catalog.CreateTable(KvSchema("b")).ok());
  ASSERT_TRUE(catalog.CreateTable(KvSchema("c")).ok());
  TRAC_ASSERT_OK(catalog.DropTable("b"));
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"a", "c"}));
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  TableSchema schema = KvSchema("t");
  EXPECT_EQ(schema.FindColumn("K"), 0u);
  EXPECT_EQ(schema.FindColumn("v"), 1u);
  EXPECT_FALSE(schema.FindColumn("w").has_value());
}

TEST(SchemaTest, DataSourceColumnDesignation) {
  TableSchema schema = KvSchema("t");
  EXPECT_FALSE(schema.data_source_column().has_value());
  TRAC_ASSERT_OK(schema.SetDataSourceColumn("k"));
  EXPECT_EQ(schema.data_source_column(), 0u);
  EXPECT_TRUE(schema.IsDataSourceColumn(0));
  EXPECT_FALSE(schema.IsDataSourceColumn(1));
  EXPECT_EQ(schema.SetDataSourceColumn("nope").code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, ValidateRowChecksArityTypeAndDomain) {
  TableSchema schema(
      "t", {ColumnDef("k", TypeId::kString,
                      Domain::Finite(TypeId::kString,
                                     {Value::Str("a"), Value::Str("b")})),
            ColumnDef("v", TypeId::kInt64)});
  TRAC_EXPECT_OK(schema.ValidateRow({Value::Str("a"), Value::Int(1)}));
  TRAC_EXPECT_OK(schema.ValidateRow({Value::Null(), Value::Null()}));
  EXPECT_EQ(schema.ValidateRow({Value::Str("a")}).code(),
            StatusCode::kInvalidArgument);  // Arity.
  EXPECT_EQ(schema.ValidateRow({Value::Int(1), Value::Int(1)}).code(),
            StatusCode::kTypeError);  // Type.
  EXPECT_EQ(schema.ValidateRow({Value::Str("zz"), Value::Int(1)}).code(),
            StatusCode::kInvalidArgument);  // Domain.
}

TEST(SchemaTest, IntLiteralAcceptedInDoubleColumn) {
  Database db;
  TableSchema schema("t", {ColumnDef("x", TypeId::kDouble)});
  ASSERT_TRUE(db.CreateTable(std::move(schema)).ok());
  TRAC_ASSERT_OK(db.Insert("t", {Value::Int(3)}));
  // Normalized to double in storage.
  const Table* t = db.GetTable(*db.FindTable("t"));
  EXPECT_EQ(t->version(0).values[0].type(), TypeId::kDouble);
}

TEST(TableTest, MvccInsertVisibility) {
  Database db;
  ASSERT_TRUE(db.CreateTable(KvSchema("t")).ok());
  Snapshot s0 = db.LatestSnapshot();
  TRAC_ASSERT_OK(db.Insert("t", {Value::Str("a"), Value::Int(1)}));
  Snapshot s1 = db.LatestSnapshot();

  const Table* t = db.GetTable(*db.FindTable("t"));
  EXPECT_EQ(t->CountVisible(s0), 0u);
  EXPECT_EQ(t->CountVisible(s1), 1u);
}

TEST(TableTest, MvccUpdatePreservesOldVersion) {
  Database db;
  ASSERT_TRUE(db.CreateTable(KvSchema("t")).ok());
  TRAC_ASSERT_OK(db.Insert("t", {Value::Str("a"), Value::Int(1)}));
  Snapshot before = db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(
      int updated,
      db.UpdateWhere(
          "t", [](const Row& r) { return r[0].str_val() == "a"; },
          [](Row* r) { (*r)[1] = Value::Int(2); }));
  EXPECT_EQ(updated, 1);
  Snapshot after = db.LatestSnapshot();

  const Table* t = db.GetTable(*db.FindTable("t"));
  int old_value = -1, new_value = -1;
  t->Scan(before, [&](size_t, const Row& r) {
    old_value = static_cast<int>(r[1].int_val());
  });
  t->Scan(after, [&](size_t, const Row& r) {
    new_value = static_cast<int>(r[1].int_val());
  });
  EXPECT_EQ(old_value, 1);
  EXPECT_EQ(new_value, 2);
  EXPECT_EQ(t->CountVisible(before), 1u);
  EXPECT_EQ(t->CountVisible(after), 1u);
  EXPECT_EQ(t->num_versions(), 2u);
}

TEST(TableTest, MvccDelete) {
  Database db;
  ASSERT_TRUE(db.CreateTable(KvSchema("t")).ok());
  TRAC_ASSERT_OK(db.Insert("t", {Value::Str("a"), Value::Int(1)}));
  TRAC_ASSERT_OK(db.Insert("t", {Value::Str("b"), Value::Int(2)}));
  Snapshot before = db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(
      int deleted,
      db.DeleteWhere("t",
                     [](const Row& r) { return r[0].str_val() == "a"; }));
  EXPECT_EQ(deleted, 1);
  const Table* t = db.GetTable(*db.FindTable("t"));
  EXPECT_EQ(t->CountVisible(before), 2u);
  EXPECT_EQ(t->CountVisible(db.LatestSnapshot()), 1u);
}

TEST(TableTest, InsertManyIsAtomicallyVisible) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(KvSchema("t")));
  Snapshot before = db.LatestSnapshot();
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({Value::Str("k" + std::to_string(i)), Value::Int(i)});
  }
  TRAC_ASSERT_OK(db.InsertMany(id, std::move(rows)));
  const Table* t = db.GetTable(id);
  EXPECT_EQ(t->CountVisible(before), 0u);
  EXPECT_EQ(t->CountVisible(db.LatestSnapshot()), 100u);
  // All rows share one commit version.
  EXPECT_EQ(t->version(0).begin, t->version(99).begin);
}

TEST(IndexTest, EqualityAndRangeScans) {
  OrderedIndex index(0);
  index.Insert(Value::Int(5), 0);
  index.Insert(Value::Int(5), 1);
  index.Insert(Value::Int(7), 2);
  index.Insert(Value::Null(), 3);  // Not indexed.
  EXPECT_EQ(index.num_entries(), 3u);
  EXPECT_EQ(index.CountEqual(Value::Int(5)), 2u);
  EXPECT_EQ(index.CountEqual(Value::Int(6)), 0u);

  std::vector<size_t> hits;
  index.ScanEqual(Value::Int(5), [&](size_t v) { hits.push_back(v); });
  EXPECT_EQ(hits.size(), 2u);

  hits.clear();
  index.ScanRange(Value::Int(5), /*lo_inclusive=*/false, Value::Int(7),
                  /*hi_inclusive=*/true, [&](size_t v) { hits.push_back(v); });
  EXPECT_EQ(hits, (std::vector<size_t>{2}));

  hits.clear();
  index.ScanRange(std::nullopt, true, std::nullopt, true,
                  [&](size_t v) { hits.push_back(v); });
  EXPECT_EQ(hits.size(), 3u);
}

TEST(IndexTest, IndexBackfillsAndTracksUpdates) {
  Database db;
  ASSERT_TRUE(db.CreateTable(KvSchema("t")).ok());
  TRAC_ASSERT_OK(db.Insert("t", {Value::Str("a"), Value::Int(1)}));
  TRAC_ASSERT_OK(db.CreateIndex("t", "k"));
  TRAC_ASSERT_OK(db.Insert("t", {Value::Str("b"), Value::Int(2)}));
  const Table* t = db.GetTable(*db.FindTable("t"));
  const OrderedIndex* index = t->GetIndex(0);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->CountEqual(Value::Str("a")), 1u);
  EXPECT_EQ(index->CountEqual(Value::Str("b")), 1u);

  // Updates add new versions; index entries accumulate and visibility
  // filters them.
  TRAC_ASSERT_OK(db.UpdateWhere(
                       "t", [](const Row& r) { return r[0].str_val() == "a"; },
                       [](Row* r) { (*r)[1] = Value::Int(10); })
                     .status());
  EXPECT_EQ(index->CountEqual(Value::Str("a")), 2u);  // Two versions.
  Snapshot now = db.LatestSnapshot();
  int visible = 0;
  index->ScanEqual(Value::Str("a"), [&](size_t vidx) {
    if (t->Visible(t->version(vidx), now)) ++visible;
  });
  EXPECT_EQ(visible, 1);

  EXPECT_EQ(db.CreateIndex("t", "k").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db.CreateIndex("t", "zz").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, DropTableRemovesNameLookup) {
  Database db;
  ASSERT_TRUE(db.CreateTable(KvSchema("t")).ok());
  TRAC_ASSERT_OK(db.DropTable("t"));
  EXPECT_FALSE(db.FindTable("t").ok());
  EXPECT_EQ(db.DropTable("t").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, InsertIntoMissingTableFails) {
  Database db;
  EXPECT_EQ(db.Insert("nope", {Value::Int(1)}).code(), StatusCode::kNotFound);
}

// Single writer + concurrent readers: every reader sees a consistent
// prefix (counts only ever grow, and pair-inserts are atomic per commit).
TEST(DatabaseTest, ConcurrentReadersSeeMonotonicConsistentSnapshots) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(KvSchema("t")));
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread reader([&]() {
    size_t last_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Snapshot snap = db.LatestSnapshot();
      const Table* t = db.GetTable(id);
      size_t count = 0;
      t->Scan(snap, [&](size_t, const Row&) { ++count; });
      if (count < last_count || count % 2 != 0) {
        failed.store(true);
        break;
      }
      last_count = count;
    }
  });

  for (int i = 0; i < 500; ++i) {
    // Two rows per commit: readers must never observe an odd count.
    std::vector<Row> rows;
    rows.push_back({Value::Str("a" + std::to_string(i)), Value::Int(i)});
    rows.push_back({Value::Str("b" + std::to_string(i)), Value::Int(i)});
    TRAC_ASSERT_OK(db.InsertMany(id, std::move(rows)));
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace trac
