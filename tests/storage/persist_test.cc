#include "storage/persist.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "exec/statement.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

/// RAII temp file path.
class TempFile {
 public:
  TempFile() {
    static int counter = 0;
    path_ = ::testing::TempDir() + "trac_persist_" +
            std::to_string(counter++) + ".tracdb";
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(PersistTest, RoundTripsThePaperExampleDb) {
  PaperExampleDb fixture(/*finite_domains=*/true);
  TempFile file;
  TRAC_ASSERT_OK(SaveDatabase(fixture.db, file.path()));

  Database loaded;
  TRAC_ASSERT_OK(LoadDatabase(&loaded, file.path()));

  // Tables, schemas and data round-trip.
  EXPECT_EQ(loaded.catalog().TableNames(),
            fixture.db.catalog().TableNames());
  for (const char* table : {"activity", "routing", "heartbeat"}) {
    auto before = ExecuteSql(fixture.db, std::string("SELECT * FROM ") + table);
    auto after = ExecuteSql(loaded, std::string("SELECT * FROM ") + table);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    auto sorted = [](ResultSet rs) {
      std::sort(rs.rows.begin(), rs.rows.end());
      return rs.rows;
    };
    EXPECT_EQ(sorted(*before), sorted(*after)) << table;
  }

  // The data source designation and finite domains round-trip.
  const TableSchema& schema =
      loaded.catalog().schema(*loaded.FindTable("activity"));
  EXPECT_EQ(schema.data_source_column(), 0u);
  EXPECT_TRUE(schema.column(0).domain.is_finite());
  EXPECT_EQ(schema.column(0).domain.size(), 11u);

  // Indexes were rebuilt.
  EXPECT_NE(loaded.GetTable(*loaded.FindTable("activity"))->GetIndex(0),
            nullptr);
}

TEST(PersistTest, RecencyReportingWorksOnALoadedDatabase) {
  PaperExampleDb fixture;
  TempFile file;
  TRAC_ASSERT_OK(SaveDatabase(fixture.db, file.path()));

  Database loaded;
  TRAC_ASSERT_OK(LoadDatabase(&loaded, file.path()));
  Session session(&loaded);
  RecencyReporter reporter(&loaded, &session);
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id FROM activity WHERE mach_id IN "
                   "('m1','m2') AND value = 'idle'"));
  EXPECT_EQ(report.relevance.sources.size(), 2u);
  EXPECT_TRUE(report.relevance.minimal);
}

TEST(PersistTest, RoundTripsTrickyValues) {
  Database db;
  auto s = ExecuteStatement(
      &db, "CREATE TABLE t (a TEXT, b INT, c DOUBLE, d TIMESTAMP, e BOOL)");
  ASSERT_TRUE(s.ok());
  // Strings with newlines/quotes, negative numbers, NULLs, precise
  // doubles.
  TRAC_ASSERT_OK(db.Insert(
      "t", {Value::Str("line1\nline2\t'quoted'"), Value::Int(-42),
            Value::Double(0.1), Value::Ts(Timestamp(-5)), Value::Bool(true)}));
  TRAC_ASSERT_OK(db.Insert("t", {Value::Null(), Value::Null(), Value::Null(),
                                 Value::Null(), Value::Null()}));
  TempFile file;
  TRAC_ASSERT_OK(SaveDatabase(db, file.path()));
  Database loaded;
  TRAC_ASSERT_OK(LoadDatabase(&loaded, file.path()));
  auto before = ExecuteSql(db, "SELECT * FROM t");
  auto after = ExecuteSql(loaded, "SELECT * FROM t");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->rows, after->rows);
}

TEST(PersistTest, ChecksAndConstraintsSurviveTheRoundTrip) {
  Database db;
  auto s = ExecuteStatement(
      &db,
      "CREATE TABLE routing (mach_id TEXT DATA SOURCE, neighbor TEXT, "
      "CHECK (mach_id <> neighbor))");
  ASSERT_TRUE(s.ok());
  TempFile file;
  TRAC_ASSERT_OK(SaveDatabase(db, file.path()));
  Database loaded;
  TRAC_ASSERT_OK(LoadDatabase(&loaded, file.path()));
  // The constraint is live in the loaded database.
  auto bad =
      ExecuteStatement(&loaded, "INSERT INTO routing VALUES ('m1','m1')");
  EXPECT_FALSE(bad.ok());
  auto good =
      ExecuteStatement(&loaded, "INSERT INTO routing VALUES ('m1','m2')");
  EXPECT_TRUE(good.ok());
}

TEST(PersistTest, SavesTheLatestSnapshotNotHistory) {
  Database db;
  ASSERT_TRUE(ExecuteStatement(&db, "CREATE TABLE t (v INT)").ok());
  ASSERT_TRUE(ExecuteStatement(&db, "INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(ExecuteStatement(&db, "UPDATE t SET v = 2").ok());
  TempFile file;
  TRAC_ASSERT_OK(SaveDatabase(db, file.path()));
  Database loaded;
  TRAC_ASSERT_OK(LoadDatabase(&loaded, file.path()));
  const Table* t = loaded.GetTable(*loaded.FindTable("t"));
  EXPECT_EQ(t->num_versions(), 1u);  // History flattened.
  auto rs = ExecuteSql(loaded, "SELECT v FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->Contains({Value::Int(2)}));
}

TEST(PersistTest, ErrorsSurfaceCleanly) {
  Database nonempty;
  ASSERT_TRUE(ExecuteStatement(&nonempty, "CREATE TABLE t (v INT)").ok());
  TempFile file;
  TRAC_ASSERT_OK(SaveDatabase(nonempty, file.path()));
  // Loading into a non-empty database is rejected.
  EXPECT_FALSE(LoadDatabase(&nonempty, file.path()).ok());
  // Missing file.
  Database fresh;
  EXPECT_EQ(LoadDatabase(&fresh, "/no/such/dir/x.tracdb").code(),
            StatusCode::kNotFound);
  // Garbage file.
  TempFile garbage;
  {
    std::ofstream out(garbage.path());
    out << "not a tracdb file";
  }
  Database fresh2;
  EXPECT_FALSE(LoadDatabase(&fresh2, garbage.path()).ok());
  // Truncated file (drop the END marker and half the content).
  TempFile truncated;
  {
    std::ifstream in(file.path(), std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(truncated.path(), std::ios::binary);
    out << content.substr(0, content.size() / 2);
  }
  Database fresh3;
  EXPECT_FALSE(LoadDatabase(&fresh3, truncated.path()).ok());
}

TEST(PersistTest, EmptyDatabaseRoundTrips) {
  Database db;
  TempFile file;
  TRAC_ASSERT_OK(SaveDatabase(db, file.path()));
  Database loaded;
  TRAC_ASSERT_OK(LoadDatabase(&loaded, file.path()));
  EXPECT_TRUE(loaded.catalog().TableNames().empty());
}

}  // namespace
}  // namespace trac
