// Tests for the storage invariant layer (storage/invariants.h):
//
//  - the debug lock-order registry turns a lock-rank inversion into a
//    deterministic abort (death tests);
//  - CheckShelfLogMonotonic accepts real histories and rejects a
//    deliberately corrupted one (a version closed before it begins);
//  - CheckSnapshotImmutable holds for a frozen snapshot while and after
//    concurrent writers append, update and delete;
//  - CheckDatabaseInvariants sweeps every live table.
//
// This target is compiled with TRAC_DEBUG_INVARIANTS=1 (per-target, see
// tests/CMakeLists.txt), which arms the rank registration inside the
// inline trac::Mutex methods instantiated HERE. The trac library itself
// keeps whatever flag state the build chose; these tests only rely on
// mutexes constructed in this translation unit.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/mutex.h"
#include "storage/invariants.h"

namespace trac {
namespace {

using testing_util::Ts;

// ---------------------------------------------------------------------
// Lock-order registry.

#if GTEST_HAS_DEATH_TEST

TEST(LockOrderRegistryDeathTest, InvertedAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // kOrderedIndex (50) is held; acquiring kDatabaseWrite (10) on top is
  // the classic latent deadlock. The registry must abort immediately,
  // with a diagnostic naming both locks.
  EXPECT_DEATH(
      {
        Mutex index_mu(lock_rank::kOrderedIndex, "test::index_mu");
        Mutex write_mu(lock_rank::kDatabaseWrite, "test::write_mu");
        index_mu.Lock();
        write_mu.Lock();
      },
      "lock-order inversion.*test::write_mu.*test::index_mu");
}

TEST(LockOrderRegistryDeathTest, SameRankAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Ranks must be STRICTLY increasing: two locks of equal rank have no
  // defined order, so holding both is an inversion waiting to happen.
  EXPECT_DEATH(
      {
        Mutex a(lock_rank::kCatalog, "test::catalog_a");
        Mutex b(lock_rank::kCatalog, "test::catalog_b");
        a.Lock();
        b.Lock();
      },
      "lock-order inversion");
}

TEST(LockOrderRegistryDeathTest, SharedMutexParticipatesInOrder) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Shared (reader) acquisitions are ordered too: reader/reader
  // inversions still deadlock against a writer in the middle.
  EXPECT_DEATH(
      {
        SharedMutex tables_mu(lock_rank::kTableRegistry, "test::tables_mu");
        SharedMutex catalog_mu(lock_rank::kCatalog, "test::catalog_mu");
        tables_mu.LockShared();
        catalog_mu.LockShared();
      },
      "lock-order inversion");
}

#endif  // GTEST_HAS_DEATH_TEST

TEST(LockOrderRegistryTest, OrderedAcquisitionIsBalanced) {
  ASSERT_EQ(LockOrderRegistry::HeldDepth(), 0);
  Mutex write_mu(lock_rank::kDatabaseWrite, "test::write_mu");
  SharedMutex catalog_mu(lock_rank::kCatalog, "test::catalog_mu");
  Mutex pool_mu(lock_rank::kThreadPool, "test::pool_mu");

  write_mu.Lock();
  EXPECT_EQ(LockOrderRegistry::HeldDepth(), 1);
  {
    ReaderMutexLock catalog_lock(&catalog_mu);
    EXPECT_EQ(LockOrderRegistry::HeldDepth(), 2);
    pool_mu.Lock();
    EXPECT_EQ(LockOrderRegistry::HeldDepth(), 3);
    pool_mu.Unlock();
    EXPECT_EQ(LockOrderRegistry::HeldDepth(), 2);
  }
  EXPECT_EQ(LockOrderRegistry::HeldDepth(), 1);
  write_mu.Unlock();
  EXPECT_EQ(LockOrderRegistry::HeldDepth(), 0);
}

TEST(LockOrderRegistryTest, UnrankedLocksAreExemptAndUntracked) {
  // Rank 0 opts out: it may be taken in any order and never appears in
  // the held set (so it cannot block later ranked acquisitions either).
  Mutex ranked(lock_rank::kOrderedIndex, "test::ranked");
  Mutex leaf_a;  // kUnranked
  Mutex leaf_b;  // kUnranked

  ranked.Lock();
  leaf_a.Lock();
  EXPECT_EQ(LockOrderRegistry::HeldDepth(), 1);
  leaf_b.Lock();
  leaf_b.Unlock();
  leaf_a.Unlock();
  ranked.Unlock();
  EXPECT_EQ(LockOrderRegistry::HeldDepth(), 0);
}

TEST(LockOrderRegistryTest, ReleaseUnblocksLowerRank) {
  // Sequential (non-nested) acquisitions in any rank order are fine:
  // order constrains only what is held simultaneously.
  Mutex high(lock_rank::kThreadPool, "test::high");
  Mutex low(lock_rank::kDatabaseWrite, "test::low");
  high.Lock();
  high.Unlock();
  low.Lock();
  low.Unlock();
  EXPECT_EQ(LockOrderRegistry::HeldDepth(), 0);
}

TEST(LockOrderRegistryTest, DepthIsPerThread) {
  Mutex mu(lock_rank::kCatalog, "test::per_thread");
  MutexLock lock(&mu);
  ASSERT_EQ(LockOrderRegistry::HeldDepth(), 1);
  int other_thread_depth = -1;
  std::thread t(
      [&] { other_thread_depth = LockOrderRegistry::HeldDepth(); });
  t.join();
  EXPECT_EQ(other_thread_depth, 0);
}

// ---------------------------------------------------------------------
// Shelf-log monotonicity.

TEST(ShelfLogMonotonicTest, AcceptsRealHistory) {
  Database db;
  TableSchema schema("t", {ColumnDef("x", TypeId::kInt64)});
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));
  for (int i = 0; i < 100; ++i) {
    TRAC_ASSERT_OK(db.Insert("t", {Value::Int(i)}));
  }
  // Updates close old versions and append new ones — still monotonic.
  TRAC_ASSERT_OK(db.UpdateWhere(
                       "t", [](const Row& r) { return r[0].int_val() < 10; },
                       [](Row* r) { (*r)[0] = Value::Int(-1); })
                     .status());
  TRAC_ASSERT_OK(
      db.DeleteWhere("t", [](const Row& r) { return r[0].int_val() > 90; })
          .status());
  TRAC_EXPECT_OK(CheckShelfLogMonotonic(*db.GetTable(id)));
}

TEST(ShelfLogMonotonicTest, DetectsVersionClosedBeforeItBegins) {
  Database db;
  TableSchema schema("t", {ColumnDef("x", TypeId::kInt64)});
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));
  TRAC_ASSERT_OK(db.Insert("t", {Value::Int(1)}));
  TRAC_ASSERT_OK(db.Insert("t", {Value::Int(2)}));
  TRAC_ASSERT_OK(db.Insert("t", {Value::Int(3)}));

  // Corrupt the log through the raw writer-side interface: close the
  // last version (begin == 3) at an earlier commit version. A correct
  // writer can never do this — ends come from later commits.
  Table* table = db.GetTable(id);
  table->CloseVersion(2, /*end_version=*/1);

  const Status status = CheckShelfLogMonotonic(*table);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("before it begins"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------
// Snapshot immutability.

TEST(SnapshotImmutableTest, HoldsDuringAndAfterConcurrentWrites) {
  Database db;
  TableSchema schema("t", {ColumnDef("x", TypeId::kInt64)});
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));
  for (int i = 0; i < 50; ++i) {
    TRAC_ASSERT_OK(db.Insert("t", {Value::Int(i)}));
  }

  // Freeze a view, then churn the table from writer threads: later
  // inserts, updates (which CLOSE versions the snapshot can see — the
  // atomic end must still classify them as visible here) and deletes.
  const Snapshot frozen = db.LatestSnapshot();
  const Table* table = db.GetTable(id);

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    for (int round = 0; round < 40; ++round) {
      auto updated = db.UpdateWhere(
          "t", [&](const Row& r) { return r[0].int_val() % 7 == round % 7; },
          [](Row* r) { (*r)[0] = Value::Int(r->at(0).int_val() + 1000); });
      if (!updated.ok()) {
        ADD_FAILURE() << updated.status().ToString();
        break;
      }
    }
    stop.store(true);
  });
  std::thread inserter([&] {
    for (int i = 0; i < 200 && !stop.load(); ++i) {
      Status s = db.Insert("t", {Value::Int(10000 + i)});
      if (!s.ok()) {
        ADD_FAILURE() << s.ToString();
        break;
      }
    }
  });

  // Validate the frozen snapshot repeatedly WHILE the writers run.
  while (!stop.load()) {
    TRAC_EXPECT_OK(CheckSnapshotImmutable(*table, frozen));
  }
  updater.join();
  inserter.join();

  // And after the dust settles: the frozen view still shows exactly the
  // original 50 rows, none of the churn.
  TRAC_EXPECT_OK(CheckSnapshotImmutable(*table, frozen));
  EXPECT_EQ(table->CountVisible(frozen), 50u);
  TRAC_EXPECT_OK(CheckSnapshotImmutable(*table, db.LatestSnapshot()));
}

// ---------------------------------------------------------------------
// Whole-database sweep.

TEST(DatabaseInvariantsTest, SweepsEveryLiveTable) {
  testing_util::PaperExampleDb example(/*finite_domains=*/false);
  TRAC_EXPECT_OK(CheckDatabaseInvariants(example.db));

  // Still OK after more history, including a dropped-and-ignored table.
  TRAC_ASSERT_OK(example.db.Insert(
      "activity", {Value::Str("m4"), Value::Str("busy"),
                   Value::Ts(Ts("2006-03-15 14:25:05"))}));
  TableSchema doomed("doomed", {ColumnDef("x", TypeId::kInt64)});
  TRAC_ASSERT_OK(example.db.CreateTable(std::move(doomed)).status());
  TRAC_ASSERT_OK(example.db.Insert("doomed", {Value::Int(1)}));
  TRAC_ASSERT_OK(example.db.DropTable("doomed"));
  TRAC_EXPECT_OK(CheckDatabaseInvariants(example.db));

  // DCheck wrapper must be callable in any build (no-op or pass).
  DCheckDatabaseInvariants(example.db);
}

}  // namespace
}  // namespace trac
