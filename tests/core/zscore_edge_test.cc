// Regression pins for the z-score outlier split's edge cases (Section
// 4.3). These are exactly the degenerate populations the hostile-grid
// scenarios generate constantly (fresh grids where every source is
// equally stale, single-source relevant sets, two-source sets where no
// z-score can exceed 1), so their behavior is pinned here once instead
// of being rediscovered by every scenario failure.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_stats.h"

namespace trac {
namespace {

SourceRecency SR(const std::string& id, int64_t seconds) {
  return SourceRecency{id, Timestamp::FromSeconds(seconds)};
}

TEST(ZscoreEdgeTest, EmptyRelevantSetYieldsEmptyStats) {
  const RecencyStats stats = ComputeRecencyStats({});
  EXPECT_TRUE(stats.normal.empty());
  EXPECT_TRUE(stats.exceptional.empty());
  EXPECT_FALSE(stats.least_recent.has_value());
  EXPECT_FALSE(stats.most_recent.has_value());
  EXPECT_EQ(stats.inconsistency_bound_micros, 0);
  EXPECT_EQ(stats.mean_micros, 0.0);
  EXPECT_EQ(stats.stddev_micros, 0.0);
}

TEST(ZscoreEdgeTest, SingleSourceIsNormalWithZeroBound) {
  const RecencyStats stats = ComputeRecencyStats({SR("m1", 1000)});
  ASSERT_EQ(stats.normal.size(), 1u);
  EXPECT_TRUE(stats.exceptional.empty());
  EXPECT_EQ(stats.normal[0].source, "m1");
  // One source: it is its own least and most recent, and the bound of
  // inconsistency collapses to zero (the view of one source is always
  // self-consistent).
  ASSERT_TRUE(stats.least_recent.has_value());
  ASSERT_TRUE(stats.most_recent.has_value());
  EXPECT_EQ(stats.least_recent->source, "m1");
  EXPECT_EQ(stats.most_recent->source, "m1");
  EXPECT_EQ(stats.inconsistency_bound_micros, 0);
  EXPECT_EQ(stats.stddev_micros, 0.0);
}

TEST(ZscoreEdgeTest, ZeroVarianceNeverMarksExceptional) {
  // All sources equally stale: stddev is 0, the z-score is undefined,
  // and *nothing* may be classified exceptional — a division-by-zero
  // regression here would void the whole outlier split.
  std::vector<SourceRecency> relevant;
  for (int i = 0; i < 8; ++i) {
    relevant.push_back(SR("m" + std::to_string(i), 5000));
  }
  const RecencyStats stats = ComputeRecencyStats(relevant);
  EXPECT_EQ(stats.normal.size(), 8u);
  EXPECT_TRUE(stats.exceptional.empty());
  EXPECT_EQ(stats.inconsistency_bound_micros, 0);
  EXPECT_DOUBLE_EQ(stats.mean_micros,
                   static_cast<double>(Timestamp::FromSeconds(5000).micros()));
}

TEST(ZscoreEdgeTest, TwoSourcesCanNeverBeExceptional) {
  // With n = 2 each |z| is exactly 1 regardless of the gap — even a
  // month of divergence stays "normal" and lands in the bound instead.
  const RecencyStats stats = ComputeRecencyStats(
      {SR("m1", 0), SR("m2", 30 * 24 * 3600)});
  EXPECT_EQ(stats.normal.size(), 2u);
  EXPECT_TRUE(stats.exceptional.empty());
  EXPECT_EQ(stats.inconsistency_bound_micros,
            30 * 24 * 3600 * Timestamp::kMicrosPerSecond);
}

TEST(ZscoreEdgeTest, ThresholdIsStrictlyGreaterThan) {
  // Nine sources at 0, one at d: z of the outlier is 3 exactly when
  // n = 10 (z = (d - d/10) / (d * 3/10) = 3). Strict ">" keeps it
  // normal; only crossing the threshold flips it.
  std::vector<SourceRecency> relevant;
  for (int i = 0; i < 9; ++i) {
    relevant.push_back(SR("m" + std::to_string(i), 0));
  }
  relevant.push_back(SR("m9", 1000));
  const RecencyStats at_threshold = ComputeRecencyStats(relevant);
  EXPECT_EQ(at_threshold.normal.size(), 10u)
      << "|z| == threshold must stay normal (strict comparison)";
  EXPECT_TRUE(at_threshold.exceptional.empty());

  // Lowering the threshold just below 3 flips exactly the outlier.
  RecencyStatsOptions options;
  options.zscore_threshold = 2.999;
  const RecencyStats crossed = ComputeRecencyStats(relevant, options);
  EXPECT_EQ(crossed.normal.size(), 9u);
  ASSERT_EQ(crossed.exceptional.size(), 1u);
  EXPECT_EQ(crossed.exceptional[0].source, "m9");
  // The bound is computed over the remaining normal sources only.
  EXPECT_EQ(crossed.inconsistency_bound_micros, 0);
}

TEST(ZscoreEdgeTest, AllEquallyStaleButOneFreshPair) {
  // A grid after a long outage: most sources pinned at one old
  // timestamp, two that kept reporting. The fresh pair must not drag
  // the stale majority into "exceptional" (they ARE the population).
  std::vector<SourceRecency> relevant;
  for (int i = 0; i < 20; ++i) {
    relevant.push_back(SR("stale" + std::to_string(i), 1000));
  }
  relevant.push_back(SR("fresh_a", 4000));
  relevant.push_back(SR("fresh_b", 4100));
  const RecencyStats stats = ComputeRecencyStats(relevant);
  for (const SourceRecency& sr : stats.exceptional) {
    EXPECT_NE(sr.source.substr(0, 5), "stale")
        << "the majority population can never be the outlier";
  }
  // The bound always spans the normal set's true extremes.
  ASSERT_TRUE(stats.least_recent.has_value());
  EXPECT_EQ(stats.least_recent->recency, Timestamp::FromSeconds(1000));
}

}  // namespace
}  // namespace trac
