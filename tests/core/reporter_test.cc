#include "core/recency_reporter.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;
using testing_util::Ts;

// Reproduces the Section 5.1 session transcript: the idle-machines query
// over the sample Activity data with 11 registered sources, m2 a month
// stale.
TEST(ReporterTest, PaperTranscript) {
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);

  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id, value FROM Activity A WHERE value = "
                   "'idle'"));

  // Query result: m1 and m3 idle.
  EXPECT_EQ(report.result.num_rows(), 2u);
  EXPECT_TRUE(report.result.Contains({Value::Str("m1"), Value::Str("idle")}));
  EXPECT_TRUE(report.result.Contains({Value::Str("m3"), Value::Str("idle")}));

  // All 11 sources are relevant (no data-source predicate); m2 is the
  // exceptional one.
  EXPECT_EQ(report.relevance.sources.size(), 11u);
  ASSERT_EQ(report.stats.exceptional.size(), 1u);
  EXPECT_EQ(report.stats.exceptional[0].source, "m2");
  EXPECT_EQ(report.stats.normal.size(), 10u);

  // Least recent: m1 at 14:20:05; most recent: m3 at 14:40:05; bound of
  // inconsistency: 20 minutes.
  ASSERT_TRUE(report.stats.least_recent.has_value());
  EXPECT_EQ(report.stats.least_recent->source, "m1");
  EXPECT_EQ(report.stats.least_recent->recency, Ts("2006-03-15 14:20:05"));
  EXPECT_EQ(report.stats.most_recent->source, "m3");
  EXPECT_EQ(report.stats.most_recent->recency, Ts("2006-03-15 14:40:05"));
  EXPECT_EQ(report.stats.inconsistency_bound_micros,
            20 * Timestamp::kMicrosPerMinute);

  // Temp tables exist and are queryable, like the transcript's
  // sys_temp_e*/sys_temp_a* tables.
  ASSERT_FALSE(report.normal_temp_table.empty());
  ASSERT_FALSE(report.exceptional_temp_table.empty());
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet exceptional,
      ExecuteSql(fixture.db,
                 "SELECT * FROM " + report.exceptional_temp_table));
  ASSERT_EQ(exceptional.num_rows(), 1u);
  EXPECT_TRUE(exceptional.rows[0][0] == Value::Str("m2"));
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet normal,
      ExecuteSql(fixture.db, "SELECT * FROM " + report.normal_temp_table));
  EXPECT_EQ(normal.num_rows(), 10u);

  // The NOTICE block mentions everything the paper prints.
  std::string notices = report.FormatNotices();
  EXPECT_NE(notices.find("least recent data source: m1"), std::string::npos)
      << notices;
  EXPECT_NE(notices.find("most recent data source: m3"), std::string::npos);
  EXPECT_NE(notices.find("Bound of inconsistency: 00:20:00"),
            std::string::npos)
      << notices;
  EXPECT_NE(notices.find(report.normal_temp_table), std::string::npos);
  EXPECT_NE(notices.find(report.exceptional_temp_table), std::string::npos);
}

TEST(ReporterTest, FocusedSelectiveQueryReportsOnlyRelevantSources) {
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id FROM Activity WHERE mach_id IN "
                   "('m1', 'm2') AND value = 'idle'"));
  ASSERT_EQ(report.relevance.sources.size(), 2u);
  EXPECT_EQ(report.relevance.sources[0].source, "m1");
  EXPECT_EQ(report.relevance.sources[1].source, "m2");
  EXPECT_TRUE(report.relevance.minimal);
  // With only two data points no z-score can exceed 1, so even the very
  // stale m2 is "normal" here — outlier detection needs population.
  EXPECT_TRUE(report.stats.exceptional.empty());
  ASSERT_TRUE(report.stats.least_recent.has_value());
  EXPECT_EQ(report.stats.least_recent->source, "m2");
  EXPECT_EQ(report.stats.most_recent->source, "m1");
}

TEST(ReporterTest, NaiveMethodReportsAllSources) {
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);
  RecencyReportOptions options;
  options.method = RecencyMethod::kNaive;
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id FROM Activity WHERE mach_id IN "
                   "('m1', 'm2') AND value = 'idle'",
                   options));
  EXPECT_EQ(report.relevance.sources.size(), 11u);
  EXPECT_FALSE(report.relevance.minimal);
}

TEST(ReporterTest, HardcodedPlanSkipsGenerationCost) {
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q, BindSql(fixture.db,
                            "SELECT mach_id FROM Activity WHERE mach_id IN "
                            "('m1', 'm2') AND value = 'idle'"));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyQueryPlan plan,
                            GenerateRecencyQueries(fixture.db, q));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport report,
                            reporter.RunWithPlan(q, plan));
  EXPECT_EQ(report.parse_generate_micros, 0);
  EXPECT_EQ(report.relevance.sources.size(), 2u);
}

TEST(ReporterTest, SnapshotConsistencyBetweenResultAndRecency) {
  // A write racing between the user query and the recency query must be
  // invisible to both: the reporter captures one snapshot.
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport before,
      reporter.Run("SELECT mach_id FROM Activity WHERE value = 'idle'"));
  // Now add a new source + row; a new report sees both, the old one
  // neither.
  TRAC_ASSERT_OK(fixture.heartbeat->SetRecency("m99",
                                               Ts("2006-03-15 15:00:00")));
  TRAC_ASSERT_OK(fixture.db.Insert(
      "activity", {Value::Str("m3"), Value::Str("idle"),
                   Value::Ts(Ts("2006-03-12 10:23:05"))}));
  EXPECT_EQ(before.relevance.sources.size(), 11u);
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport after,
      reporter.Run("SELECT mach_id FROM Activity WHERE value = 'idle'"));
  EXPECT_EQ(after.relevance.sources.size(), 12u);
  EXPECT_EQ(after.result.num_rows(), before.result.num_rows() + 1);
}

TEST(ReporterTest, NoTempTablesWhenDisabled) {
  PaperExampleDb fixture;
  RecencyReporter reporter(&fixture.db, nullptr);
  RecencyReportOptions options;
  options.create_temp_tables = false;
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id FROM Activity WHERE value = 'idle'",
                   options));
  EXPECT_TRUE(report.normal_temp_table.empty());
  EXPECT_TRUE(report.exceptional_temp_table.empty());
}

TEST(ReporterTest, TempTablesRequestedWithoutSessionFails) {
  PaperExampleDb fixture;
  RecencyReporter reporter(&fixture.db, nullptr);
  EXPECT_FALSE(
      reporter.Run("SELECT mach_id FROM Activity WHERE value = 'idle'")
          .ok());
}

TEST(ReporterTest, EmptyRelevantSetProducesEmptyReport) {
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id FROM Activity WHERE value = 'idle' AND "
                   "value = 'busy'"));
  EXPECT_EQ(report.result.num_rows(), 0u);
  EXPECT_TRUE(report.relevance.sources.empty());
  EXPECT_FALSE(report.stats.least_recent.has_value());
  EXPECT_NE(report.FormatNotices().find("No normal relevant data sources"),
            std::string::npos);
}

}  // namespace
}  // namespace trac
