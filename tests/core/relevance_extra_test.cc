// Additional analyzer coverage: self-joins, executability of the
// generated recency SQL, timing bookkeeping, and percentile options
// flowing through the reporter.

#include <gtest/gtest.h>

#include "../test_util.h"
#include <algorithm>

#include "core/brute_force.h"
#include "core/recency_reporter.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

TEST(SelfJoinTest, RelevanceTreatsEachSlotIndependently) {
  PaperExampleDb fixture(/*finite_domains=*/true);
  // Two-hop neighborhood: r1 -> r2. Slots r1 and r2 are the same table
  // but independent relations for Definition 2.
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT r1.mach_id FROM routing r1, routing r2 "
              "WHERE r1.neighbor = r2.mach_id AND r2.neighbor = 'm3'"));
  Snapshot snap = fixture.db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(RelevanceResult focused,
                            ComputeRelevantSources(fixture.db, q, snap));
  TRAC_ASSERT_OK_AND_ASSIGN(std::vector<std::string> truth,
                            BruteForceRelevantSources(fixture.db, q, snap));
  // Completeness against ground truth.
  for (const std::string& s : truth) {
    auto ids = focused.SourceIds();
    EXPECT_NE(std::find(ids.begin(), ids.end(), s), ids.end()) << s;
  }
  // Via r1: any source could insert a tuple whose neighbor matches an
  // existing routing row (m1 or m2, both with neighbor m3): all 11.
  EXPECT_EQ(truth.size(), 11u);
  EXPECT_EQ(focused.SourceIds(), truth);
}

TEST(GeneratedSqlTest, RecencyQueriesAreExecutableSql) {
  PaperExampleDb fixture;
  for (const char* sql :
       {"SELECT mach_id FROM activity WHERE mach_id IN ('m1','m2') AND "
        "value = 'idle'",
        "SELECT a.mach_id FROM routing r, activity a WHERE r.mach_id = "
        "'m1' AND a.value = 'idle' AND r.neighbor = a.mach_id",
        "SELECT mach_id FROM activity WHERE NOT (mach_id = 'm1' OR "
        "value = 'busy')"}) {
    TRAC_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindSql(fixture.db, sql));
    TRAC_ASSERT_OK_AND_ASSIGN(RecencyQueryPlan plan,
                              GenerateRecencyQueries(fixture.db, q));
    Snapshot snap = fixture.db.LatestSnapshot();
    for (const auto& part : plan.parts) {
      if (!part.guards.empty()) continue;  // The sql carries EXISTS text.
      // The rendered SQL parses, binds and executes to the same rows as
      // the bound part.
      TRAC_ASSERT_OK_AND_ASSIGN(BoundQuery reparsed,
                                BindSql(fixture.db, part.sql));
      TRAC_ASSERT_OK_AND_ASSIGN(ResultSet direct,
                                ExecuteQuery(fixture.db, part.query, snap));
      TRAC_ASSERT_OK_AND_ASSIGN(ResultSet via_sql,
                                ExecuteQuery(fixture.db, reparsed, snap));
      auto sorted = [](ResultSet rs) {
        std::sort(rs.rows.begin(), rs.rows.end());
        return rs.rows;
      };
      EXPECT_EQ(sorted(direct), sorted(via_sql)) << part.sql;
    }
  }
}

TEST(ReportTimingTest, BreakdownFieldsArePopulated) {
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id FROM activity WHERE value = 'idle'"));
  EXPECT_GE(report.parse_generate_micros, 0);
  EXPECT_GE(report.user_query_micros, 0);
  EXPECT_GE(report.relevance_exec_micros, 0);
  EXPECT_GE(report.stats_micros, 0);
  // The hardcoded configuration reports zero generation cost by design.
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT mach_id FROM activity WHERE value = 'idle'"));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyQueryPlan plan,
                            GenerateRecencyQueries(fixture.db, q));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport hard,
                            reporter.RunWithPlan(q, plan));
  EXPECT_EQ(hard.parse_generate_micros, 0);
}

TEST(ReportOptionsTest, PercentilesFlowThroughTheReporter) {
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);
  RecencyReportOptions options;
  options.stats.percentiles = {0.5};
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport report,
      reporter.Run("SELECT mach_id FROM activity WHERE value = 'idle'",
                   options));
  ASSERT_EQ(report.stats.percentile_recencies.size(), 1u);
  EXPECT_DOUBLE_EQ(report.stats.percentile_recencies[0].first, 0.5);
  // The median lies between the normal extremes.
  EXPECT_GE(report.stats.percentile_recencies[0].second,
            report.stats.least_recent->recency);
  EXPECT_LE(report.stats.percentile_recencies[0].second,
            report.stats.most_recent->recency);
}

TEST(ReportOptionsTest, CustomHeartbeatTableName) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(HeartbeatTable hb,
                            HeartbeatTable::Create(&db, "hb2"));
  TRAC_ASSERT_OK(hb.SetRecency("s1", Timestamp::FromSeconds(100)));
  TableSchema schema("t", {ColumnDef("src", TypeId::kString)});
  TRAC_ASSERT_OK(schema.SetDataSourceColumn("src"));
  TRAC_ASSERT_OK(db.CreateTable(std::move(schema)).status());
  TRAC_ASSERT_OK(db.Insert("t", {Value::Str("s1")}));

  Session session(&db);
  RecencyReporter reporter(&db, &session);
  RecencyReportOptions options;
  options.relevance.heartbeat_table = "hb2";
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport report,
                            reporter.Run("SELECT src FROM t", options));
  EXPECT_EQ(report.relevance.sources.size(), 1u);
  // The default name is absent, so default options must fail cleanly.
  EXPECT_FALSE(reporter.Run("SELECT src FROM t").ok());
}

}  // namespace
}  // namespace trac
