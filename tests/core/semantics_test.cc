// Section 4.2's semantics study asserted end to end: the Q3/Q4 phrasing
// difference and the three Q4 database states (a)/(b)/(c).

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "monitor/job_scheduler.h"

namespace trac {
namespace {

using testing_util::Ts;

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto grid = GridSimulator::Create(&db_);
    ASSERT_TRUE(grid.ok());
    grid_ = std::make_unique<GridSimulator>(std::move(*grid));
    grid_->clock().AdvanceTo(Ts("2006-03-15 10:00:00"));
    auto workload = JobSchedulerWorkload::Setup(
        &*grid_, {"sched1", "exec1", "exec2", "exec3"});
    ASSERT_TRUE(workload.ok());
    workload_ = std::make_unique<JobSchedulerWorkload>(std::move(*workload));
    session_ = std::make_unique<Session>(&db_);
    reporter_ = std::make_unique<RecencyReporter>(&db_, session_.get());
  }

  std::vector<std::string> Relevant(const std::string& sql) {
    auto report = reporter_->Run(sql);
    EXPECT_TRUE(report.ok()) << report.status();
    std::vector<std::string> out;
    if (report.ok()) {
      for (const auto& s : report->relevance.sources) out.push_back(s.source);
    }
    return out;
  }

  const std::string q3_ =
      "SELECT running_machine_id FROM r WHERE job_id = 'myjob'";
  const std::string q4_ =
      "SELECT r.running_machine_id FROM s, r "
      "WHERE s.sched_machine_id = 'sched1' AND s.job_id = 'myjob' "
      "AND r.job_id = 'myjob' AND r.running_machine_id = "
      "s.remote_machine_id";

  Database db_;
  std::unique_ptr<GridSimulator> grid_;
  std::unique_ptr<JobSchedulerWorkload> workload_;
  std::unique_ptr<Session> session_;
  std::unique_ptr<RecencyReporter> reporter_;
};

TEST_F(SemanticsTest, Q3AlwaysReportsAllMachines) {
  EXPECT_EQ(Relevant(q3_).size(), 4u);
  // Even after data arrives, Q3's relevant set stays everything.
  TRAC_ASSERT_OK(workload_->StartJob("exec2", "myjob",
                                     Ts("2006-03-15 10:00:30")));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 10:01:00")));
  EXPECT_EQ(Relevant(q3_).size(), 4u);
}

TEST_F(SemanticsTest, Q4CaseA_OnlySchedulerRelevant) {
  // R has a myjob tuple (the runner reported first), S has nothing: the
  // paper's case (a) -> only myScheduler.
  TRAC_ASSERT_OK(workload_->StartJob("exec2", "myjob",
                                     Ts("2006-03-15 10:00:30")));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 10:01:00")));
  EXPECT_EQ(Relevant(q4_), (std::vector<std::string>{"sched1"}));
}

TEST_F(SemanticsTest, Q4CaseB_SchedulerAndRemoteRelevant) {
  // S has (sched1, myjob, exec3) but R's only myjob tuple is exec2's:
  // case (b) -> myScheduler and S.remoteMachineId.
  TRAC_ASSERT_OK(workload_->StartJob("exec2", "myjob",
                                     Ts("2006-03-15 10:00:30")));
  TRAC_ASSERT_OK(workload_->SubmitJob("sched1", "myjob", "exec3",
                                      Ts("2006-03-15 10:00:40")));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 10:01:00")));
  auto report = reporter_->Run(q4_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->result.num_rows(), 0u);  // exec2 != exec3: no join.
  EXPECT_EQ(Relevant(q4_), (std::vector<std::string>{"exec3", "sched1"}));
}

TEST_F(SemanticsTest, Q4CaseC_SchedulerAndRunnerRelevant) {
  TRAC_ASSERT_OK(workload_->SubmitJob("sched1", "myjob", "exec3",
                                      Ts("2006-03-15 10:00:30")));
  TRAC_ASSERT_OK(workload_->StartJob("exec3", "myjob",
                                     Ts("2006-03-15 10:00:40")));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 10:01:00")));
  auto report = reporter_->Run(q4_);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->result.num_rows(), 1u);
  EXPECT_TRUE(report->result.Contains({Value::Str("exec3")}));
  EXPECT_EQ(Relevant(q4_), (std::vector<std::string>{"exec3", "sched1"}));
}

TEST_F(SemanticsTest, Q4EmptyEverythingOnlySchedulerGuarded) {
  // Nothing in S or R at all: via-R needs an existing S tuple (none) and
  // via-S needs an existing R tuple (none): relevant set is empty, which
  // is exact — no single update can change the (empty) answer.
  EXPECT_TRUE(Relevant(q4_).empty());
}

// A sequence of updates from an initially irrelevant source CAN change
// the result (the paper's two-step observation after the Q2 example).
TEST_F(SemanticsTest, SequenceOfUpdatesFromIrrelevantSourceChangesResult) {
  auto report = reporter_->Run(q4_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->relevance.sources.empty());
  EXPECT_EQ(report->result.num_rows(), 0u);

  // Update 1: sched1 reports the assignment (sched1 was irrelevant!).
  TRAC_ASSERT_OK(workload_->SubmitJob("sched1", "myjob", "exec1",
                                      Ts("2006-03-15 10:00:30")));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 10:01:00")));
  // Now exec1 became relevant...
  auto mid = Relevant(q4_);
  EXPECT_NE(std::find(mid.begin(), mid.end(), "exec1"), mid.end());
  // Update 2: exec1 reports running; the result changes.
  TRAC_ASSERT_OK(workload_->StartJob("exec1", "myjob",
                                     Ts("2006-03-15 10:01:30")));
  TRAC_ASSERT_OK(grid_->RunUntil(Ts("2006-03-15 10:02:00")));
  auto final_report = reporter_->Run(q4_);
  ASSERT_TRUE(final_report.ok());
  EXPECT_EQ(final_report->result.num_rows(), 1u);
}

}  // namespace
}  // namespace trac
