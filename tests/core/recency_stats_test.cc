#include "core/recency_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"

namespace trac {
namespace {

using testing_util::Ts;

SourceRecency SR(const std::string& s, Timestamp t) {
  return SourceRecency{s, t};
}

TEST(RecencyStatsTest, EmptyInput) {
  RecencyStats stats = ComputeRecencyStats({});
  EXPECT_TRUE(stats.normal.empty());
  EXPECT_TRUE(stats.exceptional.empty());
  EXPECT_FALSE(stats.least_recent.has_value());
  EXPECT_FALSE(stats.most_recent.has_value());
  EXPECT_EQ(stats.inconsistency_bound_micros, 0);
}

TEST(RecencyStatsTest, SingleSource) {
  RecencyStats stats =
      ComputeRecencyStats({SR("m1", Ts("2006-03-15 14:20:05"))});
  ASSERT_EQ(stats.normal.size(), 1u);
  EXPECT_TRUE(stats.exceptional.empty());
  EXPECT_EQ(stats.least_recent->source, "m1");
  EXPECT_EQ(stats.most_recent->source, "m1");
  EXPECT_EQ(stats.inconsistency_bound_micros, 0);
  EXPECT_EQ(stats.stddev_micros, 0.0);
}

TEST(RecencyStatsTest, IdenticalTimestampsNoOutliers) {
  std::vector<SourceRecency> sources;
  for (int i = 0; i < 10; ++i) {
    sources.push_back(SR("m" + std::to_string(i), Ts("2006-03-15 14:20:05")));
  }
  RecencyStats stats = ComputeRecencyStats(std::move(sources));
  EXPECT_EQ(stats.normal.size(), 10u);
  EXPECT_TRUE(stats.exceptional.empty());
  EXPECT_EQ(stats.inconsistency_bound_micros, 0);
}

TEST(RecencyStatsTest, PaperTranscriptSplit) {
  // 10 sources within 20 minutes, one a month stale: z(m2) > 3.
  std::vector<SourceRecency> sources;
  Timestamp base = Ts("2006-03-15 14:20:05");
  for (int i = 0; i < 10; ++i) {
    sources.push_back(
        SR("m" + std::to_string(i + 3),
           base + i * 2 * Timestamp::kMicrosPerMinute));
  }
  sources.push_back(SR("m2", base - 30 * Timestamp::kMicrosPerDay));
  RecencyStats stats = ComputeRecencyStats(std::move(sources));
  ASSERT_EQ(stats.exceptional.size(), 1u);
  EXPECT_EQ(stats.exceptional[0].source, "m2");
  EXPECT_EQ(stats.normal.size(), 10u);
  // Normal stats exclude the outlier.
  EXPECT_EQ(stats.least_recent->recency, base);
  EXPECT_EQ(stats.most_recent->recency,
            base + 18 * Timestamp::kMicrosPerMinute);
  EXPECT_EQ(stats.inconsistency_bound_micros,
            18 * Timestamp::kMicrosPerMinute);
}

TEST(RecencyStatsTest, ThresholdIsConfigurable) {
  std::vector<SourceRecency> sources;
  Timestamp base = Ts("2006-03-15 14:20:05");
  for (int i = 0; i < 20; ++i) {
    sources.push_back(SR("a" + std::to_string(i), base));
  }
  sources.push_back(SR("late", base - Timestamp::kMicrosPerHour));
  RecencyStatsOptions strict;
  strict.zscore_threshold = 1.0;
  RecencyStats stats = ComputeRecencyStats(sources, strict);
  ASSERT_EQ(stats.exceptional.size(), 1u);
  EXPECT_EQ(stats.exceptional[0].source, "late");

  RecencyStatsOptions loose;
  loose.zscore_threshold = 100.0;
  RecencyStats none = ComputeRecencyStats(sources, loose);
  EXPECT_TRUE(none.exceptional.empty());
}

TEST(RecencyStatsTest, ZScoreMatchesDefinition) {
  // Hand-computed: values 0, 10, 20 -> mean 10, population stddev
  // sqrt(200/3) ~ 8.165.
  std::vector<SourceRecency> sources = {
      SR("a", Timestamp(0)), SR("b", Timestamp(10)), SR("c", Timestamp(20))};
  RecencyStats stats = ComputeRecencyStats(std::move(sources));
  EXPECT_DOUBLE_EQ(stats.mean_micros, 10.0);
  EXPECT_NEAR(stats.stddev_micros, std::sqrt(200.0 / 3.0), 1e-9);
  EXPECT_TRUE(stats.exceptional.empty());  // Max |z| ~ 1.22.
}

TEST(RecencyStatsTest, ChebyshevBoundHolds) {
  // Property (the paper's justification): at most 1/9 of any data set
  // can have |z| > 3.
  std::vector<SourceRecency> sources;
  Timestamp base = Ts("2006-03-15 14:20:05");
  Random rng(5);
  for (int i = 0; i < 900; ++i) {
    sources.push_back(
        SR("s" + std::to_string(i),
           base - static_cast<int64_t>(rng.Uniform(
                      30 * Timestamp::kMicrosPerDay))));
  }
  RecencyStats stats = ComputeRecencyStats(std::move(sources));
  EXPECT_LE(stats.exceptional.size(), 100u);  // 900/9.
}

TEST(RecencyStatsTest, OutputsSortedBySource) {
  std::vector<SourceRecency> sources = {
      SR("zz", Timestamp(5)), SR("aa", Timestamp(7)), SR("mm", Timestamp(6))};
  RecencyStats stats = ComputeRecencyStats(std::move(sources));
  ASSERT_EQ(stats.normal.size(), 3u);
  EXPECT_EQ(stats.normal[0].source, "aa");
  EXPECT_EQ(stats.normal[1].source, "mm");
  EXPECT_EQ(stats.normal[2].source, "zz");
}

}  // namespace
}  // namespace trac
