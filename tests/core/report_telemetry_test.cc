// Regression tests for the report-lifecycle telemetry: one Run() must
// produce a complete span tree (parse/plan/verify/user-query/relevance/
// stats under one root, relevance-task leaves under relevance), the
// spans must nest inside their parents, and the per-task spans must sum
// EXACTLY to the report's busy time and to the registry histogram —
// the validated replacement for the ad-hoc busy/wall fields that were
// populated but never checked.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

// Deterministic step clock, atomic so parallel relevance tasks can
// stamp their spans from pool threads.
std::atomic<int64_t> g_ticks{0};
int64_t StepClock() {
  return 1000 * (1 + g_ticks.fetch_add(1, std::memory_order_relaxed));
}

class ReportTelemetryTest : public ::testing::Test {
 protected:
  RecencyReport RunReport(size_t parallelism) {
    RecencyReportOptions options;
    options.create_temp_tables = false;
    options.relevance.parallelism = parallelism;
    options.telemetry = &telemetry_;
    RecencyReporter reporter(&fixture_.db, nullptr);
    auto report = reporter.Run(
        "SELECT mach_id, value FROM Activity WHERE value = 'idle'", options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  }

  PaperExampleDb fixture_;
  MetricRegistry metrics_;
  Tracer tracer_;
  Telemetry telemetry_{&metrics_, &tracer_, &StepClock};
};

TEST_F(ReportTelemetryTest, SpanTreeIsCompleteAndNested) {
  RecencyReport report = RunReport(/*parallelism=*/4);
  ASSERT_NE(report.trace_id, 0u);

  std::vector<SpanRecord> spans = tracer_.CollectTrace(report.trace_id);
  std::map<std::string, const SpanRecord*> by_name;
  const SpanRecord* root = nullptr;
  size_t tasks = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "relevance-task") {
      ++tasks;
      continue;
    }
    EXPECT_EQ(by_name.count(s.name), 0u) << "duplicate span " << s.name;
    by_name[s.name] = &s;
    if (s.parent_id == 0) root = &s;
  }

  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "report");
  EXPECT_GT(root->snapshot_epoch, 0u);
  EXPECT_EQ(root->relevant_sources,
            static_cast<int64_t>(report.relevance.sources.size()));

  for (const char* phase :
       {"parse", "plan", "verify", "user-query", "relevance", "stats"}) {
    ASSERT_NE(by_name.count(phase), 0u) << "missing span " << phase;
    const SpanRecord* s = by_name[phase];
    EXPECT_EQ(s->parent_id, root->span_id) << phase;
    // Every phase nests inside the root's interval.
    EXPECT_GE(s->start_micros, root->start_micros) << phase;
    EXPECT_LE(s->end_micros, root->end_micros) << phase;
    EXPECT_LE(s->start_micros, s->end_micros) << phase;
  }

  // Every relevance task hangs off the relevance span and nests in it.
  const SpanRecord* relevance = by_name["relevance"];
  EXPECT_EQ(tasks, report.relevance_task_micros.size());
  EXPECT_GT(tasks, 0u);
  for (const SpanRecord& s : spans) {
    if (s.name != "relevance-task") continue;
    EXPECT_EQ(s.parent_id, relevance->span_id);
    EXPECT_GE(s.start_micros, relevance->start_micros);
    EXPECT_LE(s.end_micros, relevance->end_micros);
  }
}

TEST_F(ReportTelemetryTest, TaskSpansSumToBusyTime) {
  RecencyReport report = RunReport(/*parallelism=*/4);
  EXPECT_EQ(report.relevance_parallelism, 4u);

  // The struct fields agree with each other...
  int64_t struct_sum = 0;
  for (int64_t t : report.relevance_task_micros) struct_sum += t;
  EXPECT_EQ(struct_sum, report.relevance_busy_micros);

  // ...with the recorded task spans (same clock reads, by construction)...
  std::vector<SpanRecord> spans = tracer_.CollectTrace(report.trace_id);
  int64_t span_sum = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "relevance-task")
      span_sum += s.end_micros - s.start_micros;
  }
  EXPECT_EQ(span_sum, report.relevance_busy_micros);

  // ...and with the registry histograms.
  Histogram* tasks = metrics_.GetHistogram(
      "trac_relevance_task_micros", "Wall time of one recency-query task");
  EXPECT_EQ(tasks->Count(),
            static_cast<int64_t>(report.relevance_task_micros.size()));
  EXPECT_EQ(tasks->Sum(), report.relevance_busy_micros);
  Histogram* busy = metrics_.GetHistogram(
      "trac_relevance_busy_micros",
      "Summed task time of one report's relevance phase");
  EXPECT_EQ(busy->Count(), 1);
  EXPECT_EQ(busy->Sum(), report.relevance_busy_micros);
}

TEST_F(ReportTelemetryTest, PhaseHistogramsAndCountersPopulate) {
  RecencyReport report = RunReport(/*parallelism=*/1);
  for (const char* phase :
       {"parse_generate", "user_query", "relevance", "stats"}) {
    Histogram* h = metrics_.GetHistogram(
        "trac_report_phase_micros", "Wall time of one recency-report phase",
        {{"phase", phase}});
    EXPECT_EQ(h->Count(), 1) << phase;
  }
  Histogram* relevance_phase = metrics_.GetHistogram(
      "trac_report_phase_micros", "Wall time of one recency-report phase",
      {{"phase", "relevance"}});
  EXPECT_EQ(relevance_phase->Sum(), report.relevance_exec_micros);
  EXPECT_EQ(metrics_
                .GetCounter("trac_reports_total", "Recency reports completed")
                ->Value(),
            1);
  EXPECT_EQ(
      metrics_
          .GetCounter("trac_verify_sessions_total",
                      "Report sessions through the plan verifier",
                      {{"outcome", "ok"}})
          ->Value(),
      1);
}

TEST_F(ReportTelemetryTest, EachRunGetsItsOwnTrace) {
  RecencyReport first = RunReport(/*parallelism=*/1);
  RecencyReport second = RunReport(/*parallelism=*/1);
  EXPECT_NE(first.trace_id, second.trace_id);
  // Both traces stay addressable in the ring.
  EXPECT_FALSE(tracer_.CollectTrace(first.trace_id).empty());
  EXPECT_FALSE(tracer_.CollectTrace(second.trace_id).empty());
}

}  // namespace
}  // namespace trac
