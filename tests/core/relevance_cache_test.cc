// Unit tests for the verified relevance-result cache
// (core/relevance.h): the admission gate, hit/miss/invalidation
// accounting, the min(S0, S) validity rule, the insert race guard, the
// collision-proof cache-key comparison, and the end-to-end reporter
// integration (RecencyReportOptions::cache) where a served report is
// byte-identical to its cold run.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "core/relevance.h"
#include "exec/statement.h"
#include "ir/plan_ir.h"
#include "storage/database.h"
#include "verify/admissible.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;
using testing_util::Ts;

std::vector<SourceRecency> SomeSources() {
  return {{"m1", Ts("2006-03-15 14:20:05")},
          {"m3", Ts("2006-03-15 14:40:05")}};
}

/// A hand-rolled admissible probe over the heartbeat footprint, stamped
/// with the database's current catalog epoch.
RelevanceCache::Probe HeartbeatProbe(const Database& db, uint64_t fp,
                                     const std::string& key) {
  RelevanceCache::Probe probe;
  probe.admissible = true;
  probe.fingerprint = fp;
  probe.cache_key = key;
  probe.tables = {"heartbeat"};
  probe.catalog_epoch = db.catalog().epoch();
  return probe;
}

TEST(RelevanceCacheTest, MakeProbeCopiesTheVerdict) {
  PaperExampleDb fixture;
  auto ir = ParsePlanIr(
      "ir relevance\n"
      "node 0 scan table=heartbeat snap=3 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 merge in=0 set sorted gen cols=source_id:d\n");
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(*ir);
  ASSERT_TRUE(adm.admissible);
  const RelevanceCache::Probe probe =
      RelevanceCache::MakeProbe(fixture.db, adm);
  EXPECT_TRUE(probe.admissible);
  EXPECT_EQ(probe.fingerprint, adm.fingerprint);
  EXPECT_EQ(probe.cache_key, adm.cache_key);
  EXPECT_EQ(probe.tables, adm.deps.tables);
  EXPECT_EQ(probe.catalog_epoch, fixture.db.catalog().epoch());
}

TEST(RelevanceCacheTest, InadmissibleProbeNeverCaches) {
  PaperExampleDb fixture;
  RelevanceCache cache;
  RelevanceCache::Probe probe = HeartbeatProbe(fixture.db, 1, "k");
  probe.admissible = false;
  const Snapshot snapshot = fixture.db.LatestSnapshot();
  EXPECT_FALSE(cache.Insert(fixture.db, probe, snapshot, SomeSources()));
  EXPECT_FALSE(cache.Lookup(fixture.db, probe, snapshot).has_value());
  const RelevanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 1u);
  EXPECT_EQ(stats.inadmissible, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(RelevanceCacheTest, InsertThenHitThenInvalidateOnMutation) {
  PaperExampleDb fixture;
  RelevanceCache cache;
  const RelevanceCache::Probe probe = HeartbeatProbe(fixture.db, 1, "k");
  const Snapshot s0 = fixture.db.LatestSnapshot();
  ASSERT_TRUE(cache.Insert(fixture.db, probe, s0, SomeSources()));
  EXPECT_EQ(cache.stats().entries, 1u);

  auto hit = cache.Lookup(fixture.db, probe, fixture.db.LatestSnapshot());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, SomeSources());

  // A heartbeat arrival marks the table mutated past s0: the next
  // lookup must evict (one invalidation) and miss.
  TRAC_ASSERT_OK(fixture.heartbeat->SetRecency("m1", Ts("2006-03-15 15:00:00")));
  auto stale = cache.Lookup(fixture.db, probe, fixture.db.LatestSnapshot());
  EXPECT_FALSE(stale.has_value());

  const RelevanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.inadmissible, stats.lookups);
}

TEST(RelevanceCacheTest, OlderSnapshotCannotBeServedNewerData) {
  // The min(S0, S) rule: an entry computed *after* a mutation must not
  // serve a lookup whose snapshot predates that mutation.
  PaperExampleDb fixture;
  RelevanceCache cache;
  const RelevanceCache::Probe probe = HeartbeatProbe(fixture.db, 1, "k");
  const Snapshot old_snapshot = fixture.db.LatestSnapshot();
  TRAC_ASSERT_OK(fixture.heartbeat->SetRecency("m1", Ts("2006-03-15 15:00:00")));
  const Snapshot new_snapshot = fixture.db.LatestSnapshot();
  ASSERT_TRUE(cache.Insert(fixture.db, probe, new_snapshot, SomeSources()));
  EXPECT_TRUE(cache.Lookup(fixture.db, probe, new_snapshot).has_value());
  EXPECT_FALSE(cache.Lookup(fixture.db, probe, old_snapshot).has_value());
}

TEST(RelevanceCacheTest, CatalogEpochChangeInvalidates) {
  PaperExampleDb fixture;
  RelevanceCache cache;
  const RelevanceCache::Probe probe = HeartbeatProbe(fixture.db, 1, "k");
  ASSERT_TRUE(cache.Insert(fixture.db, probe, fixture.db.LatestSnapshot(),
                           SomeSources()));
  // Any DDL bumps the structure epoch; the entry's proof is void even
  // though its footprint tables never changed.
  auto ddl = ExecuteStatement(&fixture.db, "CREATE TABLE spare (a TEXT)");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  EXPECT_FALSE(cache.Lookup(fixture.db, probe, fixture.db.LatestSnapshot())
                   .has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(RelevanceCacheTest, InsertRaceGuardDiscardsOvertakenResult) {
  PaperExampleDb fixture;
  RelevanceCache cache;
  const RelevanceCache::Probe probe = HeartbeatProbe(fixture.db, 1, "k");
  const Snapshot s0 = fixture.db.LatestSnapshot();
  // A commit lands on the footprint between execution and Insert: the
  // result may already be stale, so the cache must refuse it.
  TRAC_ASSERT_OK(fixture.heartbeat->SetRecency("m1", Ts("2006-03-15 15:00:00")));
  EXPECT_FALSE(cache.Insert(fixture.db, probe, s0, SomeSources()));
  const RelevanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_EQ(stats.insert_discards, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(RelevanceCacheTest, InsertRaceGuardDiscardsOnEpochMove) {
  PaperExampleDb fixture;
  RelevanceCache cache;
  const RelevanceCache::Probe probe = HeartbeatProbe(fixture.db, 1, "k");
  auto ddl = ExecuteStatement(&fixture.db, "CREATE TABLE spare (a TEXT)");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  EXPECT_FALSE(cache.Insert(fixture.db, probe, fixture.db.LatestSnapshot(),
                            SomeSources()));
  EXPECT_EQ(cache.stats().insert_discards, 1u);
}

TEST(RelevanceCacheTest, FingerprintCollisionCannotAliasEntries) {
  PaperExampleDb fixture;
  RelevanceCache cache;
  // Two different plans colliding on the same 64-bit bucket: the full
  // cache-key comparison keeps them apart. First-wins on insert; the
  // loser's lookups are misses, never the incumbent's payload.
  const RelevanceCache::Probe a = HeartbeatProbe(fixture.db, 42, "plan-a");
  const RelevanceCache::Probe b = HeartbeatProbe(fixture.db, 42, "plan-b");
  const Snapshot snapshot = fixture.db.LatestSnapshot();
  ASSERT_TRUE(cache.Insert(fixture.db, a, snapshot, SomeSources()));
  EXPECT_FALSE(cache.Insert(fixture.db, b, snapshot, {}));
  EXPECT_EQ(cache.stats().insert_discards, 1u);
  EXPECT_TRUE(cache.Lookup(fixture.db, a, snapshot).has_value());
  EXPECT_FALSE(cache.Lookup(fixture.db, b, snapshot).has_value());
  const RelevanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(RelevanceCacheTest, ClearDropsEntriesWithoutCounting) {
  PaperExampleDb fixture;
  RelevanceCache cache;
  const RelevanceCache::Probe probe = HeartbeatProbe(fixture.db, 1, "k");
  ASSERT_TRUE(cache.Insert(fixture.db, probe, fixture.db.LatestSnapshot(),
                           SomeSources()));
  cache.Clear();
  const RelevanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.lookups, 0u);
}

TEST(RelevanceCacheTest, ReporterServesSecondRunFromCache) {
  PaperExampleDb fixture;
  RelevanceCache cache;
  RecencyReporter reporter(&fixture.db, nullptr);
  RecencyReportOptions options;
  options.create_temp_tables = false;
  options.cache = &cache;
  const std::string sql = "SELECT * FROM activity WHERE value = 'idle'";

  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport cold, reporter.Run(sql, options));
  EXPECT_FALSE(cold.relevance_from_cache);
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport warm, reporter.Run(sql, options));
  EXPECT_TRUE(warm.relevance_from_cache);

  // The served report is byte-identical where it matters: sources,
  // stats partition, and notices.
  EXPECT_EQ(warm.relevance.sources, cold.relevance.sources);
  EXPECT_EQ(warm.FormatNotices(), cold.FormatNotices());

  // A heartbeat arrival invalidates; the third run recomputes and
  // reflects the new recency.
  TRAC_ASSERT_OK(fixture.heartbeat->SetRecency("m1", Ts("2006-03-15 15:00:00")));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport fresh, reporter.Run(sql, options));
  EXPECT_FALSE(fresh.relevance_from_cache);
  EXPECT_NE(fresh.relevance.sources, cold.relevance.sources);

  const RelevanceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.hits + stats.misses + stats.inadmissible, stats.lookups);
}

TEST(RelevanceCacheTest, NaiveAndFocusedPlansKeySeparateEntriesOrShare) {
  // Different user queries key different relevance plans; the cache must
  // never serve one query's sources for another unless the canonical
  // plans are identical (in which case sharing is exactly right).
  PaperExampleDb fixture;
  RelevanceCache cache;
  RecencyReporter reporter(&fixture.db, nullptr);
  RecencyReportOptions options;
  options.create_temp_tables = false;
  options.cache = &cache;

  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport idle,
      reporter.Run("SELECT * FROM activity WHERE mach_id = 'm1'", options));
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport all, reporter.Run("SELECT * FROM activity", options));
  EXPECT_FALSE(idle.relevance_from_cache);
  // Whatever the second lookup resolved to, its sources must equal a
  // cold recomputation (checked via a cache-free run).
  RecencyReportOptions cold_options = options;
  cold_options.cache = nullptr;
  TRAC_ASSERT_OK_AND_ASSIGN(
      RecencyReport cold,
      reporter.Run("SELECT * FROM activity", cold_options));
  EXPECT_EQ(all.relevance.sources, cold.relevance.sources);
}

}  // namespace
}  // namespace trac
