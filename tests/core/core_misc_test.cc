// Heartbeat table, session temp tables, and brute-force ground truth.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/brute_force.h"
#include "core/session.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;
using testing_util::Ts;

TEST(HeartbeatTest, CreateAndOpen) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(HeartbeatTable hb, HeartbeatTable::Create(&db));
  EXPECT_EQ(hb.name(), "heartbeat");
  TRAC_ASSERT_OK_AND_ASSIGN(HeartbeatTable again, HeartbeatTable::Open(&db));
  EXPECT_EQ(again.table_id(), hb.table_id());
  // Creating twice fails; opening a non-heartbeat table fails.
  EXPECT_FALSE(HeartbeatTable::Create(&db).ok());
  TableSchema other("other", {ColumnDef("x", TypeId::kInt64)});
  ASSERT_TRUE(db.CreateTable(std::move(other)).ok());
  EXPECT_FALSE(HeartbeatTable::Open(&db, "other").ok());
}

TEST(HeartbeatTest, ReportHeartbeatIsMonotonic) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(HeartbeatTable hb, HeartbeatTable::Create(&db));
  TRAC_ASSERT_OK(hb.ReportHeartbeat("s1", Ts("2006-03-15 14:00:00")));
  TRAC_ASSERT_OK(hb.ReportHeartbeat("s1", Ts("2006-03-15 15:00:00")));
  // Late-arriving older heartbeat does not regress the recency.
  TRAC_ASSERT_OK(hb.ReportHeartbeat("s1", Ts("2006-03-15 13:00:00")));
  TRAC_ASSERT_OK_AND_ASSIGN(Timestamp ts,
                            hb.Get("s1", db.LatestSnapshot()));
  EXPECT_EQ(ts, Ts("2006-03-15 15:00:00"));
  EXPECT_EQ(hb.NumSources(db.LatestSnapshot()), 1u);
}

TEST(HeartbeatTest, SetRecencyOverwrites) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(HeartbeatTable hb, HeartbeatTable::Create(&db));
  TRAC_ASSERT_OK(hb.SetRecency("s1", Ts("2006-03-15 14:00:00")));
  TRAC_ASSERT_OK(hb.SetRecency("s1", Ts("2006-03-15 13:00:00")));
  TRAC_ASSERT_OK_AND_ASSIGN(Timestamp ts, hb.Get("s1", db.LatestSnapshot()));
  EXPECT_EQ(ts, Ts("2006-03-15 13:00:00"));
}

TEST(HeartbeatTest, GetAllSortedAndSnapshotted) {
  Database db;
  TRAC_ASSERT_OK_AND_ASSIGN(HeartbeatTable hb, HeartbeatTable::Create(&db));
  TRAC_ASSERT_OK(hb.SetRecency("b", Ts("2006-03-15 14:00:00")));
  Snapshot before = db.LatestSnapshot();
  TRAC_ASSERT_OK(hb.SetRecency("a", Ts("2006-03-15 15:00:00")));
  auto all = hb.GetAll(db.LatestSnapshot());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[1].first, "b");
  EXPECT_EQ(hb.GetAll(before).size(), 1u);
  EXPECT_FALSE(hb.Get("zzz", db.LatestSnapshot()).ok());
}

TEST(SessionTest, TempTablesDroppedAtSessionEnd) {
  Database db;
  std::string name;
  {
    Session session(&db);
    TRAC_ASSERT_OK_AND_ASSIGN(
        name, session.CreateTempTable(
                  "sys_temp_a", {ColumnDef("sid", TypeId::kString)},
                  {{Value::Str("m1")}, {Value::Str("m2")}}));
    EXPECT_TRUE(db.FindTable(name).ok());
    TRAC_ASSERT_OK_AND_ASSIGN(ResultSet rs,
                              ExecuteSql(db, "SELECT * FROM " + name));
    EXPECT_EQ(rs.num_rows(), 2u);
  }
  EXPECT_FALSE(db.FindTable(name).ok());
}

TEST(SessionTest, NamesAreUnique) {
  Database db;
  Session session(&db);
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::string a,
      session.CreateTempTable("sys_temp_a",
                              {ColumnDef("sid", TypeId::kString)}, {}));
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::string b,
      session.CreateTempTable("sys_temp_a",
                              {ColumnDef("sid", TypeId::kString)}, {}));
  EXPECT_NE(a, b);
}

TEST(SessionTest, MaterializeSurvivesSession) {
  Database db;
  {
    Session session(&db);
    TRAC_ASSERT_OK_AND_ASSIGN(
        std::string name,
        session.CreateTempTable("sys_temp_a",
                                {ColumnDef("sid", TypeId::kString)},
                                {{Value::Str("m1")}}));
    TRAC_ASSERT_OK(session.Materialize(name, "kept"));
    EXPECT_FALSE(db.FindTable(name).ok());  // Renamed away.
  }
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteSql(db, "SELECT * FROM kept"));
  EXPECT_EQ(rs.num_rows(), 1u);
}

TEST(SessionTest, DropTempTableExplicitly) {
  Database db;
  Session session(&db);
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::string name,
      session.CreateTempTable("sys_temp_e",
                              {ColumnDef("sid", TypeId::kString)}, {}));
  TRAC_ASSERT_OK(session.DropTempTable(name));
  EXPECT_FALSE(db.FindTable(name).ok());
  EXPECT_EQ(session.DropTempTable(name).code(), StatusCode::kNotFound);
}

TEST(BruteForceTest, RequiresFiniteDomains) {
  PaperExampleDb fixture(/*finite_domains=*/false);
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db, "SELECT mach_id FROM activity WHERE value = "
                          "'idle'"));
  auto r = BruteForceRelevantSources(fixture.db, q, fixture.db.LatestSnapshot());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(BruteForceTest, SingleRelationDefinitionOne) {
  PaperExampleDb fixture;
  // Definition 1: sources relevant via *potential* tuples, regardless of
  // table contents — m7 has no Activity rows but could insert one.
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT mach_id FROM activity WHERE mach_id = 'm7' AND "
              "value = 'busy'"));
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::vector<std::string> truth,
      BruteForceRelevantSources(fixture.db, q, fixture.db.LatestSnapshot()));
  EXPECT_EQ(truth, (std::vector<std::string>{"m7"}));
}

TEST(BruteForceTest, MultiRelationUsesExistingTuplesForOthers) {
  PaperExampleDb fixture;
  // Via routing: needs an existing activity tuple. Only m1/m2/m3 have
  // activity rows; the join requires neighbor = that row's mach_id and
  // value = 'busy' (only m2's row). Any potential routing tuple with
  // neighbor = 'm2' works, so every source is relevant via routing.
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT r.mach_id FROM routing r, activity a WHERE "
              "r.neighbor = a.mach_id AND a.value = 'busy'"));
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::vector<std::string> truth,
      BruteForceRelevantSources(fixture.db, q, fixture.db.LatestSnapshot()));
  EXPECT_EQ(truth.size(), 11u);
}

TEST(BruteForceTest, AssignmentBudgetEnforced) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db, "SELECT mach_id FROM activity WHERE value = "
                          "'left-early'"));
  BruteForceOptions tiny;
  tiny.max_assignments = 3;
  auto r = BruteForceRelevantSources(fixture.db, q,
                                     fixture.db.LatestSnapshot(), tiny);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(BruteForceTest, EmptyOtherRelationMeansNothingViaSelf) {
  PaperExampleDb fixture;
  // Delete all routing rows: relevance via activity requires an existing
  // routing tuple, so only routing-side relevance remains.
  TRAC_ASSERT_OK(
      fixture.db.DeleteWhere("routing", [](const Row&) { return true; })
          .status());
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT r.mach_id FROM routing r, activity a WHERE "
              "r.neighbor = a.mach_id AND a.value = 'idle'"));
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::vector<std::string> truth,
      BruteForceRelevantSources(fixture.db, q, fixture.db.LatestSnapshot()));
  // Via routing: existing activity 'idle' rows exist (m1, m3), so any
  // source could insert a joining routing tuple -> all 11. Via activity:
  // routing is empty -> nothing.
  EXPECT_EQ(truth.size(), 11u);
}

}  // namespace
}  // namespace trac
