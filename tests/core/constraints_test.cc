// Section 3.4's predicate-form schema constraints: Q' = Q ∧ C. The
// paper's closing observation in Section 4.1.2 — "this particular
// scenario would not occur if we had an explicit constraint on the
// Routing table that a machine can't have itself as a neighbor" — is
// reproduced here.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/brute_force.h"
#include "core/relevance.h"
#include "expr/constraints.h"
#include "monitor/grid.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;
using testing_util::Ts;

TEST(ConstraintsTest, BindAndCheckRows) {
  Database db;
  TableSchema schema("t", {ColumnDef("a", TypeId::kInt64),
                           ColumnDef("b", TypeId::kInt64)});
  schema.AddCheckConstraint("a < b");
  schema.AddCheckConstraint("a >= 0");
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));

  TRAC_ASSERT_OK_AND_ASSIGN(std::vector<BoundExprPtr> bound,
                            BindCheckConstraints(db, id));
  EXPECT_EQ(bound.size(), 2u);

  TRAC_EXPECT_OK(CheckRowConstraints(db, id, {Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(
      CheckRowConstraints(db, id, {Value::Int(3), Value::Int(2)}).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      CheckRowConstraints(db, id, {Value::Int(-1), Value::Int(2)}).code(),
      StatusCode::kInvalidArgument);
  // SQL CHECK semantics: NULL passes.
  TRAC_EXPECT_OK(
      CheckRowConstraints(db, id, {Value::Null(), Value::Int(2)}));
}

TEST(ConstraintsTest, MalformedConstraintSurfacesAtBind) {
  Database db;
  TableSchema schema("t", {ColumnDef("a", TypeId::kInt64)});
  schema.AddCheckConstraint("zz = 1");  // No such column.
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));
  EXPECT_FALSE(BindCheckConstraints(db, id).ok());
  EXPECT_FALSE(CheckRowConstraints(db, id, {Value::Int(1)}).ok());
}

/// Fixture with the paper's no-self-neighbor constraint on Routing.
class ConstrainedRoutingDb : public PaperExampleDb {
 public:
  ConstrainedRoutingDb() : PaperExampleDb(/*finite_domains=*/true) {
    TableId routing = *db.FindTable("routing");
    db.catalog().mutable_schema(routing).AddCheckConstraint(
        "mach_id <> neighbor");
  }
};

TEST(ConstraintsTest, ConstraintShrinksRelevantSet) {
  // WHERE mach_id = neighbor contradicts the constraint: with Q' = Q ∧ C
  // unsatisfiable, S(Q) = ∅ (Corollary 2 applied to Q').
  ConstrainedRoutingDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db, "SELECT mach_id FROM routing WHERE mach_id = "
                          "neighbor"));
  Snapshot snap = fixture.db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(RelevanceResult rel,
                            ComputeRelevantSources(fixture.db, q, snap));
  EXPECT_TRUE(rel.sources.empty());
  // Brute force agrees: no legal potential tuple satisfies the query.
  TRAC_ASSERT_OK_AND_ASSIGN(std::vector<std::string> truth,
                            BruteForceRelevantSources(fixture.db, q, snap));
  EXPECT_TRUE(truth.empty());
}

TEST(ConstraintsTest, UnconstrainedSameQueryReportsSources) {
  // Control: without the constraint the same query keeps every source
  // relevant (any machine could claim itself as neighbor).
  PaperExampleDb fixture(/*finite_domains=*/true);
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db, "SELECT mach_id FROM routing WHERE mach_id = "
                          "neighbor"));
  TRAC_ASSERT_OK_AND_ASSIGN(
      RelevanceResult rel,
      ComputeRelevantSources(fixture.db, q, fixture.db.LatestSnapshot()));
  EXPECT_EQ(rel.sources.size(), 11u);
}

TEST(ConstraintsTest, ConstraintDoesNotAffectUnrelatedQueries) {
  ConstrainedRoutingDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT mach_id FROM routing WHERE mach_id IN ('m1','m2')"));
  Snapshot snap = fixture.db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(RelevanceResult rel,
                            ComputeRelevantSources(fixture.db, q, snap));
  EXPECT_EQ(rel.SourceIds(), (std::vector<std::string>{"m1", "m2"}));
  TRAC_ASSERT_OK_AND_ASSIGN(std::vector<std::string> truth,
                            BruteForceRelevantSources(fixture.db, q, snap));
  EXPECT_EQ(rel.SourceIds(), truth);
}

TEST(ConstraintsTest, CompletenessStillHoldsUnderConstraints) {
  // The constrained Q' analysis must remain complete w.r.t. the
  // constrained ground truth on a query where the constraint interacts
  // with the join.
  ConstrainedRoutingDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT r.mach_id FROM routing r, activity a WHERE "
              "r.neighbor = a.mach_id AND a.value = 'busy'"));
  Snapshot snap = fixture.db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(RelevanceResult rel,
                            ComputeRelevantSources(fixture.db, q, snap));
  TRAC_ASSERT_OK_AND_ASSIGN(std::vector<std::string> truth,
                            BruteForceRelevantSources(fixture.db, q, snap));
  std::vector<std::string> reported = rel.SourceIds();
  for (const std::string& s : truth) {
    EXPECT_NE(std::find(reported.begin(), reported.end(), s), reported.end())
        << s;
  }
  // The constraint makes m2 (the only busy machine) unable to be its own
  // neighbor: m2 is NOT relevant via routing any more, but every other
  // machine is.
  EXPECT_EQ(truth.size(), 10u);
  EXPECT_EQ(std::find(truth.begin(), truth.end(), "m2"), truth.end());
}

TEST(ConstraintsTest, SnifferRejectsConstraintViolatingRows) {
  Database db;
  auto grid = GridSimulator::Create(&db);
  ASSERT_TRUE(grid.ok());
  grid->clock().AdvanceTo(Ts("2006-03-15 09:00:00"));
  TableSchema schema("routing2", {ColumnDef("mach_id", TypeId::kString),
                                  ColumnDef("neighbor", TypeId::kString)});
  TRAC_ASSERT_OK(schema.SetDataSourceColumn("mach_id"));
  schema.AddCheckConstraint("mach_id <> neighbor");
  TRAC_ASSERT_OK(db.CreateTable(std::move(schema)).status());
  TRAC_ASSERT_OK_AND_ASSIGN(DataSource * src, grid->AddSource("m1"));
  src->EmitInsert(Ts("2006-03-15 09:00:01"), "routing2",
                  {Value::Str("m1"), Value::Str("m1")});
  EXPECT_FALSE(grid->RunUntil(Ts("2006-03-15 09:01:00")).ok());
}

}  // namespace
}  // namespace trac
