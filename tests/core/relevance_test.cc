#include "core/relevance.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/brute_force.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

std::vector<std::string> Relevant(PaperExampleDb& fixture,
                                  const std::string& sql,
                                  bool* minimal = nullptr) {
  auto q = BindSql(fixture.db, sql);
  EXPECT_TRUE(q.ok()) << q.status();
  auto r = ComputeRelevantSources(fixture.db, *q,
                                  fixture.db.LatestSnapshot());
  EXPECT_TRUE(r.ok()) << r.status();
  if (minimal != nullptr) *minimal = r->minimal;
  return r->SourceIds();
}

// Section 4.1.1 example: Q1 over Activity. Theorem 3 applies, the
// relevant set is exactly the IN list.
TEST(RelevanceTest, PaperQ1SingleRelationMinimal) {
  PaperExampleDb fixture;
  bool minimal = false;
  auto ids = Relevant(fixture,
                      "SELECT mach_id FROM Activity WHERE mach_id IN "
                      "('m1', 'm2') AND value = 'idle'",
                      &minimal);
  EXPECT_EQ(ids, (std::vector<std::string>{"m1", "m2"}));
  EXPECT_TRUE(minimal);
}

// No data-source predicate: every source could contribute. S(Q) = all.
TEST(RelevanceTest, NonSelectiveQueryAllSourcesRelevant) {
  PaperExampleDb fixture;
  bool minimal = false;
  auto ids = Relevant(fixture,
                      "SELECT mach_id FROM Activity WHERE value = 'idle'",
                      &minimal);
  EXPECT_EQ(ids.size(), 11u);
  EXPECT_TRUE(minimal);
}

// Section 4.1.2 example: Q2 over Routing x Activity.
// S(Q2, Routing) = {m1} (upper bound via Corollary 5, because of the
// regular-column join predicate), S(Q2, Activity) = {m3} (Theorem 4).
TEST(RelevanceTest, PaperQ2JoinUnionOfParts) {
  PaperExampleDb fixture;
  bool minimal = false;
  auto ids = Relevant(fixture,
                      "SELECT A.mach_id FROM Routing R, Activity A "
                      "WHERE R.mach_id = 'm1' AND A.value = 'idle' "
                      "AND R.neighbor = A.mach_id",
                      &minimal);
  EXPECT_EQ(ids, (std::vector<std::string>{"m1", "m3"}));
  // The Jrm predicate costs the minimality *guarantee* even though the
  // answer happens to be minimal on this instance.
  EXPECT_FALSE(minimal);
}

// The brute-force ground truth agrees with the Focused answer on the
// paper's examples (both queries have fpr = 0 here).
TEST(RelevanceTest, MatchesBruteForceOnPaperExamples) {
  PaperExampleDb fixture;
  for (const char* sql :
       {"SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND "
        "value = 'idle'",
        "SELECT A.mach_id FROM Routing R, Activity A WHERE R.mach_id = 'm1' "
        "AND A.value = 'idle' AND R.neighbor = A.mach_id"}) {
    TRAC_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindSql(fixture.db, sql));
    Snapshot snap = fixture.db.LatestSnapshot();
    TRAC_ASSERT_OK_AND_ASSIGN(RelevanceResult focused,
                              ComputeRelevantSources(fixture.db, q, snap));
    TRAC_ASSERT_OK_AND_ASSIGN(
        std::vector<std::string> truth,
        BruteForceRelevantSources(fixture.db, q, snap));
    EXPECT_EQ(focused.SourceIds(), truth) << sql;
  }
}

// Unsatisfiable predicates => empty relevant set (Corollary 2).
TEST(RelevanceTest, UnsatisfiablePredicateYieldsEmptySet) {
  PaperExampleDb fixture;
  bool minimal = false;
  auto ids = Relevant(fixture,
                      "SELECT mach_id FROM Activity WHERE value = 'idle' "
                      "AND value = 'busy'",
                      &minimal);
  EXPECT_TRUE(ids.empty());
}

// A value outside the declared finite domain is unsatisfiable.
TEST(RelevanceTest, OutOfDomainPredicateYieldsEmptySet) {
  PaperExampleDb fixture;
  auto ids = Relevant(
      fixture, "SELECT mach_id FROM Activity WHERE value = 'left-early'");
  EXPECT_TRUE(ids.empty());
}

// WHERE FALSE is unsatisfiable.
TEST(RelevanceTest, ConstantFalseYieldsEmptySet) {
  PaperExampleDb fixture;
  auto ids = Relevant(fixture, "SELECT mach_id FROM Activity WHERE FALSE");
  EXPECT_TRUE(ids.empty());
}

// Mixed predicate (data source column compared to a regular column):
// completeness holds but the minimality guarantee is lost (Corollary 3).
TEST(RelevanceTest, MixedPredicateLosesMinimalityButStaysComplete) {
  PaperExampleDb fixture;
  bool minimal = true;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT mach_id FROM Routing WHERE mach_id = neighbor"));
  Snapshot snap = fixture.db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(RelevanceResult focused,
                            ComputeRelevantSources(fixture.db, q, snap));
  minimal = focused.minimal;
  EXPECT_FALSE(minimal);
  TRAC_ASSERT_OK_AND_ASSIGN(std::vector<std::string> truth,
                            BruteForceRelevantSources(fixture.db, q, snap));
  // Completeness: A(Q) must contain S(Q).
  for (const std::string& s : truth) {
    EXPECT_NE(std::find(focused.SourceIds().begin(),
                        focused.SourceIds().end(), s),
              focused.SourceIds().end())
        << s;
  }
}

// DNF distribution: OR of source predicates unions the relevant sets
// (Corollary 1).
TEST(RelevanceTest, DisjunctionUnionsRelevantSets) {
  PaperExampleDb fixture;
  bool minimal = false;
  auto ids = Relevant(fixture,
                      "SELECT mach_id FROM Activity WHERE "
                      "(mach_id = 'm1' AND value = 'idle') OR "
                      "(mach_id = 'm5' AND value = 'busy')",
                      &minimal);
  EXPECT_EQ(ids, (std::vector<std::string>{"m1", "m5"}));
  EXPECT_TRUE(minimal);
}

// NOT over a source predicate: relevant set is the complement within
// the (finite) source domain.
TEST(RelevanceTest, NegatedSourcePredicate) {
  PaperExampleDb fixture;
  auto ids = Relevant(
      fixture, "SELECT mach_id FROM Activity WHERE NOT mach_id = 'm1'");
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(std::find(ids.begin(), ids.end(), "m1"), ids.end());
}

// A query with no WHERE clause: every source is relevant (any update
// could add a row).
TEST(RelevanceTest, NoPredicateAllRelevant) {
  PaperExampleDb fixture;
  bool minimal = false;
  auto ids = Relevant(fixture, "SELECT mach_id FROM Activity", &minimal);
  EXPECT_EQ(ids.size(), 11u);
  EXPECT_TRUE(minimal);
}

// Multi-relation query with an empty "other" relation: nothing can be
// relevant via the non-empty one (Definition 2 needs existing tuples).
TEST(RelevanceTest, EmptyJoinPartnerBlocksRelevanceViaOtherRelation) {
  PaperExampleDb fixture;
  TableSchema schema("empty_tbl",
                     {ColumnDef("mach_id", TypeId::kString),
                      ColumnDef("x", TypeId::kInt64)});
  TRAC_ASSERT_OK(schema.SetDataSourceColumn("mach_id"));
  TRAC_ASSERT_OK(fixture.db.CreateTable(std::move(schema)).status());

  bool minimal = false;
  auto ids = Relevant(fixture,
                      "SELECT A.mach_id FROM Activity A, empty_tbl E "
                      "WHERE A.mach_id = 'm1' AND E.x = 1",
                      &minimal);
  // Via Activity: requires an existing empty_tbl row with x=1 -> none.
  // Via empty_tbl: requires an existing Activity row (there are some)
  // and a potential E tuple with x=1 -> every source.
  EXPECT_EQ(ids.size(), 11u);
}

// The generated recency SQL matches the Theorem 3 construction.
TEST(RelevanceTest, GeneratedSqlShape) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT mach_id FROM Activity WHERE mach_id IN ('m1','m2') "
              "AND value = 'idle'"));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyQueryPlan plan,
                            GenerateRecencyQueries(fixture.db, q));
  ASSERT_EQ(plan.parts.size(), 1u);
  EXPECT_TRUE(plan.minimal);
  EXPECT_NE(plan.parts[0].sql.find("heartbeat"), std::string::npos)
      << plan.parts[0].sql;
  EXPECT_NE(plan.parts[0].sql.find("IN ('m1', 'm2')"), std::string::npos)
      << plan.parts[0].sql;
  // The regular-column predicate must NOT appear (it was dropped, not
  // rewritten).
  EXPECT_EQ(plan.parts[0].sql.find("idle"), std::string::npos)
      << plan.parts[0].sql;
}

// The Naive plan reports every source.
TEST(RelevanceTest, NaivePlanReportsEverything) {
  PaperExampleDb fixture;
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyQueryPlan plan,
                            GenerateNaivePlan(fixture.db));
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::vector<SourceRecency> sources,
      ExecuteRecencyQueries(fixture.db, plan, fixture.db.LatestSnapshot()));
  EXPECT_EQ(sources.size(), 11u);
  EXPECT_FALSE(plan.minimal);
}

}  // namespace
}  // namespace trac
