// Extensions around the core reporting loop: percentile statistics,
// auto-heartbeats, the DNF-blow-up fallback, EXISTS guards, and the
// exceptional-source workload knob.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "monitor/grid.h"
#include "workload/eval_workload.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;
using testing_util::Ts;

TEST(PercentileTest, NearestRankDefinition) {
  std::vector<SourceRecency> sources;
  for (int i = 1; i <= 10; ++i) {
    sources.push_back(
        SourceRecency{"s" + std::to_string(i), Timestamp(i * 100)});
  }
  RecencyStatsOptions options;
  options.percentiles = {0.5, 0.9, 1.0, 0.05};
  RecencyStats stats = ComputeRecencyStats(std::move(sources), options);
  ASSERT_EQ(stats.percentile_recencies.size(), 4u);
  EXPECT_EQ(stats.percentile_recencies[0].second, Timestamp(500));   // P50.
  EXPECT_EQ(stats.percentile_recencies[1].second, Timestamp(900));   // P90.
  EXPECT_EQ(stats.percentile_recencies[2].second, Timestamp(1000));  // P100.
  EXPECT_EQ(stats.percentile_recencies[3].second, Timestamp(100));   // P5.
}

TEST(PercentileTest, ComputedOverNormalSourcesOnly) {
  std::vector<SourceRecency> sources;
  Timestamp base = Ts("2006-03-15 14:20:05");
  for (int i = 0; i < 20; ++i) {
    sources.push_back(SourceRecency{"s" + std::to_string(i), base});
  }
  sources.push_back(
      SourceRecency{"dead", base - 300 * Timestamp::kMicrosPerDay});
  RecencyStatsOptions options;
  options.percentiles = {0.05};
  RecencyStats stats = ComputeRecencyStats(std::move(sources), options);
  ASSERT_EQ(stats.exceptional.size(), 1u);
  ASSERT_EQ(stats.percentile_recencies.size(), 1u);
  // P5 over the normal sources, not dragged down by the dead one.
  EXPECT_EQ(stats.percentile_recencies[0].second, base);
}

TEST(PercentileTest, InvalidAndEmptyInputs) {
  RecencyStatsOptions options;
  options.percentiles = {-0.5, 0.0, 1.5};
  RecencyStats empty = ComputeRecencyStats({}, options);
  EXPECT_TRUE(empty.percentile_recencies.empty());
  RecencyStats one = ComputeRecencyStats(
      {SourceRecency{"a", Timestamp(5)}}, options);
  EXPECT_TRUE(one.percentile_recencies.empty());  // All out of range.
}

TEST(AutoHeartbeatTest, IdleSourceStaysRecent) {
  Database db;
  auto grid = GridSimulator::Create(&db);
  ASSERT_TRUE(grid.ok());
  grid->clock().AdvanceTo(Ts("2006-03-15 09:00:00"));
  SnifferOptions fast;
  fast.poll_interval_micros = 30 * Timestamp::kMicrosPerSecond;
  TRAC_ASSERT_OK(grid->AddSource("quiet", fast).status());
  TRAC_ASSERT_OK(grid->AddSource("silent", fast).status());
  // Section 3.1: only the heartbeat-enabled source advances its recency
  // while idle.
  TRAC_ASSERT_OK(grid->EnableAutoHeartbeat(
      "quiet", 2 * Timestamp::kMicrosPerMinute));
  TRAC_ASSERT_OK(grid->RunUntil(Ts("2006-03-15 09:30:00")));

  Snapshot snap = db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(Timestamp quiet,
                            grid->heartbeat().Get("quiet", snap));
  TRAC_ASSERT_OK_AND_ASSIGN(Timestamp silent,
                            grid->heartbeat().Get("silent", snap));
  EXPECT_GE(quiet, Ts("2006-03-15 09:27:00"));
  EXPECT_EQ(silent, Ts("2006-03-15 09:00:00"));  // Registration time.
  EXPECT_EQ(grid->EnableAutoHeartbeat("zz", 1).code(),
            StatusCode::kNotFound);
  // Disabling stops the advance.
  TRAC_ASSERT_OK(grid->EnableAutoHeartbeat("quiet", 0));
  TRAC_ASSERT_OK(grid->RunUntil(Ts("2006-03-15 10:30:00")));
  TRAC_ASSERT_OK_AND_ASSIGN(Timestamp later,
                            grid->heartbeat().Get("quiet",
                                                  db.LatestSnapshot()));
  EXPECT_LE(later, Ts("2006-03-15 09:30:00"));
}

TEST(FallbackTest, DnfBlowUpFallsBackToAllSourcesComplete) {
  PaperExampleDb fixture(/*finite_domains=*/false);
  // 13 conjoined two-way ORs: 8192 conjuncts > the 4096 default guard.
  std::string pred;
  for (int i = 0; i < 13; ++i) {
    if (i) pred += " AND ";
    pred += "(mach_id = 'm1' OR value = 'v" + std::to_string(i) + "')";
  }
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db, "SELECT mach_id FROM activity WHERE " + pred));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyQueryPlan plan,
                            GenerateRecencyQueries(fixture.db, q));
  EXPECT_TRUE(plan.fallback_all);
  EXPECT_FALSE(plan.minimal);
  ASSERT_FALSE(plan.notes.empty());
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::vector<SourceRecency> sources,
      ExecuteRecencyQueries(fixture.db, plan, fixture.db.LatestSnapshot()));
  EXPECT_EQ(sources.size(), 11u);  // Complete: everything reported.
}

TEST(GuardTest, DisconnectedRelationBecomesExistsGuard) {
  PaperExampleDb fixture(/*finite_domains=*/false);
  // Q4 shape: via routing, activity is not predicate-connected to the
  // Heartbeat slot, so it must appear as a guard, not a cross product.
  TRAC_ASSERT_OK_AND_ASSIGN(
      BoundQuery q,
      BindSql(fixture.db,
              "SELECT COUNT(*) FROM routing r, activity a WHERE "
              "r.neighbor = a.mach_id AND a.value = 'idle'"));
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyQueryPlan plan,
                            GenerateRecencyQueries(fixture.db, q));
  bool found_guarded_part = false;
  for (const auto& part : plan.parts) {
    if (!part.guards.empty()) {
      found_guarded_part = true;
      EXPECT_EQ(part.query.relations.size(), 1u);  // Heartbeat alone.
      EXPECT_NE(part.sql.find("EXISTS"), std::string::npos) << part.sql;
    }
  }
  EXPECT_TRUE(found_guarded_part);

  // With idle rows present the guard passes: all sources via routing.
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::vector<SourceRecency> sources,
      ExecuteRecencyQueries(fixture.db, plan, fixture.db.LatestSnapshot()));
  EXPECT_EQ(sources.size(), 11u);

  // Remove every idle row: the guard fails and the routing part
  // contributes nothing; only activity-side relevance remains (which
  // also needs routing rows to join, so the set shrinks drastically).
  TRAC_ASSERT_OK(fixture.db
                     .UpdateWhere(
                         "activity",
                         [](const Row& r) {
                           return !r[1].is_null() &&
                                  r[1].str_val() == "idle";
                         },
                         [](Row* r) { (*r)[1] = Value::Str("busy"); })
                     .status());
  TRAC_ASSERT_OK_AND_ASSIGN(
      std::vector<SourceRecency> after,
      ExecuteRecencyQueries(fixture.db, plan, fixture.db.LatestSnapshot()));
  // Via activity: potential idle tuples joining existing routing rows
  // with neighbor = source: neighbors are m3 only -> {m3}.
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].source, "m3");
}

TEST(WorkloadExceptionalTest, ReporterFlagsStaleSourcesAtScale) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 2000;
  options.num_sources = 200;
  options.num_exceptional_sources = 3;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  Session session(&db);
  RecencyReporter reporter(&db, &session);
  TRAC_ASSERT_OK_AND_ASSIGN(RecencyReport report, reporter.Run(w.Q2()));
  // All 200 sources relevant; exactly the 3 month-stale ones flagged.
  EXPECT_EQ(report.relevance.sources.size(), 200u);
  EXPECT_EQ(report.stats.exceptional.size(), 3u);
  for (const auto& s : report.stats.exceptional) {
    EXPECT_TRUE(s.source == "Tao1" || s.source == "Tao2" ||
                s.source == "Tao3")
        << s.source;
  }
}

}  // namespace
}  // namespace trac
