// Randomized agreement between the static guarantee analyzer and
// brute-force ground truth over finite domains: for every generated
// query the verdict's claim must hold on the actual instance.
//
//   EXACT_MINIMUM  ⇒ A(Q) == S(Q)   (Theorems 3 and 4)
//   UPPER_BOUND    ⇒ A(Q) ⊇ S(Q)    (Theorem 1, completeness)
//   EMPTY_SET      ⇒ S(Q) == ∅ == A(Q)  (Corollaries 2 and 6)
//
// 8 seeds × 25 rounds = 200 randomized queries; zero disagreements
// allowed. The standalone analyzer and the plan generator must also
// report the same verdict (they consume the same classification).

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "analysis/guarantee.h"
#include "common/random.h"
#include "core/brute_force.h"
#include "core/relevance.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

/// Random SPJ query generator over the paper schema, biased to produce
/// all three verdicts: mixed predicates, contradictions, regular joins,
/// and plain source selections all occur.
class GuaranteeQueryGenerator {
 public:
  explicit GuaranteeQueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    if (rng_.Bernoulli(0.4)) {
      return "SELECT r.mach_id FROM routing r, activity a WHERE " +
             Predicate(/*join=*/true);
    }
    return rng_.Bernoulli(0.5)
               ? "SELECT mach_id FROM activity WHERE " +
                     Predicate(false, "activity")
               : "SELECT mach_id FROM routing WHERE " +
                     Predicate(false, "routing");
  }

 private:
  std::string Machine() {
    return "'m" + std::to_string(1 + rng_.Uniform(11)) + "'";
  }
  std::string ValueLit() { return rng_.Bernoulli(0.5) ? "'idle'" : "'busy'"; }

  std::string Atom(bool join, const std::string& table) {
    if (join) {
      switch (rng_.Uniform(7)) {
        case 0:
          return "r.mach_id = " + Machine();
        case 1:
          return "a.value = " + ValueLit();
        case 2:
          return "r.neighbor = a.mach_id";
        case 3:
          return "r.mach_id = a.mach_id";
        case 4:
          // Regular-column join (J_rm); the timestamp domains coincide,
          // so the join is live (unlike neighbor = value, whose disjoint
          // domains the satisfiability check would refute).
          return "r.event_time = a.event_time";
        case 5:
          return "a.mach_id IN (" + Machine() + ", " + Machine() + ")";
        default:
          return "r.neighbor = " + Machine();
      }
    }
    if (table == "activity") {
      switch (rng_.Uniform(5)) {
        case 0:
          return "mach_id = " + Machine();
        case 1:
          return "value = " + ValueLit();
        case 2:
          return "mach_id <> " + Machine();
        case 3:
          return "value = 'offline'";  // Outside the finite domain.
        default:
          return "mach_id > " + Machine();
      }
    }
    switch (rng_.Uniform(5)) {
      case 0:
        return "mach_id = " + Machine();
      case 1:
        return "neighbor = " + Machine();
      case 2:
        return "mach_id = neighbor";  // Mixed predicate (P_m).
      case 3:
        return "neighbor IN (" + Machine() + ", " + Machine() + ")";
      default:
        return "mach_id <> " + Machine();
    }
  }

  std::string Predicate(bool join, const std::string& table = "") {
    std::function<std::string(int)> gen = [&](int depth) -> std::string {
      int pick = depth >= 2 ? 0 : static_cast<int>(rng_.Uniform(4));
      switch (pick) {
        case 1:
          return "(" + gen(depth + 1) + " AND " + gen(depth + 1) + ")";
        case 2:
          return "(" + gen(depth + 1) + " OR " + gen(depth + 1) + ")";
        case 3:
          return "NOT (" + gen(depth + 1) + ")";
        default:
          return Atom(join, table);
      }
    };
    return gen(0);
  }

  Random rng_;
};

class GuaranteePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuaranteePropertyTest, VerdictsAgreeWithBruteForceGroundTruth) {
  PaperExampleDb fixture(/*finite_domains=*/true);
  GuaranteeQueryGenerator gen(GetParam());
  Snapshot snap = fixture.db.LatestSnapshot();

  for (int round = 0; round < 25; ++round) {
    std::string sql = gen.Generate();
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " sql=" + sql);
    auto bound = BindSql(fixture.db, sql);
    ASSERT_TRUE(bound.ok()) << bound.status();

    auto report = AnalyzeRecencyGuarantee(fixture.db, *bound);
    ASSERT_TRUE(report.ok()) << report.status();

    auto focused = ComputeRelevantSources(fixture.db, *bound, snap);
    ASSERT_TRUE(focused.ok()) << focused.status();
    // The standalone analyzer and the plan path derive the verdict from
    // the same classification; they must never disagree.
    ASSERT_EQ(focused->analysis.verdict, report->verdict);

    auto truth = BruteForceRelevantSources(fixture.db, *bound, snap);
    ASSERT_TRUE(truth.ok()) << truth.status();
    std::vector<std::string> reported = focused->SourceIds();

    switch (report->verdict) {
      case RecencyGuarantee::kExactMinimum:
        EXPECT_EQ(reported, *truth) << report->Format();
        break;
      case RecencyGuarantee::kUpperBound:
        for (const std::string& s : *truth) {
          EXPECT_NE(std::find(reported.begin(), reported.end(), s),
                    reported.end())
              << "missing relevant source " << s << "\n"
              << report->Format();
        }
        break;
      case RecencyGuarantee::kEmptySet:
        EXPECT_TRUE(truth->empty()) << report->Format();
        EXPECT_TRUE(reported.empty()) << report->Format();
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuaranteePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace trac
