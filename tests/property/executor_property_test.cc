// Randomized executor correctness: every generated SPJ query is
// evaluated twice — once by the planner/executor (index scans, hash
// joins, index nested-loop joins, early exits) and once by a tiny
// reference oracle that materializes the cross product and filters with
// EvalPredicate. The results must match as multisets.

#include <algorithm>
#include <functional>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"
#include "expr/evaluator.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

/// Reference evaluation: nested loops over the cross product, no
/// planning, no indexes.
Result<std::vector<Row>> ReferenceExecute(const Database& db,
                                          const BoundQuery& q,
                                          Snapshot snap) {
  std::vector<std::vector<const Row*>> rows(q.relations.size());
  for (size_t r = 0; r < q.relations.size(); ++r) {
    const Table* table = db.GetTable(q.relations[r].table_id);
    table->Scan(snap, [&](size_t vidx, const Row&) {
      rows[r].push_back(&table->version(vidx).values);
    });
  }
  std::vector<Row> out;
  int64_t count = 0;
  std::vector<const Row*> tuple(q.relations.size(), nullptr);
  std::function<Status(size_t)> rec = [&](size_t depth) -> Status {
    if (depth == q.relations.size()) {
      bool keep = true;
      if (q.where != nullptr) {
        TRAC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*q.where, tuple));
        keep = IsTrue(v);
      }
      if (!keep) return Status::OK();
      if (q.count_star) {
        ++count;
        return Status::OK();
      }
      Row projected;
      for (const auto& oc : q.outputs) {
        projected.push_back((*tuple[oc.ref.rel])[oc.ref.col]);
      }
      out.push_back(std::move(projected));
      return Status::OK();
    }
    for (const Row* row : rows[depth]) {
      tuple[depth] = row;
      TRAC_RETURN_IF_ERROR(rec(depth + 1));
    }
    tuple[depth] = nullptr;
    return Status::OK();
  };
  TRAC_RETURN_IF_ERROR(rec(0));
  if (q.count_star) return std::vector<Row>{{Value::Int(count)}};
  if (q.distinct) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, MatchesReferenceOracle) {
  PaperExampleDb fixture(/*finite_domains=*/false);
  Random rng(GetParam());

  // Add some rows with NULLs and duplicates to stress 3VL and DISTINCT.
  TRAC_ASSERT_OK(fixture.db.Insert(
      "activity", {Value::Str("m4"), Value::Null(), Value::Null()}));
  TRAC_ASSERT_OK(fixture.db.Insert(
      "activity",
      {Value::Str("m1"), Value::Str("idle"),
       Value::Ts(Timestamp::FromSeconds(1142432405))}));
  TRAC_ASSERT_OK(fixture.db.Insert(
      "routing", {Value::Str("m5"), Value::Null(), Value::Null()}));

  auto machine = [&]() {
    return "'m" + std::to_string(1 + rng.Uniform(6)) + "'";
  };
  auto atom = [&](bool join) -> std::string {
    if (join) {
      switch (rng.Uniform(7)) {
        case 0:
          return "r.mach_id = " + machine();
        case 1:
          return "a.value = 'idle'";
        case 2:
          return "r.neighbor = a.mach_id";
        case 3:
          return "r.mach_id = a.mach_id";
        case 4:
          return "a.value IS NULL";
        case 5:
          return "r.neighbor <> a.mach_id";
        default:
          return "a.mach_id IN (" + machine() + ", " + machine() + ")";
      }
    }
    switch (rng.Uniform(7)) {
      case 0:
        return "mach_id = " + machine();
      case 1:
        return "value = 'idle'";
      case 2:
        return "value IS NOT NULL";
      case 3:
        return "mach_id IN (" + machine() + ", " + machine() + ")";
      case 4:
        return "mach_id NOT IN (" + machine() + ")";
      case 5:
        return "mach_id BETWEEN 'm1' AND 'm4'";
      default:
        return "mach_id > " + machine();
    }
  };
  std::function<std::string(bool, int)> pred = [&](bool join,
                                                   int depth) -> std::string {
    int pick = depth >= 2 ? 0 : static_cast<int>(rng.Uniform(4));
    switch (pick) {
      case 1:
        return "(" + pred(join, depth + 1) + " AND " + pred(join, depth + 1) +
               ")";
      case 2:
        return "(" + pred(join, depth + 1) + " OR " + pred(join, depth + 1) +
               ")";
      case 3:
        return "NOT (" + pred(join, depth + 1) + ")";
      default:
        return atom(join);
    }
  };

  for (int round = 0; round < 40; ++round) {
    bool join = rng.Bernoulli(0.5);
    bool count = rng.Bernoulli(0.3);
    bool distinct = !count && rng.Bernoulli(0.3);
    std::string select =
        count ? "COUNT(*)"
              : (join ? "r.mach_id, a.value" : "mach_id");
    std::string sql = std::string("SELECT ") +
                      (distinct ? "DISTINCT " : "") + select + " FROM " +
                      (join ? "routing r, activity a" : "activity") +
                      " WHERE " + pred(join, 0);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " sql=" + sql);

    auto bound = BindSql(fixture.db, sql);
    ASSERT_TRUE(bound.ok()) << bound.status();
    Snapshot snap = fixture.db.LatestSnapshot();

    auto fast = ExecuteQuery(fixture.db, *bound, snap);
    ASSERT_TRUE(fast.ok()) << fast.status();
    auto reference = ReferenceExecute(fixture.db, *bound, snap);
    ASSERT_TRUE(reference.ok()) << reference.status();

    std::vector<Row> got = fast->rows;
    std::vector<Row> want = *reference;
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST_P(ExecutorPropertyTest, LimitIsAPrefixOfTheFullResult) {
  PaperExampleDb fixture(/*finite_domains=*/false);
  Random rng(GetParam() * 13 + 5);
  for (int round = 0; round < 10; ++round) {
    std::string sql = "SELECT mach_id FROM activity WHERE mach_id <> 'm" +
                      std::to_string(1 + rng.Uniform(4)) + "'";
    auto bound = BindSql(fixture.db, sql);
    ASSERT_TRUE(bound.ok());
    Snapshot snap = fixture.db.LatestSnapshot();
    auto full = ExecuteQuery(fixture.db, *bound, snap);
    ASSERT_TRUE(full.ok());
    for (size_t limit = 1; limit <= full->num_rows() + 1; ++limit) {
      auto limited =
          ExecuteQueryWithLimit(fixture.db, *bound, snap, limit);
      ASSERT_TRUE(limited.ok());
      EXPECT_EQ(limited->num_rows(),
                std::min(limit, full->num_rows()));
    }
    auto exists = QueryHasResults(fixture.db, *bound, snap);
    ASSERT_TRUE(exists.ok());
    EXPECT_EQ(*exists, full->num_rows() > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(3, 5, 7, 9, 11, 13));

}  // namespace
}  // namespace trac
