// Property: the abstract interpreter reaches a fixpoint on every plan
// we can produce — every checked-in .ir file under examples/plans
// (including the seeded-bad corpora) and every report-session IR the
// planner builds for examples/queries at parallelism 1 and 4. On the
// clean corpus the semantic rules stay silent (no TRAC-V005..V008), and
// the V005 dominance property holds against the guarantee analyzer's
// verdict: the static staleness hull at the report node never exceeds
// the bound-of-inconsistency the NOTICE promises.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "absint/absint.h"
#include "analysis/guarantee.h"
#include "core/relevance.h"
#include "exec/planner.h"
#include "exec/statement.h"
#include "expr/binder.h"
#include "storage/database.h"
#include "verify/verifier.h"

namespace trac {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Strips full-line `-- comments` and splits on ';' outside strings.
std::vector<std::string> SqlStatements(const std::string& text) {
  std::istringstream lines(text);
  std::string stripped;
  std::string line;
  while (std::getline(lines, line)) {
    const size_t b = line.find_first_not_of(" \t\r");
    if (b != std::string::npos && line.compare(b, 2, "--") == 0) continue;
    stripped += line;
    stripped += '\n';
  }
  std::vector<std::string> stmts;
  std::string current;
  bool in_string = false;
  for (char c : stripped) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      stmts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  stmts.push_back(current);
  std::vector<std::string> nonempty;
  for (std::string& s : stmts) {
    if (s.find_first_not_of(" \t\r\n") != std::string::npos) {
      nonempty.push_back(std::move(s));
    }
  }
  return nonempty;
}

bool IsSemanticRule(VerifyCode code) {
  return code == VerifyCode::kNoticeBoundExceeded ||
         code == VerifyCode::kDeadMergeInput ||
         code == VerifyCode::kRedundantFilter ||
         code == VerifyCode::kProvenanceWidening;
}

// Every checked-in IR — clean or seeded-bad — must reach a fixpoint;
// the bad corpora violate rules, not convergence.
TEST(AbsintCorpusTest, EveryCheckedInPlanIrConverges) {
  const fs::path root = fs::path(TRAC_EXAMPLES_DIR) / "plans";
  size_t seen = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".ir") continue;
    SCOPED_TRACE(p.string());
    auto ir = ParsePlanIr(ReadFileOrDie(p));
    ASSERT_TRUE(ir.ok()) << ir.status();
    const absint::AbsintResult result = absint::AnalyzeIr(*ir);
    EXPECT_TRUE(result.converged) << result.Dump(*ir);
    ++seen;
  }
  EXPECT_GE(seen, 13u) << "the seeded-bad corpora went missing?";
}

class AbsintPropertyTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    const fs::path schema =
        fs::path(TRAC_EXAMPLES_DIR) / "plans" / "schema.sql";
    for (const std::string& stmt : SqlStatements(ReadFileOrDie(schema))) {
      auto result = ExecuteStatement(&db_, stmt);
      ASSERT_TRUE(result.ok()) << result.status() << "\n" << stmt;
    }
  }

  std::vector<fs::path> CorpusQueries() {
    std::vector<fs::path> out;
    const fs::path dir = fs::path(TRAC_EXAMPLES_DIR) / "queries";
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".sql" && p.filename().string()[0] == 'q') {
        out.push_back(p);
      }
    }
    std::sort(out.begin(), out.end());
    EXPECT_GE(out.size(), 5u) << "corpus went missing?";
    return out;
  }

  Database db_;
};

TEST_P(AbsintPropertyTest, FixpointDominanceAndCleanlinessOnCorpus) {
  const size_t parallelism = GetParam();
  for (const fs::path& qpath : CorpusQueries()) {
    SCOPED_TRACE(qpath.filename().string());
    const std::vector<std::string> stmts =
        SqlStatements(ReadFileOrDie(qpath));
    ASSERT_EQ(stmts.size(), 1u);
    auto query = BindSql(db_, stmts[0]);
    ASSERT_TRUE(query.ok()) << query.status();

    auto plan = GenerateRecencyQueries(db_, *query);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const Snapshot snapshot = db_.LatestSnapshot();
    PlanningHints hints;
    hints.guarantee = &plan->analysis;
    auto user_plan = PlanQuery(db_, *query, snapshot, hints);
    ASSERT_TRUE(user_plan.ok()) << user_plan.status();

    std::vector<QueryPlan> part_plans(plan->parts.size());
    std::vector<std::vector<QueryPlan>> guard_plans(plan->parts.size());
    ReportSessionInput input;
    input.user_query = &*query;
    input.user_plan = &*user_plan;
    input.snapshot = snapshot;
    input.session = 1;
    input.temp_writes = {"sys_temp_a1", "sys_temp_e1"};
    for (size_t i = 0; i < plan->parts.size(); ++i) {
      const RecencyQueryPlan::Part& part = plan->parts[i];
      SessionPartInput in;
      in.query = &part.query;
      in.shards = PlannedHeartbeatShards(db_, part, parallelism);
      if (in.shards == 1) {
        auto pp = PlanQuery(db_, part.query, snapshot);
        ASSERT_TRUE(pp.ok()) << pp.status();
        part_plans[i] = std::move(*pp);
        in.plan = &part_plans[i];
        guard_plans[i].resize(part.guards.size());
        for (size_t g = 0; g < part.guards.size(); ++g) {
          auto gp = PlanQuery(db_, part.guards[g], snapshot);
          ASSERT_TRUE(gp.ok()) << gp.status();
          guard_plans[i][g] = std::move(*gp);
          in.guard_queries.push_back(&part.guards[g]);
          in.guard_plans.push_back(&guard_plans[i][g]);
        }
      }
      input.parts.push_back(std::move(in));
    }
    LowerOptions lower;
    lower.heartbeat_table = std::string(HeartbeatTable::kDefaultName);
    const PlanIr ir = LowerReportSession(db_, input, lower);

    // 1. The fixpoint engine converges on the full session graph.
    const absint::AbsintResult result = absint::AnalyzeIr(ir);
    ASSERT_TRUE(result.converged) << ir.Dump();

    // 2. No clean plan trips a semantic rule.
    const VerifyReport report = VerifyIr(ir);
    for (const VerifyDiagnostic& d : report.diagnostics) {
      EXPECT_FALSE(IsSemanticRule(d.code)) << d.Format() << "\n" << ir.Dump();
    }
    EXPECT_TRUE(report.ok()) << report.Format(ir);

    // 3. V005 dominance against the guarantee verdict: the corpus
    // queries all earn EXACT_MINIMUM, the lowering therefore promises a
    // NOTICE bound, and the static staleness hull reaching the report
    // node must fit inside it.
    EXPECT_EQ(plan->analysis.verdict, RecencyGuarantee::kExactMinimum);
    bool saw_report = false;
    for (const IrNode& n : ir.nodes) {
      if (n.kind != IrNodeKind::kReport) continue;
      saw_report = true;
      ASSERT_TRUE(n.has_bound)
          << "registry ages are known, the report must promise a bound";
      const absint::StalenessInterval& hull = result.facts[n.id].staleness;
      EXPECT_FALSE(hull.bottom) << "report unreachable from any aged scan?";
      EXPECT_LE(hull.Width(), n.notice_bound_micros) << ir.Dump();
    }
    EXPECT_TRUE(saw_report);
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, AbsintPropertyTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace trac
