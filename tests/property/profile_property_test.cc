// Property: over the checked-in examples/queries corpus, a profiled
// report session obeys the conservation laws the attach pass promises
// (telemetry/profile.h), at parallelism 1 AND 4:
//
//   * the annotated IR round-trips through Dump/ParsePlanIr byte-exactly
//     and re-analyzing it reproduces the session's drift findings;
//   * no clean-corpus session ever trips TRAC-P001 (an actual outside
//     the proven static interval would be a soundness bug);
//   * rows are conserved along the dataflow: a filter never exceeds its
//     input, the merge node carries exactly |A(Q)| with its annotated
//     inputs (the pre-merge task rows) summing to at least that, and
//     the report node carries exactly the user result's row count;
//   * under a fixed-step clock, the summed actual_ns never exceeds the
//     session's own phase timings.
//
// scripts/check.sh runs this binary under TSan as well: parallelism 4
// exercises the sharded heartbeat fan-out writing task profiles from
// worker threads.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/recency_reporter.h"
#include "core/session.h"
#include "exec/statement.h"
#include "ir/plan_ir.h"
#include "storage/database.h"
#include "telemetry/profile.h"
#include "telemetry/telemetry.h"

namespace trac {
namespace {

namespace fs = std::filesystem;

// Fixed-step fake clock: every read advances simulated time by 1ms.
// Atomic so the parallelism-4 runs stay exact (and TSan-clean).
std::atomic<int64_t> g_ticks{0};
int64_t FakeNowMicros() { return g_ticks.fetch_add(1000) + 1000; }

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Strips full-line `-- comments` and splits on ';' outside strings.
std::vector<std::string> SqlStatements(const std::string& text) {
  std::istringstream lines(text);
  std::string stripped;
  std::string line;
  while (std::getline(lines, line)) {
    const size_t b = line.find_first_not_of(" \t\r");
    if (b != std::string::npos && line.compare(b, 2, "--") == 0) continue;
    stripped += line;
    stripped += '\n';
  }
  std::vector<std::string> stmts;
  std::string current;
  bool in_string = false;
  for (char c : stripped) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      stmts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  stmts.push_back(current);
  std::vector<std::string> nonempty;
  for (std::string& s : stmts) {
    if (s.find_first_not_of(" \t\r\n") != std::string::npos) {
      nonempty.push_back(std::move(s));
    }
  }
  return nonempty;
}

class ProfilePropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The profiles/ schema: activity/routing/config plus a 131-row
    // heartbeat registry, big enough that parallelism 4 plans a real
    // sharded heartbeat scan (and its per-shard task profiles).
    const fs::path schema =
        fs::path(TRAC_EXAMPLES_DIR) / "profiles" / "schema.sql";
    for (const std::string& stmt : SqlStatements(ReadFileOrDie(schema))) {
      auto result = ExecuteStatement(&db_, stmt);
      ASSERT_TRUE(result.ok()) << result.status() << "\n" << stmt;
    }
    const fs::path dir = fs::path(TRAC_EXAMPLES_DIR) / "queries";
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".sql" &&
          entry.path().filename().string()[0] == 'q') {
        const std::vector<std::string> stmts =
            SqlStatements(ReadFileOrDie(entry.path()));
        ASSERT_EQ(stmts.size(), 1u) << entry.path();
        queries_.push_back(stmts[0]);
      }
    }
    std::sort(queries_.begin(), queries_.end());
    ASSERT_GE(queries_.size(), 5u) << "corpus went missing?";
  }

  RecencyReport MustRun(RecencyReporter* reporter, const std::string& sql,
                        size_t parallelism, const Telemetry* telemetry) {
    RecencyReportOptions options;
    options.create_temp_tables = false;
    options.relevance.parallelism = parallelism;
    options.telemetry = telemetry;
    auto report = reporter->Run(sql, options);
    EXPECT_TRUE(report.ok()) << report.status().ToString() << "\n" << sql;
    return report.ok() ? *report : RecencyReport{};
  }

  /// Checks every per-session law over one profiled report; returns the
  /// parsed annotated IR for cross-parallelism comparisons.
  PlanIr CheckSessionLaws(const RecencyReport& report, size_t parallelism,
                          const std::string& sql) {
    const std::string tag = sql + " @ par " + std::to_string(parallelism);
    EXPECT_FALSE(report.profiled_ir.empty()) << tag;
    EXPECT_GE(report.profiled_nodes, 1u) << tag;

    // Byte-exact round trip: a profiled session is a corpus artifact.
    auto parsed = ParsePlanIr(report.profiled_ir);
    EXPECT_TRUE(parsed.ok()) << tag << "\n" << report.profiled_ir;
    if (!parsed.ok()) return PlanIr{};
    EXPECT_EQ(parsed->Dump(), report.profiled_ir) << tag;

    // Re-analysis determinism: the offline drift pass over the dumped IR
    // reproduces the findings the live session reported.
    const std::vector<ProfileDiagnostic> redrift = AnalyzeProfileDrift(*parsed);
    EXPECT_EQ(redrift.size(), report.profile_drift.size()) << tag;
    for (size_t i = 0;
         i < std::min(redrift.size(), report.profile_drift.size()); ++i) {
      EXPECT_EQ(redrift[i].code, report.profile_drift[i].code) << tag;
      EXPECT_EQ(redrift[i].node, report.profile_drift[i].node) << tag;
    }
    // No clean-corpus session may trip the soundness rule.
    for (const ProfileDiagnostic& d : report.profile_drift) {
      EXPECT_NE(d.code, ProfileCode::kActualOutsideStaticBounds)
          << tag << ": " << d.Format();
    }

    uint64_t annotated = 0;
    int64_t total_ns = 0;
    for (const IrNode& node : parsed->nodes) {
      if (node.has_actual_rows) ++annotated;
      if (node.has_actual_ns) {
        EXPECT_GE(node.actual_ns, 0) << tag << " node " << node.id;
        total_ns += node.actual_ns;
      }
      switch (node.kind) {
        case IrNodeKind::kFilter:
          // Row conservation along an edge: a filter only drops rows.
          if (node.has_actual_rows && !node.inputs.empty()) {
            const IrNode& in = parsed->nodes[node.inputs[0]];
            if (in.has_actual_rows) {
              EXPECT_LE(node.actual_rows, in.actual_rows)
                  << tag << " filter node " << node.id;
            }
          }
          break;
        case IrNodeKind::kMerge: {
          // The merge emits exactly the distinct relevant sources, and
          // its annotated inputs (per-task pre-merge rows; a
          // guard-suppressed part stays bare and contributed nothing)
          // must sum to at least that.
          EXPECT_TRUE(node.has_actual_rows) << tag;
          if (!node.has_actual_rows) break;
          EXPECT_EQ(node.actual_rows, report.relevance.sources.size()) << tag;
          uint64_t premerge = 0;
          for (size_t in_id : node.inputs) {
            const IrNode& in = parsed->nodes[in_id];
            if (in.has_actual_rows) premerge += in.actual_rows;
          }
          EXPECT_GE(premerge, node.actual_rows) << tag;
          break;
        }
        case IrNodeKind::kReport:
          // The report node carries the user result's cardinality — the
          // same first-input strand absint takes its static bound from.
          EXPECT_TRUE(node.has_actual_rows) << tag;
          if (node.has_actual_rows) {
            EXPECT_EQ(node.actual_rows, report.result.rows.size()) << tag;
          }
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(annotated, report.profiled_nodes) << tag;

    // Under the fixed-step clock every annotated ns value derives from
    // the same tick stream the phase timings read, so the per-operator
    // sum can never exceed the session's own phase budget (busy, not
    // wall, bounds the parallel task strands).
    const int64_t budget_ns =
        (report.parse_generate_micros + report.user_query_micros +
         report.relevance_busy_micros + report.relevance_exec_micros +
         report.stats_micros) *
        1000;
    EXPECT_LE(total_ns, budget_ns) << tag;
    return std::move(*parsed);
  }

  Database db_;
  std::vector<std::string> queries_;
};

TEST_F(ProfilePropertyTest, ConservationLawsHoldAtBothParallelismLevels) {
  RecencyReporter reporter(&db_, nullptr);
  MetricRegistry metrics;
  Tracer tracer;
  FlightRecorder recorder;
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  telemetry.tracer = &tracer;
  telemetry.clock = &FakeNowMicros;
  telemetry.recorder = &recorder;

  for (const std::string& sql : queries_) {
    const RecencyReport serial = MustRun(&reporter, sql, 1, &telemetry);
    const RecencyReport fanned = MustRun(&reporter, sql, 4, &telemetry);
    const PlanIr ir1 = CheckSessionLaws(serial, 1, sql);
    const PlanIr ir4 = CheckSessionLaws(fanned, 4, sql);

    // The shard decomposition must not change what was observed: both
    // levels agree on the relevant set and the user result cardinality.
    ASSERT_EQ(serial.relevance.sources, fanned.relevance.sources) << sql;
    EXPECT_EQ(serial.result.rows.size(), fanned.result.rows.size()) << sql;
    // The par-4 lowering has at least as many profile surfaces (shard
    // scans) as the serial one.
    EXPECT_GE(fanned.profiled_nodes, 1u) << sql;
    EXPECT_GE(ir4.nodes.size(), ir1.nodes.size()) << sql;
  }

  // Every session landed in the flight recorder; the ring retains the
  // newest K and each retained record is a self-contained artifact.
  const uint64_t expected = static_cast<uint64_t>(2 * queries_.size());
  EXPECT_EQ(recorder.total_recorded(), expected);
  const std::vector<SessionProfileRecord> entries = recorder.Entries();
  EXPECT_EQ(entries.size(),
            std::min<uint64_t>(expected, FlightRecorder::kDefaultCapacity));
  for (const SessionProfileRecord& rec : entries) {
    auto parsed = ParsePlanIr(rec.profiled_ir);
    EXPECT_TRUE(parsed.ok());
    EXPECT_GE(rec.annotated_nodes, 1u);
    EXPECT_EQ(rec.p001_count, 0u);
  }
}

TEST_F(ProfilePropertyTest, DisablingProfilingLeavesNoTrace) {
  RecencyReporter reporter(&db_, nullptr);
  MetricRegistry metrics;
  Tracer tracer;
  FlightRecorder recorder;
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  telemetry.tracer = &tracer;
  telemetry.clock = &FakeNowMicros;
  telemetry.recorder = &recorder;
  for (const std::string& sql : queries_) {
    RecencyReportOptions options;
    options.create_temp_tables = false;
    options.telemetry = &telemetry;
    options.profile = false;
    auto report = reporter.Run(sql, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString() << "\n" << sql;
    EXPECT_TRUE(report->profiled_ir.empty()) << sql;
    EXPECT_EQ(report->profiled_nodes, 0u) << sql;
    EXPECT_TRUE(report->profile_drift.empty()) << sql;
  }
  EXPECT_EQ(recorder.total_recorded(), 0u);
}

}  // namespace
}  // namespace trac
