// Randomized end-to-end properties of the relevance analyzer, checked
// against brute-force ground truth over finite domains:
//
//  1. Completeness (Requirement 2 / Theorem 1): A(Q) ⊇ S(Q) for every
//     generated query.
//  2. Minimality claims (Theorems 3 and 4): whenever the analyzer says
//     "minimal", A(Q) == S(Q).
//  3. Theorem 1 directly: inserting any single tuple from a source
//     outside A(Q) never changes the query result.

#include <algorithm>
#include <functional>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"
#include "core/brute_force.h"
#include "core/relevance.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

/// Random SPJ query generator over the paper schema (activity/routing
/// with finite domains m1..m11, {idle, busy}, five timestamps).
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    bool join = rng_.Bernoulli(0.45);
    std::string sql;
    if (join) {
      sql =
          "SELECT r.mach_id FROM routing r, activity a WHERE " +
          Predicate(/*join=*/true);
    } else {
      bool activity = rng_.Bernoulli(0.5);
      sql = activity ? "SELECT mach_id FROM activity WHERE " +
                           Predicate(false, "activity")
                     : "SELECT mach_id FROM routing WHERE " +
                           Predicate(false, "routing");
    }
    return sql;
  }

 private:
  std::string Machine() {
    return "'m" + std::to_string(1 + rng_.Uniform(11)) + "'";
  }
  std::string ValueLit() { return rng_.Bernoulli(0.5) ? "'idle'" : "'busy'"; }

  std::string Atom(bool join, const std::string& table) {
    if (join) {
      switch (rng_.Uniform(6)) {
        case 0:
          return "r.mach_id = " + Machine();
        case 1:
          return "a.value = " + ValueLit();
        case 2:
          return "r.neighbor = a.mach_id";
        case 3:
          return "r.mach_id = a.mach_id";
        case 4:
          return "a.mach_id IN (" + Machine() + ", " + Machine() + ")";
        default:
          return "r.neighbor = " + Machine();
      }
    }
    if (table == "activity") {
      switch (rng_.Uniform(5)) {
        case 0:
          return "mach_id = " + Machine();
        case 1:
          return "mach_id IN (" + Machine() + ", " + Machine() + ")";
        case 2:
          return "value = " + ValueLit();
        case 3:
          return "mach_id <> " + Machine();
        default:
          return "mach_id > " + Machine();
      }
    }
    switch (rng_.Uniform(5)) {
      case 0:
        return "mach_id = " + Machine();
      case 1:
        return "neighbor = " + Machine();
      case 2:
        return "mach_id = neighbor";  // Mixed predicate.
      case 3:
        return "neighbor IN (" + Machine() + ", " + Machine() + ")";
      default:
        return "mach_id <> " + Machine();
    }
  }

  std::string Predicate(bool join, const std::string& table = "") {
    std::function<std::string(int)> gen = [&](int depth) -> std::string {
      int pick = depth >= 2 ? 0 : static_cast<int>(rng_.Uniform(4));
      switch (pick) {
        case 1:
          return "(" + gen(depth + 1) + " AND " + gen(depth + 1) + ")";
        case 2:
          return "(" + gen(depth + 1) + " OR " + gen(depth + 1) + ")";
        case 3:
          return "NOT (" + gen(depth + 1) + ")";
        default:
          return Atom(join, table);
      }
    };
    return gen(0);
  }

  Random rng_;
};

class RelevancePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelevancePropertyTest, CompletenessAndMinimality) {
  PaperExampleDb fixture(/*finite_domains=*/true);
  QueryGenerator gen(GetParam());
  Snapshot snap = fixture.db.LatestSnapshot();

  for (int round = 0; round < 25; ++round) {
    std::string sql = gen.Generate();
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " sql=" + sql);
    auto bound = BindSql(fixture.db, sql);
    ASSERT_TRUE(bound.ok()) << bound.status();

    auto focused = ComputeRelevantSources(fixture.db, *bound, snap);
    ASSERT_TRUE(focused.ok()) << focused.status();
    auto truth = BruteForceRelevantSources(fixture.db, *bound, snap);
    ASSERT_TRUE(truth.ok()) << truth.status();

    std::vector<std::string> reported = focused->SourceIds();
    // Completeness: every truly relevant source is reported.
    for (const std::string& s : *truth) {
      EXPECT_NE(std::find(reported.begin(), reported.end(), s),
                reported.end())
          << "missing relevant source " << s;
    }
    // Minimality when claimed.
    if (focused->minimal) {
      EXPECT_EQ(reported, *truth);
    }
  }
}

TEST_P(RelevancePropertyTest, TheoremOneSingleUpdateFromIrrelevantSource) {
  PaperExampleDb fixture(/*finite_domains=*/true);
  QueryGenerator gen(GetParam() + 1000);
  Random rng(GetParam() * 31 + 7);

  auto sorted_rows = [](ResultSet rs) {
    std::sort(rs.rows.begin(), rs.rows.end());
    return rs.rows;
  };

  for (int round = 0; round < 8; ++round) {
    std::string sql = gen.Generate();
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " sql=" + sql);
    auto bound = BindSql(fixture.db, sql);
    ASSERT_TRUE(bound.ok()) << bound.status();

    // For each source NOT reported relevant *at the moment of insertion*,
    // a single tuple tagged with it must not change the query result.
    // MVCC snapshots make the before/after comparison exact, and no
    // rollback is needed (later iterations recompute relevance against
    // the new instance, matching Theorem 1's single-update premise).
    for (int m = 1; m <= 11; ++m) {
      std::string source = "m" + std::to_string(m);
      for (const char* table : {"activity", "routing"}) {
        Snapshot snap0 = fixture.db.LatestSnapshot();
        auto focused = ComputeRelevantSources(fixture.db, *bound, snap0);
        ASSERT_TRUE(focused.ok()) << focused.status();
        std::vector<std::string> reported = focused->SourceIds();
        if (std::find(reported.begin(), reported.end(), source) !=
            reported.end()) {
          continue;  // Relevant source: Theorem 1 says nothing.
        }
        auto result_before = ExecuteQuery(fixture.db, *bound, snap0);
        ASSERT_TRUE(result_before.ok());

        const TableSchema& schema =
            fixture.db.catalog().schema(*fixture.db.FindTable(table));
        Row row;
        if (std::string(table) == "activity") {
          row = {Value::Str(source),
                 Value::Str(rng.Bernoulli(0.5) ? "idle" : "busy"),
                 Value::Null()};
        } else {
          row = {Value::Str(source),
                 Value::Str("m" + std::to_string(1 + rng.Uniform(11))),
                 Value::Null()};
        }
        row[2] = schema.column(2).domain.values()[rng.Uniform(
            schema.column(2).domain.size())];

        TRAC_ASSERT_OK(fixture.db.Insert(table, row));
        auto result_after =
            ExecuteQuery(fixture.db, *bound, fixture.db.LatestSnapshot());
        ASSERT_TRUE(result_after.ok());
        EXPECT_EQ(sorted_rows(*result_after), sorted_rows(*result_before))
            << "single update from irrelevant source " << source
            << " into " << table << " changed the result";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelevancePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace trac
