// Property: over the checked-in examples/queries corpus, a report
// served from the relevance cache is byte-identical to recomputation —
// across repeat traffic at one parallelism level AND across levels
// (parallelism 1 vs 4), because the cache keys on the canonical IR
// quotient that collapses shard decompositions (ir/fingerprint.h).
// This is the in-process twin of the trac_verify --cache-deps goldens
// that pin identical fingerprints for the par-1 and par-4 lowerings.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/recency_reporter.h"
#include "core/relevance.h"
#include "exec/statement.h"
#include "storage/database.h"

namespace trac {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Strips full-line `-- comments` and splits on ';' outside strings.
std::vector<std::string> SqlStatements(const std::string& text) {
  std::istringstream lines(text);
  std::string stripped;
  std::string line;
  while (std::getline(lines, line)) {
    const size_t b = line.find_first_not_of(" \t\r");
    if (b != std::string::npos && line.compare(b, 2, "--") == 0) continue;
    stripped += line;
    stripped += '\n';
  }
  std::vector<std::string> stmts;
  std::string current;
  bool in_string = false;
  for (char c : stripped) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      stmts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  stmts.push_back(current);
  std::vector<std::string> nonempty;
  for (std::string& s : stmts) {
    if (s.find_first_not_of(" \t\r\n") != std::string::npos) {
      nonempty.push_back(std::move(s));
    }
  }
  return nonempty;
}

class RelevanceCachePropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The plans/ schema: activity/routing/config plus a 128-row
    // heartbeat registry, big enough that parallelism 4 plans a real
    // sharded heartbeat scan.
    const fs::path schema =
        fs::path(TRAC_EXAMPLES_DIR) / "plans" / "schema.sql";
    for (const std::string& stmt : SqlStatements(ReadFileOrDie(schema))) {
      auto result = ExecuteStatement(&db_, stmt);
      ASSERT_TRUE(result.ok()) << result.status() << "\n" << stmt;
    }
    const fs::path dir = fs::path(TRAC_EXAMPLES_DIR) / "queries";
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".sql" &&
          entry.path().filename().string()[0] == 'q') {
        const std::vector<std::string> stmts =
            SqlStatements(ReadFileOrDie(entry.path()));
        ASSERT_EQ(stmts.size(), 1u) << entry.path();
        queries_.push_back(stmts[0]);
      }
    }
    std::sort(queries_.begin(), queries_.end());
    ASSERT_GE(queries_.size(), 5u) << "corpus went missing?";
  }

  RecencyReport MustRun(RecencyReporter* reporter, const std::string& sql,
                        size_t parallelism, RelevanceCache* cache) {
    RecencyReportOptions options;
    options.create_temp_tables = false;
    options.relevance.parallelism = parallelism;
    options.cache = cache;
    auto report = reporter->Run(sql, options);
    EXPECT_TRUE(report.ok()) << report.status().ToString() << "\n" << sql;
    return report.ok() ? *report : RecencyReport{};
  }

  Database db_;
  std::vector<std::string> queries_;
};

TEST_F(RelevanceCachePropertyTest, ServedReportsMatchRecomputation) {
  RecencyReporter reporter(&db_, nullptr);
  size_t hits_proven = 0;
  for (const std::string& sql : queries_) {
    // Cache-free references at both parallelism levels (themselves
    // required to agree: parallel merge is deterministic).
    const RecencyReport ref1 = MustRun(&reporter, sql, 1, nullptr);
    const RecencyReport ref4 = MustRun(&reporter, sql, 4, nullptr);
    ASSERT_EQ(ref1.relevance.sources, ref4.relevance.sources) << sql;

    RelevanceCache cache;
    const RecencyReport cold = MustRun(&reporter, sql, 1, &cache);
    EXPECT_FALSE(cold.relevance_from_cache) << sql;
    const RecencyReport warm = MustRun(&reporter, sql, 1, &cache);
    ASSERT_TRUE(warm.relevance_from_cache)
        << sql << ": static corpus + repeat query must hit";
    ++hits_proven;

    EXPECT_EQ(warm.relevance.sources, ref1.relevance.sources) << sql;
    EXPECT_EQ(warm.FormatNotices(), ref1.FormatNotices()) << sql;
    EXPECT_EQ(warm.stats.inconsistency_bound_micros,
              ref1.stats.inconsistency_bound_micros)
        << sql;
  }
  EXPECT_EQ(hits_proven, queries_.size());
}

TEST_F(RelevanceCachePropertyTest, ParallelismLevelsShareOneEntry) {
  RecencyReporter reporter(&db_, nullptr);
  for (const std::string& sql : queries_) {
    // Warm the cache at parallelism 1, then run at parallelism 4: the
    // canonical quotient collapses the shard decomposition, so the
    // par-4 session must be served the par-1 entry — and byte-match a
    // cache-free par-4 run.
    RelevanceCache cache;
    const RecencyReport cold1 = MustRun(&reporter, sql, 1, &cache);
    EXPECT_FALSE(cold1.relevance_from_cache) << sql;
    const RecencyReport warm4 = MustRun(&reporter, sql, 4, &cache);
    EXPECT_TRUE(warm4.relevance_from_cache)
        << sql << ": par-4 lowering must key the par-1 entry";
    const RecencyReport ref4 = MustRun(&reporter, sql, 4, nullptr);
    EXPECT_EQ(warm4.relevance.sources, ref4.relevance.sources) << sql;
    EXPECT_EQ(warm4.FormatNotices(), ref4.FormatNotices()) << sql;

    // And the mirror image: warmed at 4, served at 1.
    RelevanceCache mirror;
    const RecencyReport cold4 = MustRun(&reporter, sql, 4, &mirror);
    EXPECT_FALSE(cold4.relevance_from_cache) << sql;
    const RecencyReport warm1 = MustRun(&reporter, sql, 1, &mirror);
    EXPECT_TRUE(warm1.relevance_from_cache) << sql;
    const RecencyReport ref1 = MustRun(&reporter, sql, 1, nullptr);
    EXPECT_EQ(warm1.relevance.sources, ref1.relevance.sources) << sql;
  }
}

TEST_F(RelevanceCachePropertyTest, MutationForcesRecomputationEverywhere) {
  RecencyReporter reporter(&db_, nullptr);
  RelevanceCache cache;
  // Warm every query, then land one heartbeat arrival: every entry's
  // footprint contains the registry (TRAC-V015), so every subsequent
  // lookup must invalidate and recompute against the new state.
  for (const std::string& sql : queries_) {
    MustRun(&reporter, sql, 1, &cache);
  }
  const uint64_t entries_before = cache.stats().entries;
  EXPECT_GT(entries_before, 0u);
  auto beat = ExecuteStatement(
      &db_,
      "UPDATE heartbeat SET recency_timestamp = '2006-03-15 14:30:00' "
      "WHERE source_id = 'm000'");
  ASSERT_TRUE(beat.ok()) << beat.status().ToString();
  for (const std::string& sql : queries_) {
    // Queries sharing one canonical plan may legitimately hit an entry
    // refreshed by an earlier query in this loop; what must hold is
    // coherence with a cache-free run against the new state.
    const RecencyReport fresh = MustRun(&reporter, sql, 1, &cache);
    const RecencyReport ref = MustRun(&reporter, sql, 1, nullptr);
    EXPECT_EQ(fresh.relevance.sources, ref.relevance.sources) << sql;
  }
  // Every pre-mutation entry was evicted exactly once.
  EXPECT_EQ(cache.stats().invalidations, entries_before);
}

}  // namespace
}  // namespace trac
