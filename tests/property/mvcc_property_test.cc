// Randomized MVCC model test: a sequence of inserts / updates / deletes
// runs against the Database while a trivial std::vector model tracks the
// expected visible contents after every commit. Every snapshot ever
// taken must keep showing exactly its model state, no matter how much
// later history accumulates.

#include <map>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"

namespace trac {
namespace {

using Model = std::vector<Row>;  // Visible rows, unordered.

std::multiset<std::string> Fingerprint(const Model& model) {
  std::multiset<std::string> out;
  for (const Row& row : model) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

std::multiset<std::string> TableFingerprint(const Database& db, TableId id,
                                            Snapshot snap) {
  std::multiset<std::string> out;
  db.GetTable(id)->Scan(snap, [&](size_t, const Row& row) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  });
  return out;
}

class MvccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvccPropertyTest, EverySnapshotStaysFrozen) {
  Database db;
  TableSchema schema("t", {ColumnDef("k", TypeId::kInt64),
                           ColumnDef("v", TypeId::kInt64)});
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));

  Random rng(GetParam());
  Model model;
  // Snapshot -> model fingerprint at the time it was taken.
  std::vector<std::pair<Snapshot, std::multiset<std::string>>> history;

  for (int step = 0; step < 200; ++step) {
    const int op = static_cast<int>(rng.Uniform(10));
    if (op < 5 || model.empty()) {
      // Insert.
      Row row = {Value::Int(rng.UniformInt(0, 9)),
                 Value::Int(rng.UniformInt(0, 99))};
      TRAC_ASSERT_OK(db.Insert("t", row));
      model.push_back(row);
    } else if (op < 8) {
      // Update all rows with a random key.
      int64_t key = rng.UniformInt(0, 9);
      int64_t new_value = rng.UniformInt(100, 199);
      TRAC_ASSERT_OK_AND_ASSIGN(
          int updated,
          db.UpdateWhere(
              "t",
              [&](const Row& r) { return r[0].int_val() == key; },
              [&](Row* r) { (*r)[1] = Value::Int(new_value); }));
      int model_updated = 0;
      for (Row& r : model) {
        if (r[0].int_val() == key) {
          r[1] = Value::Int(new_value);
          ++model_updated;
        }
      }
      EXPECT_EQ(updated, model_updated);
    } else {
      // Delete all rows with a random key.
      int64_t key = rng.UniformInt(0, 9);
      TRAC_ASSERT_OK_AND_ASSIGN(
          int deleted,
          db.DeleteWhere("t", [&](const Row& r) {
            return r[0].int_val() == key;
          }));
      int model_deleted = 0;
      for (auto it = model.begin(); it != model.end();) {
        if ((*it)[0].int_val() == key) {
          it = model.erase(it);
          ++model_deleted;
        } else {
          ++it;
        }
      }
      EXPECT_EQ(deleted, model_deleted);
    }

    // Every ~5 steps, capture a snapshot and remember the model.
    if (rng.Bernoulli(0.2)) {
      history.emplace_back(db.LatestSnapshot(), Fingerprint(model));
    }
    // Current state always matches the model.
    ASSERT_EQ(TableFingerprint(db, id, db.LatestSnapshot()),
              Fingerprint(model))
        << "diverged at step " << step;
  }

  // Time travel: every historical snapshot still shows exactly what the
  // model showed when it was taken.
  for (const auto& [snap, fingerprint] : history) {
    EXPECT_EQ(TableFingerprint(db, id, snap), fingerprint);
  }
}

TEST_P(MvccPropertyTest, IndexAgreesWithHeapScanAtEverySnapshot) {
  Database db;
  TableSchema schema("t", {ColumnDef("k", TypeId::kInt64),
                           ColumnDef("v", TypeId::kInt64)});
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));
  TRAC_ASSERT_OK(db.CreateIndex("t", "k"));

  Random rng(GetParam() + 999);
  std::vector<Snapshot> snapshots;
  for (int step = 0; step < 120; ++step) {
    int64_t key = rng.UniformInt(0, 5);
    if (rng.Bernoulli(0.6)) {
      TRAC_ASSERT_OK(
          db.Insert("t", {Value::Int(key), Value::Int(step)}));
    } else {
      TRAC_ASSERT_OK(db.DeleteWhere("t", [&](const Row& r) {
                         return r[0].int_val() == key;
                       }).status());
    }
    if (rng.Bernoulli(0.3)) snapshots.push_back(db.LatestSnapshot());
  }
  snapshots.push_back(db.LatestSnapshot());

  const Table* table = db.GetTable(id);
  const OrderedIndex* index = table->GetIndex(0);
  ASSERT_NE(index, nullptr);
  for (Snapshot snap : snapshots) {
    for (int64_t key = 0; key <= 5; ++key) {
      size_t via_index = 0;
      index->ScanEqual(Value::Int(key), [&](size_t vidx) {
        if (table->Visible(table->version(vidx), snap)) ++via_index;
      });
      size_t via_scan = 0;
      table->Scan(snap, [&](size_t, const Row& row) {
        if (row[0].int_val() == key) ++via_scan;
      });
      EXPECT_EQ(via_index, via_scan) << "key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvccPropertyTest,
                         ::testing::Values(21, 42, 63, 84));

}  // namespace
}  // namespace trac
