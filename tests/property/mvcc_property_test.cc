// Randomized MVCC model test: a sequence of inserts / updates / deletes
// runs against the Database while a trivial std::vector model tracks the
// expected visible contents after every commit. Every snapshot ever
// taken must keep showing exactly its model state, no matter how much
// later history accumulates.

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"

namespace trac {
namespace {

using Model = std::vector<Row>;  // Visible rows, unordered.

std::multiset<std::string> Fingerprint(const Model& model) {
  std::multiset<std::string> out;
  for (const Row& row : model) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

std::multiset<std::string> TableFingerprint(const Database& db, TableId id,
                                            Snapshot snap) {
  std::multiset<std::string> out;
  db.GetTable(id)->Scan(snap, [&](size_t, const Row& row) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  });
  return out;
}

class MvccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvccPropertyTest, EverySnapshotStaysFrozen) {
  Database db;
  TableSchema schema("t", {ColumnDef("k", TypeId::kInt64),
                           ColumnDef("v", TypeId::kInt64)});
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));

  Random rng(GetParam());
  Model model;
  // Snapshot -> model fingerprint at the time it was taken.
  std::vector<std::pair<Snapshot, std::multiset<std::string>>> history;

  for (int step = 0; step < 200; ++step) {
    const int op = static_cast<int>(rng.Uniform(10));
    if (op < 5 || model.empty()) {
      // Insert.
      Row row = {Value::Int(rng.UniformInt(0, 9)),
                 Value::Int(rng.UniformInt(0, 99))};
      TRAC_ASSERT_OK(db.Insert("t", row));
      model.push_back(row);
    } else if (op < 8) {
      // Update all rows with a random key.
      int64_t key = rng.UniformInt(0, 9);
      int64_t new_value = rng.UniformInt(100, 199);
      TRAC_ASSERT_OK_AND_ASSIGN(
          int updated,
          db.UpdateWhere(
              "t",
              [&](const Row& r) { return r[0].int_val() == key; },
              [&](Row* r) { (*r)[1] = Value::Int(new_value); }));
      int model_updated = 0;
      for (Row& r : model) {
        if (r[0].int_val() == key) {
          r[1] = Value::Int(new_value);
          ++model_updated;
        }
      }
      EXPECT_EQ(updated, model_updated);
    } else {
      // Delete all rows with a random key.
      int64_t key = rng.UniformInt(0, 9);
      TRAC_ASSERT_OK_AND_ASSIGN(
          int deleted,
          db.DeleteWhere("t", [&](const Row& r) {
            return r[0].int_val() == key;
          }));
      int model_deleted = 0;
      for (auto it = model.begin(); it != model.end();) {
        if ((*it)[0].int_val() == key) {
          it = model.erase(it);
          ++model_deleted;
        } else {
          ++it;
        }
      }
      EXPECT_EQ(deleted, model_deleted);
    }

    // Every ~5 steps, capture a snapshot and remember the model.
    if (rng.Bernoulli(0.2)) {
      history.emplace_back(db.LatestSnapshot(), Fingerprint(model));
    }
    // Current state always matches the model.
    ASSERT_EQ(TableFingerprint(db, id, db.LatestSnapshot()),
              Fingerprint(model))
        << "diverged at step " << step;
  }

  // Time travel: every historical snapshot still shows exactly what the
  // model showed when it was taken.
  for (const auto& [snap, fingerprint] : history) {
    EXPECT_EQ(TableFingerprint(db, id, snap), fingerprint);
  }
}

TEST_P(MvccPropertyTest, IndexAgreesWithHeapScanAtEverySnapshot) {
  Database db;
  TableSchema schema("t", {ColumnDef("k", TypeId::kInt64),
                           ColumnDef("v", TypeId::kInt64)});
  TRAC_ASSERT_OK_AND_ASSIGN(TableId id, db.CreateTable(std::move(schema)));
  TRAC_ASSERT_OK(db.CreateIndex("t", "k"));

  Random rng(GetParam() + 999);
  std::vector<Snapshot> snapshots;
  for (int step = 0; step < 120; ++step) {
    int64_t key = rng.UniformInt(0, 5);
    if (rng.Bernoulli(0.6)) {
      TRAC_ASSERT_OK(
          db.Insert("t", {Value::Int(key), Value::Int(step)}));
    } else {
      TRAC_ASSERT_OK(db.DeleteWhere("t", [&](const Row& r) {
                         return r[0].int_val() == key;
                       }).status());
    }
    if (rng.Bernoulli(0.3)) snapshots.push_back(db.LatestSnapshot());
  }
  snapshots.push_back(db.LatestSnapshot());

  const Table* table = db.GetTable(id);
  const OrderedIndex* index = table->GetIndex(0);
  ASSERT_NE(index, nullptr);
  for (Snapshot snap : snapshots) {
    for (int64_t key = 0; key <= 5; ++key) {
      size_t via_index = 0;
      index->ScanEqual(Value::Int(key), [&](size_t vidx) {
        if (table->Visible(table->version(vidx), snap)) ++via_index;
      });
      size_t via_scan = 0;
      table->Scan(snap, [&](size_t, const Row& row) {
        if (row[0].int_val() == key) ++via_scan;
      });
      EXPECT_EQ(via_index, via_scan) << "key " << key;
    }
  }
}

// Multi-threaded replay: each thread owns a disjoint key range, so its
// operations commute with every other thread's and the final visible
// state is interleaving-independent. The same seeded per-thread op
// sequences are applied once serially and once concurrently; the final
// fingerprints must be identical. (Mid-run, concurrent readers also
// re-validate the frozen-snapshot property under real contention — run
// under -fsanitize=thread to check the memory-ordering claims.)
namespace replay {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 80;
constexpr int64_t kKeysPerThread = 8;

struct Op {
  enum Kind { kInsert, kUpdate, kDelete } kind;
  int64_t key;    // Absolute key, inside the owning thread's range.
  int64_t value;  // Insert payload / update replacement.
};

std::vector<Op> GenerateOps(uint64_t seed, int thread) {
  Random rng(seed * 1000 + thread);
  const int64_t lo = thread * kKeysPerThread;
  std::vector<Op> ops;
  for (int i = 0; i < kOpsPerThread; ++i) {
    Op op;
    const int r = static_cast<int>(rng.Uniform(10));
    op.kind = r < 6 ? Op::kInsert : (r < 8 ? Op::kUpdate : Op::kDelete);
    op.key = lo + rng.UniformInt(0, kKeysPerThread - 1);
    op.value = rng.UniformInt(0, 999);
    ops.push_back(op);
  }
  return ops;
}

void Apply(Database* db, const Op& op) {
  switch (op.kind) {
    case Op::kInsert:
      TRAC_ASSERT_OK(
          db->Insert("t", {Value::Int(op.key), Value::Int(op.value)}));
      break;
    case Op::kUpdate:
      TRAC_ASSERT_OK(
          db->UpdateWhere(
                "t", [&](const Row& r) { return r[0].int_val() == op.key; },
                [&](Row* r) { (*r)[1] = Value::Int(op.value); })
              .status());
      break;
    case Op::kDelete:
      TRAC_ASSERT_OK(db->DeleteWhere("t", [&](const Row& r) {
                         return r[0].int_val() == op.key;
                       }).status());
      break;
  }
}

Result<TableId> MakeTable(Database* db) {
  TableSchema schema("t", {ColumnDef("k", TypeId::kInt64),
                           ColumnDef("v", TypeId::kInt64)});
  return db->CreateTable(std::move(schema));
}

}  // namespace replay

TEST_P(MvccPropertyTest, ConcurrentReplayMatchesSerialReplay) {
  using replay::kThreads;

  std::vector<std::vector<replay::Op>> ops;
  for (int t = 0; t < kThreads; ++t) {
    ops.push_back(replay::GenerateOps(GetParam(), t));
  }

  // Serial reference: thread 0's ops, then thread 1's, ...
  Database serial_db;
  TRAC_ASSERT_OK_AND_ASSIGN(TableId serial_id,
                            replay::MakeTable(&serial_db));
  for (const auto& thread_ops : ops) {
    for (const replay::Op& op : thread_ops) replay::Apply(&serial_db, op);
  }

  // Concurrent run: one thread per op sequence, plus a validator thread
  // exercising the frozen-snapshot property while writes are in flight.
  Database conc_db;
  TRAC_ASSERT_OK_AND_ASSIGN(TableId conc_id, replay::MakeTable(&conc_db));
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const replay::Op& op : ops[t]) replay::Apply(&conc_db, op);
      done.fetch_add(1);
    });
  }
  threads.emplace_back([&] {
    while (done.load() < kThreads) {
      Snapshot snap = conc_db.LatestSnapshot();
      EXPECT_EQ(TableFingerprint(conc_db, conc_id, snap),
                TableFingerprint(conc_db, conc_id, snap));
    }
  });
  for (auto& t : threads) t.join();

  // Disjoint key ranges commute: the final states must coincide.
  EXPECT_EQ(TableFingerprint(conc_db, conc_id, conc_db.LatestSnapshot()),
            TableFingerprint(serial_db, serial_id,
                             serial_db.LatestSnapshot()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvccPropertyTest,
                         ::testing::Values(21, 42, 63, 84));

}  // namespace
}  // namespace trac
