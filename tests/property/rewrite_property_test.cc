// Property: over the examples/queries/ corpus, the optimizer is
// invisible except in cost. For every query, at parallelism 1 and 4:
//   - the optimized plan is provably equivalent to the unoptimized one
//     (CheckIrEquivalence over their lowered IRs is clean);
//   - no corpus rewrite is ever rejected (the rules only propose
//     candidates the checker accepts — a rejection here means rule and
//     checker disagree about safety);
//   - the optimized plan still passes the full V000..V008 pipeline;
//   - the rendered report — user rows plus the NOTICE block — is
//     byte-identical with the optimizer on and off.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/recency_reporter.h"
#include "exec/planner.h"
#include "exec/statement.h"
#include "expr/binder.h"
#include "ir/lower.h"
#include "opt/rewrite.h"
#include "storage/database.h"
#include "verify/equiv.h"
#include "verify/verifier.h"

namespace trac {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Strips full-line `-- comments` and splits on ';' outside strings.
std::vector<std::string> SqlStatements(const std::string& text) {
  std::istringstream lines(text);
  std::string stripped;
  std::string line;
  while (std::getline(lines, line)) {
    const size_t b = line.find_first_not_of(" \t\r");
    if (b != std::string::npos && line.compare(b, 2, "--") == 0) continue;
    stripped += line;
    stripped += '\n';
  }
  std::vector<std::string> stmts;
  std::string current;
  bool in_string = false;
  for (char c : stripped) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      stmts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  stmts.push_back(current);
  std::vector<std::string> nonempty;
  for (std::string& s : stmts) {
    if (s.find_first_not_of(" \t\r\n") != std::string::npos) {
      nonempty.push_back(std::move(s));
    }
  }
  return nonempty;
}

class RewritePropertyTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    const fs::path schema =
        fs::path(TRAC_EXAMPLES_DIR) / "plans" / "schema.sql";
    for (const std::string& stmt : SqlStatements(ReadFileOrDie(schema))) {
      auto result = ExecuteStatement(&db_, stmt);
      ASSERT_TRUE(result.ok()) << result.status() << "\n" << stmt;
    }
    // Rows in the user tables so the reports have something to say.
    const char* kData[] = {
        "INSERT INTO activity VALUES "
        "('m001', 'idle', '2006-03-15 13:59:00'), "
        "('m002', 'busy', '2006-03-15 13:58:00'), "
        "('m007', 'idle', '2006-03-15 13:57:30')",
        "INSERT INTO routing VALUES "
        "('m001', 'm7', '2006-03-15 13:55:00'), "
        "('m002', 'm7', '2006-03-15 13:54:00'), "
        "('m003', 'm9', '2006-03-15 13:53:00')",
    };
    for (const char* stmt : kData) {
      auto result = ExecuteStatement(&db_, stmt);
      ASSERT_TRUE(result.ok()) << result.status();
    }
  }

  void TearDown() override { opt::SetOptimizerEnabled(true); }

  std::vector<fs::path> CorpusQueries() {
    std::vector<fs::path> out;
    const fs::path dir = fs::path(TRAC_EXAMPLES_DIR) / "queries";
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".sql" && p.filename().string()[0] == 'q') {
        out.push_back(p);
      }
    }
    std::sort(out.begin(), out.end());
    EXPECT_GE(out.size(), 5u) << "corpus went missing?";
    return out;
  }

  Database db_;
};

TEST_P(RewritePropertyTest, OptimizedPlanIsProvablyEquivalent) {
  for (const fs::path& qpath : CorpusQueries()) {
    SCOPED_TRACE(qpath.filename().string());
    const std::vector<std::string> stmts = SqlStatements(ReadFileOrDie(qpath));
    ASSERT_EQ(stmts.size(), 1u);
    auto query = BindSql(db_, stmts[0]);
    ASSERT_TRUE(query.ok()) << query.status();
    const Snapshot snapshot = db_.LatestSnapshot();

    opt::SetOptimizerEnabled(false);
    auto baseline = PlanQuery(db_, *query, snapshot);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    EXPECT_TRUE(baseline->rewrites.empty());

    opt::SetOptimizerEnabled(true);
    auto optimized = PlanQuery(db_, *query, snapshot);
    ASSERT_TRUE(optimized.ok()) << optimized.status();

    // Rule and checker must agree on the corpus: a rewrite may be
    // applied or verified-but-not-cheaper, never rejected.
    for (const PlanRewrite& r : optimized->rewrites) {
      EXPECT_EQ(r.verdict.rfind("rejected", 0), std::string::npos)
          << r.rule << " (" << r.detail << "): " << r.verdict;
    }

    const PlanIr before = LowerQueryPlan(db_, *query, *baseline, snapshot);
    const PlanIr after = LowerQueryPlan(db_, *query, *optimized, snapshot);
    const VerifyReport equiv = CheckIrEquivalence(before, after);
    EXPECT_TRUE(equiv.ok()) << equiv.Format(after) << "\n" << after.Dump();

    // The optimized plan is still a valid plan on its own terms.
    const VerifyReport report = VerifyIr(after);
    EXPECT_TRUE(report.ok()) << report.Format(after) << "\n" << after.Dump();
  }
}

TEST_P(RewritePropertyTest, ReportBytesIdenticalOptimizerOnAndOff) {
  const size_t parallelism = GetParam();
  for (const fs::path& qpath : CorpusQueries()) {
    SCOPED_TRACE(qpath.filename().string());
    const std::vector<std::string> stmts = SqlStatements(ReadFileOrDie(qpath));
    ASSERT_EQ(stmts.size(), 1u);

    RecencyReportOptions options;
    options.create_temp_tables = false;
    options.relevance.parallelism = parallelism;

    auto render = [&](bool enabled) {
      opt::SetOptimizerEnabled(enabled);
      RecencyReporter reporter(&db_, /*session=*/nullptr);
      auto report = reporter.Run(stmts[0], options);
      EXPECT_TRUE(report.ok()) << report.status();
      if (!report.ok()) return std::string();
      return report->result.ToString() + "\n" + report->FormatNotices();
    };
    const std::string with_opt = render(true);
    const std::string without_opt = render(false);
    EXPECT_EQ(with_opt, without_opt);
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, RewritePropertyTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace trac
