// Property: every plan the planner produces for the examples/queries/
// corpus — the user plan, every generated recency part with its guards,
// and the shard fan-out of a parallel executor — lowers to a plan IR
// that the static verifier accepts with zero findings, under both
// serial planning and parallelism > 1. The corpus files are the same
// ones tools/trac_verify lints in CI; this test proves the in-process
// wiring (PlanQuery -> VerifyPlan, RecencyReporter -> VerifyFinishSession)
// sees the same clean plans.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/relevance.h"
#include "exec/planner.h"
#include "exec/statement.h"
#include "expr/binder.h"
#include "storage/database.h"
#include "verify/verifier.h"

namespace trac {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Strips full-line `-- comments` and splits on ';' outside strings.
std::vector<std::string> SqlStatements(const std::string& text) {
  std::istringstream lines(text);
  std::string stripped;
  std::string line;
  while (std::getline(lines, line)) {
    const size_t b = line.find_first_not_of(" \t\r");
    if (b != std::string::npos && line.compare(b, 2, "--") == 0) continue;
    stripped += line;
    stripped += '\n';
  }
  std::vector<std::string> stmts;
  std::string current;
  bool in_string = false;
  for (char c : stripped) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      stmts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  stmts.push_back(current);
  std::vector<std::string> nonempty;
  for (std::string& s : stmts) {
    if (s.find_first_not_of(" \t\r\n") != std::string::npos) {
      nonempty.push_back(std::move(s));
    }
  }
  return nonempty;
}

class VerifyPropertyTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    const fs::path schema =
        fs::path(TRAC_EXAMPLES_DIR) / "plans" / "schema.sql";
    for (const std::string& stmt : SqlStatements(ReadFileOrDie(schema))) {
      auto result = ExecuteStatement(&db_, stmt);
      ASSERT_TRUE(result.ok()) << result.status() << "\n" << stmt;
    }
  }

  std::vector<fs::path> CorpusQueries() {
    std::vector<fs::path> out;
    const fs::path dir = fs::path(TRAC_EXAMPLES_DIR) / "queries";
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".sql" && p.filename().string()[0] == 'q') {
        out.push_back(p);
      }
    }
    std::sort(out.begin(), out.end());
    EXPECT_GE(out.size(), 5u) << "corpus went missing?";
    return out;
  }

  Database db_;
};

TEST_P(VerifyPropertyTest, EveryPlannedCorpusQueryVerifiesClean) {
  const size_t parallelism = GetParam();
  for (const fs::path& qpath : CorpusQueries()) {
    SCOPED_TRACE(qpath.filename().string());
    const std::vector<std::string> stmts =
        SqlStatements(ReadFileOrDie(qpath));
    ASSERT_EQ(stmts.size(), 1u);
    auto query = BindSql(db_, stmts[0]);
    ASSERT_TRUE(query.ok()) << query.status();

    auto plan = GenerateRecencyQueries(db_, *query);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const Snapshot snapshot = db_.LatestSnapshot();
    PlanningHints hints;
    hints.guarantee = &plan->analysis;
    // PlanQuery itself runs VerifyPlan on every plan it returns, so a
    // planner-introduced violation would already surface here as a
    // non-OK status.
    auto user_plan = PlanQuery(db_, *query, snapshot, hints);
    ASSERT_TRUE(user_plan.ok()) << user_plan.status();

    // Assemble the full report-session IR, mirroring what
    // RecencyReporter::Finish verifies online.
    std::vector<QueryPlan> part_plans(plan->parts.size());
    std::vector<std::vector<QueryPlan>> guard_plans(plan->parts.size());
    ReportSessionInput input;
    input.user_query = &*query;
    input.user_plan = &*user_plan;
    input.snapshot = snapshot;
    input.session = 1;
    input.temp_writes = {"sys_temp_a1", "sys_temp_e1"};
    for (size_t i = 0; i < plan->parts.size(); ++i) {
      const RecencyQueryPlan::Part& part = plan->parts[i];
      SessionPartInput in;
      in.query = &part.query;
      in.shards = PlannedHeartbeatShards(db_, part, parallelism);
      if (in.shards == 1) {
        auto pp = PlanQuery(db_, part.query, snapshot);
        ASSERT_TRUE(pp.ok()) << pp.status();
        part_plans[i] = std::move(*pp);
        in.plan = &part_plans[i];
        guard_plans[i].resize(part.guards.size());
        for (size_t g = 0; g < part.guards.size(); ++g) {
          auto gp = PlanQuery(db_, part.guards[g], snapshot);
          ASSERT_TRUE(gp.ok()) << gp.status();
          guard_plans[i][g] = std::move(*gp);
          in.guard_queries.push_back(&part.guards[g]);
          in.guard_plans.push_back(&guard_plans[i][g]);
        }
      }
      input.parts.push_back(std::move(in));
    }
    LowerOptions lower;
    lower.heartbeat_table = std::string(HeartbeatTable::kDefaultName);
    const PlanIr ir = LowerReportSession(db_, input, lower);
    const VerifyReport report = VerifyIr(ir);
    EXPECT_TRUE(report.ok()) << report.Format(ir) << "\n" << ir.Dump();
    EXPECT_TRUE(VerifyReportSession(db_, input, lower).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, VerifyPropertyTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace trac
