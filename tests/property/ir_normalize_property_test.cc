// Property: NormalizeIr (verify/equiv.h) is idempotent, and
// Dump -> ParsePlanIr -> NormalizeIr is a fixpoint of it — over every
// .ir fixture checked in under examples/plans/ (clean, seeded-bad, and
// rewrite witnesses alike) and over every plan the planner produces for
// the examples/queries/ corpus. These are the two identities the
// equivalence checker's fast path leans on: if normalization ever
// reordered an already-normal graph, byte-comparing normalized dumps
// would stop being a sound equality test.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/planner.h"
#include "exec/statement.h"
#include "expr/binder.h"
#include "ir/lower.h"
#include "ir/plan_ir.h"
#include "storage/database.h"
#include "verify/equiv.h"

namespace trac {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Strips full-line `-- comments` and splits on ';' outside strings.
std::vector<std::string> SqlStatements(const std::string& text) {
  std::istringstream lines(text);
  std::string stripped;
  std::string line;
  while (std::getline(lines, line)) {
    const size_t b = line.find_first_not_of(" \t\r");
    if (b != std::string::npos && line.compare(b, 2, "--") == 0) continue;
    stripped += line;
    stripped += '\n';
  }
  std::vector<std::string> stmts;
  std::string current;
  bool in_string = false;
  for (char c : stripped) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      stmts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  stmts.push_back(current);
  std::vector<std::string> nonempty;
  for (std::string& s : stmts) {
    if (s.find_first_not_of(" \t\r\n") != std::string::npos) {
      nonempty.push_back(std::move(s));
    }
  }
  return nonempty;
}

/// The two identities under test, for one IR.
void CheckNormalizeFixpoint(const PlanIr& ir, const std::string& context) {
  SCOPED_TRACE(context);
  const PlanIr once = NormalizeIr(ir);
  // Idempotence: a second normalization is a no-op.
  EXPECT_EQ(NormalizeIr(once).Dump(), once.Dump());
  // Dump/Parse round-trip of a normalized IR re-normalizes to itself.
  auto reparsed = ParsePlanIr(once.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(NormalizeIr(*reparsed).Dump(), once.Dump());
}

TEST(IrNormalizeProperty, EveryCheckedInIrIsAFixpoint) {
  const fs::path root = fs::path(TRAC_EXAMPLES_DIR) / "plans";
  size_t checked = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".ir") {
      continue;
    }
    auto ir = ParsePlanIr(ReadFileOrDie(entry.path()));
    ASSERT_TRUE(ir.ok()) << entry.path() << ": " << ir.status();
    CheckNormalizeFixpoint(*ir, entry.path().filename().string());
    ++checked;
  }
  // The clean, seeded-bad, absint, and rewrite-witness corpora together.
  EXPECT_GE(checked, 20u) << "fixture corpus went missing?";
}

TEST(IrNormalizeProperty, EveryPlannerProducedPlanIsAFixpoint) {
  Database db;
  const fs::path schema = fs::path(TRAC_EXAMPLES_DIR) / "plans" / "schema.sql";
  for (const std::string& stmt : SqlStatements(ReadFileOrDie(schema))) {
    auto result = ExecuteStatement(&db, stmt);
    ASSERT_TRUE(result.ok()) << result.status() << "\n" << stmt;
  }
  const fs::path dir = fs::path(TRAC_EXAMPLES_DIR) / "queries";
  std::vector<fs::path> queries;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".sql" &&
        entry.path().filename().string()[0] == 'q') {
      queries.push_back(entry.path());
    }
  }
  std::sort(queries.begin(), queries.end());
  EXPECT_GE(queries.size(), 5u) << "corpus went missing?";
  for (const fs::path& qpath : queries) {
    const std::vector<std::string> stmts = SqlStatements(ReadFileOrDie(qpath));
    ASSERT_EQ(stmts.size(), 1u);
    auto query = BindSql(db, stmts[0]);
    ASSERT_TRUE(query.ok()) << query.status();
    const Snapshot snapshot = db.LatestSnapshot();
    auto plan = PlanQuery(db, *query, snapshot);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const PlanIr ir = LowerQueryPlan(db, *query, *plan, snapshot);
    CheckNormalizeFixpoint(ir, qpath.filename().string());
  }
}

}  // namespace
}  // namespace trac
