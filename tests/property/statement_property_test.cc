// Randomized DML sequences driven purely through SQL text, checked
// against a trivial vector model: INSERT/UPDATE/DELETE statements and
// SELECT verification, including persistence round-trips mid-sequence.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"
#include "exec/statement.h"
#include "storage/persist.h"

namespace trac {
namespace {

struct ModelRow {
  int64_t k;
  int64_t v;
};

std::multiset<std::pair<int64_t, int64_t>> ModelSet(
    const std::vector<ModelRow>& model) {
  std::multiset<std::pair<int64_t, int64_t>> out;
  for (const ModelRow& r : model) out.insert({r.k, r.v});
  return out;
}

std::multiset<std::pair<int64_t, int64_t>> DbSet(const Database& db) {
  auto rs = ExecuteSql(db, "SELECT k, v FROM t");
  EXPECT_TRUE(rs.ok());
  std::multiset<std::pair<int64_t, int64_t>> out;
  if (rs.ok()) {
    for (const Row& row : rs->rows) {
      out.insert({row[0].int_val(), row[1].int_val()});
    }
  }
  return out;
}

class StatementPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatementPropertyTest, RandomDmlMatchesModel) {
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(ExecuteStatement(db.get(), "CREATE TABLE t (k INT, v INT)").ok());
  ASSERT_TRUE(ExecuteStatement(db.get(), "CREATE INDEX ON t (k)").ok());

  Random rng(GetParam());
  std::vector<ModelRow> model;
  const std::string checkpoint =
      ::testing::TempDir() + "stmt_prop_" + std::to_string(GetParam()) +
      ".tracdb";

  for (int step = 0; step < 150; ++step) {
    int64_t k = rng.UniformInt(0, 7);
    int64_t v = rng.UniformInt(0, 99);
    switch (rng.Uniform(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // INSERT
        auto s = ExecuteStatement(
            db.get(), "INSERT INTO t VALUES (" + std::to_string(k) + ", " +
                          std::to_string(v) + ")");
        ASSERT_TRUE(s.ok()) << s.status();
        model.push_back({k, v});
        break;
      }
      case 4:
      case 5: {  // UPDATE ... WHERE k = ...
        auto s = ExecuteStatement(
            db.get(), "UPDATE t SET v = " + std::to_string(v) +
                          " WHERE k = " + std::to_string(k));
        ASSERT_TRUE(s.ok()) << s.status();
        int affected = 0;
        for (ModelRow& r : model) {
          if (r.k == k) {
            r.v = v;
            ++affected;
          }
        }
        EXPECT_EQ(s->rows_affected, affected);
        break;
      }
      case 6: {  // UPDATE with a range predicate.
        auto s = ExecuteStatement(
            db.get(), "UPDATE t SET v = 0 WHERE v > " + std::to_string(v));
        ASSERT_TRUE(s.ok()) << s.status();
        int affected = 0;
        for (ModelRow& r : model) {
          if (r.v > v) {
            r.v = 0;
            ++affected;
          }
        }
        EXPECT_EQ(s->rows_affected, affected);
        break;
      }
      case 7: {  // DELETE WHERE k = ...
        auto s = ExecuteStatement(
            db.get(), "DELETE FROM t WHERE k = " + std::to_string(k));
        ASSERT_TRUE(s.ok()) << s.status();
        auto before = model.size();
        model.erase(std::remove_if(model.begin(), model.end(),
                                   [&](const ModelRow& r) { return r.k == k; }),
                    model.end());
        EXPECT_EQ(s->rows_affected,
                  static_cast<int64_t>(before - model.size()));
        break;
      }
      case 8: {  // Aggregate spot check.
        auto rs = ExecuteSql(*db, "SELECT COUNT(*), SUM(v) FROM t");
        ASSERT_TRUE(rs.ok());
        int64_t count = 0, sum = 0;
        for (const ModelRow& r : model) {
          ++count;
          sum += r.v;
        }
        EXPECT_EQ(rs->rows[0][0], Value::Int(count));
        if (count == 0) {
          EXPECT_TRUE(rs->rows[0][1].is_null());
        } else {
          EXPECT_EQ(rs->rows[0][1], Value::Int(sum));
        }
        break;
      }
      default: {  // Persistence round-trip mid-sequence.
        TRAC_ASSERT_OK(SaveDatabase(*db, checkpoint));
        auto fresh = std::make_unique<Database>();
        TRAC_ASSERT_OK(LoadDatabase(fresh.get(), checkpoint));
        db = std::move(fresh);
        break;
      }
    }
    ASSERT_EQ(DbSet(*db), ModelSet(model)) << "diverged at step " << step;
  }
  std::remove(checkpoint.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatementPropertyTest,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace trac
