// Unit tests for the abstract interpreter (src/absint): the lattice
// domains, the worklist fixpoint engine's transfer functions, the
// semantic verifier rules TRAC-V005..V008 it feeds, and the planner's
// dead-subplan short-circuit hint.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "absint/absint.h"
#include "absint/domains.h"
#include "exec/planner.h"
#include "exec/statement.h"
#include "expr/binder.h"
#include "ir/plan_ir.h"
#include "storage/database.h"
#include "verify/verifier.h"

namespace trac {
namespace {

using absint::AbsintResult;
using absint::AnalyzeIr;
using absint::CardInterval;
using absint::SourceSet;
using absint::StalenessInterval;

PlanIr ParseOrDie(const std::string& text) {
  auto ir = ParsePlanIr(text);
  EXPECT_TRUE(ir.ok()) << ir.status();
  return std::move(*ir);
}

std::vector<std::string> Codes(const VerifyReport& report) {
  std::vector<std::string> out;
  for (const VerifyDiagnostic& d : report.diagnostics) {
    out.emplace_back(VerifyCodeId(d.code));
  }
  return out;
}

// ---------------------------------------------------------------------
// Lattice domains.

TEST(SourceSetTest, JoinIsSortedSetUnion) {
  SourceSet a;
  a.Insert("routing");
  a.Insert("activity");
  a.Insert("activity");  // duplicate insert is a no-op
  SourceSet b;
  b.Insert("heartbeat");
  a.JoinWith(b);
  EXPECT_EQ(a.ToString(), "{activity,heartbeat,routing}");
  EXPECT_TRUE(b.SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(b));
  EXPECT_TRUE(SourceSet{}.SubsetOf(b));
}

TEST(StalenessIntervalTest, JoinIsHullAndBottomIsIdentity) {
  StalenessInterval x = StalenessInterval::Of(100, 200);
  x.JoinWith(StalenessInterval{});  // bottom: no effect
  EXPECT_EQ(x.ToString(), "[100..200]");
  x.JoinWith(StalenessInterval::Of(50, 150));
  EXPECT_EQ(x.lo, 50);
  EXPECT_EQ(x.hi, 200);
  EXPECT_EQ(x.Width(), 150);
  EXPECT_EQ(StalenessInterval{}.Width(), 0);
  EXPECT_EQ(StalenessInterval{}.ToString(), "bot");
}

TEST(CardIntervalTest, ArithmeticSaturatesAndWidenDropsUpperBound) {
  const CardInterval a = CardInterval::UpTo(10);
  const CardInterval b = CardInterval::Exact(3);
  const CardInterval sum = CardInterval::Sum(a, b);
  EXPECT_EQ(sum.lo, 3u);
  EXPECT_EQ(sum.hi, 13u);
  const CardInterval prod = CardInterval::Product(a, b);
  EXPECT_EQ(prod.lo, 0u);
  EXPECT_EQ(prod.hi, 30u);
  // Saturation, not wraparound.
  const CardInterval big = CardInterval::Exact(~0ull);
  EXPECT_EQ(CardInterval::Sum(big, b).hi, ~0ull);
  EXPECT_EQ(CardInterval::Product(big, b).hi, ~0ull);
  // Unknown is absorbing.
  EXPECT_TRUE(CardInterval::Sum(a, CardInterval::Unknown()).unbounded);
  EXPECT_TRUE(CardInterval::Product(a, CardInterval::Unknown()).unbounded);
  CardInterval w = CardInterval::UpTo(7);
  w.Widen();
  EXPECT_TRUE(w.unbounded);
  EXPECT_EQ(w.ToString(), "[0..inf]");
  EXPECT_TRUE(CardInterval::Exact(0).DefinitelyEmpty());
  EXPECT_FALSE(CardInterval::Unknown().DefinitelyEmpty());
}

// ---------------------------------------------------------------------
// Transfer functions and the fixpoint engine.

TEST(AbsintEngineTest, ScanFactsComeFromAnnotations) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=128 age=100..227 "
      "cols=h.source_id:d,h.recency_timestamp:r\n");
  const AbsintResult r = AnalyzeIr(ir);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.facts.size(), 1u);
  EXPECT_EQ(r.facts[0].card.ToString(), "[0..128]");
  EXPECT_EQ(r.facts[0].staleness.ToString(), "[100..227]");
  ASSERT_EQ(r.facts[0].column_sources.size(), 2u);
  EXPECT_EQ(r.facts[0].column_sources[0].ToString(), "{heartbeat}");
  EXPECT_TRUE(r.facts[0].column_sources[1].empty());
  EXPECT_EQ(r.facts[0].sources.ToString(), "{heartbeat}");
}

TEST(AbsintEngineTest, UnannotatedScanIsUnknownCardinality) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=activity snap=5 cols=a.mach_id:d,a.value:r\n");
  const AbsintResult r = AnalyzeIr(ir);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.facts[0].card.unbounded);
  EXPECT_TRUE(r.facts[0].staleness.bottom);
}

TEST(AbsintEngineTest, DeadnessPropagatesThroughFilterAndJoin) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 sel=zero cols=a.mach_id:d,a.value:r\n"
      "node 2 scan table=routing snap=5 rows=64 "
      "cols=r.mach_id:d,r.neighbor:r\n"
      "node 3 join in=1,2 key=d-d "
      "cols=a.mach_id:d,a.value:r,r.mach_id:d,r.neighbor:r\n");
  const AbsintResult r = AnalyzeIr(ir);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.facts[0].dead);
  EXPECT_TRUE(r.facts[1].dead);
  EXPECT_TRUE(r.facts[1].card.DefinitelyEmpty());
  EXPECT_TRUE(r.facts[3].dead) << "join over a dead input is dead";
  EXPECT_TRUE(r.facts[3].card.DefinitelyEmpty());
  // Provenance concatenates positionally through the join.
  EXPECT_EQ(r.facts[3].sources.ToString(), "{activity,routing}");
}

TEST(AbsintEngineTest, AggregateOverDeadInputStillEmitsARow) {
  // COUNT(*) over a provably-empty input still produces one output row,
  // so an aggregate must never inherit deadness (a V006 on its consumer
  // would be unsound).
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 sel=zero cols=a.mach_id:d,a.value:r\n"
      "node 2 agg in=1 fns=count:r cols=a.mach_id:d,n:r\n");
  const AbsintResult r = AnalyzeIr(ir);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.facts[2].dead);
  EXPECT_EQ(r.facts[2].card.ToString(), "[1..1]");
}

TEST(AbsintEngineTest, MergeSumsCardinalityAndHullsStaleness) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=100 age=10..20 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 scan table=heartbeat snap=5 rows=28 age=15..40 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 2 merge in=0,1 sorted gen "
      "cols=h.source_id:d,h.recency_timestamp:r\n");
  const AbsintResult r = AnalyzeIr(ir);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.facts[2].card.ToString(), "[0..128]");
  EXPECT_EQ(r.facts[2].staleness.ToString(), "[10..40]");
  EXPECT_EQ(r.facts[2].sources.ToString(), "{heartbeat}");
}

TEST(AbsintEngineTest, DumpIsDeterministic) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=128 age=100..227 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 report in=0 bound=127 cols=h.source_id:d\n");
  const AbsintResult a = AnalyzeIr(ir);
  const AbsintResult b = AnalyzeIr(ir);
  ASSERT_TRUE(a.converged);
  EXPECT_EQ(a.Dump(ir), b.Dump(ir));
  EXPECT_NE(a.Dump(ir).find("fixpoint in"), std::string::npos);
}

// ---------------------------------------------------------------------
// Verifier rules V005..V008.

TEST(AbsintVerifyTest, V005FiresWhenStalenessHullExceedsNoticeBound) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=128 age=1000000..128000000 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 report in=0 bound=1000000 cols=h.source_id:d\n");
  EXPECT_EQ(Codes(VerifyIr(ir)), std::vector<std::string>{"TRAC-V005"});
  // The exact hull width is fine: the lowering derives both sides from
  // the same registry ages.
  const PlanIr ok = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=128 age=1000000..128000000 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 report in=0 bound=127000000 cols=h.source_id:d\n");
  EXPECT_TRUE(VerifyIr(ok).ok()) << VerifyIr(ok).Format(ok);
}

TEST(AbsintVerifyTest, V006FiresOnDeadMergeInputOnlyNotEmptyTables) {
  const PlanIr dead = ParseOrDie(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 sel=zero cols=a.mach_id:d,a.value:r\n"
      "node 2 scan table=routing snap=5 rows=64 "
      "cols=r.mach_id:d,r.neighbor:r\n"
      "node 3 merge in=1,2 set sorted gen cols=mach_id:d,value:r\n"
      "node 4 report in=3 cols=mach_id:d\n");
  EXPECT_EQ(Codes(VerifyIr(dead)), std::vector<std::string>{"TRAC-V006"});
  // An empty table (rows=0) is data, not a plan bug: no finding.
  const PlanIr empty = ParseOrDie(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=0 cols=a.mach_id:d,a.value:r\n"
      "node 1 scan table=routing snap=5 rows=64 "
      "cols=r.mach_id:d,r.neighbor:r\n"
      "node 2 merge in=0,1 set sorted gen cols=mach_id:d,value:r\n"
      "node 3 report in=2 cols=mach_id:d\n");
  EXPECT_TRUE(VerifyIr(empty).ok()) << VerifyIr(empty).Format(empty);
}

TEST(AbsintVerifyTest, V007FiresOnReappliedFingerprintSameProvenance) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 pred=00000000deadbeef cols=a.mach_id:d,a.value:r\n"
      "node 2 filter in=1 pred=00000000deadbeef cols=a.mach_id:d,a.value:r\n"
      "node 3 report in=2 cols=a.mach_id:d\n");
  const VerifyReport report = VerifyIr(ir);
  ASSERT_EQ(Codes(report), std::vector<std::string>{"TRAC-V007"});
  EXPECT_EQ(report.diagnostics[0].node, 2u) << "anchors at the reapplication";
  // Distinct fingerprints stay clean.
  const PlanIr ok = ParseOrDie(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 pred=00000000deadbeef cols=a.mach_id:d,a.value:r\n"
      "node 2 filter in=1 pred=00000000cafef00d cols=a.mach_id:d,a.value:r\n"
      "node 3 report in=2 cols=a.mach_id:d\n");
  EXPECT_TRUE(VerifyIr(ok).ok()) << VerifyIr(ok).Format(ok);
}

TEST(AbsintVerifyTest, V008AnchorsAtTheWideningJoin) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=128 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 2 join in=0,1 key=d-d "
      "cols=h.source_id:d,h.recency_timestamp:r,a.mach_id:d,a.value:r\n"
      "node 3 merge in=2 set sorted gen "
      "cols=source_id:d,recency_timestamp:r\n"
      "node 4 tempwrite in=3 table=sys_temp_a session=7 src=heartbeat "
      "cols=source_id:d,recency_timestamp:r\n"
      "node 5 report in=4 cols=source_id:d\n");
  const VerifyReport report = VerifyIr(ir);
  ASSERT_EQ(Codes(report), std::vector<std::string>{"TRAC-V008"});
  EXPECT_EQ(report.diagnostics[0].node, 2u);
  EXPECT_EQ(report.diagnostics[0].kind, IrNodeKind::kJoin);
  // Declaring both sources makes the same plan clean.
  const PlanIr ok = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=128 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 2 join in=0,1 key=d-d "
      "cols=h.source_id:d,h.recency_timestamp:r,a.mach_id:d,a.value:r\n"
      "node 3 merge in=2 set sorted gen "
      "cols=source_id:d,recency_timestamp:r\n"
      "node 4 tempwrite in=3 table=sys_temp_a session=7 src=activity,heartbeat "
      "cols=source_id:d,recency_timestamp:r\n"
      "node 5 report in=4 cols=source_id:d\n");
  EXPECT_TRUE(VerifyIr(ok).ok()) << VerifyIr(ok).Format(ok);
}

TEST(AbsintVerifyTest, StructuralOnlyModeSkipsSemanticRules) {
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=128 age=0..128000000 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 report in=0 bound=0 cols=h.source_id:d\n");
  VerifyOptions structural;
  structural.absint = false;
  EXPECT_TRUE(VerifyIr(ir, structural).ok());
  EXPECT_FALSE(VerifyIr(ir).ok());
}

// ---------------------------------------------------------------------
// Planner short-circuit hint.

TEST(AbsintPlannerTest, StaticCardHintShortCircuitsDeadSubplans) {
  Database db;
  ASSERT_TRUE(ExecuteStatement(&db,
                               "CREATE TABLE t (id INTEGER DATA SOURCE, "
                               "v INTEGER)")
                  .ok());
  ASSERT_TRUE(ExecuteStatement(&db, "INSERT INTO t VALUES (1, 10)").ok());
  auto query = BindSql(db, "SELECT id FROM t WHERE v > 5");
  ASSERT_TRUE(query.ok()) << query.status();
  const Snapshot snapshot = db.LatestSnapshot();

  auto plain = PlanQuery(db, *query, snapshot);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_FALSE(plain->provably_empty);

  const absint::CardInterval empty = absint::CardInterval::Exact(0);
  PlanningHints hints;
  hints.static_card = &empty;
  auto pruned = PlanQuery(db, *query, snapshot, hints);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  EXPECT_TRUE(pruned->provably_empty);

  const absint::CardInterval live = absint::CardInterval::UpTo(8);
  hints.static_card = &live;
  auto kept = PlanQuery(db, *query, snapshot, hints);
  ASSERT_TRUE(kept.ok()) << kept.status();
  EXPECT_FALSE(kept->provably_empty);
}

}  // namespace
}  // namespace trac
