// Unit tests for the dependency domain (absint/deps.h): footprint
// extraction over the plan IR — base tables vs session temp tables,
// provenance-carried data sources, the staleness-sensitivity bit, and
// the deterministic ToString rendering the --cache-deps goldens pin.

#include <string>

#include <gtest/gtest.h>

#include "absint/absint.h"
#include "absint/deps.h"
#include "ir/plan_ir.h"

namespace trac {
namespace {

using absint::DepFootprint;
using absint::ExtractDeps;

PlanIr MustParse(const std::string& text) {
  auto ir = ParsePlanIr(text);
  EXPECT_TRUE(ir.ok()) << ir.status().ToString();
  return ir.ok() ? *ir : PlanIr{};
}

TEST(DepFootprintTest, TablesSortedAndDeduplicated) {
  const PlanIr ir = MustParse(
      "ir plan\n"
      "node 0 scan table=routing snap=3 cols=r.mach_id:d\n"
      "node 1 scan table=activity snap=3 cols=a.mach_id:d\n"
      "node 2 scan table=activity snap=3 cols=a.mach_id:d\n"
      "node 3 merge in=0,1,2 set gen cols=mach_id:d\n");
  const DepFootprint fp = ExtractDeps(ir);
  ASSERT_EQ(fp.tables.size(), 2u);
  EXPECT_EQ(fp.tables[0], "activity");
  EXPECT_EQ(fp.tables[1], "routing");
  EXPECT_TRUE(fp.temp_tables.empty());
  EXPECT_TRUE(fp.ContainsTable("activity"));
  EXPECT_TRUE(fp.ContainsTable("routing"));
  EXPECT_FALSE(fp.ContainsTable("heartbeat"));
}

TEST(DepFootprintTest, TempTablesCollectedSeparately) {
  const PlanIr ir = MustParse(
      "ir plan\n"
      "node 0 scan table=heartbeat snap=3 cols=h.source_id:d\n"
      "node 1 scan table=sys_temp_a1 snap=3 cols=t.source_id:d\n"
      "node 2 merge in=0,1 set gen cols=source_id:d\n");
  const DepFootprint fp = ExtractDeps(ir);
  ASSERT_EQ(fp.tables.size(), 1u);
  EXPECT_EQ(fp.tables[0], "heartbeat");
  ASSERT_EQ(fp.temp_tables.size(), 1u);
  EXPECT_EQ(fp.temp_tables[0], "sys_temp_a1");
  // A temp table is a witness of session-locality, not a dependency:
  // ContainsTable only answers for the durable footprint.
  EXPECT_FALSE(fp.ContainsTable("sys_temp_a1"));
}

TEST(DepFootprintTest, AgeAnnotationSetsStalenessSensitive) {
  const PlanIr plain = MustParse(
      "ir plan\n"
      "node 0 scan table=heartbeat snap=3 cols=h.source_id:d\n");
  EXPECT_FALSE(ExtractDeps(plain).staleness_sensitive);

  const PlanIr aged = MustParse(
      "ir plan\n"
      "node 0 scan table=heartbeat snap=3 "
      "age=1142431200000000..1142431327000000 cols=h.source_id:d\n");
  EXPECT_TRUE(ExtractDeps(aged).staleness_sensitive);
}

TEST(DepFootprintTest, SourcesUnionProvenanceAcrossNodes) {
  // The :d column markers feed the fixpoint's provenance domain; the
  // footprint unions it over every node.
  const PlanIr ir = MustParse(
      "ir plan\n"
      "node 0 scan table=activity snap=3 cols=a.mach_id:d\n"
      "node 1 scan table=routing snap=3 cols=r.mach_id:d\n"
      "node 2 merge in=0,1 set gen cols=mach_id:d\n");
  const absint::AbsintResult analysis = absint::AnalyzeIr(ir);
  const DepFootprint fp = ExtractDeps(ir, analysis);
  EXPECT_FALSE(fp.sources.empty());
  // The overload running the fixpoint internally agrees.
  EXPECT_TRUE(ExtractDeps(ir).sources == fp.sources);
}

TEST(DepFootprintTest, ToStringRendersFourPinnedLines) {
  const PlanIr ir = MustParse(
      "ir plan\n"
      "node 0 scan table=heartbeat snap=3 "
      "age=1142431200000000..1142431327000000 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 merge in=0 set sorted gen cols=source_id:d\n");
  const DepFootprint fp = ExtractDeps(ir);
  const std::string text = fp.ToString();
  EXPECT_NE(text.find("footprint tables=heartbeat\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("footprint temps=-\n"), std::string::npos) << text;
  EXPECT_NE(text.find("footprint sources="), std::string::npos) << text;
  EXPECT_NE(text.find("footprint staleness=sensitive\n"), std::string::npos)
      << text;
}

TEST(DepFootprintTest, EmptyFootprintRendersDashes) {
  DepFootprint fp;
  const std::string text = fp.ToString();
  EXPECT_NE(text.find("footprint tables=-\n"), std::string::npos);
  EXPECT_NE(text.find("footprint temps=-\n"), std::string::npos);
  EXPECT_NE(text.find("footprint staleness=none\n"), std::string::npos);
}

}  // namespace
}  // namespace trac
