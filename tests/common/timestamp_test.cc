#include "common/timestamp.h"

#include <gtest/gtest.h>

namespace trac {
namespace {

TEST(TimestampTest, ParseAndFormatRoundTrip) {
  auto ts = Timestamp::Parse("2006-03-15 14:20:05");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->ToString(), "2006-03-15 14:20:05");
}

TEST(TimestampTest, ParseWithFraction) {
  auto ts = Timestamp::Parse("2006-03-15 14:20:05.250000");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->micros() % Timestamp::kMicrosPerSecond, 250000);
  EXPECT_EQ(ts->ToString(), "2006-03-15 14:20:05.250000");
}

TEST(TimestampTest, ParsePartialFractionScales) {
  auto ts = Timestamp::Parse("2006-03-15 14:20:05.5");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->micros() % Timestamp::kMicrosPerSecond, 500000);
}

TEST(TimestampTest, EpochFormatsCorrectly) {
  EXPECT_EQ(Timestamp().ToString(), "1970-01-01 00:00:00");
}

TEST(TimestampTest, KnownEpochSeconds) {
  // 2006-03-15 14:20:05 UTC == 1142432405 seconds since the epoch.
  auto ts = Timestamp::Parse("2006-03-15 14:20:05");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->seconds(), 1142432405);
}

TEST(TimestampTest, LeapYearFebruary29) {
  auto ts = Timestamp::Parse("2004-02-29 00:00:00");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->ToString(), "2004-02-29 00:00:00");
}

TEST(TimestampTest, PreEpochDates) {
  auto ts = Timestamp::Parse("1969-12-31 23:59:59");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->micros(), -Timestamp::kMicrosPerSecond);
  EXPECT_EQ(ts->ToString(), "1969-12-31 23:59:59");
}

TEST(TimestampTest, RejectsMalformedInputs) {
  for (const char* bad :
       {"", "2006-03-15", "2006/03/15 14:20:05", "2006-13-15 14:20:05",
        "2006-03-32 14:20:05", "2006-03-15 24:20:05", "2006-03-15 14:61:05",
        "2006-03-15 14:20:05.", "2006-03-15 14:20:05.1234567",
        "2006-03-15T14:20:05", "garbage text here!!"}) {
    EXPECT_FALSE(Timestamp::Parse(bad).ok()) << bad;
  }
}

TEST(TimestampTest, ComparisonAndArithmetic) {
  Timestamp a = Timestamp::FromSeconds(100);
  Timestamp b = Timestamp::FromSeconds(160);
  EXPECT_LT(a, b);
  EXPECT_EQ(b - a, 60 * Timestamp::kMicrosPerSecond);
  EXPECT_EQ(a + 60 * Timestamp::kMicrosPerSecond, b);
  EXPECT_EQ(b - 60 * Timestamp::kMicrosPerSecond, a);
}

TEST(TimestampTest, RoundTripSweepAcrossDays) {
  // Property: Parse(ToString(t)) == t over a spread of instants.
  for (int64_t secs = -86400 * 400; secs <= 86400 * 400;
       secs += 86400 * 13 + 3607) {
    Timestamp t(secs * Timestamp::kMicrosPerSecond + 123456);
    auto parsed = Timestamp::Parse(t.ToString());
    ASSERT_TRUE(parsed.ok()) << t.ToString();
    EXPECT_EQ(parsed->micros(), t.micros()) << t.ToString();
  }
}

TEST(DurationFormatTest, FormatsPostgresStyle) {
  EXPECT_EQ(FormatDurationMicros(20 * Timestamp::kMicrosPerMinute),
            "00:20:00");
  EXPECT_EQ(FormatDurationMicros(0), "00:00:00");
  EXPECT_EQ(FormatDurationMicros(-90 * Timestamp::kMicrosPerSecond),
            "-00:01:30");
  EXPECT_EQ(FormatDurationMicros(3 * Timestamp::kMicrosPerHour +
                                 5 * Timestamp::kMicrosPerMinute + 500000),
            "03:05:00.500000");
  // Durations beyond a day keep accumulating hours.
  EXPECT_EQ(FormatDurationMicros(30 * Timestamp::kMicrosPerDay), "720:00:00");
}

}  // namespace
}  // namespace trac
