#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace trac {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::TypeError("").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::Unsupported("").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> HalfOf(int x) {
  TRAC_RETURN_IF_ERROR(FailIfNegative(x));
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  TRAC_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = HalfOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 4);
  EXPECT_EQ(ok.value_or(-1), 4);

  Result<int> err = HalfOf(7);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MacrosPropagate) {
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_FALSE(QuarterOf(6).ok());   // Half is 3, odd.
  EXPECT_FALSE(QuarterOf(-4).ok());  // RETURN_IF_ERROR path.
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(StrUtilTest, CaseFolding) {
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_EQ(ToUpperAscii("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCaseAscii("WHERE", "where"));
  EXPECT_TRUE(EqualsIgnoreCaseAscii("", ""));
  EXPECT_FALSE(EqualsIgnoreCaseAscii("ab", "abc"));
  EXPECT_FALSE(EqualsIgnoreCaseAscii("ab", "ac"));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " AND "), "a AND b AND c");
}

TEST(StrUtilTest, QuoteSqlString) {
  EXPECT_EQ(QuoteSqlString("idle"), "'idle'");
  EXPECT_EQ(QuoteSqlString("o'brien"), "'o''brien'");
  EXPECT_EQ(QuoteSqlString(""), "''");
}

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(99);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RandomTest, ZeroSeedStillWorks) {
  Random rng(0);
  EXPECT_NE(rng.Next(), rng.Next());
}

}  // namespace
}  // namespace trac
