// Unit tests for the plan-IR equivalence checker (verify/equiv.h): the
// proof engine behind the optimizer's translation validation. Each test
// hand-writes a (before, after) witness in the Dump() text format and
// checks which of the TRAC-V009..V012 obligations it discharges.

#include "verify/equiv.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/plan_ir.h"
#include "verify/verifier.h"

namespace trac {
namespace {

PlanIr Parse(const std::string& text) {
  auto ir = ParsePlanIr(text);
  EXPECT_TRUE(ir.ok()) << ir.status();
  return std::move(*ir);
}

/// Collects the diagnostic code ids of a report, in emission order.
std::vector<std::string> Codes(const VerifyReport& report) {
  std::vector<std::string> out;
  for (const VerifyDiagnostic& d : report.diagnostics) {
    out.push_back(std::string(VerifyCodeId(d.code)));
  }
  return out;
}

const char kLinear[] =
    "ir linear\n"
    "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
    "node 1 filter in=0 pred=00000000cafe0001 cols=a.mach_id:d,a.value:r\n"
    "node 2 report in=1 cols=a.mach_id:d,a.value:r\n";

TEST(EquivTest, IdenticalPlansAreEquivalent) {
  const PlanIr ir = Parse(kLinear);
  EXPECT_TRUE(CheckIrEquivalence(ir, ir).ok());
}

TEST(EquivTest, LabelDifferenceIsIrrelevant) {
  PlanIr before = Parse(kLinear);
  PlanIr after = Parse(kLinear);
  after.label = "renamed";
  EXPECT_TRUE(CheckIrEquivalence(before, after).ok());
}

TEST(EquivTest, FilterPlacementIsIrrelevant) {
  // Same predicate residue, applied below the join instead of above it:
  // V009 judges the fingerprint SET, not the placement.
  const PlanIr before = Parse(
      "ir above\n"
      "node 0 scan table=activity snap=5 cols=a.mach_id:d\n"
      "node 1 scan table=routing snap=5 cols=r.mach_id:d\n"
      "node 2 join in=0,1 key=d-d cols=a.mach_id:d\n"
      "node 3 filter in=2 pred=00000000cafe0001 cols=a.mach_id:d\n"
      "node 4 report in=3 cols=a.mach_id:d\n");
  const PlanIr after = Parse(
      "ir below\n"
      "node 0 scan table=activity snap=5 cols=a.mach_id:d\n"
      "node 1 filter in=0 pred=00000000cafe0001 cols=a.mach_id:d\n"
      "node 2 scan table=routing snap=5 cols=r.mach_id:d\n"
      "node 3 join in=1,2 key=d-d cols=a.mach_id:d\n"
      "node 4 report in=3 cols=a.mach_id:d\n");
  EXPECT_TRUE(CheckIrEquivalence(before, after).ok());
  EXPECT_TRUE(CheckIrEquivalence(after, before).ok());
}

TEST(EquivTest, DuplicateConjunctCollapsesClean) {
  // p AND p == p: dropping the second application of an identical
  // fingerprint preserves the residue set.
  const PlanIr before = Parse(
      "ir twice\n"
      "node 0 scan table=activity snap=5 cols=a.value:r\n"
      "node 1 filter in=0 pred=00000000deadbeef cols=a.value:r\n"
      "node 2 filter in=1 pred=00000000deadbeef cols=a.value:r\n"
      "node 3 report in=2 cols=a.value:r\n");
  const PlanIr after = Parse(
      "ir once\n"
      "node 0 scan table=activity snap=5 cols=a.value:r\n"
      "node 1 filter in=0 pred=00000000deadbeef cols=a.value:r\n"
      "node 2 report in=1 cols=a.value:r\n");
  EXPECT_TRUE(CheckIrEquivalence(before, after).ok());
}

TEST(EquivTest, DroppedPredicateIsV009) {
  const PlanIr before = Parse(kLinear);
  const PlanIr after = Parse(
      "ir dropped\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 report in=0 cols=a.mach_id:d,a.value:r\n");
  const VerifyReport report = CheckIrEquivalence(before, after);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"TRAC-V009"});
}

TEST(EquivTest, InventedPredicateIsV009) {
  // The reverse direction: the rewrite applies a fingerprint the
  // original never did (it would silently drop rows).
  const PlanIr before = Parse(
      "ir plain\n"
      "node 0 scan table=activity snap=5 cols=a.value:r\n"
      "node 1 report in=0 cols=a.value:r\n");
  const PlanIr after = Parse(
      "ir extra\n"
      "node 0 scan table=activity snap=5 cols=a.value:r\n"
      "node 1 filter in=0 pred=00000000aaaa0001 cols=a.value:r\n"
      "node 2 report in=1 cols=a.value:r\n");
  const VerifyReport report = CheckIrEquivalence(before, after);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"TRAC-V009"});
}

TEST(EquivTest, ProvenanceClassChangeIsV010) {
  PlanIr before = Parse(kLinear);
  const PlanIr after = Parse(
      "ir demoted\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 pred=00000000cafe0001 cols=a.mach_id:d,a.value:r\n"
      "node 2 report in=1 cols=a.mach_id:r,a.value:r\n");
  const VerifyReport report = CheckIrEquivalence(before, after);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"TRAC-V010"});
}

TEST(EquivTest, MissingOutputColumnIsV010) {
  const PlanIr before = Parse(kLinear);
  const PlanIr after = Parse(
      "ir narrower\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 pred=00000000cafe0001 cols=a.mach_id:d,a.value:r\n"
      "node 2 report in=1 cols=a.value:r\n");
  const VerifyReport report = CheckIrEquivalence(before, after);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"TRAC-V010"});
}

TEST(EquivTest, SnapshotEpochChangeIsV011) {
  const PlanIr before = Parse(kLinear);
  const PlanIr after = Parse(
      "ir moved\n"
      "node 0 scan table=activity snap=6 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 pred=00000000cafe0001 cols=a.mach_id:d,a.value:r\n"
      "node 2 report in=1 cols=a.mach_id:d,a.value:r\n");
  const VerifyReport report = CheckIrEquivalence(before, after);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"TRAC-V011"});
}

TEST(EquivTest, MergeDeterminismChangeIsV011) {
  const char* kSharded =
      "ir sharded\n"
      "node 0 scan table=heartbeat snap=5 shard=0/2 cols=h.source_id:d\n"
      "node 1 scan table=heartbeat snap=5 shard=1/2 cols=h.source_id:d\n"
      "node 2 merge in=0,1 set sorted cols=source_id:d\n"
      "node 3 report in=2 cols=source_id:d\n";
  const PlanIr before = Parse(kSharded);
  const PlanIr after = Parse(
      "ir unsorted\n"
      "node 0 scan table=heartbeat snap=5 shard=0/2 cols=h.source_id:d\n"
      "node 1 scan table=heartbeat snap=5 shard=1/2 cols=h.source_id:d\n"
      "node 2 merge in=0,1 set cols=source_id:d\n"
      "node 3 report in=2 cols=source_id:d\n");
  const VerifyReport report = CheckIrEquivalence(before, after);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"TRAC-V011"});
}

TEST(EquivTest, WeakenedBoundIsV012) {
  const PlanIr before = Parse(
      "ir tight\n"
      "node 0 scan table=activity snap=5 cols=a.value:r\n"
      "node 1 report in=0 bound=1000000 cols=a.value:r\n");
  const PlanIr after = Parse(
      "ir loose\n"
      "node 0 scan table=activity snap=5 cols=a.value:r\n"
      "node 1 report in=0 bound=2000000 cols=a.value:r\n");
  EXPECT_EQ(Codes(CheckIrEquivalence(before, after)),
            std::vector<std::string>{"TRAC-V012"});
  // Tightening the promise is always allowed.
  EXPECT_TRUE(CheckIrEquivalence(after, before).ok());
}

TEST(EquivTest, DroppedBoundIsV012) {
  const PlanIr before = Parse(
      "ir promised\n"
      "node 0 scan table=activity snap=5 cols=a.value:r\n"
      "node 1 report in=0 bound=1000000 cols=a.value:r\n");
  const PlanIr after = Parse(
      "ir unpromised\n"
      "node 0 scan table=activity snap=5 cols=a.value:r\n"
      "node 1 report in=0 cols=a.value:r\n");
  EXPECT_EQ(Codes(CheckIrEquivalence(before, after)),
            std::vector<std::string>{"TRAC-V012"});
  // Adding a promise the original lacked is a strengthening: clean.
  EXPECT_TRUE(CheckIrEquivalence(after, before).ok());
}

TEST(EquivTest, MalformedWitnessIsV000) {
  const PlanIr before = Parse(kLinear);
  PlanIr cyclic = Parse(kLinear);
  cyclic.nodes[0].inputs.push_back(2);  // Forward edge: not a DAG order.
  EXPECT_EQ(Codes(CheckIrEquivalence(before, cyclic)),
            std::vector<std::string>{"TRAC-V000"});
  EXPECT_EQ(Codes(CheckIrEquivalence(cyclic, before)),
            std::vector<std::string>{"TRAC-V000"});
}

TEST(EquivTest, NormalizeIsIdempotent) {
  const PlanIr ir = Parse(kLinear);
  const PlanIr once = NormalizeIr(ir);
  const PlanIr twice = NormalizeIr(once);
  EXPECT_EQ(once.Dump(), twice.Dump());
}

TEST(EquivTest, NormalizeCanonicalizesIndependentNodeOrder) {
  // The two scans are independent; normalization must pick one order
  // regardless of how the input interleaves them.
  const PlanIr a = Parse(
      "ir a\n"
      "node 0 scan table=activity snap=5 cols=a.mach_id:d\n"
      "node 1 scan table=routing snap=5 cols=r.mach_id:d\n"
      "node 2 join in=0,1 key=d-d cols=a.mach_id:d\n"
      "node 3 report in=2 cols=a.mach_id:d\n");
  const PlanIr b = Parse(
      "ir a\n"
      "node 0 scan table=routing snap=5 cols=r.mach_id:d\n"
      "node 1 scan table=activity snap=5 cols=a.mach_id:d\n"
      "node 2 join in=1,0 key=d-d cols=a.mach_id:d\n"
      "node 3 report in=2 cols=a.mach_id:d\n");
  EXPECT_EQ(NormalizeIr(a).Dump(), NormalizeIr(b).Dump());
}

TEST(EquivTest, NormalizeTracksOriginalIds) {
  const PlanIr ir = Parse(kLinear);
  std::vector<size_t> original;
  const PlanIr norm = NormalizeIr(ir, &original);
  ASSERT_EQ(original.size(), norm.nodes.size());
  for (size_t k = 0; k < norm.nodes.size(); ++k) {
    EXPECT_EQ(ir.nodes[original[k]].kind, norm.nodes[k].kind);
  }
}

}  // namespace
}  // namespace trac
