#include "verify/verifier.h"

#include <gtest/gtest.h>

namespace trac {
namespace {

/// Parses `text`, runs the verifier, and returns the report.
VerifyReport Verify(const std::string& text) {
  auto parsed = ParsePlanIr(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return VerifyIr(*parsed);
}

bool HasCode(const VerifyReport& report, VerifyCode code) {
  for (const VerifyDiagnostic& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(VerifierTest, CleanSessionShapePasses) {
  const VerifyReport report = Verify(
      "ir clean\n"
      "node 0 scan table=activity snap=5 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 cols=a.mach_id:d,a.value:r\n"
      "node 2 scan table=heartbeat snap=5 gen "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 3 scan table=heartbeat snap=5 gen "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 4 merge in=2,3 set sorted gen cols=source_id:d\n"
      "node 5 tempwrite in=4 table=sys_temp_a1 session=7 gen "
      "cols=source_id:d\n"
      "node 6 report in=1,5 gen\n");
  EXPECT_TRUE(report.ok()) << report.Format(PlanIr{});
}

// --- TRAC-V000: malformed graph --------------------------------------------

TEST(VerifierTest, ForwardEdgeIsMalformed) {
  const VerifyReport report = Verify(
      "ir fwd\n"
      "node 0 scan table=t snap=1 cols=x:d\n"
      "node 1 filter in=2 cols=x:d\n"
      "node 2 report in=1 cols=x:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kMalformedGraph));
  EXPECT_EQ(VerifyCodeId(report.diagnostics[0].code), "TRAC-V000");
}

TEST(VerifierTest, SelfEdgeIsMalformed) {
  const VerifyReport report = Verify(
      "ir self\n"
      "node 0 scan table=t snap=1 cols=x:d\n"
      "node 1 filter in=1 cols=x:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kMalformedGraph));
}

TEST(VerifierTest, NonDenseIdsAreMalformedAndShortCircuit) {
  // The text parser already rejects sparse ids, so build this by hand.
  PlanIr ir;
  ir.label = "sparse";
  IrNode scan;
  scan.id = 3;  // Should be 0.
  scan.kind = IrNodeKind::kScan;
  scan.table = "t";
  ir.nodes.push_back(scan);
  const VerifyReport report = VerifyIr(ir);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, VerifyCode::kMalformedGraph);
}

// --- TRAC-V001: single snapshot --------------------------------------------

TEST(VerifierTest, SnapshotMismatchRejected) {
  const VerifyReport report = Verify(
      "ir snap\n"
      "node 0 scan table=a snap=7 cols=x:d\n"
      "node 1 scan table=b snap=8 cols=y:d\n"
      "node 2 report in=0,1 cols=x:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kSnapshotMismatch));
  EXPECT_EQ(VerifyCodeId(VerifyCode::kSnapshotMismatch), "TRAC-V001");
}

TEST(VerifierTest, EverySnapshotMismatchIsReported) {
  const VerifyReport report = Verify(
      "ir snap3\n"
      "node 0 scan table=a snap=7 cols=x:d\n"
      "node 1 scan table=b snap=8 cols=y:d\n"
      "node 2 scan table=c snap=9 cols=z:d\n"
      "node 3 report in=0,1,2 cols=x:d\n");
  size_t mismatches = 0;
  for (const VerifyDiagnostic& d : report.diagnostics) {
    mismatches += d.code == VerifyCode::kSnapshotMismatch;
  }
  EXPECT_EQ(mismatches, 2u);  // Nodes 1 and 2 against node 0's epoch.
}

// --- TRAC-V002: temp-table discipline --------------------------------------

TEST(VerifierTest, TempUseBeforeDefRejected) {
  const VerifyReport report = Verify(
      "ir usedef\n"
      "node 0 scan table=sys_temp_a9 snap=1 cols=source_id:d\n"
      "node 1 report in=0 cols=source_id:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kTempUseBeforeDef));
  EXPECT_EQ(VerifyCodeId(VerifyCode::kTempUseBeforeDef), "TRAC-V002");
}

TEST(VerifierTest, PreexistingTempScanIsAllowed) {
  const VerifyReport report = Verify(
      "ir pre\n"
      "node 0 scan table=sys_temp_a9 snap=1 pre cols=source_id:d\n"
      "node 1 report in=0 cols=source_id:d\n");
  EXPECT_TRUE(report.ok());
}

TEST(VerifierTest, DefThenUseIsAllowed) {
  const VerifyReport report = Verify(
      "ir defuse\n"
      "node 0 scan table=heartbeat snap=1 cols=source_id:d\n"
      "node 1 tempwrite in=0 table=sys_temp_a9 session=2 cols=source_id:d\n"
      "node 2 scan table=sys_temp_a9 snap=1 session=2 cols=source_id:d\n"
      "node 3 report in=2 cols=source_id:d\n");
  EXPECT_TRUE(report.ok()) << report.Format(PlanIr{});
}

TEST(VerifierTest, SessionlessTempWriteRejected) {
  const VerifyReport report = Verify(
      "ir unowned\n"
      "node 0 scan table=heartbeat snap=1 cols=source_id:d\n"
      "node 1 tempwrite in=0 table=sys_temp_a9 cols=source_id:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kTempSessionEscape));
}

TEST(VerifierTest, CrossSessionTempsRejected) {
  const VerifyReport report = Verify(
      "ir cross\n"
      "node 0 scan table=heartbeat snap=1 cols=source_id:d\n"
      "node 1 tempwrite in=0 table=sys_temp_a1 session=5 cols=source_id:d\n"
      "node 2 tempwrite in=0 table=sys_temp_a2 session=9 cols=source_id:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kTempSessionEscape));
}

// --- TRAC-V003: deterministic merge ----------------------------------------

TEST(VerifierTest, UnmergedShardsRejectedAtReport) {
  const VerifyReport report = Verify(
      "ir shards\n"
      "node 0 scan table=heartbeat snap=1 shard=0/2 cols=source_id:d\n"
      "node 1 scan table=heartbeat snap=1 shard=1/2 cols=source_id:d\n"
      "node 2 merge in=0,1 gen cols=source_id:d\n"
      "node 3 report in=2 cols=source_id:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kNondeterministicMerge));
  EXPECT_EQ(VerifyCodeId(VerifyCode::kNondeterministicMerge), "TRAC-V003");
}

TEST(VerifierTest, SetMergeClearsShardTaint) {
  const VerifyReport report = Verify(
      "ir setmerge\n"
      "node 0 scan table=heartbeat snap=1 shard=0/2 cols=source_id:d\n"
      "node 1 scan table=heartbeat snap=1 shard=1/2 cols=source_id:d\n"
      "node 2 merge in=0,1 set gen cols=source_id:d\n"
      "node 3 report in=2 cols=source_id:d\n");
  EXPECT_TRUE(report.ok()) << report.Format(PlanIr{});
}

TEST(VerifierTest, SortedMergeClearsShardTaint) {
  const VerifyReport report = Verify(
      "ir sortedmerge\n"
      "node 0 scan table=heartbeat snap=1 shard=0/2 cols=source_id:d\n"
      "node 1 scan table=heartbeat snap=1 shard=1/2 cols=source_id:d\n"
      "node 2 merge in=0,1 sorted gen cols=source_id:d\n"
      "node 3 report in=2 cols=source_id:d\n");
  EXPECT_TRUE(report.ok()) << report.Format(PlanIr{});
}

TEST(VerifierTest, ShardTaintPropagatesThroughFilters) {
  const VerifyReport report = Verify(
      "ir taintprop\n"
      "node 0 scan table=heartbeat snap=1 shard=0/2 cols=source_id:d\n"
      "node 1 filter in=0 cols=source_id:d\n"
      "node 2 tempwrite in=1 table=sys_temp_a1 session=2 cols=source_id:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kNondeterministicMerge));
}

TEST(VerifierTest, AggregateBoundaryCatchesTaint) {
  const VerifyReport report = Verify(
      "ir taintagg\n"
      "node 0 scan table=heartbeat snap=1 shard=0/2 cols=source_id:d\n"
      "node 1 agg in=0 fns=count:r cols=n:r\n"
      "node 2 report in=1 cols=n:r\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kNondeterministicMerge));
}

// --- TRAC-V004: provenance hygiene -----------------------------------------

TEST(VerifierTest, SumOverDataSourceColumnRejected) {
  const VerifyReport report = Verify(
      "ir sumds\n"
      "node 0 scan table=activity snap=1 cols=a.mach_id:d,a.value:r\n"
      "node 1 agg in=0 fns=sum:d cols=total:r\n"
      "node 2 report in=1 cols=total:r\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kProvenanceLeak));
  EXPECT_EQ(VerifyCodeId(VerifyCode::kProvenanceLeak), "TRAC-V004");
}

TEST(VerifierTest, CountOverDataSourceColumnIsFine) {
  // count/min/max preserve or ignore identity; only sum/avg treat the
  // column as a quantity.
  const VerifyReport report = Verify(
      "ir countds\n"
      "node 0 scan table=activity snap=1 cols=a.mach_id:d,a.value:r\n"
      "node 1 agg in=0 fns=count:d,min:d,max:d cols=n:r\n"
      "node 2 report in=1 cols=n:r\n");
  EXPECT_TRUE(report.ok()) << report.Format(PlanIr{});
}

TEST(VerifierTest, TempWriteWithoutSourceColumnRejected) {
  const VerifyReport report = Verify(
      "ir nods\n"
      "node 0 scan table=activity snap=1 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 cols=a.value:r\n"
      "node 2 tempwrite in=1 table=sys_temp_a1 session=2 cols=a.value:r\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kProvenanceLeak));
}

TEST(VerifierTest, GeneratedMergeInputWithoutSourceColumnRejected) {
  const VerifyReport report = Verify(
      "ir mergeleak\n"
      "node 0 scan table=heartbeat snap=1 "
      "cols=source_id:d,recency_timestamp:r\n"
      "node 1 scan table=activity snap=1 cols=a.value:r\n"
      "node 2 merge in=0,1 set gen cols=source_id:d\n"
      "node 3 report in=2 cols=source_id:d\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, VerifyCode::kProvenanceLeak));
}

TEST(VerifierTest, UserMergeWithoutSourceColumnIsFine) {
  // Only *generated* merges carry the relevance-delivery obligation; a
  // user query unioning regular columns is legal.
  const VerifyReport report = Verify(
      "ir usermerge\n"
      "node 0 scan table=a snap=1 cols=x:r\n"
      "node 1 scan table=b snap=1 cols=y:r\n"
      "node 2 merge in=0,1 set cols=x:r\n"
      "node 3 report in=2 cols=x:r\n");
  EXPECT_TRUE(report.ok()) << report.Format(PlanIr{});
}

// --- Reporting surfaces ----------------------------------------------------

TEST(VerifierTest, DiagnosticFormatCarriesCodeNodeAndKind) {
  const VerifyReport report = Verify(
      "ir fmt\n"
      "node 0 scan table=a snap=7 cols=x:d\n"
      "node 1 scan table=b snap=8 cols=y:d\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string line = report.diagnostics[0].Format();
  EXPECT_NE(line.find("[TRAC-V001]"), std::string::npos) << line;
  EXPECT_NE(line.find("node 1"), std::string::npos) << line;
  EXPECT_NE(line.find("(scan)"), std::string::npos) << line;
}

TEST(VerifierTest, VerifyIrStatusFoldsFindings) {
  auto parsed = ParsePlanIr(
      "ir status\n"
      "node 0 scan table=a snap=7 cols=x:d\n"
      "node 1 scan table=b snap=8 cols=y:d\n");
  ASSERT_TRUE(parsed.ok());
  const Status s = VerifyIrStatus(*parsed);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("TRAC-V001"), std::string::npos) << s.ToString();

  auto clean = ParsePlanIr(
      "ir ok\n"
      "node 0 scan table=a snap=7 cols=x:d\n"
      "node 1 report in=0 cols=x:d\n");
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(VerifyIrStatus(*clean).ok());
}

}  // namespace
}  // namespace trac
