// End-to-end wiring check for the plan verifier: every query planned or
// executed through the public entry points must pass VerifyPlan /
// VerifyReportSession with zero findings. In release builds a
// verification failure surfaces as an error Status from PlanQuery or
// RecencyReporter::Run — which these assertions would catch; compiled
// with TRAC_DEBUG_INVARIANTS=1 (see tests/CMakeLists.txt) the same
// failure aborts at the TRAC_DCHECK site, pinpointing the pass.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "exec/planner.h"
#include "expr/binder.h"
#include "verify/verifier.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

const char* const kUserQueries[] = {
    // Point lookup (the paper's Q1 shape).
    "SELECT mach_id FROM activity WHERE mach_id = 'm1' AND value = 'idle'",
    // Full scan with a regular-column predicate.
    "SELECT mach_id FROM activity WHERE value = 'busy'",
    // Join of two monitored tables.
    "SELECT a.mach_id FROM activity a, routing r "
    "WHERE a.mach_id = r.mach_id AND a.value = 'idle'",
    // Disjunction across relations (exercises guarded parts).
    "SELECT a.mach_id FROM activity a, routing r "
    "WHERE (a.mach_id = 'm1' AND a.value = 'idle') OR r.neighbor = 'm3'",
    // Aggregate over a regular column.
    "SELECT COUNT(*) FROM activity WHERE value = 'idle'",
};

TEST(VerifyIntegrationTest, PlanQueryVerifiesEveryPlanItReturns) {
  PaperExampleDb fx;
  const Snapshot snapshot = fx.db.LatestSnapshot();
  for (const char* sql : kUserQueries) {
    SCOPED_TRACE(sql);
    auto query = BindSql(fx.db, sql);
    ASSERT_TRUE(query.ok()) << query.status();
    // PlanQuery runs VerifyPlan internally and refuses to return a plan
    // that fails it; a clean Result is the wiring proof.
    auto plan = PlanQuery(fx.db, *query, snapshot);
    ASSERT_TRUE(plan.ok()) << plan.status();
    // Belt and braces: re-verify the returned plan through the public
    // verifier entry point.
    EXPECT_TRUE(VerifyPlan(fx.db, *query, *plan, snapshot).ok());
  }
}

TEST(VerifyIntegrationTest, ReporterSessionsVerifyAtAllParallelismLevels) {
  for (const size_t parallelism : {size_t{1}, size_t{4}}) {
    PaperExampleDb fx;
    Session session(&fx.db);
    RecencyReporter reporter(&fx.db, &session);
    RecencyReportOptions options;
    options.relevance.parallelism = parallelism;
    for (const char* sql : kUserQueries) {
      SCOPED_TRACE(sql);
      // RecencyReporter::Run verifies the whole session IR (user plan,
      // parts, guards, shard fan-out, temp writes) before executing
      // anything; any TRAC-V finding turns into an error Status here.
      auto report = reporter.Run(sql, options);
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_FALSE(report->normal_temp_table.empty());
    }
  }
}

TEST(VerifyIntegrationTest, NaiveMethodSessionsVerifyToo) {
  PaperExampleDb fx;
  Session session(&fx.db);
  RecencyReporter reporter(&fx.db, &session);
  RecencyReportOptions options;
  options.method = RecencyMethod::kNaive;
  auto report = reporter.Run("SELECT mach_id FROM activity", options);
  ASSERT_TRUE(report.ok()) << report.status();
}

}  // namespace
}  // namespace trac
