// Satellite regression: verifier finding output is canonical — deduped
// by (code, node), stable-sorted by (node, code) — so renderings,
// --json, and goldens are byte-stable, and the finding list for a plan
// is identical whether the session was planned at parallelism 1 or 4.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/relevance.h"
#include "exec/planner.h"
#include "exec/statement.h"
#include "expr/binder.h"
#include "ir/plan_ir.h"
#include "storage/database.h"
#include "verify/verifier.h"

namespace trac {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

PlanIr ParseOrDie(const std::string& text) {
  auto ir = ParsePlanIr(text);
  EXPECT_TRUE(ir.ok()) << ir.status();
  return std::move(*ir);
}

std::vector<std::string> Codes(const VerifyReport& report) {
  std::vector<std::string> out;
  for (const VerifyDiagnostic& d : report.diagnostics) {
    out.emplace_back(VerifyCodeId(d.code));
  }
  return out;
}

TEST(VerifierDeterminismTest, DuplicateFindingsCollapseToOne) {
  // Two dead strands into one merge: V006 anchors at the merge once per
  // (code, node), not once per offending input.
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=activity snap=5 rows=64 cols=a.mach_id:d,a.value:r\n"
      "node 1 filter in=0 sel=zero cols=a.mach_id:d,a.value:r\n"
      "node 2 filter in=0 sel=zero cols=a.mach_id:d,a.value:r\n"
      "node 3 scan table=routing snap=5 rows=64 "
      "cols=r.mach_id:d,r.neighbor:r\n"
      "node 4 merge in=1,2,3 set sorted gen cols=mach_id:d,value:r\n"
      "node 5 report in=4 cols=mach_id:d\n");
  const VerifyReport report = VerifyIr(ir);
  ASSERT_EQ(report.diagnostics.size(), 1u) << report.Format(ir);
  EXPECT_EQ(report.diagnostics[0].code, VerifyCode::kDeadMergeInput);
  EXPECT_EQ(report.diagnostics[0].node, 4u);
}

TEST(VerifierDeterminismTest, FindingsSortByNodeThenCode) {
  // Seed two independent violations anchored at different nodes: the
  // redundant filter (node 2) and the too-tight NOTICE bound (node 3).
  // The rendered order follows node ids regardless of pass order.
  const PlanIr ir = ParseOrDie(
      "ir t\n"
      "node 0 scan table=heartbeat snap=5 rows=128 age=0..127000000 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 filter in=0 pred=00000000deadbeef "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 2 filter in=1 pred=00000000deadbeef "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 3 report in=2 bound=1000000 cols=h.source_id:d\n");
  const VerifyReport report = VerifyIr(ir);
  const std::vector<std::string> want = {"TRAC-V007", "TRAC-V005"};
  ASSERT_EQ(Codes(report), want) << report.Format(ir);
  EXPECT_LT(report.diagnostics[0].node, report.diagnostics[1].node);
  // Repeated runs render byte-identically.
  EXPECT_EQ(VerifyIr(ir).Format(ir), report.Format(ir));
}

class DeterminismCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const fs::path schema =
        fs::path(TRAC_EXAMPLES_DIR) / "plans" / "schema.sql";
    std::istringstream lines(ReadFileOrDie(schema));
    std::string stmt;
    std::string line;
    while (std::getline(lines, line)) {
      const size_t b = line.find_first_not_of(" \t\r");
      if (b != std::string::npos && line.compare(b, 2, "--") == 0) continue;
      stmt += line;
      stmt += '\n';
      if (line.find(';') != std::string::npos) {
        auto result = ExecuteStatement(&db_, stmt);
        ASSERT_TRUE(result.ok()) << result.status() << "\n" << stmt;
        stmt.clear();
      }
    }
  }

  /// Lowers the full q1-style report session at `parallelism` and
  /// returns the verifier findings after seeding the same violation at
  /// the report boundary: a NOTICE bound of 0 that the registry's
  /// 127 s age spread can never satisfy.
  std::vector<std::string> SeededFindings(size_t parallelism) {
    auto query = BindSql(db_, "SELECT mach_id FROM activity");
    EXPECT_TRUE(query.ok()) << query.status();
    auto plan = GenerateRecencyQueries(db_, *query);
    EXPECT_TRUE(plan.ok()) << plan.status();
    const Snapshot snapshot = db_.LatestSnapshot();
    auto user_plan = PlanQuery(db_, *query, snapshot);
    EXPECT_TRUE(user_plan.ok()) << user_plan.status();

    std::vector<QueryPlan> part_plans(plan->parts.size());
    ReportSessionInput input;
    input.user_query = &*query;
    input.user_plan = &*user_plan;
    input.snapshot = snapshot;
    input.session = 1;
    input.temp_writes = {"sys_temp_a1"};
    for (size_t i = 0; i < plan->parts.size(); ++i) {
      const RecencyQueryPlan::Part& part = plan->parts[i];
      SessionPartInput in;
      in.query = &part.query;
      in.shards = PlannedHeartbeatShards(db_, part, parallelism);
      if (in.shards == 1) {
        auto pp = PlanQuery(db_, part.query, snapshot);
        EXPECT_TRUE(pp.ok()) << pp.status();
        part_plans[i] = std::move(*pp);
        in.plan = &part_plans[i];
      }
      input.parts.push_back(std::move(in));
    }
    LowerOptions lower;
    lower.heartbeat_table = std::string(HeartbeatTable::kDefaultName);
    PlanIr ir = LowerReportSession(db_, input, lower);
    for (IrNode& n : ir.nodes) {
      if (n.kind == IrNodeKind::kReport) {
        n.has_bound = true;
        n.notice_bound_micros = 0;
      }
    }
    std::vector<std::string> codes;
    for (const VerifyDiagnostic& d : VerifyIr(ir).diagnostics) {
      codes.emplace_back(VerifyCodeId(d.code));
    }
    return codes;
  }

  Database db_;
};

TEST_F(DeterminismCorpusTest, SameFindingListAtParallelism1And4) {
  const std::vector<std::string> serial = SeededFindings(1);
  const std::vector<std::string> parallel = SeededFindings(4);
  ASSERT_FALSE(serial.empty()) << "seeded violation did not fire";
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, std::vector<std::string>{"TRAC-V005"});
}

}  // namespace
}  // namespace trac
