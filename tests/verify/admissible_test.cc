// Unit tests for the cache-admissibility pass family
// (verify/admissible.h): one focused case per rule TRAC-V013..V016,
// the clean path that populates the key/fingerprint/footprint, the
// malformed-graph rejection, and the multi-part partition shape that
// must NOT trip V016 (k complete shard partitions of one table).

#include <string>

#include <gtest/gtest.h>

#include "ir/fingerprint.h"
#include "ir/plan_ir.h"
#include "verify/admissible.h"

namespace trac {
namespace {

PlanIr MustParse(const std::string& text) {
  auto ir = ParsePlanIr(text);
  EXPECT_TRUE(ir.ok()) << ir.status().ToString();
  return ir.ok() ? *ir : PlanIr{};
}

bool HasCode(const VerifyReport& report, VerifyCode code) {
  for (const VerifyDiagnostic& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(CacheAdmissibilityTest, CleanPlanIsAdmissible) {
  const PlanIr ir = MustParse(
      "ir relevance\n"
      "node 0 scan table=heartbeat snap=3 "
      "age=1142431200000000..1142431327000000 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 merge in=0 set sorted gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_TRUE(adm.admissible) << adm.report.Format(ir);
  EXPECT_TRUE(adm.report.ok());
  EXPECT_EQ(adm.cache_key, IrCacheKey(ir));
  EXPECT_EQ(adm.fingerprint, IrCacheFingerprint(ir));
  ASSERT_EQ(adm.deps.tables.size(), 1u);
  EXPECT_EQ(adm.deps.tables[0], "heartbeat");
  EXPECT_TRUE(adm.deps.staleness_sensitive);
}

TEST(CacheAdmissibilityTest, V013UnorderedMergeInadmissible) {
  const PlanIr ir = MustParse(
      "ir bad\n"
      "node 0 scan table=heartbeat snap=3 cols=h.source_id:d\n"
      "node 1 scan table=activity snap=3 cols=a.mach_id:d\n"
      "node 2 merge in=0,1 gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(adm.admissible);
  EXPECT_TRUE(HasCode(adm.report, VerifyCode::kCacheInadmissibleNode));
}

TEST(CacheAdmissibilityTest, V013TempTableTouchInadmissible) {
  const PlanIr ir = MustParse(
      "ir bad\n"
      "node 0 scan table=sys_temp_a1 snap=3 cols=t.source_id:d\n"
      "node 1 merge in=0 set sorted gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(adm.admissible);
  EXPECT_TRUE(HasCode(adm.report, VerifyCode::kCacheInadmissibleNode));
}

TEST(CacheAdmissibilityTest, V013SessionOwnedNodeInadmissible) {
  const PlanIr ir = MustParse(
      "ir bad\n"
      "node 0 scan table=heartbeat snap=3 session=9 cols=h.source_id:d\n"
      "node 1 merge in=0 set sorted gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(adm.admissible);
  EXPECT_TRUE(HasCode(adm.report, VerifyCode::kCacheInadmissibleNode));
}

TEST(CacheAdmissibilityTest, V014UndeclaredTableInDepsSet) {
  const PlanIr ir = MustParse(
      "ir bad\n"
      "node 0 scan table=heartbeat snap=3 deps=heartbeat "
      "cols=h.source_id:d\n"
      "node 1 scan table=activity snap=3 cols=a.mach_id:d\n"
      "node 2 merge in=0,1 set gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(adm.admissible);
  EXPECT_TRUE(HasCode(adm.report, VerifyCode::kCacheDepsIncomplete));
}

TEST(CacheAdmissibilityTest, V014PlansWithoutDeclarationAreExempt) {
  // No deps= anywhere: extraction alone governs invalidation, so the
  // rule has nothing to cross-check.
  const PlanIr ir = MustParse(
      "ir ok\n"
      "node 0 scan table=heartbeat snap=3 cols=h.source_id:d\n"
      "node 1 scan table=activity snap=3 cols=a.mach_id:d\n"
      "node 2 merge in=0,1 set gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(HasCode(adm.report, VerifyCode::kCacheDepsIncomplete));
}

TEST(CacheAdmissibilityTest, V015StalenessSensitivePlanNeedsRegistry) {
  const PlanIr ir = MustParse(
      "ir bad\n"
      "node 0 scan table=activity snap=3 "
      "age=1142431200000000..1142431327000000 cols=a.mach_id:d\n"
      "node 1 report in=0 cols=a.mach_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(adm.admissible);
  EXPECT_TRUE(HasCode(adm.report, VerifyCode::kCacheRegistryEpochMissing));

  // The same plan under a registry configured to the table it *does*
  // read is clean: the footprint covers the recency state it quotes.
  CacheAdmissibilityOptions options;
  options.registry_table = "activity";
  EXPECT_FALSE(HasCode(AnalyzeCacheAdmissibility(ir, options).report,
                       VerifyCode::kCacheRegistryEpochMissing));
}

TEST(CacheAdmissibilityTest, V016StructurallyMixedShardsUnstable) {
  const PlanIr ir = MustParse(
      "ir bad\n"
      "node 0 scan table=heartbeat snap=3 shard=0/2 "
      "cols=h.source_id:d,h.recency_timestamp:r\n"
      "node 1 scan table=heartbeat snap=3 shard=1/2 cols=h.source_id:d\n"
      "node 2 merge in=0,1 set sorted gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(adm.admissible);
  EXPECT_TRUE(HasCode(adm.report, VerifyCode::kCacheFingerprintUnstable));
}

TEST(CacheAdmissibilityTest, V016IncompleteShardCoverUnstable) {
  // Shards 0/2 and 0/2 again: index 1 never appears, so the
  // decomposition is not a partition of the serial scan.
  const PlanIr ir = MustParse(
      "ir bad\n"
      "node 0 scan table=heartbeat snap=3 shard=0/2 cols=h.source_id:d\n"
      "node 1 scan table=heartbeat snap=3 shard=0/2 cols=h.source_id:d\n"
      "node 2 merge in=0,1 set sorted gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(adm.admissible);
  EXPECT_TRUE(HasCode(adm.report, VerifyCode::kCacheFingerprintUnstable));
}

TEST(CacheAdmissibilityTest, V016AcceptsMultipleCompletePartitions) {
  // Two plan parts each shard the same table into 2: the group holds
  // {0,1,0,1} — two complete partitions — which is exactly the shape
  // the multi-part q2_scan/q5_range relevance plans lower to at
  // parallelism 4. Must not be flagged.
  const PlanIr ir = MustParse(
      "ir ok\n"
      "node 0 scan table=heartbeat snap=3 shard=0/2 cols=h.source_id:d\n"
      "node 1 scan table=heartbeat snap=3 shard=1/2 cols=h.source_id:d\n"
      "node 2 scan table=heartbeat snap=3 shard=0/2 cols=h.source_id:d\n"
      "node 3 scan table=heartbeat snap=3 shard=1/2 cols=h.source_id:d\n"
      "node 4 merge in=0,1,2,3 set sorted gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_TRUE(adm.admissible) << adm.report.Format(ir);
}

TEST(CacheAdmissibilityTest, MalformedGraphYieldsV000) {
  const CacheAdmissibility empty = AnalyzeCacheAdmissibility(PlanIr{});
  EXPECT_FALSE(empty.admissible);
  ASSERT_EQ(empty.report.diagnostics.size(), 1u);
  EXPECT_EQ(empty.report.diagnostics[0].code, VerifyCode::kMalformedGraph);

  // A dangling input id is structurally broken, not merely inadmissible.
  const PlanIr dangling = MustParse(
      "ir bad\n"
      "node 0 merge in=5 set sorted gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(dangling);
  EXPECT_FALSE(adm.admissible);
  EXPECT_TRUE(HasCode(adm.report, VerifyCode::kMalformedGraph));
}

TEST(CacheAdmissibilityTest, DiagnosticsAreCanonicallyOrdered) {
  // Two rules fire on one plan; the report must be sorted by
  // (node, code) like VerifyIr so goldens stay byte-stable.
  const PlanIr ir = MustParse(
      "ir bad\n"
      "node 0 scan table=heartbeat snap=3 deps=heartbeat "
      "cols=h.source_id:d\n"
      "node 1 scan table=activity snap=3 cols=a.mach_id:d\n"
      "node 2 merge in=0,1 gen cols=source_id:d\n");
  const CacheAdmissibility adm = AnalyzeCacheAdmissibility(ir);
  EXPECT_FALSE(adm.admissible);
  for (size_t i = 1; i < adm.report.diagnostics.size(); ++i) {
    const VerifyDiagnostic& a = adm.report.diagnostics[i - 1];
    const VerifyDiagnostic& b = adm.report.diagnostics[i];
    EXPECT_TRUE(a.node < b.node || (a.node == b.node && a.code < b.code));
  }
}

}  // namespace
}  // namespace trac
