// Unit tests for the translation-validated rewriter (opt/rewrite.h):
// each rule fires only on plans it provably improves, every attempt is
// recorded in the plan's rewrite trail, and a corrupted witness is
// rejected without ever touching the incumbent plan.

#include "opt/rewrite.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "absint/domains.h"
#include "exec/planner.h"
#include "exec/statement.h"
#include "expr/binder.h"
#include "storage/database.h"

namespace trac {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE activity (mach_id TEXT DATA SOURCE, value TEXT, "
         "event_time TIMESTAMP)");
    Exec("CREATE TABLE routing (mach_id TEXT DATA SOURCE, neighbor TEXT)");
    Exec("CREATE INDEX ON activity (value)");
    for (int i = 0; i < 32; ++i) {
      const std::string id = "m" + std::to_string(100 + i);
      Exec("INSERT INTO activity VALUES ('" + id + "', 'v" +
           std::to_string(100 + i) + "', '2006-03-15 14:00:00')");
      Exec("INSERT INTO routing VALUES ('" + id + "', 'n1')");
    }
  }

  void TearDown() override {
    // Leave process-wide toggles the way other tests expect them.
    opt::SetOptimizerEnabled(true);
    opt::TestOnlyForceWitnessFailure(false);
  }

  void Exec(const std::string& sql) {
    auto result = ExecuteStatement(&db_, sql);
    ASSERT_TRUE(result.ok()) << result.status() << "\n" << sql;
  }

  QueryPlan Plan(const std::string& sql,
                 const PlanningHints& hints = PlanningHints()) {
    auto query = BindSql(db_, sql);
    EXPECT_TRUE(query.ok()) << query.status();
    auto plan = PlanQuery(db_, *query, db_.LatestSnapshot(), hints);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(*plan);
  }

  static const PlanRewrite* FindRule(const QueryPlan& plan,
                                     const std::string& rule) {
    for (const PlanRewrite& r : plan.rewrites) {
      if (r.rule == rule) return &r;
    }
    return nullptr;
  }

  Database db_;
};

TEST_F(RewriteTest, DisabledOptimizerLeavesNoTrail) {
  opt::SetOptimizerEnabled(false);
  const QueryPlan plan =
      Plan("SELECT value FROM activity WHERE value = 'v100' AND "
           "value = 'v100'");
  EXPECT_TRUE(plan.rewrites.empty());
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_EQ(plan.levels[0].local_preds.size(), 2u);
}

TEST_F(RewriteTest, RedundantFilterIsEliminated) {
  const QueryPlan plan =
      Plan("SELECT value FROM activity WHERE value = 'v100' AND "
           "value = 'v100'");
  const PlanRewrite* r = FindRule(plan, "redundant-filter-elim");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->applied);
  EXPECT_EQ(r->verdict, "applied");
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_EQ(plan.levels[0].local_preds.size(), 1u);
}

TEST_F(RewriteTest, DistinctConjunctsAreKept) {
  const QueryPlan plan =
      Plan("SELECT value FROM activity WHERE value = 'v100' AND "
           "mach_id = 'm100'");
  EXPECT_EQ(FindRule(plan, "redundant-filter-elim"), nullptr);
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_EQ(plan.levels[0].local_preds.size(), 2u);
}

TEST_F(RewriteTest, StaticCardZeroPrunesDeadSubplan) {
  const absint::CardInterval empty = absint::CardInterval::Exact(0);
  PlanningHints hints;
  hints.static_card = &empty;
  const QueryPlan plan = Plan("SELECT value FROM activity", hints);
  EXPECT_TRUE(plan.provably_empty);
  const PlanRewrite* r = FindRule(plan, "dead-subplan-prune");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->applied);
}

TEST_F(RewriteTest, UnboundedStaticCardDoesNotPrune) {
  const absint::CardInterval unknown = absint::CardInterval::Unknown();
  PlanningHints hints;
  hints.static_card = &unknown;
  const QueryPlan plan = Plan("SELECT value FROM activity", hints);
  EXPECT_FALSE(plan.provably_empty);
  EXPECT_EQ(FindRule(plan, "dead-subplan-prune"), nullptr);
}

TEST_F(RewriteTest, RangeConjunctConvertsToRangeScan) {
  // Aggregate-only output, so the order-changing rule may fire; the
  // range conjunct over the indexed `value` column selects a fraction
  // of the table, which the cost model must price below a full scan.
  const QueryPlan plan =
      Plan("SELECT COUNT(*) FROM activity WHERE value >= 'v125'");
  const PlanRewrite* r = FindRule(plan, "convert-to-range-scan");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->applied) << r->verdict;
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_TRUE(plan.levels[0].use_range_index);
  // The supplying predicate stays in local_preds: the access path only
  // narrows the walk, the filter semantics are unchanged.
  EXPECT_EQ(plan.levels[0].local_preds.size(), 1u);
}

TEST_F(RewriteTest, OrderSensitiveOutputBlocksRangeScan) {
  // Same shape without the aggregate fold: row order is observable, so
  // the rule must not fire and the plan keeps the sequential scan.
  const QueryPlan plan =
      Plan("SELECT value FROM activity WHERE value >= 'v125'");
  EXPECT_EQ(FindRule(plan, "convert-to-range-scan"), nullptr);
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_FALSE(plan.levels[0].use_range_index);
}

TEST_F(RewriteTest, RejectedWitnessNeverApplies) {
  opt::TestOnlyForceWitnessFailure(true);
  const QueryPlan plan =
      Plan("SELECT value FROM activity WHERE value = 'v100' AND "
           "value = 'v100'");
  // Every attempt must be recorded as rejected with the obligation that
  // failed, and the incumbent plan must be untouched.
  ASSERT_FALSE(plan.rewrites.empty());
  for (const PlanRewrite& r : plan.rewrites) {
    EXPECT_FALSE(r.applied);
    EXPECT_EQ(r.verdict.rfind("rejected TRAC-V", 0), 0u) << r.verdict;
  }
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_EQ(plan.levels[0].local_preds.size(), 2u);
}

TEST_F(RewriteTest, ExplainShowsRangeScan) {
  auto query = BindSql(db_, "SELECT COUNT(*) FROM activity WHERE "
                            "value >= 'v125'");
  ASSERT_TRUE(query.ok()) << query.status();
  auto plan = PlanQuery(db_, *query, db_.LatestSnapshot());
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(!plan->levels.empty() && plan->levels[0].use_range_index);
  EXPECT_NE(plan->Explain(db_, *query).find("range scan on value"),
            std::string::npos);
}

}  // namespace
}  // namespace trac
