// Unit tests for the static recency-guarantee analyzer: verdicts,
// source-anchored diagnostics, DNF blow-up degradation, and the
// plan/executor wiring of the verdict.

#include "analysis/guarantee.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_reporter.h"
#include "core/relevance.h"
#include "exec/executor.h"
#include "expr/binder.h"

namespace trac {
namespace {

using testing_util::PaperExampleDb;

GuaranteeReport Analyze(const Database& db, const std::string& sql) {
  auto bound = BindSql(db, sql);
  EXPECT_TRUE(bound.ok()) << bound.status();
  auto report = AnalyzeRecencyGuarantee(db, *bound);
  EXPECT_TRUE(report.ok()) << report.status();
  return report.ok() ? *report : GuaranteeReport{};
}

bool HasCode(const GuaranteeReport& report, AnalysisCode code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [code](const AnalysisDiagnostic& d) {
                       return d.code == code;
                     });
}

TEST(GuaranteeTest, SourcePredicateIsExactMinimum) {
  PaperExampleDb fixture;
  GuaranteeReport report =
      Analyze(fixture.db, "SELECT value FROM activity WHERE mach_id = 'm1'");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kExactMinimum);
  EXPECT_EQ(report.citation, "Theorem 3");
  EXPECT_EQ(report.live_conjuncts, 1u);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(GuaranteeTest, SourceJoinIsExactMinimumUnderTheorem4) {
  PaperExampleDb fixture;
  GuaranteeReport report = Analyze(
      fixture.db,
      "SELECT r.mach_id FROM routing r, activity a "
      "WHERE r.mach_id = a.mach_id AND a.value = 'idle'");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kExactMinimum);
  EXPECT_EQ(report.citation, "Theorem 4");
}

TEST(GuaranteeTest, MixedPredicateDowngradesWithAnchoredDiagnostic) {
  PaperExampleDb fixture;
  GuaranteeReport report = Analyze(
      fixture.db, "SELECT mach_id FROM routing WHERE mach_id = neighbor");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kUpperBound);
  EXPECT_EQ(report.citation, "Corollary 3");
  ASSERT_TRUE(HasCode(report, AnalysisCode::kMixedPredicate));
  const AnalysisDiagnostic* diag = nullptr;
  for (const AnalysisDiagnostic& d : report.diagnostics) {
    if (d.code == AnalysisCode::kMixedPredicate) diag = &d;
  }
  EXPECT_EQ(diag->conjunct, 1u);
  EXPECT_EQ(diag->relation, "routing");
  EXPECT_NE(diag->term_sql.find("neighbor"), std::string::npos);
  EXPECT_NE(diag->Format().find("TRAC-W001"), std::string::npos);
}

TEST(GuaranteeTest, RegularColumnJoinDowngrades) {
  PaperExampleDb fixture;
  GuaranteeReport report = Analyze(
      fixture.db,
      "SELECT r.mach_id FROM routing r, activity a "
      "WHERE r.event_time = a.event_time");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kUpperBound);
  EXPECT_EQ(report.citation, "Corollary 5");
  EXPECT_TRUE(HasCode(report, AnalysisCode::kRegularColumnJoin));
}

TEST(GuaranteeTest, DisjointDomainJoinIsProvablyEmpty) {
  PaperExampleDb fixture;
  // neighbor ranges over m1..m11, value over {idle, busy}: the declared
  // domains are disjoint, so the regular-column join can never hold.
  GuaranteeReport report = Analyze(
      fixture.db,
      "SELECT r.mach_id FROM routing r, activity a "
      "WHERE r.neighbor = a.value");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kEmptySet);
  EXPECT_TRUE(HasCode(report, AnalysisCode::kUnsatisfiableQuery));
}

TEST(GuaranteeTest, OnlySomeConjunctsDegradedStillUpperBound) {
  PaperExampleDb fixture;
  // Conjunct {mach_id='m1'} is exact; conjunct {mach_id=neighbor} is
  // mixed. One bad conjunct decides the whole query's verdict.
  GuaranteeReport report = Analyze(
      fixture.db,
      "SELECT mach_id FROM routing "
      "WHERE mach_id = 'm1' OR mach_id = neighbor");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kUpperBound);
  EXPECT_EQ(report.dnf_conjuncts, 2u);
}

TEST(GuaranteeTest, UnsatisfiableConjunctDroppedKeepsExactness) {
  PaperExampleDb fixture;
  GuaranteeReport report = Analyze(
      fixture.db,
      "SELECT mach_id FROM activity "
      "WHERE mach_id = 'm1' OR (value = 'idle' AND value = 'busy')");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kExactMinimum);
  EXPECT_EQ(report.dnf_conjuncts, 2u);
  EXPECT_EQ(report.live_conjuncts, 1u);
  EXPECT_TRUE(HasCode(report, AnalysisCode::kUnsatisfiableConjunct));
}

TEST(GuaranteeTest, FullyUnsatisfiableQueryIsEmptySet) {
  PaperExampleDb fixture;
  GuaranteeReport report = Analyze(
      fixture.db,
      "SELECT mach_id FROM activity WHERE value = 'idle' AND value = 'busy'");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kEmptySet);
  EXPECT_EQ(report.live_conjuncts, 0u);
  EXPECT_TRUE(HasCode(report, AnalysisCode::kUnsatisfiableQuery));
}

TEST(GuaranteeTest, UnmonitoredQueryIsEmptySet) {
  PaperExampleDb fixture;
  // The heartbeat table itself carries no DATA SOURCE column.
  GuaranteeReport report =
      Analyze(fixture.db, "SELECT source_id FROM heartbeat");
  EXPECT_EQ(report.verdict, RecencyGuarantee::kEmptySet);
  EXPECT_TRUE(HasCode(report, AnalysisCode::kNoMonitoredRelation));
  EXPECT_TRUE(HasCode(report, AnalysisCode::kUnmonitoredRelation));
}

std::string BlowUpSql() {
  // 13 binary disjunctions: 2^13 = 8192 > 4096 worst-case conjuncts.
  std::string where;
  for (int i = 0; i < 13; ++i) {
    if (i > 0) where += " AND ";
    where += "(mach_id = 'm1' OR value = 'idle')";
  }
  return "SELECT mach_id FROM activity WHERE " + where;
}

TEST(GuaranteeTest, DnfBlowUpDegradesToUpperBound) {
  PaperExampleDb fixture;
  GuaranteeReport report = Analyze(fixture.db, BlowUpSql());
  EXPECT_EQ(report.verdict, RecencyGuarantee::kUpperBound);
  EXPECT_TRUE(report.dnf_overflow);
  EXPECT_GT(report.estimated_dnf_conjuncts, 4096u);
  EXPECT_TRUE(HasCode(report, AnalysisCode::kDnfBlowUp));
}

// Regression: the blow-up must degrade through the relevance path too —
// a complete all-sources plan carrying the analyzer's report, never an
// error.
TEST(GuaranteeTest, DnfBlowUpDegradesThroughRelevancePlan) {
  PaperExampleDb fixture;
  auto bound = BindSql(fixture.db, BlowUpSql());
  ASSERT_TRUE(bound.ok()) << bound.status();
  auto plan = GenerateRecencyQueries(fixture.db, *bound);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->fallback_all);
  EXPECT_FALSE(plan->minimal);
  EXPECT_EQ(plan->analysis.verdict, RecencyGuarantee::kUpperBound);
  EXPECT_TRUE(plan->analysis.dnf_overflow);
  EXPECT_TRUE(HasCode(plan->analysis, AnalysisCode::kDnfBlowUp));
  ASSERT_FALSE(plan->notes.empty());
}

TEST(GuaranteeTest, PlanVerdictMatchesPlanMinimality) {
  PaperExampleDb fixture;
  for (const char* sql : {
           "SELECT value FROM activity WHERE mach_id = 'm1'",
           "SELECT mach_id FROM routing WHERE mach_id = neighbor",
           "SELECT r.mach_id FROM routing r, activity a "
           "WHERE r.mach_id = a.mach_id",
           "SELECT mach_id FROM activity WHERE value = 'idle' AND "
           "value = 'busy'",
       }) {
    SCOPED_TRACE(sql);
    auto bound = BindSql(fixture.db, sql);
    ASSERT_TRUE(bound.ok()) << bound.status();
    auto plan = GenerateRecencyQueries(fixture.db, *bound);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(plan->minimal,
              plan->analysis.verdict != RecencyGuarantee::kUpperBound);
  }
}

TEST(GuaranteeTest, ProvablyEmptyQueryShortCircuitsExecution) {
  PaperExampleDb fixture;
  auto bound = BindSql(
      fixture.db,
      "SELECT mach_id FROM activity WHERE value = 'idle' AND value = 'busy'");
  ASSERT_TRUE(bound.ok()) << bound.status();
  auto report = AnalyzeRecencyGuarantee(fixture.db, *bound);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->verdict, RecencyGuarantee::kEmptySet);

  Snapshot snap = fixture.db.LatestSnapshot();
  PlanningHints hints;
  hints.guarantee = &*report;
  auto with_hints = ExecuteQuery(fixture.db, *bound, snap, hints);
  ASSERT_TRUE(with_hints.ok()) << with_hints.status();
  auto without_hints = ExecuteQuery(fixture.db, *bound, snap);
  ASSERT_TRUE(without_hints.ok()) << without_hints.status();
  EXPECT_EQ(with_hints->num_rows(), 0u);
  EXPECT_EQ(with_hints->rows, without_hints->rows);
  EXPECT_EQ(with_hints->column_names, without_hints->column_names);
}

TEST(GuaranteeTest, ProvablyEmptyCountStarStillReturnsZeroRow) {
  PaperExampleDb fixture;
  auto bound = BindSql(
      fixture.db,
      "SELECT COUNT(*) FROM activity WHERE value = 'idle' AND "
      "value = 'busy'");
  ASSERT_TRUE(bound.ok()) << bound.status();
  auto report = AnalyzeRecencyGuarantee(fixture.db, *bound);
  ASSERT_TRUE(report.ok()) << report.status();
  PlanningHints hints;
  hints.guarantee = &*report;
  auto rs = ExecuteQuery(fixture.db, *bound, fixture.db.LatestSnapshot(),
                         hints);
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->count(), 0);
}

TEST(GuaranteeTest, ReportNoticePrintsGuaranteeNextToBound) {
  PaperExampleDb fixture;
  Session session(&fixture.db);
  RecencyReporter reporter(&fixture.db, &session);
  auto report = reporter.Run("SELECT value FROM activity WHERE mach_id = 'm1'");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->relevance.analysis.verdict,
            RecencyGuarantee::kExactMinimum);
  const std::string notices = report->FormatNotices();
  EXPECT_NE(notices.find("Bound of inconsistency"), std::string::npos);
  EXPECT_NE(
      notices.find("Recency guarantee: EXACT_MINIMUM (Theorem 3)"),
      std::string::npos);
}

TEST(GuaranteeTest, FormatIsStableLintStyleBlock) {
  PaperExampleDb fixture;
  GuaranteeReport report = Analyze(
      fixture.db, "SELECT mach_id FROM routing WHERE mach_id = neighbor");
  const std::string text = report.Format();
  EXPECT_NE(text.find("verdict: UPPER_BOUND"), std::string::npos);
  EXPECT_NE(text.find("citation: Corollary 3"), std::string::npos);
  EXPECT_NE(text.find("dnf: estimated"), std::string::npos);
  EXPECT_NE(text.find("[TRAC-W001]"), std::string::npos);
}

TEST(GuaranteeTest, CodeIdsAndCitationsAreStable) {
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kMixedPredicate), "TRAC-W001");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kRegularColumnJoin), "TRAC-W002");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kUnprovenSatisfiability),
            "TRAC-W003");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kDnfBlowUp), "TRAC-W004");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kNaiveAllSources), "TRAC-W005");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kUnsatisfiableConjunct),
            "TRAC-I001");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kRelationSelectionUnsat),
            "TRAC-I002");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kUnmonitoredRelation), "TRAC-I003");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kUnsatisfiableQuery), "TRAC-E001");
  EXPECT_EQ(AnalysisCodeId(AnalysisCode::kNoMonitoredRelation), "TRAC-E002");
  EXPECT_EQ(AnalysisCodeCitation(AnalysisCode::kMixedPredicate, false),
            "Corollary 3");
  EXPECT_EQ(AnalysisCodeCitation(AnalysisCode::kMixedPredicate, true),
            "Corollary 5");
  EXPECT_EQ(AnalysisCodeCitation(AnalysisCode::kUnsatisfiableConjunct, true),
            "Corollary 6");
}

}  // namespace
}  // namespace trac
