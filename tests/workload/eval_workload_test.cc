#include "workload/eval_workload.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/relevance.h"

namespace trac {
namespace {

TEST(EvalWorkloadTest, BuildsPaperSchema) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 1000;
  options.num_sources = 100;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));

  EXPECT_EQ(w.sources.size(), 100u);
  EXPECT_EQ(w.sources.front(), "Tao1");
  EXPECT_EQ(w.sources.back(), "Tao100");
  EXPECT_EQ(w.data_ratio(), 10u);
  EXPECT_EQ(w.selected_six.size(), 6u);

  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet hb,
                            ExecuteSql(db, "SELECT COUNT(*) FROM heartbeat"));
  EXPECT_EQ(hb.count(), 100);
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet act,
                            ExecuteSql(db, "SELECT COUNT(*) FROM activity"));
  EXPECT_EQ(act.count(), 1000);
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet rt,
                            ExecuteSql(db, "SELECT COUNT(*) FROM routing"));
  EXPECT_EQ(rt.count(), 100);

  // Data-source columns designated; indexes exist.
  const TableSchema& schema = db.catalog().schema(*db.FindTable("activity"));
  EXPECT_EQ(schema.data_source_column(), 0u);
  EXPECT_NE(db.GetTable(*db.FindTable("activity"))->GetIndex(0), nullptr);
}

TEST(EvalWorkloadTest, EachSourceContributesDataRatioRows) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 500;
  options.num_sources = 50;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  for (const char* source : {"Tao1", "Tao25", "Tao50"}) {
    TRAC_ASSERT_OK_AND_ASSIGN(
        ResultSet rs,
        ExecuteSql(db, std::string("SELECT COUNT(*) FROM activity WHERE "
                                   "mach_id = '") +
                           source + "'"));
    EXPECT_EQ(rs.count(), 10) << source;
  }
}

TEST(EvalWorkloadTest, IdlePeriodControlsSelectivity) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 1000;
  options.num_sources = 10;
  options.idle_period = 4;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteSql(db, w.Q2()));
  EXPECT_EQ(rs.count(), 250);
}

TEST(EvalWorkloadTest, RoutingMapsMachinesOntoThemselves) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 100;
  options.num_sources = 10;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  TRAC_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      ExecuteSql(db,
                 "SELECT COUNT(*) FROM routing WHERE mach_id = neighbor"));
  EXPECT_EQ(rs.count(), 10);
}

TEST(EvalWorkloadTest, QueriesHaveExpectedCounts) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 600;
  options.num_sources = 60;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  // Q1: 6 machines x 10 rows each x 1/2 idle.
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet q1, ExecuteSql(db, w.Q1()));
  EXPECT_EQ(q1.count(), 30);
  // Q2: half of everything.
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet q2, ExecuteSql(db, w.Q2()));
  EXPECT_EQ(q2.count(), 300);
  // Q3 == Q1 because neighbor = self.
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet q3, ExecuteSql(db, w.Q3()));
  EXPECT_EQ(q3.count(), 30);
  // Q4 == Q2 for the same reason.
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet q4, ExecuteSql(db, w.Q4()));
  EXPECT_EQ(q4.count(), 300);
}

TEST(EvalWorkloadTest, SelectedSixAreRelevantSetOfQ1) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 300;
  options.num_sources = 30;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  TRAC_ASSERT_OK_AND_ASSIGN(BoundQuery q, BindSql(db, w.Q1()));
  TRAC_ASSERT_OK_AND_ASSIGN(
      RelevanceResult rel,
      ComputeRelevantSources(db, q, db.LatestSnapshot()));
  std::vector<std::string> expected = w.selected_six;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(rel.SourceIds(), expected);
  EXPECT_TRUE(rel.minimal);
}

TEST(EvalWorkloadTest, ExceptionalSourcesAreStale) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 1000;
  options.num_sources = 100;
  options.num_exceptional_sources = 2;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  TRAC_ASSERT_OK_AND_ASSIGN(HeartbeatTable hb, HeartbeatTable::Open(&db));
  Snapshot snap = db.LatestSnapshot();
  TRAC_ASSERT_OK_AND_ASSIGN(Timestamp stale, hb.Get("Tao1", snap));
  TRAC_ASSERT_OK_AND_ASSIGN(Timestamp fresh, hb.Get("Tao50", snap));
  EXPECT_LT(stale, fresh - 20 * Timestamp::kMicrosPerDay);
}

TEST(EvalWorkloadTest, FiniteDomainsDeclaredOnRequest) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 100;
  options.num_sources = 10;
  options.finite_domains = true;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  const TableSchema& schema = db.catalog().schema(*db.FindTable("activity"));
  EXPECT_TRUE(schema.column(0).domain.is_finite());
  EXPECT_EQ(schema.column(0).domain.size(), 10u);
  EXPECT_TRUE(schema.column(1).domain.is_finite());
  EXPECT_EQ(schema.column(1).domain.size(), 2u);
  EXPECT_TRUE(schema.column(2).domain.is_finite());
}

TEST(EvalWorkloadTest, RejectsIndivisibleConfigurations) {
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = 100;
  options.num_sources = 7;
  EXPECT_FALSE(BuildEvalWorkload(&db, options).ok());
  options.num_sources = 0;
  EXPECT_FALSE(BuildEvalWorkload(&db, options).ok());
}

TEST(EvalWorkloadTest, DeterministicAcrossRuns) {
  EvalWorkloadOptions options;
  options.total_activity_rows = 200;
  options.num_sources = 20;
  Database db1, db2;
  TRAC_ASSERT_OK(BuildEvalWorkload(&db1, options).status());
  TRAC_ASSERT_OK(BuildEvalWorkload(&db2, options).status());
  auto rs1 = ExecuteSql(db1, "SELECT * FROM heartbeat");
  auto rs2 = ExecuteSql(db2, "SELECT * FROM heartbeat");
  ASSERT_TRUE(rs1.ok());
  ASSERT_TRUE(rs2.ok());
  EXPECT_EQ(rs1->rows, rs2->rows);
}

}  // namespace
}  // namespace trac
