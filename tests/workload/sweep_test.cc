// Parameterized sweep over evaluation-workload configurations: the
// query counts and the relevant-source sets have closed forms for this
// generator, so every (rows, sources) point in the sweep is checked
// exactly — the same invariants the benchmark harness relies on when it
// reports overheads per data ratio.

#include <algorithm>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/recency_stats.h"
#include "core/relevance.h"
#include "workload/eval_workload.h"

namespace trac {
namespace {

struct SweepConfig {
  size_t rows;
  size_t sources;
};

class WorkloadSweepTest : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(WorkloadSweepTest, ClosedFormsHoldAcrossTheSweep) {
  const auto [rows, sources] = GetParam();
  Database db;
  EvalWorkloadOptions options;
  options.total_activity_rows = rows;
  options.num_sources = sources;
  TRAC_ASSERT_OK_AND_ASSIGN(EvalWorkload w, BuildEvalWorkload(&db, options));
  const size_t ratio = rows / sources;
  const size_t six = std::min<size_t>(6, sources);
  Snapshot snap = db.LatestSnapshot();

  // Counts: each selected source contributes ratio rows, half idle
  // (ratio even in all configs here).
  ASSERT_EQ(ratio % 2, 0u);
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet q1, ExecuteSql(db, w.Q1()));
  EXPECT_EQ(q1.count(), static_cast<int64_t>(six * ratio / 2));
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet q2, ExecuteSql(db, w.Q2()));
  EXPECT_EQ(q2.count(), static_cast<int64_t>(rows / 2));
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet q3, ExecuteSql(db, w.Q3()));
  EXPECT_EQ(q3.count(), q1.count());  // neighbor = self.
  TRAC_ASSERT_OK_AND_ASSIGN(ResultSet q4, ExecuteSql(db, w.Q4()));
  EXPECT_EQ(q4.count(), q2.count());

  // Relevance: Q1/Q3 -> exactly the selected six; Q2/Q4 -> everyone.
  auto relevant = [&](const std::string& sql) {
    auto bound = BindSql(db, sql);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto rel = ComputeRelevantSources(db, *bound, snap);
    EXPECT_TRUE(rel.ok()) << rel.status();
    return rel.ok() ? rel->SourceIds() : std::vector<std::string>{};
  };
  std::vector<std::string> expected_six = w.selected_six;
  std::sort(expected_six.begin(), expected_six.end());
  EXPECT_EQ(relevant(w.Q1()), expected_six);
  EXPECT_EQ(relevant(w.Q3()), expected_six);
  EXPECT_EQ(relevant(w.Q2()).size(), sources);
  EXPECT_EQ(relevant(w.Q4()).size(), sources);

  // The heartbeat spread bounds the reported inconsistency.
  TRAC_ASSERT_OK_AND_ASSIGN(BoundQuery q2_bound, BindSql(db, w.Q2()));
  TRAC_ASSERT_OK_AND_ASSIGN(RelevanceResult rel,
                            ComputeRelevantSources(db, q2_bound, snap));
  RecencyStats stats = ComputeRecencyStats(rel.sources);
  EXPECT_LE(stats.inconsistency_bound_micros,
            options.heartbeat_spread_micros);
  EXPECT_TRUE(stats.exceptional.empty());  // No stale sources configured.
}

INSTANTIATE_TEST_SUITE_P(
    RatioSweep, WorkloadSweepTest,
    ::testing::Values(SweepConfig{1000, 100}, SweepConfig{1000, 10},
                      SweepConfig{2000, 500}, SweepConfig{2000, 4},
                      SweepConfig{5000, 250}, SweepConfig{400, 2},
                      SweepConfig{1200, 6}, SweepConfig{960, 96}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return "rows" + std::to_string(info.param.rows) + "_sources" +
             std::to_string(info.param.sources);
    });

}  // namespace
}  // namespace trac
