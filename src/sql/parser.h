#ifndef TRAC_SQL_PARSER_H_
#define TRAC_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace trac {

/// Parses one single-block SPJ SELECT statement:
///
///   SELECT [DISTINCT] { * | COUNT(*) | col [AS alias], ... }
///   FROM table [alias] [, table [alias]]...
///   [WHERE predicate] [;]
///
/// Predicates support AND / OR / NOT, parentheses, the six comparison
/// operators, [NOT] IN (literal, ...), [NOT] BETWEEN lit AND lit,
/// IS [NOT] NULL, and literals: numbers, 'strings',
/// TIMESTAMP 'YYYY-MM-DD HH:MM:SS', NULL, TRUE, FALSE.
///
/// Anything outside this subset fails with ParseError/Unsupported; the
/// paper's query model (Section 3.4) is single SPJ expressions.
[[nodiscard]] Result<SelectStmt> ParseSelect(std::string_view sql);

/// Parses a stand-alone predicate (the WHERE grammar above). Useful for
/// declaring schema-level predicate constraints (Section 3.4's Q' = Q ∧
/// constraints construction).
[[nodiscard]] Result<ExprPtr> ParsePredicate(std::string_view sql);

/// Parses any supported statement:
///
///   SELECT ...                                   (ParseSelect's grammar)
///   CREATE TABLE name (col TYPE [DATA SOURCE], ..., [CHECK (pred)]...)
///     with TYPE one of TEXT|STRING|VARCHAR, INT|INTEGER|BIGINT,
///     DOUBLE|FLOAT|REAL, TIMESTAMP, BOOL|BOOLEAN
///   CREATE INDEX ON name (col)
///   DROP TABLE name
///   INSERT INTO name [(col, ...)] VALUES (lit, ...)[, (lit, ...)]...
///   UPDATE name SET col = lit[, ...] [WHERE pred]
///   DELETE FROM name [WHERE pred]
[[nodiscard]] Result<Statement> ParseStatement(std::string_view sql);

}  // namespace trac

#endif  // TRAC_SQL_PARSER_H_
