#ifndef TRAC_SQL_AST_H_
#define TRAC_SQL_AST_H_

#include <memory>
#include <optional>
#include <utility>
#include <variant>
#include <string>
#include <string_view>
#include <vector>

#include "types/value.h"

namespace trac {

/// Comparison operators of the SPJ subset.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// a op b  ==  b Flip(op) a.
CompareOp FlipCompareOp(CompareOp op);

/// NOT (a op b)  ==  a Negate(op) b  (two-valued; NULL handling is done
/// by the evaluator before this matters).
CompareOp NegateCompareOp(CompareOp op);

/// Expression node kinds shared by the unbound AST and the bound tree.
enum class ExprKind {
  kColumnRef,  ///< [table.]column
  kLiteral,    ///< constant Value
  kCompare,    ///< children[0] op children[1]
  kInList,     ///< children[0] [NOT] IN (list...)
  kBetween,    ///< children[0] [NOT] BETWEEN children[1] AND children[2]
  kIsNull,     ///< children[0] IS [NOT] NULL
  kAnd,        ///< n-ary conjunction
  kOr,         ///< n-ary disjunction
  kNot,        ///< NOT children[0]
};

/// Unbound expression tree produced by the parser. One node type with a
/// kind tag keeps the tree trivially walkable; only the fields relevant
/// to a node's kind are meaningful.
struct Expr {
  ExprKind kind;

  // kColumnRef
  std::string table;  ///< Qualifier; empty when unqualified.
  std::string column;

  // kLiteral
  Value literal;

  // kCompare
  CompareOp op = CompareOp::kEq;

  // kInList / kBetween / kIsNull: true for the NOT form.
  bool negated = false;

  // kInList literal values.
  std::vector<Value> list;

  std::vector<std::unique_ptr<Expr>> children;

  /// Re-renders this expression as SQL text.
  std::string ToSql() const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeLiteral(Value v);
ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeInList(ExprPtr lhs, std::vector<Value> values, bool negated);
ExprPtr MakeBetween(ExprPtr e, ExprPtr lo, ExprPtr hi, bool negated);
ExprPtr MakeIsNull(ExprPtr e, bool negated);
ExprPtr MakeAnd(std::vector<ExprPtr> children);
ExprPtr MakeOr(std::vector<ExprPtr> children);
ExprPtr MakeNot(ExprPtr child);

/// FROM-list entry.
struct TableRef {
  std::string table;
  std::string alias;  ///< Empty if none; lookups try alias then name.

  const std::string& display_name() const {
    return alias.empty() ? table : alias;
  }
};

/// Aggregate functions usable in the select list. The paper's intro
/// motivates SUM ("how many CPU seconds have my jobs used"); its
/// evaluation uses COUNT(*).
enum class AggFn {
  kNone = 0,   ///< Plain column reference.
  kCountStar,  ///< COUNT(*).
  kCount,      ///< COUNT(col): non-null values.
  kSum,
  kMin,
  kMax,
  kAvg,
};

std::string_view AggFnToString(AggFn fn);

/// SELECT-list entry: `*`, an aggregate, or a column reference with an
/// optional alias.
struct SelectItem {
  bool star = false;
  AggFn agg = AggFn::kNone;
  bool count_star = false;  ///< Equivalent to agg == kCountStar.
  ExprPtr expr;  ///< Column reference (plain or aggregate argument).
  std::string alias;
};

/// ORDER BY entry: a column reference plus direction.
struct OrderByItem {
  ExprPtr expr;  ///< Column reference.
  bool descending = false;
};

/// A parsed single-block SELECT.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  ///< May be null.
  std::vector<OrderByItem> order_by;
  std::optional<size_t> limit;

  std::string ToSql() const;
};

// ---- DDL / DML statements (the client-tooling surface around the SPJ
// ---- core; see sql/parser.h ParseStatement).

/// Column definition inside CREATE TABLE.
struct ColumnSpec {
  std::string name;
  TypeId type = TypeId::kString;
  /// Marked with the DATA SOURCE keyword pair: this column tags each
  /// tuple with its data source (Section 3.3's schema model).
  bool is_data_source = false;
};

/// CREATE TABLE name (col TYPE [DATA SOURCE], ..., [CHECK (pred)], ...)
struct CreateTableStmt {
  std::string table;
  std::vector<ColumnSpec> columns;
  std::vector<std::string> checks;  ///< CHECK predicates, as SQL text.
};

/// INSERT INTO name [(columns)] VALUES (lit, ...)[, (lit, ...)]...
struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  ///< Empty: positional.
  std::vector<std::vector<Value>> rows;
};

/// UPDATE name SET col = lit[, ...] [WHERE pred]
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  ExprPtr where;  ///< May be null (update everything).
};

/// DELETE FROM name [WHERE pred]
struct DeleteStmt {
  std::string table;
  ExprPtr where;  ///< May be null (delete everything).
};

/// CREATE INDEX ON name (col)
struct CreateIndexStmt {
  std::string table;
  std::string column;
};

/// DROP TABLE name
struct DropTableStmt {
  std::string table;
};

/// Any parsed statement.
using Statement =
    std::variant<SelectStmt, CreateTableStmt, InsertStmt, UpdateStmt,
                 DeleteStmt, CreateIndexStmt, DropTableStmt>;

}  // namespace trac

#endif  // TRAC_SQL_AST_H_
