#ifndef TRAC_SQL_LEXER_H_
#define TRAC_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace trac {

enum class TokenKind {
  kIdent,    ///< Identifier or keyword (keywords resolved by the parser).
  kString,   ///< 'single quoted', '' escapes a quote.
  kInt,      ///< Decimal integer literal.
  kDouble,   ///< Decimal literal with a fraction or exponent.
  kSymbol,   ///< Operator or punctuation: ( ) , . ; = <> != < <= > >= *
  kEnd,      ///< End of input sentinel (always the last token).
};

struct Token {
  TokenKind kind;
  std::string text;  ///< Raw text (unquoted/unescaped for kString).
  size_t offset;     ///< Byte offset in the input, for error messages.
};

/// Splits `sql` into tokens. Fails on unterminated strings or characters
/// outside the supported alphabet.
[[nodiscard]] Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace trac

#endif  // TRAC_SQL_LEXER_H_
