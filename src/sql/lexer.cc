#include "sql/lexer.h"

namespace trac {

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

[[nodiscard]] Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (IsSpace(c)) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      tokens.push_back(
          {TokenKind::kIdent, std::string(sql.substr(start, i - start)),
           start});
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(sql[i + 1]))) {
      bool is_double = false;
      while (i < n && IsDigit(sql[i])) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && IsDigit(sql[i])) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && IsDigit(sql[j])) {
          is_double = true;
          i = j;
          while (i < n && IsDigit(sql[i])) ++i;
        }
      }
      tokens.push_back({is_double ? TokenKind::kDouble : TokenKind::kInt,
                        std::string(sql.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    // Multi-char symbols first.
    auto push_symbol = [&](size_t len) {
      tokens.push_back(
          {TokenKind::kSymbol, std::string(sql.substr(start, len)), start});
      i += len;
    };
    if (c == '<' && i + 1 < n && (sql[i + 1] == '=' || sql[i + 1] == '>')) {
      push_symbol(2);
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      push_symbol(2);
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      push_symbol(2);
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '.' || c == ';' || c == '=' ||
        c == '<' || c == '>' || c == '*') {
      push_symbol(1);
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(start));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace trac
