#include "sql/ast.h"

#include "common/str_util.h"

namespace trac {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCompare;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeInList(ExprPtr lhs, std::vector<Value> values, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInList;
  e->negated = negated;
  e->list = std::move(values);
  e->children.push_back(std::move(lhs));
  return e;
}

ExprPtr MakeBetween(ExprPtr ex, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBetween;
  e->negated = negated;
  e->children.push_back(std::move(ex));
  e->children.push_back(std::move(lo));
  e->children.push_back(std::move(hi));
  return e;
}

ExprPtr MakeIsNull(ExprPtr ex, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->negated = negated;
  e->children.push_back(std::move(ex));
  return e;
}

ExprPtr MakeAnd(std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAnd;
  e->children = std::move(children);
  return e;
}

ExprPtr MakeOr(std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kOr;
  e->children = std::move(children);
  return e;
}

ExprPtr MakeNot(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

std::string_view AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kNone:
      return "";
    case AggFn::kCountStar:
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

namespace {

void AppendList(const std::vector<Value>& values, std::string* out) {
  out->push_back('(');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) *out += ", ";
    *out += values[i].ToSqlLiteral();
  }
  out->push_back(')');
}

}  // namespace

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kCompare:
      return children[0]->ToSql() + " " + std::string(CompareOpToString(op)) +
             " " + children[1]->ToSql();
    case ExprKind::kInList: {
      std::string out = children[0]->ToSql();
      out += negated ? " NOT IN " : " IN ";
      AppendList(list, &out);
      return out;
    }
    case ExprKind::kBetween:
      return children[0]->ToSql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToSql() + " AND " + children[2]->ToSql();
    case ExprKind::kIsNull:
      return children[0]->ToSql() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::string sep = kind == ExprKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i != 0) out += sep;
        out += children[i]->ToSql();
      }
      out += ")";
      return out;
    }
    case ExprKind::kNot:
      return "NOT (" + children[0]->ToSql() + ")";
  }
  return "?";
}

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    const SelectItem& item = items[i];
    if (item.star) {
      out += "*";
    } else if (item.agg == AggFn::kCountStar) {
      out += "COUNT(*)";
    } else if (item.agg != AggFn::kNone) {
      out += std::string(AggFnToString(item.agg)) + "(" +
             item.expr->ToSql() + ")";
    } else {
      out += item.expr->ToSql();
    }
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i != 0) out += ", ";
    out += from[i].table;
    if (!from[i].alias.empty()) out += " " + from[i].alias;
  }
  if (where != nullptr) out += " WHERE " + where->ToSql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i != 0) out += ", ";
      out += order_by[i].expr->ToSql();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  return out;
}

}  // namespace trac
