#include "sql/parser.h"

#include <cstdlib>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace trac {

namespace {

/// Recursive-descent parser over the token stream. Methods return
/// Result<...>; the cursor only advances on successful matches except
/// where noted.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] Result<Statement> ParseAnyStatement() {
    if (PeekKeyword("SELECT")) {
      TRAC_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelectStmt());
      return Statement(std::move(stmt));
    }
    if (PeekKeyword("CREATE") && PeekKeyword("TABLE", 1)) {
      return ParseCreateTable();
    }
    if (PeekKeyword("CREATE") && PeekKeyword("INDEX", 1)) {
      return ParseCreateIndex();
    }
    if (PeekKeyword("DROP") && PeekKeyword("TABLE", 1)) {
      pos_ += 2;
      TRAC_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      TRAC_RETURN_IF_ERROR(FinishStatement());
      return Statement(DropTableStmt{std::move(table)});
    }
    if (PeekKeyword("INSERT")) return ParseInsert();
    if (PeekKeyword("UPDATE")) return ParseUpdate();
    if (PeekKeyword("DELETE")) return ParseDelete();
    return Error(
        "expected SELECT, CREATE TABLE, CREATE INDEX, DROP TABLE, INSERT, "
        "UPDATE or DELETE");
  }

  [[nodiscard]] Result<SelectStmt> ParseSelectStmt() {
    TRAC_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    stmt.distinct = MatchKeyword("DISTINCT");
    TRAC_RETURN_IF_ERROR(ParseSelectList(&stmt));
    TRAC_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    TRAC_RETURN_IF_ERROR(ParseFromList(&stmt));
    if (MatchKeyword("WHERE")) {
      TRAC_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (MatchKeyword("ORDER")) {
      TRAC_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderByItem item;
        TRAC_ASSIGN_OR_RETURN(item.expr, ParseColumnRef());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInt) {
        return Error("expected an integer after LIMIT");
      }
      stmt.limit = static_cast<size_t>(
          std::strtoll(Advance().text.c_str(), nullptr, 10));
    }
    MatchSymbol(";");
    TRAC_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }

  [[nodiscard]] Status FinishStatement() {
    MatchSymbol(";");
    return ExpectEnd();
  }

  [[nodiscard]] Result<TypeId> ParseTypeName() {
    for (auto [name, type] : std::initializer_list<
             std::pair<std::string_view, TypeId>>{
             {"TEXT", TypeId::kString},     {"STRING", TypeId::kString},
             {"VARCHAR", TypeId::kString},  {"INT", TypeId::kInt64},
             {"INTEGER", TypeId::kInt64},   {"BIGINT", TypeId::kInt64},
             {"DOUBLE", TypeId::kDouble},   {"FLOAT", TypeId::kDouble},
             {"REAL", TypeId::kDouble},     {"TIMESTAMP", TypeId::kTimestamp},
             {"BOOL", TypeId::kBool},       {"BOOLEAN", TypeId::kBool}}) {
      if (MatchKeyword(name)) return type;
    }
    return Error("expected a type name");
  }

  [[nodiscard]] Result<Statement> ParseCreateTable() {
    pos_ += 2;  // CREATE TABLE.
    CreateTableStmt stmt;
    TRAC_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    TRAC_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      if (MatchKeyword("CHECK")) {
        TRAC_RETURN_IF_ERROR(ExpectSymbol("("));
        // Capture the predicate's raw token span back to SQL text by
        // re-rendering the parsed tree.
        TRAC_ASSIGN_OR_RETURN(ExprPtr pred, ParseOr());
        TRAC_RETURN_IF_ERROR(ExpectSymbol(")"));
        stmt.checks.push_back(pred->ToSql());
        continue;
      }
      ColumnSpec col;
      TRAC_ASSIGN_OR_RETURN(col.name, ExpectIdent("column name"));
      TRAC_ASSIGN_OR_RETURN(col.type, ParseTypeName());
      if (MatchKeyword("DATA")) {
        TRAC_RETURN_IF_ERROR(ExpectKeyword("SOURCE"));
        col.is_data_source = true;
      }
      stmt.columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    TRAC_RETURN_IF_ERROR(ExpectSymbol(")"));
    TRAC_RETURN_IF_ERROR(FinishStatement());
    if (stmt.columns.empty()) return Error("table needs at least one column");
    return Statement(std::move(stmt));
  }

  [[nodiscard]] Result<Statement> ParseCreateIndex() {
    pos_ += 2;  // CREATE INDEX.
    TRAC_RETURN_IF_ERROR(ExpectKeyword("ON"));
    CreateIndexStmt stmt;
    TRAC_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    TRAC_RETURN_IF_ERROR(ExpectSymbol("("));
    TRAC_ASSIGN_OR_RETURN(stmt.column, ExpectIdent("column name"));
    TRAC_RETURN_IF_ERROR(ExpectSymbol(")"));
    TRAC_RETURN_IF_ERROR(FinishStatement());
    return Statement(std::move(stmt));
  }

  [[nodiscard]] Result<Statement> ParseInsert() {
    ++pos_;  // INSERT.
    TRAC_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    TRAC_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (MatchSymbol("(")) {
      do {
        TRAC_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
        stmt.columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      TRAC_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    TRAC_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    do {
      TRAC_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      do {
        TRAC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
      } while (MatchSymbol(","));
      TRAC_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (!stmt.columns.empty() && row.size() != stmt.columns.size()) {
        return Error("VALUES arity does not match the column list");
      }
      stmt.rows.push_back(std::move(row));
    } while (MatchSymbol(","));
    TRAC_RETURN_IF_ERROR(FinishStatement());
    return Statement(std::move(stmt));
  }

  [[nodiscard]] Result<Statement> ParseUpdate() {
    ++pos_;  // UPDATE.
    UpdateStmt stmt;
    TRAC_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    TRAC_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      TRAC_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      TRAC_RETURN_IF_ERROR(ExpectSymbol("="));
      TRAC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      stmt.assignments.emplace_back(std::move(col), std::move(v));
    } while (MatchSymbol(","));
    if (MatchKeyword("WHERE")) {
      TRAC_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    TRAC_RETURN_IF_ERROR(FinishStatement());
    return Statement(std::move(stmt));
  }

  [[nodiscard]] Result<Statement> ParseDelete() {
    ++pos_;  // DELETE.
    TRAC_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    TRAC_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (MatchKeyword("WHERE")) {
      TRAC_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    TRAC_RETURN_IF_ERROR(FinishStatement());
    return Statement(std::move(stmt));
  }

  [[nodiscard]] Result<ExprPtr> ParseStandalonePredicate() {
    TRAC_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    MatchSymbol(";");
    TRAC_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool MatchKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kIdent &&
        EqualsIgnoreCaseAscii(Peek().text, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && EqualsIgnoreCaseAscii(t.text, kw);
  }

  bool MatchSymbol(std::string_view sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(std::string("expected ") + std::string(kw));
  }

  [[nodiscard]] Status ExpectSymbol(std::string_view sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Error(std::string("expected '") + std::string(sym) + "'");
  }

  [[nodiscard]] Status ExpectEnd() {
    if (Peek().kind == TokenKind::kEnd) return Status::OK();
    return Error("unexpected trailing input");
  }

  [[nodiscard]] Status Error(std::string msg) const {
    const Token& t = Peek();
    msg += " at offset " + std::to_string(t.offset);
    if (!t.text.empty()) msg += " (near '" + t.text + "')";
    return Status::ParseError(std::move(msg));
  }

  static bool IsReservedKeyword(std::string_view ident) {
    static constexpr std::string_view kReserved[] = {
        "SELECT",  "FROM",  "WHERE", "AND",      "OR",    "NOT",
        "IN",      "BETWEEN", "IS",  "NULL",     "AS",    "DISTINCT",
        "COUNT",   "TRUE",  "FALSE", "TIMESTAMP", "ORDER", "BY",
        "ASC",     "DESC",  "LIMIT"};
    for (std::string_view kw : kReserved) {
      if (EqualsIgnoreCaseAscii(ident, kw)) return true;
    }
    return false;
  }

  [[nodiscard]] Result<std::string> ExpectIdent(std::string_view what) {
    if (Peek().kind != TokenKind::kIdent || IsReservedKeyword(Peek().text)) {
      return Error("expected " + std::string(what));
    }
    return Advance().text;
  }

  static std::optional<AggFn> AggKeyword(const Token& t) {
    if (t.kind != TokenKind::kIdent) return std::nullopt;
    if (EqualsIgnoreCaseAscii(t.text, "COUNT")) return AggFn::kCount;
    if (EqualsIgnoreCaseAscii(t.text, "SUM")) return AggFn::kSum;
    if (EqualsIgnoreCaseAscii(t.text, "MIN")) return AggFn::kMin;
    if (EqualsIgnoreCaseAscii(t.text, "MAX")) return AggFn::kMax;
    if (EqualsIgnoreCaseAscii(t.text, "AVG")) return AggFn::kAvg;
    return std::nullopt;
  }

  [[nodiscard]] Status ParseSelectList(SelectStmt* stmt) {
    do {
      SelectItem item;
      std::optional<AggFn> agg = AggKeyword(Peek());
      if (MatchSymbol("*")) {
        item.star = true;
      } else if (agg.has_value() && Peek(1).kind == TokenKind::kSymbol &&
                 Peek(1).text == "(") {
        pos_ += 2;  // fn (
        if (*agg == AggFn::kCount && MatchSymbol("*")) {
          item.agg = AggFn::kCountStar;
          item.count_star = true;
        } else {
          item.agg = *agg;
          TRAC_ASSIGN_OR_RETURN(item.expr, ParseColumnRef());
        }
        TRAC_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        TRAC_ASSIGN_OR_RETURN(item.expr, ParseColumnRef());
      }
      if (MatchKeyword("AS")) {
        TRAC_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
      }
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));
    return Status::OK();
  }

  [[nodiscard]] Status ParseFromList(SelectStmt* stmt) {
    do {
      TableRef ref;
      TRAC_ASSIGN_OR_RETURN(ref.table, ExpectIdent("table name"));
      if (MatchKeyword("AS")) {
        TRAC_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("table alias"));
      } else if (Peek().kind == TokenKind::kIdent &&
                 !IsReservedKeyword(Peek().text)) {
        ref.alias = Advance().text;
      }
      stmt->from.push_back(std::move(ref));
    } while (MatchSymbol(","));
    return Status::OK();
  }

  [[nodiscard]] Result<ExprPtr> ParseColumnRef() {
    TRAC_ASSIGN_OR_RETURN(std::string first, ExpectIdent("column reference"));
    if (MatchSymbol(".")) {
      TRAC_ASSIGN_OR_RETURN(std::string second, ExpectIdent("column name"));
      return MakeColumnRef(std::move(first), std::move(second));
    }
    return MakeColumnRef("", std::move(first));
  }

  // -- Predicate grammar: Or > And > Not > Predicate.

  [[nodiscard]] Result<ExprPtr> ParseOr() {
    TRAC_ASSIGN_OR_RETURN(ExprPtr first, ParseAnd());
    if (!PeekKeyword("OR")) return first;
    std::vector<ExprPtr> children;
    children.push_back(std::move(first));
    while (MatchKeyword("OR")) {
      TRAC_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
      children.push_back(std::move(next));
    }
    return MakeOr(std::move(children));
  }

  [[nodiscard]] Result<ExprPtr> ParseAnd() {
    TRAC_ASSIGN_OR_RETURN(ExprPtr first, ParseNot());
    if (!PeekKeyword("AND")) return first;
    std::vector<ExprPtr> children;
    children.push_back(std::move(first));
    while (MatchKeyword("AND")) {
      TRAC_ASSIGN_OR_RETURN(ExprPtr next, ParseNot());
      children.push_back(std::move(next));
    }
    return MakeAnd(std::move(children));
  }

  [[nodiscard]] Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      TRAC_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return MakeNot(std::move(child));
    }
    if (MatchSymbol("(")) {
      TRAC_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      TRAC_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    return ParsePredicateAtom();
  }

  [[nodiscard]] Result<ExprPtr> ParsePredicateAtom() {
    TRAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());

    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      TRAC_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return MakeIsNull(std::move(lhs), negated);
    }

    bool negated = MatchKeyword("NOT");
    if (MatchKeyword("IN")) {
      TRAC_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> values;
      do {
        TRAC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        values.push_back(std::move(v));
      } while (MatchSymbol(","));
      TRAC_RETURN_IF_ERROR(ExpectSymbol(")"));
      return MakeInList(std::move(lhs), std::move(values), negated);
    }
    if (MatchKeyword("BETWEEN")) {
      TRAC_ASSIGN_OR_RETURN(ExprPtr lo, ParseOperand());
      TRAC_RETURN_IF_ERROR(ExpectKeyword("AND"));
      TRAC_ASSIGN_OR_RETURN(ExprPtr hi, ParseOperand());
      return MakeBetween(std::move(lhs), std::move(lo), std::move(hi),
                         negated);
    }
    if (negated) return Error("expected IN or BETWEEN after NOT");

    // A bare boolean literal is a complete predicate (WHERE TRUE/FALSE/
    // NULL) when no comparison follows.
    if (lhs->kind == ExprKind::kLiteral &&
        (lhs->literal.is_null() || lhs->literal.type() == TypeId::kBool)) {
      const Token& next = Peek();
      bool operator_follows =
          next.kind == TokenKind::kSymbol &&
          (next.text == "=" || next.text == "<>" || next.text == "!=" ||
           next.text == "<" || next.text == "<=" || next.text == ">" ||
           next.text == ">=");
      if (!operator_follows) return lhs;
    }

    CompareOp op;
    if (MatchSymbol("=")) {
      op = CompareOp::kEq;
    } else if (MatchSymbol("<>") || MatchSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (MatchSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (MatchSymbol("<")) {
      op = CompareOp::kLt;
    } else if (MatchSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (MatchSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Error("expected a comparison operator");
    }
    TRAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
    return MakeCompare(op, std::move(lhs), std::move(rhs));
  }

  /// A comparison operand: a column reference or a literal.
  [[nodiscard]] Result<ExprPtr> ParseOperand() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kIdent && !IsReservedKeyword(t.text)) {
      return ParseColumnRef();
    }
    TRAC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
    return MakeLiteral(std::move(v));
  }

  [[nodiscard]] Result<Value> ParseLiteralValue() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        ++pos_;
        return Value::Int(std::strtoll(t.text.c_str(), nullptr, 10));
      }
      case TokenKind::kDouble: {
        ++pos_;
        return Value::Double(std::strtod(t.text.c_str(), nullptr));
      }
      case TokenKind::kString: {
        ++pos_;
        return Value::Str(t.text);
      }
      case TokenKind::kIdent: {
        if (MatchKeyword("NULL")) return Value::Null();
        if (MatchKeyword("TRUE")) return Value::Bool(true);
        if (MatchKeyword("FALSE")) return Value::Bool(false);
        if (MatchKeyword("TIMESTAMP")) {
          if (Peek().kind != TokenKind::kString) {
            return Error("expected a string after TIMESTAMP");
          }
          const std::string text = Advance().text;
          TRAC_ASSIGN_OR_RETURN(Timestamp ts, Timestamp::Parse(text));
          return Value::Ts(ts);
        }
        return Error("expected a literal");
      }
      default:
        return Error("expected a literal");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

[[nodiscard]] Result<SelectStmt> ParseSelect(std::string_view sql) {
  TRAC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelectStmt();
}

[[nodiscard]] Result<ExprPtr> ParsePredicate(std::string_view sql) {
  TRAC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStandalonePredicate();
}

[[nodiscard]] Result<Statement> ParseStatement(std::string_view sql) {
  TRAC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAnyStatement();
}

}  // namespace trac
