#ifndef TRAC_VERIFY_EQUIV_H_
#define TRAC_VERIFY_EQUIV_H_

#include "ir/normalize.h"
#include "ir/plan_ir.h"
#include "verify/verifier.h"

namespace trac {

/// Static plan-IR equivalence checker: the proof engine behind the
/// optimizer's translation validation (opt/rewrite.h). Whole-plan query
/// equivalence under access restrictions is undecidable (Martinenghi),
/// so the checker is deliberately conservative: it normalizes both IRs
/// into a canonical form and discharges four decidable obligations —
/// TRAC-V009 (predicate residue preserved modulo placement), TRAC-V010
/// (per-column provenance preserved, Definition 2), TRAC-V011 (snapshot
/// epochs and merge determinism unchanged), TRAC-V012 (static
/// staleness/NOTICE bound not weakened). A clean report means the
/// rewrite provably preserves the recency-reporting contract; a finding
/// means the rewrite must be discarded, never that planning fails.
///
/// NormalizeIr, the canonicalization both this checker and the cache
/// fingerprint build on, lives in ir/normalize.h (re-exported via the
/// include above so existing callers keep compiling).

/// Discharges the four equivalence obligations over a (before, after)
/// rewrite witness. Diagnostics are anchored at nodes of `after` (the
/// artifact under scrutiny); a malformed input on either side produces
/// a single TRAC-V000 finding and no further checking. Never fails as a
/// function: a non-empty report simply means "not provably equivalent".
VerifyReport CheckIrEquivalence(const PlanIr& before, const PlanIr& after);

}  // namespace trac

#endif  // TRAC_VERIFY_EQUIV_H_
