#ifndef TRAC_VERIFY_VERIFIER_H_
#define TRAC_VERIFY_VERIFIER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ir/lower.h"
#include "ir/plan_ir.h"

namespace trac {

/// Static verifier over the plan dataflow IR (ir/plan_ir.h), run before
/// a plan executes — the way LLVM/HLO verifiers gate a compiler
/// pipeline. Each rule turns one clause of the reporting layer's
/// correctness contract into a machine check:
///
///   TRAC-V000  well-formed graph: every input edge references an
///              earlier node (node order is execution order, so forward
///              edges are impossible and cycles cannot form).
///   TRAC-V001  single-snapshot rule (Section 3.2): every scan in the
///              plan reads the same snapshot epoch.
///   TRAC-V002  temp tables: defined before use, and every temp node is
///              confined to one owning session.
///   TRAC-V003  deterministic merge: rows from sharded scans reach the
///              report/temp-write/aggregate boundary only through an
///              order-insensitive (set) or explicitly sorted merge.
///   TRAC-V004  provenance hygiene (Definition 2): relevant-source temp
///              writes carry a data-source column; order-sensitive
///              aggregates (sum/avg) never fold a data-source column;
///              generated plans never join a data-source column against
///              a regular column.
///
/// Rules V005..V008 are semantic: they consume the abstract
/// interpreter's fixpoint facts (absint/absint.h) instead of the node
/// structure alone, and fire only on IRs carrying the static
/// annotations (rows=/age=/sel=/pred=/src=/bound=) the lowering emits:
///
///   TRAC-V005  static staleness interval at the report node must fit
///              inside the bound-of-inconsistency the guarantee NOTICE
///              promises (`bound=`): a wider hull means the report
///              would promise more recency than the plan can deliver.
///   TRAC-V006  dead subplan feeding a merge: a strand gated by a
///              statically unsatisfiable predicate (`sel=zero`) can
///              never contribute rows to the rejoin.
///   TRAC-V007  redundant filter: a predicate fingerprint reapplied on
///              a dataflow path that already applied it on the same
///              provenance set.
///   TRAC-V008  provenance widening: a relevant-source temp write whose
///              inferred column provenance exceeds its declared source
///              universe (`src=`), anchored at the widening join when
///              one is found.
///
/// Rules V009..V012 are pairwise: they are the proof obligations the
/// translation-validating equivalence checker (verify/equiv.h)
/// discharges over a (before, after) rewrite witness. They never fire
/// from the single-IR pipeline, but they share the diagnostic codespace
/// so goldens, --json output, and the doc-drift lint treat them
/// uniformly:
///
///   TRAC-V009  predicate-residue mismatch: the set of predicate
///              fingerprints applied by filters changed — a conjunct was
///              dropped or invented rather than merely re-placed.
///   TRAC-V010  provenance not preserved (Definition 2): the rewritten
///              plan's output frame differs at some column — name,
///              provenance class, or inferred data-source set.
///   TRAC-V011  snapshot or merge contract changed: the rewrite reads a
///              different snapshot-epoch set or altered a merge's
///              determinism contract (set/sorted flags).
///   TRAC-V012  static staleness/NOTICE bound weakened: the rewritten
///              plan promises less recency than the original (larger
///              report bound, dropped promise, or wider staleness hull).
///
/// Rules V013..V016 are the cache-admissibility family (verify/
/// admissible.h): the proof obligations a plan must discharge before
/// its result may enter the relevance cache (core/relevance.h). They
/// never fire from the single-IR execution gate; AnalyzeCacheAdmissibility
/// runs them over the candidate plan plus its extracted dependency
/// footprint (absint/deps.h):
///
///   TRAC-V013  inadmissible node: the plan contains a non-deterministic
///              rejoin (a multi-input merge that is neither set nor
///              sorted) or session-escaping state (a temp-table write,
///              a temp-table scan, or any session-owned node) — its
///              result is not a pure function of durable state.
///   TRAC-V014  dependency set incomplete: a scan, filter, join, or
///              write touches a table or data source absent from the
///              plan's declared dependency set (`deps=`), so footprint-
///              based invalidation would miss real changes.
///   TRAC-V015  registry epoch missing: a staleness-sensitive plan
///              (age-annotated reads) whose footprint does not include
///              the source-registry table — cached recency answers
///              could never be invalidated by new heartbeats.
///   TRAC-V016  fingerprint unstable: the normalized-IR cache
///              fingerprint (ir/fingerprint.h) changes across a
///              Dump/Parse round trip, or the plan's shard groups are
///              incoherent (shards of one scan that cannot collapse to
///              the parallelism-1 form), so parallelism 1 and 4 would
///              key different entries for one plan.
enum class VerifyCode {
  kMalformedGraph = 0,     ///< TRAC-V000
  kSnapshotMismatch,       ///< TRAC-V001
  kTempUseBeforeDef,       ///< TRAC-V002
  kTempSessionEscape,      ///< TRAC-V002
  kNondeterministicMerge,  ///< TRAC-V003
  kProvenanceLeak,         ///< TRAC-V004
  kNoticeBoundExceeded,    ///< TRAC-V005
  kDeadMergeInput,         ///< TRAC-V006
  kRedundantFilter,        ///< TRAC-V007
  kProvenanceWidening,     ///< TRAC-V008
  kPredicateResidueMismatch,  ///< TRAC-V009 (equivalence witness)
  kProvenanceNotPreserved,    ///< TRAC-V010 (equivalence witness)
  kSnapshotContractChanged,   ///< TRAC-V011 (equivalence witness)
  kStalenessBoundWeakened,    ///< TRAC-V012 (equivalence witness)
  kCacheInadmissibleNode,     ///< TRAC-V013 (cache admissibility)
  kCacheDepsIncomplete,       ///< TRAC-V014 (cache admissibility)
  kCacheRegistryEpochMissing, ///< TRAC-V015 (cache admissibility)
  kCacheFingerprintUnstable,  ///< TRAC-V016 (cache admissibility)
};

/// Stable identifier, e.g. "TRAC-V001".
std::string_view VerifyCodeId(VerifyCode code);

/// One finding of the static verifier, anchored to an IR node.
struct VerifyDiagnostic {
  VerifyCode code = VerifyCode::kMalformedGraph;
  /// Id of the node the finding anchors to.
  size_t node = 0;
  /// Kind of that node, for self-contained rendering.
  IrNodeKind kind = IrNodeKind::kScan;
  std::string message;

  /// "[TRAC-V001] node 3 (scan): ...".
  std::string Format() const;
};

/// The verifier's result: pass/fail plus every finding. The diagnostic
/// list is canonical: deduplicated by (code, node) and stable-sorted by
/// (node, code), so renderings and --json output are byte-identical
/// regardless of pass order or the parallelism the plan was built for.
struct VerifyReport {
  std::vector<VerifyDiagnostic> diagnostics;

  bool ok() const { return diagnostics.empty(); }
  /// Multi-line lint-style block: header then one line per finding;
  /// "plan IR verified: N nodes, 0 diagnostics" when clean.
  std::string Format(const PlanIr& ir) const;
};

struct VerifyOptions {
  /// Run the abstract interpreter and the semantic rules V005..V008 it
  /// feeds. On by default so the library gates (VerifyPlan,
  /// VerifyReportSession) get full checking; trac_verify exposes it as
  /// the opt-in --absint flag to keep the structural view separable.
  bool absint = true;
};

/// Runs the full pass pipeline over `ir`. A TRAC-V000 finding
/// short-circuits the remaining passes (they assume a well-formed
/// graph). Never fails as a function — failures are diagnostics.
VerifyReport VerifyIr(const PlanIr& ir,
                      const VerifyOptions& options = VerifyOptions());

/// Convenience gate: verifies and folds any findings into a single
/// kInternal Status (a rejected plan is a library bug, not user error).
[[nodiscard]] Status VerifyIrStatus(const PlanIr& ir);

/// The planner/executor gate: lowers one planned query (ir/lower.h) and
/// verifies the result. Callers escalate to a hard error under
/// TRAC_DEBUG_INVARIANTS and propagate the Status in release builds.
[[nodiscard]] Status VerifyPlan(const Database& db, const BoundQuery& query,
                                const QueryPlan& plan, Snapshot snapshot,
                                const LowerOptions& options = LowerOptions());

/// Session-level gate over everything a recency report executes.
[[nodiscard]] Status VerifyReportSession(const Database& db,
                                         const ReportSessionInput& input,
                                         const LowerOptions& options =
                                             LowerOptions());

}  // namespace trac

#endif  // TRAC_VERIFY_VERIFIER_H_
