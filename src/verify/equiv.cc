#include "verify/equiv.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "absint/absint.h"
#include "ir/normalize.h"

namespace trac {

namespace {

std::string HexFingerprint(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf);
}

char ProvenanceChar(ColumnProvenance p) {
  return p == ColumnProvenance::kDataSource ? 'd' : 'r';
}

/// Same dedupe/sort discipline the verifier applies: stable-sort by
/// (node, code), drop duplicate (code, node) pairs.
void Canonicalize(VerifyReport* report) {
  std::stable_sort(report->diagnostics.begin(), report->diagnostics.end(),
                   [](const VerifyDiagnostic& a, const VerifyDiagnostic& b) {
                     if (a.node != b.node) return a.node < b.node;
                     return a.code < b.code;
                   });
  std::set<std::pair<VerifyCode, size_t>> seen;
  std::vector<VerifyDiagnostic> kept;
  for (VerifyDiagnostic& d : report->diagnostics) {
    if (seen.insert({d.code, d.node}).second) kept.push_back(std::move(d));
  }
  report->diagnostics = std::move(kept);
}

void Report(VerifyReport* report, const PlanIr& ir, VerifyCode code,
            size_t node, std::string message) {
  VerifyDiagnostic d;
  d.code = code;
  d.node = node;
  d.kind = node < ir.nodes.size() ? ir.nodes[node].kind : IrNodeKind::kScan;
  d.message = std::move(message);
  report->diagnostics.push_back(std::move(d));
}

/// The node whose output leaves the plan: by the execution-order
/// convention that is the last node.
size_t SinkId(const PlanIr& ir) { return ir.nodes.size() - 1; }

std::set<uint64_t> PredResidue(const PlanIr& ir) {
  std::set<uint64_t> residue;
  for (const IrNode& n : ir.nodes) {
    if (n.kind == IrNodeKind::kFilter && n.has_pred) {
      residue.insert(n.pred_fingerprint);
    }
  }
  return residue;
}

std::set<uint64_t> ScanEpochs(const PlanIr& ir) {
  std::set<uint64_t> epochs;
  for (const IrNode& n : ir.nodes) {
    if (n.kind == IrNodeKind::kScan) epochs.insert(n.snapshot);
  }
  return epochs;
}

std::string EpochSetToString(const std::set<uint64_t>& s) {
  std::string out = "{";
  for (auto it = s.begin(); it != s.end(); ++it) {
    if (it != s.begin()) out += ',';
    out += std::to_string(*it);
  }
  return out + "}";
}

/// Multiset of merge determinism contracts, rendered for the message.
std::multiset<std::string> MergeContracts(const PlanIr& ir) {
  std::multiset<std::string> contracts;
  for (const IrNode& n : ir.nodes) {
    if (n.kind != IrNodeKind::kMerge) continue;
    std::string c = n.set_merge ? "set" : "bag";
    if (n.sorted) c += "+sorted";
    contracts.insert(c);
  }
  return contracts;
}

/// The sink's column frame with the absint-inferred per-column source
/// sets folded in: name -> (provenance class, joined source set).
std::map<std::string, std::pair<ColumnProvenance, absint::SourceSet>>
SinkFrame(const PlanIr& ir, const absint::AbsintResult& analysis) {
  std::map<std::string, std::pair<ColumnProvenance, absint::SourceSet>> frame;
  const IrNode& sink = ir.nodes[SinkId(ir)];
  const absint::NodeFacts& facts = analysis.facts[sink.id];
  for (size_t c = 0; c < sink.columns.size(); ++c) {
    auto& slot = frame[sink.columns[c].name];
    slot.first = sink.columns[c].provenance;
    if (analysis.converged && c < facts.column_sources.size()) {
      slot.second.JoinWith(facts.column_sources[c]);
    }
  }
  return frame;
}

/// Last report node carrying a NOTICE bound, if any.
const IrNode* BoundPromise(const PlanIr& ir) {
  const IrNode* promise = nullptr;
  for (const IrNode& n : ir.nodes) {
    if (n.kind == IrNodeKind::kReport && n.has_bound) promise = &n;
  }
  return promise;
}

}  // namespace

VerifyReport CheckIrEquivalence(const PlanIr& before, const PlanIr& after) {
  VerifyReport report;
  size_t bad = 0;
  if (before.nodes.empty() || !IrWellFormed(before, &bad)) {
    Report(&report, after, VerifyCode::kMalformedGraph, 0,
           "equivalence witness rejected: the original IR is malformed");
    Canonicalize(&report);
    return report;
  }
  if (after.nodes.empty() || !IrWellFormed(after, &bad)) {
    Report(&report, after, VerifyCode::kMalformedGraph,
           after.nodes.empty() ? 0 : bad,
           "equivalence witness rejected: the rewritten IR is malformed");
    Canonicalize(&report);
    return report;
  }

  // Fast path: a rewrite that only changed non-semantic order (node
  // numbering, set-merge input order) normalizes to the byte-identical
  // IR, and access-path-only rewrites do not change the IR at all.
  {
    PlanIr nb = NormalizeIr(before);
    PlanIr na = NormalizeIr(after);
    nb.label = na.label;
    if (nb.Dump() == na.Dump()) return report;
  }

  const absint::AbsintResult before_facts = absint::AnalyzeIr(before);
  const absint::AbsintResult after_facts = absint::AnalyzeIr(after);
  const size_t sink = SinkId(after);

  // -- TRAC-V009: predicate residue preserved modulo placement. The
  // residue is the *set* of filter fingerprints, so re-placing a
  // conjunct group or dropping a literally duplicated filter is legal;
  // inventing or losing a conjunct group is not.
  const std::set<uint64_t> res_before = PredResidue(before);
  const std::set<uint64_t> res_after = PredResidue(after);
  for (uint64_t fp : res_after) {
    if (res_before.count(fp) != 0) continue;
    size_t anchor = sink;
    for (const IrNode& n : after.nodes) {
      if (n.kind == IrNodeKind::kFilter && n.has_pred &&
          n.pred_fingerprint == fp) {
        anchor = n.id;
        break;
      }
    }
    Report(&report, after, VerifyCode::kPredicateResidueMismatch, anchor,
           "filter applies predicate fingerprint " + HexFingerprint(fp) +
               " that the original plan never applies");
  }
  for (uint64_t fp : res_before) {
    if (res_after.count(fp) != 0) continue;
    Report(&report, after, VerifyCode::kPredicateResidueMismatch, sink,
           "predicate fingerprint " + HexFingerprint(fp) +
               " applied by the original plan is missing from the rewrite");
  }

  // -- TRAC-V010: provenance preserved at every output column
  // (Definition 2): same column names, same provenance classes, and —
  // when the abstract interpretation of both sides converged — the same
  // inferred data-source set per column. The frame is compared as a
  // name-keyed set: column order is presentation, not provenance.
  const auto frame_before = SinkFrame(before, before_facts);
  const auto frame_after = SinkFrame(after, after_facts);
  const bool sources_comparable =
      before_facts.converged && after_facts.converged;
  for (const auto& [name, slot] : frame_before) {
    auto it = frame_after.find(name);
    if (it == frame_after.end()) {
      Report(&report, after, VerifyCode::kProvenanceNotPreserved, sink,
             "output column '" + name +
                 "' of the original plan is missing from the rewrite");
    } else if (it->second.first != slot.first) {
      Report(&report, after, VerifyCode::kProvenanceNotPreserved, sink,
             "output column '" + name + "' changed provenance class " +
                 ProvenanceChar(slot.first) + std::string(" -> ") +
                 ProvenanceChar(it->second.first));
    } else if (sources_comparable && it->second.second != slot.second) {
      Report(&report, after, VerifyCode::kProvenanceNotPreserved, sink,
             "output column '" + name +
                 "' changed its inferred data-source set " +
                 slot.second.ToString() + " -> " +
                 it->second.second.ToString());
    }
  }
  for (const auto& [name, slot] : frame_after) {
    (void)slot;
    if (frame_before.count(name) == 0) {
      Report(&report, after, VerifyCode::kProvenanceNotPreserved, sink,
             "output column '" + name +
                 "' does not exist in the original plan");
    }
  }

  // -- TRAC-V011: snapshot-epoch set and merge determinism contracts
  // unchanged. The single-snapshot rule (TRAC-V001) is checked per IR;
  // here the obligation is that the rewrite did not *move* the plan to
  // different epochs or relax how parallel strands rejoin.
  const std::set<uint64_t> epochs_before = ScanEpochs(before);
  const std::set<uint64_t> epochs_after = ScanEpochs(after);
  if (epochs_before != epochs_after) {
    size_t anchor = sink;
    for (const IrNode& n : after.nodes) {
      if (n.kind == IrNodeKind::kScan && epochs_before.count(n.snapshot) == 0) {
        anchor = n.id;
        break;
      }
    }
    Report(&report, after, VerifyCode::kSnapshotContractChanged, anchor,
           "scan snapshot-epoch set changed " +
               EpochSetToString(epochs_before) + " -> " +
               EpochSetToString(epochs_after));
  }
  const std::multiset<std::string> merges_before = MergeContracts(before);
  const std::multiset<std::string> merges_after = MergeContracts(after);
  if (merges_before != merges_after) {
    size_t anchor = sink;
    for (const IrNode& n : after.nodes) {
      if (n.kind == IrNodeKind::kMerge) {
        anchor = n.id;
        break;
      }
    }
    Report(&report, after, VerifyCode::kSnapshotContractChanged, anchor,
           "merge determinism contract changed across the rewrite");
  }

  // -- TRAC-V012: the static staleness/NOTICE story must not weaken. A
  // rewrite may tighten the promise, never loosen or drop it, and the
  // staleness hull the abstract interpreter derives at the sink must
  // not widen.
  const IrNode* bound_before = BoundPromise(before);
  const IrNode* bound_after = BoundPromise(after);
  if (bound_before != nullptr) {
    if (bound_after == nullptr) {
      Report(&report, after, VerifyCode::kStalenessBoundWeakened, sink,
             "the NOTICE bound promise (" +
                 std::to_string(bound_before->notice_bound_micros) +
                 "us) was dropped by the rewrite");
    } else if (bound_after->notice_bound_micros >
               bound_before->notice_bound_micros) {
      Report(&report, after, VerifyCode::kStalenessBoundWeakened,
             bound_after->id,
             "NOTICE bound weakened " +
                 std::to_string(bound_before->notice_bound_micros) + "us -> " +
                 std::to_string(bound_after->notice_bound_micros) + "us");
    }
  }
  if (sources_comparable) {
    const absint::StalenessInterval& stale_before =
        before_facts.facts[SinkId(before)].staleness;
    const absint::StalenessInterval& stale_after =
        after_facts.facts[sink].staleness;
    if (!stale_before.bottom && !stale_after.bottom &&
        stale_after.Width() > stale_before.Width()) {
      Report(&report, after, VerifyCode::kStalenessBoundWeakened, sink,
             "static staleness hull widened " + stale_before.ToString() +
                 " -> " + stale_after.ToString());
    }
  }

  Canonicalize(&report);
  return report;
}

}  // namespace trac
