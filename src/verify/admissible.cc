#include "verify/admissible.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "absint/absint.h"
#include "ir/fingerprint.h"
#include "ir/normalize.h"

namespace trac {

namespace {

void Report(VerifyReport* report, VerifyCode code, const IrNode& node,
            std::string message) {
  VerifyDiagnostic d;
  d.code = code;
  d.node = node.id;
  d.kind = node.kind;
  d.message = std::move(message);
  report->diagnostics.push_back(std::move(d));
}

/// Same canonical discipline as VerifyIr: dedupe by (code, node) keeping
/// the first message, stable-sort by (node, code).
void Canonicalize(VerifyReport* report) {
  std::set<std::pair<size_t, VerifyCode>> seen;
  std::vector<VerifyDiagnostic> kept;
  kept.reserve(report->diagnostics.size());
  for (VerifyDiagnostic& d : report->diagnostics) {
    if (seen.insert({d.node, d.code}).second) kept.push_back(std::move(d));
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const VerifyDiagnostic& a, const VerifyDiagnostic& b) {
                     if (a.node != b.node) return a.node < b.node;
                     return a.code < b.code;
                   });
  report->diagnostics = std::move(kept);
}

/// TRAC-V013: every node must be a deterministic pure function of
/// durable state. Three shapes break that: a multi-input merge with no
/// determinism contract (arrival order leaks into the result), any
/// temp-table touch (session-local state), and any session-owned node
/// (the plan escapes its session even without a temp table name).
void CheckInadmissibleNodes(const PlanIr& ir, VerifyReport* report) {
  for (const IrNode& n : ir.nodes) {
    if (n.kind == IrNodeKind::kMerge && n.inputs.size() > 1 &&
        !n.set_merge && !n.sorted) {
      Report(report, VerifyCode::kCacheInadmissibleNode, n,
             "merge of " + std::to_string(n.inputs.size()) +
                 " strands is neither set nor sorted; its output depends "
                 "on arrival order and cannot be cached");
    }
    if (n.kind == IrNodeKind::kTempWrite) {
      Report(report, VerifyCode::kCacheInadmissibleNode, n,
             "temp write to '" + n.table +
                 "' is a session-local side effect; plans that write "
                 "session state are never cache-admissible");
    }
    if (n.kind == IrNodeKind::kScan && IsTempTableName(n.table)) {
      Report(report, VerifyCode::kCacheInadmissibleNode, n,
             "scan of session temp table '" + n.table +
                 "' reads state outside the durable-footprint model; "
                 "the cache cannot invalidate it");
    }
    if (n.session != 0) {
      Report(report, VerifyCode::kCacheInadmissibleNode, n,
             "node is owned by session " + std::to_string(n.session) +
                 "; session-escaping plans are never cache-admissible");
    }
  }
}

/// TRAC-V014: when the plan declares a dependency set (`deps=`), every
/// structure the extractor proves the plan touches — tables and data
/// sources — must appear in it; a miss means footprint-based
/// invalidation built from the declaration would let stale entries
/// survive real changes. An undeclared plan (no `deps=` anywhere) is
/// exempt: extraction alone governs it.
void CheckDepsComplete(const PlanIr& ir, const absint::AbsintResult& analysis,
                       const absint::DepFootprint& deps,
                       VerifyReport* report) {
  std::set<std::string> declared;
  for (const IrNode& n : ir.nodes) {
    declared.insert(n.cache_deps.begin(), n.cache_deps.end());
  }
  if (declared.empty()) return;
  for (const std::string& table : deps.tables) {
    if (declared.count(table) != 0) continue;
    for (const IrNode& n : ir.nodes) {
      if (n.table != table) continue;
      Report(report, VerifyCode::kCacheDepsIncomplete, n,
             std::string(IrNodeKindToString(n.kind)) + " touches table '" +
                 table + "' which is absent from the declared dependency "
                 "set; invalidation keyed on the declaration would miss "
                 "its mutations");
      break;
    }
  }
  for (const std::string& source : deps.sources.tables) {
    if (declared.count(source) != 0) continue;
    for (const IrNode& n : ir.nodes) {
      if (n.id >= analysis.facts.size()) break;
      const auto& st = analysis.facts[n.id].sources.tables;
      if (!std::binary_search(st.begin(), st.end(), source)) continue;
      Report(report, VerifyCode::kCacheDepsIncomplete, n,
             "node carries data-source provenance '" + source +
                 "' which is absent from the declared dependency set; "
                 "sniffer arrivals for that source would not invalidate "
                 "the entry");
      break;
    }
  }
}

/// TRAC-V015: a plan that quotes recency state (any age-annotated read)
/// must depend on the registry table, or new heartbeats could never
/// invalidate its cached answer.
void CheckRegistryEpoch(const PlanIr& ir, const absint::DepFootprint& deps,
                        const std::string& registry, VerifyReport* report) {
  if (!deps.staleness_sensitive || deps.ContainsTable(registry)) return;
  for (const IrNode& n : ir.nodes) {
    if (!n.has_age) continue;
    Report(report, VerifyCode::kCacheRegistryEpochMissing, n,
           "plan is staleness-sensitive (age-annotated read) but its "
           "footprint lacks the source registry '" +
               registry + "'; cached recency answers would outlive new "
               "heartbeats");
    break;
  }
}

/// Volatile-attribute strip matching ir/fingerprint.h's canonical form,
/// reduced to one node: what must be identical across the shards of one
/// decomposed scan.
std::string ShardStrippedSignature(IrNode n) {
  n.snapshot = 0;
  n.has_rows = false;
  n.rows = 0;
  n.has_age = false;
  n.age_lo = 0;
  n.age_hi = 0;
  n.shard = 0;
  n.num_shards = 1;
  return IrNodeSignature(n);
}

/// TRAC-V016: fingerprint stability. Leg (a): the fingerprint must
/// survive a Dump/Parse round trip — the cache key of a plan read back
/// from its own corpus file is the same entry. Leg (b): shard groups
/// must be coherent — the shards of one decomposed scan (same table,
/// same fan-out) must cover 0..n-1 exactly once and be structurally
/// identical modulo the shard index and volatile annotations, which is
/// precisely the condition under which the canonical form collapses the
/// parallelism-N lowering onto the parallelism-1 one.
void CheckFingerprintStable(const PlanIr& ir, VerifyReport* report) {
  const uint64_t direct = IrCacheFingerprint(ir);
  const Result<PlanIr> reparsed = ParsePlanIr(ir.Dump());
  const IrNode& sink = ir.nodes.back();
  if (!reparsed.ok()) {
    Report(report, VerifyCode::kCacheFingerprintUnstable, sink,
           "plan IR does not survive its own Dump/Parse round trip: " +
               std::string(reparsed.status().message()));
  } else if (IrCacheFingerprint(*reparsed) != direct) {
    Report(report, VerifyCode::kCacheFingerprintUnstable, sink,
           "cache fingerprint changes across a Dump/Parse round trip; "
           "the plan would key different entries before and after "
           "serialization");
  }

  struct Group {
    const IrNode* first = nullptr;
    std::string signature;
    std::multiset<size_t> shards;
    bool mixed = false;
  };
  std::map<std::pair<std::string, size_t>, Group> groups;
  for (const IrNode& n : ir.nodes) {
    if (n.kind != IrNodeKind::kScan || n.num_shards <= 1) continue;
    Group& g = groups[{n.table, n.num_shards}];
    const std::string sig = ShardStrippedSignature(n);
    if (g.first == nullptr) {
      g.first = &n;
      g.signature = sig;
    } else if (sig != g.signature) {
      g.mixed = true;
    }
    g.shards.insert(n.shard);
  }
  for (const auto& [key, g] : groups) {
    if (g.mixed) {
      Report(report, VerifyCode::kCacheFingerprintUnstable, *g.first,
             "shards of table '" + key.first +
                 "' differ structurally beyond the shard index; the "
                 "parallel lowering cannot collapse to the parallelism-1 "
                 "form, so fan-out would change the cache key");
      continue;
    }
    // Several plan parts may each scan the same table with the same
    // fan-out, so the group legitimately holds k complete partitions:
    // every index 0..n-1 must appear the same number of times and
    // nothing outside that range may appear at all.
    const size_t copies = g.shards.count(0);
    bool partition = copies > 0 && g.shards.size() == copies * key.second;
    for (size_t s = 0; partition && s < key.second; ++s) {
      partition = g.shards.count(s) == copies;
    }
    if (!partition) {
      Report(report, VerifyCode::kCacheFingerprintUnstable, *g.first,
             "shard group of table '" + key.first + "' does not cover 0.." +
                 std::to_string(key.second - 1) +
                 " uniformly; the decomposition is not a partition of "
                 "the parallelism-1 scan");
    }
  }
}

}  // namespace

CacheAdmissibility AnalyzeCacheAdmissibility(
    const PlanIr& ir, const CacheAdmissibilityOptions& options) {
  CacheAdmissibility out;
  size_t bad = 0;
  if (ir.nodes.empty() || !IrWellFormed(ir, &bad)) {
    VerifyDiagnostic d;
    d.code = VerifyCode::kMalformedGraph;
    d.node = bad;
    d.kind = bad < ir.nodes.size() ? ir.nodes[bad].kind : IrNodeKind::kScan;
    d.message =
        "cache admissibility rejected: the plan IR is empty or malformed";
    out.report.diagnostics.push_back(std::move(d));
    return out;
  }

  const absint::AbsintResult analysis = absint::AnalyzeIr(ir);
  out.deps = absint::ExtractDeps(ir, analysis);
  out.cache_key = IrCacheKey(ir);
  out.fingerprint = Fnv1a64(out.cache_key);

  CheckInadmissibleNodes(ir, &out.report);
  CheckDepsComplete(ir, analysis, out.deps, &out.report);
  CheckRegistryEpoch(ir, out.deps, options.registry_table, &out.report);
  CheckFingerprintStable(ir, &out.report);
  Canonicalize(&out.report);
  out.admissible = out.report.ok();
  return out;
}

}  // namespace trac
