#include "verify/verifier.h"

#include <algorithm>
#include <map>

#include "absint/absint.h"

namespace trac {

namespace {

void Report(VerifyReport* report, VerifyCode code, const IrNode& node,
            std::string message) {
  VerifyDiagnostic d;
  d.code = code;
  d.node = node.id;
  d.kind = node.kind;
  d.message = std::move(message);
  report->diagnostics.push_back(std::move(d));
}

/// TRAC-V000: ids dense and ascending, every edge points backward.
/// Returns false on any finding; the later passes index nodes by id and
/// assume edges are backward, so a malformed graph short-circuits.
bool CheckStructure(const PlanIr& ir, VerifyReport* report) {
  bool ok = true;
  for (size_t i = 0; i < ir.nodes.size(); ++i) {
    const IrNode& n = ir.nodes[i];
    if (n.id != i) {
      Report(report, VerifyCode::kMalformedGraph, n,
             "node id " + std::to_string(n.id) + " at position " +
                 std::to_string(i) + "; ids must be dense and ascending");
      ok = false;
      continue;
    }
    for (size_t in : n.inputs) {
      if (in >= n.id) {
        Report(report, VerifyCode::kMalformedGraph, n,
               "input edge to node " + std::to_string(in) +
                   " does not point backward; node order is execution "
                   "order, so forward edges (and thus cycles) are "
                   "ill-formed");
        ok = false;
      }
    }
  }
  return ok;
}

/// TRAC-V001: every scan reads the same snapshot epoch (Section 3.2:
/// the user query and its recency queries see one database state).
void CheckSingleSnapshot(const PlanIr& ir, VerifyReport* report) {
  bool have_epoch = false;
  uint64_t epoch = 0;
  size_t epoch_node = 0;
  for (const IrNode& n : ir.nodes) {
    if (n.kind != IrNodeKind::kScan) continue;
    if (!have_epoch) {
      have_epoch = true;
      epoch = n.snapshot;
      epoch_node = n.id;
      continue;
    }
    if (n.snapshot != epoch) {
      Report(report, VerifyCode::kSnapshotMismatch, n,
             "scan of '" + n.table + "' reads snapshot epoch " +
                 std::to_string(n.snapshot) + " but node " +
                 std::to_string(epoch_node) + " reads epoch " +
                 std::to_string(epoch) +
                 "; a report session must read one snapshot");
    }
  }
}

/// TRAC-V002: temp tables are defined (kTempWrite) before any
/// non-preexisting scan uses them, and every temp node belongs to the
/// same single session.
void CheckTempTables(const PlanIr& ir, VerifyReport* report) {
  std::map<std::string, size_t> defined;  // temp name -> defining node.
  bool have_session = false;
  uint64_t session = 0;
  size_t session_node = 0;
  for (const IrNode& n : ir.nodes) {
    if (n.kind == IrNodeKind::kScan && IsTempTableName(n.table) &&
        !n.preexisting_temp && defined.find(n.table) == defined.end()) {
      Report(report, VerifyCode::kTempUseBeforeDef, n,
             "scan of temp table '" + n.table +
                 "' has no earlier in-plan definition and is not marked "
                 "preexisting");
    }
    const bool is_temp_node =
        n.kind == IrNodeKind::kTempWrite ||
        (n.kind == IrNodeKind::kScan && IsTempTableName(n.table) &&
         !n.preexisting_temp);
    if (is_temp_node) {
      if (n.kind == IrNodeKind::kTempWrite && n.session == 0) {
        Report(report, VerifyCode::kTempSessionEscape, n,
               "temp write to '" + n.table +
                   "' is not owned by any session (session=0); temp "
                   "tables are session-confined");
      } else if (n.session != 0) {
        if (!have_session) {
          have_session = true;
          session = n.session;
          session_node = n.id;
        } else if (n.session != session) {
          Report(report, VerifyCode::kTempSessionEscape, n,
                 "temp table '" + n.table + "' belongs to session " +
                     std::to_string(n.session) + " but node " +
                     std::to_string(session_node) + " belongs to session " +
                     std::to_string(session) +
                     "; a plan may touch only its own session's temps");
        }
      }
    }
    if (n.kind == IrNodeKind::kTempWrite) defined[n.table] = n.id;
  }
}

/// TRAC-V003: shard taint. A scan with num_shards > 1 produces an
/// arbitrarily ordered fragment; the fragments may only reach an
/// order-sensitive boundary (report, temp write, aggregate fold)
/// through a merge that is order-insensitive (set) or explicitly
/// sorted. Taint propagates along edges and is cleared by such merges.
void CheckDeterministicMerge(const PlanIr& ir, VerifyReport* report) {
  std::vector<bool> tainted(ir.nodes.size(), false);
  for (const IrNode& n : ir.nodes) {
    bool in_taint = false;
    for (size_t in : n.inputs) in_taint = in_taint || tainted[in];
    const bool boundary = n.kind == IrNodeKind::kReport ||
                          n.kind == IrNodeKind::kTempWrite ||
                          n.kind == IrNodeKind::kAggregate;
    if (in_taint && boundary) {
      Report(report, VerifyCode::kNondeterministicMerge, n,
             "rows from sharded scans reach this " +
                 std::string(IrNodeKindToString(n.kind)) +
                 " without passing through an order-insensitive or "
                 "sorted merge");
      continue;  // The boundary consumed the fragments; output is fixed.
    }
    if (n.kind == IrNodeKind::kMerge && (n.set_merge || n.sorted)) {
      tainted[n.id] = false;  // The rejoin is order-independent.
      continue;
    }
    tainted[n.id] = in_taint || (n.kind == IrNodeKind::kScan && n.num_shards > 1);
  }
}

/// TRAC-V004: provenance hygiene on the plan (Definition 2). (a) A
/// relevant-source temp write must carry at least one data-source
/// column — losing it severs the report from source identity. (b)
/// Sum/avg folds over a data-source column treat source identity as a
/// quantity. (c) Every input of a generated merge carries at least one
/// data-source column: each recency part exists to deliver source
/// identity to the rejoin, and a part whose output lost every
/// data-source column can only contribute garbage. No per-edge join
/// rule exists on purpose — equality with the registry key legally
/// confers source identity on a regular column (Notation 7's
/// substitution), so a mixed-provenance join is not evidence of a bug.
void CheckProvenance(const PlanIr& ir, VerifyReport* report) {
  for (const IrNode& n : ir.nodes) {
    if (n.kind == IrNodeKind::kTempWrite) {
      bool has_source = false;
      for (const IrColumn& c : n.columns) {
        has_source = has_source || c.provenance == ColumnProvenance::kDataSource;
      }
      if (!has_source) {
        Report(report, VerifyCode::kProvenanceLeak, n,
               "temp write to '" + n.table +
                   "' carries no data-source column; the relevant-source "
                   "set would lose source identity");
      }
    }
    if (n.kind == IrNodeKind::kAggregate) {
      for (const IrNode::Agg& a : n.aggs) {
        if ((a.fn == "sum" || a.fn == "avg") &&
            a.arg == ColumnProvenance::kDataSource) {
          Report(report, VerifyCode::kProvenanceLeak, n,
                 a.fn + " folds a data-source column; source identity is "
                        "not a quantity");
        }
      }
    }
    if (n.kind == IrNodeKind::kMerge && n.generated) {
      for (size_t in : n.inputs) {
        bool has_source = false;
        for (const IrColumn& c : ir.nodes[in].columns) {
          has_source =
              has_source || c.provenance == ColumnProvenance::kDataSource;
        }
        if (!has_source) {
          Report(report, VerifyCode::kProvenanceLeak, n,
                 "merge input node " + std::to_string(in) +
                     " carries no data-source column; the recency part "
                     "lost source identity before the rejoin");
        }
      }
    }
  }
}

std::string HexFingerprint(uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (size_t i = 0; i < 16; ++i) {
    out[15 - i] = kHex[(v >> (i * 4)) & 0xf];
  }
  return out;
}

/// TRAC-V005..V008: the semantic rules over the abstract interpreter's
/// fixpoint facts (absint/absint.h). Only annotated IRs can trip them —
/// un-annotated corpus files analyze to bottom everywhere and stay
/// clean, which keeps the rules backward-compatible by construction.
void CheckAbsint(const PlanIr& ir, VerifyReport* report) {
  const absint::AbsintResult res = absint::AnalyzeIr(ir);
  if (!res.converged) return;  // Facts are not a fixpoint; stay silent.
  for (const IrNode& n : ir.nodes) {
    const absint::NodeFacts& f = res.facts[n.id];

    // TRAC-V005: the staleness hull reaching the report must fit inside
    // the NOTICE's promised bound of inconsistency.
    if (n.kind == IrNodeKind::kReport && n.has_bound &&
        !f.staleness.bottom && f.staleness.Width() > n.notice_bound_micros) {
      Report(report, VerifyCode::kNoticeBoundExceeded, n,
             "static staleness interval " + f.staleness.ToString() +
                 " has width " + std::to_string(f.staleness.Width()) +
                 "us, wider than the " +
                 std::to_string(n.notice_bound_micros) +
                 "us bound of inconsistency the NOTICE promises");
    }

    // TRAC-V006: a merge strand gated by a statically refuted predicate
    // can never contribute rows. Keyed on the dead flag, NOT on an
    // empty cardinality interval: an empty table is a property of one
    // snapshot's data, a refuted predicate is a property of the plan.
    if (n.kind == IrNodeKind::kMerge) {
      for (size_t in : n.inputs) {
        if (in < res.facts.size() && res.facts[in].dead) {
          Report(report, VerifyCode::kDeadMergeInput, n,
                 "merge input node " + std::to_string(in) +
                     " is a dead subplan (statically unsatisfiable "
                     "predicate upstream); the strand can never "
                     "contribute rows");
        }
      }
    }

    // TRAC-V007: the filter's predicate was already applied on this
    // dataflow path, on the same provenance set — i.e. against rows of
    // the same source universe, so the reapplication is a no-op.
    if (n.kind == IrNodeKind::kFilter && n.has_pred && !n.inputs.empty() &&
        n.inputs[0] < res.facts.size()) {
      const absint::NodeFacts& in0 = res.facts[n.inputs[0]];
      auto it = in0.applied_preds.find(n.pred_fingerprint);
      if (it != in0.applied_preds.end() && it->second == in0.sources) {
        Report(report, VerifyCode::kRedundantFilter, n,
               "predicate " + HexFingerprint(n.pred_fingerprint) +
                   " was already applied upstream on the same provenance "
                   "set " + it->second.ToString() +
                   "; the filter is redundant");
      }
    }

    // TRAC-V008: a relevant-source temp write whose inferred provenance
    // escapes its declared source universe. Anchored at the widening
    // join when one exists on the path: a join whose output provenance
    // escapes the universe although one of its inputs still fit.
    if (n.kind == IrNodeKind::kTempWrite && !n.declared_sources.empty()) {
      absint::SourceSet declared;
      for (const std::string& s : n.declared_sources) declared.Insert(s);
      if (!f.sources.SubsetOf(declared)) {
        const IrNode* anchor = &n;
        std::vector<bool> seen(ir.nodes.size(), false);
        std::vector<size_t> stack(n.inputs.begin(), n.inputs.end());
        while (!stack.empty()) {
          const size_t id = stack.back();
          stack.pop_back();
          if (id >= ir.nodes.size() || seen[id]) continue;
          seen[id] = true;
          const IrNode& a = ir.nodes[id];
          if (a.kind == IrNodeKind::kJoin &&
              !res.facts[id].sources.SubsetOf(declared)) {
            bool some_input_fit = false;
            for (size_t in : a.inputs) {
              some_input_fit =
                  some_input_fit || (in < res.facts.size() &&
                                     res.facts[in].sources.SubsetOf(declared));
            }
            if (some_input_fit && (anchor == &n || id < anchor->id)) {
              anchor = &a;
            }
          }
          stack.insert(stack.end(), a.inputs.begin(), a.inputs.end());
        }
        const std::string widened = f.sources.ToString();
        if (anchor->kind == IrNodeKind::kJoin) {
          Report(report, VerifyCode::kProvenanceWidening, *anchor,
                 "join widens the temp write's column provenance to " +
                     widened + ", beyond the declared source universe " +
                     declared.ToString() + " of '" + n.table + "'");
        } else {
          Report(report, VerifyCode::kProvenanceWidening, n,
                 "temp write to '" + n.table + "' infers provenance " +
                     widened + " beyond its declared source universe " +
                     declared.ToString());
        }
      }
    }
  }
}

/// Canonicalizes the finding list: dedupe by (code, node) keeping the
/// first (most specific) message, then stable-sort by (node, code).
/// This makes renderings and --json byte-identical regardless of which
/// pass found what first or what parallelism the plan was built for.
void CanonicalizeDiagnostics(VerifyReport* report) {
  std::map<std::pair<size_t, VerifyCode>, size_t> first;
  std::vector<VerifyDiagnostic> kept;
  kept.reserve(report->diagnostics.size());
  for (VerifyDiagnostic& d : report->diagnostics) {
    if (first.emplace(std::make_pair(d.node, d.code), kept.size()).second) {
      kept.push_back(std::move(d));
    }
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const VerifyDiagnostic& a, const VerifyDiagnostic& b) {
                     if (a.node != b.node) return a.node < b.node;
                     return a.code < b.code;
                   });
  report->diagnostics = std::move(kept);
}

}  // namespace

std::string_view VerifyCodeId(VerifyCode code) {
  switch (code) {
    case VerifyCode::kMalformedGraph:
      return "TRAC-V000";
    case VerifyCode::kSnapshotMismatch:
      return "TRAC-V001";
    case VerifyCode::kTempUseBeforeDef:
    case VerifyCode::kTempSessionEscape:
      return "TRAC-V002";
    case VerifyCode::kNondeterministicMerge:
      return "TRAC-V003";
    case VerifyCode::kProvenanceLeak:
      return "TRAC-V004";
    case VerifyCode::kNoticeBoundExceeded:
      return "TRAC-V005";
    case VerifyCode::kDeadMergeInput:
      return "TRAC-V006";
    case VerifyCode::kRedundantFilter:
      return "TRAC-V007";
    case VerifyCode::kProvenanceWidening:
      return "TRAC-V008";
    case VerifyCode::kPredicateResidueMismatch:
      return "TRAC-V009";
    case VerifyCode::kProvenanceNotPreserved:
      return "TRAC-V010";
    case VerifyCode::kSnapshotContractChanged:
      return "TRAC-V011";
    case VerifyCode::kStalenessBoundWeakened:
      return "TRAC-V012";
    case VerifyCode::kCacheInadmissibleNode:
      return "TRAC-V013";
    case VerifyCode::kCacheDepsIncomplete:
      return "TRAC-V014";
    case VerifyCode::kCacheRegistryEpochMissing:
      return "TRAC-V015";
    case VerifyCode::kCacheFingerprintUnstable:
      return "TRAC-V016";
  }
  return "TRAC-V???";
}

std::string VerifyDiagnostic::Format() const {
  std::string out = "[";
  out += VerifyCodeId(code);
  out += "] node " + std::to_string(node) + " (";
  out += IrNodeKindToString(kind);
  out += "): " + message;
  return out;
}

std::string VerifyReport::Format(const PlanIr& ir) const {
  std::string out = "plan IR '" + ir.label +
                    "': " + std::to_string(ir.nodes.size()) + " nodes, " +
                    std::to_string(diagnostics.size()) + " diagnostic" +
                    (diagnostics.size() == 1 ? "" : "s") + "\n";
  for (const VerifyDiagnostic& d : diagnostics) {
    out += "  " + d.Format() + "\n";
  }
  return out;
}

VerifyReport VerifyIr(const PlanIr& ir, const VerifyOptions& options) {
  VerifyReport report;
  if (!CheckStructure(ir, &report)) {
    CanonicalizeDiagnostics(&report);
    return report;
  }
  CheckSingleSnapshot(ir, &report);
  CheckTempTables(ir, &report);
  CheckDeterministicMerge(ir, &report);
  CheckProvenance(ir, &report);
  if (options.absint) CheckAbsint(ir, &report);
  CanonicalizeDiagnostics(&report);
  return report;
}

[[nodiscard]] Status VerifyPlan(const Database& db, const BoundQuery& query,
                  const QueryPlan& plan, Snapshot snapshot,
                  const LowerOptions& options) {
  return VerifyIrStatus(LowerQueryPlan(db, query, plan, snapshot, options));
}

[[nodiscard]] Status VerifyReportSession(const Database& db, const ReportSessionInput& input,
                           const LowerOptions& options) {
  return VerifyIrStatus(LowerReportSession(db, input, options));
}

[[nodiscard]] Status VerifyIrStatus(const PlanIr& ir) {
  const VerifyReport report = VerifyIr(ir);
  if (report.ok()) return Status::OK();
  std::string msg = "plan verification failed (" +
                    std::to_string(report.diagnostics.size()) + " finding" +
                    (report.diagnostics.size() == 1 ? "" : "s") + "): " +
                    report.diagnostics.front().Format();
  return Status::Internal(std::move(msg));
}

}  // namespace trac
