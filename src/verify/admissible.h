#ifndef TRAC_VERIFY_ADMISSIBLE_H_
#define TRAC_VERIFY_ADMISSIBLE_H_

#include <cstdint>
#include <string>

#include "absint/deps.h"
#include "ir/plan_ir.h"
#include "verify/verifier.h"

namespace trac {

/// Static cache-admissibility analysis: the TRAC-V013..V016 pass family
/// gating the relevance-result cache (core/relevance.h). A report may be
/// served from cache only if its relevance plan *provably* (a) computes
/// a pure function of durable database state, and (b) carries a
/// footprint precise enough that every state change the result depends
/// on maps to an invalidation signal. Each rule discharges one slice of
/// that proof; any finding makes the plan inadmissible, which is always
/// safe — the session just recomputes.
///
///   TRAC-V013  no non-deterministic or session-escaping node,
///   TRAC-V014  declared dependency set (`deps=`) covers the extracted
///              footprint,
///   TRAC-V015  staleness-sensitive plans depend on the registry table,
///   TRAC-V016  the cache fingerprint is stable across Dump/Parse and
///              across shard decompositions (parallelism 1 vs N).

struct CacheAdmissibilityOptions {
  /// The source-registry (Heartbeat) table a staleness-sensitive plan
  /// must carry in its footprint (TRAC-V015). Matches
  /// HeartbeatTable::kDefaultName; the reporter passes its configured
  /// name through.
  std::string registry_table = "heartbeat";
};

/// The analysis verdict plus everything the cache needs to key and
/// invalidate an entry.
struct CacheAdmissibility {
  /// True iff `report` is clean: the plan may enter the cache.
  bool admissible = false;
  /// TRAC-V013..V016 findings (canonical order, like VerifyIr); a
  /// malformed graph yields a single TRAC-V000 finding instead.
  VerifyReport report;
  /// Extracted dependency footprint (absint/deps.h) — the invalidation
  /// contract of a cached entry.
  absint::DepFootprint deps;
  /// Canonical cache key: the dump of the cache-canonical IR
  /// (ir/fingerprint.h). Stored by the cache and compared on lookup, so
  /// even a 64-bit fingerprint collision cannot alias two plans.
  std::string cache_key;
  /// Fnv1a64(cache_key): the hash the cache buckets by.
  uint64_t fingerprint = 0;
};

/// Runs the V013..V016 passes plus footprint extraction over `ir`.
/// Never fails as a function: inadmissibility is a verdict, not an
/// error.
CacheAdmissibility AnalyzeCacheAdmissibility(
    const PlanIr& ir,
    const CacheAdmissibilityOptions& options = CacheAdmissibilityOptions());

}  // namespace trac

#endif  // TRAC_VERIFY_ADMISSIBLE_H_
