#ifndef TRAC_ANALYSIS_GUARANTEE_H_
#define TRAC_ANALYSIS_GUARANTEE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "expr/bound_expr.h"
#include "predicate/basic_term.h"
#include "predicate/normalize.h"
#include "predicate/satisfiability.h"
#include "storage/database.h"

namespace trac {

/// The recency guarantee a query's generated relevant set earns, decided
/// *statically* — before any recency query is executed. The paper's
/// theorem table, as a three-way verdict:
///
///  - kExactMinimum: every (conjunct, relation) part satisfies the
///    preconditions of Theorem 3 (single relation) / Theorem 4 (multi
///    relation): no mixed predicate, no join over a regular column, and
///    the regular-column predicates proven satisfiable. A(Q) == S(Q).
///  - kUpperBound: some part lost a precondition (Corollaries 3 and 5),
///    the DNF conversion was abandoned on blow-up, or the Naive plan was
///    requested. A(Q) ⊇ S(Q) still holds (Theorem 1, completeness).
///  - kEmptySet: the predicate is unsatisfiable over the declared column
///    domains in every DNF conjunct (Corollaries 2 and 6), or no
///    referenced relation is monitored. S(Q) = ∅ and A(Q) = ∅.
enum class RecencyGuarantee { kExactMinimum = 0, kUpperBound = 1, kEmptySet = 2 };

std::string_view GuaranteeToString(RecencyGuarantee g);

/// Machine-checkable diagnostic codes. The letter encodes the effect on
/// the verdict: W (warning) downgrades to kUpperBound, E (empty) forces
/// kEmptySet, I (info) records a precision-preserving event.
enum class AnalysisCode {
  kMixedPredicate = 0,        ///< TRAC-W001: P_m term (Corollary 3/5).
  kRegularColumnJoin,         ///< TRAC-W002: J_rm term (Corollary 3/5).
  kUnprovenSatisfiability,    ///< TRAC-W003: P_r not proven Sat (Theorem 3/4
                              ///  precondition unmet).
  kDnfBlowUp,                 ///< TRAC-W004: ToDnf exceeded the conjunct
                              ///  limit; degraded to the complete answer.
  kNaiveAllSources,           ///< TRAC-W005: Naive plan (all sources).
  kUnsatisfiableConjunct,     ///< TRAC-I001: conjunct dropped, exactness
                              ///  kept (Corollary 2/6).
  kRelationSelectionUnsat,    ///< TRAC-I002: S(C, R_i) = ∅, part dropped.
  kUnmonitoredRelation,       ///< TRAC-I003: relation has no data source
                              ///  column; nothing is relevant via it.
  kUnsatisfiableQuery,        ///< TRAC-E001: every conjunct unsatisfiable.
  kNoMonitoredRelation,       ///< TRAC-E002: no relation is monitored.
};

/// Stable identifier, e.g. "TRAC-W001".
std::string_view AnalysisCodeId(AnalysisCode code);

/// The theorem/corollary backing `code`'s claim, e.g. "Corollary 5".
/// `multi_relation` selects between the single- and multi-relation forms
/// of the paper's results.
std::string_view AnalysisCodeCitation(AnalysisCode code, bool multi_relation);

/// One source-anchored finding of the static analysis.
struct AnalysisDiagnostic {
  AnalysisCode code = AnalysisCode::kMixedPredicate;
  /// 1-based DNF conjunct the finding anchors to; 0 = the whole query.
  size_t conjunct = 0;
  /// Display name of the relation concerned; empty = the whole query.
  std::string relation;
  /// Rendered SQL of the offending basic term; empty when the finding is
  /// not term-anchored.
  std::string term_sql;
  /// Citation string, e.g. "Theorem 3", "Corollary 5".
  std::string citation;
  std::string message;

  /// "[TRAC-W001] conjunct 2, relation r: mixed predicate '...' (Corollary 5)".
  std::string Format() const;
};

/// The analyzer's result: the verdict plus everything needed to explain
/// it (structured diagnostics, DNF size accounting, headline citation).
struct GuaranteeReport {
  RecencyGuarantee verdict = RecencyGuarantee::kExactMinimum;
  /// Headline citation for the verdict, e.g. "Theorem 4".
  std::string citation;
  /// Worst-case conjunct count of the DNF conversion, computed without
  /// materializing it (saturates at NormalizeOptions::max_conjuncts + 1).
  size_t estimated_dnf_conjuncts = 0;
  /// Conjuncts actually produced (0 when the conversion overflowed).
  size_t dnf_conjuncts = 0;
  bool dnf_overflow = false;
  /// Conjuncts that survived the satisfiability check.
  size_t live_conjuncts = 0;
  std::vector<AnalysisDiagnostic> diagnostics;

  /// "EXACT_MINIMUM (Theorem 3)".
  std::string Summary() const;
  /// Multi-line lint-style block: verdict, citation, DNF accounting, one
  /// line per diagnostic.
  std::string Format() const;
};

struct GuaranteeOptions {
  NormalizeOptions normalize;
  SatOptions sat;
};

/// Per-(live conjunct, monitored relation) classification of the
/// conjunct's terms relative to relation slot `relation` (Notation 6).
/// Term pointers reference the owning QueryAnalysis's DNF.
struct ConjunctRelationView {
  size_t relation = 0;
  /// Satisfiability of the selection terms (P_s ∧ P_r ∧ P_m) alone; when
  /// kUnsat, no potential tuple of R_i exists and the part is dropped.
  Sat selection_sat = Sat::kUnknown;
  /// Satisfiability of P_r alone — the Theorem 3/4 precondition. Only
  /// decided when `has_mixed` and `has_regular_join` are both false.
  Sat regular_sat = Sat::kUnknown;
  bool has_mixed = false;         ///< Some P_m term present.
  bool has_regular_join = false;  ///< Some J_rm term present.
  /// The part computes the exact S(C, R_i) (Theorem 3/4 preconditions).
  bool minimal = false;
  std::vector<const BasicTerm*> ps, pr, pm, js, jrm, po;
};

/// Analysis of one DNF conjunct.
struct ConjunctAnalysis {
  Sat sat = Sat::kUnknown;  ///< Whole-conjunct satisfiability.
  /// One view per *monitored* relation (relations with a data source
  /// column); populated only when `sat` != kUnsat.
  std::vector<ConjunctRelationView> relations;
};

/// Full output of the static walk: the verdict report plus the DNF and
/// per-conjunct classifications the recency-plan generator consumes, so
/// plan generation and verdict can never disagree.
struct QueryAnalysis {
  Dnf dnf;  ///< Owns the basic terms the views point into.
  /// Parallel to dnf.conjuncts; empty when the conversion overflowed.
  std::vector<ConjunctAnalysis> conjuncts;
  /// Data source column per user relation slot (nullopt: unmonitored).
  std::vector<std::optional<size_t>> ds_col;
  GuaranteeReport report;
};

/// Statically classifies `query`'s recency guarantee without executing
/// anything: conjoins CHECK constraints (Section 3.4's Q' = Q ∧ C),
/// DNF-normalizes, classifies every term per relation, and decides
/// per-conjunct satisfiability. Never fails on DNF blow-up — that
/// degrades to kUpperBound with a TRAC-W004 diagnostic.
[[nodiscard]] Result<QueryAnalysis> AnalyzeQuery(
    const Database& db, const BoundQuery& query,
    const GuaranteeOptions& options = GuaranteeOptions());

/// Convenience wrapper returning only the report.
[[nodiscard]] Result<GuaranteeReport> AnalyzeRecencyGuarantee(
    const Database& db, const BoundQuery& query,
    const GuaranteeOptions& options = GuaranteeOptions());

/// Worst-case DNF conjunct count of `predicate` (after negation
/// push-down), computed without materializing the DNF: leaves count 1,
/// OR sums, AND multiplies. Saturates at `cap`.
size_t EstimateDnfConjuncts(const BoundExpr& predicate, size_t cap);

}  // namespace trac

#endif  // TRAC_ANALYSIS_GUARANTEE_H_
