#include "analysis/guarantee.h"

#include <algorithm>

#include "expr/constraints.h"

namespace trac {

std::string_view GuaranteeToString(RecencyGuarantee g) {
  switch (g) {
    case RecencyGuarantee::kExactMinimum:
      return "EXACT_MINIMUM";
    case RecencyGuarantee::kUpperBound:
      return "UPPER_BOUND";
    case RecencyGuarantee::kEmptySet:
      return "EMPTY_SET";
  }
  return "?";
}

std::string_view AnalysisCodeId(AnalysisCode code) {
  switch (code) {
    case AnalysisCode::kMixedPredicate:
      return "TRAC-W001";
    case AnalysisCode::kRegularColumnJoin:
      return "TRAC-W002";
    case AnalysisCode::kUnprovenSatisfiability:
      return "TRAC-W003";
    case AnalysisCode::kDnfBlowUp:
      return "TRAC-W004";
    case AnalysisCode::kNaiveAllSources:
      return "TRAC-W005";
    case AnalysisCode::kUnsatisfiableConjunct:
      return "TRAC-I001";
    case AnalysisCode::kRelationSelectionUnsat:
      return "TRAC-I002";
    case AnalysisCode::kUnmonitoredRelation:
      return "TRAC-I003";
    case AnalysisCode::kUnsatisfiableQuery:
      return "TRAC-E001";
    case AnalysisCode::kNoMonitoredRelation:
      return "TRAC-E002";
  }
  return "TRAC-????";
}

std::string_view AnalysisCodeCitation(AnalysisCode code, bool multi_relation) {
  switch (code) {
    case AnalysisCode::kMixedPredicate:
    case AnalysisCode::kRegularColumnJoin:
    case AnalysisCode::kUnprovenSatisfiability:
      return multi_relation ? "Corollary 5" : "Corollary 3";
    case AnalysisCode::kDnfBlowUp:
    case AnalysisCode::kNaiveAllSources:
      return "Theorem 1";
    case AnalysisCode::kUnsatisfiableConjunct:
    case AnalysisCode::kRelationSelectionUnsat:
    case AnalysisCode::kUnsatisfiableQuery:
      return multi_relation ? "Corollary 6" : "Corollary 2";
    case AnalysisCode::kUnmonitoredRelation:
    case AnalysisCode::kNoMonitoredRelation:
      return "Definition 2";
  }
  return "?";
}

std::string AnalysisDiagnostic::Format() const {
  std::string out = "[" + std::string(AnalysisCodeId(code)) + "]";
  if (conjunct != 0 || !relation.empty()) {
    out += " ";
    if (conjunct != 0) out += "conjunct " + std::to_string(conjunct);
    if (!relation.empty()) {
      if (conjunct != 0) out += ", ";
      out += "relation " + relation;
    }
  }
  out += ": " + message;
  if (!citation.empty()) out += " (" + citation + ")";
  return out;
}

std::string GuaranteeReport::Summary() const {
  std::string out(GuaranteeToString(verdict));
  if (!citation.empty()) out += " (" + citation + ")";
  return out;
}

std::string GuaranteeReport::Format() const {
  std::string out = "verdict: " + std::string(GuaranteeToString(verdict)) + "\n";
  out += "citation: " + (citation.empty() ? std::string("-") : citation) + "\n";
  out += "dnf: estimated " + std::to_string(estimated_dnf_conjuncts) +
         " conjunct(s), produced " +
         (dnf_overflow ? std::string("none (overflow)")
                       : std::to_string(dnf_conjuncts)) +
         ", live " + std::to_string(live_conjuncts) + "\n";
  if (diagnostics.empty()) {
    out += "diagnostics: none\n";
  } else {
    out += "diagnostics: " + std::to_string(diagnostics.size()) + "\n";
    for (const AnalysisDiagnostic& d : diagnostics) {
      out += d.Format() + "\n";
    }
  }
  return out;
}

namespace {

///// Recursive DNF-size estimate under an outer negation (NNF semantics:
/// negation swaps AND/OR and flips leaf polarity). `cap` saturates both
/// sums and products.
size_t EstimateRec(const BoundExpr& e, bool negate, size_t cap) {
  switch (e.kind) {
    case ExprKind::kNot:
      return EstimateRec(*e.children[0], !negate, cap);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const bool conjunction = (e.kind == ExprKind::kAnd) != negate;
      size_t acc = conjunction ? 1 : 0;
      for (const auto& child : e.children) {
        const size_t c = EstimateRec(*child, negate, cap);
        if (conjunction) {
          acc = (c != 0 && acc > cap / c) ? cap : acc * c;
        } else {
          acc = std::min(cap, acc + c);
        }
        if (acc >= cap) return cap;
      }
      return acc;
    }
    case ExprKind::kBetween:
      // NOT BETWEEN expands to an OR of two comparisons in NNF.
      return (e.negated != negate) ? 2 : 1;
    default:
      return 1;
  }
}

/// First term of `terms` that is unsatisfiable on its own, rendered to
/// SQL; empty when the contradiction needs several terms.
std::string SingletonUnsatAnchor(const Database& db, const BoundQuery& query,
                                 const std::vector<const BasicTerm*>& terms,
                                 const SatOptions& sat) {
  for (const BasicTerm* term : terms) {
    if (CheckConjunctionSat(db, query, {term}, sat) == Sat::kUnsat) {
      return query.ExprToSql(db, *term->expr);
    }
  }
  return "";
}

}  // namespace

size_t EstimateDnfConjuncts(const BoundExpr& predicate, size_t cap) {
  return EstimateRec(predicate, /*negate=*/false, std::max<size_t>(cap, 1));
}

[[nodiscard]] Result<QueryAnalysis> AnalyzeQuery(const Database& db,
                                                 const BoundQuery& query,
                                                 const GuaranteeOptions& options) {
  QueryAnalysis qa;
  GuaranteeReport& rep = qa.report;
  const size_t num_rels = query.relations.size();
  const bool multi = num_rels > 1;

  auto diagnose = [&](AnalysisCode code, size_t conjunct,
                      const std::string& relation, std::string term_sql,
                      std::string message) {
    AnalysisDiagnostic d;
    d.code = code;
    d.conjunct = conjunct;
    d.relation = relation;
    d.term_sql = std::move(term_sql);
    d.citation = std::string(AnalysisCodeCitation(code, multi));
    d.message = std::move(message);
    rep.diagnostics.push_back(std::move(d));
  };

  // Which relations are monitored (have a data source column)?
  qa.ds_col.resize(num_rels);
  size_t monitored = 0;
  for (size_t r = 0; r < num_rels; ++r) {
    qa.ds_col[r] = db.catalog()
                       .schema(query.relations[r].table_id)
                       .data_source_column();
    if (qa.ds_col[r].has_value()) {
      ++monitored;
    } else {
      diagnose(AnalysisCode::kUnmonitoredRelation, 0,
               query.relations[r].display_name, "",
               "relation has no data source column; no source is relevant "
               "via it");
    }
  }

  // Section 3.4's Q' = Q ∧ C: conjoin every FROM relation's CHECK
  // constraints (remapped into the query's slot space) with the user
  // predicate before any classification.
  BoundExprPtr effective_where;
  {
    std::vector<BoundExprPtr> terms;
    if (query.where != nullptr) terms.push_back(query.where->Clone());
    for (size_t r = 0; r < num_rels; ++r) {
      TRAC_ASSIGN_OR_RETURN(
          std::vector<BoundExprPtr> constraints,
          BindCheckConstraints(db, query.relations[r].table_id));
      for (BoundExprPtr& cexpr : constraints) {
        cexpr->RewriteColumnRefs([r](BoundColumnRef* ref) { ref->rel = r; });
        terms.push_back(std::move(cexpr));
      }
    }
    if (terms.size() == 1) {
      effective_where = std::move(terms[0]);
    } else if (!terms.empty()) {
      effective_where = MakeBoundAnd(std::move(terms));
    }
  }

  // DNF size estimate, then the conversion itself. A blow-up is not an
  // error: the verdict degrades to kUpperBound (the relevance path falls
  // back to the complete all-sources answer, Theorem 1).
  if (effective_where != nullptr) {
    rep.estimated_dnf_conjuncts = EstimateDnfConjuncts(
        *effective_where, options.normalize.max_conjuncts + 1);
    Result<Dnf> normalized = ToDnf(*effective_where, options.normalize);
    if (!normalized.ok()) {
      if (normalized.status().code() != StatusCode::kResourceExhausted) {
        return normalized.status();
      }
      rep.dnf_overflow = true;
      rep.verdict = RecencyGuarantee::kUpperBound;
      rep.citation = std::string(
          AnalysisCodeCitation(AnalysisCode::kDnfBlowUp, multi));
      diagnose(AnalysisCode::kDnfBlowUp, 0, "", "",
               "DNF conversion abandoned: estimated " +
                   std::to_string(rep.estimated_dnf_conjuncts) +
                   " conjunct(s) exceed the limit of " +
                   std::to_string(options.normalize.max_conjuncts) +
                   "; the complete all-sources answer applies");
      return qa;
    }
    qa.dnf = std::move(*normalized);
  } else {
    qa.dnf.conjuncts.push_back(Conjunct{});  // TRUE: one empty conjunct.
    rep.estimated_dnf_conjuncts = 1;
  }
  rep.dnf_conjuncts = qa.dnf.conjuncts.size();

  if (monitored == 0) {
    rep.verdict = RecencyGuarantee::kEmptySet;
    rep.citation = std::string(
        AnalysisCodeCitation(AnalysisCode::kNoMonitoredRelation, multi));
    diagnose(AnalysisCode::kNoMonitoredRelation, 0, "", "",
             "no relation of the query is monitored; the relevant set is "
             "empty");
    return qa;
  }

  bool upper_bound = false;
  for (size_t ci = 0; ci < qa.dnf.conjuncts.size(); ++ci) {
    const Conjunct& conjunct = qa.dnf.conjuncts[ci];
    ConjunctAnalysis ca;
    ca.sat = CheckConjunctionSat(db, query, conjunct, options.sat);
    if (ca.sat == Sat::kUnsat) {
      // Corollaries 2 / 6: the conjunct contributes nothing; dropping it
      // keeps the answer exact. Anchor the contradiction to a single
      // term when one suffices.
      std::vector<const BasicTerm*> terms;
      for (const BasicTerm& t : conjunct) terms.push_back(&t);
      std::string anchor = SingletonUnsatAnchor(db, query, terms, options.sat);
      std::string message =
          "conjunct is unsatisfiable over the declared column domains and "
          "contributes nothing";
      if (!anchor.empty()) {
        message += "; basic term '" + anchor + "' alone is unsatisfiable";
      }
      diagnose(AnalysisCode::kUnsatisfiableConjunct, ci + 1, "", anchor,
               std::move(message));
      qa.conjuncts.push_back(std::move(ca));
      continue;
    }
    ++rep.live_conjuncts;

    for (size_t ri = 0; ri < num_rels; ++ri) {
      if (!qa.ds_col[ri].has_value()) continue;
      const std::string& rel_name = query.relations[ri].display_name;
      ConjunctRelationView view;
      view.relation = ri;

      std::vector<const BasicTerm*> sel;
      for (const BasicTerm& term : conjunct) {
        switch (ClassifyTerm(db, query, term, ri)) {
          case TermClass::kPs:
            view.ps.push_back(&term);
            sel.push_back(&term);
            break;
          case TermClass::kPr:
            view.pr.push_back(&term);
            sel.push_back(&term);
            break;
          case TermClass::kPm:
            view.pm.push_back(&term);
            sel.push_back(&term);
            break;
          case TermClass::kJs:
            view.js.push_back(&term);
            break;
          case TermClass::kJrm:
            view.jrm.push_back(&term);
            break;
          case TermClass::kPo:
            view.po.push_back(&term);
            break;
        }
      }
      view.has_mixed = !view.pm.empty();
      view.has_regular_join = !view.jrm.empty();

      // If the selection predicates on R_i alone are unsatisfiable, no
      // potential tuple of R_i exists: S(C, R_i) = ∅ and the part is
      // dropped without losing exactness.
      view.selection_sat = CheckConjunctionSat(db, query, sel, options.sat);
      if (view.selection_sat == Sat::kUnsat) {
        std::string anchor = SingletonUnsatAnchor(db, query, sel, options.sat);
        diagnose(AnalysisCode::kRelationSelectionUnsat, ci + 1, rel_name,
                 anchor,
                 "selection predicates admit no potential tuple; the "
                 "conjunct's part via this relation is dropped");
        ca.relations.push_back(std::move(view));
        continue;
      }

      // Theorem 3/4 preconditions, in the paper's order: no mixed
      // predicate, no join over a regular column, regular predicates
      // proven satisfiable.
      if (view.has_mixed) {
        upper_bound = true;
        diagnose(AnalysisCode::kMixedPredicate, ci + 1, rel_name,
                 query.ExprToSql(db, *view.pm[0]->expr),
                 "mixed predicate '" +
                     query.ExprToSql(db, *view.pm[0]->expr) +
                     "' references the data source column and a regular "
                     "column");
      } else if (view.has_regular_join) {
        upper_bound = true;
        diagnose(AnalysisCode::kRegularColumnJoin, ci + 1, rel_name,
                 query.ExprToSql(db, *view.jrm[0]->expr),
                 "join predicate '" +
                     query.ExprToSql(db, *view.jrm[0]->expr) +
                     "' ranges over a regular column");
      } else {
        view.regular_sat =
            CheckConjunctionSat(db, query, view.pr, options.sat);
        if (view.regular_sat == Sat::kSat) {
          view.minimal = true;
        } else {
          upper_bound = true;
          diagnose(AnalysisCode::kUnprovenSatisfiability, ci + 1, rel_name,
                   "",
                   "satisfiability of the regular-column predicates could "
                   "not be proven");
        }
      }
      ca.relations.push_back(std::move(view));
    }
    qa.conjuncts.push_back(std::move(ca));
  }

  if (rep.live_conjuncts == 0) {
    rep.verdict = RecencyGuarantee::kEmptySet;
    rep.citation = std::string(
        AnalysisCodeCitation(AnalysisCode::kUnsatisfiableQuery, multi));
    diagnose(AnalysisCode::kUnsatisfiableQuery, 0, "", "",
             "every DNF conjunct is unsatisfiable: the relevant set is "
             "provably empty");
  } else if (upper_bound) {
    rep.verdict = RecencyGuarantee::kUpperBound;
    rep.citation = std::string(
        AnalysisCodeCitation(AnalysisCode::kMixedPredicate, multi));
  } else {
    rep.verdict = RecencyGuarantee::kExactMinimum;
    rep.citation = multi ? "Theorem 4" : "Theorem 3";
  }
  return qa;
}

[[nodiscard]] Result<GuaranteeReport> AnalyzeRecencyGuarantee(
    const Database& db, const BoundQuery& query,
    const GuaranteeOptions& options) {
  TRAC_ASSIGN_OR_RETURN(QueryAnalysis qa, AnalyzeQuery(db, query, options));
  return std::move(qa.report);
}

}  // namespace trac
