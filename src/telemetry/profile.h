#ifndef TRAC_TELEMETRY_PROFILE_H_
#define TRAC_TELEMETRY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "ir/lower.h"
#include "ir/plan_ir.h"

namespace trac {

struct Telemetry;

/// Per-operator execution profiling — the "EXPLAIN ANALYZE" layer.
///
/// The executor (exec/executor.h) counts rows per pipeline stage into an
/// ExecProfile while it runs; the reporter collects one ExecProfile per
/// executed query (user query, each guard, each part main) plus the
/// shard/merge/stats numbers the relevance fan-out already measures into
/// a SessionProfile; AttachSessionProfile then writes the counters back
/// onto the session plan IR as `actual_rows=` / `actual_ns=` node
/// annotations, using the SessionLayout extents recorded at lowering
/// time. The annotated IR round-trips through Dump/ParsePlanIr, so a
/// profiled session is a plain corpus artifact any tool can re-analyze.
///
/// Overhead contract: row counters are unconditional plain increments on
/// thread-local state (no branches beyond what the executor already
/// takes); clock reads happen only when a profile sink is attached, and
/// only at stage boundaries (two per execution plus two per prepared
/// join level), through the injected ClockFn — never a raw clock
/// (common/clock.h).

/// Row counters of one query execution, one entry per plan level,
/// mirroring the lowering grammar of ir/lower.cc: per level a scan, an
/// optional local filter, and (for inner levels) a join plus an optional
/// level filter; then the optional constant filter and aggregate fold.
/// The structure flags record which optional stages the executed plan
/// had, so the attach walk never has to re-plan.
struct ExecProfile {
  struct Level {
    /// Rows the scan surfaced (visible versions the stage considered).
    uint64_t scan_rows = 0;
    /// Plan had a local filter stage (local index or local predicates).
    bool has_filter = false;
    /// Rows surviving the local predicates.
    uint64_t filter_rows = 0;
    /// Join pairs reaching this level (try_row invocations; inner
    /// levels only).
    uint64_t join_rows = 0;
    /// Plan had level (cross-relation) predicates at this level.
    bool has_level_filter = false;
    /// Join pairs surviving the level predicates.
    uint64_t level_rows = 0;
    /// Time spent preparing this level's candidates + hash build
    /// (inner levels only; 0 when no sink was attached).
    int64_t prepare_ns = 0;
  };
  std::vector<Level> levels;

  /// Plan had a constant-predicate filter (or was provably empty).
  bool has_const_filter = false;
  /// Query folds into an aggregate row (COUNT(*) or aggregate list).
  bool has_agg = false;
  /// Tuples that reached Emit() (pre-DISTINCT, pre-ORDER/LIMIT trim).
  uint64_t emitted_rows = 0;
  /// Rows in the final result set (1 for aggregates).
  uint64_t output_rows = 0;
  /// Wall time of the whole execution (0 when no sink was attached).
  int64_t total_ns = 0;
  /// Executions accumulated into this profile (1 per executor run).
  uint64_t invocations = 0;
};

/// Profile of one relevance execution task (core/relevance.h): either
/// one version-range shard of a pure-heartbeat scan, or one full plan
/// part (guards then main query).
struct TaskProfile {
  size_t part = 0;      ///< Index into RecencyQueryPlan::parts.
  size_t shard = 0;     ///< Shard ordinal within the part (sharded only).
  bool sharded = false;
  uint64_t rows = 0;    ///< (source, recency) rows the task produced.
  int64_t micros = 0;   ///< Task wall time (same number the span records).
  /// Unsharded parts: one profile per executed guard, in execution
  /// order. A guard that returned empty stops the list — later guards
  /// and the main query never ran.
  std::vector<ExecProfile> guards;
  ExecProfile main;
  bool ran_main = false;
};

/// Everything one report session executed, in the shape
/// AttachSessionProfile maps back onto the session IR.
struct SessionProfile {
  ExecProfile user;
  bool ran_user = false;
  /// One entry per relevance execution task, in task-list order (which
  /// is plan-part order, shards in ascending version-range order).
  /// Empty when the relevance answer was served from cache.
  std::vector<TaskProfile> tasks;
  uint64_t premerge_rows = 0;   ///< Task rows entering the set merge.
  uint64_t merged_rows = 0;     ///< Distinct sources after the merge.
  int64_t merge_micros = 0;     ///< Wall time of the merge fold.
  int64_t stats_micros = 0;     ///< Wall time of the stats phase.
  uint64_t normal_rows = 0;       ///< Rows written to sys_temp_a*.
  uint64_t exceptional_rows = 0;  ///< Rows written to sys_temp_e*.
};

/// Writes `profile` back onto `ir` as actual_rows=/actual_ns= node
/// annotations, using the subgraph extents `layout` recorded when the
/// session was lowered. Only nodes that demonstrably executed are
/// annotated: a cache-served relevance side, a guard-suppressed part
/// main, or a subgraph whose recorded shape no longer matches the
/// profile is silently left bare (the drift pass judges only annotated
/// nodes). Returns the number of nodes annotated.
size_t AttachSessionProfile(PlanIr* ir, const SessionLayout& layout,
                            const SessionProfile& profile);

/// Estimate-drift rules over a profiled IR (TRAC-P namespace — runtime
/// profile findings, distinct from the static TRAC-V verifier rules).
enum class ProfileCode {
  /// TRAC-P001: an observed actual_rows falls outside the statically
  /// proven cardinality interval of its node (absint/domains.h). The
  /// static interval is sound by construction, so this is a soundness
  /// bug in the analysis, the lowering, or the profiler itself — the
  /// scenario harness wires it as a hard oracle.
  kActualOutsideStaticBounds = 1,
  /// TRAC-P002: a scan's planning-time row estimate overshoots the
  /// observed row count by at least the misestimate factor. Advisory:
  /// feeds the cost model in src/opt/, never an error.
  kMisestimate = 2,
};

std::string_view ProfileCodeId(ProfileCode code);

/// One drift finding, formatted like the verifier's diagnostics:
/// "[TRAC-P001] node 3 (scan): ...".
struct ProfileDiagnostic {
  ProfileCode code = ProfileCode::kActualOutsideStaticBounds;
  size_t node = 0;
  IrNodeKind kind = IrNodeKind::kScan;
  std::string message;

  std::string Format() const;
};

struct ProfileDriftOptions {
  /// TRAC-P002 fires when estimate >= misestimate_factor * max(actual, 1).
  uint64_t misestimate_factor = 16;
};

/// Runs the abstract interpreter over `ir` and compares every annotated
/// actual_rows against the proven static cardinality interval (P001) and
/// every annotated scan against its rows= estimate (P002). The returned
/// list is canonical: deduplicated by (code, node), stable-sorted by
/// (node, code). An IR with no actual annotations yields no findings.
std::vector<ProfileDiagnostic> AnalyzeProfileDrift(
    const PlanIr& ir,
    const ProfileDriftOptions& options = ProfileDriftOptions());

/// One flight-recorder entry: a fully profiled session, self-contained
/// (the IR text re-parses into the annotated plan).
struct SessionProfileRecord {
  uint64_t trace_id = 0;
  uint64_t snapshot = 0;
  std::string profiled_ir;  ///< Dump() of the annotated session IR.
  size_t annotated_nodes = 0;
  size_t p001_count = 0;
  size_t p002_count = 0;
};

/// Bounded ring of the last K profiled report sessions, for post-hoc
/// debugging ("what did the engine actually do just before this?").
/// Thread-safe; the mutex is a telemetry leaf (lock_rank::kTelemetry)
/// so recording is legal under any core lock.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 8;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(SessionProfileRecord record);

  /// The retained records, oldest first.
  [[nodiscard]] std::vector<SessionProfileRecord> Entries() const;

  size_t capacity() const { return capacity_; }
  /// Sessions ever recorded (>= Entries().size(); excess fell off).
  [[nodiscard]] uint64_t total_recorded() const;

  /// The process-wide default recorder.
  [[nodiscard]] static FlightRecorder& Default();

 private:
  const size_t capacity_;
  mutable Mutex mu_{lock_rank::kTelemetry, "FlightRecorder::mu_"};
  std::vector<SessionProfileRecord> ring_ TRAC_GUARDED_BY(mu_);
  size_t next_ TRAC_GUARDED_BY(mu_) = 0;  ///< Ring slot to overwrite.
  uint64_t total_ TRAC_GUARDED_BY(mu_) = 0;
};

/// `telemetry.recorder` if non-null, else the process default.
[[nodiscard]] FlightRecorder& ResolveFlightRecorder(const Telemetry& telemetry);

}  // namespace trac

#endif  // TRAC_TELEMETRY_PROFILE_H_
