#ifndef TRAC_TELEMETRY_METRICS_H_
#define TRAC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace trac {

/// Label key/value pairs attached to one metric series. Order is
/// normalized (sorted by key) when the series is registered, so the same
/// labels in any order name the same series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

namespace telemetry_internal {
/// Number of independent per-metric update cells. Writers hash their
/// thread onto a cell so concurrent increments from different threads
/// usually touch different cache lines; readers sum all cells. A power
/// of two so the cell index is a mask.
inline constexpr size_t kCells = 8;

/// Index of the calling thread's update cell (stable per thread).
[[nodiscard]] size_t CellIndex();

/// One cache-line-padded atomic accumulator.
struct alignas(64) Cell {
  std::atomic<int64_t> value{0};
};
}  // namespace telemetry_internal

/// A monotonically increasing counter. Increment is wait-free: one
/// relaxed fetch_add on a (usually) thread-private cache line. Value()
/// sums the cells; it is eventually exact — after all writers have
/// finished (or synchronized with the reader), the sum equals the exact
/// number of increments, which is what the scrape path and the
/// concurrency tests rely on.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { Add(1); }
  void Add(int64_t n) {
    cells_[telemetry_internal::CellIndex()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t Value() const {
    int64_t total = 0;
    for (const auto& cell : cells_)
      total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  telemetry_internal::Cell cells_[telemetry_internal::kCells];
};

/// A last-write-wins instantaneous value (staleness, backlog, sizes).
/// Single atomic: gauges are set by one logical owner at a time, so
/// sharding would only blur which write is "last".
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram over non-negative values (microseconds, counts) with
/// fixed power-of-two buckets: upper bounds 1, 2, 4, ... 2^26 (~67s in
/// µs), plus +Inf. Log-scaled buckets keep the series count fixed while
/// still resolving the microsecond-to-minute range the recency pipeline
/// spans. Observe() is three relaxed fetch_adds on per-thread-sharded
/// cells; Count/Sum/BucketCount aggregate on scrape with the same
/// exactness guarantee as Counter::Value().
class Histogram {
 public:
  /// 2^0 .. 2^26 finite buckets + 1 overflow (+Inf) bucket.
  static constexpr size_t kNumFiniteBuckets = 27;
  static constexpr size_t kNumBuckets = kNumFiniteBuckets + 1;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t v);

  /// Total number of observations.
  [[nodiscard]] int64_t Count() const;
  /// Sum of all observed values.
  [[nodiscard]] int64_t Sum() const;
  /// Observations in bucket `i` alone (not cumulative).
  [[nodiscard]] int64_t BucketCount(size_t i) const;
  /// Inclusive upper bound of finite bucket `i` (2^i).
  [[nodiscard]] static int64_t BucketUpperBound(size_t i) {
    return int64_t{1} << i;
  }
  /// Index of the bucket that `v` falls into.
  [[nodiscard]] static size_t BucketIndex(int64_t v);

 private:
  struct alignas(64) BucketRow {
    std::atomic<int64_t> counts[kNumBuckets] = {};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> total{0};
  };
  BucketRow rows_[telemetry_internal::kCells];
};

/// One gauge sample flattened out of the registry, for dashboards that
/// rank series (trac_top's top-K stalest sources).
struct GaugeSample {
  std::string name;
  LabelSet labels;
  int64_t value = 0;
};

/// Owns every metric family and series. Lookup (GetCounter/...) takes a
/// short leaf-ranked mutex; hot paths cache the returned pointer, which
/// stays valid for the registry's lifetime. Scrapes are deterministic:
/// families and series iterate in sorted map order.
///
/// A name registered once as one type stays that type: a mismatched
/// re-registration returns a process-wide *sink* metric that is never
/// scraped, so callers always get a usable pointer and the registry
/// never aborts (src/ has no throw/abort).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry used by default across the library.
  [[nodiscard]] static MetricRegistry& Default();

  [[nodiscard]] Counter* GetCounter(std::string_view name,
                                    std::string_view help,
                                    const LabelSet& labels = {})
      TRAC_EXCLUDES(mu_);
  [[nodiscard]] Gauge* GetGauge(std::string_view name, std::string_view help,
                                const LabelSet& labels = {})
      TRAC_EXCLUDES(mu_);
  [[nodiscard]] Histogram* GetHistogram(std::string_view name,
                                        std::string_view help,
                                        const LabelSet& labels = {})
      TRAC_EXCLUDES(mu_);

  /// Prometheus text exposition (# HELP / # TYPE / samples), sorted by
  /// family name then label signature; histograms expand to cumulative
  /// `_bucket{le=...}` plus `_sum` and `_count`.
  [[nodiscard]] std::string ScrapeText() const TRAC_EXCLUDES(mu_);

  /// The same data as one JSON object keyed by family name.
  [[nodiscard]] std::string ScrapeJson() const TRAC_EXCLUDES(mu_);

  /// Every gauge series currently registered (for top-K style views).
  [[nodiscard]] std::vector<GaugeSample> GaugeSamples() const
      TRAC_EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Type type = Type::kCounter;
    // Keyed by the normalized label signature for deterministic scrapes.
    std::map<std::string, Series> series;
  };

  Series* GetSeries(std::string_view name, std::string_view help, Type type,
                    const LabelSet& labels) TRAC_EXCLUDES(mu_);

  mutable Mutex mu_{lock_rank::kTelemetry, "MetricRegistry::mu_"};
  std::map<std::string, Family, std::less<>> families_ TRAC_GUARDED_BY(mu_);
};

}  // namespace trac

#endif  // TRAC_TELEMETRY_METRICS_H_
