#ifndef TRAC_TELEMETRY_TELEMETRY_H_
#define TRAC_TELEMETRY_TELEMETRY_H_

#include "common/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace trac {

class FlightRecorder;  // telemetry/profile.h

/// The bundle a layer needs to self-report: where metrics go, where
/// spans go, and what time it is. Passed by pointer through options
/// structs; a null pointer means "use the process defaults" (resolve
/// with ResolveTelemetry). Tests hand in their own registry/tracer and
/// a fake clock so traces are isolated and byte-deterministic.
struct Telemetry {
  MetricRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  ClockFn clock = nullptr;
  /// Session flight recorder (telemetry/profile.h); nullptr = the
  /// process default (resolve with ResolveFlightRecorder — defined
  /// there, since the recorder type lives above this header's layer).
  FlightRecorder* recorder = nullptr;

  /// The process-wide default bundle (Default registry + tracer,
  /// monotonic clock).
  [[nodiscard]] static const Telemetry& Default();
};

/// `telemetry` if non-null, else the process default. Never null.
[[nodiscard]] inline const Telemetry& ResolveTelemetry(
    const Telemetry* telemetry) {
  return telemetry != nullptr ? *telemetry : Telemetry::Default();
}

}  // namespace trac

#endif  // TRAC_TELEMETRY_TELEMETRY_H_
