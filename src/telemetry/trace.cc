#include "telemetry/trace.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"

namespace trac {

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

Tracer& Tracer::Default() {
  // Leaked: spans may be recorded during static destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(SpanRecord span) {
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_slot_] = std::move(span);
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<SpanRecord> Tracer::CollectTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> spans;
  {
    MutexLock lock(&mu_);
    for (const SpanRecord& span : ring_) {
      if (span.trace_id == trace_id) spans.push_back(span);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_micros != b.start_micros)
                return a.start_micros < b.start_micros;
              return a.span_id < b.span_id;
            });
  return spans;
}

size_t Tracer::size() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

std::string Tracer::DumpTraceJson(uint64_t trace_id) const {
  const std::vector<SpanRecord> spans = CollectTrace(trace_id);

  // Treat a span as a root when its parent is not in the buffer (the
  // true root has parent_id 0; evicted parents degrade gracefully).
  auto in_trace = [&spans](uint64_t id) {
    for (const SpanRecord& s : spans)
      if (s.span_id == id) return true;
    return false;
  };

  std::string out =
      "{\"trace_id\": " + std::to_string(trace_id) + ", \"spans\": [";
  // Recursive emit, children sorted by the CollectTrace order.
  auto emit = [&](auto&& self, const SpanRecord& span,
                  std::string indent) -> std::string {
    std::string s = "\n" + indent + "{\"name\": " + JsonEscape(span.name) +
                    ", \"span_id\": " + std::to_string(span.span_id) +
                    ", \"start_micros\": " + std::to_string(span.start_micros) +
                    ", \"end_micros\": " + std::to_string(span.end_micros) +
                    ", \"duration_micros\": " +
                    std::to_string(span.end_micros - span.start_micros);
    if (span.session_id != 0)
      s += ", \"session_id\": " + std::to_string(span.session_id);
    if (span.snapshot_epoch != 0)
      s += ", \"snapshot_epoch\": " + std::to_string(span.snapshot_epoch);
    if (span.relevant_sources >= 0)
      s += ", \"relevant_sources\": " + std::to_string(span.relevant_sources);
    s += ", \"children\": [";
    bool first = true;
    for (const SpanRecord& child : spans) {
      if (child.parent_id != span.span_id) continue;
      if (!first) s += ",";
      first = false;
      s += self(self, child, indent + "  ");
    }
    s += "]}";
    return s;
  };
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (span.parent_id != 0 && in_trace(span.parent_id)) continue;
    if (!first) out += ",";
    first = false;
    out += emit(emit, span, "  ");
  }
  out += "\n]}\n";
  return out;
}

TraceSpan::TraceSpan(Tracer* tracer, ClockFn clock, std::string_view name,
                     uint64_t trace_id, uint64_t parent_id)
    : tracer_(tracer), clock_(clock) {
  if (tracer_ == nullptr || clock_ == nullptr) {
    tracer_ = nullptr;
    return;
  }
  record_.trace_id = trace_id;
  record_.span_id = tracer_->NextSpanId();
  record_.parent_id = parent_id;
  record_.name = std::string(name);
  record_.start_micros = clock_();
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_),
      clock_(other.clock_),
      record_(std::move(other.record_)) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    clock_ = other.clock_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  record_.end_micros = clock_();
  tracer_->Record(std::move(record_));
  tracer_ = nullptr;
}

}  // namespace trac
