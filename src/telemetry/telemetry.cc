#include "telemetry/telemetry.h"

namespace trac {

const Telemetry& Telemetry::Default() {
  static const Telemetry kDefault{&MetricRegistry::Default(),
                                  &Tracer::Default(), &MonotonicMicros};
  return kDefault;
}

}  // namespace trac
