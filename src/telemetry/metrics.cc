#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <string>

#include "common/str_util.h"

namespace trac {
namespace telemetry_internal {

size_t CellIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t index =
      next_thread.fetch_add(1, std::memory_order_relaxed) & (kCells - 1);
  return index;
}

}  // namespace telemetry_internal

namespace {

// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Sorted copy of `labels`, so {a,b} and {b,a} name the same series.
LabelSet Normalize(const LabelSet& labels) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// The map key for one series: its rendered label block ("" when bare).
std::string LabelSignature(const LabelSet& sorted) {
  if (sorted.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first;
    out += "=\"";
    out += EscapeLabelValue(sorted[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

// Label block with one extra pair appended (histogram `le`).
std::string LabelSignatureWith(const LabelSet& sorted, std::string_view key,
                               std::string_view value) {
  std::string out = "{";
  for (const auto& [k, v] : sorted) {
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\",";
  }
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

}  // namespace

void Histogram::Observe(int64_t v) {
  BucketRow& row = rows_[telemetry_internal::CellIndex()];
  row.counts[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  row.sum.fetch_add(v, std::memory_order_relaxed);
  row.total.fetch_add(1, std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(int64_t v) {
  if (v <= 1) return 0;
  const size_t bits = std::bit_width(static_cast<uint64_t>(v - 1));
  return bits < kNumFiniteBuckets ? bits : kNumFiniteBuckets;
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& row : rows_) total += row.total.load(std::memory_order_relaxed);
  return total;
}

int64_t Histogram::Sum() const {
  int64_t total = 0;
  for (const auto& row : rows_) total += row.sum.load(std::memory_order_relaxed);
  return total;
}

int64_t Histogram::BucketCount(size_t i) const {
  int64_t total = 0;
  for (const auto& row : rows_)
    total += row.counts[i].load(std::memory_order_relaxed);
  return total;
}

MetricRegistry& MetricRegistry::Default() {
  // Leaked so late scrapes/increments during static destruction stay safe.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Series* MetricRegistry::GetSeries(std::string_view name,
                                                  std::string_view help,
                                                  Type type,
                                                  const LabelSet& labels) {
  const LabelSet sorted = Normalize(labels);
  const std::string signature = LabelSignature(sorted);
  MutexLock lock(&mu_);
  auto [family_it, family_inserted] =
      families_.try_emplace(std::string(name));
  Family& family = family_it->second;
  if (family_inserted) {
    family.help = std::string(help);
    family.type = type;
  } else if (family.type != type) {
    // Re-registration under a different type: hand back the sink below.
    return nullptr;
  }
  Series& series = family.series[signature];
  if (series.labels.empty() && !sorted.empty()) series.labels = sorted;
  switch (type) {
    case Type::kCounter:
      if (!series.counter) series.counter = std::make_unique<Counter>();
      break;
    case Type::kGauge:
      if (!series.gauge) series.gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      if (!series.histogram) series.histogram = std::make_unique<Histogram>();
      break;
  }
  return &series;
}

Counter* MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help,
                                    const LabelSet& labels) {
  Series* series = GetSeries(name, help, Type::kCounter, labels);
  if (series != nullptr) return series->counter.get();
  static Counter* sink = new Counter();  // type-mismatch sink, never scraped
  return sink;
}

Gauge* MetricRegistry::GetGauge(std::string_view name, std::string_view help,
                                const LabelSet& labels) {
  Series* series = GetSeries(name, help, Type::kGauge, labels);
  if (series != nullptr) return series->gauge.get();
  static Gauge* sink = new Gauge();
  return sink;
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        std::string_view help,
                                        const LabelSet& labels) {
  Series* series = GetSeries(name, help, Type::kHistogram, labels);
  if (series != nullptr) return series->histogram.get();
  static Histogram* sink = new Histogram();
  return sink;
}

std::string MetricRegistry::ScrapeText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter:
        out += "counter\n";
        break;
      case Type::kGauge:
        out += "gauge\n";
        break;
      case Type::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [signature, series] : family.series) {
      switch (family.type) {
        case Type::kCounter:
          out += name + signature + " " +
                 std::to_string(series.counter->Value()) + "\n";
          break;
        case Type::kGauge:
          out += name + signature + " " +
                 std::to_string(series.gauge->Value()) + "\n";
          break;
        case Type::kHistogram: {
          const Histogram& h = *series.histogram;
          int64_t cumulative = 0;
          for (size_t i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
            cumulative += h.BucketCount(i);
            out += name + "_bucket" +
                   LabelSignatureWith(
                       series.labels, "le",
                       std::to_string(Histogram::BucketUpperBound(i))) +
                   " " + std::to_string(cumulative) + "\n";
          }
          out += name + "_bucket" +
                 LabelSignatureWith(series.labels, "le", "+Inf") + " " +
                 std::to_string(h.Count()) + "\n";
          out += name + "_sum" + signature + " " + std::to_string(h.Sum()) +
                 "\n";
          out += name + "_count" + signature + " " +
                 std::to_string(h.Count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricRegistry::ScrapeJson() const {
  MutexLock lock(&mu_);
  std::string out = "{";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ",";
    first_family = false;
    out += "\n  " + JsonEscape(name) + ": {\"help\": " +
           JsonEscape(family.help) + ", \"type\": \"";
    switch (family.type) {
      case Type::kCounter:
        out += "counter";
        break;
      case Type::kGauge:
        out += "gauge";
        break;
      case Type::kHistogram:
        out += "histogram";
        break;
    }
    out += "\", \"series\": [";
    bool first_series = true;
    for (const auto& [signature, series] : family.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "\n    {\"labels\": {";
      bool first_label = true;
      for (const auto& [k, v] : series.labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += JsonEscape(k) + ": " + JsonEscape(v);
      }
      out += "}";
      switch (family.type) {
        case Type::kCounter:
          out += ", \"value\": " + std::to_string(series.counter->Value());
          break;
        case Type::kGauge:
          out += ", \"value\": " + std::to_string(series.gauge->Value());
          break;
        case Type::kHistogram: {
          const Histogram& h = *series.histogram;
          out += ", \"count\": " + std::to_string(h.Count()) +
                 ", \"sum\": " + std::to_string(h.Sum()) + ", \"buckets\": [";
          int64_t cumulative = 0;
          for (size_t i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
            cumulative += h.BucketCount(i);
            if (i > 0) out += ", ";
            out += "{\"le\": " +
                   std::to_string(Histogram::BucketUpperBound(i)) +
                   ", \"count\": " + std::to_string(cumulative) + "}";
          }
          out += ", {\"le\": \"+Inf\", \"count\": " +
                 std::to_string(h.Count()) + "}]";
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n}\n";
  return out;
}

std::vector<GaugeSample> MetricRegistry::GaugeSamples() const {
  MutexLock lock(&mu_);
  std::vector<GaugeSample> samples;
  for (const auto& [name, family] : families_) {
    if (family.type != Type::kGauge) continue;
    for (const auto& [signature, series] : family.series) {
      samples.push_back(
          GaugeSample{name, series.labels, series.gauge->Value()});
    }
  }
  return samples;
}

}  // namespace trac
