#include "telemetry/profile.h"

#include <algorithm>

#include "absint/absint.h"
#include "telemetry/telemetry.h"

namespace trac {

namespace {

void Annotate(PlanIr* ir, size_t id, uint64_t rows) {
  ir->nodes[id].has_actual_rows = true;
  ir->nodes[id].actual_rows = rows;
}

void AnnotateNs(PlanIr* ir, size_t id, int64_t ns) {
  ir->nodes[id].has_actual_ns = true;
  ir->nodes[id].actual_ns = ns < 0 ? 0 : ns;
}

/// The node-kind sequence the lowering grammar (ir/lower.cc) emits for a
/// query whose executed shape is `p`: per level a scan, an optional
/// local filter, and (inner levels) a join plus an optional level
/// filter; then the optional constant filter and aggregate fold.
std::vector<IrNodeKind> ExpectedShape(const ExecProfile& p) {
  std::vector<IrNodeKind> shape;
  for (size_t k = 0; k < p.levels.size(); ++k) {
    shape.push_back(IrNodeKind::kScan);
    if (p.levels[k].has_filter) shape.push_back(IrNodeKind::kFilter);
    if (k > 0) {
      shape.push_back(IrNodeKind::kJoin);
      if (p.levels[k].has_level_filter) shape.push_back(IrNodeKind::kFilter);
    }
  }
  if (p.has_const_filter) shape.push_back(IrNodeKind::kFilter);
  if (p.has_agg) shape.push_back(IrNodeKind::kAggregate);
  return shape;
}

/// Annotates the subgraph at `r` from `p`. The walk re-derives the
/// grammar from the profile's structure flags and verifies it against
/// the actual node kinds first — a mismatch (profile from a different
/// plan than the lowered one) annotates nothing rather than lying.
size_t AttachQueryRange(PlanIr* ir, const SessionLayout::QueryRange& r,
                        const ExecProfile& p) {
  if (p.invocations == 0) return 0;
  if (r.end > ir->nodes.size() || r.begin >= r.end || r.top != r.end - 1) {
    return 0;
  }
  const std::vector<IrNodeKind> shape = ExpectedShape(p);
  if (shape.size() != r.end - r.begin) return 0;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (ir->nodes[r.begin + i].kind != shape[i]) return 0;
  }

  size_t id = r.begin;
  int64_t prepare_total_ns = 0;
  for (size_t k = 0; k < p.levels.size(); ++k) {
    const ExecProfile::Level& lvl = p.levels[k];
    Annotate(ir, id, lvl.scan_rows);
    if (k > 0) {
      AnnotateNs(ir, id, lvl.prepare_ns);
      prepare_total_ns += lvl.prepare_ns;
    }
    ++id;
    if (lvl.has_filter) Annotate(ir, id++, lvl.filter_rows);
    if (k > 0) {
      Annotate(ir, id++, lvl.join_rows);
      if (lvl.has_level_filter) Annotate(ir, id++, lvl.level_rows);
    }
  }
  if (p.has_const_filter) Annotate(ir, id++, p.emitted_rows);
  if (p.has_agg) Annotate(ir, id++, p.output_rows);

  // The top node is the subgraph's outgoing edge: it reports the rows
  // actually delivered downstream (post-DISTINCT/LIMIT — the IR has no
  // node for those trims) and the pipeline time not already attributed
  // to level preparation.
  Annotate(ir, r.top, p.output_rows);
  AnnotateNs(ir, r.top, p.total_ns - prepare_total_ns);
  return shape.size();
}

}  // namespace

size_t AttachSessionProfile(PlanIr* ir, const SessionLayout& layout,
                            const SessionProfile& profile) {
  size_t annotated = 0;
  const size_t n = ir->nodes.size();

  if (profile.ran_user) {
    annotated += AttachQueryRange(ir, layout.user, profile.user);
  }

  for (const TaskProfile& task : profile.tasks) {
    if (task.part >= layout.parts.size()) continue;
    const SessionLayout::Part& part = layout.parts[task.part];
    if (part.sharded) {
      if (!task.sharded || task.shard >= part.shard_scan_ids.size()) continue;
      const size_t id = part.shard_scan_ids[task.shard];
      if (id >= n) continue;
      Annotate(ir, id, task.rows);
      AnnotateNs(ir, id, task.micros * 1000);
      ++annotated;
      continue;
    }
    if (task.sharded) {
      // A pure-heartbeat part executed as a single shard (the serial
      // path): the lowering emitted its plan subgraph instead of shard
      // scans, and the whole subgraph is one storage scan — the task's
      // counters land on its root.
      if (task.shard == 0 && part.main.end > part.main.begin &&
          part.main.top < n) {
        Annotate(ir, part.main.top, task.rows);
        AnnotateNs(ir, part.main.top, task.micros * 1000);
        ++annotated;
      }
      continue;
    }
    for (size_t g = 0; g < task.guards.size() && g < part.guards.size(); ++g) {
      annotated += AttachQueryRange(ir, part.guards[g], task.guards[g]);
    }
    if (task.ran_main) {
      annotated += AttachQueryRange(ir, part.main, task.main);
    }
    if (part.has_gate && part.gate_id < n) {
      // The gate passes the main query's rows iff every guard proved
      // nonempty; a suppressed part delivers nothing.
      Annotate(ir, part.gate_id, task.ran_main ? task.rows : 0);
      ++annotated;
    }
  }

  if (!profile.tasks.empty() && layout.merge_id < n) {
    Annotate(ir, layout.merge_id, profile.merged_rows);
    AnnotateNs(ir, layout.merge_id, profile.merge_micros * 1000);
    ++annotated;
  }
  if (layout.tempwrite_ids.size() >= 1 && layout.tempwrite_ids[0] < n) {
    Annotate(ir, layout.tempwrite_ids[0], profile.normal_rows);
    ++annotated;
  }
  if (layout.tempwrite_ids.size() >= 2 && layout.tempwrite_ids[1] < n) {
    Annotate(ir, layout.tempwrite_ids[1], profile.exceptional_rows);
    ++annotated;
  }
  if (layout.report_id < n &&
      ir->nodes[layout.report_id].kind == IrNodeKind::kReport) {
    // The report node "emits" the user-query result (its first input
    // strand — the same input absint takes the static cardinality
    // from); the relevant-source count already sits on the merge node.
    // The attributed time is the stats phase the report alone pays.
    if (profile.ran_user) {
      Annotate(ir, layout.report_id, profile.user.output_rows);
    }
    AnnotateNs(ir, layout.report_id, profile.stats_micros * 1000);
    ++annotated;
  }
  return annotated;
}

std::string_view ProfileCodeId(ProfileCode code) {
  switch (code) {
    case ProfileCode::kActualOutsideStaticBounds:
      return "TRAC-P001";
    case ProfileCode::kMisestimate:
      return "TRAC-P002";
  }
  return "TRAC-P???";
}

std::string ProfileDiagnostic::Format() const {
  std::string out = "[";
  out += ProfileCodeId(code);
  out += "] node " + std::to_string(node) + " (";
  out += IrNodeKindToString(kind);
  out += "): " + message;
  return out;
}

std::vector<ProfileDiagnostic> AnalyzeProfileDrift(
    const PlanIr& ir, const ProfileDriftOptions& options) {
  std::vector<ProfileDiagnostic> out;
  const absint::AbsintResult analysis = absint::AnalyzeIr(ir);
  for (const IrNode& node : ir.nodes) {
    if (!node.has_actual_rows || node.id >= analysis.facts.size()) continue;
    const absint::CardInterval& card = analysis.facts[node.id].card;
    if (node.actual_rows < card.lo ||
        (!card.unbounded && node.actual_rows > card.hi)) {
      ProfileDiagnostic d;
      d.code = ProfileCode::kActualOutsideStaticBounds;
      d.node = node.id;
      d.kind = node.kind;
      d.message = "actual_rows=" + std::to_string(node.actual_rows) +
                  " outside the proven cardinality interval [" +
                  std::to_string(card.lo) + ", " +
                  (card.unbounded ? std::string("inf")
                                  : std::to_string(card.hi)) +
                  "]";
      out.push_back(std::move(d));
    }
    if (node.kind == IrNodeKind::kScan && node.has_rows &&
        options.misestimate_factor > 0) {
      const uint64_t actual = std::max<uint64_t>(node.actual_rows, 1);
      if (node.rows / actual >= options.misestimate_factor) {
        ProfileDiagnostic d;
        d.code = ProfileCode::kMisestimate;
        d.node = node.id;
        d.kind = node.kind;
        d.message = "estimate rows=" + std::to_string(node.rows) +
                    " overshoots actual_rows=" +
                    std::to_string(node.actual_rows) + " by >= " +
                    std::to_string(options.misestimate_factor) + "x";
        out.push_back(std::move(d));
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileDiagnostic& a, const ProfileDiagnostic& b) {
                     if (a.node != b.node) return a.node < b.node;
                     return static_cast<int>(a.code) < static_cast<int>(b.code);
                   });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const ProfileDiagnostic& a,
                           const ProfileDiagnostic& b) {
                          return a.node == b.node && a.code == b.code;
                        }),
            out.end());
  return out;
}

void FlightRecorder::Record(SessionProfileRecord record) {
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<SessionProfileRecord> FlightRecorder::Entries() const {
  MutexLock lock(&mu_);
  std::vector<SessionProfileRecord> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, `next_` is the oldest slot.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  MutexLock lock(&mu_);
  return total_;
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder& ResolveFlightRecorder(const Telemetry& telemetry) {
  return telemetry.recorder != nullptr ? *telemetry.recorder
                                       : FlightRecorder::Default();
}

}  // namespace trac
