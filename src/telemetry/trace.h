#ifndef TRAC_TELEMETRY_TRACE_H_
#define TRAC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace trac {

/// One finished span of a query lifecycle. Spans with the same trace_id
/// belong to one report session; parent_id links them into a tree
/// (0 = root). Ids are never 0 for real spans.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  // Domain annotations (0 / -1 when not applicable).
  uint64_t session_id = 0;
  uint64_t snapshot_epoch = 0;
  int64_t relevant_sources = -1;
};

/// Collects finished spans into a fixed-capacity ring buffer (oldest
/// evicted first) and renders one trace as a nested JSON tree. Record
/// is a short leaf-ranked critical section, safe from pool workers;
/// span/trace id allocation is lock-free.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer used by default across the library.
  [[nodiscard]] static Tracer& Default();

  [[nodiscard]] uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(SpanRecord span) TRAC_EXCLUDES(mu_);

  /// All buffered spans of `trace_id`, sorted by (start, span_id).
  [[nodiscard]] std::vector<SpanRecord> CollectTrace(uint64_t trace_id) const
      TRAC_EXCLUDES(mu_);

  /// Number of spans currently buffered (across all traces).
  [[nodiscard]] size_t size() const TRAC_EXCLUDES(mu_);
  [[nodiscard]] size_t capacity() const { return capacity_; }

  /// The trace as a nested JSON tree: `{"trace_id": N, "spans": [...]}`
  /// where each span carries name/timing/annotations and its `children`
  /// sorted by start time. Spans whose parent was evicted from the ring
  /// surface as roots, so a truncated trace still renders.
  [[nodiscard]] std::string DumpTraceJson(uint64_t trace_id) const
      TRAC_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  mutable Mutex mu_{lock_rank::kTelemetry, "Tracer::mu_"};
  std::vector<SpanRecord> ring_ TRAC_GUARDED_BY(mu_);
  size_t next_slot_ TRAC_GUARDED_BY(mu_) = 0;
};

/// RAII span: stamps the start on construction, records itself into the
/// tracer on End() (or destruction). Movable so it can be returned from
/// helpers; a default-constructed span is inert. Annotation setters may
/// be called any time before End().
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(Tracer* tracer, ClockFn clock, std::string_view name,
            uint64_t trace_id, uint64_t parent_id = 0);
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  /// Finishes the span and records it. Idempotent.
  void End();

  [[nodiscard]] uint64_t id() const { return record_.span_id; }
  [[nodiscard]] uint64_t trace_id() const { return record_.trace_id; }

  void set_session_id(uint64_t id) { record_.session_id = id; }
  void set_snapshot_epoch(uint64_t epoch) { record_.snapshot_epoch = epoch; }
  void set_relevant_sources(int64_t n) { record_.relevant_sources = n; }

 private:
  Tracer* tracer_ = nullptr;  // null = inert / already ended
  ClockFn clock_ = nullptr;
  SpanRecord record_;
};

}  // namespace trac

#endif  // TRAC_TELEMETRY_TRACE_H_
