#include "opt/cost.h"

#include <algorithm>

namespace trac {
namespace opt {

TableStats CollectTableStats(const Database& db, TableId id) {
  const Table* table = db.GetTable(id);
  const uint64_t rows = table->num_versions();
  TableStats stats;
  if (db.catalog().GetTableStats(id, rows, &stats)) return stats;
  stats.row_count = rows;
  for (size_t col : table->IndexedColumns()) {
    const OrderedIndex* index = table->GetIndex(col);
    ColumnStats cs;
    cs.column = col;
    cs.ndv = static_cast<uint64_t>(index->NumDistinctKeys());
    stats.columns.push_back(cs);
  }
  db.catalog().SetTableStats(id, stats);
  return stats;
}

double PlanCost(const Database& db, const BoundQuery& query,
                const QueryPlan& plan) {
  // A provably-empty plan touches no storage at all.
  if (plan.provably_empty) return 0.0;

  double cost = 0.0;
  double prefix = 1.0;
  for (size_t i = 0; i < plan.levels.size(); ++i) {
    const LevelPlan& level = plan.levels[i];
    const TableStats stats =
        CollectTableStats(db, query.relations[level.relation].table_id);
    const double base = static_cast<double>(stats.row_count);

    // Rows the access path touches per visit of this level.
    double access = base;
    if (level.use_local_index) {
      access = std::min(
          base, base * EqualitySelectivity(stats, level.index_column) *
                    static_cast<double>(level.index_keys.size()));
    } else if (level.use_range_index) {
      access = base * RangeSelectivity();
    }
    // Non-index local predicates shrink the level's output but not the
    // rows touched; fold the planner's classic 10% per level.
    double out = access;
    if (!level.local_preds.empty() && !level.use_local_index &&
        !level.use_range_index) {
      out = std::max(1.0, access * 0.1);
    }

    if (i == 0) {
      cost += access;
    } else if (level.index_nested_loop && !level.equi_keys.empty()) {
      // Per-probe index lookup on the build column.
      cost += prefix *
              std::max(1.0, base * EqualitySelectivity(
                                       stats, level.equi_keys[0].build.col));
    } else {
      // Hash (or nested-loop) join: build/scan this side once, probe
      // once per prefix row.
      cost += access + prefix;
    }

    // Join output estimate: equi keys pick 1/NDV of the build side.
    double joined = prefix * out;
    for (const LevelPlan::EquiKey& k : level.equi_keys) {
      joined *= EqualitySelectivity(stats, k.build.col);
    }
    prefix = std::max(1.0, joined);
  }
  return cost;
}

}  // namespace opt
}  // namespace trac
