#ifndef TRAC_OPT_PLAN_BUILD_H_
#define TRAC_OPT_PLAN_BUILD_H_

#include <vector>

#include "exec/planner.h"
#include "expr/bound_expr.h"
#include "storage/database.h"

namespace trac {
namespace opt {

/// Plan-construction primitives shared by the planner's greedy pass
/// (exec/planner.cc) and the optimizer's join-reorder rule
/// (opt/rewrite.cc), which rebuilds the same left-deep structure for a
/// forced relation order. One implementation keeps the predicate
/// placement discipline — and therefore the lowered IR — identical
/// between the two callers.

/// One top-level AND unit of the WHERE clause.
struct PredUnit {
  const BoundExpr* expr;
  uint64_t rel_mask;
  bool consumed = false;
};

/// Splits the WHERE clause into top-level AND units. Constant units
/// (rel_mask == 0) are moved into plan->constant_preds and marked
/// consumed.
std::vector<PredUnit> SplitWhereUnits(const BoundQuery& query,
                                      QueryPlan* plan);

/// Matches `col = literal` / `col IN (literals)` on relation `rel`;
/// fills the column and the deduplicated, sorted key list.
bool IsColumnLiteralEq(const BoundExpr& e, size_t rel, size_t* column,
                       std::vector<Value>* keys);

/// Per-relation access-path candidate and cardinality estimate.
struct RelAccess {
  double base_rows = 0;
  double est_rows = 0;
  bool has_local_pred = false;
  bool use_index = false;
  size_t index_column = 0;
  std::vector<Value> index_keys;
};

std::vector<RelAccess> ComputeRelAccess(const Database& db,
                                        const BoundQuery& query,
                                        const std::vector<PredUnit>& units);

/// Appends one level per relation to plan->levels: greedy join ordering
/// when `forced_order` is null (connected relations first, then smallest
/// estimate), the given order otherwise. Consumes every unit at the
/// earliest level where it becomes checkable; Internal error if any unit
/// is left unplaced.
[[nodiscard]] Status BuildJoinLevels(const Database& db,
                                     const BoundQuery& query,
                                     const std::vector<RelAccess>& info,
                                     std::vector<PredUnit> units,
                                     const std::vector<size_t>* forced_order,
                                     QueryPlan* plan);

}  // namespace opt
}  // namespace trac

#endif  // TRAC_OPT_PLAN_BUILD_H_
