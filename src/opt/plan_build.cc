#include "opt/plan_build.h"

#include <algorithm>

namespace trac {
namespace opt {

namespace {
constexpr double kLocalPredSelectivity = 0.1;
constexpr double kIndexNestedLoopMaxPrefix = 1024.0;
}  // namespace

std::vector<PredUnit> SplitWhereUnits(const BoundQuery& query,
                                      QueryPlan* plan) {
  std::vector<PredUnit> units;
  if (query.where != nullptr) {
    if (query.where->kind == ExprKind::kAnd) {
      for (const auto& c : query.where->children) {
        units.push_back(PredUnit{c.get(), c->ReferencedRelations()});
      }
    } else {
      units.push_back(
          PredUnit{query.where.get(), query.where->ReferencedRelations()});
    }
  }
  for (PredUnit& u : units) {
    if (u.rel_mask == 0) {
      plan->constant_preds.push_back(u.expr);
      u.consumed = true;
    }
  }
  return units;
}

bool IsColumnLiteralEq(const BoundExpr& e, size_t rel, size_t* column,
                       std::vector<Value>* keys) {
  if (e.kind == ExprKind::kCompare && e.op == CompareOp::kEq) {
    const BoundExpr* col = nullptr;
    const BoundExpr* lit = nullptr;
    if (e.children[0]->kind == ExprKind::kColumnRef &&
        e.children[1]->kind == ExprKind::kLiteral) {
      col = e.children[0].get();
      lit = e.children[1].get();
    } else if (e.children[1]->kind == ExprKind::kColumnRef &&
               e.children[0]->kind == ExprKind::kLiteral) {
      col = e.children[1].get();
      lit = e.children[0].get();
    } else {
      return false;
    }
    if (col->column.rel != rel || lit->literal.is_null()) return false;
    *column = col->column.col;
    keys->assign(1, lit->literal);
    return true;
  }
  if (e.kind == ExprKind::kInList && !e.negated &&
      e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[0]->column.rel == rel) {
    *column = e.children[0]->column.col;
    keys->clear();
    for (const Value& v : e.list) {
      if (!v.is_null()) keys->push_back(v);
    }
    std::sort(keys->begin(), keys->end());
    keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
    return !keys->empty();
  }
  return false;
}

std::vector<RelAccess> ComputeRelAccess(const Database& db,
                                        const BoundQuery& query,
                                        const std::vector<PredUnit>& units) {
  const size_t num_rels = query.relations.size();
  std::vector<RelAccess> info(num_rels);
  for (size_t r = 0; r < num_rels; ++r) {
    const Table* table = db.GetTable(query.relations[r].table_id);
    info[r].base_rows = static_cast<double>(table->num_versions());
    info[r].est_rows = info[r].base_rows;
    for (const PredUnit& u : units) {
      if (u.consumed || u.rel_mask != (uint64_t{1} << r)) continue;
      info[r].has_local_pred = true;
      size_t column;
      std::vector<Value> keys;
      if (!IsColumnLiteralEq(*u.expr, r, &column, &keys)) continue;
      const OrderedIndex* index = table->GetIndex(column);
      if (index == nullptr) continue;
      double est = 0;
      for (const Value& k : keys) {
        est += static_cast<double>(index->CountEqual(k));
      }
      if (!info[r].use_index || est < info[r].est_rows) {
        info[r].use_index = true;
        info[r].index_column = column;
        info[r].index_keys = keys;
        info[r].est_rows = est;
      }
    }
    if (!info[r].use_index && info[r].has_local_pred) {
      info[r].est_rows =
          std::max(1.0, info[r].base_rows * kLocalPredSelectivity);
    }
  }
  return info;
}

[[nodiscard]] Status BuildJoinLevels(const Database& db,
                                     const BoundQuery& query,
                                     const std::vector<RelAccess>& info,
                                     std::vector<PredUnit> units,
                                     const std::vector<size_t>* forced_order,
                                     QueryPlan* plan) {
  const size_t num_rels = query.relations.size();
  uint64_t bound_mask = 0;
  std::vector<bool> placed(num_rels, false);
  double prefix_est = 1.0;

  auto connected = [&](size_t r) {
    if (bound_mask == 0) return false;
    for (const PredUnit& u : units) {
      if (u.consumed) continue;
      if (u.expr->kind != ExprKind::kCompare ||
          u.expr->op != CompareOp::kEq) {
        continue;
      }
      const BoundExpr& l = *u.expr->children[0];
      const BoundExpr& rr = *u.expr->children[1];
      if (l.kind != ExprKind::kColumnRef || rr.kind != ExprKind::kColumnRef) {
        continue;
      }
      uint64_t mask = u.rel_mask;
      uint64_t rbit = uint64_t{1} << r;
      if ((mask & rbit) != 0 && (mask & bound_mask) != 0 &&
          (mask & ~(bound_mask | rbit)) == 0) {
        return true;
      }
    }
    return false;
  };

  for (size_t step = 0; step < num_rels; ++step) {
    size_t r;
    if (forced_order != nullptr) {
      r = (*forced_order)[step];
    } else {
      // Pick the next relation: connected ones first, then by estimate.
      size_t best = num_rels;
      bool best_connected = false;
      for (size_t cand = 0; cand < num_rels; ++cand) {
        if (placed[cand]) continue;
        bool conn = connected(cand);
        if (best == num_rels || (conn && !best_connected) ||
            (conn == best_connected &&
             info[cand].est_rows < info[best].est_rows)) {
          best = cand;
          best_connected = conn;
        }
      }
      r = best;
    }
    placed[r] = true;
    const uint64_t rbit = uint64_t{1} << r;

    LevelPlan level;
    level.relation = r;
    level.use_local_index = info[r].use_index;
    level.index_column = info[r].index_column;
    level.index_keys = info[r].index_keys;
    level.estimated_rows = info[r].est_rows;

    // Consume predicates that become checkable at this level.
    for (PredUnit& u : units) {
      if (u.consumed || (u.rel_mask & ~(bound_mask | rbit)) != 0) continue;
      if ((u.rel_mask & rbit) == 0) continue;  // Already checkable earlier.
      u.consumed = true;
      if (u.rel_mask == rbit) {
        level.local_preds.push_back(u.expr);
        continue;
      }
      // Spans the prefix and this relation: equi key or level predicate.
      const BoundExpr& e = *u.expr;
      if (e.kind == ExprKind::kCompare && e.op == CompareOp::kEq &&
          e.children[0]->kind == ExprKind::kColumnRef &&
          e.children[1]->kind == ExprKind::kColumnRef) {
        const BoundColumnRef& a = e.children[0]->column;
        const BoundColumnRef& b = e.children[1]->column;
        if (a.rel == r && b.rel != r) {
          level.equi_keys.push_back(LevelPlan::EquiKey{b, a});
          continue;
        }
        if (b.rel == r && a.rel != r) {
          level.equi_keys.push_back(LevelPlan::EquiKey{a, b});
          continue;
        }
      }
      level.level_preds.push_back(u.expr);
    }

    // Index nested loop: worthwhile when the prefix is small and the
    // build column is indexed (and a local index path would not already
    // be cheaper than per-probe lookups).
    if (!level.equi_keys.empty() && bound_mask != 0) {
      const Table* table = db.GetTable(query.relations[r].table_id);
      const OrderedIndex* index =
          table->GetIndex(level.equi_keys[0].build.col);
      if (index != nullptr && prefix_est <= kIndexNestedLoopMaxPrefix &&
          (!level.use_local_index || info[r].est_rows > prefix_est)) {
        level.index_nested_loop = true;
      }
    }

    prefix_est *= std::max(1.0, level.estimated_rows);
    bound_mask |= rbit;
    plan->levels.push_back(std::move(level));
  }

  // Every unit must be consumed by now (masks are subsets of all bound).
  for (const PredUnit& u : units) {
    if (!u.consumed) {
      return Status::Internal("planner failed to place a predicate");
    }
  }
  return Status::OK();
}

}  // namespace opt
}  // namespace trac
