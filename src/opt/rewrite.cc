#include "opt/rewrite.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ir/lower.h"
#include "opt/cost.h"
#include "opt/plan_build.h"
#include "telemetry/metrics.h"
#include "verify/equiv.h"

namespace trac {
namespace opt {

namespace {

std::atomic<bool> g_optimizer_enabled{true};
std::atomic<bool> g_force_witness_failure{false};

/// Cost-motivated rules must clear this margin so estimate noise (and
/// exact ties on tiny tables) keeps the incumbent — which is what pins
/// the existing plan goldens byte-for-byte.
constexpr double kStrictImprovement = 0.99;

constexpr size_t kMaxReorderRelations = 4;

/// Row order reaching the output is unobservable only when the query
/// folds everything into aggregates; every order-changing rule gates on
/// this so report bytes stay identical with the optimizer on and off.
bool OrderInsensitiveOutput(const BoundQuery& query) {
  return query.count_star || !query.aggregates.empty();
}

/// Deterministic corruption for TestOnlyForceWitnessFailure: flip a
/// fingerprint (V009), else move a scan to a new epoch (V011), else
/// flip an output provenance class (V010).
void CorruptWitness(PlanIr* after) {
  for (IrNode& n : after->nodes) {
    if (n.kind == IrNodeKind::kFilter && n.has_pred) {
      n.pred_fingerprint ^= 1;
      return;
    }
  }
  for (IrNode& n : after->nodes) {
    if (n.kind == IrNodeKind::kScan) {
      n.snapshot += 1;
      return;
    }
  }
  if (!after->nodes.empty() && !after->nodes.back().columns.empty()) {
    IrColumn& c = after->nodes.back().columns[0];
    c.provenance = c.provenance == ColumnProvenance::kDataSource
                       ? ColumnProvenance::kRegular
                       : ColumnProvenance::kDataSource;
  }
}

struct WitnessVerdict {
  bool ok = false;
  std::string reject_code;  ///< "TRAC-Vnnn" of the first finding.
};

WitnessVerdict ValidateWitness(const Database& db, const BoundQuery& query,
                               Snapshot snapshot, const QueryPlan& before,
                               const QueryPlan& after) {
  const PlanIr before_ir = LowerQueryPlan(db, query, before, snapshot);
  PlanIr after_ir = LowerQueryPlan(db, query, after, snapshot);
  if (g_force_witness_failure.load(std::memory_order_relaxed)) {
    CorruptWitness(&after_ir);
  }
  const VerifyReport report = CheckIrEquivalence(before_ir, after_ir);
  WitnessVerdict verdict;
  verdict.ok = report.ok();
  if (!report.ok()) {
    verdict.reject_code = std::string(VerifyCodeId(report.diagnostics[0].code));
  }
  return verdict;
}

struct Counters {
  Counter* attempted;
  Counter* applied;
  Counter* rejected;
};

Counters& OptCounters() {
  static Counters counters{
      MetricRegistry::Default().GetCounter(
          "trac_opt_rewrites_attempted",
          "Optimizer rewrite candidates submitted for translation "
          "validation"),
      MetricRegistry::Default().GetCounter(
          "trac_opt_rewrites_applied",
          "Optimizer rewrites whose witness verified and that won on cost"),
      MetricRegistry::Default().GetCounter(
          "trac_opt_rewrites_rejected",
          "Optimizer rewrites discarded because the equivalence witness "
          "failed verification"),
  };
  return counters;
}

/// Shared application discipline: validate the witness, compare costs,
/// keep the incumbent on any doubt. Returns true when `cand` replaced
/// `*plan`.
class RewriteSession {
 public:
  RewriteSession(const Database& db, const BoundQuery& query,
                 Snapshot snapshot, QueryPlan* plan)
      : db_(db), query_(query), snapshot_(snapshot), plan_(plan) {
    current_cost_ = PlanCost(db_, query_, *plan_);
  }

  double current_cost() const { return current_cost_; }

  bool Attempt(const char* rule, std::string detail, QueryPlan cand,
               bool require_strictly_cheaper) {
    OptCounters().attempted->Increment();
    PlanRewrite log;
    log.rule = rule;
    log.detail = std::move(detail);
    log.cost_before = current_cost_;
    cand.rewrites.clear();
    log.cost_after = PlanCost(db_, query_, cand);

    const WitnessVerdict verdict =
        ValidateWitness(db_, query_, snapshot_, *plan_, cand);
    if (!verdict.ok) {
      OptCounters().rejected->Increment();
      log.verdict = "rejected " + verdict.reject_code;
      plan_->rewrites.push_back(std::move(log));
      return false;
    }
    const bool wins = require_strictly_cheaper
                          ? log.cost_after < current_cost_ * kStrictImprovement
                          : log.cost_after <= current_cost_;
    if (!wins) {
      log.verdict = "verified, not cheaper";
      plan_->rewrites.push_back(std::move(log));
      return false;
    }
    OptCounters().applied->Increment();
    log.verdict = "applied";
    log.applied = true;
    current_cost_ = log.cost_after;
    std::vector<PlanRewrite> trail = std::move(plan_->rewrites);
    trail.push_back(std::move(log));
    *plan_ = std::move(cand);
    plan_->rewrites = std::move(trail);
    return true;
  }

 private:
  const Database& db_;
  const BoundQuery& query_;
  Snapshot snapshot_;
  QueryPlan* plan_;
  double current_cost_ = 0;
};

// ---------------------------------------------------------------------------
// Rule: dead-subplan pruning.

void RuleDeadSubplanPrune(RewriteSession* session, const PlanningHints& hints,
                          QueryPlan* plan) {
  if (plan->provably_empty || hints.static_card == nullptr ||
      !hints.static_card->DefinitelyEmpty()) {
    return;
  }
  QueryPlan cand = *plan;
  cand.provably_empty = true;
  session->Attempt("dead-subplan-prune",
                   "static cardinality interval " +
                       hints.static_card->ToString() + " is provably empty",
                   std::move(cand), /*require_strictly_cheaper=*/false);
}

// ---------------------------------------------------------------------------
// Rule: redundant-filter elimination. Identity is the canonical SQL
// rendering of a conjunct — the same identity the V007 fingerprint facts
// are built from — so a conjunct evaluated twice anywhere in the plan is
// evaluated once after the rewrite.

void RuleRedundantFilterElim(const Database& db, const BoundQuery& query,
                             RewriteSession* session, QueryPlan* plan) {
  std::set<std::string> seen;
  size_t dropped = 0;
  QueryPlan cand = *plan;
  auto dedupe = [&](std::vector<const BoundExpr*>* preds) {
    std::vector<const BoundExpr*> kept;
    for (const BoundExpr* p : *preds) {
      if (seen.insert(query.ExprToSql(db, *p)).second) {
        kept.push_back(p);
      } else {
        ++dropped;
      }
    }
    *preds = std::move(kept);
  };
  dedupe(&cand.constant_preds);
  for (LevelPlan& level : cand.levels) {
    dedupe(&level.local_preds);
    dedupe(&level.level_preds);
  }
  if (dropped == 0) return;
  session->Attempt("redundant-filter-elim",
                   "dropped " + std::to_string(dropped) +
                       " duplicate conjunct(s)",
                   std::move(cand), /*require_strictly_cheaper=*/false);
}

// ---------------------------------------------------------------------------
// Rule: predicate pushdown. The planner already places every unit at the
// earliest checkable level, so this fires only on plans built elsewhere
// (tests, tools, rewritten candidates) — but when it fires, evaluating
// the predicate below the join shrinks every level above it.

void RulePredicatePushdown(RewriteSession* session, QueryPlan* plan) {
  QueryPlan cand = *plan;
  // prefix_mask[i]: relations bound once level i has run.
  std::vector<uint64_t> prefix_mask(cand.levels.size(), 0);
  uint64_t mask = 0;
  for (size_t i = 0; i < cand.levels.size(); ++i) {
    mask |= uint64_t{1} << cand.levels[i].relation;
    prefix_mask[i] = mask;
  }
  size_t moved = 0;
  for (size_t j = 0; j < cand.levels.size(); ++j) {
    std::vector<const BoundExpr*> remaining;
    for (const BoundExpr* p : cand.levels[j].level_preds) {
      const uint64_t refs = p->ReferencedRelations();
      size_t earliest = j;
      for (size_t k = 0; k < j; ++k) {
        if ((refs & ~prefix_mask[k]) == 0) {
          earliest = k;
          break;
        }
      }
      if (earliest == j) {
        remaining.push_back(p);
        continue;
      }
      ++moved;
      LevelPlan& target = cand.levels[earliest];
      if (refs == (uint64_t{1} << target.relation)) {
        target.local_preds.push_back(p);
      } else {
        target.level_preds.push_back(p);
      }
    }
    cand.levels[j].level_preds = std::move(remaining);
  }
  if (moved == 0) return;
  session->Attempt("predicate-pushdown",
                   "sank " + std::to_string(moved) +
                       " predicate(s) below the join they were checked at",
                   std::move(cand), /*require_strictly_cheaper=*/false);
}

// ---------------------------------------------------------------------------
// Rule: join reordering. Exhaustive over left-deep orders for small
// joins; every candidate is rebuilt through the shared construction path
// (opt/plan_build.h) so predicate placement discipline is identical to
// the planner's, then costed with the catalog row/NDV statistics.

void RuleJoinReorder(const Database& db, const BoundQuery& query,
                     RewriteSession* session, QueryPlan* plan) {
  const size_t num_rels = query.relations.size();
  if (num_rels < 2 || num_rels > kMaxReorderRelations) return;
  if (!OrderInsensitiveOutput(query)) return;

  auto order_of = [&](const QueryPlan& p) {
    std::vector<size_t> order;
    order.reserve(p.levels.size());
    for (const LevelPlan& level : p.levels) order.push_back(level.relation);
    return order;
  };
  auto order_name = [&](const std::vector<size_t>& order) {
    std::string out;
    for (size_t i = 0; i < order.size(); ++i) {
      if (i != 0) out += ',';
      out += query.relations[order[i]].display_name;
    }
    return out;
  };

  std::vector<size_t> perm(num_rels);
  for (size_t i = 0; i < num_rels; ++i) perm[i] = i;
  do {
    if (perm == order_of(*plan)) continue;
    QueryPlan cand;
    cand.provably_empty = plan->provably_empty;
    std::vector<PredUnit> units = SplitWhereUnits(query, &cand);
    const std::vector<RelAccess> info = ComputeRelAccess(db, query, units);
    const Status built = BuildJoinLevels(db, query, info, std::move(units),
                                         &perm, &cand);
    if (!built.ok()) continue;
    // Only surface candidates that would actually change the bill: the
    // full permutation sweep would flood the decision trail with
    // obviously-losing orders.
    if (PlanCost(db, query, cand) >=
        session->current_cost() * kStrictImprovement) {
      continue;
    }
    session->Attempt(
        "join-reorder",
        "order " + order_name(order_of(*plan)) + " -> " + order_name(perm),
        std::move(cand), /*require_strictly_cheaper=*/true);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

// ---------------------------------------------------------------------------
// Rule: convert-to-range-scan.

struct RangeBounds {
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_inclusive = false;
  bool hi_inclusive = false;
};

/// Matches one range conjunct (`col op literal`, `literal op col`, or
/// `col BETWEEN lo AND hi`) on relation `rel`.
bool RangePredOn(const BoundExpr& e, size_t rel, size_t* column,
                 RangeBounds* bounds) {
  if (e.kind == ExprKind::kCompare &&
      (e.op == CompareOp::kLt || e.op == CompareOp::kLe ||
       e.op == CompareOp::kGt || e.op == CompareOp::kGe)) {
    const BoundExpr* col = nullptr;
    const BoundExpr* lit = nullptr;
    CompareOp op = e.op;
    if (e.children[0]->kind == ExprKind::kColumnRef &&
        e.children[1]->kind == ExprKind::kLiteral) {
      col = e.children[0].get();
      lit = e.children[1].get();
    } else if (e.children[1]->kind == ExprKind::kColumnRef &&
               e.children[0]->kind == ExprKind::kLiteral) {
      col = e.children[1].get();
      lit = e.children[0].get();
      op = FlipCompareOp(op);
    } else {
      return false;
    }
    if (col->column.rel != rel || lit->literal.is_null()) return false;
    *column = col->column.col;
    *bounds = RangeBounds{};
    if (op == CompareOp::kGt || op == CompareOp::kGe) {
      bounds->lo = lit->literal;
      bounds->lo_inclusive = op == CompareOp::kGe;
    } else {
      bounds->hi = lit->literal;
      bounds->hi_inclusive = op == CompareOp::kLe;
    }
    return true;
  }
  if (e.kind == ExprKind::kBetween && !e.negated &&
      e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[0]->column.rel == rel &&
      e.children[1]->kind == ExprKind::kLiteral &&
      e.children[2]->kind == ExprKind::kLiteral &&
      !e.children[1]->literal.is_null() && !e.children[2]->literal.is_null()) {
    *column = e.children[0]->column.col;
    *bounds = RangeBounds{};
    bounds->lo = e.children[1]->literal;
    bounds->lo_inclusive = true;
    bounds->hi = e.children[2]->literal;
    bounds->hi_inclusive = true;
    return true;
  }
  return false;
}

/// Conjunctive tightening: both bounds come from real conjuncts, so the
/// stricter one can only exclude rows some conjunct rejects anyway.
void TightenBounds(RangeBounds* acc, const RangeBounds& b) {
  if (b.lo.has_value() &&
      (!acc->lo.has_value() || *acc->lo < *b.lo ||
       (!(*b.lo < *acc->lo) && acc->lo_inclusive && !b.lo_inclusive))) {
    acc->lo = b.lo;
    acc->lo_inclusive = b.lo_inclusive;
  }
  if (b.hi.has_value() &&
      (!acc->hi.has_value() || *b.hi < *acc->hi ||
       (!(*acc->hi < *b.hi) && acc->hi_inclusive && !b.hi_inclusive))) {
    acc->hi = b.hi;
    acc->hi_inclusive = b.hi_inclusive;
  }
}

void RuleConvertToRangeScan(const Database& db, const BoundQuery& query,
                            RewriteSession* session, QueryPlan* plan) {
  if (!OrderInsensitiveOutput(query)) return;
  for (size_t i = 0; i < plan->levels.size(); ++i) {
    const LevelPlan& level = plan->levels[i];
    if (level.use_local_index || level.use_range_index) continue;
    const Table* table = db.GetTable(query.relations[level.relation].table_id);

    // First indexed column with a range conjunct wins; further range
    // conjuncts on the same column tighten the bounds.
    size_t range_column = 0;
    RangeBounds bounds;
    bool found = false;
    for (const BoundExpr* p : level.local_preds) {
      size_t column;
      RangeBounds b;
      if (!RangePredOn(*p, level.relation, &column, &b)) continue;
      if (!found) {
        if (table->GetIndex(column) == nullptr) continue;
        range_column = column;
        bounds = b;
        found = true;
      } else if (column == range_column) {
        TightenBounds(&bounds, b);
      }
    }
    if (!found) continue;

    QueryPlan cand = *plan;
    LevelPlan& target = cand.levels[i];
    target.use_range_index = true;
    target.index_column = range_column;
    target.range_lo = bounds.lo;
    target.range_hi = bounds.hi;
    target.range_lo_inclusive = bounds.lo_inclusive;
    target.range_hi_inclusive = bounds.hi_inclusive;

    const TableSchema& schema =
        db.catalog().schema(query.relations[level.relation].table_id);
    session->Attempt("convert-to-range-scan",
                     "level " + std::to_string(i) + ": range scan on " +
                         query.relations[level.relation].display_name + "." +
                         schema.column(range_column).name,
                     std::move(cand), /*require_strictly_cheaper=*/true);
  }
}

}  // namespace

bool OptimizerEnabled() {
  return g_optimizer_enabled.load(std::memory_order_relaxed);
}

void SetOptimizerEnabled(bool enabled) {
  g_optimizer_enabled.store(enabled, std::memory_order_relaxed);
}

void TestOnlyForceWitnessFailure(bool fail) {
  g_force_witness_failure.store(fail, std::memory_order_relaxed);
}

void OptimizePlan(const Database& db, const BoundQuery& query,
                  Snapshot snapshot, const PlanningHints& hints,
                  QueryPlan* plan) {
  if (!OptimizerEnabled()) return;
  RewriteSession session(db, query, snapshot, plan);
  RuleDeadSubplanPrune(&session, hints, plan);
  RuleRedundantFilterElim(db, query, &session, plan);
  RulePredicatePushdown(&session, plan);
  RuleJoinReorder(db, query, &session, plan);
  RuleConvertToRangeScan(db, query, &session, plan);
}

}  // namespace opt
}  // namespace trac
