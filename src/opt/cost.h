#ifndef TRAC_OPT_COST_H_
#define TRAC_OPT_COST_H_

#include "catalog/stats.h"
#include "exec/planner.h"
#include "storage/database.h"

namespace trac {
namespace opt {

/// Row/NDV statistics for `id`, collected from the row store and its
/// ordered indexes and cached in the catalog (catalog/stats.h). The
/// cache invalidates itself when the table's published version count
/// moves, so repeated planning against a quiescent table is O(1).
TableStats CollectTableStats(const Database& db, TableId id);

/// Deterministic cost of one plan under the collected statistics: rows
/// touched by each level's access path, charged per prefix row for
/// index-nested-loop levels, plus hash build/probe work, with equi-join
/// output estimated from the join columns' NDV. Advisory only — every
/// cost-motivated rewrite is still translation-validated — but stable
/// for a given database state, so candidate ranking is reproducible.
double PlanCost(const Database& db, const BoundQuery& query,
                const QueryPlan& plan);

}  // namespace opt
}  // namespace trac

#endif  // TRAC_OPT_COST_H_
