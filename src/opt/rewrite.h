#ifndef TRAC_OPT_REWRITE_H_
#define TRAC_OPT_REWRITE_H_

#include "exec/planner.h"
#include "expr/bound_expr.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace trac {
namespace opt {

/// Translation-validated plan rewriter. Each rule proposes a candidate
/// plan, lowers both the incumbent and the candidate into the dataflow
/// IR, and submits the (before, after) pair to the static equivalence
/// checker (verify/equiv.h). Only a witness that discharges all four
/// obligations (TRAC-V009..V012) may be applied, and cost-motivated
/// rules additionally require the candidate to beat the incumbent's
/// modeled cost (opt/cost.h). A failing witness is counted
/// (trac_opt_rewrites_rejected) and the incumbent is kept — graceful
/// degradation, never a planning error.
///
/// Rules, in application order:
///   dead-subplan-prune        PlanningHints::static_card is provably
///                             empty: skip storage entirely.
///   redundant-filter-elim     duplicate conjuncts (equal canonical SQL,
///                             the V007 fingerprint identity) evaluated
///                             more than once are dropped.
///   predicate-pushdown        a level predicate checkable strictly
///                             earlier sinks to the earliest level
///                             (no-op on planner output, which already
///                             places at the earliest level; fires on
///                             hand-built or rewritten plans).
///   join-reorder              exhaustive left-deep orders for small
///                             joins, costed with catalog row/NDV stats;
///                             restricted to order-insensitive
///                             (aggregate-only) outputs.
///   convert-to-range-scan     a range conjunct over an indexed column
///                             turns a sequential scan into an ordered
///                             index range scan; IR-invisible, also
///                             restricted to order-insensitive outputs.

/// Process-wide optimizer toggle, default on. Exists so tools and tests
/// can compare optimized and unoptimized plans in one process.
bool OptimizerEnabled();
void SetOptimizerEnabled(bool enabled);

/// Test hook: corrupt the next witnesses so every rewrite verification
/// fails. Proves the rejected-witness path (a rejected rewrite is never
/// applied) end to end; never set outside tests.
void TestOnlyForceWitnessFailure(bool fail);

/// Runs the rewrite pipeline over `plan` in place, recording every
/// attempt in plan->rewrites. Never fails: an unprovable or losing
/// candidate leaves the incumbent untouched.
void OptimizePlan(const Database& db, const BoundQuery& query,
                  Snapshot snapshot, const PlanningHints& hints,
                  QueryPlan* plan);

}  // namespace opt
}  // namespace trac

#endif  // TRAC_OPT_REWRITE_H_
