#include "ir/fingerprint.h"

#include <algorithm>
#include <map>
#include <vector>

#include "ir/normalize.h"

namespace trac {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 14695981039346656037ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// Hash-consing key of one node inside an already input-remapped graph:
/// the structural signature plus the (representative) input ids. Two
/// nodes with equal keys compute the same output, so one can stand for
/// both — every IR node is a pure function of its inputs and the
/// snapshot (which the canonical form has already stripped).
std::string ConsKey(const IrNode& n) {
  std::string key = IrNodeSignature(n);
  key += "#in=";
  for (size_t i = 0; i < n.inputs.size(); ++i) {
    if (i != 0) key += ',';
    key += std::to_string(n.inputs[i]);
  }
  return key;
}

}  // namespace

PlanIr CacheCanonicalIr(const PlanIr& ir) {
  size_t bad = 0;
  if (!IrWellFormed(ir, &bad)) return ir;

  PlanIr stripped = ir;
  for (IrNode& n : stripped.nodes) {
    n.snapshot = 0;
    n.has_rows = false;
    n.rows = 0;
    n.has_age = false;
    n.age_lo = 0;
    n.age_hi = 0;
    n.has_bound = false;
    n.notice_bound_micros = 0;
    // Runtime profile annotations are observations of one execution,
    // never part of what the plan computes.
    n.has_actual_rows = false;
    n.actual_rows = 0;
    n.has_actual_ns = false;
    n.actual_ns = 0;
    // Collapse shard decomposition: a shard scan reads one slice of the
    // same rows the whole-table scan reads, so after this rewrite the k
    // shard scans of one table are structurally identical and the
    // hash-consing below folds them into a single node.
    n.shard = 0;
    n.num_shards = 1;
  }

  std::map<std::string, size_t> repr;
  std::vector<size_t> remap(stripped.nodes.size(), 0);
  PlanIr consed;
  consed.label = stripped.label;
  for (size_t i = 0; i < stripped.nodes.size(); ++i) {
    IrNode node = stripped.nodes[i];
    for (size_t& in : node.inputs) in = remap[in];
    if (node.kind == IrNodeKind::kMerge && node.set_merge) {
      // Set-merge semantics: duplicate strands contribute nothing.
      std::sort(node.inputs.begin(), node.inputs.end());
      node.inputs.erase(std::unique(node.inputs.begin(), node.inputs.end()),
                        node.inputs.end());
    }
    const std::string key = ConsKey(node);
    auto it = repr.find(key);
    if (it != repr.end()) {
      remap[i] = it->second;
      continue;
    }
    node.id = consed.nodes.size();
    remap[i] = node.id;
    repr.emplace(key, node.id);
    consed.nodes.push_back(std::move(node));
  }
  return NormalizeIr(consed);
}

std::string IrCacheKey(const PlanIr& ir) { return CacheCanonicalIr(ir).Dump(); }

uint64_t IrCacheFingerprint(const PlanIr& ir) {
  return Fnv1a64(IrCacheKey(ir));
}

}  // namespace trac
