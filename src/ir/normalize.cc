#include "ir/normalize.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace trac {

namespace {

std::string HexFingerprint(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf);
}

char ProvenanceChar(ColumnProvenance p) {
  return p == ColumnProvenance::kDataSource ? 'd' : 'r';
}

}  // namespace

bool IrWellFormed(const PlanIr& ir, size_t* bad_node) {
  for (size_t i = 0; i < ir.nodes.size(); ++i) {
    if (ir.nodes[i].id != i) {
      *bad_node = i;
      return false;
    }
    for (size_t in : ir.nodes[i].inputs) {
      if (in >= i) {
        *bad_node = i;
        return false;
      }
    }
  }
  return true;
}

std::string IrNodeSignature(const IrNode& n) {
  std::string s(IrNodeKindToString(n.kind));
  s += '|';
  s += std::to_string(n.inputs.size());
  s += '|';
  s += n.table;
  s += '|';
  s += std::to_string(n.snapshot) + '/' + std::to_string(n.shard) + '/' +
       std::to_string(n.num_shards);
  s += n.preexisting_temp ? "|pre" : "|";
  if (n.has_rows) s += "|rows=" + std::to_string(n.rows);
  if (n.has_age) {
    s += "|age=" + std::to_string(n.age_lo) + ".." + std::to_string(n.age_hi);
  }
  if (n.sel_zero) s += "|sel0";
  if (n.has_pred) s += "|pred=" + HexFingerprint(n.pred_fingerprint);
  for (const IrNode::JoinKey& k : n.keys) {
    s += '|';
    s += ProvenanceChar(k.probe);
    s += ProvenanceChar(k.build);
    if (k.relevance) s += '*';
  }
  for (const IrNode::Agg& a : n.aggs) {
    s += '|' + a.fn + ':';
    s += ProvenanceChar(a.arg);
  }
  if (n.set_merge) s += "|set";
  if (n.sorted) s += "|sorted";
  if (n.session != 0) s += "|session=" + std::to_string(n.session);
  std::vector<std::string> srcs = n.declared_sources;
  std::sort(srcs.begin(), srcs.end());
  for (const std::string& src : srcs) s += "|src=" + src;
  std::vector<std::string> deps = n.cache_deps;
  std::sort(deps.begin(), deps.end());
  for (const std::string& dep : deps) s += "|deps=" + dep;
  if (n.has_bound) s += "|bound=" + std::to_string(n.notice_bound_micros);
  if (n.generated) s += "|gen";
  for (const IrColumn& c : n.columns) {
    s += '|' + c.name + ':';
    s += ProvenanceChar(c.provenance);
  }
  return s;
}

PlanIr NormalizeIr(const PlanIr& ir) {
  std::vector<size_t> unused;
  return NormalizeIr(ir, &unused);
}

PlanIr NormalizeIr(const PlanIr& ir, std::vector<size_t>* original_id) {
  original_id->resize(ir.nodes.size());
  for (size_t i = 0; i < ir.nodes.size(); ++i) (*original_id)[i] = i;
  size_t bad = 0;
  if (!IrWellFormed(ir, &bad)) return ir;

  const size_t n = ir.nodes.size();
  std::vector<std::string> sig(n);
  for (size_t i = 0; i < n; ++i) sig[i] = IrNodeSignature(ir.nodes[i]);

  // Kahn's algorithm with a total tie-break over the ready set:
  // (signature, original id). Duplicate input edges count once per
  // occurrence so the in-degree bookkeeping stays exact.
  std::vector<size_t> indegree(n, 0);
  std::vector<std::vector<size_t>> consumers(n);
  for (size_t i = 0; i < n; ++i) {
    indegree[i] = ir.nodes[i].inputs.size();
    for (size_t in : ir.nodes[i].inputs) consumers[in].push_back(i);
  }
  std::vector<bool> placed(n, false);
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i] || indegree[i] != 0) continue;
      if (best == n || sig[i] < sig[best] ||
          (sig[i] == sig[best] && i < best)) {
        best = i;
      }
    }
    // Well-formedness guarantees acyclicity, so a ready node exists.
    placed[best] = true;
    order.push_back(best);
    for (size_t c : consumers[best]) --indegree[c];
  }

  std::vector<size_t> new_id(n, 0);
  for (size_t k = 0; k < n; ++k) new_id[order[k]] = k;

  PlanIr out;
  out.label = ir.label;
  out.nodes.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    IrNode node = ir.nodes[order[k]];
    node.id = k;
    for (size_t& in : node.inputs) in = new_id[in];
    // A set merge is order-insensitive by contract, so its input order
    // is non-semantic: sort it into the canonical form.
    if (node.kind == IrNodeKind::kMerge && node.set_merge) {
      std::sort(node.inputs.begin(), node.inputs.end());
    }
    std::sort(node.declared_sources.begin(), node.declared_sources.end());
    node.declared_sources.erase(
        std::unique(node.declared_sources.begin(),
                    node.declared_sources.end()),
        node.declared_sources.end());
    std::sort(node.cache_deps.begin(), node.cache_deps.end());
    node.cache_deps.erase(
        std::unique(node.cache_deps.begin(), node.cache_deps.end()),
        node.cache_deps.end());
    out.nodes.push_back(std::move(node));
    (*original_id)[k] = order[k];
  }
  return out;
}

}  // namespace trac
