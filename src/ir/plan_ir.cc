#include "ir/plan_ir.h"

#include <cstdint>

namespace trac {

namespace {

constexpr std::string_view kTempPrefix = "sys_temp_";

char ProvenanceChar(ColumnProvenance p) {
  return p == ColumnProvenance::kDataSource ? 'd' : 'r';
}

[[nodiscard]] Result<ColumnProvenance> ParseProvenance(std::string_view s) {
  if (s == "d") return ColumnProvenance::kDataSource;
  if (s == "r") return ColumnProvenance::kRegular;
  return Status::ParseError("bad provenance class '" + std::string(s) +
                            "' (want 'r' or 'd')");
}

/// Splits `s` on `sep`, keeping empty pieces (a trailing sep would be a
/// syntax error surfaced by the piece parser).
std::vector<std::string> SplitOn(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

[[nodiscard]] Result<uint64_t> ParseU64(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty number");
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::ParseError("bad number '" + std::string(s) + "'");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

std::string HexU64(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (size_t i = 0; i < 16; ++i) {
    out[15 - i] = digits[(v >> (i * 4)) & 0xF];
  }
  return out;
}

[[nodiscard]] Result<uint64_t> ParseHex64(std::string_view s) {
  if (s.empty() || s.size() > 16) {
    return Status::ParseError("bad hex number '" + std::string(s) + "'");
  }
  uint64_t v = 0;
  for (char c : s) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return Status::ParseError("bad hex number '" + std::string(s) + "'");
    }
    v = (v << 4) | digit;
  }
  return v;
}

}  // namespace

std::string_view IrNodeKindToString(IrNodeKind kind) {
  switch (kind) {
    case IrNodeKind::kScan:
      return "scan";
    case IrNodeKind::kFilter:
      return "filter";
    case IrNodeKind::kJoin:
      return "join";
    case IrNodeKind::kAggregate:
      return "agg";
    case IrNodeKind::kMerge:
      return "merge";
    case IrNodeKind::kTempWrite:
      return "tempwrite";
    case IrNodeKind::kReport:
      return "report";
  }
  return "?";
}

bool IsTempTableName(std::string_view name) {
  return name.size() > kTempPrefix.size() &&
         name.compare(0, kTempPrefix.size(), kTempPrefix) == 0;
}

IrNode& PlanIr::Add(IrNodeKind kind) {
  IrNode node;
  node.id = nodes.size();
  node.kind = kind;
  nodes.push_back(std::move(node));
  return nodes.back();
}

std::string PlanIr::Dump() const {
  std::string out = "ir " + label + "\n";
  for (const IrNode& n : nodes) {
    out += "node " + std::to_string(n.id) + " " +
           std::string(IrNodeKindToString(n.kind));
    if (!n.inputs.empty()) {
      out += " in=";
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(n.inputs[i]);
      }
    }
    if (!n.table.empty()) out += " table=" + n.table;
    if (n.kind == IrNodeKind::kScan) {
      out += " snap=" + std::to_string(n.snapshot);
      if (n.num_shards != 1) {
        out += " shard=" + std::to_string(n.shard) + "/" +
               std::to_string(n.num_shards);
      }
      if (n.preexisting_temp) out += " pre";
      if (n.has_rows) out += " rows=" + std::to_string(n.rows);
      if (n.has_age) {
        out += " age=" + std::to_string(n.age_lo) + ".." +
               std::to_string(n.age_hi);
      }
    }
    if (n.kind == IrNodeKind::kFilter) {
      if (n.sel_zero) out += " sel=zero";
      if (n.has_pred) out += " pred=" + HexU64(n.pred_fingerprint);
    }
    if (!n.keys.empty()) {
      out += " key=";
      for (size_t i = 0; i < n.keys.size(); ++i) {
        if (i != 0) out += ',';
        out += ProvenanceChar(n.keys[i].probe);
        out += '-';
        out += ProvenanceChar(n.keys[i].build);
        if (n.keys[i].relevance) out += '*';
      }
    }
    if (!n.aggs.empty()) {
      out += " fns=";
      for (size_t i = 0; i < n.aggs.size(); ++i) {
        if (i != 0) out += ',';
        out += n.aggs[i].fn;
        out += ':';
        out += ProvenanceChar(n.aggs[i].arg);
      }
    }
    if (!n.declared_sources.empty()) {
      out += " src=";
      for (size_t i = 0; i < n.declared_sources.size(); ++i) {
        if (i != 0) out += ',';
        out += n.declared_sources[i];
      }
    }
    if (!n.cache_deps.empty()) {
      out += " deps=";
      for (size_t i = 0; i < n.cache_deps.size(); ++i) {
        if (i != 0) out += ',';
        out += n.cache_deps[i];
      }
    }
    if (n.set_merge) out += " set";
    if (n.sorted) out += " sorted";
    if (n.session != 0) out += " session=" + std::to_string(n.session);
    if (n.has_bound) {
      out += " bound=" + std::to_string(n.notice_bound_micros);
    }
    if (n.generated) out += " gen";
    if (n.has_actual_rows) {
      out += " actual_rows=" + std::to_string(n.actual_rows);
    }
    if (n.has_actual_ns) out += " actual_ns=" + std::to_string(n.actual_ns);
    if (!n.columns.empty()) {
      out += " cols=";
      for (size_t i = 0; i < n.columns.size(); ++i) {
        if (i != 0) out += ',';
        out += n.columns[i].name;
        out += ':';
        out += ProvenanceChar(n.columns[i].provenance);
      }
    }
    out += "\n";
  }
  return out;
}

[[nodiscard]] Result<PlanIr> ParsePlanIr(std::string_view text) {
  PlanIr ir;
  bool saw_header = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;

    auto err = [&](const std::string& msg) {
      return Status::ParseError("plan IR line " + std::to_string(line_no) +
                                ": " + msg);
    };
    // Value-parse helpers that re-anchor the inner parser's message at
    // this line, so every malformed attribute reports uniformly as
    // "plan IR line N: bad <attr> ...".
    auto parse_u64 = [&](const char* what,
                         std::string_view s) -> Result<uint64_t> {
      Result<uint64_t> v = ParseU64(s);
      if (!v.ok()) {
        return err(std::string(what) + ": " +
                   std::string(v.status().message()));
      }
      return v;
    };
    auto parse_hex64 = [&](const char* what,
                           std::string_view s) -> Result<uint64_t> {
      Result<uint64_t> v = ParseHex64(s);
      if (!v.ok()) {
        return err(std::string(what) + ": " +
                   std::string(v.status().message()));
      }
      return v;
    };
    auto parse_prov = [&](const char* what,
                          std::string_view s) -> Result<ColumnProvenance> {
      Result<ColumnProvenance> v = ParseProvenance(s);
      if (!v.ok()) {
        return err(std::string(what) + ": " +
                   std::string(v.status().message()));
      }
      return v;
    };

    std::vector<std::string> tokens;
    {
      std::string current;
      for (char c : line) {
        if (c == ' ' || c == '\t') {
          if (!current.empty()) tokens.push_back(std::move(current));
          current.clear();
        } else {
          current += c;
        }
      }
      if (!current.empty()) tokens.push_back(std::move(current));
    }

    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "ir") {
        return err("expected header 'ir <label>'");
      }
      ir.label = tokens[1];
      saw_header = true;
      continue;
    }
    if (tokens.size() < 3 || tokens[0] != "node") {
      return err("expected 'node <id> <kind> ...'");
    }
    TRAC_ASSIGN_OR_RETURN(uint64_t id, parse_u64("node id", tokens[1]));
    if (id != ir.nodes.size()) {
      return err("node ids must be dense and ascending (got " + tokens[1] +
                 ", want " + std::to_string(ir.nodes.size()) + ")");
    }
    IrNode node;
    node.id = id;
    bool kind_ok = false;
    for (IrNodeKind k :
         {IrNodeKind::kScan, IrNodeKind::kFilter, IrNodeKind::kJoin,
          IrNodeKind::kAggregate, IrNodeKind::kMerge, IrNodeKind::kTempWrite,
          IrNodeKind::kReport}) {
      if (tokens[2] == IrNodeKindToString(k)) {
        node.kind = k;
        kind_ok = true;
        break;
      }
    }
    if (!kind_ok) return err("unknown node kind '" + tokens[2] + "'");

    for (size_t t = 3; t < tokens.size(); ++t) {
      const std::string& tok = tokens[t];
      const size_t eq = tok.find('=');
      const std::string key = eq == std::string::npos ? tok : tok.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? std::string() : tok.substr(eq + 1);
      if (key == "in") {
        for (const std::string& piece : SplitOn(value, ',')) {
          TRAC_ASSIGN_OR_RETURN(uint64_t in, parse_u64("in", piece));
          node.inputs.push_back(in);
        }
      } else if (key == "table") {
        node.table = value;
      } else if (key == "snap") {
        TRAC_ASSIGN_OR_RETURN(node.snapshot, parse_u64("snap", value));
      } else if (key == "shard") {
        const std::vector<std::string> parts = SplitOn(value, '/');
        if (parts.size() != 2) return err("want shard=<k>/<n>");
        TRAC_ASSIGN_OR_RETURN(uint64_t k, parse_u64("shard", parts[0]));
        TRAC_ASSIGN_OR_RETURN(uint64_t n, parse_u64("shard", parts[1]));
        node.shard = k;
        node.num_shards = n;
      } else if (key == "pre") {
        node.preexisting_temp = true;
      } else if (key == "rows") {
        TRAC_ASSIGN_OR_RETURN(node.rows, parse_u64("rows", value));
        node.has_rows = true;
      } else if (key == "age") {
        const size_t dots = value.find("..");
        if (dots == std::string::npos) return err("want age=<lo>..<hi>");
        TRAC_ASSIGN_OR_RETURN(uint64_t lo,
                              parse_u64("age", value.substr(0, dots)));
        TRAC_ASSIGN_OR_RETURN(uint64_t hi,
                              parse_u64("age", value.substr(dots + 2)));
        if (lo > hi) return err("age interval has lo > hi");
        node.age_lo = static_cast<int64_t>(lo);
        node.age_hi = static_cast<int64_t>(hi);
        node.has_age = true;
      } else if (key == "sel") {
        if (value != "zero") return err("want sel=zero");
        node.sel_zero = true;
      } else if (key == "pred") {
        TRAC_ASSIGN_OR_RETURN(node.pred_fingerprint,
                              parse_hex64("pred", value));
        node.has_pred = true;
      } else if (key == "src") {
        for (std::string& piece : SplitOn(value, ',')) {
          if (piece.empty()) return err("want src=<table>,...");
          node.declared_sources.push_back(std::move(piece));
        }
      } else if (key == "deps") {
        for (std::string& piece : SplitOn(value, ',')) {
          if (piece.empty()) return err("want deps=<structure>,...");
          node.cache_deps.push_back(std::move(piece));
        }
      } else if (key == "bound") {
        TRAC_ASSIGN_OR_RETURN(uint64_t bound, parse_u64("bound", value));
        node.notice_bound_micros = static_cast<int64_t>(bound);
        node.has_bound = true;
      } else if (key == "key") {
        for (std::string piece : SplitOn(value, ',')) {
          IrNode::JoinKey jk;
          if (!piece.empty() && piece.back() == '*') {
            jk.relevance = true;
            piece.pop_back();
          }
          const std::vector<std::string> sides = SplitOn(piece, '-');
          if (sides.size() != 2) return err("want key=<p>-<b>[*],...");
          TRAC_ASSIGN_OR_RETURN(jk.probe, parse_prov("key", sides[0]));
          TRAC_ASSIGN_OR_RETURN(jk.build, parse_prov("key", sides[1]));
          node.keys.push_back(jk);
        }
      } else if (key == "fns") {
        for (const std::string& piece : SplitOn(value, ',')) {
          const std::vector<std::string> parts = SplitOn(piece, ':');
          if (parts.size() != 2) return err("want fns=<fn>:<p>,...");
          IrNode::Agg agg;
          agg.fn = parts[0];
          TRAC_ASSIGN_OR_RETURN(agg.arg, parse_prov("fns", parts[1]));
          node.aggs.push_back(std::move(agg));
        }
      } else if (key == "set") {
        node.set_merge = true;
      } else if (key == "sorted") {
        node.sorted = true;
      } else if (key == "session") {
        TRAC_ASSIGN_OR_RETURN(node.session, parse_u64("session", value));
      } else if (key == "gen") {
        node.generated = true;
      } else if (key == "actual_rows") {
        TRAC_ASSIGN_OR_RETURN(node.actual_rows,
                              parse_u64("actual_rows", value));
        node.has_actual_rows = true;
      } else if (key == "actual_ns") {
        TRAC_ASSIGN_OR_RETURN(uint64_t ns, parse_u64("actual_ns", value));
        node.actual_ns = static_cast<int64_t>(ns);
        node.has_actual_ns = true;
      } else if (key == "cols") {
        for (const std::string& piece : SplitOn(value, ',')) {
          const size_t colon = piece.rfind(':');
          if (colon == std::string::npos) return err("want cols=<name>:<p>,...");
          IrColumn col;
          col.name = piece.substr(0, colon);
          TRAC_ASSIGN_OR_RETURN(col.provenance,
                                parse_prov("cols", piece.substr(colon + 1)));
          node.columns.push_back(std::move(col));
        }
      } else {
        return err("unknown attribute '" + key + "'");
      }
    }
    ir.nodes.push_back(std::move(node));
  }
  if (!saw_header) return Status::ParseError("plan IR: missing 'ir <label>' header");
  return ir;
}

}  // namespace trac
