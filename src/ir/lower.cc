#include "ir/lower.h"

#include <algorithm>

#include "common/str_util.h"
#include "ir/fingerprint.h"

namespace trac {

namespace {

std::string AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kNone:
      return "none";
    case AggFn::kCountStar:
      return "count*";
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kAvg:
      return "avg";
  }
  return "?";
}

/// Provenance of column `col` of the relation backing `table_id`:
/// declared data-source columns, plus the Heartbeat table's source-id
/// column (the source registry's key carries source identity too).
/// The source registry's key: the Heartbeat table's source-id column.
bool IsRegistryColumn(const Database& db, TableId table_id, size_t col,
                      const LowerOptions& options) {
  const TableSchema& schema = db.catalog().schema(table_id);
  return !options.heartbeat_table.empty() &&
         EqualsIgnoreCaseAscii(schema.name(), options.heartbeat_table) &&
         EqualsIgnoreCaseAscii(schema.column(col).name, "source_id");
}

ColumnProvenance ProvenanceOf(const Database& db, TableId table_id, size_t col,
                              const LowerOptions& options) {
  const TableSchema& schema = db.catalog().schema(table_id);
  if (schema.IsDataSourceColumn(col)) return ColumnProvenance::kDataSource;
  if (IsRegistryColumn(db, table_id, col, options)) {
    return ColumnProvenance::kDataSource;
  }
  return ColumnProvenance::kRegular;
}

/// The Heartbeat registry's visible recency range at one snapshot: the
/// catalog-declared source ages every monitored read inherits. Computed
/// once per lowering (a single registry scan) and stamped onto scans as
/// the `age=` annotation seeding the staleness interval domain.
struct AgeRange {
  bool known = false;
  int64_t lo = 0;
  int64_t hi = 0;
};

AgeRange HeartbeatAgeRange(const Database& db, Snapshot snapshot,
                           const LowerOptions& options) {
  AgeRange r;
  if (options.heartbeat_table.empty()) return r;
  Result<TableId> id = db.catalog().GetTableId(options.heartbeat_table);
  if (!id.ok()) return r;
  const TableSchema& schema = db.catalog().schema(*id);
  size_t recency_col = schema.num_columns();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (EqualsIgnoreCaseAscii(schema.column(c).name, "recency_timestamp")) {
      recency_col = c;
      break;
    }
  }
  if (recency_col == schema.num_columns()) return r;
  const Table* table = db.GetTable(*id);
  if (table == nullptr) return r;
  table->Scan(snapshot, [&](size_t, const Row& row) {
    const Value& v = row[recency_col];
    if (v.is_null() || v.type() != TypeId::kTimestamp) return;
    const int64_t us = v.ts_val().micros();
    if (!r.known) {
      r.known = true;
      r.lo = r.hi = us;
      return;
    }
    r.lo = std::min(r.lo, us);
    r.hi = std::max(r.hi, us);
  });
  return r;
}

/// True when a scan of `table_id` inherits the registry's age range:
/// the registry itself, or any relation with a declared data-source
/// column (its tuples are attributed to registered sources).
bool ScanCarriesAge(const Database& db, TableId table_id,
                    const LowerOptions& options) {
  const TableSchema& schema = db.catalog().schema(table_id);
  if (!options.heartbeat_table.empty() &&
      EqualsIgnoreCaseAscii(schema.name(), options.heartbeat_table)) {
    return true;
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.IsDataSourceColumn(c)) return true;
  }
  return false;
}

void AnnotateScan(IrNode* scan, const Database& db, TableId table_id,
                  const AgeRange& age, const LowerOptions& options) {
  if (const Table* table = db.GetTable(table_id); table != nullptr) {
    scan->has_rows = true;
    scan->rows = table->num_versions();
  }
  if (age.known && ScanCarriesAge(db, table_id, options)) {
    scan->has_age = true;
    scan->age_lo = age.lo;
    scan->age_hi = age.hi;
  }
}

/// FNV-1a 64 over the canonical SQL renderings of a predicate
/// conjunction, sorted, deduplicated, and joined with " AND " so that
/// neither conjunct order nor a literally repeated conjunct changes the
/// identity (TRAC-V007 and the TRAC-V009 equivalence residue compare
/// these fingerprints; p AND p ≡ p, so dropping the duplicate must not
/// change the filter's identity either).
uint64_t PredFingerprint(const Database& db, const BoundQuery& query,
                         const std::vector<const BoundExpr*>& preds) {
  std::vector<std::string> terms;
  terms.reserve(preds.size());
  for (const BoundExpr* p : preds) {
    if (p != nullptr) terms.push_back(query.ExprToSql(db, *p));
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  std::string joined;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i != 0) joined += " AND ";
    joined += terms[i];
  }
  return Fnv1a64(joined);
}

void AnnotateFilter(IrNode* filter, const Database& db,
                    const BoundQuery& query,
                    const std::vector<const BoundExpr*>& preds) {
  if (preds.empty()) return;
  filter->has_pred = true;
  filter->pred_fingerprint = PredFingerprint(db, query, preds);
}

/// The declared data-source universe of a relevant-source temp: the
/// registry plus every relation with a data-source column (including
/// earlier session temps, whose source columns are re-consumed), sorted.
/// TRAC-V008 checks the temp write's inferred provenance against it.
std::vector<std::string> DeclaredSourceUniverse(const Database& db,
                                                const LowerOptions& options) {
  std::vector<std::string> out;
  for (const std::string& name : db.catalog().TableNames()) {
    Result<TableId> id = db.catalog().GetTableId(name);
    if (!id.ok()) continue;
    if (ScanCarriesAge(db, *id, options)) {
      out.push_back(db.catalog().schema(*id).name());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Lowers one planned query into `ir` and returns the root node id.
/// `generated` marks every emitted node as recency machinery.
size_t LowerQueryInto(PlanIr* ir, const Database& db, const BoundQuery& query,
                      const QueryPlan& plan, Snapshot snapshot,
                      const LowerOptions& options, bool generated,
                      const AgeRange& age) {
  size_t top = 0;
  std::vector<IrColumn> top_cols;
  for (size_t i = 0; i < plan.levels.size(); ++i) {
    const LevelPlan& level = plan.levels[i];
    const BoundTableRef& rel = query.relations[level.relation];
    const TableSchema& schema = db.catalog().schema(rel.table_id);

    IrNode& scan = ir->Add(IrNodeKind::kScan);
    scan.generated = generated;
    scan.table = schema.name();
    scan.snapshot = snapshot.version;
    if (IsTempTableName(schema.name())) {
      // The table resolved at bind time, so its definition predates this
      // plan; in-session defs are modeled by LowerReportSession instead.
      scan.preexisting_temp = true;
    }
    AnnotateScan(&scan, db, rel.table_id, age, options);
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      scan.columns.push_back(
          IrColumn{rel.display_name + "." + schema.column(c).name,
                   ProvenanceOf(db, rel.table_id, c, options)});
    }
    size_t level_top = scan.id;
    std::vector<IrColumn> level_cols = scan.columns;

    if (level.use_local_index || !level.local_preds.empty()) {
      IrNode& filter = ir->Add(IrNodeKind::kFilter);
      filter.generated = generated;
      filter.inputs.push_back(level_top);
      filter.columns = level_cols;
      AnnotateFilter(&filter, db, query, level.local_preds);
      level_top = filter.id;
    }

    if (i == 0) {
      top = level_top;
      top_cols = std::move(level_cols);
      continue;
    }
    IrNode& join = ir->Add(IrNodeKind::kJoin);
    join.generated = generated;
    join.inputs = {top, level_top};
    for (const LevelPlan::EquiKey& key : level.equi_keys) {
      IrNode::JoinKey jk;
      jk.probe = ProvenanceOf(db, query.relations[key.probe.rel].table_id,
                              key.probe.col, options);
      jk.build = ProvenanceOf(db, query.relations[key.build.rel].table_id,
                              key.build.col, options);
      jk.relevance =
          IsRegistryColumn(db, query.relations[key.probe.rel].table_id,
                           key.probe.col, options) ||
          IsRegistryColumn(db, query.relations[key.build.rel].table_id,
                           key.build.col, options);
      join.keys.push_back(jk);
    }
    top_cols.insert(top_cols.end(), level_cols.begin(), level_cols.end());
    join.columns = top_cols;
    top = join.id;
    if (!level.level_preds.empty()) {
      IrNode& filter = ir->Add(IrNodeKind::kFilter);
      filter.generated = generated;
      filter.inputs.push_back(top);
      filter.columns = top_cols;
      AnnotateFilter(&filter, db, query, level.level_preds);
      top = filter.id;
    }
  }

  if (!plan.constant_preds.empty() || plan.provably_empty) {
    IrNode& filter = ir->Add(IrNodeKind::kFilter);
    filter.generated = generated;
    if (!ir->nodes.empty() && !plan.levels.empty()) {
      filter.inputs.push_back(top);
    }
    filter.columns = top_cols;
    // The guarantee analyzer refuted the predicate over the declared
    // domains (TRAC-E001): selectivity is statically zero, which is
    // what seeds the dead-subplan propagation (TRAC-V006).
    filter.sel_zero = plan.provably_empty;
    AnnotateFilter(&filter, db, query, plan.constant_preds);
    top = filter.id;
  }

  if (query.count_star || !query.aggregates.empty()) {
    IrNode& agg = ir->Add(IrNodeKind::kAggregate);
    agg.generated = generated;
    agg.inputs.push_back(top);
    if (query.count_star) {
      agg.aggs.push_back(IrNode::Agg{"count*", ColumnProvenance::kRegular});
      agg.columns.push_back(IrColumn{"count", ColumnProvenance::kRegular});
    }
    for (const BoundQuery::Aggregate& a : query.aggregates) {
      ColumnProvenance arg = ColumnProvenance::kRegular;
      if (a.fn != AggFn::kCountStar) {
        arg = ProvenanceOf(db, query.relations[a.arg.rel].table_id, a.arg.col,
                           options);
      }
      agg.aggs.push_back(IrNode::Agg{AggFnName(a.fn), arg});
      agg.columns.push_back(IrColumn{a.name, ColumnProvenance::kRegular});
    }
    top = agg.id;
  }
  return top;
}

/// Lowers every recency part of `input` plus their deterministic rejoin
/// into `ir` and returns the merge's node id. Shared by the session
/// lowering and by LowerRelevancePlan, so the cacheable relevance
/// subgraph is *by construction* the same shape the session executes.
size_t LowerPartsAndMergeInto(PlanIr* ir, const Database& db,
                              const ReportSessionInput& input,
                              const LowerOptions& options,
                              const AgeRange& age,
                              SessionLayout* layout = nullptr) {
  // Every recency part: sharded heartbeat scans, or the part's plan
  // subgraph, gated by its guard subgraphs.
  std::vector<size_t> part_tops;
  std::vector<IrColumn> source_cols;
  for (const SessionPartInput& part : input.parts) {
    const BoundQuery& q = *part.query;
    SessionLayout::Part layout_part;
    if (source_cols.empty()) {
      for (const BoundQuery::OutputColumn& out : q.outputs) {
        source_cols.push_back(IrColumn{
            out.name, ProvenanceOf(db, q.relations[out.ref.rel].table_id,
                                   out.ref.col, options)});
      }
    }
    if (part.shards > 1) {
      // Pure heartbeat scan fanned out into version-range shards; the
      // shards rejoin only through the session merge below.
      const TableSchema& schema =
          db.catalog().schema(q.relations[0].table_id);
      for (size_t s = 0; s < part.shards; ++s) {
        IrNode& scan = ir->Add(IrNodeKind::kScan);
        scan.generated = true;
        scan.table = schema.name();
        scan.snapshot = input.snapshot.version;
        scan.shard = s;
        scan.num_shards = part.shards;
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          scan.columns.push_back(
              IrColumn{q.relations[0].display_name + "." +
                           schema.column(c).name,
                       ProvenanceOf(db, q.relations[0].table_id, c, options)});
        }
        AnnotateScan(&scan, db, q.relations[0].table_id, age, options);
        part_tops.push_back(scan.id);
        layout_part.shard_scan_ids.push_back(scan.id);
      }
      layout_part.sharded = true;
      if (layout != nullptr) layout->parts.push_back(std::move(layout_part));
      continue;
    }
    // EXISTS guards execute before the part's main query, so they lower
    // first (IR node order is execution order).
    std::vector<size_t> guard_tops;
    for (size_t g = 0; g < part.guard_queries.size(); ++g) {
      SessionLayout::QueryRange range;
      range.begin = ir->nodes.size();
      guard_tops.push_back(LowerQueryInto(
          ir, db, *part.guard_queries[g], *part.guard_plans[g],
          input.snapshot, options, /*generated=*/true, age));
      range.end = ir->nodes.size();
      range.top = guard_tops.back();
      layout_part.guards.push_back(range);
    }
    layout_part.main.begin = ir->nodes.size();
    size_t part_top = LowerQueryInto(ir, db, q, *part.plan, input.snapshot,
                                     options, /*generated=*/true, age);
    layout_part.main.end = ir->nodes.size();
    layout_part.main.top = part_top;
    if (!guard_tops.empty()) {
      // The part's rows flow only if every guard is non-empty, modeled
      // as a gating filter fed by the part and the guard roots.
      const std::vector<IrColumn> cols = ir->nodes[part_top].columns;
      IrNode& gate = ir->Add(IrNodeKind::kFilter);
      gate.generated = true;
      gate.inputs.push_back(part_top);
      for (size_t g : guard_tops) gate.inputs.push_back(g);
      gate.columns = cols;
      part_top = gate.id;
      layout_part.has_gate = true;
      layout_part.gate_id = gate.id;
    }
    part_tops.push_back(part_top);
    if (layout != nullptr) layout->parts.push_back(std::move(layout_part));
  }

  // The deterministic rejoin: an order-insensitive set merge keyed on
  // the source id, with sorted output (the union of Corollaries 1/4).
  IrNode& merge = ir->Add(IrNodeKind::kMerge);
  merge.generated = true;
  merge.inputs = part_tops;
  merge.set_merge = true;
  merge.sorted = true;
  if (source_cols.empty()) {
    // No parts (S(Q) = ∅): the merge of nothing still carries the
    // source-anchored shape the temp writes and report consume.
    source_cols.push_back(IrColumn{"source_id", ColumnProvenance::kDataSource});
    source_cols.push_back(
        IrColumn{"recency_timestamp", ColumnProvenance::kRegular});
  }
  merge.columns = source_cols;
  if (layout != nullptr) layout->merge_id = merge.id;
  return merge.id;
}

}  // namespace

PlanIr LowerQueryPlan(const Database& db, const BoundQuery& query,
                      const QueryPlan& plan, Snapshot snapshot,
                      const LowerOptions& options) {
  PlanIr ir;
  ir.label = "query";
  const AgeRange age = HeartbeatAgeRange(db, snapshot, options);
  LowerQueryInto(&ir, db, query, plan, snapshot, options, /*generated=*/false,
                 age);
  return ir;
}

PlanIr LowerReportSession(const Database& db, const ReportSessionInput& input,
                          const LowerOptions& options, SessionLayout* layout) {
  PlanIr ir;
  ir.label = "report_session";
  const AgeRange age = HeartbeatAgeRange(db, input.snapshot, options);

  // 1. The user query (not generated machinery).
  const size_t user_top =
      LowerQueryInto(&ir, db, *input.user_query, *input.user_plan,
                     input.snapshot, options, /*generated=*/false, age);
  if (layout != nullptr) {
    layout->user.begin = 0;
    layout->user.end = ir.nodes.size();
    layout->user.top = user_top;
  }

  // 2+3. Every recency part and their deterministic set-merge rejoin.
  const size_t merge_id =
      LowerPartsAndMergeInto(&ir, db, input, options, age, layout);

  // 4. Temp-table writes (sys_temp_a*/sys_temp_e*).
  const std::vector<std::string> declared = DeclaredSourceUniverse(db, options);
  std::vector<size_t> report_inputs = {user_top};
  for (const std::string& name : input.temp_writes) {
    IrNode& write = ir.Add(IrNodeKind::kTempWrite);
    write.generated = true;
    write.inputs.push_back(merge_id);
    write.table = name;
    write.session = input.session;
    write.columns = ir.nodes[merge_id].columns;
    write.declared_sources = declared;
    report_inputs.push_back(write.id);
    if (layout != nullptr) layout->tempwrite_ids.push_back(write.id);
  }
  if (input.temp_writes.empty()) report_inputs.push_back(merge_id);

  // 5. The report consumes the user result and the relevant sources.
  IrNode& report = ir.Add(IrNodeKind::kReport);
  report.generated = true;
  report.inputs = std::move(report_inputs);
  if (age.known) {
    // The NOTICE promise: the bound of inconsistency cannot exceed the
    // registry's full recency spread at this snapshot. The static
    // staleness hull reaching this node must fit inside it (TRAC-V005).
    report.has_bound = true;
    report.notice_bound_micros = age.hi - age.lo;
  }
  if (layout != nullptr) layout->report_id = report.id;
  return ir;
}

PlanIr LowerRelevancePlan(const Database& db, const ReportSessionInput& input,
                          const LowerOptions& options) {
  PlanIr ir;
  ir.label = "relevance";
  const AgeRange age = HeartbeatAgeRange(db, input.snapshot, options);
  LowerPartsAndMergeInto(&ir, db, input, options, age);
  return ir;
}

}  // namespace trac
