#ifndef TRAC_IR_PLAN_IR_H_
#define TRAC_IR_PLAN_IR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace trac {

/// A small dataflow IR every execution plan is lowered into before it
/// runs (ir/lower.h) and that the static verifier checks (verify/
/// verifier.h). The IR models *what the engine is about to do* — which
/// snapshot each scan reads, how sharded scans rejoin, where temp tables
/// are defined and consumed, and how column provenance flows — so the
/// consistency contract of the reporting layer (user query and recency
/// queries on one snapshot, Section 3.2) becomes a checkable artifact
/// instead of a comment.
///
/// Shape: a DAG of nodes; `IrNode::inputs` are the incoming edges. Each
/// node's annotations describe its *outgoing* edge payload: `columns`
/// is the column set (with provenance) the node produces, and a scan's
/// `snapshot`/`shard` describe the read it feeds downstream. Node order
/// is execution order: the engine runs node k before node k+1, which is
/// what makes "def before use" a meaningful check on a DAG.
enum class IrNodeKind {
  kScan = 0,   ///< Base-table or temp-table read at one snapshot epoch.
  kFilter,     ///< Predicate application (constant/local/level preds).
  kJoin,       ///< One join level (hash / index-nested-loop / nested).
  kAggregate,  ///< Aggregate fold (COUNT/SUM/AVG/MIN/MAX).
  kMerge,      ///< Rejoin of parallel strands (parts or scan shards).
  kTempWrite,  ///< Materialization into a session temp table.
  kReport,     ///< The recency report consuming user result + sources.
};

std::string_view IrNodeKindToString(IrNodeKind kind);

/// Provenance class of one column (the paper's Definition 2 boundary):
/// data-source columns identify the source that produced a tuple and
/// are the only columns relevance may flow through; everything else is
/// a regular column.
enum class ColumnProvenance { kRegular = 0, kDataSource = 1 };

/// One column of a node's outgoing edge.
struct IrColumn {
  std::string name;
  ColumnProvenance provenance = ColumnProvenance::kRegular;
};

struct IrNode {
  size_t id = 0;
  IrNodeKind kind = IrNodeKind::kScan;
  /// Ids of the nodes whose output this node consumes.
  std::vector<size_t> inputs;
  /// Outgoing-edge column set (name + provenance).
  std::vector<IrColumn> columns;

  // -- kScan / kTempWrite: the table read or written.
  std::string table;
  // -- kScan: snapshot epoch the read is pinned to.
  uint64_t snapshot = 0;
  // -- kScan: version-range shard `shard` of `num_shards` (1 = whole).
  size_t shard = 0;
  size_t num_shards = 1;
  /// kScan of a temp table whose definition predates this plan (the
  /// table already existed when the plan was lowered); exempt from the
  /// in-plan def-before-use rule.
  bool preexisting_temp = false;
  /// kScan: published row-version count of the table at lowering time —
  /// an upper bound on the rows any snapshot read can see (MVCC versions
  /// only grow). Absent (`has_rows` false) = unknown cardinality.
  bool has_rows = false;
  uint64_t rows = 0;
  /// kScan: catalog-declared source-age interval of the data this scan
  /// can produce, in recency-timestamp microseconds [age_lo, age_hi]
  /// (from the Heartbeat registry at lowering time). Absent = unknown;
  /// the staleness domain treats it as bottom.
  bool has_age = false;
  int64_t age_lo = 0;
  int64_t age_hi = 0;

  // -- kFilter: static selectivity/identity annotations.
  /// The predicate was statically proven unsatisfiable (TRAC-E001):
  /// selectivity is exactly zero and the subplan below is dead.
  bool sel_zero = false;
  /// 64-bit fingerprint of the filter's rendered predicate conjunction
  /// (FNV-1a over the sorted canonical SQL terms); 0 + `has_pred` false
  /// = no predicate annotation. Equal fingerprints on one dataflow path
  /// mean the same predicate is applied twice (TRAC-V007).
  bool has_pred = false;
  uint64_t pred_fingerprint = 0;

  // -- kJoin: provenance classes of each equi-key pair.
  struct JoinKey {
    ColumnProvenance probe = ColumnProvenance::kRegular;
    ColumnProvenance build = ColumnProvenance::kRegular;
    /// Descriptive: one side is the source registry's key (the Heartbeat
    /// source-id column), i.e. the edge relevance flows through. The
    /// other side may legally be a regular column — equality with the
    /// registry key confers source identity (the generator substitutes
    /// H.c_s into J_s terms, Notation 7) — so no per-edge provenance
    /// rule applies; the verifier instead checks that source identity
    /// survives to every merge input (TRAC-V004).
    bool relevance = false;
  };
  std::vector<JoinKey> keys;

  // -- kAggregate: one entry per aggregate output.
  struct Agg {
    std::string fn;  ///< "count", "sum", "avg", "min", "max", "count*".
    ColumnProvenance arg = ColumnProvenance::kRegular;
  };
  std::vector<Agg> aggs;

  // -- kMerge: determinism contract of the rejoin.
  /// Order-insensitive set merge (dedup keyed on the merged columns):
  /// any arrival order yields the same result.
  bool set_merge = false;
  /// The merge explicitly sorts its output.
  bool sorted = false;

  // -- kScan (temp) / kTempWrite: owning session id; 0 = no session.
  uint64_t session = 0;

  /// kTempWrite: the declared data-source universe of a relevant-source
  /// temp (the monitored tables plus the Heartbeat registry, sorted).
  /// The abstract interpreter checks the write's inferred column
  /// provenance against this set (TRAC-V008); empty = undeclared.
  std::vector<std::string> declared_sources;

  /// Declared cache-dependency footprint of this node: the tables,
  /// indexes ("index:<table>.<column>") and registry structures whose
  /// state the node's output depends on, as asserted by the producer of
  /// the plan. The cache-admissibility pass checks the assertion against
  /// the footprint the dependency domain extracts (TRAC-V014): a touched
  /// structure missing from a non-empty declaration makes the plan
  /// inadmissible. Empty = undeclared (extraction alone governs).
  std::vector<std::string> cache_deps;

  /// kReport: the bound-of-inconsistency width (microseconds) the
  /// guarantee NOTICE promises. The static staleness interval reaching
  /// the report must fit inside it (TRAC-V005); absent = no promise.
  bool has_bound = false;
  int64_t notice_bound_micros = 0;

  /// Node belongs to machine-generated recency machinery (a generated
  /// recency part, its merge, temp writes, the report node) rather than
  /// to the user's own query.
  bool generated = false;

  /// Runtime profile annotations (telemetry/profile.h): rows this node
  /// actually produced and busy time actually attributed to it, written
  /// back onto the session IR after execution. Absent on nodes that did
  /// not execute (cache-served parts, guard-suppressed parts) — the
  /// drift pass (TRAC-P001/P002) only judges annotated nodes.
  bool has_actual_rows = false;
  uint64_t actual_rows = 0;
  bool has_actual_ns = false;
  int64_t actual_ns = 0;
};

/// True for session temp-table names (sys_temp_a*/sys_temp_e*).
bool IsTempTableName(std::string_view name);

struct PlanIr {
  /// What the IR models, e.g. "query" or "report_session".
  std::string label;
  /// Nodes in execution order; IrNode::id == index.
  std::vector<IrNode> nodes;

  /// Appends a node of `kind` and returns it (id assigned).
  IrNode& Add(IrNodeKind kind);

  /// Stable one-line-per-node text form; ParsePlanIr is its inverse
  /// (byte-exact round trip), so dumps double as corpus files.
  std::string Dump() const;
};

/// Parses the Dump() format (used by the seeded-bad plan corpus under
/// examples/plans/ and by trac_verify). Lines starting with '#' and
/// blank lines are skipped. Node ids must be dense and ascending.
/// Structural properties beyond syntax (acyclicity, valid input ids)
/// are the verifier's job, not the parser's.
[[nodiscard]] Result<PlanIr> ParsePlanIr(std::string_view text);

}  // namespace trac

#endif  // TRAC_IR_PLAN_IR_H_
