#ifndef TRAC_IR_NORMALIZE_H_
#define TRAC_IR_NORMALIZE_H_

#include <string>
#include <vector>

#include "ir/plan_ir.h"

namespace trac {

/// Canonicalization of the plan IR, below the verifier in the layer
/// stack so both the equivalence checker (verify/equiv.h) and the
/// cache fingerprint (ir/fingerprint.h) can consume it without a
/// dependency edge back up.

/// Dense ids and strictly-backward input edges — the property TRAC-V000
/// enforces and every canonicalization here relies on (node order is
/// execution order, so a well-formed IR is a DAG by construction). On
/// failure `*bad_node` names the first offending node.
bool IrWellFormed(const PlanIr& ir, size_t* bad_node);

/// Structural signature of one node: every semantic attribute except
/// the id and the input edge targets (the topology itself already
/// constrains those). Used as the deterministic tie-break between
/// simultaneously-ready nodes during normalization and as the
/// hash-consing key of the cache-canonical form (ir/fingerprint.h).
std::string IrNodeSignature(const IrNode& n);

/// Canonicalizes an IR without changing its meaning:
///   - nodes are re-ordered into a deterministic topological order
///     (ready nodes tie-broken by a structural signature, then original
///     id) and renumbered densely, with input edges remapped;
///   - order-insensitive (set) merge inputs are sorted;
///   - declared source universes are sorted and deduplicated.
/// Idempotent: NormalizeIr(NormalizeIr(x)) == NormalizeIr(x), and
/// Dump/ParsePlanIr round-trips are fixpoints of it (property-tested).
/// A malformed graph (non-dense ids or a non-backward input edge) is
/// returned as an unmodified copy — rejecting it is TRAC-V000's job.
PlanIr NormalizeIr(const PlanIr& ir);

/// As NormalizeIr; additionally fills `original_id` so that
/// (*original_id)[k] is the id node k of the result had in `ir`.
PlanIr NormalizeIr(const PlanIr& ir, std::vector<size_t>* original_id);

}  // namespace trac

#endif  // TRAC_IR_NORMALIZE_H_
