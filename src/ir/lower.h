#ifndef TRAC_IR_LOWER_H_
#define TRAC_IR_LOWER_H_

#include <string>
#include <string_view>
#include <vector>

#include "exec/planner.h"
#include "expr/bound_expr.h"
#include "ir/plan_ir.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace trac {

/// Lowering from physical plans into the dataflow IR (ir/plan_ir.h).
/// Lowering is pure bookkeeping — it never touches table data — and is
/// deliberately cheap enough to run on every planned query.

struct LowerOptions {
  /// Name of the Heartbeat table. A scan of this table marks its
  /// source-id column as data-source provenance even though the table
  /// itself has no declared data-source column (it *is* the source
  /// registry). Empty: only declared data-source columns are marked.
  std::string heartbeat_table;
};

/// Lowers one planned query: per level a scan (pinned to `snapshot`),
/// an optional filter, and a join connecting it to the prefix; then the
/// constant-predicate filter and the aggregate fold, if any.
PlanIr LowerQueryPlan(const Database& db, const BoundQuery& query,
                      const QueryPlan& plan, Snapshot snapshot,
                      const LowerOptions& options = LowerOptions());

/// One recency part of a report session, pre-planned by the caller.
struct SessionPartInput {
  const BoundQuery* query = nullptr;
  const QueryPlan* plan = nullptr;
  /// EXISTS guards gating the part, pre-planned like the main query.
  std::vector<const BoundQuery*> guard_queries;
  std::vector<const QueryPlan*> guard_plans;
  /// Fan-out of a pure-Heartbeat-scan part: >1 lowers to `shards`
  /// version-range scan nodes instead of the part's plan.
  size_t shards = 1;
};

/// Everything a report session executes, for session-level lowering.
struct ReportSessionInput {
  const BoundQuery* user_query = nullptr;
  const QueryPlan* user_plan = nullptr;
  std::vector<SessionPartInput> parts;
  /// Temp tables the session writes the merged sources into
  /// (sys_temp_a*/sys_temp_e*), in write order.
  std::vector<std::string> temp_writes;
  uint64_t session = 0;   ///< Owning session id; 0 = no session.
  Snapshot snapshot;      ///< The one snapshot every read is pinned to.
};

/// Node-id extents of the subgraphs a session lowering emitted. Lowering
/// is append-only, so every subgraph occupies one contiguous id range
/// [begin, end) whose last node is its dataflow root — which is what
/// lets the profiler (telemetry/profile.h) map executor-side counters
/// back onto exactly the nodes the session IR lowered for them.
struct SessionLayout {
  struct QueryRange {
    size_t begin = 0;  ///< First node id of the subgraph.
    size_t end = 0;    ///< One past the last node id.
    size_t top = 0;    ///< Root node id (== end - 1).
  };
  QueryRange user;
  struct Part {
    /// Pure-heartbeat fan-out: `shard_scan_ids` instead of plan ranges.
    bool sharded = false;
    std::vector<size_t> shard_scan_ids;
    /// Unsharded: guard subgraphs (execution order), then the main
    /// query's subgraph, then the optional gating filter.
    std::vector<QueryRange> guards;
    QueryRange main;
    bool has_gate = false;
    size_t gate_id = 0;
  };
  std::vector<Part> parts;
  size_t merge_id = 0;
  std::vector<size_t> tempwrite_ids;
  size_t report_id = 0;
};

/// Lowers a full report session: the user query subgraph, every recency
/// part (sharded scans or its plan subgraph, guards as gating filters),
/// the deterministic set merge of all parts, the temp-table writes, and
/// the final report node consuming the user result and the sources.
/// Recency-side nodes are marked `generated`. `layout`, when non-null,
/// receives the node-id extents of every subgraph emitted.
PlanIr LowerReportSession(const Database& db, const ReportSessionInput& input,
                          const LowerOptions& options = LowerOptions(),
                          SessionLayout* layout = nullptr);

/// Lowers only the cacheable unit of a report session: the recency
/// parts and their deterministic set merge (label "relevance"). The
/// user query, temp-table writes, and report node are deliberately
/// excluded — temp writes are session-local side effects no admissible
/// cached plan may contain (TRAC-V013), and the user query varies per
/// report while the relevance answer does not. Built from the same
/// part-lowering code as LowerReportSession, so the fingerprint the
/// relevance cache keys on (ir/fingerprint.h) describes exactly the
/// subgraph the session executes. `user_query`/`user_plan`/
/// `temp_writes`/`session` of `input` are ignored.
PlanIr LowerRelevancePlan(const Database& db, const ReportSessionInput& input,
                          const LowerOptions& options = LowerOptions());

}  // namespace trac

#endif  // TRAC_IR_LOWER_H_
