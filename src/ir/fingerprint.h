#ifndef TRAC_IR_FINGERPRINT_H_
#define TRAC_IR_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ir/plan_ir.h"

namespace trac {

/// 64-bit FNV-1a over `data`. The single fingerprint primitive of the
/// codebase: predicate fingerprints (ir/lower.h) and the relevance-cache
/// key (below) both go through here, and trac_lint's
/// fingerprint-confinement rule keeps the constants from leaking into
/// other layers. 64 bits matter: the classic 32-bit FNV-1a collision
/// pairs ("costarring"/"liquid") separate at this width, and the cache
/// additionally compares canonical dumps so even a 64-bit collision
/// cannot alias two plans.
uint64_t Fnv1a64(std::string_view data);

/// The cache-canonical form of a plan IR: the quotient of NormalizeIr
/// under everything the cached *result* does not depend on —
///   - volatile annotations are stripped (snapshot epoch, row-count and
///     age hints, the NOTICE bound): the cache re-validates recency via
///     its footprint, not via numbers frozen into the key;
///   - shard decomposition is collapsed (every scan becomes shard 0/1
///     and structurally identical nodes are hash-consed together, set-
///     merge inputs deduplicated), so the parallelism-1 and
///     parallelism-4 lowerings of one plan canonicalize identically —
///     sound because a set merge deduplicates and shard ranges cover
///     [0, n) disjointly;
///   - the result is re-normalized (ir/normalize.h).
/// Malformed IRs are returned unmodified, like NormalizeIr.
PlanIr CacheCanonicalIr(const PlanIr& ir);

/// Dump of the cache-canonical form: the full (collision-proof) cache
/// key. Entries store this string and compare it on lookup.
std::string IrCacheKey(const PlanIr& ir);

/// Fnv1a64(IrCacheKey(ir)) — the hash the cache buckets by and the
/// stability witness TRAC-V016 re-derives across Dump/Parse and across
/// parallelism levels.
uint64_t IrCacheFingerprint(const PlanIr& ir);

}  // namespace trac

#endif  // TRAC_IR_FINGERPRINT_H_
