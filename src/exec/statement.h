#ifndef TRAC_EXEC_STATEMENT_H_
#define TRAC_EXEC_STATEMENT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "exec/executor.h"
#include "storage/database.h"

namespace trac {

/// Outcome of ExecuteStatement.
struct StatementResult {
  enum class Kind { kSelect, kDdl, kDml };
  Kind kind = Kind::kDdl;
  /// Populated for kSelect.
  ResultSet result;
  /// Rows inserted/updated/deleted for kDml.
  int64_t rows_affected = 0;
  /// Human-readable confirmation ("CREATE TABLE", "INSERT 3", ...).
  std::string message;
};

/// Parses and executes one statement (see sql/parser.h ParseStatement
/// for the grammar). SELECT runs against the latest snapshot; DML is
/// auto-commit; CREATE TABLE honors `DATA SOURCE` column markers and
/// CHECK constraints, and INSERT/UPDATE enforce CHECK constraints.
///
/// This is the surface the example shell (examples/trac_shell.cpp) and
/// any embedding application use to drive the database with plain SQL.
[[nodiscard]] Result<StatementResult> ExecuteStatement(Database* db, std::string_view sql);

}  // namespace trac

#endif  // TRAC_EXEC_STATEMENT_H_
