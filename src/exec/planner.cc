#include "exec/planner.h"

#include <algorithm>
#include <limits>

#include "common/dcheck.h"
#include "telemetry/metrics.h"
#include "verify/verifier.h"

namespace trac {

namespace {

constexpr double kLocalPredSelectivity = 0.1;
constexpr double kIndexNestedLoopMaxPrefix = 1024.0;

/// One top-level AND unit of the WHERE clause.
struct PredUnit {
  const BoundExpr* expr;
  uint64_t rel_mask;
  bool consumed = false;
};

bool IsColumnLiteralEq(const BoundExpr& e, size_t rel,
                       const Database& db, const BoundQuery& query,
                       size_t* column, std::vector<Value>* keys) {
  (void)db;
  (void)query;
  if (e.kind == ExprKind::kCompare && e.op == CompareOp::kEq) {
    const BoundExpr* col = nullptr;
    const BoundExpr* lit = nullptr;
    if (e.children[0]->kind == ExprKind::kColumnRef &&
        e.children[1]->kind == ExprKind::kLiteral) {
      col = e.children[0].get();
      lit = e.children[1].get();
    } else if (e.children[1]->kind == ExprKind::kColumnRef &&
               e.children[0]->kind == ExprKind::kLiteral) {
      col = e.children[1].get();
      lit = e.children[0].get();
    } else {
      return false;
    }
    if (col->column.rel != rel || lit->literal.is_null()) return false;
    *column = col->column.col;
    keys->assign(1, lit->literal);
    return true;
  }
  if (e.kind == ExprKind::kInList && !e.negated &&
      e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[0]->column.rel == rel) {
    *column = e.children[0]->column.col;
    keys->clear();
    for (const Value& v : e.list) {
      if (!v.is_null()) keys->push_back(v);
    }
    std::sort(keys->begin(), keys->end());
    keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
    return !keys->empty();
  }
  return false;
}

}  // namespace

[[nodiscard]] Result<QueryPlan> PlanQuery(const Database& db, const BoundQuery& query,
                            Snapshot snapshot, const PlanningHints& hints) {
  (void)snapshot;
  QueryPlan plan;
  const size_t num_rels = query.relations.size();
  if (num_rels > 63) {
    return Status::Unsupported("queries limited to 63 relations");
  }

  // A statically proven-unsatisfiable predicate (TRAC-E001) lets the
  // executor skip every scan. Only the unsatisfiable-query finding is
  // consulted: other kEmptySet causes (e.g. no monitored relation) speak
  // about the relevant set, not about this query's result.
  if (hints.guarantee != nullptr &&
      hints.guarantee->verdict == RecencyGuarantee::kEmptySet) {
    for (const AnalysisDiagnostic& d : hints.guarantee->diagnostics) {
      if (d.code == AnalysisCode::kUnsatisfiableQuery) {
        plan.provably_empty = true;
        break;
      }
    }
  }
  // Dead-subplan short-circuit from the abstract interpreter: a
  // provably-empty static cardinality interval (computed at this same
  // snapshot — see the PlanningHints contract) means no scan can
  // contribute a row, so execution can skip storage entirely.
  if (hints.static_card != nullptr && hints.static_card->DefinitelyEmpty()) {
    plan.provably_empty = true;
  }

  // Split the WHERE clause into top-level AND units.
  std::vector<PredUnit> units;
  if (query.where != nullptr) {
    if (query.where->kind == ExprKind::kAnd) {
      for (const auto& c : query.where->children) {
        units.push_back(PredUnit{c.get(), c->ReferencedRelations()});
      }
    } else {
      units.push_back(
          PredUnit{query.where.get(), query.where->ReferencedRelations()});
    }
  }
  for (PredUnit& u : units) {
    if (u.rel_mask == 0) {
      plan.constant_preds.push_back(u.expr);
      u.consumed = true;
    }
  }

  // Per-relation access-path candidates and cardinality estimates.
  struct RelInfo {
    double base_rows = 0;
    double est_rows = 0;
    bool has_local_pred = false;
    bool use_index = false;
    size_t index_column = 0;
    std::vector<Value> index_keys;
  };
  std::vector<RelInfo> info(num_rels);
  for (size_t r = 0; r < num_rels; ++r) {
    const Table* table = db.GetTable(query.relations[r].table_id);
    info[r].base_rows = static_cast<double>(table->num_versions());
    info[r].est_rows = info[r].base_rows;
    for (const PredUnit& u : units) {
      if (u.consumed || u.rel_mask != (uint64_t{1} << r)) continue;
      info[r].has_local_pred = true;
      size_t column;
      std::vector<Value> keys;
      if (!IsColumnLiteralEq(*u.expr, r, db, query, &column, &keys)) continue;
      const OrderedIndex* index = table->GetIndex(column);
      if (index == nullptr) continue;
      double est = 0;
      for (const Value& k : keys) {
        est += static_cast<double>(index->CountEqual(k));
      }
      if (!info[r].use_index || est < info[r].est_rows) {
        info[r].use_index = true;
        info[r].index_column = column;
        info[r].index_keys = keys;
        info[r].est_rows = est;
      }
    }
    if (!info[r].use_index && info[r].has_local_pred) {
      info[r].est_rows =
          std::max(1.0, info[r].base_rows * kLocalPredSelectivity);
    }
  }

  // Greedy join ordering.
  uint64_t bound_mask = 0;
  std::vector<bool> placed(num_rels, false);
  double prefix_est = 1.0;

  auto connected = [&](size_t r) {
    if (bound_mask == 0) return false;
    for (const PredUnit& u : units) {
      if (u.consumed) continue;
      if (u.expr->kind != ExprKind::kCompare ||
          u.expr->op != CompareOp::kEq) {
        continue;
      }
      const BoundExpr& l = *u.expr->children[0];
      const BoundExpr& rr = *u.expr->children[1];
      if (l.kind != ExprKind::kColumnRef || rr.kind != ExprKind::kColumnRef) {
        continue;
      }
      uint64_t mask = u.rel_mask;
      uint64_t rbit = uint64_t{1} << r;
      if ((mask & rbit) != 0 && (mask & bound_mask) != 0 &&
          (mask & ~(bound_mask | rbit)) == 0) {
        return true;
      }
    }
    return false;
  };

  for (size_t step = 0; step < num_rels; ++step) {
    // Pick the next relation: connected ones first, then by estimate.
    size_t best = num_rels;
    bool best_connected = false;
    for (size_t r = 0; r < num_rels; ++r) {
      if (placed[r]) continue;
      bool conn = connected(r);
      if (best == num_rels || (conn && !best_connected) ||
          (conn == best_connected && info[r].est_rows < info[best].est_rows)) {
        best = r;
        best_connected = conn;
      }
    }
    const size_t r = best;
    placed[r] = true;
    const uint64_t rbit = uint64_t{1} << r;

    LevelPlan level;
    level.relation = r;
    level.use_local_index = info[r].use_index;
    level.index_column = info[r].index_column;
    level.index_keys = info[r].index_keys;
    level.estimated_rows = info[r].est_rows;

    // Consume predicates that become checkable at this level.
    for (PredUnit& u : units) {
      if (u.consumed || (u.rel_mask & ~(bound_mask | rbit)) != 0) continue;
      if ((u.rel_mask & rbit) == 0) continue;  // Already checkable earlier.
      u.consumed = true;
      if (u.rel_mask == rbit) {
        level.local_preds.push_back(u.expr);
        continue;
      }
      // Spans the prefix and this relation: equi key or level predicate.
      const BoundExpr& e = *u.expr;
      if (e.kind == ExprKind::kCompare && e.op == CompareOp::kEq &&
          e.children[0]->kind == ExprKind::kColumnRef &&
          e.children[1]->kind == ExprKind::kColumnRef) {
        const BoundColumnRef& a = e.children[0]->column;
        const BoundColumnRef& b = e.children[1]->column;
        if (a.rel == r && b.rel != r) {
          level.equi_keys.push_back(LevelPlan::EquiKey{b, a});
          continue;
        }
        if (b.rel == r && a.rel != r) {
          level.equi_keys.push_back(LevelPlan::EquiKey{a, b});
          continue;
        }
      }
      level.level_preds.push_back(u.expr);
    }

    // Index nested loop: worthwhile when the prefix is small and the
    // build column is indexed (and a local index path would not already
    // be cheaper than per-probe lookups).
    if (!level.equi_keys.empty() && bound_mask != 0) {
      const Table* table = db.GetTable(query.relations[r].table_id);
      const OrderedIndex* index =
          table->GetIndex(level.equi_keys[0].build.col);
      if (index != nullptr && prefix_est <= kIndexNestedLoopMaxPrefix &&
          (!level.use_local_index || info[r].est_rows > prefix_est)) {
        level.index_nested_loop = true;
      }
    }

    prefix_est *= std::max(1.0, level.estimated_rows);
    bound_mask |= rbit;
    plan.levels.push_back(std::move(level));
  }

  // Every unit must be consumed by now (masks are subsets of all bound).
  for (const PredUnit& u : units) {
    if (!u.consumed) {
      return Status::Internal("planner failed to place a predicate");
    }
  }

  // Gate the finished plan behind the static verifier: a plan that
  // fails a TRAC-V rule is a planner bug and must not reach execution.
  // Hard error with invariants armed; Status otherwise.
  const Status verified = VerifyPlan(db, query, plan, snapshot);
  // Outcome counters resolved once: metric lookup stays off the per-plan
  // path after the first call.
  static Counter* verify_ok = MetricRegistry::Default().GetCounter(
      "trac_plan_verify_total", "Plan-IR verifier outcomes at plan time",
      {{"outcome", "ok"}});
  static Counter* verify_reject = MetricRegistry::Default().GetCounter(
      "trac_plan_verify_total", "Plan-IR verifier outcomes at plan time",
      {{"outcome", "reject"}});
  (verified.ok() ? verify_ok : verify_reject)->Increment();
  TRAC_DCHECK(verified.ok(), verified.message().c_str());
  if (!verified.ok()) return verified;
  return plan;
}

std::string QueryPlan::Explain(const Database& db,
                               const BoundQuery& query) const {
  std::string out;
  if (provably_empty) {
    out += "empty result: predicate statically unsatisfiable over the "
           "declared domains (guarantee analysis)\n";
  }
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelPlan& level = levels[i];
    const BoundTableRef& rel = query.relations[level.relation];
    const TableSchema& schema = db.catalog().schema(rel.table_id);
    out += std::to_string(i) + ": " + rel.display_name;
    if (level.use_local_index) {
      out += " [index on " + schema.column(level.index_column).name + ", " +
             std::to_string(level.index_keys.size()) + " key(s)]";
    } else {
      out += " [seq scan]";
    }
    if (!level.equi_keys.empty()) {
      out += level.index_nested_loop ? " join: index-nested-loop"
                                     : " join: hash";
    } else if (i > 0) {
      out += " join: nested-loop";
    }
    out += " est=" + std::to_string(static_cast<int64_t>(level.estimated_rows));
    out += "\n";
  }
  return out;
}

}  // namespace trac
