#include "exec/planner.h"

#include "common/dcheck.h"
#include "opt/plan_build.h"
#include "opt/rewrite.h"
#include "telemetry/metrics.h"
#include "verify/verifier.h"

namespace trac {

[[nodiscard]] Result<QueryPlan> PlanQuery(const Database& db, const BoundQuery& query,
                            Snapshot snapshot, const PlanningHints& hints) {
  QueryPlan plan;
  const size_t num_rels = query.relations.size();
  if (num_rels > 63) {
    return Status::Unsupported("queries limited to 63 relations");
  }

  // A statically proven-unsatisfiable predicate (TRAC-E001) lets the
  // executor skip every scan. Only the unsatisfiable-query finding is
  // consulted: other kEmptySet causes (e.g. no monitored relation) speak
  // about the relevant set, not about this query's result.
  if (hints.guarantee != nullptr &&
      hints.guarantee->verdict == RecencyGuarantee::kEmptySet) {
    for (const AnalysisDiagnostic& d : hints.guarantee->diagnostics) {
      if (d.code == AnalysisCode::kUnsatisfiableQuery) {
        plan.provably_empty = true;
        break;
      }
    }
  }

  // Baseline plan: greedy join order with earliest-level predicate
  // placement (opt/plan_build.cc, shared with the reorder rule).
  std::vector<opt::PredUnit> units = opt::SplitWhereUnits(query, &plan);
  const std::vector<opt::RelAccess> info =
      opt::ComputeRelAccess(db, query, units);
  const Status built = opt::BuildJoinLevels(db, query, info, units,
                                            /*forced_order=*/nullptr, &plan);
  if (!built.ok()) return built;

  // Cost-based rewrites, each one translation-validated against the
  // baseline (opt/rewrite.cc). This is where the abstract interpreter's
  // provably-empty static cardinality becomes a dead-subplan prune: the
  // rule's witness must discharge TRAC-V009..V012 before it is applied.
  opt::OptimizePlan(db, query, snapshot, hints, &plan);

  // Gate the finished plan behind the static verifier: a plan that
  // fails a TRAC-V rule is a planner bug and must not reach execution.
  // Hard error with invariants armed; Status otherwise.
  const Status verified = VerifyPlan(db, query, plan, snapshot);
  // Outcome counters resolved once: metric lookup stays off the per-plan
  // path after the first call.
  static Counter* verify_ok = MetricRegistry::Default().GetCounter(
      "trac_plan_verify_total", "Plan-IR verifier outcomes at plan time",
      {{"outcome", "ok"}});
  static Counter* verify_reject = MetricRegistry::Default().GetCounter(
      "trac_plan_verify_total", "Plan-IR verifier outcomes at plan time",
      {{"outcome", "reject"}});
  (verified.ok() ? verify_ok : verify_reject)->Increment();
  TRAC_DCHECK(verified.ok(), verified.message().c_str());
  if (!verified.ok()) return verified;
  return plan;
}

std::string QueryPlan::Explain(const Database& db,
                               const BoundQuery& query) const {
  std::string out;
  if (provably_empty) {
    out += "empty result: predicate statically unsatisfiable over the "
           "declared domains (guarantee analysis)\n";
  }
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelPlan& level = levels[i];
    const BoundTableRef& rel = query.relations[level.relation];
    const TableSchema& schema = db.catalog().schema(rel.table_id);
    out += std::to_string(i) + ": " + rel.display_name;
    if (level.use_local_index) {
      out += " [index on " + schema.column(level.index_column).name + ", " +
             std::to_string(level.index_keys.size()) + " key(s)]";
    } else if (level.use_range_index) {
      out += " [range scan on " + schema.column(level.index_column).name + "]";
    } else {
      out += " [seq scan]";
    }
    if (!level.equi_keys.empty()) {
      out += level.index_nested_loop ? " join: index-nested-loop"
                                     : " join: hash";
    } else if (i > 0) {
      out += " join: nested-loop";
    }
    out += " est=" + std::to_string(static_cast<int64_t>(level.estimated_rows));
    out += "\n";
  }
  return out;
}

}  // namespace trac
