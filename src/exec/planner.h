#ifndef TRAC_EXEC_PLANNER_H_
#define TRAC_EXEC_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "absint/domains.h"
#include "analysis/guarantee.h"
#include "common/result.h"
#include "expr/bound_expr.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace trac {

/// One level of a left-deep join plan: how to access one relation and
/// how to connect it to the already-bound prefix. All BoundExpr pointers
/// reference nodes owned by the BoundQuery passed to PlanQuery; the plan
/// must not outlive it.
struct LevelPlan {
  size_t relation = 0;  ///< Slot index into BoundQuery::relations.

  // -- Access path.
  bool use_local_index = false;
  size_t index_column = 0;  ///< Valid if use_local_index/use_range_index.
  std::vector<Value> index_keys;     ///< Deduplicated = / IN keys.
  /// Range scan over `index_column`'s ordered index between the optional
  /// bounds (optimizer's convert-to-range-scan rule). Mutually exclusive
  /// with use_local_index; the predicate that supplied the bounds stays
  /// in local_preds and is re-checked on every row, so the access path
  /// choice is invisible in the lowered IR.
  bool use_range_index = false;
  std::optional<Value> range_lo;
  std::optional<Value> range_hi;
  bool range_lo_inclusive = false;
  bool range_hi_inclusive = false;
  /// Predicates referencing only this relation (re-checked on each row,
  /// including the one that supplied the index keys).
  std::vector<const BoundExpr*> local_preds;

  // -- Connection to the prefix.
  struct EquiKey {
    BoundColumnRef probe;  ///< Column bound by an earlier level.
    BoundColumnRef build;  ///< Column of this level's relation.
  };
  std::vector<EquiKey> equi_keys;
  /// Other predicates that become checkable at this level.
  std::vector<const BoundExpr*> level_preds;

  /// Per-probe index lookup on equi_keys[0].build instead of building a
  /// hash table (index nested-loop join).
  bool index_nested_loop = false;

  double estimated_rows = 0;  ///< Cardinality guess used for ordering.
};

/// One optimizer rule application attempt, recorded on the plan so
/// tools can replay the decision trail (trac_verify --dump-rewrites).
/// Every attempt was translation-validated (verify/equiv.h); `applied`
/// is true only for witnesses that verified clean AND beat the
/// incumbent's cost.
struct PlanRewrite {
  std::string rule;     ///< e.g. "join-reorder", "convert-to-range-scan".
  std::string detail;   ///< Deterministic rule-specific description.
  std::string verdict;  ///< "applied" / "rejected TRAC-Vnnn" / "verified, not cheaper".
  double cost_before = 0;
  double cost_after = 0;
  bool applied = false;
};

/// A full plan: constant predicates (evaluated once), then the join
/// levels in execution order.
struct QueryPlan {
  /// Predicates referencing no columns (e.g. WHERE FALSE).
  std::vector<const BoundExpr*> constant_preds;
  std::vector<LevelPlan> levels;

  /// Optimizer decision trail, in rule application order. Empty when the
  /// optimizer is disabled or found nothing to try.
  std::vector<PlanRewrite> rewrites;

  /// The static guarantee analysis proved the predicate unsatisfiable
  /// over the declared column domains (TRAC-E001). Because inserts
  /// enforce finite domains and CHECK constraints, no stored tuple
  /// combination can satisfy it: execution emits zero rows without
  /// touching storage.
  bool provably_empty = false;

  /// Human-readable plan description (one line per level).
  std::string Explain(const Database& db, const BoundQuery& query) const;
};

/// Optional static-analysis input to planning.
struct PlanningHints {
  /// Guarantee analysis of the query being planned, when the caller ran
  /// it (the recency reporter always does). A kEmptySet verdict caused
  /// by an unsatisfiable predicate marks the plan provably empty.
  const GuaranteeReport* guarantee = nullptr;
  /// Static cardinality interval of this query's result from a prior
  /// abstract interpretation of its lowered IR (absint/absint.h). A
  /// DefinitelyEmpty() interval short-circuits the plan to provably
  /// empty (the dead-subplan short-circuit). Sound ONLY when the facts
  /// were computed at the same snapshot the plan will execute at — a
  /// [0..0] interval at one snapshot says nothing about a later one —
  /// so callers must not cache it across snapshots.
  const absint::CardInterval* static_card = nullptr;
};

/// Builds a heuristic left-deep plan: index selection for =/IN
/// predicates on indexed columns, greedy join ordering by estimated
/// cardinality preferring equi-join-connected relations, hash joins for
/// equi-joins, and index nested-loop joins when the prefix is small and
/// the build side is indexed on the join column.
[[nodiscard]] Result<QueryPlan> PlanQuery(const Database& db, const BoundQuery& query,
                            Snapshot snapshot,
                            const PlanningHints& hints = PlanningHints());

}  // namespace trac

#endif  // TRAC_EXEC_PLANNER_H_
