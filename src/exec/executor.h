#ifndef TRAC_EXEC_EXECUTOR_H_
#define TRAC_EXEC_EXECUTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "exec/planner.h"
#include "expr/bound_expr.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace trac {

struct ExecProfile;  // telemetry/profile.h

/// A fully materialized query result.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }

  /// For COUNT(*) results: the single counter value.
  int64_t count() const { return rows.at(0).at(0).int_val(); }

  /// True if some row equals `row` (structural equality).
  bool Contains(const Row& row) const;

  /// Pipe-separated textual table, one line per row; stable ordering is
  /// the executor's emission order.
  std::string ToString() const;
};

/// Executes a bound query against `snapshot`. The paper's reporter runs
/// the user query and the generated recency query through this with the
/// *same* snapshot, which yields the consistency guarantee of
/// Section 3.2. `hints` forwards static-analysis results to the planner
/// (a proven-unsatisfiable predicate short-circuits to an empty result).
///
/// `profile`, when non-null, receives per-operator row counters for the
/// execution (telemetry/profile.h); `clock` additionally enables stage
/// timings (pass the telemetry bundle's ClockFn — clock reads happen
/// only when a profile sink is attached, keeping the unprofiled path
/// free of time syscalls).
[[nodiscard]] Result<ResultSet> ExecuteQuery(const Database& db, const BoundQuery& query,
                               Snapshot snapshot,
                               const PlanningHints& hints = PlanningHints(),
                               ExecProfile* profile = nullptr,
                               ClockFn clock = nullptr);

/// As above, but stops as soon as `row_limit` output rows (or counted
/// tuples, for COUNT(*)) have been produced. Powers EXISTS-style guard
/// evaluation in the recency analyzer.
[[nodiscard]] Result<ResultSet> ExecuteQueryWithLimit(const Database& db,
                                        const BoundQuery& query,
                                        Snapshot snapshot, size_t row_limit,
                                        const PlanningHints& hints =
                                            PlanningHints(),
                                        ExecProfile* profile = nullptr,
                                        ClockFn clock = nullptr);

/// True iff the query produces at least one tuple under `snapshot`;
/// evaluation stops at the first one. `profile`/`clock` as above.
[[nodiscard]] Result<bool> QueryHasResults(const Database& db, const BoundQuery& query,
                             Snapshot snapshot,
                             ExecProfile* profile = nullptr,
                             ClockFn clock = nullptr);

/// Parse + bind + execute against the latest snapshot.
[[nodiscard]] Result<ResultSet> ExecuteSql(const Database& db, std::string_view sql);

}  // namespace trac

#endif  // TRAC_EXEC_EXECUTOR_H_
