#ifndef TRAC_EXEC_EXECUTOR_H_
#define TRAC_EXEC_EXECUTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "exec/planner.h"
#include "expr/bound_expr.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace trac {

/// A fully materialized query result.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }

  /// For COUNT(*) results: the single counter value.
  int64_t count() const { return rows.at(0).at(0).int_val(); }

  /// True if some row equals `row` (structural equality).
  bool Contains(const Row& row) const;

  /// Pipe-separated textual table, one line per row; stable ordering is
  /// the executor's emission order.
  std::string ToString() const;
};

/// Executes a bound query against `snapshot`. The paper's reporter runs
/// the user query and the generated recency query through this with the
/// *same* snapshot, which yields the consistency guarantee of
/// Section 3.2. `hints` forwards static-analysis results to the planner
/// (a proven-unsatisfiable predicate short-circuits to an empty result).
[[nodiscard]] Result<ResultSet> ExecuteQuery(const Database& db, const BoundQuery& query,
                               Snapshot snapshot,
                               const PlanningHints& hints = PlanningHints());

/// As above, but stops as soon as `row_limit` output rows (or counted
/// tuples, for COUNT(*)) have been produced. Powers EXISTS-style guard
/// evaluation in the recency analyzer.
[[nodiscard]] Result<ResultSet> ExecuteQueryWithLimit(const Database& db,
                                        const BoundQuery& query,
                                        Snapshot snapshot, size_t row_limit,
                                        const PlanningHints& hints =
                                            PlanningHints());

/// True iff the query produces at least one tuple under `snapshot`;
/// evaluation stops at the first one.
[[nodiscard]] Result<bool> QueryHasResults(const Database& db, const BoundQuery& query,
                             Snapshot snapshot);

/// Parse + bind + execute against the latest snapshot.
[[nodiscard]] Result<ResultSet> ExecuteSql(const Database& db, std::string_view sql);

}  // namespace trac

#endif  // TRAC_EXEC_EXECUTOR_H_
