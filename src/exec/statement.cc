#include "exec/statement.h"

#include <functional>
#include <memory>

#include "expr/binder.h"
#include "expr/constraints.h"
#include "expr/evaluator.h"
#include "sql/parser.h"

namespace trac {

namespace {

[[nodiscard]] Result<StatementResult> RunSelect(Database* db, SelectStmt stmt) {
  TRAC_ASSIGN_OR_RETURN(BoundQuery bound, BindSelect(*db, stmt));
  TRAC_ASSIGN_OR_RETURN(ResultSet rs,
                        ExecuteQuery(*db, bound, db->LatestSnapshot()));
  StatementResult out;
  out.kind = StatementResult::Kind::kSelect;
  out.message = "SELECT " + std::to_string(rs.num_rows());
  out.result = std::move(rs);
  return out;
}

[[nodiscard]] Result<StatementResult> RunCreateTable(Database* db, CreateTableStmt stmt) {
  std::vector<ColumnDef> columns;
  std::string data_source_column;
  for (const ColumnSpec& spec : stmt.columns) {
    columns.emplace_back(spec.name, spec.type);
    if (spec.is_data_source) {
      if (!data_source_column.empty()) {
        return Status::InvalidArgument(
            "at most one DATA SOURCE column per table");
      }
      data_source_column = spec.name;
    }
  }
  TableSchema schema(stmt.table, std::move(columns));
  if (!data_source_column.empty()) {
    TRAC_RETURN_IF_ERROR(schema.SetDataSourceColumn(data_source_column));
  }
  for (std::string& check : stmt.checks) {
    schema.AddCheckConstraint(std::move(check));
  }
  TRAC_ASSIGN_OR_RETURN(TableId id, db->CreateTable(std::move(schema)));
  // Validate the CHECK predicates now so a typo surfaces at CREATE time,
  // not at the first INSERT.
  Result<std::vector<BoundExprPtr>> bound = BindCheckConstraints(*db, id);
  if (!bound.ok()) {
    (void)db->DropTable(stmt.table);
    return bound.status();
  }
  StatementResult out;
  out.kind = StatementResult::Kind::kDdl;
  out.message = "CREATE TABLE";
  return out;
}

[[nodiscard]] Result<StatementResult> RunInsert(Database* db, InsertStmt stmt) {
  TRAC_ASSIGN_OR_RETURN(TableId id, db->FindTable(stmt.table));
  const TableSchema& schema = db->catalog().schema(id);

  // Column-name mapping (positional when the list is absent).
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      std::optional<size_t> idx = schema.FindColumn(name);
      if (!idx.has_value()) {
        return Status::NotFound("no column '" + name + "' in table '" +
                                stmt.table + "'");
      }
      positions.push_back(*idx);
    }
  }

  int64_t inserted = 0;
  for (const std::vector<Value>& values : stmt.rows) {
    if (values.size() != positions.size()) {
      return Status::InvalidArgument(
          "VALUES arity does not match the insert target");
    }
    Row row(schema.num_columns());  // Unlisted columns stay NULL.
    for (size_t i = 0; i < positions.size(); ++i) {
      TRAC_ASSIGN_OR_RETURN(
          row[positions[i]],
          CoerceLiteral(values[i], schema.column(positions[i]).type));
    }
    TRAC_RETURN_IF_ERROR(CheckRowConstraints(*db, id, row));
    TRAC_RETURN_IF_ERROR(db->Insert(stmt.table, std::move(row)));
    ++inserted;
  }
  StatementResult out;
  out.kind = StatementResult::Kind::kDml;
  out.rows_affected = inserted;
  out.message = "INSERT " + std::to_string(inserted);
  return out;
}

/// Binds `where` (may be null) in a single-table scope and returns a
/// row predicate closure. Evaluation errors surface through `status`.
[[nodiscard]] Result<std::function<bool(const Row&)>> MakeRowPredicate(
    const Database& db, TableId id, const ExprPtr& where, Status* status) {
  if (where == nullptr) {
    return std::function<bool(const Row&)>([](const Row&) { return true; });
  }
  BoundQuery scope;
  scope.relations.push_back(
      BoundTableRef{id, db.catalog().schema(id).name()});
  TRAC_ASSIGN_OR_RETURN(BoundExprPtr bound,
                        BindPredicateInScope(db, scope, *where));
  auto shared = std::shared_ptr<BoundExpr>(std::move(bound));
  return std::function<bool(const Row&)>([shared, status](const Row& row) {
    TupleView tuple = {&row};
    auto v = EvalPredicate(*shared, tuple);
    if (!v.ok()) {
      if (status->ok()) *status = v.status();
      return false;
    }
    return IsTrue(*v);
  });
}

[[nodiscard]] Result<StatementResult> RunUpdate(Database* db, UpdateStmt stmt) {
  TRAC_ASSIGN_OR_RETURN(TableId id, db->FindTable(stmt.table));
  const TableSchema& schema = db->catalog().schema(id);

  std::vector<std::pair<size_t, Value>> assignments;
  for (auto& [name, value] : stmt.assignments) {
    std::optional<size_t> idx = schema.FindColumn(name);
    if (!idx.has_value()) {
      return Status::NotFound("no column '" + name + "' in table '" +
                              stmt.table + "'");
    }
    TRAC_ASSIGN_OR_RETURN(Value coerced,
                          CoerceLiteral(value, schema.column(*idx).type));
    assignments.emplace_back(*idx, std::move(coerced));
  }

  Status eval_status;
  TRAC_ASSIGN_OR_RETURN(std::function<bool(const Row&)> pred,
                        MakeRowPredicate(*db, id, stmt.where, &eval_status));

  // Constraint violations inside the mutator are collected and reported
  // after the fact (the mutation is applied row-at-a-time under the
  // database's write lock).
  Status constraint_status;
  TRAC_ASSIGN_OR_RETURN(
      int updated,
      db->UpdateWhere(
          stmt.table,
          [&](const Row& row) {
            if (!pred(row)) return false;
            Row candidate = row;
            for (const auto& [col, value] : assignments) {
              candidate[col] = value;
            }
            Status s = CheckRowConstraints(*db, id, candidate);
            if (!s.ok()) {
              if (constraint_status.ok()) constraint_status = s;
              return false;
            }
            return true;
          },
          [&](Row* row) {
            for (const auto& [col, value] : assignments) {
              (*row)[col] = value;
            }
          }));
  TRAC_RETURN_IF_ERROR(eval_status);
  TRAC_RETURN_IF_ERROR(constraint_status);

  StatementResult out;
  out.kind = StatementResult::Kind::kDml;
  out.rows_affected = updated;
  out.message = "UPDATE " + std::to_string(updated);
  return out;
}

[[nodiscard]] Result<StatementResult> RunDelete(Database* db, DeleteStmt stmt) {
  TRAC_ASSIGN_OR_RETURN(TableId id, db->FindTable(stmt.table));
  Status eval_status;
  TRAC_ASSIGN_OR_RETURN(std::function<bool(const Row&)> pred,
                        MakeRowPredicate(*db, id, stmt.where, &eval_status));
  TRAC_ASSIGN_OR_RETURN(int deleted, db->DeleteWhere(stmt.table, pred));
  TRAC_RETURN_IF_ERROR(eval_status);
  StatementResult out;
  out.kind = StatementResult::Kind::kDml;
  out.rows_affected = deleted;
  out.message = "DELETE " + std::to_string(deleted);
  return out;
}

}  // namespace

[[nodiscard]] Result<StatementResult> ExecuteStatement(Database* db, std::string_view sql) {
  TRAC_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return std::visit(
      [db](auto&& s) -> Result<StatementResult> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, SelectStmt>) {
          return RunSelect(db, std::move(s));
        } else if constexpr (std::is_same_v<T, CreateTableStmt>) {
          return RunCreateTable(db, std::move(s));
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return RunInsert(db, std::move(s));
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          return RunUpdate(db, std::move(s));
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          return RunDelete(db, std::move(s));
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          TRAC_RETURN_IF_ERROR(db->CreateIndex(s.table, s.column));
          StatementResult out;
          out.kind = StatementResult::Kind::kDdl;
          out.message = "CREATE INDEX";
          return out;
        } else {
          static_assert(std::is_same_v<T, DropTableStmt>);
          TRAC_RETURN_IF_ERROR(db->DropTable(s.table));
          StatementResult out;
          out.kind = StatementResult::Kind::kDdl;
          out.message = "DROP TABLE";
          return out;
        }
      },
      std::move(stmt));
}

}  // namespace trac
