#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/dcheck.h"
#include "expr/binder.h"
#include "expr/evaluator.h"
#include "telemetry/metrics.h"
#include "telemetry/profile.h"
#include "verify/verifier.h"

namespace trac {

bool ResultSet::Contains(const Row& row) const {
  for (const Row& r : rows) {
    if (r == row) return true;
  }
  return false;
}

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i != 0) out += " | ";
    out += column_names[i];
  }
  out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

namespace {

/// Runtime state for one plan level.
struct LevelState {
  const LevelPlan* plan = nullptr;
  const Table* table = nullptr;

  /// Filtered candidate rows (hash-join build input / nested-loop inner),
  /// prepared once. Unused for level 0 and index-nested-loop levels.
  std::vector<const Row*> rows;
  /// Hash table over `rows` keyed by the build columns.
  std::unordered_multimap<size_t, const Row*> hash;
  bool prepared = false;
};

class Execution {
 public:
  Execution(const Database& db, const BoundQuery& query, Snapshot snapshot,
            const QueryPlan& plan, size_t row_limit, ExecProfile* profile,
            ClockFn clock)
      : db_(db),
        query_(query),
        snapshot_(snapshot),
        plan_(plan),
        row_limit_(row_limit),
        profile_(profile),
        // Clock reads are gated on a sink being attached: without one
        // the timings would be dropped anyway, and the unprofiled path
        // must stay free of time syscalls.
        clock_(profile != nullptr ? clock : nullptr) {}

  [[nodiscard]] Result<ResultSet> Run() {
    // The structure flags are derived from the same plan fields the
    // lowering's node grammar keys on (ir/lower.cc), so the attach walk
    // in telemetry/profile.cc can re-derive the exact node sequence.
    prof_.levels.resize(plan_.levels.size());
    for (size_t i = 0; i < plan_.levels.size(); ++i) {
      const LevelPlan& lp = plan_.levels[i];
      prof_.levels[i].has_filter =
          lp.use_local_index || !lp.local_preds.empty();
      if (i > 0) prof_.levels[i].has_level_filter = !lp.level_preds.empty();
    }
    prof_.has_const_filter =
        !plan_.constant_preds.empty() || plan_.provably_empty;
    prof_.has_agg = query_.count_star || !query_.aggregates.empty();
    prof_.invocations = 1;

    const int64_t t0 = clock_ != nullptr ? clock_() : 0;
    Result<ResultSet> result = RunQuery();
    if (clock_ != nullptr) prof_.total_ns = (clock_() - t0) * 1000;
    if (result.ok()) prof_.output_rows = result->rows.size();
    if (profile_ != nullptr) *profile_ = std::move(prof_);
    return result;
  }

 private:
  [[nodiscard]] Result<ResultSet> RunQuery() {
    ResultSet result;
    if (query_.count_star) {
      result.column_names.push_back("count");
    } else if (!query_.aggregates.empty()) {
      for (const auto& agg : query_.aggregates) {
        result.column_names.push_back(agg.name);
      }
      agg_states_.resize(query_.aggregates.size());
    } else {
      for (const auto& out : query_.outputs) {
        result.column_names.push_back(out.name);
      }
    }

    // A statically proven-empty plan (guarantee analysis, TRAC-E001)
    // produces its zero-row / zero-count result without touching
    // storage, exactly like a constant-FALSE predicate.
    if (plan_.provably_empty) {
      if (query_.count_star) {
        result.rows.push_back({Value::Int(0)});
      } else if (!query_.aggregates.empty()) {
        result.rows.push_back(FinishAggregates());
      }
      return result;
    }

    // Constant predicates (e.g. WHERE FALSE) decide everything upfront.
    TupleView empty(query_.relations.size(), nullptr);
    for (const BoundExpr* e : plan_.constant_preds) {
      TRAC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*e, empty));
      if (!IsTrue(v)) {
        if (query_.count_star) {
          result.rows.push_back({Value::Int(0)});
        } else if (!query_.aggregates.empty()) {
          result.rows.push_back(FinishAggregates());
        }
        return result;
      }
    }

    levels_.resize(plan_.levels.size());
    for (size_t i = 0; i < plan_.levels.size(); ++i) {
      levels_[i].plan = &plan_.levels[i];
      levels_[i].table =
          db_.GetTable(query_.relations[plan_.levels[i].relation].table_id);
    }

    tuple_.assign(query_.relations.size(), nullptr);
    count_ = 0;
    out_rows_.clear();
    sort_keys_.clear();
    distinct_seen_.clear();

    // Fold the query's own LIMIT into the early-exit limit, but only
    // when no ORDER BY forces us to see every row first.
    const bool ordered = !query_.order_by.empty() && !query_.count_star;
    // LIMIT truncates output rows; a COUNT(*) result is one row, so the
    // limit must not stop the counting itself.
    if (query_.limit != 0 && !ordered && !query_.count_star &&
        query_.aggregates.empty() &&
        (row_limit_ == 0 || query_.limit < row_limit_)) {
      row_limit_ = query_.limit;
    }
    const size_t post_limit =
        ordered ? (row_limit_ != 0 && (query_.limit == 0 ||
                                       row_limit_ < query_.limit)
                       ? row_limit_
                       : query_.limit)
                : 0;
    if (ordered) row_limit_ = 0;  // No early exit under ORDER BY.

    TRAC_RETURN_IF_ERROR(RunLevel(0));

    if (query_.count_star) {
      result.rows.push_back({Value::Int(count_)});
      return result;
    }
    if (!query_.aggregates.empty()) {
      result.rows.push_back(FinishAggregates());
      return result;
    }
    if (ordered) {
      // Sort by the key rows captured at emission time: SQL order with
      // NULLs first, structural order as the incomparable-type fallback.
      std::vector<size_t> order(out_rows_.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         return KeyLess(sort_keys_[a], sort_keys_[b]);
                       });
      std::vector<Row> sorted;
      sorted.reserve(out_rows_.size());
      for (size_t i : order) sorted.push_back(std::move(out_rows_[i]));
      if (post_limit != 0 && sorted.size() > post_limit) {
        sorted.resize(post_limit);
      }
      result.rows = std::move(sorted);
      return result;
    }
    result.rows = std::move(out_rows_);
    return result;
  }

  /// Lexicographic ORDER BY comparison over key rows.
  bool KeyLess(const Row& a, const Row& b) const {
    for (size_t k = 0; k < query_.order_by.size(); ++k) {
      const bool desc = query_.order_by[k].descending;
      const Value& x = desc ? b[k] : a[k];
      const Value& y = desc ? a[k] : b[k];
      if (x.is_null() || y.is_null()) {
        if (x.is_null() != y.is_null()) return x.is_null();  // NULLs first.
        continue;
      }
      auto cmp = Value::Compare(x, y);
      int c = cmp.ok() ? *cmp : (x < y ? -1 : (y < x ? 1 : 0));
      if (c != 0) return c < 0;
    }
    return false;
  }

 private:
  /// Hash of the values of `cols` taken from the full tuple context.
  static size_t HashKeyValues(const std::vector<Value>& vals) {
    size_t seed = vals.size();
    for (const Value& v : vals) {
      seed ^= v.Hash() + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
    }
    return seed;
  }

  [[nodiscard]] Result<bool> PassesPreds(const std::vector<const BoundExpr*>& preds) {
    for (const BoundExpr* e : preds) {
      TRAC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*e, tuple_));
      if (!IsTrue(v)) return false;
    }
    return true;
  }

  /// Prepares the candidate row list (and hash table) of level `i`.
  [[nodiscard]] Status PrepareLevel(size_t i) {
    LevelState& state = levels_[i];
    const LevelPlan& lp = *state.plan;
    const size_t rel = lp.relation;
    ExecProfile::Level& lprof = prof_.levels[i];
    const int64_t t0 = clock_ != nullptr ? clock_() : 0;

    auto consider = [&](const Row& row) -> Status {
      ++lprof.scan_rows;
      tuple_[rel] = &row;
      TRAC_ASSIGN_OR_RETURN(bool ok, PassesPreds(lp.local_preds));
      if (ok) {
        ++lprof.filter_rows;
        state.rows.push_back(&row);
      }
      return Status::OK();
    };

    Status status = Status::OK();
    if (lp.use_local_index) {
      const OrderedIndex* index = state.table->GetIndex(lp.index_column);
      for (const Value& key : lp.index_keys) {
        index->ScanEqual(key, [&](size_t vidx) {
          if (!status.ok()) return;
          const RowVersion& v = state.table->version(vidx);
          if (state.table->Visible(v, snapshot_)) {
            Status s = consider(v.values);
            if (!s.ok()) status = s;
          }
        });
      }
    } else if (lp.use_range_index) {
      // Ordered range scan; the range predicate stays in local_preds, so
      // consider() still re-checks it (the index only narrows the walk).
      const OrderedIndex* index = state.table->GetIndex(lp.index_column);
      index->ScanRange(lp.range_lo, lp.range_lo_inclusive, lp.range_hi,
                       lp.range_hi_inclusive, [&](size_t vidx) {
                         if (!status.ok()) return;
                         const RowVersion& v = state.table->version(vidx);
                         if (state.table->Visible(v, snapshot_)) {
                           Status s = consider(v.values);
                           if (!s.ok()) status = s;
                         }
                       });
    } else {
      state.table->Scan(snapshot_, [&](size_t, const Row& row) {
        if (!status.ok()) return;
        Status s = consider(row);
        if (!s.ok()) status = s;
      });
    }
    tuple_[rel] = nullptr;
    TRAC_RETURN_IF_ERROR(status);

    if (!lp.equi_keys.empty() && !lp.index_nested_loop) {
      state.hash.reserve(state.rows.size());
      for (const Row* row : state.rows) {
        std::vector<Value> key;
        key.reserve(lp.equi_keys.size());
        for (const auto& ek : lp.equi_keys) key.push_back((*row)[ek.build.col]);
        bool any_null = false;
        for (const Value& v : key) any_null |= v.is_null();
        if (any_null) continue;  // NULL never joins.
        state.hash.emplace(HashKeyValues(key), row);
      }
    }
    state.prepared = true;
    if (clock_ != nullptr) lprof.prepare_ns = (clock_() - t0) * 1000;
    return Status::OK();
  }

  [[nodiscard]] Status RunLevel(size_t depth) {
    if (done_) return Status::OK();
    if (depth == plan_.levels.size()) return Emit();
    LevelState& state = levels_[depth];
    const LevelPlan& lp = *state.plan;
    const size_t rel = lp.relation;

    auto try_row = [&](const Row& row) -> Status {
      ++prof_.levels[depth].join_rows;
      tuple_[rel] = &row;
      TRAC_ASSIGN_OR_RETURN(bool ok, PassesPreds(lp.level_preds));
      if (ok) {
        ++prof_.levels[depth].level_rows;
        TRAC_RETURN_IF_ERROR(RunLevel(depth + 1));
      }
      tuple_[rel] = nullptr;
      return Status::OK();
    };

    if (depth == 0) {
      // Stream the outermost relation straight off storage.
      Status status = Status::OK();
      auto consider = [&](const Row& row) {
        if (!status.ok() || done_) return;
        ++prof_.levels[0].scan_rows;
        tuple_[rel] = &row;
        Result<bool> ok = PassesPreds(lp.local_preds);
        if (!ok.ok()) {
          status = ok.status();
          return;
        }
        if (*ok) {
          ++prof_.levels[0].filter_rows;
          Status s = RunLevel(1);
          if (!s.ok()) status = s;
        }
      };
      if (lp.use_local_index) {
        const OrderedIndex* index = state.table->GetIndex(lp.index_column);
        for (const Value& key : lp.index_keys) {
          if (done_) break;
          index->ScanEqual(key, [&](size_t vidx) {
            if (done_) return;
            const RowVersion& v = state.table->version(vidx);
            if (state.table->Visible(v, snapshot_)) consider(v.values);
          });
        }
      } else if (lp.use_range_index) {
        const OrderedIndex* index = state.table->GetIndex(lp.index_column);
        index->ScanRange(lp.range_lo, lp.range_lo_inclusive, lp.range_hi,
                         lp.range_hi_inclusive, [&](size_t vidx) {
                           if (done_) return;
                           const RowVersion& v = state.table->version(vidx);
                           if (state.table->Visible(v, snapshot_)) {
                             consider(v.values);
                           }
                         });
      } else {
        state.table->ScanWhile(snapshot_, [&](size_t, const Row& row) {
          consider(row);
          return status.ok() && !done_;
        });
      }
      tuple_[rel] = nullptr;
      return status;
    }

    if (lp.index_nested_loop) {
      // Per-probe lookup on the first equi key; the rest of the equi
      // keys plus local/level predicates are evaluated per row.
      const OrderedIndex* index = state.table->GetIndex(lp.equi_keys[0].build.col);
      const BoundColumnRef& probe_ref = lp.equi_keys[0].probe;
      const Value& probe = (*tuple_[probe_ref.rel])[probe_ref.col];
      if (probe.is_null()) return Status::OK();
      Status status = Status::OK();
      index->ScanEqual(probe, [&](size_t vidx) {
        if (!status.ok()) return;
        const RowVersion& v = state.table->version(vidx);
        if (!state.table->Visible(v, snapshot_)) return;
        ++prof_.levels[depth].scan_rows;
        tuple_[rel] = &v.values;
        // Remaining equi keys.
        for (size_t k = 1; k < lp.equi_keys.size(); ++k) {
          const auto& ek = lp.equi_keys[k];
          const Value& a = (*tuple_[ek.probe.rel])[ek.probe.col];
          const Value& b = v.values[ek.build.col];
          auto cmp = Value::Compare(a, b);
          if (!cmp.ok() || *cmp != 0) {
            tuple_[rel] = nullptr;
            return;
          }
        }
        Result<bool> ok = PassesPreds(lp.local_preds);
        if (ok.ok() && *ok) {
          ++prof_.levels[depth].filter_rows;
          Status s = try_row(v.values);
          if (!s.ok()) status = s;
        } else if (!ok.ok()) {
          status = ok.status();
        }
        tuple_[rel] = nullptr;
      });
      return status;
    }

    if (!state.prepared) TRAC_RETURN_IF_ERROR(PrepareLevel(depth));

    if (!lp.equi_keys.empty()) {
      std::vector<Value> key;
      key.reserve(lp.equi_keys.size());
      for (const auto& ek : lp.equi_keys) {
        const Value& v = (*tuple_[ek.probe.rel])[ek.probe.col];
        if (v.is_null()) return Status::OK();
        key.push_back(v);
      }
      auto [lo, hi] = state.hash.equal_range(HashKeyValues(key));
      for (auto it = lo; it != hi && !done_; ++it) {
        const Row& row = *it->second;
        // Re-check the key (hash collisions).
        bool match = true;
        for (size_t k = 0; k < lp.equi_keys.size(); ++k) {
          auto cmp = Value::Compare(key[k], row[lp.equi_keys[k].build.col]);
          if (!cmp.ok() || *cmp != 0) {
            match = false;
            break;
          }
        }
        if (match) TRAC_RETURN_IF_ERROR(try_row(row));
      }
      return Status::OK();
    }

    // No equi key: nested loop over the filtered inner rows.
    for (const Row* row : state.rows) {
      if (done_) break;
      TRAC_RETURN_IF_ERROR(try_row(*row));
    }
    return Status::OK();
  }

  [[nodiscard]] Status Emit() {
    ++prof_.emitted_rows;
    if (query_.count_star) {
      ++count_;
      if (row_limit_ != 0 && static_cast<size_t>(count_) >= row_limit_) {
        done_ = true;
      }
      return Status::OK();
    }
    if (!query_.aggregates.empty()) {
      for (size_t i = 0; i < query_.aggregates.size(); ++i) {
        const BoundQuery::Aggregate& agg = query_.aggregates[i];
        AggState& state = agg_states_[i];
        if (agg.fn == AggFn::kCountStar) {
          ++state.count;
          continue;
        }
        const Value& v = (*tuple_[agg.arg.rel])[agg.arg.col];
        if (v.is_null()) continue;  // SQL aggregates skip NULLs.
        ++state.count;
        switch (agg.fn) {
          case AggFn::kSum:
          case AggFn::kAvg:
            if (v.type() == TypeId::kInt64) {
              state.sum_int += v.int_val();
            } else {
              state.sum_is_double = true;
            }
            state.sum_double += v.AsDouble();
            break;
          case AggFn::kMin:
          case AggFn::kMax: {
            if (!state.any) {
              state.min = v;
              state.max = v;
              state.any = true;
              break;
            }
            TRAC_ASSIGN_OR_RETURN(int lo, Value::Compare(v, state.min));
            if (lo < 0) state.min = v;
            TRAC_ASSIGN_OR_RETURN(int hi, Value::Compare(v, state.max));
            if (hi > 0) state.max = v;
            break;
          }
          default:
            break;  // COUNT(col): the increment above is all.
        }
      }
      return Status::OK();
    }
    Row out;
    out.reserve(query_.outputs.size());
    for (const auto& oc : query_.outputs) {
      out.push_back((*tuple_[oc.ref.rel])[oc.ref.col]);
    }
    if (query_.distinct) {
      auto [it, inserted] = distinct_seen_.insert(out);
      if (!inserted) return Status::OK();
    }
    if (!query_.order_by.empty()) {
      Row key;
      key.reserve(query_.order_by.size());
      for (const auto& ok : query_.order_by) {
        key.push_back((*tuple_[ok.ref.rel])[ok.ref.col]);
      }
      sort_keys_.push_back(std::move(key));
    }
    out_rows_.push_back(std::move(out));
    if (row_limit_ != 0 && out_rows_.size() >= row_limit_) done_ = true;
    return Status::OK();
  }

  const Database& db_;
  const BoundQuery& query_;
  Snapshot snapshot_;
  const QueryPlan& plan_;
  size_t row_limit_ = 0;  // 0: unlimited.
  bool done_ = false;

  /// Row counters accumulate here unconditionally (plain increments on
  /// this stack-local state — no branch, no sharing); the result is
  /// copied out to `profile_` once at the end of Run(). `clock_` is
  /// non-null only when a sink is attached.
  ExecProfile prof_;
  ExecProfile* const profile_ = nullptr;
  const ClockFn clock_ = nullptr;

  std::vector<LevelState> levels_;
  TupleView tuple_;
  /// Accumulator for one aggregate select-list item.
  struct AggState {
    int64_t count = 0;
    int64_t sum_int = 0;
    double sum_double = 0;
    bool sum_is_double = false;
    bool any = false;
    Value min, max;
  };

  /// Materializes the single aggregate output row.
  Row FinishAggregates() const {
    Row row;
    row.reserve(query_.aggregates.size());
    for (size_t i = 0; i < query_.aggregates.size(); ++i) {
      const BoundQuery::Aggregate& agg = query_.aggregates[i];
      const AggState& state = agg_states_[i];
      switch (agg.fn) {
        case AggFn::kCountStar:
        case AggFn::kCount:
          row.push_back(Value::Int(state.count));
          break;
        case AggFn::kSum:
          if (state.count == 0) {
            row.push_back(Value::Null());
          } else if (state.sum_is_double ||
                     agg.arg.type == TypeId::kDouble) {
            row.push_back(Value::Double(state.sum_double));
          } else {
            row.push_back(Value::Int(state.sum_int));
          }
          break;
        case AggFn::kAvg:
          row.push_back(state.count == 0
                            ? Value::Null()
                            : Value::Double(state.sum_double /
                                            static_cast<double>(state.count)));
          break;
        case AggFn::kMin:
          row.push_back(state.any ? state.min : Value::Null());
          break;
        case AggFn::kMax:
          row.push_back(state.any ? state.max : Value::Null());
          break;
        case AggFn::kNone:
          row.push_back(Value::Null());
          break;
      }
    }
    return row;
  }

  int64_t count_ = 0;
  std::vector<AggState> agg_states_;
  std::vector<Row> out_rows_;
  std::vector<Row> sort_keys_;  ///< Parallel to out_rows_ under ORDER BY.
  std::unordered_set<Row, RowHash> distinct_seen_;
};

}  // namespace

[[nodiscard]] Result<ResultSet> ExecuteQuery(const Database& db, const BoundQuery& query,
                               Snapshot snapshot,
                               const PlanningHints& hints,
                               ExecProfile* profile, ClockFn clock) {
  return ExecuteQueryWithLimit(db, query, snapshot, /*row_limit=*/0, hints,
                               profile, clock);
}

[[nodiscard]] Result<ResultSet> ExecuteQueryWithLimit(const Database& db,
                                        const BoundQuery& query,
                                        Snapshot snapshot, size_t row_limit,
                                        const PlanningHints& hints,
                                        ExecProfile* profile, ClockFn clock) {
  static Counter* queries_executed = MetricRegistry::Default().GetCounter(
      "trac_queries_executed_total",
      "Bound queries executed (user, recency, and guard queries)");
  queries_executed->Increment();
  TRAC_ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(db, query, snapshot, hints));
#if defined(TRAC_DEBUG_INVARIANTS)
  // PlanQuery already gated the plan; with invariants armed, re-verify
  // at the execution boundary so a plan mutated (or hand-built) between
  // planning and execution cannot slip through.
  const Status reverified = VerifyPlan(db, query, plan, snapshot);
  TRAC_DCHECK(reverified.ok(), reverified.message().c_str());
#endif
  Execution exec(db, query, snapshot, plan, row_limit, profile, clock);
  return exec.Run();
}

[[nodiscard]] Result<bool> QueryHasResults(const Database& db, const BoundQuery& query,
                             Snapshot snapshot, ExecProfile* profile,
                             ClockFn clock) {
  TRAC_ASSIGN_OR_RETURN(ResultSet rs,
                        ExecuteQueryWithLimit(db, query, snapshot, 1,
                                              PlanningHints(), profile,
                                              clock));
  if (query.count_star) return rs.count() > 0;
  return rs.num_rows() > 0;
}

[[nodiscard]] Result<ResultSet> ExecuteSql(const Database& db, std::string_view sql) {
  TRAC_ASSIGN_OR_RETURN(BoundQuery query, BindSql(db, sql));
  return ExecuteQuery(db, query, db.LatestSnapshot());
}

}  // namespace trac
