#include "absint/absint.h"

#include <algorithm>
#include <deque>

namespace trac {
namespace absint {

namespace {

// Worklist backstops. A well-formed plan IR is a DAG whose node order is
// execution order, so one ascending pass reaches the fixpoint; the caps
// only matter for ill-formed graphs (forward edges forming cycles),
// where widening plus the iteration ceiling force termination.
constexpr size_t kWidenAfterUpdates = 8;

size_t IterationCap(size_t nodes) { return nodes * 16 + 16; }

// In-range input ids only; TRAC-V000 owns rejecting the rest.
std::vector<size_t> UsableInputs(const IrNode& n, size_t num_nodes) {
  std::vector<size_t> in;
  in.reserve(n.inputs.size());
  for (size_t id : n.inputs) {
    if (id < num_nodes) in.push_back(id);
  }
  return in;
}

// Fallback column rule when inputs do not align positionally (merge and
// aggregate rename/reshape columns): a data-source column may carry any
// source identity its inputs carry; a regular column carries none.
void ColumnsFromUnion(const IrNode& n, const SourceSet& input_union,
                      NodeFacts* f) {
  f->column_sources.assign(n.columns.size(), SourceSet{});
  for (size_t i = 0; i < n.columns.size(); ++i) {
    if (n.columns[i].provenance == ColumnProvenance::kDataSource) {
      f->column_sources[i] = input_union;
    }
  }
}

NodeFacts Transfer(const PlanIr& ir, const IrNode& n,
                   const std::vector<NodeFacts>& facts) {
  const size_t num_nodes = ir.nodes.size();
  const std::vector<size_t> in = UsableInputs(n, num_nodes);

  SourceSet input_union;
  StalenessInterval input_staleness;
  for (size_t id : in) {
    input_union.JoinWith(facts[id].sources);
    input_staleness.JoinWith(facts[id].staleness);
  }

  NodeFacts f;
  switch (n.kind) {
    case IrNodeKind::kScan: {
      f.column_sources.assign(n.columns.size(), SourceSet{});
      for (size_t i = 0; i < n.columns.size(); ++i) {
        if (n.columns[i].provenance == ColumnProvenance::kDataSource) {
          f.column_sources[i].Insert(n.table);
        }
      }
      f.card = n.has_rows ? CardInterval::UpTo(n.rows)
                          : CardInterval::Unknown();
      if (n.has_age) f.staleness = StalenessInterval::Of(n.age_lo, n.age_hi);
      break;
    }
    case IrNodeKind::kFilter: {
      // Input 0 is the filtered stream; further inputs are guard gates
      // (the filter emits nothing when a gate subplan is empty).
      const NodeFacts* in0 = in.empty() ? nullptr : &facts[in[0]];
      if (in0 != nullptr &&
          in0->column_sources.size() == n.columns.size()) {
        f.column_sources = in0->column_sources;
      } else {
        ColumnsFromUnion(n, input_union, &f);
      }
      f.staleness = in0 != nullptr ? in0->staleness : StalenessInterval{};
      f.card = in0 != nullptr ? in0->card : CardInterval::Unknown();
      f.card.lo = 0;  // A filter may reject every row.
      for (size_t id : in) f.dead = f.dead || facts[id].dead;
      if (n.sel_zero) f.dead = true;
      if (f.dead) f.card = CardInterval::Exact(0);
      if (in0 != nullptr) f.applied_preds = in0->applied_preds;
      if (n.has_pred) {
        // Record the provenance context the predicate was applied on;
        // TRAC-V007 compares contexts before calling a reapplication
        // redundant. insert() keeps the outermost (first) context.
        f.applied_preds.insert(
            {n.pred_fingerprint,
             in0 != nullptr ? in0->sources : SourceSet{}});
      }
      break;
    }
    case IrNodeKind::kJoin: {
      // Output columns are the concatenation of the input edges when
      // the arities line up; otherwise fall back to the union rule.
      size_t total = 0;
      for (size_t id : in) total += facts[id].column_sources.size();
      if (!in.empty() && total == n.columns.size()) {
        f.column_sources.reserve(total);
        for (size_t id : in) {
          f.column_sources.insert(f.column_sources.end(),
                                  facts[id].column_sources.begin(),
                                  facts[id].column_sources.end());
        }
      } else {
        ColumnsFromUnion(n, input_union, &f);
      }
      f.staleness = input_staleness;
      f.card = in.empty() ? CardInterval::Unknown()
                          : facts[in[0]].card;
      for (size_t i = 1; i < in.size(); ++i) {
        f.card = CardInterval::Product(f.card, facts[in[i]].card);
      }
      if (in.size() < 2) f.card.lo = 0;
      for (size_t id : in) f.dead = f.dead || facts[id].dead;
      if (f.dead) f.card = CardInterval::Exact(0);
      // A joined row satisfied every predicate of both inputs.
      for (size_t id : in) {
        for (const auto& [fp, ctx] : facts[id].applied_preds) {
          f.applied_preds.insert({fp, ctx});
        }
      }
      break;
    }
    case IrNodeKind::kAggregate: {
      ColumnsFromUnion(n, input_union, &f);
      f.staleness = input_staleness;
      // The fold always emits exactly one row (COUNT over an empty
      // input is still a 0-count row), so a dead input does NOT make
      // the aggregate dead and its cardinality is exact.
      f.card = CardInterval::Exact(1);
      break;
    }
    case IrNodeKind::kMerge: {
      bool aligned = !in.empty();
      for (size_t id : in) {
        aligned = aligned &&
                  facts[id].column_sources.size() == n.columns.size();
      }
      if (aligned) {
        f.column_sources.assign(n.columns.size(), SourceSet{});
        for (size_t id : in) {
          for (size_t i = 0; i < n.columns.size(); ++i) {
            f.column_sources[i].JoinWith(facts[id].column_sources[i]);
          }
        }
      } else {
        ColumnsFromUnion(n, input_union, &f);
      }
      f.staleness = input_staleness;
      f.card = CardInterval::Exact(0);
      for (size_t id : in) f.card = CardInterval::Sum(f.card, facts[id].card);
      // A set merge dedups across strands: the minimum can collapse.
      if (n.set_merge) f.card.lo = 0;
      f.dead = !in.empty();
      for (size_t id : in) f.dead = f.dead && facts[id].dead;
      if (f.dead) f.card = CardInterval::Exact(0);
      // Must-analysis: a merged row passed only its own strand's
      // filters, so intersect, and only keep contexts that agree.
      if (!in.empty()) {
        f.applied_preds = facts[in[0]].applied_preds;
        for (size_t i = 1; i < in.size(); ++i) {
          const auto& other = facts[in[i]].applied_preds;
          for (auto it = f.applied_preds.begin();
               it != f.applied_preds.end();) {
            auto found = other.find(it->first);
            if (found == other.end() || found->second != it->second) {
              it = f.applied_preds.erase(it);
            } else {
              ++it;
            }
          }
        }
      }
      break;
    }
    case IrNodeKind::kTempWrite: {
      const NodeFacts* in0 = in.empty() ? nullptr : &facts[in[0]];
      if (in0 != nullptr &&
          in0->column_sources.size() == n.columns.size()) {
        f.column_sources = in0->column_sources;
      } else {
        ColumnsFromUnion(n, input_union, &f);
      }
      f.staleness = input_staleness;
      f.card = in0 != nullptr ? in0->card : CardInterval::Unknown();
      f.dead = in0 != nullptr && in0->dead;
      if (in0 != nullptr) f.applied_preds = in0->applied_preds;
      break;
    }
    case IrNodeKind::kReport: {
      ColumnsFromUnion(n, input_union, &f);
      // The report's staleness hull spans the user result and every
      // relevant-source strand: its width is the static bound of
      // inconsistency TRAC-V005 checks against the NOTICE promise.
      f.staleness = input_staleness;
      f.card = in.empty() ? CardInterval::Unknown() : facts[in[0]].card;
      break;
    }
  }

  f.sources = SourceSet{};
  for (const SourceSet& s : f.column_sources) f.sources.JoinWith(s);
  return f;
}

}  // namespace

std::string AbsintResult::Dump(const PlanIr& ir) const {
  std::string out = "absint '" + ir.label +
                    "': " + std::to_string(ir.nodes.size()) + " nodes, " +
                    (converged ? "fixpoint in " + std::to_string(iterations) +
                                     " iterations"
                               : "NOT CONVERGED after " +
                                     std::to_string(iterations) +
                                     " iterations") +
                    "\n";
  for (size_t i = 0; i < ir.nodes.size() && i < facts.size(); ++i) {
    const IrNode& n = ir.nodes[i];
    const NodeFacts& f = facts[i];
    out += "  node " + std::to_string(n.id) + " " +
           std::string(IrNodeKindToString(n.kind)) +
           ": card=" + f.card.ToString() + " stale=" + f.staleness.ToString() +
           " src=" + f.sources.ToString();
    if (f.dead) out += " dead";
    if (!f.applied_preds.empty()) {
      out += " preds=" + std::to_string(f.applied_preds.size());
    }
    out += "\n";
  }
  return out;
}

AbsintResult AnalyzeIr(const PlanIr& ir) {
  const size_t num_nodes = ir.nodes.size();
  AbsintResult res;
  res.facts.assign(num_nodes, NodeFacts{});
  for (size_t i = 0; i < num_nodes; ++i) {
    // Bottom: every node starts provably empty with no provenance.
    res.facts[i].column_sources.assign(ir.nodes[i].columns.size(),
                                       SourceSet{});
    res.facts[i].card = CardInterval::Exact(0);
  }

  // Forward adjacency (successors) from the backward input edges.
  std::vector<std::vector<size_t>> succs(num_nodes);
  for (const IrNode& n : ir.nodes) {
    for (size_t id : n.inputs) {
      if (id < num_nodes) succs[id].push_back(n.id);
    }
  }

  std::deque<size_t> worklist;
  std::vector<bool> queued(num_nodes, false);
  std::vector<size_t> updates(num_nodes, 0);
  for (size_t i = 0; i < num_nodes; ++i) {
    worklist.push_back(i);
    queued[i] = true;
  }

  const size_t cap = IterationCap(num_nodes);
  while (!worklist.empty() && res.iterations < cap) {
    const size_t id = worklist.front();
    worklist.pop_front();
    queued[id] = false;
    ++res.iterations;

    NodeFacts next = Transfer(ir, ir.nodes[id], res.facts);
    if (updates[id] >= kWidenAfterUpdates) next.card.Widen();
    if (next == res.facts[id]) continue;
    res.facts[id] = std::move(next);
    ++updates[id];
    for (size_t s : succs[id]) {
      if (!queued[s]) {
        worklist.push_back(s);
        queued[s] = true;
      }
    }
  }

  res.converged = worklist.empty();
  return res;
}

}  // namespace absint
}  // namespace trac
