#ifndef TRAC_ABSINT_DOMAINS_H_
#define TRAC_ABSINT_DOMAINS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace trac {
namespace absint {

/// The three lattice domains of the abstract interpreter over the plan
/// IR (absint/absint.h). Deliberately header-only: exec/planner.h takes
/// a CardInterval as a planning hint, and trac_ir consumes planner.h
/// header-only, so the domains must not pull in a new link dependency.

/// Finite-powerset domain of data-source provenance (Definition 2): the
/// set of source-declaring relations whose identity a column's values
/// may carry. Bottom is the empty set; join is set union; the domain is
/// finite (tables in the catalog), so joins trivially terminate.
struct SourceSet {
  /// Sorted, deduplicated table names.
  std::vector<std::string> tables;

  bool empty() const { return tables.empty(); }

  void Insert(const std::string& table) {
    auto it = std::lower_bound(tables.begin(), tables.end(), table);
    if (it == tables.end() || *it != table) tables.insert(it, table);
  }

  /// Lattice join: set union.
  void JoinWith(const SourceSet& other) {
    for (const std::string& t : other.tables) Insert(t);
  }

  bool SubsetOf(const SourceSet& other) const {
    return std::includes(other.tables.begin(), other.tables.end(),
                         tables.begin(), tables.end());
  }

  bool operator==(const SourceSet& other) const {
    return tables == other.tables;
  }
  bool operator!=(const SourceSet& other) const { return !(*this == other); }

  /// "{a,b}" ("{}" when empty).
  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < tables.size(); ++i) {
      if (i != 0) out += ',';
      out += tables[i];
    }
    out += '}';
    return out;
  }
};

/// Interval domain over recency timestamps (microseconds): the range of
/// source ages a node's rows can carry, per the catalog-declared ages in
/// the Heartbeat registry. `Width()` bounds the node's contribution to
/// the bound of inconsistency (max - min recency, Section 4). Bottom
/// (`bottom` true) means "no age information flows here".
struct StalenessInterval {
  bool bottom = true;
  int64_t lo = 0;
  int64_t hi = 0;

  static StalenessInterval Of(int64_t lo, int64_t hi) {
    StalenessInterval s;
    s.bottom = false;
    s.lo = lo;
    s.hi = hi;
    return s;
  }

  /// Lattice join: interval hull.
  void JoinWith(const StalenessInterval& other) {
    if (other.bottom) return;
    if (bottom) {
      *this = other;
      return;
    }
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
  }

  /// Max - min age: the static bound of inconsistency (0 at bottom).
  int64_t Width() const { return bottom ? 0 : hi - lo; }

  bool operator==(const StalenessInterval& other) const {
    if (bottom != other.bottom) return false;
    return bottom || (lo == other.lo && hi == other.hi);
  }
  bool operator!=(const StalenessInterval& other) const {
    return !(*this == other);
  }

  /// "[lo..hi]" or "bot".
  std::string ToString() const {
    if (bottom) return "bot";
    return "[" + std::to_string(lo) + ".." + std::to_string(hi) + "]";
  }
};

/// Interval domain over row counts with saturating arithmetic. `lo` is a
/// guaranteed minimum, `hi` a guaranteed maximum; `unbounded` widens the
/// upper end to +inf (the widening target when a fixpoint will not
/// settle, and the conservative answer for scans of unknown size).
struct CardInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool unbounded = false;

  static CardInterval Exact(uint64_t n) { return CardInterval{n, n, false}; }
  static CardInterval UpTo(uint64_t n) { return CardInterval{0, n, false}; }
  static CardInterval Unknown() { return CardInterval{0, 0, true}; }

  /// The node can provably produce no rows (TRAC-V006 trigger shape).
  bool DefinitelyEmpty() const { return !unbounded && hi == 0; }

  /// Lattice join: interval hull.
  void JoinWith(const CardInterval& other) {
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    unbounded = unbounded || other.unbounded;
  }

  /// Saturating sum (merge of disjoint strands).
  static CardInterval Sum(const CardInterval& a, const CardInterval& b) {
    CardInterval out;
    out.unbounded = a.unbounded || b.unbounded;
    out.lo = SatAdd(a.lo, b.lo);
    out.hi = out.unbounded ? 0 : SatAdd(a.hi, b.hi);
    return out;
  }

  /// Saturating product (join worst case: the cross product).
  static CardInterval Product(const CardInterval& a, const CardInterval& b) {
    CardInterval out;
    out.lo = 0;  // Any join may match nothing.
    out.unbounded = a.unbounded || b.unbounded;
    out.hi = out.unbounded ? 0 : SatMul(a.hi, b.hi);
    return out;
  }

  /// Widening: drop the upper bound entirely.
  void Widen() {
    hi = 0;
    unbounded = true;
  }

  bool operator==(const CardInterval& other) const {
    return lo == other.lo && hi == other.hi && unbounded == other.unbounded;
  }
  bool operator!=(const CardInterval& other) const {
    return !(*this == other);
  }

  /// "[lo..hi]" or "[lo..inf]".
  std::string ToString() const {
    std::string out = "[" + std::to_string(lo) + "..";
    out += unbounded ? "inf" : std::to_string(hi);
    return out + "]";
  }

  static uint64_t SatAdd(uint64_t a, uint64_t b) {
    uint64_t r;
    if (__builtin_add_overflow(a, b, &r)) {
      return std::numeric_limits<uint64_t>::max();
    }
    return r;
  }
  static uint64_t SatMul(uint64_t a, uint64_t b) {
    uint64_t r;
    if (__builtin_mul_overflow(a, b, &r)) {
      return std::numeric_limits<uint64_t>::max();
    }
    return r;
  }
};

}  // namespace absint
}  // namespace trac

#endif  // TRAC_ABSINT_DOMAINS_H_
