#ifndef TRAC_ABSINT_ABSINT_H_
#define TRAC_ABSINT_ABSINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "absint/domains.h"
#include "ir/plan_ir.h"

namespace trac {
namespace absint {

/// Abstract interpretation over the plan dataflow IR: a worklist
/// fixpoint engine propagating three lattice domains (absint/domains.h)
/// through every node —
///
///   provenance  per-column data-source sets (Definition 2), seeded at
///               scans from the scanned table, unioned through joins
///               and merges;
///   staleness   source-age intervals from the `age=` annotations the
///               lowering reads out of the Heartbeat registry; the
///               interval width reaching the report node is a static
///               bound of inconsistency that must dominate whatever the
///               runtime stats phase observes;
///   cardinality row-count intervals from `rows=` scan annotations,
///               narrowed by filters (`sel=zero` collapses to [0..0]),
///               multiplied through joins, summed at merges.
///
/// The results feed the TRAC-V005..V008 semantic verifier rules
/// (verify/verifier.h), the planner's dead-subplan short-circuit
/// (exec/planner.h PlanningHints::static_card), and the reporter's
/// static-bounds fields checked by the scenario-harness oracle.
struct NodeFacts {
  /// One provenance set per output column (aligned with
  /// IrNode::columns). Regular columns stay empty; data-source columns
  /// carry the source-declaring relations they may identify.
  std::vector<SourceSet> column_sources;
  /// Union over `column_sources`: every source relation whose identity
  /// any column of this node can carry.
  SourceSet sources;
  StalenessInterval staleness;
  CardInterval card;
  /// The node provably produces no rows because a statically
  /// unsatisfiable predicate (`sel=zero`) gates it. Deliberately NOT
  /// implied by an empty table (`rows=0`): emptiness at one snapshot is
  /// data, a refuted predicate is a plan property (TRAC-V006 fires only
  /// on the latter).
  bool dead = false;
  /// Must-set of predicate fingerprints already applied to every row
  /// reaching this node, each with the provenance set it was applied
  /// on. Filters union in their own fingerprint; merges intersect
  /// (a merged row passed only its own branch's filters); aggregates
  /// reset (output rows are not input rows).
  std::map<uint64_t, SourceSet> applied_preds;

  bool operator==(const NodeFacts& other) const {
    return column_sources == other.column_sources &&
           sources == other.sources && staleness == other.staleness &&
           card == other.card && dead == other.dead &&
           applied_preds == other.applied_preds;
  }
  bool operator!=(const NodeFacts& other) const { return !(*this == other); }
};

struct AbsintResult {
  /// One fact set per IR node (facts[i] belongs to node id i).
  std::vector<NodeFacts> facts;
  /// Worklist pops until the fixpoint settled.
  size_t iterations = 0;
  /// False only when the iteration cap fired before the facts settled
  /// (possible on ill-formed graphs with forward edges; a well-formed
  /// plan IR is a DAG in execution order and always converges).
  bool converged = false;

  /// Deterministic per-node fact table; appended to trac_verify output
  /// under --dump-absint and byte-pinned by the absint goldens.
  std::string Dump(const PlanIr& ir) const;
};

/// Runs the engine to fixpoint. Never fails: unknown annotations are
/// bottom/unbounded, out-of-range input edges are ignored (the
/// structural verifier rule TRAC-V000 owns rejecting those).
AbsintResult AnalyzeIr(const PlanIr& ir);

}  // namespace absint
}  // namespace trac

#endif  // TRAC_ABSINT_ABSINT_H_
