#ifndef TRAC_ABSINT_DEPS_H_
#define TRAC_ABSINT_DEPS_H_

#include <string>
#include <vector>

#include "absint/absint.h"
#include "ir/plan_ir.h"

namespace trac {
namespace absint {

/// Dependency domain over the plan IR: the statically extracted
/// footprint of everything a plan's *result* can depend on. This is
/// what makes a relevance-cache entry precisely invalidatable — the
/// cache (core/relevance.h) revalidates an entry by checking, per
/// footprint member, that the underlying state cannot have changed
/// since the entry's snapshot:
///
///   tables                per-table data epochs
///                         (Table::last_mutation_version),
///   sources               sniffer arrivals attributed to in-footprint
///                         data sources,
///   staleness_sensitive   whether the plan reads age-carrying state at
///                         all (a staleness-sensitive plan must carry
///                         the registry table in `tables`, TRAC-V015),
///
/// plus the catalog/schema epoch, which every footprint implicitly
/// contains (the names above only mean anything under one catalog).
/// Temp tables are collected separately: touching one makes a plan
/// session-local and hence cache-inadmissible (TRAC-V013), so
/// `temp_tables` is a witness list, not a revalidatable dependency.
struct DepFootprint {
  /// Base tables the plan reads or writes, sorted and deduplicated.
  std::vector<std::string> tables;
  /// Session temp tables (sys_temp_*) the plan touches, sorted.
  std::vector<std::string> temp_tables;
  /// Union of the provenance domain over every node: the data-source
  /// relations whose identity any value in the plan can carry.
  SourceSet sources;
  /// True when any read in the plan is age-annotated (`age=`) — i.e.
  /// the result quotes recency state that goes stale as sources beat.
  bool staleness_sensitive = false;

  bool ContainsTable(const std::string& table) const;

  /// Deterministic multi-line rendering, one "footprint <k>=<v>" line
  /// per component ('-' for empty); byte-pinned by the --cache-deps
  /// goldens.
  std::string ToString() const;
};

/// Extracts the footprint from `ir` using already-computed fixpoint
/// facts (`analysis` must come from AnalyzeIr over the same IR). Never
/// fails: malformed graphs simply yield the footprint of the nodes as
/// written, and TRAC-V000 owns rejecting them.
DepFootprint ExtractDeps(const PlanIr& ir, const AbsintResult& analysis);

/// Convenience overload running AnalyzeIr internally.
DepFootprint ExtractDeps(const PlanIr& ir);

}  // namespace absint
}  // namespace trac

#endif  // TRAC_ABSINT_DEPS_H_
