#include "absint/deps.h"

#include <algorithm>

namespace trac {
namespace absint {

namespace {

void SortUnique(std::vector<std::string>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

std::string JoinOrDash(const std::vector<std::string>& v) {
  if (v.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    out += v[i];
  }
  return out;
}

}  // namespace

bool DepFootprint::ContainsTable(const std::string& table) const {
  return std::binary_search(tables.begin(), tables.end(), table);
}

std::string DepFootprint::ToString() const {
  std::string out;
  out += "footprint tables=" + JoinOrDash(tables) + "\n";
  out += "footprint temps=" + JoinOrDash(temp_tables) + "\n";
  out += "footprint sources=" + sources.ToString() + "\n";
  out += std::string("footprint staleness=") +
         (staleness_sensitive ? "sensitive" : "none") + "\n";
  return out;
}

DepFootprint ExtractDeps(const PlanIr& ir, const AbsintResult& analysis) {
  DepFootprint fp;
  for (const IrNode& n : ir.nodes) {
    if (!n.table.empty()) {
      (IsTempTableName(n.table) ? fp.temp_tables : fp.tables)
          .push_back(n.table);
    }
    if (n.has_age) fp.staleness_sensitive = true;
    if (n.id < analysis.facts.size()) {
      fp.sources.JoinWith(analysis.facts[n.id].sources);
    }
  }
  SortUnique(&fp.tables);
  SortUnique(&fp.temp_tables);
  return fp;
}

DepFootprint ExtractDeps(const PlanIr& ir) {
  return ExtractDeps(ir, AnalyzeIr(ir));
}

}  // namespace absint
}  // namespace trac
