#include "storage/invariants.h"

#include <string>
#include <vector>

namespace trac {

[[nodiscard]] Status CheckShelfLogMonotonic(const Table& table) {
  const size_t n = table.num_versions();
  uint64_t prev_begin = 0;
  for (size_t i = 0; i < n; ++i) {
    const RowVersion& v = table.version(i);
    if (v.begin < prev_begin) {
      return Status::Internal(
          "shelf log not monotonic in table '" + table.schema().name() +
          "': version " + std::to_string(i) + " begins at " +
          std::to_string(v.begin) + " after a version beginning at " +
          std::to_string(prev_begin));
    }
    const uint64_t end = v.end.load(std::memory_order_acquire);
    if (end != RowVersion::kOpenVersion && end < v.begin) {
      return Status::Internal(
          "version " + std::to_string(i) + " of table '" +
          table.schema().name() + "' ends (" + std::to_string(end) +
          ") before it begins (" + std::to_string(v.begin) + ")");
    }
    prev_begin = v.begin;
  }
  return Status::OK();
}

[[nodiscard]] Status CheckSnapshotImmutable(const Table& table, Snapshot snap) {
  // First pass: capture the visible set. Bound the scan by the version
  // count at entry so a concurrent writer appending versions (which are
  // invisible to `snap` by construction) cannot make the two passes
  // cover different prefixes.
  const size_t n = table.num_versions();
  std::vector<size_t> first;
  table.ScanRange(snap, 0, n,
                  [&](size_t vidx, const Row&) { first.push_back(vidx); });

  for (size_t vidx : first) {
    const RowVersion& v = table.version(vidx);
    if (v.begin > snap.version) {
      return Status::Internal(
          "snapshot " + std::to_string(snap.version) + " of table '" +
          table.schema().name() + "' observed version " +
          std::to_string(vidx) + " beginning at " + std::to_string(v.begin) +
          " — a frozen snapshot may never see the future");
    }
    const uint64_t end = v.end.load(std::memory_order_acquire);
    if (end != RowVersion::kOpenVersion && end <= snap.version) {
      return Status::Internal(
          "snapshot " + std::to_string(snap.version) + " of table '" +
          table.schema().name() + "' observed version " +
          std::to_string(vidx) + " already closed at " + std::to_string(end));
    }
  }

  // Second pass: the frozen view must be repeatable no matter how much
  // history accumulated in between.
  std::vector<size_t> second;
  table.ScanRange(snap, 0, n,
                  [&](size_t vidx, const Row&) { second.push_back(vidx); });
  if (first != second) {
    return Status::Internal(
        "snapshot " + std::to_string(snap.version) + " of table '" +
        table.schema().name() + "' is not repeatable: two scans saw " +
        std::to_string(first.size()) + " and " +
        std::to_string(second.size()) + " visible versions");
  }
  return Status::OK();
}

[[nodiscard]] Status CheckDatabaseInvariants(const Database& db) {
  const Snapshot snap = db.LatestSnapshot();
  const size_t num_ids = db.catalog().NumIds();
  for (TableId id = 0; id < num_ids; ++id) {
    if (!db.catalog().IsLive(id)) continue;
    const Table* table = db.GetTable(id);
    if (table == nullptr) {
      return Status::Internal("live table id " + std::to_string(id) +
                              " has no storage");
    }
    TRAC_RETURN_IF_ERROR(CheckShelfLogMonotonic(*table));
    TRAC_RETURN_IF_ERROR(CheckSnapshotImmutable(*table, snap));
  }
  return Status::OK();
}

void DCheckDatabaseInvariants(const Database& db) {
#if defined(TRAC_DEBUG_INVARIANTS)
  const Status status = CheckDatabaseInvariants(db);
  TRAC_DCHECK(status.ok(), status.ToString().c_str());
#else
  (void)db;
#endif
}

}  // namespace trac
