#ifndef TRAC_STORAGE_SNAPSHOT_H_
#define TRAC_STORAGE_SNAPSHOT_H_

#include <cstdint>

namespace trac {

/// A consistent read view of the database: every committed write with
/// commit version <= `version` is visible, everything later is not.
///
/// Snapshots are the mechanism behind the paper's first requirement
/// (Section 3.2): the user query and its system-generated recency query
/// are evaluated against the *same* Snapshot, so the recency report is
/// transactionally consistent with the query result, exactly like the
/// MVCC behaviour the prototype leaned on in PostgreSQL.
struct Snapshot {
  uint64_t version = 0;
};

}  // namespace trac

#endif  // TRAC_STORAGE_SNAPSHOT_H_
