#ifndef TRAC_STORAGE_INDEX_H_
#define TRAC_STORAGE_INDEX_H_

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "types/value.h"

namespace trac {

/// An ordered secondary index over one column of a table, mapping column
/// values to row-version indexes. It plays the role of the B-tree indexes
/// the paper's evaluation created on the data source columns of the
/// Heartbeat, Activity and Routing tables.
///
/// The index is append-only: entries point at immutable row versions, and
/// MVCC visibility is checked by the caller against each version, so no
/// entry is ever removed. NULL keys are not indexed (SQL comparisons with
/// NULL never evaluate to true, so an index scan can never need them).
///
/// Concurrency: unlike the version log (whose publication point is the
/// Database version counter), a freshly inserted index entry is reachable
/// to concurrent readers immediately, so the underlying map is guarded by
/// a reader/writer lock — one shared acquisition per scan, one exclusive
/// acquisition per insert (writers are already serialized by Database).
/// An entry can therefore be observed before its commit version is
/// published; the caller's MVCC visibility check then rejects it, which
/// is the same verdict a pre-insert reader would reach.
///
/// Scans capture the matching entry set under the shared lock and invoke
/// the callback only after releasing it. Entries are never removed, so a
/// captured version index stays valid forever; holding no lock during
/// callbacks lets them freely scan tables, other indexes, or re-enter
/// this one (the executor's nested-loop joins do exactly that), with no
/// lock-order constraints between indexes. `mu_` is the innermost
/// storage rank (lock_rank::kOrderedIndex), and because callbacks run
/// lock-free the rank is never held across foreign code.
class OrderedIndex {
 public:
  explicit OrderedIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }
  size_t num_entries() const {
    ReaderMutexLock lock(&mu_);
    return map_.size();
  }

  void Insert(const Value& key, size_t version_index) {
    if (key.is_null()) return;
    WriterMutexLock lock(&mu_);
    map_.emplace(key, version_index);
  }

  /// Calls fn(version_index) for every entry with key == `key`.
  template <typename Fn>
  void ScanEqual(const Value& key, Fn fn) const {
    std::vector<size_t> matches;
    {
      ReaderMutexLock lock(&mu_);
      auto [lo, hi] = map_.equal_range(key);
      for (auto it = lo; it != hi; ++it) matches.push_back(it->second);
    }
    for (size_t vidx : matches) fn(vidx);
  }

  /// Calls fn(version_index) for every entry within the (optionally
  /// open-ended) range. Bounds are structural-order bounds; callers must
  /// only pass keys of the column's type.
  template <typename Fn>
  void ScanRange(const std::optional<Value>& lo, bool lo_inclusive,
                 const std::optional<Value>& hi, bool hi_inclusive,
                 Fn fn) const {
    std::vector<size_t> matches;
    {
      ReaderMutexLock lock(&mu_);
      auto it = lo.has_value()
                    ? (lo_inclusive ? map_.lower_bound(*lo)
                                    : map_.upper_bound(*lo))
                    : map_.begin();
      auto end = hi.has_value()
                     ? (hi_inclusive ? map_.upper_bound(*hi)
                                     : map_.lower_bound(*hi))
                     : map_.end();
      for (; it != end; ++it) matches.push_back(it->second);
    }
    for (size_t vidx : matches) fn(vidx);
  }

  /// Number of entries equal to `key` (visibility not considered); used
  /// by the planner's cardinality heuristic.
  size_t CountEqual(const Value& key) const {
    ReaderMutexLock lock(&mu_);
    auto [lo, hi] = map_.equal_range(key);
    return static_cast<size_t>(std::distance(lo, hi));
  }

  /// Number of distinct keys (visibility not considered): the NDV the
  /// optimizer's catalog statistics record for this column. One ordered
  /// walk; callers cache the result (catalog/stats.h).
  size_t NumDistinctKeys() const {
    ReaderMutexLock lock(&mu_);
    size_t distinct = 0;
    for (auto it = map_.begin(); it != map_.end();
         it = map_.upper_bound(it->first)) {
      ++distinct;
    }
    return distinct;
  }

 private:
  size_t column_;
  mutable SharedMutex mu_{lock_rank::kOrderedIndex, "OrderedIndex::mu_"};
  std::multimap<Value, size_t> map_ TRAC_GUARDED_BY(mu_);
};

}  // namespace trac

#endif  // TRAC_STORAGE_INDEX_H_
