#ifndef TRAC_STORAGE_INDEX_H_
#define TRAC_STORAGE_INDEX_H_

#include <cstddef>
#include <map>
#include <optional>

#include "types/value.h"

namespace trac {

/// An ordered secondary index over one column of a table, mapping column
/// values to row-version indexes. It plays the role of the B-tree indexes
/// the paper's evaluation created on the data source columns of the
/// Heartbeat, Activity and Routing tables.
///
/// The index is append-only: entries point at immutable row versions, and
/// MVCC visibility is checked by the caller against each version, so no
/// entry is ever removed. NULL keys are not indexed (SQL comparisons with
/// NULL never evaluate to true, so an index scan can never need them).
class OrderedIndex {
 public:
  explicit OrderedIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }
  size_t num_entries() const { return map_.size(); }

  void Insert(const Value& key, size_t version_index) {
    if (key.is_null()) return;
    map_.emplace(key, version_index);
  }

  /// Calls fn(version_index) for every entry with key == `key`.
  template <typename Fn>
  void ScanEqual(const Value& key, Fn fn) const {
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) fn(it->second);
  }

  /// Calls fn(version_index) for every entry within the (optionally
  /// open-ended) range. Bounds are structural-order bounds; callers must
  /// only pass keys of the column's type.
  template <typename Fn>
  void ScanRange(const std::optional<Value>& lo, bool lo_inclusive,
                 const std::optional<Value>& hi, bool hi_inclusive,
                 Fn fn) const {
    auto it = lo.has_value()
                  ? (lo_inclusive ? map_.lower_bound(*lo)
                                  : map_.upper_bound(*lo))
                  : map_.begin();
    auto end = hi.has_value()
                   ? (hi_inclusive ? map_.upper_bound(*hi)
                                   : map_.lower_bound(*hi))
                   : map_.end();
    for (; it != end; ++it) fn(it->second);
  }

  /// Number of entries equal to `key` (visibility not considered); used
  /// by the planner's cardinality heuristic.
  size_t CountEqual(const Value& key) const {
    auto [lo, hi] = map_.equal_range(key);
    return static_cast<size_t>(std::distance(lo, hi));
  }

 private:
  size_t column_;
  std::multimap<Value, size_t> map_;
};

}  // namespace trac

#endif  // TRAC_STORAGE_INDEX_H_
