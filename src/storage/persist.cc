#include "storage/persist.h"

#include <fstream>
#include <sstream>

namespace trac {

namespace {

constexpr std::string_view kMagic = "TRACDB";
constexpr int kFormatVersion = 1;

// ---- Value token encoding: a type tag, then a payload. Strings are
// ---- length-prefixed so arbitrary bytes (newlines, quotes) round-trip.

void WriteValue(std::ostream& out, const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      out << "N";
      break;
    case TypeId::kBool:
      out << "B" << (v.bool_val() ? 1 : 0);
      break;
    case TypeId::kInt64:
      out << "I" << v.int_val();
      break;
    case TypeId::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.double_val());
      out << "D" << buf;
      break;
    }
    case TypeId::kString:
      out << "S" << v.str_val().size() << ":" << v.str_val();
      break;
    case TypeId::kTimestamp:
      out << "T" << v.ts_val().micros();
      break;
  }
  out << "\n";
}

[[nodiscard]] Result<Value> ReadValue(std::istream& in) {
  auto fail = []() {
    return Status::InvalidArgument("corrupt value token in database file");
  };
  int tag = in.get();
  if (tag == EOF) return fail();
  switch (tag) {
    case 'N': {
      std::string rest;
      std::getline(in, rest);
      return Value::Null();
    }
    case 'B': {
      std::string rest;
      std::getline(in, rest);
      if (rest != "0" && rest != "1") return fail();
      return Value::Bool(rest == "1");
    }
    case 'I': {
      std::string rest;
      std::getline(in, rest);
      if (rest.empty()) return fail();
      return Value::Int(std::strtoll(rest.c_str(), nullptr, 10));
    }
    case 'D': {
      std::string rest;
      std::getline(in, rest);
      if (rest.empty()) return fail();
      return Value::Double(std::strtod(rest.c_str(), nullptr));
    }
    case 'T': {
      std::string rest;
      std::getline(in, rest);
      if (rest.empty()) return fail();
      return Value::Ts(Timestamp(std::strtoll(rest.c_str(), nullptr, 10)));
    }
    case 'S': {
      size_t len = 0;
      int c;
      bool any = false;
      while ((c = in.get()) != EOF && c != ':') {
        if (c < '0' || c > '9') return fail();
        len = len * 10 + static_cast<size_t>(c - '0');
        any = true;
      }
      if (!any || c == EOF) return fail();
      std::string payload(len, '\0');
      in.read(payload.data(), static_cast<std::streamsize>(len));
      if (static_cast<size_t>(in.gcount()) != len) return fail();
      if (in.get() != '\n') return fail();  // Terminator.
      return Value::Str(std::move(payload));
    }
    default:
      return fail();
  }
}

std::string_view TypeToken(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
    case TypeId::kTimestamp:
      return "TIMESTAMP";
    case TypeId::kNull:
      break;
  }
  return "NULL";
}

[[nodiscard]] Result<TypeId> TypeFromToken(std::string_view token) {
  if (token == "BOOL") return TypeId::kBool;
  if (token == "INT64") return TypeId::kInt64;
  if (token == "DOUBLE") return TypeId::kDouble;
  if (token == "STRING") return TypeId::kString;
  if (token == "TIMESTAMP") return TypeId::kTimestamp;
  return Status::InvalidArgument("unknown type token '" + std::string(token) +
                                 "'");
}

}  // namespace

[[nodiscard]] Status SaveDatabase(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << kMagic << " " << kFormatVersion << "\n";
  Snapshot snap = db.LatestSnapshot();

  for (const std::string& name : db.catalog().TableNames()) {
    TRAC_ASSIGN_OR_RETURN(TableId id, db.FindTable(name));
    const TableSchema& schema = db.catalog().schema(id);
    const Table* table = db.GetTable(id);

    out << "TABLE\n";
    WriteValue(out, Value::Str(schema.name()));
    out << "COLUMNS " << schema.num_columns() << "\n";
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const ColumnDef& col = schema.column(c);
      WriteValue(out, Value::Str(col.name));
      out << TypeToken(col.type) << " "
          << (schema.IsDataSourceColumn(c) ? 1 : 0) << " "
          << (col.domain.is_finite() ? col.domain.size() : 0) << " "
          << (col.domain.is_finite() ? 1 : 0) << "\n";
      if (col.domain.is_finite()) {
        for (const Value& v : col.domain.values()) WriteValue(out, v);
      }
    }
    out << "CHECKS " << schema.check_constraints().size() << "\n";
    for (const std::string& check : schema.check_constraints()) {
      WriteValue(out, Value::Str(check));
    }
    std::vector<size_t> indexed_columns;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (table->GetIndex(c) != nullptr) indexed_columns.push_back(c);
    }
    out << "INDEXES " << indexed_columns.size() << "\n";
    for (size_t c : indexed_columns) out << c << "\n";

    out << "ROWS " << table->CountVisible(snap) << "\n";
    Status row_status;
    table->Scan(snap, [&](size_t, const Row& row) {
      for (const Value& v : row) WriteValue(out, v);
    });
    TRAC_RETURN_IF_ERROR(row_status);
  }
  out << "END\n";
  out.flush();
  if (!out) {
    return Status::InvalidArgument("write to '" + path + "' failed");
  }
  return Status::OK();
}

[[nodiscard]] Status LoadDatabase(Database* db, const std::string& path) {
  if (db->catalog().NumIds() != 0) {
    return Status::InvalidArgument("LoadDatabase requires an empty database");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string magic;
  int version = 0;
  in >> magic >> version;
  in.get();  // Newline.
  if (magic != kMagic || version != kFormatVersion) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a TRACDB v1 file");
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line == "END") return Status::OK();
    if (line != "TABLE") {
      return Status::InvalidArgument("expected TABLE or END, got '" + line +
                                     "'");
    }
    TRAC_ASSIGN_OR_RETURN(Value name, ReadValue(in));

    std::string keyword;
    size_t ncols = 0;
    in >> keyword >> ncols;
    in.get();
    if (keyword != "COLUMNS") {
      return Status::InvalidArgument("expected COLUMNS");
    }
    std::vector<ColumnDef> columns;
    std::optional<std::string> ds_column;
    for (size_t c = 0; c < ncols; ++c) {
      TRAC_ASSIGN_OR_RETURN(Value col_name, ReadValue(in));
      std::string type_token;
      int is_ds = 0;
      size_t domain_size = 0;
      int finite = 0;
      in >> type_token >> is_ds >> domain_size >> finite;
      in.get();
      TRAC_ASSIGN_OR_RETURN(TypeId type, TypeFromToken(type_token));
      Domain domain = Domain::Infinite(type);
      if (finite != 0) {
        std::vector<Value> values;
        values.reserve(domain_size);
        for (size_t i = 0; i < domain_size; ++i) {
          TRAC_ASSIGN_OR_RETURN(Value v, ReadValue(in));
          values.push_back(std::move(v));
        }
        domain = Domain::Finite(type, std::move(values));
      }
      columns.emplace_back(col_name.str_val(), type, std::move(domain));
      if (is_ds != 0) ds_column = col_name.str_val();
    }

    TableSchema schema(name.str_val(), std::move(columns));
    if (ds_column.has_value()) {
      TRAC_RETURN_IF_ERROR(schema.SetDataSourceColumn(*ds_column));
    }

    size_t nchecks = 0;
    in >> keyword >> nchecks;
    in.get();
    if (keyword != "CHECKS") {
      return Status::InvalidArgument("expected CHECKS");
    }
    for (size_t i = 0; i < nchecks; ++i) {
      TRAC_ASSIGN_OR_RETURN(Value check, ReadValue(in));
      schema.AddCheckConstraint(check.str_val());
    }

    size_t nindexes = 0;
    in >> keyword >> nindexes;
    in.get();
    if (keyword != "INDEXES") {
      return Status::InvalidArgument("expected INDEXES");
    }
    std::vector<size_t> indexed_columns(nindexes);
    for (size_t i = 0; i < nindexes; ++i) {
      in >> indexed_columns[i];
      in.get();
    }

    size_t nrows = 0;
    in >> keyword >> nrows;
    in.get();
    if (keyword != "ROWS") {
      return Status::InvalidArgument("expected ROWS");
    }

    TRAC_ASSIGN_OR_RETURN(TableId id, db->CreateTable(std::move(schema)));
    const size_t arity = db->catalog().schema(id).num_columns();
    std::vector<Row> rows;
    rows.reserve(nrows);
    for (size_t r = 0; r < nrows; ++r) {
      Row row;
      row.reserve(arity);
      for (size_t c = 0; c < arity; ++c) {
        TRAC_ASSIGN_OR_RETURN(Value v, ReadValue(in));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
    TRAC_RETURN_IF_ERROR(db->InsertMany(id, std::move(rows)));
    const std::string& table_name = db->catalog().schema(id).name();
    for (size_t c : indexed_columns) {
      TRAC_RETURN_IF_ERROR(db->CreateIndex(
          table_name, db->catalog().schema(id).column(c).name));
    }
  }
  return Status::InvalidArgument("unexpected end of file (missing END)");
}

}  // namespace trac
