#ifndef TRAC_STORAGE_INVARIANTS_H_
#define TRAC_STORAGE_INVARIANTS_H_

#include "common/dcheck.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/table.h"

namespace trac {

/// Runtime validators for the storage layer's concurrency contract
/// (storage/database.h "Concurrency contract", storage/table.h).
///
/// Two tiers:
///  - Cheap O(1) checks are inlined at the point of mutation and armed by
///    the TRAC_DEBUG_INVARIANTS build flag (TRAC_DCHECK in
///    Table::AppendVersion, the lock-order registry inside trac::Mutex,
///    the Session confinement witness). They cost nothing when the flag
///    is off.
///  - The heavyweight validators below are *always* compiled and return
///    Status, so tests can call them in any build; DCheckInvariants()
///    wraps them in TRAC_DCHECK for debug-build assertions.

/// Verifies shelf-log monotonicity: version begins never decrease along
/// the log (commit versions only grow and the log is append-only), and
/// every published version is within the snapshot horizon of the log.
/// Safe to call concurrently with writers: it only examines the prefix
/// published at entry.
[[nodiscard]] Status CheckShelfLogMonotonic(const Table& table);

/// Verifies snapshot immutability: scanning `snap` twice yields the same
/// visible set (frozen snapshots are repeatable), and no visible version
/// has `begin` exceeding the snapshot version or a closed `end` at or
/// below it. Safe to call concurrently with writers — that is the point:
/// later commits must not perturb the frozen view.
[[nodiscard]] Status CheckSnapshotImmutable(const Table& table, Snapshot snap);

/// Runs both checks over every live table of `db` at its latest
/// snapshot. Intended as a test/debug sweep, not a hot-path call: cost
/// is O(total versions).
[[nodiscard]] Status CheckDatabaseInvariants(const Database& db);

/// TRAC_DCHECKs CheckDatabaseInvariants. No-op unless built with
/// TRAC_DEBUG_INVARIANTS.
void DCheckDatabaseInvariants(const Database& db);

/// The debug lock-order registry. Every ranked trac::Mutex /
/// trac::SharedMutex (see the lock_rank table in common/mutex.h)
/// registers acquisitions here when TRAC_DEBUG_INVARIANTS is on; an
/// acquisition whose rank is not strictly greater than every rank the
/// thread already holds aborts the process with a diagnostic naming both
/// locks. This turns a latent deadlock (needs the right interleaving)
/// into a deterministic failure on first occurrence.
class LockOrderRegistry {
 public:
  /// Number of ranked locks the calling thread holds right now. Exposed
  /// for tests asserting balanced acquire/release.
  static int HeldDepth() { return internal::LockRankHeldDepth(); }

  /// Manual registration, for code that synchronizes with primitives the
  /// wrappers cannot cover (e.g. external libraries). Prefer ranked
  /// trac::Mutex members, which call these automatically.
  static void Acquired(int rank, const char* name) {
    internal::LockRankAcquired(rank, name);
  }
  static void Released(int rank) { internal::LockRankReleased(rank); }
};

}  // namespace trac

#endif  // TRAC_STORAGE_INVARIANTS_H_
