#include "storage/table.h"

namespace trac {

size_t Table::AppendVersion(Row row, uint64_t begin_version) {
  const size_t vidx = versions_.size();
  versions_.push_back(RowVersion{begin_version, RowVersion::kOpenVersion,
                                 std::move(row)});
  const Row& stored = versions_.back().values;
  for (auto& [col, index] : indexes_) {
    index->Insert(stored[col], vidx);
  }
  return vidx;
}

size_t Table::CountVisible(Snapshot snap) const {
  size_t count = 0;
  for (const RowVersion& v : versions_) {
    if (Visible(v, snap)) ++count;
  }
  return count;
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema_->num_columns()) {
    return Status::InvalidArgument("index column out of range for table '" +
                                   schema_->name() + "'");
  }
  if (indexes_.count(column) != 0) {
    return Status::AlreadyExists("index already exists on column '" +
                                 schema_->column(column).name + "'");
  }
  auto index = std::make_unique<OrderedIndex>(column);
  for (size_t i = 0; i < versions_.size(); ++i) {
    index->Insert(versions_[i].values[column], i);
  }
  indexes_.emplace(column, std::move(index));
  return Status::OK();
}

const OrderedIndex* Table::GetIndex(size_t column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

}  // namespace trac
