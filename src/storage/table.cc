#include "storage/table.h"

#include "common/dcheck.h"

namespace trac {

Table::~Table() {
  for (auto& shelf : shelves_) {
    delete[] shelf.load(std::memory_order_relaxed);
  }
}

size_t Table::AppendVersion(Row row, uint64_t begin_version) {
  const size_t vidx = append_size_;
  TRAC_DCHECK(vidx == 0 || Locate(vidx - 1)->begin <= begin_version,
              "shelf log must be begin-monotonic: commit versions only "
              "grow, so a new version may never predate its predecessor");
  const size_t q = (vidx >> kBaseShelfBits) + 1;
  const size_t shelf = std::bit_width(q) - 1;
  if (shelves_[shelf].load(std::memory_order_relaxed) == nullptr) {
    // First version landing on this shelf: allocate it. The store may be
    // relaxed — readers cannot reach this shelf until published_size_
    // (released below) covers it.
    shelves_[shelf].store(new RowVersion[kBaseShelfSize << shelf],
                          std::memory_order_relaxed);
  }
  RowVersion* v = Locate(vidx);
  v->begin = begin_version;
  v->end.store(RowVersion::kOpenVersion, std::memory_order_relaxed);
  v->values = std::move(row);
  {
    ReaderMutexLock lock(&indexes_mu_);
    for (auto& [col, index] : indexes_) {
      index->Insert(v->values[col], vidx);
    }
  }
  append_size_ = vidx + 1;
  published_size_.store(append_size_, std::memory_order_release);
  return vidx;
}

size_t Table::CountVisible(Snapshot snap) const {
  size_t count = 0;
  Scan(snap, [&](size_t, const Row&) { ++count; });
  return count;
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema_->num_columns()) {
    return Status::InvalidArgument("index column out of range for table '" +
                                   schema_->name() + "'");
  }
  {
    ReaderMutexLock lock(&indexes_mu_);
    if (indexes_.count(column) != 0) {
      return Status::AlreadyExists("index already exists on column '" +
                                   schema_->column(column).name + "'");
    }
  }
  // Back-fill off to the side: no registry lock held, so concurrent
  // GetIndex callers are never blocked behind the O(versions) build.
  // The Database write mutex keeps the version log frozen meanwhile.
  auto index = std::make_unique<OrderedIndex>(column);
  const size_t n = num_versions();
  for (size_t i = 0; i < n; ++i) {
    index->Insert(version(i).values[column], i);
  }
  WriterMutexLock lock(&indexes_mu_);
  if (!indexes_.emplace(column, std::move(index)).second) {
    return Status::AlreadyExists("index already exists on column '" +
                                 schema_->column(column).name + "'");
  }
  return Status::OK();
}

const OrderedIndex* Table::GetIndex(size_t column) const {
  ReaderMutexLock lock(&indexes_mu_);
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<size_t> Table::IndexedColumns() const {
  ReaderMutexLock lock(&indexes_mu_);
  std::vector<size_t> columns;
  columns.reserve(indexes_.size());
  for (const auto& [column, index] : indexes_) columns.push_back(column);
  return columns;
}

}  // namespace trac
