#include "storage/database.h"

#include "telemetry/metrics.h"

namespace trac {

Database::Database()
    : metric_commits_(MetricRegistry::Default().GetCounter(
          "trac_storage_commits_total",
          "Committed mutations (auto-commit statements)")),
      metric_row_versions_(MetricRegistry::Default().GetCounter(
          "trac_storage_row_versions_total",
          "Row versions appended to shelf logs (MVCC log growth)")),
      metric_temp_tables_(MetricRegistry::Default().GetCounter(
          "trac_storage_temp_tables_created_total",
          "Session temp tables (sys_temp_*) created by report sessions")),
      metric_snapshot_epoch_(MetricRegistry::Default().GetGauge(
          "trac_storage_snapshot_epoch",
          "Latest committed snapshot version (commit counter)")),
      metric_tables_(MetricRegistry::Default().GetGauge(
          "trac_storage_tables", "Live tables in the catalog")) {}

Result<TableId> Database::CreateTable(TableSchema schema) {
  MutexLock lock(&write_mu_);
  const bool is_temp = schema.name().rfind("sys_temp_", 0) == 0;
  TRAC_ASSIGN_OR_RETURN(TableId id, catalog_.CreateTable(std::move(schema)));
  // Resolve the catalog schema pointer before taking tables_mu_: the
  // global lock order is catalog (kCatalog) before the table registry
  // (kTableRegistry), never the reverse.
  const TableSchema* table_schema = &catalog_.schema(id);
  {
    WriterMutexLock tables_lock(&tables_mu_);
    tables_.push_back(std::make_unique<Table>(id, table_schema));
  }
  metric_tables_->Add(1);
  if (is_temp) metric_temp_tables_->Increment();
  return id;
}

Status Database::DropTable(std::string_view name) {
  MutexLock lock(&write_mu_);
  const Status status = catalog_.DropTable(name);
  if (status.ok()) metric_tables_->Add(-1);
  return status;
}

Status Database::PrepareRow(const TableSchema& schema, Row* row) {
  // Normalize int64 values stored in double columns before validation so
  // index keys and comparisons see a single representation per column.
  if (row->size() == schema.num_columns()) {
    for (size_t i = 0; i < row->size(); ++i) {
      if (schema.column(i).type == TypeId::kDouble &&
          (*row)[i].type() == TypeId::kInt64) {
        (*row)[i] = Value::Double(static_cast<double>((*row)[i].int_val()));
      }
    }
  }
  return schema.ValidateRow(*row);
}

Status Database::Insert(std::string_view table, Row row) {
  TRAC_ASSIGN_OR_RETURN(TableId id, FindTable(table));
  MutexLock lock(&write_mu_);
  Table* t = GetTable(id);
  TRAC_RETURN_IF_ERROR(PrepareRow(t->schema(), &row));
  const uint64_t commit =
      version_counter_.load(std::memory_order_relaxed) + 1;
  t->AppendVersion(std::move(row), commit);
  t->MarkMutated(commit);
  version_counter_.store(commit, std::memory_order_release);
  metric_commits_->Increment();
  metric_row_versions_->Increment();
  metric_snapshot_epoch_->Set(static_cast<int64_t>(commit));
  return Status::OK();
}

Status Database::InsertMany(TableId table, std::vector<Row> rows) {
  MutexLock lock(&write_mu_);
  if (!catalog_.IsLive(table)) {
    return Status::NotFound("table id is not live");
  }
  Table* t = GetTable(table);
  for (Row& row : rows) {
    TRAC_RETURN_IF_ERROR(PrepareRow(t->schema(), &row));
  }
  const uint64_t commit =
      version_counter_.load(std::memory_order_relaxed) + 1;
  for (Row& row : rows) {
    t->AppendVersion(std::move(row), commit);
  }
  if (!rows.empty()) t->MarkMutated(commit);
  version_counter_.store(commit, std::memory_order_release);
  metric_commits_->Increment();
  metric_row_versions_->Add(static_cast<int64_t>(rows.size()));
  metric_snapshot_epoch_->Set(static_cast<int64_t>(commit));
  return Status::OK();
}

Result<int> Database::UpdateWhere(std::string_view table,
                                  const std::function<bool(const Row&)>& pred,
                                  const std::function<void(Row*)>& mutate) {
  TRAC_ASSIGN_OR_RETURN(TableId id, FindTable(table));
  MutexLock lock(&write_mu_);
  Table* t = GetTable(id);
  const uint64_t commit =
      version_counter_.load(std::memory_order_relaxed) + 1;
  Snapshot snap{commit - 1};

  // Collect matches first: AppendVersion invalidates nothing (shelves are
  // stable), but we must not rescan versions we just appended.
  std::vector<size_t> matches;
  t->Scan(snap, [&](size_t vidx, const Row& row) {
    if (pred(row)) matches.push_back(vidx);
  });
  for (size_t vidx : matches) {
    Row updated = t->version(vidx).values;
    mutate(&updated);
    TRAC_RETURN_IF_ERROR(PrepareRow(t->schema(), &updated));
    t->CloseVersion(vidx, commit);
    t->AppendVersion(std::move(updated), commit);
  }
  if (!matches.empty()) t->MarkMutated(commit);
  version_counter_.store(commit, std::memory_order_release);
  metric_commits_->Increment();
  metric_row_versions_->Add(static_cast<int64_t>(matches.size()));
  metric_snapshot_epoch_->Set(static_cast<int64_t>(commit));
  return static_cast<int>(matches.size());
}

Result<int> Database::DeleteWhere(
    std::string_view table, const std::function<bool(const Row&)>& pred) {
  TRAC_ASSIGN_OR_RETURN(TableId id, FindTable(table));
  MutexLock lock(&write_mu_);
  Table* t = GetTable(id);
  const uint64_t commit =
      version_counter_.load(std::memory_order_relaxed) + 1;
  Snapshot snap{commit - 1};
  int deleted = 0;
  t->Scan(snap, [&](size_t vidx, const Row& row) {
    if (pred(row)) {
      t->CloseVersion(vidx, commit);
      ++deleted;
    }
  });
  if (deleted > 0) t->MarkMutated(commit);
  version_counter_.store(commit, std::memory_order_release);
  metric_commits_->Increment();
  metric_snapshot_epoch_->Set(static_cast<int64_t>(commit));
  return deleted;
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  TRAC_ASSIGN_OR_RETURN(TableId id, FindTable(table));
  MutexLock lock(&write_mu_);
  Table* t = GetTable(id);
  std::optional<size_t> col = t->schema().FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no column '" + std::string(column) +
                            "' in table '" + std::string(table) + "'");
  }
  const Status status = t->CreateIndex(*col);
  // An index changes the structures plans are admitted against, so it
  // participates in the catalog epoch the relevance cache watches.
  if (status.ok()) catalog_.BumpEpoch();
  return status;
}

}  // namespace trac
