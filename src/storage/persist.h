#ifndef TRAC_STORAGE_PERSIST_H_
#define TRAC_STORAGE_PERSIST_H_

#include <string>

#include "common/result.h"
#include "storage/database.h"

namespace trac {

/// Saves a consistent snapshot of the database to `path`: every live
/// table's schema (columns, types, finite domains, the data source
/// column designation, CHECK constraints), its secondary indexes, and
/// all rows visible at the latest snapshot. History (old MVCC versions)
/// is not persisted — the file is a checkpoint, not a log.
///
/// Part of the "historical record" role the paper assigns the central
/// database: a monitoring session can be checkpointed and reopened
/// later (or elsewhere) with its recency state intact, since the
/// Heartbeat table round-trips like any other table.
///
/// The format is a version-tagged, length-prefixed binary-safe text
/// format; strings round-trip byte-exactly (including newlines).
[[nodiscard]] Status SaveDatabase(const Database& db, const std::string& path);

/// Loads a file written by SaveDatabase into `db`, which must be empty
/// (no tables ever created). Indexes are rebuilt; all rows of one table
/// load under a single commit version.
[[nodiscard]] Status LoadDatabase(Database* db, const std::string& path);

}  // namespace trac

#endif  // TRAC_STORAGE_PERSIST_H_
