// OrderedIndex is header-only (its scans are templates); this TU anchors
// the storage library's source list.
#include "storage/index.h"
