#ifndef TRAC_STORAGE_DATABASE_H_
#define TRAC_STORAGE_DATABASE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/snapshot.h"
#include "storage/table.h"

namespace trac {

/// The embedded database: a catalog plus MVCC tables plus a monotonically
/// increasing commit-version counter.
///
/// Concurrency contract: any number of readers may hold Snapshots and
/// scan concurrently with a single writer; writers are serialized by an
/// internal mutex. A write becomes visible atomically when the version
/// counter advances past its commit version — readers that captured
/// their Snapshot earlier never observe a partially applied write.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates a table from `schema`. AlreadyExists on name clash.
  Result<TableId> CreateTable(TableSchema schema);

  /// Drops a table by name (its storage is kept until shutdown, but it
  /// disappears from the catalog and from name lookups).
  Status DropTable(std::string_view name);

  Result<TableId> FindTable(std::string_view name) const {
    return catalog_.GetTableId(name);
  }

  Table* GetTable(TableId id) { return tables_[id].get(); }
  const Table* GetTable(TableId id) const { return tables_[id].get(); }

  /// Read view of everything committed so far.
  Snapshot LatestSnapshot() const {
    return Snapshot{version_counter_.load(std::memory_order_acquire)};
  }

  /// Inserts one row (auto-commit). The row is validated against the
  /// schema and numerically normalized (int literals into double columns).
  Status Insert(std::string_view table, Row row);

  /// Bulk load: inserts all rows under a single commit version. Much
  /// faster than row-at-a-time and atomically visible.
  Status InsertMany(TableId table, std::vector<Row> rows);

  /// Updates every currently visible row matching `pred` by applying
  /// `mutate` to a copy (auto-commit). Returns the number updated.
  Result<int> UpdateWhere(std::string_view table,
                          const std::function<bool(const Row&)>& pred,
                          const std::function<void(Row*)>& mutate);

  /// Deletes every currently visible row matching `pred` (auto-commit).
  /// Returns the number deleted.
  Result<int> DeleteWhere(std::string_view table,
                          const std::function<bool(const Row&)>& pred);

  /// Creates an ordered index on `table`.`column`.
  Status CreateIndex(std::string_view table, std::string_view column);

 private:
  /// Validates and normalizes `row` in place against `schema`.
  static Status PrepareRow(const TableSchema& schema, Row* row);

  Catalog catalog_;
  std::deque<std::unique_ptr<Table>> tables_;  // Indexed by TableId.
  std::atomic<uint64_t> version_counter_{0};
  std::mutex write_mu_;
};

}  // namespace trac

#endif  // TRAC_STORAGE_DATABASE_H_
