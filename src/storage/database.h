#ifndef TRAC_STORAGE_DATABASE_H_
#define TRAC_STORAGE_DATABASE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/snapshot.h"
#include "storage/table.h"

namespace trac {

class Counter;
class Gauge;

/// The embedded database: a catalog plus MVCC tables plus a monotonically
/// increasing commit-version counter.
///
/// ## Concurrency contract (reader/writer memory ordering)
///
/// Any number of reader threads may take Snapshots and evaluate queries
/// concurrently with each other and with writers. Writers (Insert,
/// InsertMany, UpdateWhere, DeleteWhere, CreateTable, DropTable,
/// CreateIndex) are serialized by `write_mu_`; there is never more than
/// one mutation in flight.
///
/// Snapshot isolation hangs off a single release/acquire edge on
/// `version_counter_`:
///
///  1. The writer fully applies a commit — constructs row versions,
///     closes superseded ones (atomic RowVersion::end), updates
///     secondary indexes — all tagged with commit version c, while the
///     counter still reads c - 1.
///  2. It then publishes with `version_counter_.store(c, release)`.
///  3. A reader's `LatestSnapshot()` does `load(acquire)`. If it reads
///     >= c, the release/acquire pair makes every write of step 1
///     visible to that reader; if it reads < c, MVCC visibility checks
///     (`begin <= snap < end`) reject the half-ordered commit's versions
///     even when some of its stores happen to be visible early (the
///     version log publishes row storage with its own release edge, and
///     RowVersion::end is atomic — see table.h).
///
/// Consequences readers may rely on:
///  - A Snapshot is frozen: scanning it yields the same rows no matter
///    how much later history accumulates (torn reads are impossible —
///    rows are immutable after publication).
///  - Commits are atomic: a snapshot sees all of commit c or none of it.
///  - Commit order is the counter order, so per-writer program order is
///    observed as a prefix: if a thread's k-th write is visible, so are
///    its first k-1.
///
/// Out of contract: dropping or re-creating a table concurrently with
/// readers that still resolve it by name (name lookup and row access are
/// separate steps; the storage stays alive, but name-based lookups may
/// spuriously fail mid-drop), and in-place schema mutation (CHECK
/// constraints) concurrent with binding. Both are setup-time operations.
/// Creating *new* tables (e.g. session temp tables) concurrently with
/// readers is supported: the catalog and the table registry are guarded
/// by reader/writer locks.
class Database {
 public:
  Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates a table from `schema`. AlreadyExists on name clash.
  [[nodiscard]] Result<TableId> CreateTable(TableSchema schema)
      TRAC_EXCLUDES(write_mu_, tables_mu_);

  /// Drops a table by name (its storage is kept until shutdown, but it
  /// disappears from the catalog and from name lookups).
  [[nodiscard]] Status DropTable(std::string_view name) TRAC_EXCLUDES(write_mu_);

  [[nodiscard]] Result<TableId> FindTable(std::string_view name) const {
    return catalog_.GetTableId(name);
  }

  /// Table storage by id. The returned pointer is stable for the
  /// Database's lifetime (dropped tables keep their storage).
  Table* GetTable(TableId id) TRAC_EXCLUDES(tables_mu_) {
    ReaderMutexLock lock(&tables_mu_);
    return tables_[id].get();
  }
  const Table* GetTable(TableId id) const TRAC_EXCLUDES(tables_mu_) {
    ReaderMutexLock lock(&tables_mu_);
    return tables_[id].get();
  }

  /// Read view of everything committed so far.
  Snapshot LatestSnapshot() const {
    return Snapshot{version_counter_.load(std::memory_order_acquire)};
  }

  /// Inserts one row (auto-commit). The row is validated against the
  /// schema and numerically normalized (int literals into double columns).
  [[nodiscard]] Status Insert(std::string_view table, Row row) TRAC_EXCLUDES(write_mu_);

  /// Bulk load: inserts all rows under a single commit version. Much
  /// faster than row-at-a-time and atomically visible.
  [[nodiscard]] Status InsertMany(TableId table, std::vector<Row> rows)
      TRAC_EXCLUDES(write_mu_);

  /// Updates every currently visible row matching `pred` by applying
  /// `mutate` to a copy (auto-commit). Returns the number updated.
  [[nodiscard]] Result<int> UpdateWhere(std::string_view table,
                          const std::function<bool(const Row&)>& pred,
                          const std::function<void(Row*)>& mutate)
      TRAC_EXCLUDES(write_mu_);

  /// Deletes every currently visible row matching `pred` (auto-commit).
  /// Returns the number deleted.
  [[nodiscard]] Result<int> DeleteWhere(std::string_view table,
                          const std::function<bool(const Row&)>& pred)
      TRAC_EXCLUDES(write_mu_);

  /// Creates an ordered index on `table`.`column`. Setup-time: must not
  /// run concurrently with readers of the same table (see table.h).
  [[nodiscard]] Status CreateIndex(std::string_view table, std::string_view column)
      TRAC_EXCLUDES(write_mu_);

  /// Allocates the next id for session temp-table names. Monotonic and
  /// unique per Database (every allocation is observed by exactly one
  /// caller), so concurrently reporting sessions never collide — the
  /// naming contract Session::CreateTempTable documents.
  uint64_t NextTempTableId() {
    return temp_name_counter_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Allocates the next session id (nonzero, unique per Database). The
  /// plan verifier's session-confinement rule (TRAC-V002) identifies a
  /// report session's temp nodes by this id; 0 is reserved for "no
  /// session".
  uint64_t NextSessionId() {
    return session_counter_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  /// Validates and normalizes `row` in place against `schema`.
  [[nodiscard]] static Status PrepareRow(const TableSchema& schema, Row* row);

  Catalog catalog_;
  /// Guards growth of tables_ (CreateTable) against concurrent GetTable.
  /// Table pointers themselves are stable for the Database's lifetime.
  mutable SharedMutex tables_mu_{lock_rank::kTableRegistry,
                                 "Database::tables_mu_"};
  /// Indexed by TableId.
  std::deque<std::unique_ptr<Table>> tables_ TRAC_GUARDED_BY(tables_mu_);
  std::atomic<uint64_t> version_counter_{0};
  std::atomic<uint64_t> temp_name_counter_{1000};
  std::atomic<uint64_t> session_counter_{1};
  /// Serializes all mutations; outermost in the global lock order.
  Mutex write_mu_{lock_rank::kDatabaseWrite, "Database::write_mu_"};

  /// Storage-layer telemetry, resolved once at construction from the
  /// process-default registry (registry-owned; never null). Updated only
  /// under write_mu_, scraped lock-free.
  Counter* metric_commits_;
  Counter* metric_row_versions_;
  Counter* metric_temp_tables_;
  Gauge* metric_snapshot_epoch_;
  Gauge* metric_tables_;
};

}  // namespace trac

#endif  // TRAC_STORAGE_DATABASE_H_
