#ifndef TRAC_STORAGE_TABLE_H_
#define TRAC_STORAGE_TABLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "common/result.h"
#include "storage/index.h"
#include "storage/snapshot.h"
#include "types/value.h"

namespace trac {

/// One version of one logical row. A version is visible to a snapshot s
/// iff begin <= s.version and (end == kOpen or end > s.version).
struct RowVersion {
  uint64_t begin = 0;
  uint64_t end = 0;  ///< kOpenVersion while the version is current.
  Row values;

  static constexpr uint64_t kOpenVersion = 0;
};

/// An in-memory, multi-versioned heap table.
///
/// Storage is an append-only deque of RowVersion (a deque so references
/// stay valid while a writer appends concurrently with readers — the
/// single-writer/multi-reader contract is enforced by Database). Updates
/// close the old version and append a new one; deletes just close.
/// Secondary OrderedIndexes are maintained on append.
class Table {
 public:
  /// `schema` must outlive the table; the Database passes a pointer into
  /// its catalog, which is the single source of truth for schemas (so
  /// post-creation schema changes like AddCheckConstraint are seen
  /// everywhere).
  Table(TableId id, const TableSchema* schema) : id_(id), schema_(schema) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const TableSchema& schema() const { return *schema_; }

  size_t num_versions() const { return versions_.size(); }
  const RowVersion& version(size_t i) const { return versions_[i]; }

  bool Visible(const RowVersion& v, Snapshot snap) const {
    return v.begin <= snap.version &&
           (v.end == RowVersion::kOpenVersion || v.end > snap.version);
  }

  /// Appends a new version visible from `begin_version` on. The row must
  /// already be validated/normalized (Database does both). Returns the
  /// version index. Updates all indexes.
  size_t AppendVersion(Row row, uint64_t begin_version);

  /// Ends the visibility of version `vidx` at `end_version`.
  void CloseVersion(size_t vidx, uint64_t end_version) {
    versions_[vidx].end = end_version;
  }

  /// Calls fn(version_index, row) for every version visible in `snap`.
  template <typename Fn>
  void Scan(Snapshot snap, Fn fn) const {
    const size_t n = versions_.size();
    for (size_t i = 0; i < n; ++i) {
      const RowVersion& v = versions_[i];
      if (Visible(v, snap)) fn(i, v.values);
    }
  }

  /// Like Scan, but fn returns bool; returning false stops the scan
  /// (used for LIMIT/EXISTS evaluation).
  template <typename Fn>
  void ScanWhile(Snapshot snap, Fn fn) const {
    const size_t n = versions_.size();
    for (size_t i = 0; i < n; ++i) {
      const RowVersion& v = versions_[i];
      if (Visible(v, snap) && !fn(i, v.values)) return;
    }
  }

  /// Number of visible rows in `snap` (O(versions)).
  size_t CountVisible(Snapshot snap) const;

  /// Creates an ordered index on column `column`, back-filling existing
  /// versions. AlreadyExists if one is already defined on that column.
  Status CreateIndex(size_t column);

  /// The index on `column`, or nullptr.
  const OrderedIndex* GetIndex(size_t column) const;

 private:
  TableId id_;
  const TableSchema* schema_;
  std::deque<RowVersion> versions_;
  std::map<size_t, std::unique_ptr<OrderedIndex>> indexes_;
};

}  // namespace trac

#endif  // TRAC_STORAGE_TABLE_H_
