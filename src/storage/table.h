#ifndef TRAC_STORAGE_TABLE_H_
#define TRAC_STORAGE_TABLE_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/index.h"
#include "storage/snapshot.h"
#include "types/value.h"

namespace trac {

/// One version of one logical row. A version is visible to a snapshot s
/// iff begin <= s.version and (end == kOpen or end > s.version).
///
/// Concurrency: `begin` and `values` are immutable once the version is
/// published (they are written before the version becomes reachable, see
/// Table below). `end` is the only field mutated after publication —
/// updates/deletes close a version long after readers may hold a
/// reference to it — so it is atomic. A racing reader sees either
/// kOpenVersion or the closing commit version c; both classify the same
/// way for every snapshot older than c, and snapshots at or after c
/// observe the close through the Database version-counter release/acquire
/// edge (see the Database contract).
struct RowVersion {
  static constexpr uint64_t kOpenVersion = 0;

  uint64_t begin = 0;
  std::atomic<uint64_t> end{kOpenVersion};
  Row values;
};

/// An in-memory, multi-versioned heap table.
///
/// Storage is an append-only version log laid out in geometrically
/// growing shelves (512, 1024, 2048, ... versions). Shelves are never
/// moved or freed while the table lives, so a published RowVersion has a
/// stable address forever — readers can hold references across writer
/// appends, and no append ever relocates existing versions (the property
/// the previous std::deque gave us, now with race-free growth metadata).
///
/// Reader/writer contract (enforced together with Database):
///  - Exactly one writer at a time (Database serializes all mutations
///    behind its write mutex).
///  - The writer fully constructs a version (begin, end, values) and
///    only then publishes it with a release store of `published_size_`;
///    readers load `published_size_` with acquire before touching any
///    version, so they never observe a partially built row.
///  - Index maintenance happens before publication of the Database
///    version counter; OrderedIndex additionally guards its internal map
///    (see index.h) because index entries become reachable to concurrent
///    readers as soon as they are inserted.
///  - Updates close the old version via the atomic RowVersion::end.
/// Under this contract every Scan over a fixed Snapshot is repeatable:
/// the visible set is fully determined by the snapshot version.
///
/// CreateIndex back-fills a fresh index structure off to the side and
/// only then registers it under `indexes_mu_` (reader/writer lock), so
/// concurrent GetIndex callers see either no index or a fully built one.
/// Versions appended during the back-fill race are the writer's own
/// problem: CreateIndex runs under the Database write mutex, so no
/// versions can be appended concurrently. Runtime appends into existing
/// indexes are safe (OrderedIndex guards its map).
class Table {
 public:
  /// `schema` must outlive the table; the Database passes a pointer into
  /// its catalog, which is the single source of truth for schemas (so
  /// post-creation schema changes like AddCheckConstraint are seen
  /// everywhere).
  Table(TableId id, const TableSchema* schema) : id_(id), schema_(schema) {}
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const TableSchema& schema() const { return *schema_; }

  /// Number of published versions. Acquire-load: every version with
  /// index < num_versions() is fully constructed and safe to read.
  size_t num_versions() const {
    return published_size_.load(std::memory_order_acquire);
  }
  const RowVersion& version(size_t i) const { return *Locate(i); }

  bool Visible(const RowVersion& v, Snapshot snap) const {
    const uint64_t end = v.end.load(std::memory_order_acquire);
    return v.begin <= snap.version &&
           (end == RowVersion::kOpenVersion || end > snap.version);
  }

  /// Appends a new version visible from `begin_version` on. The row must
  /// already be validated/normalized (Database does both). Returns the
  /// version index. Updates all indexes. Writer-only (Database mutex).
  size_t AppendVersion(Row row, uint64_t begin_version);

  /// Ends the visibility of version `vidx` at `end_version`.
  /// Writer-only (Database mutex).
  void CloseVersion(size_t vidx, uint64_t end_version) {
    Locate(vidx)->end.store(end_version, std::memory_order_release);
  }

  /// Records that commit `commit_version` mutated this table (appends
  /// AND closes — deletes close versions without appending, so
  /// num_versions() alone cannot witness them). Writer-only (Database
  /// mutex); the Database calls it once per mutating commit.
  void MarkMutated(uint64_t commit_version) {
    last_mutation_version_.store(commit_version, std::memory_order_release);
  }

  /// Commit version of the last mutation that touched this table (0 =
  /// never mutated) — the table's data epoch. For snapshots s1 <= s2, if
  /// last_mutation_version() <= s1 then the visible row set at s1 and s2
  /// is identical: every version's begin/end is a commit that marked the
  /// table, so none lies in (s1, s2]. The relevance cache's per-table
  /// invalidation check (core/relevance.h) relies on exactly this.
  uint64_t last_mutation_version() const {
    return last_mutation_version_.load(std::memory_order_acquire);
  }

  /// Calls fn(version_index, row) for every version visible in `snap`.
  template <typename Fn>
  void Scan(Snapshot snap, Fn fn) const {
    ScanRange(snap, 0, num_versions(), fn);
  }

  /// Scan restricted to version indexes in [begin_idx, end_idx): the
  /// partitioning hook for parallel readers — disjoint ranges cover
  /// disjoint versions, and the union over a cover of [0, num_versions())
  /// equals a full Scan at the same snapshot. `end_idx` is clamped to
  /// the published size.
  template <typename Fn>
  void ScanRange(Snapshot snap, size_t begin_idx, size_t end_idx,
                 Fn fn) const {
    const size_t n = std::min(end_idx, num_versions());
    for (size_t i = begin_idx; i < n; ++i) {
      const RowVersion& v = *Locate(i);
      if (Visible(v, snap)) fn(i, v.values);
    }
  }

  /// Like Scan, but fn returns bool; returning false stops the scan
  /// (used for LIMIT/EXISTS evaluation).
  template <typename Fn>
  void ScanWhile(Snapshot snap, Fn fn) const {
    const size_t n = num_versions();
    for (size_t i = 0; i < n; ++i) {
      const RowVersion& v = *Locate(i);
      if (Visible(v, snap) && !fn(i, v.values)) return;
    }
  }

  /// Number of visible rows in `snap` (O(versions)).
  size_t CountVisible(Snapshot snap) const;

  /// Creates an ordered index on column `column`, back-filling existing
  /// versions. AlreadyExists if one is already defined on that column.
  /// Writer-only (Database mutex).
  [[nodiscard]] Status CreateIndex(size_t column) TRAC_EXCLUDES(indexes_mu_);

  /// The index on `column`, or nullptr. The returned pointer is stable
  /// for the table's lifetime (indexes are never dropped).
  const OrderedIndex* GetIndex(size_t column) const
      TRAC_EXCLUDES(indexes_mu_);

  /// Columns with an ordered index, ascending; the profile set for the
  /// optimizer's catalog statistics (catalog/stats.h).
  std::vector<size_t> IndexedColumns() const TRAC_EXCLUDES(indexes_mu_);

 private:
  /// Shelf layout: shelf s holds kBaseShelfSize << s versions, so the
  /// log grows without ever reallocating. 40 shelves cover > 5 * 10^14
  /// versions.
  static constexpr size_t kBaseShelfBits = 9;
  static constexpr size_t kBaseShelfSize = size_t{1} << kBaseShelfBits;
  static constexpr size_t kNumShelves = 40;

  /// Maps a version index to its (shelf, offset) slot. Reads the shelf
  /// pointer with a relaxed load: the pointer store is sequenced before
  /// the release store of published_size_ that made index `i` valid, so
  /// the acquire load in num_versions() already ordered it.
  RowVersion* Locate(size_t i) const {
    const size_t q = (i >> kBaseShelfBits) + 1;
    const size_t shelf = std::bit_width(q) - 1;
    const size_t offset = i - (kBaseShelfSize << shelf) + kBaseShelfSize;
    return shelves_[shelf].load(std::memory_order_relaxed) + offset;
  }

  TableId id_;
  const TableSchema* schema_;

  std::array<std::atomic<RowVersion*>, kNumShelves> shelves_{};
  /// Count of fully constructed versions (readers' bound), release-
  /// published by the single writer after each append.
  std::atomic<size_t> published_size_{0};
  /// Commit version of the last mutation (append or close) that touched
  /// this table; see MarkMutated / last_mutation_version().
  std::atomic<uint64_t> last_mutation_version_{0};
  /// Writer-private mirror of published_size_ (avoids reloading).
  /// Accessed only under the Database write mutex, which the analysis
  /// cannot see from here; the single-writer contract covers it.
  size_t append_size_ = 0;

  /// Guards the registry of secondary indexes: GetIndex (readers, any
  /// thread) vs CreateIndex registration (writer). The OrderedIndex
  /// objects themselves are internally synchronized and never removed.
  mutable SharedMutex indexes_mu_{lock_rank::kTableIndexes,
                                  "Table::indexes_mu_"};
  std::map<size_t, std::unique_ptr<OrderedIndex>> indexes_
      TRAC_GUARDED_BY(indexes_mu_);
};

}  // namespace trac

#endif  // TRAC_STORAGE_TABLE_H_
