#include "expr/bound_expr.h"

namespace trac {

BoundExprPtr BoundExpr::Clone() const {
  auto out = std::make_unique<BoundExpr>();
  out->kind = kind;
  out->column = column;
  out->literal = literal;
  out->op = op;
  out->negated = negated;
  out->list = list;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

void BoundExpr::ForEachColumnRef(
    const std::function<void(const BoundColumnRef&)>& fn) const {
  if (kind == ExprKind::kColumnRef) fn(column);
  for (const auto& c : children) c->ForEachColumnRef(fn);
}

uint64_t BoundExpr::ReferencedRelations() const {
  uint64_t mask = 0;
  ForEachColumnRef([&](const BoundColumnRef& ref) {
    if (ref.rel < 64) mask |= (uint64_t{1} << ref.rel);
  });
  return mask;
}

void BoundExpr::RewriteColumnRefs(
    const std::function<void(BoundColumnRef*)>& fn) {
  if (kind == ExprKind::kColumnRef) fn(&column);
  for (auto& c : children) c->RewriteColumnRefs(fn);
}

BoundExprPtr MakeBoundColumn(BoundColumnRef ref) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kColumnRef;
  e->column = ref;
  return e;
}

BoundExprPtr MakeBoundLiteral(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

BoundExprPtr MakeBoundCompare(CompareOp op, BoundExprPtr l, BoundExprPtr r) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kCompare;
  e->op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

BoundExprPtr MakeBoundInList(BoundExprPtr lhs, std::vector<Value> values,
                             bool negated) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kInList;
  e->negated = negated;
  e->list = std::move(values);
  e->children.push_back(std::move(lhs));
  return e;
}

BoundExprPtr MakeBoundBetween(BoundExprPtr ex, BoundExprPtr lo, BoundExprPtr hi,
                              bool negated) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kBetween;
  e->negated = negated;
  e->children.push_back(std::move(ex));
  e->children.push_back(std::move(lo));
  e->children.push_back(std::move(hi));
  return e;
}

BoundExprPtr MakeBoundIsNull(BoundExprPtr ex, bool negated) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kIsNull;
  e->negated = negated;
  e->children.push_back(std::move(ex));
  return e;
}

BoundExprPtr MakeBoundAnd(std::vector<BoundExprPtr> children) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kAnd;
  e->children = std::move(children);
  return e;
}

BoundExprPtr MakeBoundOr(std::vector<BoundExprPtr> children) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kOr;
  e->children = std::move(children);
  return e;
}

BoundExprPtr MakeBoundNot(BoundExprPtr child) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = ExprKind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

BoundQuery BoundQuery::Clone() const {
  BoundQuery out;
  out.relations = relations;
  out.distinct = distinct;
  out.count_star = count_star;
  out.aggregates = aggregates;
  out.outputs = outputs;
  if (where != nullptr) out.where = where->Clone();
  out.order_by = order_by;
  out.limit = limit;
  return out;
}

std::string BoundQuery::ExprToSql(const Database& db,
                                  const BoundExpr& e) const {
  auto col_name = [&](const BoundColumnRef& ref) {
    const BoundTableRef& rel = relations[ref.rel];
    const TableSchema& schema = db.catalog().schema(rel.table_id);
    return rel.display_name + "." + schema.column(ref.col).name;
  };
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return col_name(e.column);
    case ExprKind::kLiteral:
      return e.literal.ToSqlLiteral();
    case ExprKind::kCompare:
      return ExprToSql(db, *e.children[0]) + " " +
             std::string(CompareOpToString(e.op)) + " " +
             ExprToSql(db, *e.children[1]);
    case ExprKind::kInList: {
      std::string out = ExprToSql(db, *e.children[0]);
      out += e.negated ? " NOT IN (" : " IN (";
      for (size_t i = 0; i < e.list.size(); ++i) {
        if (i != 0) out += ", ";
        out += e.list[i].ToSqlLiteral();
      }
      out += ")";
      return out;
    }
    case ExprKind::kBetween:
      return ExprToSql(db, *e.children[0]) +
             (e.negated ? " NOT BETWEEN " : " BETWEEN ") +
             ExprToSql(db, *e.children[1]) + " AND " +
             ExprToSql(db, *e.children[2]);
    case ExprKind::kIsNull:
      return ExprToSql(db, *e.children[0]) +
             (e.negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::string sep = e.kind == ExprKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += sep;
        out += ExprToSql(db, *e.children[i]);
      }
      out += ")";
      return out;
    }
    case ExprKind::kNot:
      return "NOT (" + ExprToSql(db, *e.children[0]) + ")";
  }
  return "?";
}

std::string BoundQuery::ToSql(const Database& db) const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (count_star) {
    out += "COUNT(*)";
  } else if (!aggregates.empty()) {
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (i != 0) out += ", ";
      const Aggregate& agg = aggregates[i];
      if (agg.fn == AggFn::kCountStar) {
        out += "COUNT(*)";
        continue;
      }
      const BoundTableRef& rel = relations[agg.arg.rel];
      const TableSchema& schema = db.catalog().schema(rel.table_id);
      out += std::string(AggFnToString(agg.fn)) + "(" + rel.display_name +
             "." + schema.column(agg.arg.col).name + ")";
    }
  } else {
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (i != 0) out += ", ";
      const OutputColumn& oc = outputs[i];
      const BoundTableRef& rel = relations[oc.ref.rel];
      const TableSchema& schema = db.catalog().schema(rel.table_id);
      out += rel.display_name + "." + schema.column(oc.ref.col).name;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i != 0) out += ", ";
    const TableSchema& schema = db.catalog().schema(relations[i].table_id);
    out += schema.name();
    if (relations[i].display_name != schema.name()) {
      out += " " + relations[i].display_name;
    }
  }
  if (where != nullptr) out += " WHERE " + ExprToSql(db, *where);
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i != 0) out += ", ";
      const OrderKey& key = order_by[i];
      const BoundTableRef& rel = relations[key.ref.rel];
      const TableSchema& schema = db.catalog().schema(rel.table_id);
      out += rel.display_name + "." + schema.column(key.ref.col).name;
      if (key.descending) out += " DESC";
    }
  }
  if (limit != 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

}  // namespace trac
