#ifndef TRAC_EXPR_CONSTRAINTS_H_
#define TRAC_EXPR_CONSTRAINTS_H_

#include <vector>

#include "common/result.h"
#include "expr/bound_expr.h"
#include "storage/database.h"

namespace trac {

/// Parses and binds a table's CHECK constraints (declared as SQL
/// predicate text on the TableSchema) against a single-relation scope
/// whose slot 0 is the table itself.
///
/// Constraints implement Section 3.4's predicate-form schema constraints:
/// the relevance analyzer conjoins them with the user predicate
/// (Q' = Q ∧ C), which can only *sharpen* the relevant-source set —
/// tuples violating a constraint never occur in a legal instance, so
/// they must not make sources relevant. The monitor layer also enforces
/// them on shipped rows.
[[nodiscard]] Result<std::vector<BoundExprPtr>> BindCheckConstraints(const Database& db,
                                                       TableId table);

/// Evaluates every CHECK constraint of `table` against `row`. SQL CHECK
/// semantics: a constraint is violated only when it evaluates to FALSE
/// (NULL/Unknown passes). Returns InvalidArgument naming the violated
/// constraint.
[[nodiscard]] Status CheckRowConstraints(const Database& db, TableId table, const Row& row);

}  // namespace trac

#endif  // TRAC_EXPR_CONSTRAINTS_H_
