#ifndef TRAC_EXPR_BOUND_EXPR_H_
#define TRAC_EXPR_BOUND_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "types/value.h"

namespace trac {

/// A name-resolved column reference: relation slot `rel` within the
/// query's FROM list, column `col` within that relation's schema.
struct BoundColumnRef {
  size_t rel = 0;
  size_t col = 0;
  TypeId type = TypeId::kNull;

  friend bool operator==(const BoundColumnRef& a, const BoundColumnRef& b) {
    return a.rel == b.rel && a.col == b.col;
  }
  friend bool operator<(const BoundColumnRef& a, const BoundColumnRef& b) {
    return a.rel != b.rel ? a.rel < b.rel : a.col < b.col;
  }
};

/// Bound expression tree: the binder's output. Mirrors Expr but with
/// resolved column references and type-checked comparisons.
struct BoundExpr {
  ExprKind kind;

  BoundColumnRef column;        ///< kColumnRef
  Value literal;                ///< kLiteral
  CompareOp op = CompareOp::kEq;  ///< kCompare
  bool negated = false;         ///< kInList / kBetween / kIsNull
  std::vector<Value> list;      ///< kInList
  std::vector<std::unique_ptr<BoundExpr>> children;

  std::unique_ptr<BoundExpr> Clone() const;

  /// Visits every column reference in the tree.
  void ForEachColumnRef(
      const std::function<void(const BoundColumnRef&)>& fn) const;

  /// Bitmask of relation slots referenced (relations beyond 63 are not
  /// supported, far beyond the SPJ queries this library targets).
  uint64_t ReferencedRelations() const;

  /// Applies `fn` to every column reference in the tree (mutating).
  void RewriteColumnRefs(const std::function<void(BoundColumnRef*)>& fn);
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

BoundExprPtr MakeBoundColumn(BoundColumnRef ref);
BoundExprPtr MakeBoundLiteral(Value v);
BoundExprPtr MakeBoundCompare(CompareOp op, BoundExprPtr l, BoundExprPtr r);
BoundExprPtr MakeBoundInList(BoundExprPtr lhs, std::vector<Value> values,
                             bool negated);
BoundExprPtr MakeBoundBetween(BoundExprPtr e, BoundExprPtr lo, BoundExprPtr hi,
                              bool negated);
BoundExprPtr MakeBoundIsNull(BoundExprPtr e, bool negated);
BoundExprPtr MakeBoundAnd(std::vector<BoundExprPtr> children);
BoundExprPtr MakeBoundOr(std::vector<BoundExprPtr> children);
BoundExprPtr MakeBoundNot(BoundExprPtr child);

/// One FROM-list slot of a bound query.
struct BoundTableRef {
  TableId table_id = 0;
  std::string display_name;  ///< Alias if given, else the table name.
};

/// A bound single-block SPJ query, ready for planning/execution and for
/// relevance analysis.
struct BoundQuery {
  std::vector<BoundTableRef> relations;
  bool distinct = false;
  /// Legacy fast path: the select list is exactly COUNT(*). Aggregate
  /// queries in general populate `aggregates` instead of `outputs`.
  bool count_star = false;

  struct Aggregate {
    AggFn fn = AggFn::kCountStar;
    BoundColumnRef arg;  ///< Unused for kCountStar.
    std::string name;
  };
  /// Aggregate select list; mutually exclusive with `outputs`.
  std::vector<Aggregate> aggregates;

  struct OutputColumn {
    BoundColumnRef ref;
    std::string name;
  };
  /// Projection; empty iff count_star.
  std::vector<OutputColumn> outputs;

  BoundExprPtr where;  ///< May be null (no predicate).

  struct OrderKey {
    BoundColumnRef ref;
    bool descending = false;
  };
  /// ORDER BY keys; applied to the materialized output.
  std::vector<OrderKey> order_by;
  /// Output row cap; 0 means unlimited.
  size_t limit = 0;

  BoundQuery Clone() const;

  /// Renders back to SQL (relation slots printed as their display names,
  /// qualified). `db` supplies schemas for column names.
  std::string ToSql(const Database& db) const;

  /// Renders a bound expression in the context of this query's FROM list.
  std::string ExprToSql(const Database& db, const BoundExpr& e) const;
};

}  // namespace trac

#endif  // TRAC_EXPR_BOUND_EXPR_H_
