#ifndef TRAC_EXPR_BINDER_H_
#define TRAC_EXPR_BINDER_H_

#include <string_view>

#include "common/result.h"
#include "expr/bound_expr.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace trac {

/// Resolves a parsed SELECT against the database catalog: table and
/// column names, select-list expansion (`*`), literal type coercion
/// (int -> double, string -> timestamp when compared with a timestamp
/// column), and comparison type checking.
[[nodiscard]] Result<BoundQuery> BindSelect(const Database& db, const SelectStmt& stmt);

/// Convenience: parse + bind in one call.
[[nodiscard]] Result<BoundQuery> BindSql(const Database& db, std::string_view sql);

/// Binds a stand-alone predicate in the scope of an existing query's
/// FROM list (used for schema constraints and tests).
[[nodiscard]] Result<BoundExprPtr> BindPredicateInScope(const Database& db,
                                          const BoundQuery& scope,
                                          const Expr& expr);

/// Coerces a literal to `target` where a lossless conversion exists
/// (int64 -> double, string -> timestamp); NULL passes through.
[[nodiscard]] Result<Value> CoerceLiteral(Value v, TypeId target);

}  // namespace trac

#endif  // TRAC_EXPR_BINDER_H_
