#include "expr/constraints.h"

#include "expr/binder.h"
#include "expr/evaluator.h"
#include "sql/parser.h"

namespace trac {

[[nodiscard]] Result<std::vector<BoundExprPtr>> BindCheckConstraints(const Database& db,
                                                       TableId table) {
  const TableSchema& schema = db.catalog().schema(table);
  std::vector<BoundExprPtr> bound;
  if (schema.check_constraints().empty()) return bound;

  BoundQuery scope;
  scope.relations.push_back(BoundTableRef{table, schema.name()});
  for (const std::string& text : schema.check_constraints()) {
    TRAC_ASSIGN_OR_RETURN(ExprPtr parsed, ParsePredicate(text));
    Result<BoundExprPtr> expr = BindPredicateInScope(db, scope, *parsed);
    if (!expr.ok()) {
      return Status::InvalidArgument("constraint '" + text + "' on table '" +
                                     schema.name() +
                                     "': " + expr.status().ToString());
    }
    bound.push_back(std::move(*expr));
  }
  return bound;
}

[[nodiscard]] Status CheckRowConstraints(const Database& db, TableId table, const Row& row) {
  const TableSchema& schema = db.catalog().schema(table);
  if (schema.check_constraints().empty()) return Status::OK();
  TRAC_ASSIGN_OR_RETURN(std::vector<BoundExprPtr> constraints,
                        BindCheckConstraints(db, table));
  TupleView tuple = {&row};
  for (size_t i = 0; i < constraints.size(); ++i) {
    TRAC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*constraints[i], tuple));
    if (v == TriBool::kFalse) {
      return Status::InvalidArgument(
          "row violates CHECK constraint '" +
          schema.check_constraints()[i] + "' on table '" + schema.name() +
          "'");
    }
  }
  return Status::OK();
}

}  // namespace trac
