#include "expr/evaluator.h"

namespace trac {

namespace {

[[nodiscard]] Result<TriBool> CompareValues(CompareOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return TriBool::kUnknown;
  TRAC_ASSIGN_OR_RETURN(int cmp, Value::Compare(a, b));
  bool result = false;
  switch (op) {
    case CompareOp::kEq:
      result = cmp == 0;
      break;
    case CompareOp::kNe:
      result = cmp != 0;
      break;
    case CompareOp::kLt:
      result = cmp < 0;
      break;
    case CompareOp::kLe:
      result = cmp <= 0;
      break;
    case CompareOp::kGt:
      result = cmp > 0;
      break;
    case CompareOp::kGe:
      result = cmp >= 0;
      break;
  }
  return result ? TriBool::kTrue : TriBool::kFalse;
}

}  // namespace

[[nodiscard]] Result<Value> EvalScalar(const BoundExpr& e, const TupleView& tuple) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      const Row* row = tuple[e.column.rel];
      if (row == nullptr) {
        return Status::Internal("column references an unbound relation slot");
      }
      return (*row)[e.column.col];
    }
    case ExprKind::kLiteral:
      return e.literal;
    default:
      return Status::Internal("EvalScalar called on a predicate node");
  }
}

[[nodiscard]] Result<TriBool> EvalPredicate(const BoundExpr& e, const TupleView& tuple) {
  switch (e.kind) {
    case ExprKind::kCompare: {
      TRAC_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*e.children[0], tuple));
      TRAC_ASSIGN_OR_RETURN(Value rhs, EvalScalar(*e.children[1], tuple));
      return CompareValues(e.op, lhs, rhs);
    }
    case ExprKind::kInList: {
      TRAC_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*e.children[0], tuple));
      if (lhs.is_null()) return TriBool::kUnknown;
      bool any_unknown = false;
      for (const Value& v : e.list) {
        if (v.is_null()) {
          any_unknown = true;
          continue;
        }
        TRAC_ASSIGN_OR_RETURN(TriBool eq, CompareValues(CompareOp::kEq, lhs, v));
        if (eq == TriBool::kTrue) {
          return e.negated ? TriBool::kFalse : TriBool::kTrue;
        }
        if (eq == TriBool::kUnknown) any_unknown = true;
      }
      if (any_unknown) return TriBool::kUnknown;
      return e.negated ? TriBool::kTrue : TriBool::kFalse;
    }
    case ExprKind::kBetween: {
      TRAC_ASSIGN_OR_RETURN(Value v, EvalScalar(*e.children[0], tuple));
      TRAC_ASSIGN_OR_RETURN(Value lo, EvalScalar(*e.children[1], tuple));
      TRAC_ASSIGN_OR_RETURN(Value hi, EvalScalar(*e.children[2], tuple));
      TRAC_ASSIGN_OR_RETURN(TriBool ge, CompareValues(CompareOp::kGe, v, lo));
      TRAC_ASSIGN_OR_RETURN(TriBool le, CompareValues(CompareOp::kLe, v, hi));
      TriBool both = TriAnd(ge, le);
      return e.negated ? TriNot(both) : both;
    }
    case ExprKind::kIsNull: {
      TRAC_ASSIGN_OR_RETURN(Value v, EvalScalar(*e.children[0], tuple));
      bool is_null = v.is_null();
      return (is_null != e.negated) ? TriBool::kTrue : TriBool::kFalse;
    }
    case ExprKind::kAnd: {
      TriBool acc = TriBool::kTrue;
      for (const auto& c : e.children) {
        TRAC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*c, tuple));
        acc = TriAnd(acc, v);
        if (acc == TriBool::kFalse) return acc;  // Short circuit.
      }
      return acc;
    }
    case ExprKind::kOr: {
      TriBool acc = TriBool::kFalse;
      for (const auto& c : e.children) {
        TRAC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*c, tuple));
        acc = TriOr(acc, v);
        if (acc == TriBool::kTrue) return acc;  // Short circuit.
      }
      return acc;
    }
    case ExprKind::kNot: {
      TRAC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*e.children[0], tuple));
      return TriNot(v);
    }
    case ExprKind::kLiteral: {
      // A bare boolean literal (TRUE/FALSE/NULL) used as a predicate.
      if (e.literal.is_null()) return TriBool::kUnknown;
      if (e.literal.type() == TypeId::kBool) {
        return e.literal.bool_val() ? TriBool::kTrue : TriBool::kFalse;
      }
      return Status::TypeError("non-boolean literal used as a predicate");
    }
    case ExprKind::kColumnRef:
      return Status::TypeError("bare column reference used as a predicate");
  }
  return Status::Internal("unhandled expression kind in EvalPredicate");
}

}  // namespace trac
