#ifndef TRAC_EXPR_EVALUATOR_H_
#define TRAC_EXPR_EVALUATOR_H_

#include <vector>

#include "common/result.h"
#include "expr/bound_expr.h"
#include "types/value.h"

namespace trac {

/// SQL three-valued logic.
enum class TriBool : uint8_t { kFalse = 0, kUnknown = 1, kTrue = 2 };

inline TriBool TriNot(TriBool v) {
  return v == TriBool::kUnknown
             ? TriBool::kUnknown
             : (v == TriBool::kTrue ? TriBool::kFalse : TriBool::kTrue);
}
inline TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown) {
    return TriBool::kUnknown;
  }
  return TriBool::kTrue;
}
inline TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown) {
    return TriBool::kUnknown;
  }
  return TriBool::kFalse;
}
inline bool IsTrue(TriBool v) { return v == TriBool::kTrue; }

/// The evaluation context: one row per relation slot of the BoundQuery.
/// Slots not yet joined may be nullptr only if the expression does not
/// reference them.
using TupleView = std::vector<const Row*>;

/// Evaluates a scalar (column reference or literal).
[[nodiscard]] Result<Value> EvalScalar(const BoundExpr& e, const TupleView& tuple);

/// Evaluates a predicate under SQL three-valued logic: any comparison
/// with NULL is Unknown; a WHERE clause keeps a tuple iff the result is
/// kTrue.
[[nodiscard]] Result<TriBool> EvalPredicate(const BoundExpr& e, const TupleView& tuple);

}  // namespace trac

#endif  // TRAC_EXPR_EVALUATOR_H_
