#include "expr/binder.h"

#include "common/str_util.h"
#include "sql/parser.h"

namespace trac {

namespace {

/// Stateless helper owning the binding context (catalog + FROM scope).
class Binder {
 public:
  Binder(const Database& db, const BoundQuery& scope)
      : db_(db), scope_(scope) {}

  [[nodiscard]] Result<BoundExprPtr> Bind(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kColumnRef:
        return BindColumn(e);
      case ExprKind::kLiteral:
        return MakeBoundLiteral(e.literal);
      case ExprKind::kCompare:
        return BindCompare(e);
      case ExprKind::kInList:
        return BindInList(e);
      case ExprKind::kBetween:
        return BindBetween(e);
      case ExprKind::kIsNull: {
        TRAC_ASSIGN_OR_RETURN(BoundExprPtr child, Bind(*e.children[0]));
        return MakeBoundIsNull(std::move(child), e.negated);
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        std::vector<BoundExprPtr> children;
        children.reserve(e.children.size());
        for (const auto& c : e.children) {
          TRAC_ASSIGN_OR_RETURN(BoundExprPtr b, Bind(*c));
          children.push_back(std::move(b));
        }
        return e.kind == ExprKind::kAnd ? MakeBoundAnd(std::move(children))
                                        : MakeBoundOr(std::move(children));
      }
      case ExprKind::kNot: {
        TRAC_ASSIGN_OR_RETURN(BoundExprPtr child, Bind(*e.children[0]));
        return MakeBoundNot(std::move(child));
      }
    }
    return Status::Internal("unhandled expression kind in binder");
  }

  [[nodiscard]] Result<BoundColumnRef> ResolveColumn(const std::string& qualifier,
                                       const std::string& column) const {
    std::optional<BoundColumnRef> found;
    for (size_t r = 0; r < scope_.relations.size(); ++r) {
      const BoundTableRef& rel = scope_.relations[r];
      if (!qualifier.empty() &&
          !EqualsIgnoreCaseAscii(rel.display_name, qualifier)) {
        continue;
      }
      const TableSchema& schema = db_.catalog().schema(rel.table_id);
      std::optional<size_t> col = schema.FindColumn(column);
      if (!col.has_value()) continue;
      if (found.has_value()) {
        return Status::BindError("ambiguous column reference '" + column +
                                 "'");
      }
      found = BoundColumnRef{r, *col, schema.column(*col).type};
    }
    if (!found.has_value()) {
      std::string name = qualifier.empty() ? column : qualifier + "." + column;
      return Status::BindError("cannot resolve column '" + name + "'");
    }
    return *found;
  }

 private:
  [[nodiscard]] Result<BoundExprPtr> BindColumn(const Expr& e) {
    TRAC_ASSIGN_OR_RETURN(BoundColumnRef ref, ResolveColumn(e.table, e.column));
    return MakeBoundColumn(ref);
  }

  static TypeId ExprType(const BoundExpr& e) {
    if (e.kind == ExprKind::kColumnRef) return e.column.type;
    if (e.kind == ExprKind::kLiteral) return e.literal.type();
    return TypeId::kBool;  // Predicates.
  }

  [[nodiscard]] Result<BoundExprPtr> BindCompare(const Expr& e) {
    TRAC_ASSIGN_OR_RETURN(BoundExprPtr lhs, Bind(*e.children[0]));
    TRAC_ASSIGN_OR_RETURN(BoundExprPtr rhs, Bind(*e.children[1]));
    // Literal coercion toward the column side (string -> timestamp,
    // int -> double).
    if (lhs->kind == ExprKind::kLiteral && rhs->kind == ExprKind::kColumnRef) {
      TRAC_ASSIGN_OR_RETURN(lhs->literal, CoerceLiteral(std::move(lhs->literal),
                                                        rhs->column.type));
    } else if (rhs->kind == ExprKind::kLiteral &&
               lhs->kind == ExprKind::kColumnRef) {
      TRAC_ASSIGN_OR_RETURN(rhs->literal, CoerceLiteral(std::move(rhs->literal),
                                                        lhs->column.type));
    }
    TypeId lt = ExprType(*lhs), rt = ExprType(*rhs);
    bool lhs_null = lhs->kind == ExprKind::kLiteral && lhs->literal.is_null();
    bool rhs_null = rhs->kind == ExprKind::kLiteral && rhs->literal.is_null();
    if (!lhs_null && !rhs_null && !TypesComparable(lt, rt)) {
      return Status::BindError(
          "cannot compare " + std::string(TypeIdToString(lt)) + " with " +
          std::string(TypeIdToString(rt)));
    }
    return MakeBoundCompare(e.op, std::move(lhs), std::move(rhs));
  }

  [[nodiscard]] Result<BoundExprPtr> BindInList(const Expr& e) {
    TRAC_ASSIGN_OR_RETURN(BoundExprPtr lhs, Bind(*e.children[0]));
    TypeId lt = ExprType(*lhs);
    std::vector<Value> values;
    values.reserve(e.list.size());
    for (const Value& v : e.list) {
      TRAC_ASSIGN_OR_RETURN(Value coerced, CoerceLiteral(v, lt));
      if (!coerced.is_null() && !TypesComparable(coerced.type(), lt)) {
        return Status::BindError("IN-list value " + v.ToSqlLiteral() +
                                 " is not comparable with " +
                                 std::string(TypeIdToString(lt)));
      }
      values.push_back(std::move(coerced));
    }
    return MakeBoundInList(std::move(lhs), std::move(values), e.negated);
  }

  [[nodiscard]] Result<BoundExprPtr> BindBetween(const Expr& e) {
    TRAC_ASSIGN_OR_RETURN(BoundExprPtr ex, Bind(*e.children[0]));
    TRAC_ASSIGN_OR_RETURN(BoundExprPtr lo, Bind(*e.children[1]));
    TRAC_ASSIGN_OR_RETURN(BoundExprPtr hi, Bind(*e.children[2]));
    TypeId t = ExprType(*ex);
    for (BoundExprPtr* bound : {&lo, &hi}) {
      if ((*bound)->kind == ExprKind::kLiteral) {
        TRAC_ASSIGN_OR_RETURN((*bound)->literal,
                              CoerceLiteral(std::move((*bound)->literal), t));
      }
      TypeId bt = ExprType(**bound);
      if (!TypesComparable(t, bt) &&
          !((*bound)->kind == ExprKind::kLiteral &&
            (*bound)->literal.is_null())) {
        return Status::BindError("BETWEEN bound is not comparable with " +
                                 std::string(TypeIdToString(t)));
      }
    }
    return MakeBoundBetween(std::move(ex), std::move(lo), std::move(hi),
                            e.negated);
  }

  const Database& db_;
  const BoundQuery& scope_;
};

}  // namespace

[[nodiscard]] Result<Value> CoerceLiteral(Value v, TypeId target) {
  if (v.is_null()) return v;
  if (v.type() == target) return v;
  if (v.type() == TypeId::kInt64 && target == TypeId::kDouble) {
    return Value::Double(static_cast<double>(v.int_val()));
  }
  if (v.type() == TypeId::kString && target == TypeId::kTimestamp) {
    TRAC_ASSIGN_OR_RETURN(Timestamp ts, Timestamp::Parse(v.str_val()));
    return Value::Ts(ts);
  }
  return v;  // Leave as-is; comparability is checked by the caller.
}

[[nodiscard]] Result<BoundQuery> BindSelect(const Database& db, const SelectStmt& stmt) {
  BoundQuery query;
  if (stmt.from.empty()) {
    return Status::BindError("FROM list must not be empty");
  }
  for (const TableRef& ref : stmt.from) {
    TRAC_ASSIGN_OR_RETURN(TableId id, db.FindTable(ref.table));
    const std::string& display =
        ref.alias.empty() ? db.catalog().schema(id).name() : ref.alias;
    for (const BoundTableRef& existing : query.relations) {
      if (EqualsIgnoreCaseAscii(existing.display_name, display)) {
        return Status::BindError("duplicate table name/alias '" + display +
                                 "' in FROM list");
      }
    }
    query.relations.push_back(BoundTableRef{id, display});
  }
  query.distinct = stmt.distinct;

  Binder binder(db, query);

  // Select list. Aggregates and plain columns cannot mix (no GROUP BY).
  bool has_aggregate = false;
  bool has_plain = false;
  for (const SelectItem& item : stmt.items) {
    has_aggregate |= item.agg != AggFn::kNone;
    has_plain |= item.agg == AggFn::kNone;
  }
  if (has_aggregate && has_plain) {
    return Status::Unsupported(
        "mixing aggregates and plain columns requires GROUP BY, which is "
        "not supported");
  }
  if (has_aggregate && stmt.distinct) {
    return Status::Unsupported("DISTINCT with aggregates is not supported");
  }
  if (has_aggregate && !stmt.order_by.empty()) {
    return Status::Unsupported("ORDER BY with aggregates is not supported");
  }

  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t r = 0; r < query.relations.size(); ++r) {
        const TableSchema& schema =
            db.catalog().schema(query.relations[r].table_id);
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          query.outputs.push_back(BoundQuery::OutputColumn{
              BoundColumnRef{r, c, schema.column(c).type},
              schema.column(c).name});
        }
      }
      continue;
    }
    if (item.agg != AggFn::kNone) {
      BoundQuery::Aggregate agg;
      agg.fn = item.agg;
      if (item.agg == AggFn::kCountStar) {
        agg.name = item.alias.empty() ? "count" : item.alias;
      } else {
        const Expr& e = *item.expr;
        TRAC_ASSIGN_OR_RETURN(agg.arg,
                              binder.ResolveColumn(e.table, e.column));
        if ((item.agg == AggFn::kSum || item.agg == AggFn::kAvg) &&
            agg.arg.type != TypeId::kInt64 &&
            agg.arg.type != TypeId::kDouble) {
          return Status::TypeError(
              std::string(AggFnToString(item.agg)) +
              " requires a numeric column");
        }
        agg.name = item.alias.empty()
                       ? ToLowerAscii(AggFnToString(item.agg)) + "_" +
                             e.column
                       : item.alias;
      }
      query.aggregates.push_back(std::move(agg));
      continue;
    }
    const Expr& e = *item.expr;
    if (e.kind != ExprKind::kColumnRef) {
      return Status::Unsupported(
          "select-list items must be column references, * or aggregates");
    }
    TRAC_ASSIGN_OR_RETURN(BoundColumnRef ref,
                          binder.ResolveColumn(e.table, e.column));
    std::string name = item.alias.empty() ? e.column : item.alias;
    query.outputs.push_back(BoundQuery::OutputColumn{ref, std::move(name)});
  }
  // The classic single-COUNT(*) query keeps its dedicated fast path.
  if (query.aggregates.size() == 1 &&
      query.aggregates[0].fn == AggFn::kCountStar) {
    query.count_star = true;
    query.aggregates.clear();
  }

  if (stmt.where != nullptr) {
    TRAC_ASSIGN_OR_RETURN(query.where, binder.Bind(*stmt.where));
  }
  for (const OrderByItem& item : stmt.order_by) {
    if (query.count_star) {
      return Status::Unsupported("ORDER BY with COUNT(*) is meaningless");
    }
    if (item.expr->kind != ExprKind::kColumnRef) {
      return Status::Unsupported("ORDER BY supports column references only");
    }
    TRAC_ASSIGN_OR_RETURN(
        BoundColumnRef ref,
        binder.ResolveColumn(item.expr->table, item.expr->column));
    query.order_by.push_back(BoundQuery::OrderKey{ref, item.descending});
  }
  if (stmt.limit.has_value()) query.limit = *stmt.limit;
  return query;
}

[[nodiscard]] Result<BoundQuery> BindSql(const Database& db, std::string_view sql) {
  TRAC_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  return BindSelect(db, stmt);
}

[[nodiscard]] Result<BoundExprPtr> BindPredicateInScope(const Database& db,
                                          const BoundQuery& scope,
                                          const Expr& expr) {
  Binder binder(db, scope);
  return binder.Bind(expr);
}

}  // namespace trac
