#include "predicate/normalize.h"

namespace trac {

BoundExprPtr ToNnf(const BoundExpr& e, bool negate) {
  switch (e.kind) {
    case ExprKind::kNot:
      return ToNnf(*e.children[0], !negate);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<BoundExprPtr> children;
      children.reserve(e.children.size());
      for (const auto& c : e.children) {
        children.push_back(ToNnf(*c, negate));
      }
      bool make_and = (e.kind == ExprKind::kAnd) != negate;  // De Morgan.
      return make_and ? MakeBoundAnd(std::move(children))
                      : MakeBoundOr(std::move(children));
    }
    case ExprKind::kCompare: {
      BoundExprPtr out = e.Clone();
      if (negate) out->op = NegateCompareOp(out->op);
      return out;
    }
    case ExprKind::kInList:
    case ExprKind::kIsNull: {
      BoundExprPtr out = e.Clone();
      if (negate) out->negated = !out->negated;
      return out;
    }
    case ExprKind::kBetween: {
      bool effective_negated = e.negated != negate;
      if (!effective_negated) {
        BoundExprPtr out = e.Clone();
        out->negated = false;
        return out;
      }
      // NOT (v BETWEEN lo AND hi)  =>  v < lo OR v > hi. Expanding keeps
      // every DNF conjunct a pure conjunction of basic terms.
      std::vector<BoundExprPtr> alts;
      alts.push_back(MakeBoundCompare(CompareOp::kLt, e.children[0]->Clone(),
                                      e.children[1]->Clone()));
      alts.push_back(MakeBoundCompare(CompareOp::kGt, e.children[0]->Clone(),
                                      e.children[2]->Clone()));
      return MakeBoundOr(std::move(alts));
    }
    case ExprKind::kLiteral: {
      BoundExprPtr out = e.Clone();
      if (negate && !out->literal.is_null() &&
          out->literal.type() == TypeId::kBool) {
        out->literal = Value::Bool(!out->literal.bool_val());
      }
      return out;  // NULL stays NULL under NOT.
    }
    case ExprKind::kColumnRef:
      // Not a legal predicate; preserved so the evaluator reports the
      // type error instead of the normalizer silently changing meaning.
      return e.Clone();
  }
  return e.Clone();
}

namespace {

// DNF as a list of conjuncts, each a list of atomic expressions.
using RawDnf = std::vector<std::vector<BoundExprPtr>>;

std::vector<BoundExprPtr> CloneTermList(const std::vector<BoundExprPtr>& v) {
  std::vector<BoundExprPtr> out;
  out.reserve(v.size());
  for (const auto& e : v) out.push_back(e->Clone());
  return out;
}

[[nodiscard]] Result<RawDnf> Distribute(const BoundExpr& e, size_t max_conjuncts) {
  switch (e.kind) {
    case ExprKind::kOr: {
      RawDnf out;
      for (const auto& c : e.children) {
        TRAC_ASSIGN_OR_RETURN(RawDnf sub, Distribute(*c, max_conjuncts));
        for (auto& conj : sub) out.push_back(std::move(conj));
        if (out.size() > max_conjuncts) {
          return Status::ResourceExhausted("DNF conjunct limit exceeded");
        }
      }
      return out;
    }
    case ExprKind::kAnd: {
      RawDnf acc;
      acc.push_back({});  // One empty conjunct: the AND identity.
      for (const auto& c : e.children) {
        TRAC_ASSIGN_OR_RETURN(RawDnf sub, Distribute(*c, max_conjuncts));
        if (acc.size() * sub.size() > max_conjuncts) {
          return Status::ResourceExhausted("DNF conjunct limit exceeded");
        }
        RawDnf next;
        next.reserve(acc.size() * sub.size());
        for (const auto& left : acc) {
          for (const auto& right : sub) {
            std::vector<BoundExprPtr> merged = CloneTermList(left);
            for (const auto& term : right) merged.push_back(term->Clone());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    default: {
      RawDnf out;
      out.push_back({});
      out.back().push_back(e.Clone());
      return out;
    }
  }
}

}  // namespace

[[nodiscard]] Result<Dnf> ToDnf(const BoundExpr& predicate, const NormalizeOptions& options) {
  BoundExprPtr nnf = ToNnf(predicate, /*negate=*/false);
  TRAC_ASSIGN_OR_RETURN(RawDnf raw, Distribute(*nnf, options.max_conjuncts));
  Dnf dnf;
  dnf.conjuncts.reserve(raw.size());
  for (auto& raw_conjunct : raw) {
    Conjunct conjunct;
    conjunct.reserve(raw_conjunct.size());
    for (auto& term : raw_conjunct) {
      conjunct.push_back(BasicTerm::Make(std::move(term)));
    }
    dnf.conjuncts.push_back(std::move(conjunct));
  }
  return dnf;
}

}  // namespace trac
