#ifndef TRAC_PREDICATE_NORMALIZE_H_
#define TRAC_PREDICATE_NORMALIZE_H_

#include <vector>

#include "common/result.h"
#include "predicate/basic_term.h"

namespace trac {

/// Guards against exponential DNF blow-up: normalization fails with
/// ResourceExhausted once the disjunct count would exceed the limit.
/// Callers (the relevance analyzer) fall back to the complete-but-
/// imprecise "all sources relevant" answer in that case.
struct NormalizeOptions {
  size_t max_conjuncts = 4096;
};

/// A predicate in disjunctive normal form: P = C1 OR C2 OR ... where each
/// Ci is a conjunction of basic terms (Section 4's P1 v P2 v ... v Pk).
struct Dnf {
  std::vector<Conjunct> conjuncts;
};

/// Converts a bound predicate to DNF:
///   1. negations are pushed to the leaves (comparisons negate their
///      operator, IN/IS NULL flip their negated flag, NOT BETWEEN expands
///      to an OR of two comparisons so every conjunct stays conjunctive);
///   2. AND is distributed over OR.
///
/// The result is logically equivalent to the input under SQL three-valued
/// logic for the purposes of relevance analysis: a tuple satisfies the
/// input iff it satisfies some conjunct. (NOT maps Unknown to Unknown on
/// both sides, so TRUE-sets are preserved exactly.)
[[nodiscard]] Result<Dnf> ToDnf(const BoundExpr& predicate,
                  const NormalizeOptions& options = NormalizeOptions());

/// Pushes negations to the leaves without distributing; exposed for
/// testing and reuse. The returned tree contains no kNot nodes except
/// directly above bare boolean literals, where negation is folded.
BoundExprPtr ToNnf(const BoundExpr& e, bool negate);

}  // namespace trac

#endif  // TRAC_PREDICATE_NORMALIZE_H_
