#ifndef TRAC_PREDICATE_BASIC_TERM_H_
#define TRAC_PREDICATE_BASIC_TERM_H_

#include <string_view>
#include <vector>

#include "expr/bound_expr.h"

namespace trac {

/// The paper's term classes relative to a target relation R_i
/// (Notations 4 and 6):
///
///  - kPs:  selection predicate referencing only R_i's data source column
///  - kPr:  selection predicate referencing only R_i's regular columns
///  - kPm:  "mixed" selection predicate referencing R_i's data source
///          column AND at least one regular column of R_i
///  - kJs:  join predicate whose only R_i column is the data source column
///  - kJrm: join predicate referencing at least one regular R_i column
///  - kPo:  predicate not referencing R_i at all (including constants)
enum class TermClass { kPs, kPr, kPm, kJs, kJrm, kPo };

std::string_view TermClassToString(TermClass c);

/// A basic term: an atomic predicate (comparison, IN, BETWEEN, IS NULL,
/// or a boolean literal) free of AND/OR/NOT, together with the column
/// references it mentions. BasicTerms are the unit the DNF normalizer
/// produces and the relevance analyzer classifies.
struct BasicTerm {
  BoundExprPtr expr;
  std::vector<BoundColumnRef> columns;  ///< Deduplicated references.
  uint64_t rel_mask = 0;                ///< Bitmask of referenced relations.

  /// Builds a term from an atomic bound expression (takes ownership).
  static BasicTerm Make(BoundExprPtr e);

  BasicTerm Clone() const;

  /// True iff the term references at most one relation.
  bool IsSelection() const { return (rel_mask & (rel_mask - 1)) == 0; }

  bool ReferencesRelation(size_t rel) const {
    return rel < 64 && (rel_mask >> rel) & 1;
  }
};

/// A conjunction of basic terms (one DNF disjunct).
using Conjunct = std::vector<BasicTerm>;

/// Classifies `term` relative to relation slot `target_rel` of `query`,
/// per the table above. `query` supplies each relation's data source
/// column (via the catalog in `db`).
TermClass ClassifyTerm(const Database& db, const BoundQuery& query,
                       const BasicTerm& term, size_t target_rel);

/// True iff (rel, col) is the data source column of its relation.
bool IsDataSourceColumn(const Database& db, const BoundQuery& query,
                        const BoundColumnRef& ref);

}  // namespace trac

#endif  // TRAC_PREDICATE_BASIC_TERM_H_
