#ifndef TRAC_PREDICATE_SATISFIABILITY_H_
#define TRAC_PREDICATE_SATISFIABILITY_H_

#include <string_view>
#include <vector>

#include "predicate/basic_term.h"

namespace trac {

/// Three-way satisfiability verdict. Soundness contract:
///  - kUnsat  => no assignment of column values (within their declared
///               domains) makes the conjunction TRUE. Safe to prune
///               (Corollaries 2 and 6 in the paper).
///  - kSat    => a witness assignment provably exists. Required for the
///               *minimality* guarantee of Theorems 3 and 4.
///  - kUnknown => neither could be proven; the relevance analyzer keeps
///               the conjunct (completeness) but downgrades its answer
///               from "minimum" to "upper bound".
enum class Sat { kUnsat = 0, kUnknown = 1, kSat = 2 };

std::string_view SatToString(Sat s);

/// Decides satisfiability of a conjunction of basic terms, interpreting
/// column references against the domains declared in the schemas of
/// `query`'s relations. Terms may reference any relations of the query;
/// every column is treated as a free variable ranging over its domain
/// (the paper's "potential tuple" semantics).
///
/// The decision procedure is deliberately incomplete (the general
/// problem is NP-hard, Theorem 2) but sound in both directions:
///  - per-column interval / IN-set / NOT-IN reasoning,
///  - equality groups (col = col chains) with merged constraints and
///    finite-domain intersection (catches the paper's disjoint-domain
///    join example),
///  - constant folding of literal-only terms,
///  - small finite-domain products are decided exactly by enumeration
///    (up to `max_enumeration` candidate assignments).
struct SatOptions {
  size_t max_enumeration = 100000;
};

Sat CheckConjunctionSat(const Database& db, const BoundQuery& query,
                        const std::vector<const BasicTerm*>& terms,
                        const SatOptions& options = SatOptions());

/// Convenience overload over a full conjunct.
Sat CheckConjunctionSat(const Database& db, const BoundQuery& query,
                        const Conjunct& conjunct,
                        const SatOptions& options = SatOptions());

}  // namespace trac

#endif  // TRAC_PREDICATE_SATISFIABILITY_H_
