#include "predicate/basic_term.h"

#include <algorithm>

namespace trac {

std::string_view TermClassToString(TermClass c) {
  switch (c) {
    case TermClass::kPs:
      return "Ps";
    case TermClass::kPr:
      return "Pr";
    case TermClass::kPm:
      return "Pm";
    case TermClass::kJs:
      return "Js";
    case TermClass::kJrm:
      return "Jrm";
    case TermClass::kPo:
      return "Po";
  }
  return "?";
}

BasicTerm BasicTerm::Make(BoundExprPtr e) {
  BasicTerm term;
  term.expr = std::move(e);
  term.expr->ForEachColumnRef([&](const BoundColumnRef& ref) {
    term.columns.push_back(ref);
  });
  std::sort(term.columns.begin(), term.columns.end());
  term.columns.erase(std::unique(term.columns.begin(), term.columns.end()),
                     term.columns.end());
  for (const BoundColumnRef& ref : term.columns) {
    if (ref.rel < 64) term.rel_mask |= uint64_t{1} << ref.rel;
  }
  return term;
}

BasicTerm BasicTerm::Clone() const {
  BasicTerm out;
  out.expr = expr->Clone();
  out.columns = columns;
  out.rel_mask = rel_mask;
  return out;
}

bool IsDataSourceColumn(const Database& db, const BoundQuery& query,
                        const BoundColumnRef& ref) {
  const TableSchema& schema =
      db.catalog().schema(query.relations[ref.rel].table_id);
  return schema.IsDataSourceColumn(ref.col);
}

TermClass ClassifyTerm(const Database& db, const BoundQuery& query,
                       const BasicTerm& term, size_t target_rel) {
  bool touches_target = term.ReferencesRelation(target_rel);
  if (!touches_target) return TermClass::kPo;

  bool target_ds = false;       // References target's data source column.
  bool target_regular = false;  // References a regular column of target.
  bool other_rel = false;       // References any other relation.
  for (const BoundColumnRef& ref : term.columns) {
    if (ref.rel == target_rel) {
      if (IsDataSourceColumn(db, query, ref)) {
        target_ds = true;
      } else {
        target_regular = true;
      }
    } else {
      other_rel = true;
    }
  }

  if (!other_rel) {
    // Selection predicate on the target relation.
    if (target_ds && target_regular) return TermClass::kPm;
    if (target_ds) return TermClass::kPs;
    return TermClass::kPr;
  }
  // Join predicate involving the target relation.
  if (target_regular) return TermClass::kJrm;
  return TermClass::kJs;
}

}  // namespace trac
