#include "predicate/satisfiability.h"

#include <algorithm>
#include <map>
#include <optional>

#include "expr/evaluator.h"

namespace trac {

std::string_view SatToString(Sat s) {
  switch (s) {
    case Sat::kUnsat:
      return "Unsat";
    case Sat::kUnknown:
      return "Unknown";
    case Sat::kSat:
      return "Sat";
  }
  return "?";
}

namespace {

using ColumnKey = std::pair<size_t, size_t>;  // (rel, col)

ColumnKey KeyOf(const BoundColumnRef& ref) { return {ref.rel, ref.col}; }

bool SqlEq(const Value& a, const Value& b) {
  auto cmp = Value::Compare(a, b);
  return cmp.ok() && *cmp == 0;
}

bool SqlLess(const Value& a, const Value& b) {
  auto cmp = Value::Compare(a, b);
  return cmp.ok() && *cmp < 0;
}

/// Accumulated unary constraints for one equality group of columns.
struct GroupConstraint {
  TypeId type = TypeId::kNull;     // Common comparison type.
  bool type_conflict = false;      // Members with incomparable types.
  bool finite = false;
  std::vector<Value> candidates;   // Valid iff finite.
  std::optional<Value> lo, hi;
  bool lo_strict = false, hi_strict = false;
  std::vector<Value> excluded;     // <> literals, NOT IN members.
  bool must_null = false;
  size_t num_columns = 0;
};

class SatChecker {
 public:
  SatChecker(const Database& db, const BoundQuery& query,
             const std::vector<const BasicTerm*>& terms,
             const SatOptions& options)
      : db_(db), query_(query), terms_(terms), options_(options) {}

  Sat Run() {
    // Exact path: all referenced columns have small finite domains.
    Sat exact = TryEnumerate();
    if (exact != Sat::kUnknown) return exact;
    return Propagate();
  }

 private:
  const Domain& DomainOf(const BoundColumnRef& ref) const {
    const TableSchema& schema =
        db_.catalog().schema(query_.relations[ref.rel].table_id);
    return schema.column(ref.col).domain;
  }

  // ---- Exact finite-domain enumeration (the brute-force idea from the
  // ---- first paragraph of Section 4.1, bounded by max_enumeration).

  Sat TryEnumerate() {
    std::vector<BoundColumnRef> columns;
    for (const BasicTerm* term : terms_) {
      for (const BoundColumnRef& ref : term->columns) columns.push_back(ref);
    }
    std::sort(columns.begin(), columns.end());
    columns.erase(std::unique(columns.begin(), columns.end()), columns.end());

    size_t product = 1;
    for (const BoundColumnRef& ref : columns) {
      const Domain& d = DomainOf(ref);
      if (!d.is_finite()) return Sat::kUnknown;
      if (d.size() == 0) return Sat::kUnsat;  // Empty domain: no tuples.
      // Overflow-checked multiply: the cardinality product of enough
      // finite domains wraps size_t long before the loop below could
      // ever finish, and a wrapped product can slip under
      // max_enumeration (16 columns of 16-value domains give 2^64 = 0).
      // Treat both wrap and budget excess as "too large to enumerate".
      if (__builtin_mul_overflow(product, d.size(), &product) ||
          product > options_.max_enumeration) {
        return Sat::kUnknown;  // Product too large; fall back.
      }
    }

    // Synthetic rows: only referenced cells are filled; terms never read
    // the others.
    std::vector<Row> rows(query_.relations.size());
    for (size_t r = 0; r < query_.relations.size(); ++r) {
      rows[r].resize(
          db_.catalog().schema(query_.relations[r].table_id).num_columns());
    }
    TupleView tuple(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) tuple[r] = &rows[r];

    std::vector<size_t> cursor(columns.size(), 0);
    while (true) {
      for (size_t i = 0; i < columns.size(); ++i) {
        rows[columns[i].rel][columns[i].col] =
            DomainOf(columns[i]).values()[cursor[i]];
      }
      bool all_true = true;
      for (const BasicTerm* term : terms_) {
        auto v = EvalPredicate(*term->expr, tuple);
        if (!v.ok()) return Sat::kUnknown;  // Give up on eval errors.
        if (!IsTrue(*v)) {
          all_true = false;
          break;
        }
      }
      if (all_true) return Sat::kSat;
      // Advance the mixed-radix cursor.
      size_t i = 0;
      for (; i < columns.size(); ++i) {
        if (++cursor[i] < DomainOf(columns[i]).size()) break;
        cursor[i] = 0;
      }
      if (i == columns.size()) return Sat::kUnsat;
    }
  }

  // ---- Constraint-propagation path.

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

  size_t ColumnSlot(const BoundColumnRef& ref) {
    auto [it, inserted] = slot_of_.emplace(KeyOf(ref), slots_.size());
    if (inserted) {
      slots_.push_back(ref);
      parent_.push_back(parent_.size());
    }
    return it->second;
  }

  // Extracts (column, literal) with the comparison oriented as
  // `column op literal`; nullopt if the term is not of that shape.
  struct UnaryCompare {
    BoundColumnRef column;
    CompareOp op;
    Value literal;
  };
  static std::optional<UnaryCompare> AsUnaryCompare(const BoundExpr& e) {
    if (e.kind != ExprKind::kCompare) return std::nullopt;
    const BoundExpr& l = *e.children[0];
    const BoundExpr& r = *e.children[1];
    if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral) {
      return UnaryCompare{l.column, e.op, r.literal};
    }
    if (l.kind == ExprKind::kLiteral && r.kind == ExprKind::kColumnRef) {
      return UnaryCompare{r.column, FlipCompareOp(e.op), l.literal};
    }
    return std::nullopt;
  }

  Sat Propagate() {
    bool unknown_factor = false;

    // Pass 1: build equality groups; classify terms.
    struct PendingUnary {
      size_t slot;
      const BoundExpr* expr;
    };
    std::vector<PendingUnary> unary_terms;

    for (const BasicTerm* term : terms_) {
      const BoundExpr& e = *term->expr;
      if (term->columns.empty()) {
        // Constant term: must evaluate to TRUE or the conjunct is dead.
        TupleView empty(query_.relations.size(), nullptr);
        auto v = EvalPredicate(e, empty);
        if (!v.ok()) {
          unknown_factor = true;
          continue;
        }
        if (!IsTrue(*v)) return Sat::kUnsat;
        continue;
      }
      if (term->columns.size() == 1) {
        unary_terms.push_back({ColumnSlot(term->columns[0]), &e});
        continue;
      }
      // Multi-column term.
      if (e.kind == ExprKind::kCompare && e.op == CompareOp::kEq &&
          e.children[0]->kind == ExprKind::kColumnRef &&
          e.children[1]->kind == ExprKind::kColumnRef) {
        size_t a = ColumnSlot(e.children[0]->column);
        size_t b = ColumnSlot(e.children[1]->column);
        Union(a, b);
        continue;
      }
      // Any other multi-column relation: we cannot prove Sat, but group
      // emptiness can still prove Unsat. Make sure the columns exist as
      // slots so their domains are checked.
      for (const BoundColumnRef& ref : term->columns) ColumnSlot(ref);
      unknown_factor = true;
    }

    // Pass 2: merge per-group domains.
    std::map<size_t, GroupConstraint> groups;
    for (size_t i = 0; i < slots_.size(); ++i) {
      GroupConstraint& g = groups[Find(i)];
      g.num_columns += 1;
      const BoundColumnRef& ref = slots_[i];
      const Domain& dom = DomainOf(ref);
      if (g.num_columns == 1) {
        g.type = dom.type();
        if (dom.is_finite()) {
          g.finite = true;
          g.candidates = dom.values();
        }
      } else {
        if (!TypesComparable(g.type, dom.type())) {
          g.type_conflict = true;
          continue;
        }
        if (dom.is_finite()) {
          if (!g.finite) {
            g.finite = true;
            g.candidates = dom.values();
          } else {
            std::vector<Value> merged;
            for (const Value& v : g.candidates) {
              for (const Value& w : dom.values()) {
                if (SqlEq(v, w)) {
                  merged.push_back(v);
                  break;
                }
              }
            }
            g.candidates = std::move(merged);
          }
        }
      }
    }
    for (auto& [root, g] : groups) {
      if (g.type_conflict) return Sat::kUnsat;  // col=col over bad types.
      if (g.finite && g.candidates.empty()) return Sat::kUnsat;
    }

    // Pass 3: apply unary terms to their groups.
    for (const PendingUnary& u : unary_terms) {
      GroupConstraint& g = groups[Find(u.slot)];
      if (!ApplyUnary(*u.expr, &g, &unknown_factor)) return Sat::kUnsat;
    }

    // Pass 4: decide each group.
    for (auto& [root, g] : groups) {
      Sat s = DecideGroup(g);
      if (s == Sat::kUnsat) return Sat::kUnsat;
      if (s == Sat::kUnknown) unknown_factor = true;
    }
    return unknown_factor ? Sat::kUnknown : Sat::kSat;
  }

  /// Folds one single-column term into `g`. Returns false on a proven
  /// contradiction (caller reports Unsat); sets *unknown on give-ups.
  bool ApplyUnary(const BoundExpr& e, GroupConstraint* g, bool* unknown) {
    switch (e.kind) {
      case ExprKind::kCompare: {
        std::optional<UnaryCompare> uc = AsUnaryCompare(e);
        if (!uc.has_value()) {
          // Same column on both sides (c op c) or column-vs-column within
          // one slot family; handle the common c = c / c <= c cases.
          if (e.children[0]->kind == ExprKind::kColumnRef &&
              e.children[1]->kind == ExprKind::kColumnRef) {
            // Identical column (single-column term): c op c.
            switch (e.op) {
              case CompareOp::kEq:
              case CompareOp::kLe:
              case CompareOp::kGe:
                return true;  // Tautology for non-null values.
              case CompareOp::kNe:
              case CompareOp::kLt:
              case CompareOp::kGt:
                return false;  // Contradiction.
            }
          }
          *unknown = true;
          return true;
        }
        if (uc->literal.is_null()) return false;  // Never TRUE.
        switch (uc->op) {
          case CompareOp::kEq:
            TightenLo(g, uc->literal, /*strict=*/false);
            TightenHi(g, uc->literal, /*strict=*/false);
            return true;
          case CompareOp::kNe:
            g->excluded.push_back(uc->literal);
            return true;
          case CompareOp::kLt:
            TightenHi(g, uc->literal, /*strict=*/true);
            return true;
          case CompareOp::kLe:
            TightenHi(g, uc->literal, /*strict=*/false);
            return true;
          case CompareOp::kGt:
            TightenLo(g, uc->literal, /*strict=*/true);
            return true;
          case CompareOp::kGe:
            TightenLo(g, uc->literal, /*strict=*/false);
            return true;
        }
        return true;
      }
      case ExprKind::kInList: {
        if (e.children[0]->kind != ExprKind::kColumnRef) {
          *unknown = true;
          return true;
        }
        std::vector<Value> nonnull;
        for (const Value& v : e.list) {
          if (!v.is_null()) nonnull.push_back(v);
        }
        if (!e.negated) {
          if (nonnull.empty()) return false;  // IN (NULL,...) never TRUE.
          IntersectCandidates(g, nonnull);
          return true;
        }
        // NOT IN with any NULL member is never TRUE.
        if (nonnull.size() != e.list.size()) return false;
        for (const Value& v : nonnull) g->excluded.push_back(v);
        return true;
      }
      case ExprKind::kBetween: {
        if (e.children[0]->kind != ExprKind::kColumnRef ||
            e.children[1]->kind != ExprKind::kLiteral ||
            e.children[2]->kind != ExprKind::kLiteral || e.negated) {
          *unknown = true;  // Column bounds / residual negation.
          return true;
        }
        const Value& lo = e.children[1]->literal;
        const Value& hi = e.children[2]->literal;
        if (lo.is_null() || hi.is_null()) return false;
        TightenLo(g, lo, /*strict=*/false);
        TightenHi(g, hi, /*strict=*/false);
        return true;
      }
      case ExprKind::kIsNull: {
        if (!e.negated) {
          g->must_null = true;
        }
        // IS NOT NULL adds nothing: witnesses are non-null anyway.
        return true;
      }
      default:
        *unknown = true;
        return true;
    }
  }

  static void TightenLo(GroupConstraint* g, const Value& v, bool strict) {
    if (!g->lo.has_value() || SqlLess(*g->lo, v) ||
        (SqlEq(*g->lo, v) && strict)) {
      g->lo = v;
      g->lo_strict = strict;
    }
  }
  static void TightenHi(GroupConstraint* g, const Value& v, bool strict) {
    if (!g->hi.has_value() || SqlLess(v, *g->hi) ||
        (SqlEq(*g->hi, v) && strict)) {
      g->hi = v;
      g->hi_strict = strict;
    }
  }
  static void IntersectCandidates(GroupConstraint* g,
                                  const std::vector<Value>& values) {
    if (!g->finite) {
      g->finite = true;
      g->candidates = values;
      return;
    }
    std::vector<Value> merged;
    for (const Value& v : g->candidates) {
      for (const Value& w : values) {
        if (SqlEq(v, w)) {
          merged.push_back(v);
          break;
        }
      }
    }
    g->candidates = std::move(merged);
  }

  static bool PassesBounds(const GroupConstraint& g, const Value& v) {
    if (g.lo.has_value()) {
      auto cmp = Value::Compare(v, *g.lo);
      if (!cmp.ok()) return false;
      if (*cmp < 0 || (*cmp == 0 && g.lo_strict)) return false;
    }
    if (g.hi.has_value()) {
      auto cmp = Value::Compare(v, *g.hi);
      if (!cmp.ok()) return false;
      if (*cmp > 0 || (*cmp == 0 && g.hi_strict)) return false;
    }
    for (const Value& x : g.excluded) {
      if (SqlEq(v, x)) return false;
    }
    return true;
  }

  Sat DecideGroup(const GroupConstraint& g) const {
    const bool has_value_constraints =
        g.finite || g.lo.has_value() || g.hi.has_value() || !g.excluded.empty();
    if (g.must_null) {
      // NULL never satisfies a comparison, and col=col groups need equal
      // non-null values; a lone IS NULL column is trivially satisfiable.
      return (has_value_constraints || g.num_columns > 1) ? Sat::kUnsat
                                                          : Sat::kSat;
    }
    if (g.finite) {
      for (const Value& v : g.candidates) {
        if (PassesBounds(g, v)) return Sat::kSat;
      }
      return Sat::kUnsat;
    }
    // Infinite domain: decide by type.
    if (g.lo.has_value() && g.hi.has_value()) {
      auto cmp = Value::Compare(*g.lo, *g.hi);
      if (!cmp.ok()) return Sat::kUnknown;
      if (*cmp > 0) return Sat::kUnsat;
      if (*cmp == 0) {
        if (g.lo_strict || g.hi_strict) return Sat::kUnsat;
        // Degenerate single-point interval: exact for every type.
        return PassesBounds(g, *g.lo) ? Sat::kSat : Sat::kUnsat;
      }
    }
    switch (g.type) {
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        return DecideDiscrete(g);
      case TypeId::kBool: {
        for (bool b : {false, true}) {
          if (PassesBounds(g, Value::Bool(b))) return Sat::kSat;
        }
        return Sat::kUnsat;
      }
      case TypeId::kDouble:
      case TypeId::kString:
        return DecideDenseWitness(g);
      default:
        return Sat::kUnknown;
    }
  }

  /// Exact decision for integer-like types: the interval is a finite or
  /// half-infinite set of lattice points minus finitely many exclusions.
  static Sat DecideDiscrete(const GroupConstraint& g) {
    auto as_int = [&](const Value& v) {
      return g.type == TypeId::kTimestamp ? v.ts_val().micros() : v.int_val();
    };
    auto make = [&](int64_t x) {
      return g.type == TypeId::kTimestamp ? Value::Ts(Timestamp(x))
                                          : Value::Int(x);
    };
    // Normalize to closed bounds, with care at the extremes.
    std::optional<int64_t> lo, hi;
    if (g.lo.has_value()) {
      int64_t v = as_int(*g.lo);
      if (g.lo_strict && v == INT64_MAX) return Sat::kUnsat;
      lo = g.lo_strict ? v + 1 : v;
    }
    if (g.hi.has_value()) {
      int64_t v = as_int(*g.hi);
      if (g.hi_strict && v == INT64_MIN) return Sat::kUnsat;
      hi = g.hi_strict ? v - 1 : v;
    }
    if (lo.has_value() && hi.has_value() && *lo > *hi) return Sat::kUnsat;
    // Walk upward from the lower end past at most |excluded| collisions.
    int64_t start = lo.has_value() ? *lo
                    : hi.has_value()
                        ? *hi - static_cast<int64_t>(g.excluded.size())
                        : 0;
    for (size_t step = 0; step <= g.excluded.size(); ++step) {
      int64_t candidate = start + static_cast<int64_t>(step);
      if (hi.has_value() && candidate > *hi) return Sat::kUnsat;
      if (PassesBounds(g, make(candidate))) return Sat::kSat;
    }
    return Sat::kUnsat;
  }

  /// Witness search for dense types (double, string): never proves
  /// Unsat beyond the interval check already done; proves Sat when a
  /// witness is found, else Unknown.
  static Sat DecideDenseWitness(const GroupConstraint& g) {
    std::vector<Value> candidates;
    if (g.type == TypeId::kDouble) {
      double lo = g.lo.has_value() ? g.lo->AsDouble() : -1e18;
      double hi = g.hi.has_value() ? g.hi->AsDouble() : 1e18;
      candidates.push_back(Value::Double(lo));
      candidates.push_back(Value::Double(hi));
      candidates.push_back(Value::Double(lo / 2 + hi / 2));
      for (int i = 1; i <= static_cast<int>(g.excluded.size()) + 1; ++i) {
        candidates.push_back(Value::Double(lo / 2 + hi / 2 + i));
        candidates.push_back(
            Value::Double(lo + (hi - lo) * i /
                          (static_cast<double>(g.excluded.size()) + 2)));
      }
    } else {  // kString
      std::string lo = g.lo.has_value() ? g.lo->str_val() : "";
      candidates.push_back(Value::Str(lo));
      // Suffix-extension ladder: every lo + suffix sorts > lo.
      std::string probe = lo;
      for (size_t i = 0; i <= g.excluded.size() + 1; ++i) {
        probe.push_back('\x01');
        candidates.push_back(Value::Str(probe));
      }
      if (g.hi.has_value()) candidates.push_back(*g.hi);
    }
    for (const Value& v : candidates) {
      if (PassesBounds(g, v)) return Sat::kSat;
    }
    return Sat::kUnknown;
  }

  const Database& db_;
  const BoundQuery& query_;
  const std::vector<const BasicTerm*>& terms_;
  const SatOptions& options_;

  std::map<ColumnKey, size_t> slot_of_;
  std::vector<BoundColumnRef> slots_;
  std::vector<size_t> parent_;
};

}  // namespace

Sat CheckConjunctionSat(const Database& db, const BoundQuery& query,
                        const std::vector<const BasicTerm*>& terms,
                        const SatOptions& options) {
  SatChecker checker(db, query, terms, options);
  return checker.Run();
}

Sat CheckConjunctionSat(const Database& db, const BoundQuery& query,
                        const Conjunct& conjunct, const SatOptions& options) {
  std::vector<const BasicTerm*> terms;
  terms.reserve(conjunct.size());
  for (const BasicTerm& t : conjunct) terms.push_back(&t);
  return CheckConjunctionSat(db, query, terms, options);
}

}  // namespace trac
