#ifndef TRAC_CATALOG_SCHEMA_H_
#define TRAC_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "types/domain.h"
#include "types/value.h"

namespace trac {

/// Definition of one column: name, type, and (optionally) a finite domain.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kString;
  Domain domain = Domain::Infinite(TypeId::kString);

  ColumnDef(std::string n, TypeId t)
      : name(std::move(n)), type(t), domain(Domain::Infinite(t)) {}
  ColumnDef(std::string n, TypeId t, Domain d)
      : name(std::move(n)), type(t), domain(std::move(d)) {}
};

/// Schema of a relation following the paper's model (Section 3.3): every
/// monitored table has exactly one *data source column* tagging each
/// tuple with the source that produced it; that column is a foreign key
/// into the Heartbeat table. Tables without a data-source column are
/// allowed (e.g. the Heartbeat table itself, or session temp tables) but
/// do not participate in relevance analysis as monitored relations.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Case-insensitive column lookup; nullopt if absent.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Designates `column_name` as the data source column. Fails if the
  /// column does not exist.
  [[nodiscard]] Status SetDataSourceColumn(std::string_view column_name);

  /// Index of the data source column, or nullopt for unmonitored tables.
  std::optional<size_t> data_source_column() const {
    return data_source_column_;
  }

  /// True iff `i` is the data source column.
  bool IsDataSourceColumn(size_t i) const {
    return data_source_column_.has_value() && *data_source_column_ == i;
  }

  /// Validates a row against this schema: arity, per-column type (NULL is
  /// always accepted), and finite-domain membership if declared.
  [[nodiscard]] Status ValidateRow(const Row& row) const;

  /// Declares a CHECK-style predicate constraint over this table's
  /// columns, as SQL predicate text (e.g. "mach_id <> neighbor" — the
  /// paper's "a machine can't have itself as a neighbor"). Constraints
  /// participate in relevance analysis per Section 3.4's Q' = Q ∧ C
  /// construction and are enforced on rows shipped through the monitor
  /// layer. The text is parsed/bound lazily by expr/constraints.h; this
  /// method performs no validation.
  void AddCheckConstraint(std::string predicate_sql) {
    check_constraints_.push_back(std::move(predicate_sql));
  }

  const std::vector<std::string>& check_constraints() const {
    return check_constraints_;
  }

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::optional<size_t> data_source_column_;
  std::vector<std::string> check_constraints_;
};

}  // namespace trac

#endif  // TRAC_CATALOG_SCHEMA_H_
