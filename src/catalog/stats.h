#ifndef TRAC_CATALOG_STATS_H_
#define TRAC_CATALOG_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trac {

/// Per-column statistics for one table, collected from the row store and
/// its ordered indexes (storage/index.h) and cached in the Catalog. The
/// optimizer's cost model (opt/cost.h) consumes them for equality /
/// range selectivity and join-output estimates; they are advisory only —
/// no correctness property depends on their accuracy, because every
/// rewrite they motivate is still translation-validated.
struct ColumnStats {
  size_t column = 0;  ///< Schema column index.
  /// Number of distinct non-NULL keys in the column's ordered index at
  /// collection time. 0 = unknown (only indexed columns are profiled).
  uint64_t ndv = 0;
};

struct TableStats {
  /// Published row-version count at collection time. Also the cache
  /// validity token: a cached entry whose row_count no longer matches
  /// the table is stale and gets recollected.
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;

  /// NDV for `column`; 0 when the column was not profiled.
  uint64_t NdvFor(size_t column) const;
};

/// Fraction of rows an equality predicate on `column` keeps: 1/NDV when
/// the column is profiled, else the planner's classic 10% guess.
double EqualitySelectivity(const TableStats& stats, size_t column);

/// Fraction of rows a range predicate keeps: the standard 1/3 guess
/// (System R); stats cannot do better without histograms.
double RangeSelectivity();

}  // namespace trac

#endif  // TRAC_CATALOG_STATS_H_
