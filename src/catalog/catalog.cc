#include "catalog/catalog.h"

#include "common/str_util.h"

namespace trac {

Result<TableId> Catalog::CreateTable(TableSchema schema) {
  if (schema.name().empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  WriterMutexLock lock(&mu_);
  if (GetTableIdLocked(schema.name()).ok()) {
    return Status::AlreadyExists("table '" + schema.name() +
                                 "' already exists");
  }
  entries_.push_back(Entry{std::move(schema), /*live=*/true});
  // Session temp tables (sys_temp_*) are session-local state, not
  // durable structure: TRAC-V013 rejects any cache-admissible plan that
  // touches one, so their creation cannot change a cached result and
  // must not churn the epoch (a report session creates two per run).
  if (entries_.back().schema.name().rfind("sys_temp_", 0) != 0) BumpEpoch();
  return entries_.size() - 1;
}

Result<TableId> Catalog::GetTableIdLocked(std::string_view name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].live &&
        EqualsIgnoreCaseAscii(entries_[i].schema.name(), name)) {
      return i;
    }
  }
  return Status::NotFound("no table named '" + std::string(name) + "'");
}

Result<TableId> Catalog::GetTableId(std::string_view name) const {
  ReaderMutexLock lock(&mu_);
  return GetTableIdLocked(name);
}

Status Catalog::DropTable(std::string_view name) {
  WriterMutexLock lock(&mu_);
  TRAC_ASSIGN_OR_RETURN(TableId id, GetTableIdLocked(name));
  entries_[id].live = false;
  if (entries_[id].schema.name().rfind("sys_temp_", 0) != 0) BumpEpoch();
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  ReaderMutexLock lock(&mu_);
  std::vector<std::string> names;
  for (const Entry& e : entries_) {
    if (e.live) names.push_back(e.schema.name());
  }
  return names;
}

}  // namespace trac
