#ifndef TRAC_CATALOG_CATALOG_H_
#define TRAC_CATALOG_CATALOG_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace trac {

/// Stable identifier of a table for the lifetime of a Database. Ids are
/// never reused, even after a drop.
using TableId = size_t;

/// Name -> schema mapping. The Catalog owns schemas only; row storage
/// lives in storage::Table objects held by the Database, keyed by the
/// same TableId. Lookups are case-insensitive, matching the SQL layer.
///
/// Concurrency: lookups (GetTableId, IsLive, schema, TableNames) may run
/// concurrently with each other and with CreateTable/DropTable — a
/// reader/writer lock guards the entry list, and entries live in a deque
/// so the TableSchema& returned by schema() stays valid across later
/// creations. Mutating a schema in place (mutable_schema, e.g. to add a
/// CHECK constraint) is a setup-time operation: it must be quiesced
/// against concurrent readers of that same schema.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new table. Fails with AlreadyExists on a name clash.
  [[nodiscard]] Result<TableId> CreateTable(TableSchema schema);

  /// Id for `name`; NotFound if absent or dropped.
  [[nodiscard]] Result<TableId> GetTableId(std::string_view name) const;

  bool HasTable(std::string_view name) const {
    return GetTableId(name).ok();
  }

  /// Schema access by id. The id must be live (not dropped). The
  /// returned reference is stable for the Catalog's lifetime (entries
  /// live in a deque and are never erased), which is why handing it out
  /// past the lock is sound.
  const TableSchema& schema(TableId id) const {
    ReaderMutexLock lock(&mu_);
    return entries_[id].schema;
  }
  TableSchema& mutable_schema(TableId id) {
    ReaderMutexLock lock(&mu_);
    BumpEpoch();  // Handing out a mutable schema is a structure change.
    return entries_[id].schema;
  }

  /// Drops `name`. The TableId becomes invalid. NotFound if absent.
  [[nodiscard]] Status DropTable(std::string_view name);

  /// Monotonic structure epoch: bumped by every CreateTable, DropTable,
  /// mutable_schema access (in-place schema mutation), and — via
  /// Database::CreateIndex — index registration. Session temp tables
  /// (sys_temp_*) are exempt: they are session-local state no
  /// cache-admissible plan may touch (TRAC-V013), and a report session
  /// creates two per run. The relevance cache (core/relevance.h) keys
  /// its catalog dependency on this value: an unchanged epoch proves the
  /// name->schema mapping and index set a cached plan was admitted under
  /// are still in force.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Records a structure change that bypasses CreateTable/DropTable
  /// (index creation, constraint edits). Public so the Database can bump
  /// it from its own mutation paths.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  bool IsLive(TableId id) const {
    ReaderMutexLock lock(&mu_);
    return id < entries_.size() && entries_[id].live;
  }

  /// Number of ids ever allocated (live + dropped); ids are < this.
  size_t NumIds() const {
    ReaderMutexLock lock(&mu_);
    return entries_.size();
  }

  /// Names of all live tables, in creation order.
  std::vector<std::string> TableNames() const;

  /// Caches collected optimizer statistics for a table (advisory; see
  /// catalog/stats.h). Overwrites any previous entry. Const: the stats
  /// cache is metadata about storage contents, not catalog identity, so
  /// read-only planning paths may populate it.
  void SetTableStats(TableId id, TableStats stats) const {
    WriterMutexLock lock(&mu_);
    stats_[id] = std::move(stats);
  }

  /// Cached stats for `id`, if any were collected. `valid_row_count`
  /// screens staleness: a cached entry collected at a different
  /// row-version count is reported as absent so the caller recollects.
  bool GetTableStats(TableId id, uint64_t valid_row_count,
                     TableStats* out) const {
    ReaderMutexLock lock(&mu_);
    auto it = stats_.find(id);
    if (it == stats_.end() || it->second.row_count != valid_row_count) {
      return false;
    }
    *out = it->second;
    return true;
  }

 private:
  /// Lookup without locking; callers hold mu_ (at least shared).
  [[nodiscard]] Result<TableId> GetTableIdLocked(std::string_view name) const
      TRAC_REQUIRES_SHARED(mu_);

  struct Entry {
    TableSchema schema;
    bool live = true;
  };
  mutable SharedMutex mu_{lock_rank::kCatalog, "Catalog::mu_"};
  // Deque: schema references stay valid across CreateTable (Table objects
  // point at their catalog schema).
  std::deque<Entry> entries_ TRAC_GUARDED_BY(mu_);
  /// Optimizer statistics cache, keyed by table id (catalog/stats.h).
  /// Mutable: populated from read-only planning paths.
  mutable std::map<TableId, TableStats> stats_ TRAC_GUARDED_BY(mu_);
  /// Structure epoch (see epoch()); atomic so lock-free readers (the
  /// relevance cache's validity probe) need no catalog lock.
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace trac

#endif  // TRAC_CATALOG_CATALOG_H_
