#include "catalog/schema.h"

#include "common/str_util.h"

namespace trac {

std::optional<size_t> TableSchema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCaseAscii(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Status TableSchema::SetDataSourceColumn(std::string_view column_name) {
  std::optional<size_t> idx = FindColumn(column_name);
  if (!idx.has_value()) {
    return Status::NotFound("no column '" + std::string(column_name) +
                            "' in table '" + name_ + "'");
  }
  data_source_column_ = *idx;
  return Status::OK();
}

Status TableSchema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table '" +
        name_ + "' arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    const ColumnDef& col = columns_[i];
    bool type_ok = v.type() == col.type ||
                   (v.type() == TypeId::kInt64 && col.type == TypeId::kDouble);
    if (!type_ok) {
      return Status::TypeError("column '" + col.name + "' of table '" + name_ +
                               "' expects " +
                               std::string(TypeIdToString(col.type)) +
                               ", got " +
                               std::string(TypeIdToString(v.type())));
    }
    if (col.domain.is_finite() && !col.domain.Contains(v)) {
      return Status::InvalidArgument("value " + v.ToSqlLiteral() +
                                     " outside the finite domain of column '" +
                                     col.name + "'");
    }
  }
  return Status::OK();
}

}  // namespace trac
