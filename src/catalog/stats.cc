#include "catalog/stats.h"

namespace trac {

namespace {
constexpr double kDefaultEqSelectivity = 0.1;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
}  // namespace

uint64_t TableStats::NdvFor(size_t column) const {
  for (const ColumnStats& c : columns) {
    if (c.column == column) return c.ndv;
  }
  return 0;
}

double EqualitySelectivity(const TableStats& stats, size_t column) {
  const uint64_t ndv = stats.NdvFor(column);
  if (ndv == 0) return kDefaultEqSelectivity;
  return 1.0 / static_cast<double>(ndv);
}

double RangeSelectivity() { return kDefaultRangeSelectivity; }

}  // namespace trac
