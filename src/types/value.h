#ifndef TRAC_TYPES_VALUE_H_
#define TRAC_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/timestamp.h"

namespace trac {

/// Runtime type tags for Value. kNull is the type of the SQL NULL literal;
/// typed columns never have type kNull but may hold null Values.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

std::string_view TypeIdToString(TypeId t);

/// Returns true if values of `a` and `b` can be compared with each other
/// (identical types, or the int64/double numeric pair).
bool TypesComparable(TypeId a, TypeId b);

/// A dynamically typed SQL value. Values are cheap to copy for all types
/// except kString (which copies its payload) and are totally ordered
/// within a comparable type family.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }
  static Value Ts(Timestamp v) { return Value(Payload(v)); }

  TypeId type() const { return static_cast<TypeId>(payload_.index()); }
  bool is_null() const { return type() == TypeId::kNull; }

  bool bool_val() const { return std::get<bool>(payload_); }
  int64_t int_val() const { return std::get<int64_t>(payload_); }
  double double_val() const { return std::get<double>(payload_); }
  const std::string& str_val() const { return std::get<std::string>(payload_); }
  Timestamp ts_val() const { return std::get<Timestamp>(payload_); }

  /// Numeric value as double; valid for kInt64 and kDouble.
  double AsDouble() const {
    return type() == TypeId::kInt64 ? static_cast<double>(int_val())
                                    : double_val();
  }

  /// SQL comparison: returns <0, 0, >0. Fails with TypeError for
  /// incomparable types or if either side is NULL (callers implement
  /// three-valued logic above this).
  [[nodiscard]] static Result<int> Compare(const Value& a, const Value& b);

  /// Structural equality: same type and same payload. NULL equals NULL
  /// here (unlike SQL); used by containers, tests, and DISTINCT.
  friend bool operator==(const Value& a, const Value& b) {
    return a.payload_ == b.payload_;
  }

  /// Structural total order across all types (type tag first). Used by
  /// ordered containers and index keys; for SQL comparisons use Compare.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.payload_.index() != b.payload_.index()) {
      return a.payload_.index() < b.payload_.index();
    }
    return a.payload_ < b.payload_;
  }

  size_t Hash() const;

  /// Human-readable form ("NULL", "42", "'idle'", timestamp text).
  std::string ToString() const;

  /// SQL-literal form (strings quoted, timestamps as TIMESTAMP '...').
  std::string ToSqlLiteral() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   Timestamp>;
  explicit Value(Payload p) : payload_(std::move(p)) {}

  Payload payload_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Row type used throughout storage and execution.
using Row = std::vector<Value>;

size_t HashRow(const Row& row);

struct RowHash {
  size_t operator()(const Row& r) const { return HashRow(r); }
};

}  // namespace trac

#endif  // TRAC_TYPES_VALUE_H_
