#include "types/value.h"

#include <functional>

#include "common/str_util.h"

namespace trac {

std::string_view TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
    case TypeId::kTimestamp:
      return "TIMESTAMP";
  }
  return "?";
}

bool TypesComparable(TypeId a, TypeId b) {
  if (a == b) return a != TypeId::kNull;
  auto numeric = [](TypeId t) {
    return t == TypeId::kInt64 || t == TypeId::kDouble;
  };
  return numeric(a) && numeric(b);
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Status::TypeError("cannot compare NULL values");
  }
  if (!TypesComparable(a.type(), b.type())) {
    return Status::TypeError("cannot compare " +
                             std::string(TypeIdToString(a.type())) + " with " +
                             std::string(TypeIdToString(b.type())));
  }
  if (a.type() != b.type()) {
    // Mixed int64/double: compare as double.
    double x = a.AsDouble(), y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  switch (a.type()) {
    case TypeId::kBool: {
      int x = a.bool_val() ? 1 : 0, y = b.bool_val() ? 1 : 0;
      return x - y;
    }
    case TypeId::kInt64: {
      int64_t x = a.int_val(), y = b.int_val();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case TypeId::kDouble: {
      double x = a.double_val(), y = b.double_val();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case TypeId::kString:
      return a.str_val().compare(b.str_val()) < 0
                 ? -1
                 : (a.str_val() == b.str_val() ? 0 : 1);
    case TypeId::kTimestamp: {
      Timestamp x = a.ts_val(), y = b.ts_val();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case TypeId::kNull:
      break;
  }
  return Status::Internal("unreachable type in Value::Compare");
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type()) * 0x9E3779B97F4A7C15ULL;
  auto mix = [&](size_t h) {
    seed ^= h + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
  };
  switch (type()) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      mix(std::hash<bool>{}(bool_val()));
      break;
    case TypeId::kInt64:
      mix(std::hash<int64_t>{}(int_val()));
      break;
    case TypeId::kDouble:
      mix(std::hash<double>{}(double_val()));
      break;
    case TypeId::kString:
      mix(std::hash<std::string>{}(str_val()));
      break;
    case TypeId::kTimestamp:
      mix(std::hash<int64_t>{}(ts_val().micros()));
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return bool_val() ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(int_val());
    case TypeId::kDouble:
      return std::to_string(double_val());
    case TypeId::kString:
      return str_val();
    case TypeId::kTimestamp:
      return ts_val().ToString();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return bool_val() ? "TRUE" : "FALSE";
    case TypeId::kInt64:
      return std::to_string(int_val());
    case TypeId::kDouble:
      return std::to_string(double_val());
    case TypeId::kString:
      return QuoteSqlString(str_val());
    case TypeId::kTimestamp:
      return "TIMESTAMP " + QuoteSqlString(ts_val().ToString());
  }
  return "?";
}

size_t HashRow(const Row& row) {
  size_t seed = row.size();
  for (const Value& v : row) {
    seed ^= v.Hash() + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

}  // namespace trac
