#include "types/domain.h"

#include <algorithm>

namespace trac {

Domain Domain::Finite(TypeId type, std::vector<Value> values) {
  Domain d(type);
  d.finite_ = true;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  d.values_ = std::move(values);
  return d;
}

bool Domain::Contains(const Value& v) const {
  if (v.is_null()) return false;
  if (!finite_) {
    return v.type() == type_ ||
           (v.type() == TypeId::kInt64 && type_ == TypeId::kDouble);
  }
  return std::binary_search(values_.begin(), values_.end(), v);
}

bool Domain::ProvablyDisjoint(const Domain& a, const Domain& b) {
  if (!TypesComparable(a.type(), b.type())) return true;
  if (!a.is_finite() || !b.is_finite()) return false;
  if (a.type() == b.type()) {
    // Both sorted with the same structural order: single merge pass.
    size_t i = 0, j = 0;
    while (i < a.values_.size() && j < b.values_.size()) {
      if (a.values_[i] == b.values_[j]) return false;
      if (a.values_[i] < b.values_[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return true;
  }
  // Mixed numeric types: structural order differs from SQL order, so fall
  // back to the quadratic check with SQL comparison semantics. Finite
  // domains are small by construction.
  for (const Value& x : a.values_) {
    for (const Value& y : b.values_) {
      auto cmp = Value::Compare(x, y);
      if (cmp.ok() && *cmp == 0) return false;
    }
  }
  return true;
}

}  // namespace trac
