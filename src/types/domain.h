#ifndef TRAC_TYPES_DOMAIN_H_
#define TRAC_TYPES_DOMAIN_H_

#include <vector>

#include "types/value.h"

namespace trac {

/// The domain of a column: the set of values an update could legally put
/// there (Section 3.4 of the paper quantifies relevance over column
/// domains, not over current table contents).
///
/// A Domain is either *infinite* (any value of the column type — the
/// common case) or *finite* (an explicit enumeration). Finite domains
/// serve two roles:
///   1. They make the brute-force ground-truth computation of S(Q)
///      possible (the paper's evaluation methodology, Section 5.2).
///   2. They sharpen satisfiability checks — e.g. two equated columns
///      with disjoint finite domains make a join predicate unsatisfiable
///      (the paper's Routing.neighbor / Activity.mach_id example).
class Domain {
 public:
  /// Infinite domain of the given element type.
  static Domain Infinite(TypeId type) { return Domain(type); }

  /// Finite domain; duplicates are removed, values sorted structurally.
  static Domain Finite(TypeId type, std::vector<Value> values);

  TypeId type() const { return type_; }
  bool is_finite() const { return finite_; }

  /// Enumerated values; only valid for finite domains.
  const std::vector<Value>& values() const { return values_; }
  size_t size() const { return values_.size(); }

  /// Membership test. Infinite domains contain every non-null value of
  /// their type; finite domains contain exactly their enumeration.
  bool Contains(const Value& v) const;

  /// True if the two domains provably share no value. Only finite/finite
  /// pairs (or mismatched types) can be proven disjoint.
  static bool ProvablyDisjoint(const Domain& a, const Domain& b);

 private:
  explicit Domain(TypeId type) : type_(type), finite_(false) {}

  TypeId type_;
  bool finite_;
  std::vector<Value> values_;  // Sorted, deduplicated; empty if infinite.
};

}  // namespace trac

#endif  // TRAC_TYPES_DOMAIN_H_
