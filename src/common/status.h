#ifndef TRAC_COMMON_STATUS_H_
#define TRAC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace trac {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: no exceptions cross the public API; every
/// fallible operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kNotFound,          ///< A named table/column/source does not exist.
  kAlreadyExists,     ///< Creating something that is already there.
  kParseError,        ///< SQL text could not be parsed.
  kBindError,         ///< SQL parsed but names/types do not resolve.
  kTypeError,         ///< Value-level type mismatch at runtime.
  kUnsupported,       ///< Outside the implemented SPJ subset.
  kResourceExhausted, ///< A guard tripped (e.g. DNF blow-up limit).
  kInternal,          ///< Invariant violation; indicates a library bug.
};

/// Returns a short stable name for a StatusCode ("OK", "ParseError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation. Error statuses carry a code and a
/// human-readable message. Statuses are ordered only by okayness; use
/// code() to dispatch on the specific failure kind.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  [[nodiscard]] static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  [[nodiscard]] static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace trac

/// Propagates a non-OK Status from the current function.
#define TRAC_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::trac::Status _trac_status = (expr);           \
    if (!_trac_status.ok()) return _trac_status;    \
  } while (false)

/// Evaluates a Result<T>-returning expression, propagating errors and
/// otherwise binding the value to `lhs`.
#define TRAC_ASSIGN_OR_RETURN(lhs, expr)                     \
  TRAC_ASSIGN_OR_RETURN_IMPL_(                               \
      TRAC_STATUS_CONCAT_(_trac_result, __LINE__), lhs, expr)

#define TRAC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define TRAC_STATUS_CONCAT_(a, b) TRAC_STATUS_CONCAT_IMPL_(a, b)
#define TRAC_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // TRAC_COMMON_STATUS_H_
