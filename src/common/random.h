#ifndef TRAC_COMMON_RANDOM_H_
#define TRAC_COMMON_RANDOM_H_

#include <cstdint>

namespace trac {

/// A small, fast, deterministic PRNG (xorshift64*). All synthetic
/// workloads and property-test generators use this so every run and every
/// machine produces identical data sets; std::mt19937 would also work but
/// its seeding is heavier and its state is overkill here.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform value in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform value in [lo, hi]; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace trac

#endif  // TRAC_COMMON_RANDOM_H_
